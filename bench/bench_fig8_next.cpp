// bench_fig8_next — Figure 8 / §3.3: the `next` ALU operation.
//
// Measures the behavioural (word-scan) and structural (Figure 8 barrel
// shifter + recursive halving) implementations across WAYS, and reports the
// §3.3 gate-delay analysis as counters:
//
//   levels_wide_or  — O(WAYS): each halving step's OR-reduction is one wide
//                     gate level
//   levels_2in_or   — O(WAYS^2): 2-input OR trees make step k cost k levels
//   levels_4in_or   — the intermediate fan-in point
//
// Expected shape: gate levels grow linearly vs quadratically — the paper's
// argument that `next` for 16-way entanglement "might more appropriately be
// split into several pipeline stages" if OR-reduction is inefficient.
#include <benchmark/benchmark.h>

#include <random>

#include "arch/qat_engine.hpp"

namespace {

using pbp::Aob;
using tangled::QatEngine;

Aob sparse_aob(unsigned ways, unsigned inv_density) {
  std::mt19937_64 rng(ways * 100 + inv_density);
  return Aob::from_fn(
      ways, [&](std::size_t) { return (rng() % inv_density) == 0; });
}

void attach_delay_counters(benchmark::State& state, unsigned ways) {
  state.counters["levels_wide_or"] =
      static_cast<double>(QatEngine::next_gate_delay(ways, 0));
  state.counters["levels_4in_or"] =
      static_cast<double>(QatEngine::next_gate_delay(ways, 4));
  state.counters["levels_2in_or"] =
      static_cast<double>(QatEngine::next_gate_delay(ways, 2));
}

void BM_next_behavioural(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const Aob a = sparse_aob(ways, 64);
  std::uint16_t ch = 0;
  std::optional<std::size_t> r;
  for (auto _ : state) {
    r = a.next_one(ch);
    ch = r ? static_cast<std::uint16_t>(*r) : 0;
    benchmark::DoNotOptimize(ch);
  }
  attach_delay_counters(state, ways);
}

void BM_next_structural(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const Aob a = sparse_aob(ways, 64);
  std::uint16_t ch = 0;
  for (auto _ : state) {
    ch = QatEngine::next_structural(a, ch);
    benchmark::DoNotOptimize(ch);
  }
  attach_delay_counters(state, ways);
}

// Worst case for the behavioural scan: no 1 bits at all (full-vector scan),
// the case the paper's O-analysis is about.
void BM_next_behavioural_empty(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const Aob a(ways);
  for (auto _ : state) benchmark::DoNotOptimize(a.next_one(0));
}

void BM_next_structural_empty(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const Aob a(ways);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QatEngine::next_structural(a, 0));
  }
}

#define NEXT_SWEEP(fn) \
  BENCHMARK(fn)->Arg(4)->Arg(8)->Arg(10)->Arg(12)->Arg(14)->Arg(16)
NEXT_SWEEP(BM_next_behavioural);
NEXT_SWEEP(BM_next_structural);
NEXT_SWEEP(BM_next_behavioural_empty);
NEXT_SWEEP(BM_next_structural_empty);

}  // namespace

