// perf_smoke — the `perf` lane of scripts/check.sh: a pass/fail guard on the
// integrity layer's hot-path cost, not a measurement harness (that is
// bench_ecc_overhead).  It times the Figure 10 run end to end on the dense
// ways-16 configuration — construction, initial encode, run, clean-halt
// gate, exactly what one `tangled_run` invocation pays — with --ecc=off and
// --ecc=correct at the default epoch, and fails if correct costs more than
// kMaxRatio times off.
//
// Method: the two modes are timed in strict alternation (so CPU frequency
// drift or a noisy neighbour hits both equally) and each side keeps its
// MINIMUM over kRounds rounds of kRunsPerRound runs — the minimum is the
// noise-free estimate of the true cost; means would let one descheduled
// round fail the build.
//
// Since the vector-dispatch rework it also guards the dense substrate
// itself: the dispatched tier (whatever best_supported() picks) must not be
// slower than the forced-scalar baseline on the fused dense op mix — a
// regression there would silently erase the tentpole speedup while every
// differential test stayed green.
//
// Exit status: 0 on pass, 1 on a ratio breach, 2 on a wrong answer (the
// smoke must never bless a build that broke the program it times).
#include <chrono>
#include <cstdio>

#include "arch/simulators.hpp"
#include "asm/assembler.hpp"
#include "asm/programs.hpp"
#include "pbp/qat_backend.hpp"
#include "pbp/simd.hpp"

namespace {

using namespace tangled;
using Clock = std::chrono::steady_clock;

constexpr double kMaxRatio = 8.0;  // correct may cost at most 8x off
// The dispatched SIMD tier may cost at most this much of the scalar
// baseline (>1 tolerates timer noise when best IS scalar).
constexpr double kMaxSimdRatio = 1.15;
constexpr int kRounds = 12;
constexpr int kRunsPerRound = 8;
constexpr std::uint64_t kBudget = 20'000;

/// One full tangled_run-equivalent execution; returns instructions retired
/// (0 on a wrong answer).
std::uint64_t one_run(const Program& p, pbp::EccMode mode) {
  FunctionalSim sim(16, pbp::Backend::kDense);
  sim.load(p);
  sim.set_ecc_mode(mode);
  const SimStats st = sim.run(kBudget);
  const bool ok = st.halted && st.trap.kind == TrapKind::kNone &&
                  sim.cpu().regs[0] == 5 && sim.cpu().regs[1] == 3;
  return ok ? st.instructions : 0;
}

struct Lane {
  pbp::EccMode mode;
  double best_s = 1e30;  // min round time, seconds
  std::uint64_t instructions = 0;
};

/// Min-of-rounds seconds for the fused dense op mix (ECC on, ways 16, the
/// bench_backend_compare substrate row) with the given tier forced.
/// Returns a negative value if the CPU cannot run the tier.
double time_substrate(pbp::simd::Tier tier) {
  if (!pbp::simd::set_tier(tier)) return -1.0;
  pbp::DenseQatBackend d(16, /*num_regs=*/16);
  d.set_ecc_mode(pbp::EccMode::kCorrect);
  for (unsigned r = 0; r < 16; ++r) d.had(r, r % 17);
  auto mix = [&] {
    d.cnot(0, 1);
    d.ccnot(2, 3, 4);
    d.cswap(5, 6, 7);
    d.and_(8, 9, 10);
    d.or_(11, 12, 13);
    d.xor_(14, 15, 0);
    if (d.popcount(1) == std::size_t(-1)) std::fprintf(stderr, "?");
  };
  for (int i = 0; i < 4; ++i) mix();  // warm-up
  double best = 1e30;
  for (int round = 0; round < kRounds; ++round) {
    const auto t0 = Clock::now();
    for (int i = 0; i < 64; ++i) mix();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  const Program p = assemble(figure10_source());
  Lane off{pbp::EccMode::kOff};
  Lane correct{pbp::EccMode::kCorrect};

  // Warm-up: fault in code, touch the tables, settle the allocator.
  if (one_run(p, off.mode) == 0 || one_run(p, correct.mode) == 0) {
    std::fprintf(stderr, "perf_smoke: warm-up run produced a wrong answer\n");
    return 2;
  }

  for (int round = 0; round < kRounds; ++round) {
    for (Lane* lane : {&off, &correct}) {
      const auto t0 = Clock::now();
      std::uint64_t instr = 0;
      for (int i = 0; i < kRunsPerRound; ++i) instr += one_run(p, lane->mode);
      const double s = std::chrono::duration<double>(Clock::now() - t0).count();
      if (instr == 0) {
        std::fprintf(stderr, "perf_smoke: wrong answer under ecc=%s\n",
                     pbp::ecc_mode_name(lane->mode));
        return 2;
      }
      lane->instructions = instr;
      if (s < lane->best_s) lane->best_s = s;
    }
  }

  const double off_rate =
      static_cast<double>(off.instructions) / off.best_s;
  const double correct_rate =
      static_cast<double>(correct.instructions) / correct.best_s;
  const double ratio = correct.best_s / off.best_s;
  std::printf("perf_smoke: fig10 dense ways=16, min of %d rounds x %d runs\n",
              kRounds, kRunsPerRound);
  std::printf("  ecc=off      %10.1f instr/s\n", off_rate);
  std::printf("  ecc=correct  %10.1f instr/s  (%.2fx the off-mode cost, "
              "limit %.1fx)\n",
              correct_rate, ratio, kMaxRatio);
  if (ratio > kMaxRatio) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — ecc=correct costs %.2fx ecc=off "
                 "(limit %.1fx)\n",
                 ratio, kMaxRatio);
    return 1;
  }

  // SIMD non-regression: the dispatched tier vs the forced-scalar baseline
  // on the fused dense substrate.
  const pbp::simd::Tier best_tier = pbp::simd::best_supported();
  const double scalar_s = time_substrate(pbp::simd::Tier::kScalar);
  const double vector_s = time_substrate(best_tier);
  pbp::simd::set_tier(best_tier);  // restore normal dispatch
  const double simd_ratio = vector_s / scalar_s;
  std::printf("  substrate    scalar %.4fs, %s %.4fs  (%.2fx scalar, "
              "limit %.2fx)\n",
              scalar_s, pbp::simd::tier_name(best_tier), vector_s, simd_ratio,
              kMaxSimdRatio);
  if (simd_ratio > kMaxSimdRatio) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — dispatched tier %s costs %.2fx the "
                 "forced-scalar dense substrate (limit %.2fx)\n",
                 pbp::simd::tier_name(best_tier), simd_ratio, kMaxSimdRatio);
    return 1;
  }
  std::printf("perf_smoke: OK\n");
  return 0;
}
