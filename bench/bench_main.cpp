// bench_main.cpp — shared entry point for every bench binary.
//
// The distro's libbenchmark package is compiled without NDEBUG, so every
// run prints "***WARNING*** Library was built as DEBUG. Timings may be
// affected." no matter how THIS repo is built.  The warning is baked into
// the shared library (PrintBasicContext emits it under #ifndef NDEBUG), so
// the only clean suppression is at the reporter's error stream: this main
// installs a line filter that drops exactly that line and forwards every
// other context/diagnostic line to stderr untouched.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

namespace {

/// std::streambuf that buffers whole lines and forwards them to a sink,
/// dropping lines carrying the libbenchmark built-as-DEBUG warning.
class DebugWarningFilter : public std::streambuf {
 public:
  explicit DebugWarningFilter(std::ostream& sink) : sink_(sink) {}
  ~DebugWarningFilter() override { flush_line(); }

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return ch;
    line_.push_back(static_cast<char>(ch));
    if (ch == '\n') flush_line();
    return ch;
  }

 private:
  void flush_line() {
    if (line_.empty()) return;
    if (line_.find("Library was built as DEBUG") == std::string::npos) {
      sink_ << line_;
      sink_.flush();
    }
    line_.clear();
  }

  std::ostream& sink_;
  std::string line_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  DebugWarningFilter filter(std::cerr);
  std::ostream err(&filter);
  benchmark::ConsoleReporter reporter;
  reporter.SetErrorStream(&err);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
