// bench_fig10_program — Figure 10 / §4.2: the paper's complete factoring
// program, end to end, on every implementation model.
//
// Reported per model: host time to simulate the whole program, plus the
// modelled cycle count and CPI as counters.  Expected shape (§3.1): the
// pipeline sustains ~1 instruction/cycle apart from the two-word Qat
// fetches (83 of the 91 instructions are two words, so CPI ≈ 1.9); the
// multi-cycle model pays ~4–5 cycles per instruction; the single-cycle
// model is CPI 1 by construction.
#include <benchmark/benchmark.h>

#include "arch/rtl_pipeline.hpp"
#include "arch/simulators.hpp"
#include "asm/programs.hpp"

namespace {

using namespace tangled;

template <typename Sim>
void run_fig10(benchmark::State& state, Sim&& make_sim, unsigned ways) {
  const Program p = assemble(figure10_source());
  SimStats st;
  std::uint16_t r0 = 0;
  std::uint16_t r1 = 0;
  for (auto _ : state) {
    auto sim = make_sim();
    sim.load(p);
    st = sim.run();
    r0 = sim.cpu().reg(0);
    r1 = sim.cpu().reg(1);
  }
  if (r0 != 5 || r1 != 3) state.SkipWithError("wrong factors");
  state.counters["modelled_cycles"] = static_cast<double>(st.cycles);
  state.counters["modelled_cpi"] = st.cpi();
  state.counters["instructions"] = static_cast<double>(st.instructions);
  state.counters["ways"] = static_cast<double>(ways);
}

void BM_fig10_functional(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  run_fig10(state, [&] { return FunctionalSim(ways); }, ways);
}

void BM_fig10_multicycle(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  run_fig10(state, [&] { return MultiCycleSim(ways); }, ways);
}

void BM_fig10_pipeline5(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  run_fig10(
      state,
      [&] { return PipelineSim(ways, {.stages = 5, .forwarding = true}); },
      ways);
}

void BM_fig10_pipeline4(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  run_fig10(
      state,
      [&] { return PipelineSim(ways, {.stages = 4, .forwarding = true}); },
      ways);
}

void BM_fig10_pipeline5_nofwd(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  run_fig10(
      state,
      [&] { return PipelineSim(ways, {.stages = 5, .forwarding = false}); },
      ways);
}

void BM_fig10_rtl(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  run_fig10(state, [&] { return RtlPipelineSim(ways); }, ways);
}

// 8-way = the class-project size; 16-way = the paper's full hardware.
BENCHMARK(BM_fig10_functional)->Arg(8)->Arg(16);
BENCHMARK(BM_fig10_rtl)->Arg(8)->Arg(16);
BENCHMARK(BM_fig10_multicycle)->Arg(8)->Arg(16);
BENCHMARK(BM_fig10_pipeline5)->Arg(8)->Arg(16);
BENCHMARK(BM_fig10_pipeline4)->Arg(8)->Arg(16);
BENCHMARK(BM_fig10_pipeline5_nofwd)->Arg(8)->Arg(16);

}  // namespace

