// bench_measurement — §2.7: the cost structure of the measurement family.
//
// "operations like the ANY, ALL, and POP described in earlier work provide a
// way to summarize an entangled superposition in as little as O(1) time,
// whereas meas would take O(2^E) time enumerating the values."
//
// Series:
//   BM_meas_enumerate/E — read out every channel with meas (the O(2^E) way)
//   BM_next_enumerate/E — read out only the 1 channels with next
//                         (cost ~ population, not 2^E)
//   BM_any_via_next/E   — the paper's ANY recipe: one next + one meas
//   BM_all_via_next/E   — ALL as NOT(ANY(NOT @a)) (§2.7)
//   BM_pop/E            — the pop instruction (single reduction pass)
//
// Expected shape: meas enumeration doubles per E step; next-based readout
// scales with how many 1s exist; ANY/ALL/POP stay near-flat.
#include <benchmark/benchmark.h>

#include <random>

#include "arch/qat_engine.hpp"

namespace {

using tangled::QatEngine;

QatEngine sparse_engine(unsigned ways) {
  QatEngine q(ways);
  std::mt19937_64 rng(ways);
  pbp::Aob a(ways);
  // ~32 set channels regardless of E: a sparse result vector, like the
  // factoring programs produce.
  for (int i = 0; i < 32; ++i) {
    a.set(rng() % a.bit_count(), true);
  }
  q.set_reg(7, a);
  return q;
}

void BM_meas_enumerate(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  QatEngine q = sparse_engine(ways);
  const std::size_t channels = q.channels();
  for (auto _ : state) {
    std::size_t ones = 0;
    for (std::size_t ch = 0; ch < channels; ++ch) {
      ones += q.meas(7, static_cast<std::uint16_t>(ch));
    }
    benchmark::DoNotOptimize(ones);
  }
  state.counters["channels_read"] = static_cast<double>(channels);
}

void BM_next_enumerate(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  QatEngine q = sparse_engine(ways);
  std::size_t found = 0;
  for (auto _ : state) {
    found = q.meas(7, 0);
    std::uint16_t ch = 0;
    while (true) {
      const std::uint16_t nxt = q.next(7, ch);
      if (nxt == 0) break;
      ch = nxt;
      ++found;
    }
    benchmark::DoNotOptimize(found);
  }
  state.counters["channels_read"] = static_cast<double>(found);
}

void BM_any_via_next(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  QatEngine q = sparse_engine(ways);
  for (auto _ : state) {
    // §2.7: ANY = (next after 0 != 0) || meas channel 0.
    const bool any = q.next(7, 0) != 0 || q.meas(7, 0) != 0;
    benchmark::DoNotOptimize(any);
  }
}

void BM_all_via_next(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  QatEngine q = sparse_engine(ways);
  for (auto _ : state) {
    // ALL @a = NOT ANY(NOT @a) — two not instructions around the ANY test,
    // restoring the register afterwards (PBP allows it: no decoherence).
    q.not_(7);
    const bool any_zero = q.next(7, 0) != 0 || q.meas(7, 0) != 0;
    q.not_(7);
    benchmark::DoNotOptimize(!any_zero);
  }
}

void BM_pop(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  QatEngine q = sparse_engine(ways);
  for (auto _ : state) {
    // True POP = pop-after-0 + meas(0) (§2.7's overflow-safe split).
    const std::size_t pop = q.pop(7, 0) + q.meas(7, 0);
    benchmark::DoNotOptimize(pop);
  }
}

#define MEAS_SWEEP(fn) BENCHMARK(fn)->Arg(8)->Arg(10)->Arg(12)->Arg(14)->Arg(16)
MEAS_SWEEP(BM_meas_enumerate);
MEAS_SWEEP(BM_next_enumerate);
MEAS_SWEEP(BM_any_via_next);
MEAS_SWEEP(BM_all_via_next);
MEAS_SWEEP(BM_pop);

}  // namespace

