// bench_ablation_ports — §5's design-simplification arguments, quantified.
//
// The paper's conclusions propose dropping hardware in four places.  Each
// ablation below runs the same computation with and without the dedicated
// instruction and reports the modelled pipeline cycles, so the "performance
// benefits ... outweighed by the hardware complexity" claims have numbers:
//
//   1. swap as an instruction vs the 3-xor macro sequence
//      (saves a 2nd register-file write port)
//   2. cswap as an instruction vs a 4-op and/or-based macro per output
//      (saves the 2nd write port AND the 3rd read port)
//   3. ccnot as an instruction vs and-into-temp + cnot macro
//      (saves the 3rd read port)
//   4. cnot as an instruction vs xor @a,@a,@b (no hardware at all)
//   5. had/zero/one instructions vs §5 reserved constant registers
#include <benchmark/benchmark.h>

#include "arch/simulators.hpp"

namespace {

using namespace tangled;

void run_and_report(benchmark::State& state, const std::string& src,
                    unsigned ways = 8) {
  const Program p = assemble(src);
  PipelineSim sim(ways);
  SimStats st;
  for (auto _ : state) {
    sim.cpu() = CpuState{};
    sim.load(p);
    st = sim.run();
  }
  state.counters["modelled_cycles"] = static_cast<double>(st.cycles);
  state.counters["instructions"] = static_cast<double>(st.instructions);
  state.counters["cpi"] = st.cpi();
}

std::string prologue() {
  return "had @1,1\nhad @2,3\nhad @3,5\n";
}

// --- 1: swap ---

void BM_swap_instruction(benchmark::State& state) {
  std::string src = prologue();
  for (int i = 0; i < 32; ++i) src += "swap @1,@2\n";
  run_and_report(state, src + "sys\n");
}

void BM_swap_macro(benchmark::State& state) {
  // The classic xor-exchange: 3 instructions, 1 write port each.
  std::string src = prologue();
  for (int i = 0; i < 32; ++i) {
    src += "xor @1,@1,@2\nxor @2,@2,@1\nxor @1,@1,@2\n";
  }
  run_and_report(state, src + "sys\n");
}

// --- 2: cswap ---

void BM_cswap_instruction(benchmark::State& state) {
  std::string src = prologue();
  for (int i = 0; i < 32; ++i) src += "cswap @1,@2,@3\n";
  run_and_report(state, src + "sys\n");
}

void BM_cswap_macro(benchmark::State& state) {
  // t = (a ^ b) & c;  a ^= t;  b ^= t — using a scratch register, all ops
  // 2-read/1-write.
  std::string src = prologue();
  for (int i = 0; i < 32; ++i) {
    src +=
        "xor @200,@1,@2\n"
        "and @200,@200,@3\n"
        "xor @1,@1,@200\n"
        "xor @2,@2,@200\n";
  }
  run_and_report(state, src + "sys\n");
}

// --- 3: ccnot ---

void BM_ccnot_instruction(benchmark::State& state) {
  std::string src = prologue();
  for (int i = 0; i < 32; ++i) src += "ccnot @1,@2,@3\n";
  run_and_report(state, src + "sys\n");
}

void BM_ccnot_macro(benchmark::State& state) {
  std::string src = prologue();
  for (int i = 0; i < 32; ++i) {
    src += "and @200,@2,@3\nxor @1,@1,@200\n";
  }
  run_and_report(state, src + "sys\n");
}

// --- 4: cnot ---

void BM_cnot_instruction(benchmark::State& state) {
  std::string src = prologue();
  for (int i = 0; i < 32; ++i) src += "cnot @1,@2\n";
  run_and_report(state, src + "sys\n");
}

void BM_cnot_as_xor(benchmark::State& state) {
  std::string src = prologue();
  for (int i = 0; i < 32; ++i) src += "xor @1,@1,@2\n";
  run_and_report(state, src + "sys\n");
}

// --- 5: had instruction vs reserved constant registers ---

void BM_had_instruction(benchmark::State& state) {
  std::string src;
  for (int i = 0; i < 32; ++i) {
    src += "had @" + std::to_string(10 + i % 8) + "," + std::to_string(i % 8) +
           "\n";
  }
  run_and_report(state, src + "sys\n");
}

void BM_had_const_reg_copy(benchmark::State& state) {
  // §5 layout: H(k) preloaded once into @2..@9; consumers copy with an OR.
  std::string src;
  for (int k = 0; k < 8; ++k) {
    src += "had @" + std::to_string(2 + k) + "," + std::to_string(k) + "\n";
  }
  for (int i = 0; i < 32; ++i) {
    const std::string h = std::to_string(2 + i % 8);
    src += "or @" + std::to_string(10 + i % 8) + ",@" + h + ",@" + h + "\n";
  }
  run_and_report(state, src + "sys\n");
}

BENCHMARK(BM_swap_instruction);
BENCHMARK(BM_swap_macro);
BENCHMARK(BM_cswap_instruction);
BENCHMARK(BM_cswap_macro);
BENCHMARK(BM_ccnot_instruction);
BENCHMARK(BM_ccnot_macro);
BENCHMARK(BM_cnot_instruction);
BENCHMARK(BM_cnot_as_xor);
BENCHMARK(BM_had_instruction);
BENCHMARK(BM_had_const_reg_copy);

}  // namespace

