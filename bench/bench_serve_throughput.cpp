// bench_serve_throughput — job-service throughput (ISSUE: concurrent serve
// layer).
//
// Measured, each over a full submit → wait_all → drain cycle of Figure 10
// factoring jobs:
//   * clean-batch throughput vs worker-thread count (scaling curve);
//   * a 25%-poisoned batch (the acceptance mix: recovery retries included);
//   * an RE batch under pool pressure (migration admission on the hot path);
//   * raw submit/report overhead with a trivial 2-instruction program —
//     the serve layer's fixed cost per job.
// Reported counter: jobs_per_s (wall-clock: UseRealTime, since CPU-time
// rates are meaningless for a multithreaded server).  Numbers live in
// EXPERIMENTS.md, "Serve layer".
//   * the same fixed-overhead batch pushed through the loopback-TCP front
//     door (framed wire protocol + CRC + report streaming) — the "wire
//     tax" relative to in-process submission;
//   * fixed overhead with the simulator pool off vs on (cold construction
//     per job vs pooled reset, ISSUE 10);
//   * the TCP batch submitted per-frame vs as one kSubmitBatch frame with
//     coalesced kReportBatch drains.
#include <benchmark/benchmark.h>

#include <vector>

#include "asm/assembler.hpp"
#include "asm/programs.hpp"
#include "serve/job_server.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"

namespace {

using namespace tangled;
using namespace tangled::serve;

bool factors_ok(const CpuState& cpu) {
  return cpu.regs[0] == 5 && cpu.regs[1] == 3;
}

constexpr unsigned kBatch = 64;

Job fig10_job(const Program& p, unsigned i, bool poison) {
  static const SimKind kKinds[] = {SimKind::kFunc,  SimKind::kMulti,
                                   SimKind::kMultiFsm, SimKind::kPipe4,
                                   SimKind::kPipe5, SimKind::kPipe5NoFwd,
                                   SimKind::kRtl};
  Job j;
  j.sim = kKinds[i % std::size(kKinds)];
  j.program = p;
  j.max_instructions = 20'000;
  j.checkpoint_every = 25;
  j.validate = factors_ok;
  if (poison) {
    FaultEvent ev;
    ev.target = FaultEvent::Target::kHostReg;
    ev.at_instr = 85;
    ev.addr = 0;
    ev.bit = 1;
    j.fault_plan.events.push_back(ev);
  }
  return j;
}

void run_batch(benchmark::State& state, const Program& p, unsigned threads,
               double inject_frac, pbp::Backend backend,
               std::size_t pool_cap) {
  std::uint64_t jobs_done = 0;
  for (auto _ : state) {
    JobServerConfig config;
    config.threads = threads;
    config.queue_capacity = kBatch;
    JobServer server(config);
    const unsigned poisoned =
        static_cast<unsigned>(kBatch * inject_frac + 0.5);
    for (unsigned i = 0; i < kBatch; ++i) {
      Job j = fig10_job(p, i, i < poisoned);
      j.backend = backend;
      j.ways = backend == pbp::Backend::kCompressed ? 16 : 8;
      j.fault_plan.max_pool_symbols = pool_cap;
      server.submit(std::move(j));
    }
    const auto reports = server.wait_all();
    jobs_done += reports.size();
    benchmark::DoNotOptimize(reports);
  }
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(jobs_done), benchmark::Counter::kIsRate);
}

void BM_serve_clean_batch(benchmark::State& state) {
  const Program p = assemble(figure10_source());
  run_batch(state, p, static_cast<unsigned>(state.range(0)),
            /*inject_frac=*/0.0, pbp::Backend::kDense, /*pool_cap=*/0);
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_serve_clean_batch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_serve_poisoned_batch(benchmark::State& state) {
  const Program p = assemble(figure10_source());
  run_batch(state, p, /*threads=*/8, /*inject_frac=*/0.25,
            pbp::Backend::kDense, /*pool_cap=*/0);
}
BENCHMARK(BM_serve_poisoned_batch)->UseRealTime();

void BM_serve_re_migration_batch(benchmark::State& state) {
  const Program p = assemble(figure10_source());
  run_batch(state, p, /*threads=*/8, /*inject_frac=*/0.0,
            pbp::Backend::kCompressed, /*pool_cap=*/8);
}
BENCHMARK(BM_serve_re_migration_batch)->UseRealTime();

void BM_serve_fixed_overhead(benchmark::State& state) {
  // 2 instructions per job against a LONG-LIVED server (how tangled_served
  // actually runs): what's measured is the steady-state per-job floor —
  // queueing, reservation, sim construction (or pooled reset, Arg =
  // sim_pool entries), and report publication.  Arg(0) = cold
  // construct-per-job; Arg(8) = pooled reuse.
  const Program p = assemble("lex $1,1\nsys\n");
  const auto pool = static_cast<std::size_t>(state.range(0));
  JobServerConfig config;
  config.threads = 8;
  config.queue_capacity = kBatch;
  config.sim_pool = pool;
  JobServer server(config);
  std::uint64_t jobs_done = 0;
  std::vector<JobServer::JobId> ids;
  ids.reserve(kBatch);
  for (auto _ : state) {
    ids.clear();
    for (unsigned i = 0; i < kBatch; ++i) {
      Job j;
      j.program = p;
      j.max_instructions = 100;
      if (const auto id = server.submit(std::move(j))) ids.push_back(*id);
    }
    for (const auto id : ids) {
      benchmark::DoNotOptimize(server.wait(id));
      ++jobs_done;
    }
  }
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(jobs_done), benchmark::Counter::kIsRate);
  state.counters["sim_pool"] = static_cast<double>(pool);
}
BENCHMARK(BM_serve_fixed_overhead)->Arg(0)->Arg(8)->UseRealTime();

void BM_serve_tcp_fixed_overhead(benchmark::State& state) {
  // The same trivial 2-instruction batch, but submitted through the framed
  // loopback-TCP front door: encode + CRC + syscalls + the report pump.
  // The delta against BM_serve_fixed_overhead is the wire tax per job.
  std::uint64_t jobs_done = 0;
  for (auto _ : state) {
    net::NetServerConfig config;
    config.jobs.threads = 8;
    config.jobs.queue_capacity = kBatch;
    net::NetServer server(config);
    net::ServeClientConfig cc;
    cc.port = server.port();
    net::ServeClient client(cc);
    for (unsigned i = 0; i < kBatch; ++i) {
      net::SubmitRequest req;
      req.name = "noop";
      req.source = "lex $1,1\nsys\n";
      req.max_instructions = 100;
      client.submit(req);
    }
    for (unsigned i = 0; i < kBatch; ++i) {
      if (client.next_report(std::chrono::milliseconds{30'000})) ++jobs_done;
    }
    server.begin_drain();
    server.wait_drained();
  }
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(jobs_done), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_serve_tcp_fixed_overhead)->UseRealTime();

void BM_serve_tcp_batched_overhead(benchmark::State& state) {
  // The same trivial batch, but submitted as ONE kSubmitBatch frame and
  // drained through coalesced kReportBatch frames.  The delta against
  // BM_serve_tcp_fixed_overhead is the per-frame wire tax that batching
  // amortizes away.
  std::uint64_t jobs_done = 0;
  for (auto _ : state) {
    net::NetServerConfig config;
    config.jobs.threads = 8;
    config.jobs.queue_capacity = kBatch;
    net::NetServer server(config);
    net::ServeClientConfig cc;
    cc.port = server.port();
    net::ServeClient client(cc);
    std::vector<JobSpec> specs(kBatch);
    for (auto& s : specs) {
      s.name = "noop";
      s.source = "lex $1,1\nsys\n";
      s.max_instructions = 100;
    }
    std::vector<net::SubmitBatchOk::Item> items;
    unsigned admitted = 0;
    if (client.submit_batch(specs, &items)) {
      for (const auto& it : items) {
        if (it.status == net::SubmitBatchOk::Status::kAdmitted) ++admitted;
      }
    }
    for (unsigned i = 0; i < admitted; ++i) {
      if (client.next_report(std::chrono::milliseconds{30'000})) ++jobs_done;
    }
    server.begin_drain();
    server.wait_drained();
  }
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(jobs_done), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_serve_tcp_batched_overhead)->UseRealTime();

}  // namespace

