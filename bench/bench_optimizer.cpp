// bench_optimizer — the gate-level-optimization motivation ([2] in the
// paper: "extensive application of compiler optimization of programs at the
// gate level may be able to provide orders of magnitude reductions in ...
// gate actions").
//
// For each circuit family: raw recorded gate count, optimized gate count,
// optimization wall time, and the Qat-instruction counts of the emitted
// programs — the "gate actions saved" the motivation promises.  The
// factoring circuits fold hard (constant operands kill most partial
// products); the SAT oracle, with no constants, shows the honest lower
// bound where only CSE and dead-code help.
#include <benchmark/benchmark.h>

#include "pbp/optimizer.hpp"
#include "pbp/pint.hpp"

namespace {

using pbp::Circuit;
using pbp::Pint;

struct Built {
  std::shared_ptr<Circuit> circ;
  std::vector<Circuit::Node> roots;
};

Built build_factoring(unsigned bits) {
  const unsigned ways = 2 * bits;
  auto ctx = pbp::PbpContext::create(ways, pbp::Backend::kDense);
  auto circ = std::make_shared<Circuit>(ctx);
  const std::uint64_t n = bits == 4 ? 15 : 221;
  const Pint nn = Pint::constant(circ, bits, n);
  const Pint b = Pint::hadamard(circ, bits, (1u << bits) - 1);
  const Pint c =
      Pint::hadamard(circ, bits, ((1u << bits) - 1) << bits);
  const Pint e = Pint::eq(Pint::mul(b, c), nn);
  return {circ, {e.bit(0)}};
}

Built build_modexp() {
  auto ctx = pbp::PbpContext::create(8, pbp::Backend::kDense);
  auto circ = std::make_shared<Circuit>(ctx);
  const Pint x = Pint::hadamard(circ, 8, 0xff);
  const Pint f = Pint::modexp_const(2, x, 15);
  std::vector<Circuit::Node> roots;
  for (unsigned i = 0; i < f.width(); ++i) roots.push_back(f.bit(i));
  return {circ, roots};
}

Built build_sat() {
  auto ctx = pbp::PbpContext::create(12, pbp::Backend::kDense);
  auto circ = std::make_shared<Circuit>(ctx);
  std::vector<Circuit::Node> lits;
  for (unsigned i = 0; i < 12; ++i) lits.push_back(circ->had(i));
  Circuit::Node acc = circ->one();
  for (unsigned cl = 0; cl < 24; ++cl) {
    const auto l1 = lits[(cl * 5 + 1) % 12];
    const auto l2 = circ->g_not(lits[(cl * 7 + 3) % 12]);
    const auto l3 = lits[(cl * 11 + 6) % 12];
    acc = circ->g_and(acc, circ->g_or(circ->g_or(l1, l2), l3));
  }
  return {circ, {acc}};
}

void report(benchmark::State& state, const Built& b) {
  pbp::OptimizeResult r{Circuit(b.circ->context()), {}, {}};
  for (auto _ : state) {
    r = pbp::optimize(*b.circ, b.roots);
    benchmark::DoNotOptimize(r.stats.gates_after);
  }
  state.counters["gates_raw"] = static_cast<double>(r.stats.gates_before);
  state.counters["gates_opt"] = static_cast<double>(r.stats.gates_after);
  state.counters["folds"] = static_cast<double>(r.stats.folds);
  state.counters["cse_hits"] = static_cast<double>(r.stats.cse_hits);
  pbp::EmitOptions eo;
  eo.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
  state.counters["instrs_raw"] = static_cast<double>(
      pbp::emit_qat(*b.circ, b.roots, eo).instruction_count);
  state.counters["instrs_opt"] = static_cast<double>(
      pbp::emit_qat(r.circuit, r.roots, eo).instruction_count);
}

void BM_optimize_factor15(benchmark::State& state) {
  const Built b = build_factoring(4);
  report(state, b);
}
void BM_optimize_factor221(benchmark::State& state) {
  const Built b = build_factoring(8);
  report(state, b);
}
void BM_optimize_modexp(benchmark::State& state) {
  const Built b = build_modexp();
  report(state, b);
}
void BM_optimize_sat(benchmark::State& state) {
  const Built b = build_sat();
  report(state, b);
}

BENCHMARK(BM_optimize_factor15);
BENCHMARK(BM_optimize_factor221);
BENCHMARK(BM_optimize_modexp);
BENCHMARK(BM_optimize_sat);

}  // namespace

