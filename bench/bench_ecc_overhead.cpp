// bench_ecc_overhead — cost of the data-integrity layer (ISSUE: end-to-end
// data integrity; verification-scheduling rework).
//
// Measured:
//   * Figure 10 end to end per ECC mode (off / detect / correct), dense and
//     RE-compressed backends, with and without a periodic scrub cadence —
//     the verify-on-access tax on real Qat-heavy code;
//   * the same with --ecc-epoch=25: re-verification of unwritten state is
//     elided until the retired-instruction clock crosses an epoch boundary;
//   * a full scrub sweep of protected state (Qat register file + 64K-word
//     Tangled memory) in isolation — the cost one scrub interval pays;
//   * the raw SECDED codec kernels (words/s): the scalar per-bit reference
//     against the table-driven fast path the hot paths use;
//   * the sidecar storage footprint per mode (reported as a counter).
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "arch/simulators.hpp"
#include "asm/programs.hpp"
#include "pbp/ecc.hpp"
#include "pbp/simd.hpp"

namespace {

using namespace tangled;

pbp::EccMode mode_of(std::int64_t r) {
  switch (r) {
    case 1:
      return pbp::EccMode::kDetect;
    case 2:
      return pbp::EccMode::kCorrect;
    default:
      return pbp::EccMode::kOff;
  }
}

void run_fig10(benchmark::State& state, pbp::Backend backend, unsigned ways,
               std::uint64_t scrub_every, std::uint64_t ecc_epoch = 1) {
  const pbp::EccMode mode = mode_of(state.range(0));
  const Program p = assemble(figure10_source());
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    FunctionalSim sim(ways, backend);
    sim.load(p);
    sim.set_ecc_mode(mode);
    sim.set_ecc_epoch(ecc_epoch);
    sim.set_scrub_every(scrub_every);
    const SimStats st = sim.run(20'000);
    instructions += st.instructions;
    benchmark::DoNotOptimize(sim.cpu().regs[0]);
  }
  state.counters["instr_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
  {
    FunctionalSim sim(ways, backend);
    sim.load(p);
    sim.set_ecc_mode(mode);
    state.counters["qat_ecc_bytes"] =
        static_cast<double>(sim.qat().backend().ecc_bytes());
  }
  state.SetLabel(pbp::ecc_mode_name(mode));
}

void BM_fig10_dense(benchmark::State& state) {
  run_fig10(state, pbp::Backend::kDense, 8, /*scrub_every=*/0);
}
BENCHMARK(BM_fig10_dense)->Arg(0)->Arg(1)->Arg(2);

void BM_fig10_dense16(benchmark::State& state) {
  run_fig10(state, pbp::Backend::kDense, 16, /*scrub_every=*/0);
}
BENCHMARK(BM_fig10_dense16)->Arg(0)->Arg(1)->Arg(2);

void BM_fig10_re16(benchmark::State& state) {
  run_fig10(state, pbp::Backend::kCompressed, 16, /*scrub_every=*/0);
}
BENCHMARK(BM_fig10_re16)->Arg(0)->Arg(1)->Arg(2);

void BM_fig10_dense_scrub25(benchmark::State& state) {
  run_fig10(state, pbp::Backend::kDense, 8, /*scrub_every=*/25);
}
BENCHMARK(BM_fig10_dense_scrub25)->Arg(0)->Arg(1)->Arg(2);

// Epoch-scheduled verification: unwritten state is re-verified only once
// per 25 retired instructions.  Compare against the epoch-1 rows above.
void BM_fig10_dense16_epoch25(benchmark::State& state) {
  run_fig10(state, pbp::Backend::kDense, 16, /*scrub_every=*/0,
            /*ecc_epoch=*/25);
}
BENCHMARK(BM_fig10_dense16_epoch25)->Arg(1)->Arg(2);

void BM_fig10_re16_epoch25(benchmark::State& state) {
  run_fig10(state, pbp::Backend::kCompressed, 16, /*scrub_every=*/0,
            /*ecc_epoch=*/25);
}
BENCHMARK(BM_fig10_re16_epoch25)->Arg(1)->Arg(2);

// Steady-state throughput: one machine constructed up front, Figure 10
// re-run on it repeatedly (PC reset between runs).  This isolates the
// per-instruction verification tax from the one-time construction /
// initial-encode cost the per-run rows above include, and lets the epoch
// stamps reach their steady state across runs.
void run_fig10_steady(benchmark::State& state, pbp::Backend backend,
                      unsigned ways, std::uint64_t ecc_epoch) {
  const pbp::EccMode mode = mode_of(state.range(0));
  const Program p = assemble(figure10_source());
  FunctionalSim sim(ways, backend);
  sim.load(p);
  sim.set_ecc_mode(mode);
  sim.set_ecc_epoch(ecc_epoch);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    sim.cpu().pc = 0;
    sim.cpu().halted = false;
    sim.cpu().trap = {};
    instructions += sim.run(20'000).instructions;
    benchmark::DoNotOptimize(sim.cpu().regs[0]);
  }
  state.counters["instr_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
  state.SetLabel(pbp::ecc_mode_name(mode));
}

void BM_fig10_dense16_steady(benchmark::State& state) {
  run_fig10_steady(state, pbp::Backend::kDense, 16, /*ecc_epoch=*/1);
}
BENCHMARK(BM_fig10_dense16_steady)->Arg(0)->Arg(1)->Arg(2);

void BM_fig10_dense16_steady_epoch25(benchmark::State& state) {
  run_fig10_steady(state, pbp::Backend::kDense, 16, /*ecc_epoch=*/25);
}
BENCHMARK(BM_fig10_dense16_steady_epoch25)->Arg(1)->Arg(2);

void BM_fig10_re16_steady(benchmark::State& state) {
  run_fig10_steady(state, pbp::Backend::kCompressed, 16, /*ecc_epoch=*/1);
}
BENCHMARK(BM_fig10_re16_steady)->Arg(0)->Arg(1)->Arg(2);

void BM_fig10_re16_steady_epoch25(benchmark::State& state) {
  run_fig10_steady(state, pbp::Backend::kCompressed, 16, /*ecc_epoch=*/25);
}
BENCHMARK(BM_fig10_re16_steady_epoch25)->Arg(1)->Arg(2);

void BM_scrub_sweep(benchmark::State& state) {
  const pbp::EccMode mode = mode_of(state.range(0));
  FunctionalSim sim(16, pbp::Backend::kDense);
  sim.load(assemble(figure10_source()));
  sim.set_ecc_mode(mode);
  sim.run(40);  // registers in flight
  for (auto _ : state) {
    auto sweep = sim.qat().scrub();
    sweep += sim.memory().scrub_ecc();
    benchmark::DoNotOptimize(sweep);
  }
  state.SetLabel(pbp::ecc_mode_name(mode));
}
BENCHMARK(BM_scrub_sweep)->Arg(1)->Arg(2);

// --- Raw codec kernels -----------------------------------------------------
// words/s through the (72,64) encoder: the scalar per-bit reference
// (secded64_encode) against the table-driven fast path
// (secded64_encode_fast) that every hot path now uses.

std::vector<std::uint64_t> random_words(std::size_t n) {
  std::mt19937_64 rng(0xecc5eed);
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) x = rng();
  return w;
}

void BM_codec64_scalar(benchmark::State& state) {
  const auto words = random_words(4096);
  std::uint64_t n = 0;
  for (auto _ : state) {
    std::uint8_t acc = 0;
    for (const std::uint64_t w : words) acc ^= pbp::secded64_encode(w);
    benchmark::DoNotOptimize(acc);
    n += words.size();
  }
  state.counters["words_per_s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_codec64_scalar);

void BM_codec64_table(benchmark::State& state) {
  const auto words = random_words(4096);
  std::uint64_t n = 0;
  for (auto _ : state) {
    std::uint8_t acc = 0;
    for (const std::uint64_t w : words) acc ^= pbp::secded64_encode_fast(w);
    benchmark::DoNotOptimize(acc);
    n += words.size();
  }
  state.counters["words_per_s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_codec64_table);

void BM_codec64_check_block(benchmark::State& state) {
  const auto words = random_words(4096);
  std::vector<std::uint8_t> checks(words.size());
  pbp::secded64_encode_block(words.data(), checks.data(), words.size());
  std::uint64_t n = 0;
  for (auto _ : state) {
    pbp::EccSweep sweep;
    auto mutable_words = words;
    const auto r =
        pbp::secded64_check_block(pbp::EccMode::kCorrect, mutable_words.data(),
                                  checks.data(), words.size(), sweep);
    benchmark::DoNotOptimize(r);
    n += words.size();
  }
  state.counters["words_per_s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_codec64_check_block);

// Block codec per forced SIMD tier (Arg 0 = scalar, 1 = avx2, 2 = avx512):
// encode_block and the clean-path check sweep, the two kernels every fused
// dense op and every scrub interval pays.  Unsupported tiers are skipped.
void with_tier(benchmark::State& state, void (*body)(benchmark::State&)) {
  const auto tier = static_cast<pbp::simd::Tier>(state.range(0));
  const pbp::simd::Tier restore = pbp::simd::active();
  if (!pbp::simd::set_tier(tier)) {
    state.SkipWithError("SIMD tier not supported on this CPU");
    return;
  }
  body(state);
  state.SetLabel(pbp::simd::tier_name(tier));
  pbp::simd::set_tier(restore);
}

void BM_codec64_encode_block_tier(benchmark::State& state) {
  with_tier(state, [](benchmark::State& s) {
    const auto words = random_words(4096);
    std::vector<std::uint8_t> checks(words.size());
    std::uint64_t n = 0;
    for (auto _ : s) {
      pbp::secded64_encode_block(words.data(), checks.data(), words.size());
      benchmark::DoNotOptimize(checks.data());
      n += words.size();
    }
    s.counters["words_per_s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
  });
}
BENCHMARK(BM_codec64_encode_block_tier)->Arg(0)->Arg(1)->Arg(2);

void BM_codec64_check_block_tier(benchmark::State& state) {
  with_tier(state, [](benchmark::State& s) {
    auto words = random_words(4096);
    std::vector<std::uint8_t> checks(words.size());
    pbp::secded64_encode_block(words.data(), checks.data(), words.size());
    std::uint64_t n = 0;
    for (auto _ : s) {
      pbp::EccSweep sweep;
      const auto r = pbp::secded64_check_block(pbp::EccMode::kCorrect,
                                               words.data(), checks.data(),
                                               words.size(), sweep);
      benchmark::DoNotOptimize(r);
      n += words.size();
    }
    s.counters["words_per_s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
  });
}
BENCHMARK(BM_codec64_check_block_tier)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

