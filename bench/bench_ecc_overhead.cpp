// bench_ecc_overhead — cost of the data-integrity layer (ISSUE: end-to-end
// data integrity).
//
// Measured:
//   * Figure 10 end to end per ECC mode (off / detect / correct), dense and
//     RE-compressed backends, with and without a periodic scrub cadence —
//     the verify-on-access tax on real Qat-heavy code;
//   * a full scrub sweep of protected state (Qat register file + 64K-word
//     Tangled memory) in isolation — the cost one scrub interval pays;
//   * the sidecar storage footprint per mode (reported as a counter).
#include <benchmark/benchmark.h>

#include "arch/simulators.hpp"
#include "asm/programs.hpp"

namespace {

using namespace tangled;

pbp::EccMode mode_of(std::int64_t r) {
  switch (r) {
    case 1:
      return pbp::EccMode::kDetect;
    case 2:
      return pbp::EccMode::kCorrect;
    default:
      return pbp::EccMode::kOff;
  }
}

void run_fig10(benchmark::State& state, pbp::Backend backend, unsigned ways,
               std::uint64_t scrub_every) {
  const pbp::EccMode mode = mode_of(state.range(0));
  const Program p = assemble(figure10_source());
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    FunctionalSim sim(ways, backend);
    sim.load(p);
    sim.set_ecc_mode(mode);
    sim.set_scrub_every(scrub_every);
    const SimStats st = sim.run(20'000);
    instructions += st.instructions;
    benchmark::DoNotOptimize(sim.cpu().regs[0]);
  }
  state.counters["instr_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
  {
    FunctionalSim sim(ways, backend);
    sim.load(p);
    sim.set_ecc_mode(mode);
    state.counters["qat_ecc_bytes"] =
        static_cast<double>(sim.qat().backend().ecc_bytes());
  }
  state.SetLabel(pbp::ecc_mode_name(mode));
}

void BM_fig10_dense(benchmark::State& state) {
  run_fig10(state, pbp::Backend::kDense, 8, /*scrub_every=*/0);
}
BENCHMARK(BM_fig10_dense)->Arg(0)->Arg(1)->Arg(2);

void BM_fig10_dense16(benchmark::State& state) {
  run_fig10(state, pbp::Backend::kDense, 16, /*scrub_every=*/0);
}
BENCHMARK(BM_fig10_dense16)->Arg(0)->Arg(1)->Arg(2);

void BM_fig10_re16(benchmark::State& state) {
  run_fig10(state, pbp::Backend::kCompressed, 16, /*scrub_every=*/0);
}
BENCHMARK(BM_fig10_re16)->Arg(0)->Arg(1)->Arg(2);

void BM_fig10_dense_scrub25(benchmark::State& state) {
  run_fig10(state, pbp::Backend::kDense, 8, /*scrub_every=*/25);
}
BENCHMARK(BM_fig10_dense_scrub25)->Arg(0)->Arg(1)->Arg(2);

void BM_scrub_sweep(benchmark::State& state) {
  const pbp::EccMode mode = mode_of(state.range(0));
  FunctionalSim sim(16, pbp::Backend::kDense);
  sim.load(assemble(figure10_source()));
  sim.set_ecc_mode(mode);
  sim.run(40);  // registers in flight
  for (auto _ : state) {
    auto sweep = sim.qat().scrub();
    sweep += sim.memory().scrub_ecc();
    benchmark::DoNotOptimize(sweep);
  }
  state.SetLabel(pbp::ecc_mode_name(mode));
}
BENCHMARK(BM_scrub_sweep)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
