// bench_backend_compare — dense vs RE-compressed Qat register files running
// the SAME compiled instruction stream (the §1.2 storage/work claim, made
// measurable end to end).
//
// The workload is the Figure 9 / §4.1 factoring kernel: compile the
// b*c == N equality cone to a Qat program once, then execute it on a
// QatEngine whose register file is
//
//   dense — one materialized 2^E-bit AoB per register (the hardware model);
//   re    — run-length-encoded chunk symbols over a shared ChunkPool with
//           chunk-level op memoization and copy-on-write register moves.
//
// Engines are constructed OUTSIDE the timed loop, so the RE pool's memo
// table is warm across iterations — deliberately: that is the steady state
// of a resident coprocessor runtime, and it is exactly where the paper's
// "exponential factor" for low-entropy states shows up.  Counters report
// the storage ratio and the compiled program size.
//
//   BM_factor_program/<ways>/dense
//   BM_factor_program/<ways>/re
//   BM_factor_readout/<ways>/<backend>   (measurement family only)
//   BM_dense_substrate/<ways>/<tier>/<ecc>/<threads>  (raw register file)
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "arch/qat_program.hpp"
#include "pbp/pint.hpp"
#include "pbp/qat_backend.hpp"
#include "pbp/simd.hpp"

namespace {

using pbp::Circuit;
using pbp::Pint;
using tangled::compile_qat;
using tangled::QatEngine;
using tangled::QatProgram;
using tangled::run_on;

struct Problem {
  std::uint64_t n;
  unsigned bits;
};

Problem problem_for(unsigned ways) {
  switch (ways) {
    case 8:
      return {15, 4};
    case 14:
      return {77, 7};
    default:
      return {221, 8};  // ways 16, the paper's hardware width
  }
}

/// Compile the factoring cone once per (ways); shared by all iterations.
const QatProgram& program_for(unsigned ways) {
  static std::unordered_map<unsigned, std::unique_ptr<QatProgram>> cache;
  auto it = cache.find(ways);
  if (it == cache.end()) {
    const Problem pr = problem_for(ways);
    auto ctx = pbp::PbpContext::create(ways, pbp::Backend::kDense);
    auto circ = std::make_shared<Circuit>(ctx, /*hash_cons=*/true);
    const Pint n = Pint::constant(circ, pr.bits, pr.n);
    const Pint b = Pint::hadamard(circ, pr.bits, (1u << pr.bits) - 1);
    const Pint c = Pint::hadamard(circ, pr.bits,
                                  ((1u << pr.bits) - 1) << pr.bits);
    const pbp::Circuit::Node roots[] = {
        Pint::eq(Pint::mul(b, c), n).bit(0)};
    pbp::EmitOptions opts;
    opts.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
    it = cache
             .emplace(ways, std::make_unique<QatProgram>(
                                compile_qat(*circ, roots, opts)))
             .first;
  }
  return *it->second;
}

pbp::Backend backend_arg(const benchmark::State& state) {
  return state.range(1) == 0 ? pbp::Backend::kDense
                             : pbp::Backend::kCompressed;
}

/// §1.2: "AoB representations are treated as individual symbols" — the RE
/// layer's natural chunk is one full hardware AoB, so chunk_ways = ways.
/// (Smaller chunks trade steady-state speed for pool dedup; see the
/// chunk-size sweep in EXPERIMENTS.md.)
QatEngine make_engine(unsigned ways, pbp::Backend kind) {
  return QatEngine(ways, kind, /*chunk_ways=*/ways);
}

void set_label(benchmark::State& state) {
  state.SetLabel(state.range(1) == 0 ? "dense" : "re");
}

/// Full program execution per iteration on a persistent engine.
void BM_factor_program(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const QatProgram& p = program_for(ways);
  QatEngine engine = make_engine(ways, backend_arg(state));
  for (auto _ : state) {
    run_on(engine, p);
    benchmark::DoNotOptimize(engine.reg_popcount(p.root_regs[0]));
  }
  set_label(state);
  state.counters["qat_instrs"] =
      static_cast<double>(p.instrs.size());
  state.counters["storage_bytes"] =
      static_cast<double>(engine.storage_bytes());
  state.counters["factors_pop"] =
      static_cast<double>(engine.reg_popcount(p.root_regs[0]));
}

/// Non-destructive readout only: walk every factor channel with next.
void BM_factor_readout(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const QatProgram& p = program_for(ways);
  QatEngine engine = make_engine(ways, backend_arg(state));
  run_on(engine, p);
  const unsigned root = p.root_regs[0];
  std::size_t found = 0;
  for (auto _ : state) {
    found = 0;
    std::size_t ch = 0;
    while (auto nx = engine.next_wide(root, ch)) {
      ch = *nx;
      ++found;
      if (ch + 1 >= engine.channels()) break;
    }
    benchmark::DoNotOptimize(found);
  }
  set_label(state);
  state.counters["factors"] = static_cast<double>(found);
}

void FactorArgs(benchmark::internal::Benchmark* b) {
  for (int ways : {8, 14, 16}) {
    b->Args({ways, 0});
    b->Args({ways, 1});
  }
}

BENCHMARK(BM_factor_program)->Apply(FactorArgs);
BENCHMARK(BM_factor_readout)->Args({16, 0})->Args({16, 1});

// --- Raw dense substrate at hardware and beyond-hardware widths -----------
//
// The vector-dispatch rows: a fixed Table 3 op mix plus one measurement
// reduction per iteration on a bare DenseQatBackend, with the SIMD tier
// forced per row.  Ways 20 and 24 are past the historical practical ceiling
// for dense-with-ECC; with the fused vector SECDED kernels (and optionally
// worker-thread sharding at >= kShardMinWords) they complete comfortably.
// word_ops_per_s counts payload words touched by the op mix — the unit the
// EXPERIMENTS.md before/after tables use.
void BM_dense_substrate(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const auto tier = static_cast<pbp::simd::Tier>(state.range(1));
  const bool ecc_on = state.range(2) != 0;
  const unsigned threads = static_cast<unsigned>(state.range(3));
  const pbp::simd::Tier restore = pbp::simd::active();
  if (!pbp::simd::set_tier(tier)) {
    state.SkipWithError("SIMD tier not supported on this CPU");
    return;
  }
  {
    pbp::DenseQatBackend d(ways, /*num_regs=*/16);
    if (ecc_on) d.set_ecc_mode(pbp::EccMode::kCorrect);
    d.set_threads(threads);
    for (unsigned r = 0; r < 16; ++r) d.had(r, r % (ways + 1));
    const std::size_t words = (std::size_t{1} << ways) / 64;
    std::size_t touched = 0;
    for (auto _ : state) {
      d.cnot(0, 1);
      d.ccnot(2, 3, 4);
      d.cswap(5, 6, 7);
      d.and_(8, 9, 10);
      d.or_(11, 12, 13);
      d.xor_(14, 15, 0);
      benchmark::DoNotOptimize(d.popcount(1));
      touched += words * 7;
    }
    state.counters["word_ops_per_s"] = benchmark::Counter(
        static_cast<double>(touched), benchmark::Counter::kIsRate);
    state.counters["storage_bytes"] =
        static_cast<double>(d.storage_bytes() + d.ecc_bytes());
    state.SetLabel(std::string(pbp::simd::tier_name(tier)) +
                   (ecc_on ? "/ecc=correct" : "/ecc=off") + "/t" +
                   std::to_string(threads));
  }
  pbp::simd::set_tier(restore);
}

void DenseSubstrateArgs(benchmark::internal::Benchmark* b) {
  const auto best = static_cast<int>(pbp::simd::best_supported());
  for (const int ways : {16, 20, 24}) {
    for (const int ecc : {0, 1}) {
      b->Args({ways, 0, ecc, 1});  // forced-scalar baseline
      if (best != 0) b->Args({ways, best, ecc, 1});
    }
    // Sharded rows only where the register clears kShardMinWords (ways 20+).
    if (ways >= 20) b->Args({ways, best, 1, 2});
  }
}

BENCHMARK(BM_dense_substrate)->Apply(DenseSubstrateArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace

