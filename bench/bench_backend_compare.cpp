// bench_backend_compare — dense vs RE-compressed Qat register files running
// the SAME compiled instruction stream (the §1.2 storage/work claim, made
// measurable end to end).
//
// The workload is the Figure 9 / §4.1 factoring kernel: compile the
// b*c == N equality cone to a Qat program once, then execute it on a
// QatEngine whose register file is
//
//   dense — one materialized 2^E-bit AoB per register (the hardware model);
//   re    — run-length-encoded chunk symbols over a shared ChunkPool with
//           chunk-level op memoization and copy-on-write register moves.
//
// Engines are constructed OUTSIDE the timed loop, so the RE pool's memo
// table is warm across iterations — deliberately: that is the steady state
// of a resident coprocessor runtime, and it is exactly where the paper's
// "exponential factor" for low-entropy states shows up.  Counters report
// the storage ratio and the compiled program size.
//
//   BM_factor_program/<ways>/dense
//   BM_factor_program/<ways>/re
//   BM_factor_readout/<ways>/<backend>   (measurement family only)
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "arch/qat_program.hpp"
#include "pbp/pint.hpp"

namespace {

using pbp::Circuit;
using pbp::Pint;
using tangled::compile_qat;
using tangled::QatEngine;
using tangled::QatProgram;
using tangled::run_on;

struct Problem {
  std::uint64_t n;
  unsigned bits;
};

Problem problem_for(unsigned ways) {
  switch (ways) {
    case 8:
      return {15, 4};
    case 14:
      return {77, 7};
    default:
      return {221, 8};  // ways 16, the paper's hardware width
  }
}

/// Compile the factoring cone once per (ways); shared by all iterations.
const QatProgram& program_for(unsigned ways) {
  static std::unordered_map<unsigned, std::unique_ptr<QatProgram>> cache;
  auto it = cache.find(ways);
  if (it == cache.end()) {
    const Problem pr = problem_for(ways);
    auto ctx = pbp::PbpContext::create(ways, pbp::Backend::kDense);
    auto circ = std::make_shared<Circuit>(ctx, /*hash_cons=*/true);
    const Pint n = Pint::constant(circ, pr.bits, pr.n);
    const Pint b = Pint::hadamard(circ, pr.bits, (1u << pr.bits) - 1);
    const Pint c = Pint::hadamard(circ, pr.bits,
                                  ((1u << pr.bits) - 1) << pr.bits);
    const pbp::Circuit::Node roots[] = {
        Pint::eq(Pint::mul(b, c), n).bit(0)};
    pbp::EmitOptions opts;
    opts.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
    it = cache
             .emplace(ways, std::make_unique<QatProgram>(
                                compile_qat(*circ, roots, opts)))
             .first;
  }
  return *it->second;
}

pbp::Backend backend_arg(const benchmark::State& state) {
  return state.range(1) == 0 ? pbp::Backend::kDense
                             : pbp::Backend::kCompressed;
}

/// §1.2: "AoB representations are treated as individual symbols" — the RE
/// layer's natural chunk is one full hardware AoB, so chunk_ways = ways.
/// (Smaller chunks trade steady-state speed for pool dedup; see the
/// chunk-size sweep in EXPERIMENTS.md.)
QatEngine make_engine(unsigned ways, pbp::Backend kind) {
  return QatEngine(ways, kind, /*chunk_ways=*/ways);
}

void set_label(benchmark::State& state) {
  state.SetLabel(state.range(1) == 0 ? "dense" : "re");
}

/// Full program execution per iteration on a persistent engine.
void BM_factor_program(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const QatProgram& p = program_for(ways);
  QatEngine engine = make_engine(ways, backend_arg(state));
  for (auto _ : state) {
    run_on(engine, p);
    benchmark::DoNotOptimize(engine.reg_popcount(p.root_regs[0]));
  }
  set_label(state);
  state.counters["qat_instrs"] =
      static_cast<double>(p.instrs.size());
  state.counters["storage_bytes"] =
      static_cast<double>(engine.storage_bytes());
  state.counters["factors_pop"] =
      static_cast<double>(engine.reg_popcount(p.root_regs[0]));
}

/// Non-destructive readout only: walk every factor channel with next.
void BM_factor_readout(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const QatProgram& p = program_for(ways);
  QatEngine engine = make_engine(ways, backend_arg(state));
  run_on(engine, p);
  const unsigned root = p.root_regs[0];
  std::size_t found = 0;
  for (auto _ : state) {
    found = 0;
    std::size_t ch = 0;
    while (auto nx = engine.next_wide(root, ch)) {
      ch = *nx;
      ++found;
      if (ch + 1 >= engine.channels()) break;
    }
    benchmark::DoNotOptimize(found);
  }
  set_label(state);
  state.counters["factors"] = static_cast<double>(found);
}

void FactorArgs(benchmark::internal::Benchmark* b) {
  for (int ways : {8, 14, 16}) {
    b->Args({ways, 0});
    b->Args({ways, 1});
  }
}

BENCHMARK(BM_factor_program)->Apply(FactorArgs);
BENCHMARK(BM_factor_readout)->Args({16, 0})->Args({16, 1});

}  // namespace

BENCHMARK_MAIN();
