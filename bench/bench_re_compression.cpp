// bench_re_compression — §1.2: "By storing and operating directly on REs,
// parallel bit pattern computing reduces both storage requirements and
// computational complexity by as much as an exponential factor."
//
// Series:
//   BM_dense_gate/E — one AND gate over dense 2^E-bit AoBs
//   BM_re_gate/E    — the same gate over RE-compressed values built from
//                     Hadamard patterns (low entropy, the PBP common case)
//   BM_re_gate_random/E — RE worst case: incompressible random data
//                     (E <= 16 only; dense storage of the inputs bounds it)
//   BM_from_aob/E   — compression cost itself
//
// Counters report compressed vs dense bytes.  Expected shape: for regular
// data, RE gate time and storage are flat in E (runs stay O(1)) while dense
// cost doubles per step — the exponential separation.  For random data RE
// degrades to ~dense plus overhead, which is the honest trade.
#include <benchmark/benchmark.h>

#include <memory>
#include <random>

#include "pbp/hadamard.hpp"
#include "pbp/re.hpp"

namespace {

using pbp::Aob;
using pbp::BitOp;
using pbp::ChunkPool;
using pbp::Re;

void BM_dense_gate(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const Aob a = pbp::hadamard_generate(ways, ways - 1);
  const Aob b = pbp::hadamard_generate(ways, ways / 2);
  Aob r = a;
  for (auto _ : state) {
    r = a;
    r &= b;
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes"] = static_cast<double>((std::size_t{1} << ways) / 8);
}

void BM_re_gate(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  auto pool = std::make_shared<ChunkPool>(12);
  const Re a = Re::hadamard(pool, ways, ways - 1);
  const Re b = Re::hadamard(pool, ways, ways / 2);
  Re r = a;
  for (auto _ : state) {
    r = a;
    r.apply(BitOp::And, b);
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes"] = static_cast<double>(r.compressed_bytes());
  state.counters["dense_bytes"] = static_cast<double>(r.dense_bytes());
  state.counters["runs"] = static_cast<double>(r.run_count());
}

void BM_re_gate_random(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  auto pool = std::make_shared<ChunkPool>(12);
  std::mt19937_64 rng(ways);
  const Re a = Re::from_aob(
      pool, Aob::from_fn(ways, [&](std::size_t) { return rng() & 1; }));
  const Re b = Re::from_aob(
      pool, Aob::from_fn(ways, [&](std::size_t) { return rng() & 1; }));
  Re r = a;
  for (auto _ : state) {
    r = a;
    r.apply(BitOp::And, b);
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes"] = static_cast<double>(r.compressed_bytes());
  state.counters["runs"] = static_cast<double>(r.run_count());
}

void BM_from_aob(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  auto pool = std::make_shared<ChunkPool>(12);
  const Aob a = pbp::hadamard_generate(ways, ways - 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Re::from_aob(pool, a));
  }
}

// Dense is bounded by kMaxAobWays; RE keeps going.
BENCHMARK(BM_dense_gate)->DenseRange(14, 26, 2);
BENCHMARK(BM_re_gate)->DenseRange(14, 26, 2)->Arg(28)->Arg(30);
BENCHMARK(BM_re_gate_random)->DenseRange(12, 16, 2);
BENCHMARK(BM_from_aob)->DenseRange(14, 20, 2);

// A realistic circuit on compressed data: the carry chain of a wide adder
// stays compressed because every intermediate is Hadamard-structured.
void BM_re_carry_chain(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  auto pool = std::make_shared<ChunkPool>(12);
  const unsigned width = ways / 2;
  std::size_t total_runs = 0;
  for (auto _ : state) {
    Re carry = Re::zeros(pool, ways);
    total_runs = 0;
    for (unsigned i = 0; i < width; ++i) {
      Re a = Re::hadamard(pool, ways, i);
      const Re b = Re::hadamard(pool, ways, width + i);
      Re axb = a;
      axb.apply(BitOp::Xor, b);
      Re g = a;
      g.apply(BitOp::And, b);
      Re p = axb;
      p.apply(BitOp::And, carry);
      g.apply(BitOp::Or, p);
      carry = g;
      total_runs += carry.run_count();
    }
    benchmark::DoNotOptimize(carry);
  }
  state.counters["sum_runs"] = static_cast<double>(total_runs);
  state.counters["dense_bytes_each"] =
      static_cast<double>((std::size_t{1} << ways) / 8);
}
BENCHMARK(BM_re_carry_chain)->Arg(16)->Arg(20)->Arg(24);

}  // namespace

