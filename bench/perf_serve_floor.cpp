// perf_serve_floor — the serve-layer half of the `perf` lane (ISSUE 10): a
// pass/fail guard on the fixed cost per trivial job, not a measurement
// harness (that is bench_serve_throughput).  It drives a LONG-LIVED
// JobServer with 2-instruction jobs — the configuration where per-job
// overhead is everything — and enforces two properties the tentpole bought:
//
//   1. the pooled floor: with the simulator pool on, steady-state
//      throughput must beat an absolute jobs/s bar (the pre-pool recorded
//      floor was ~10k jobs/s; the bar defaults to 20k and is overridable
//      via TANGLED_SERVE_FLOOR_MIN for slow CI boxes);
//   2. pooling pays: the pooled server must beat the cold
//      construct-per-job server by at least kMinPoolGain.
//
// Method mirrors perf_smoke: pooled and cold run in strict alternation so
// frequency drift hits both equally, and each side keeps its MAXIMUM
// throughput over the rounds — the max is the noise-free estimate of the
// achievable rate; means would let one descheduled round fail the build.
//
// Exit status: 0 on pass, 1 on a floor/ratio breach, 2 on a wrong answer
// or a lost report (the smoke must never bless a broken serve layer).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "asm/assembler.hpp"
#include "serve/job_server.hpp"

namespace {

using namespace tangled;
using namespace tangled::serve;
using Clock = std::chrono::steady_clock;

constexpr double kMinPoolGain = 1.3;  // pooled must beat cold by 30%
constexpr double kDefaultFloor = 20'000.0;  // jobs/s, pooled
constexpr int kRounds = 8;
constexpr unsigned kBatch = 64;
constexpr unsigned kBatchesPerRound = 4;

struct Lane {
  std::size_t sim_pool;
  double best_jobs_per_s = 0.0;
};

/// One timed round against `server`: kBatchesPerRound batches of kBatch
/// trivial jobs, submit-then-wait per batch.  Returns jobs/s, or -1 on a
/// lost report or failed job.
double one_round(JobServer& server, const Program& p) {
  const auto t0 = Clock::now();
  std::vector<JobServer::JobId> ids;
  ids.reserve(kBatch);
  for (unsigned b = 0; b < kBatchesPerRound; ++b) {
    ids.clear();
    for (unsigned i = 0; i < kBatch; ++i) {
      Job j;
      j.program = p;
      j.max_instructions = 100;
      const auto id = server.submit(std::move(j));
      if (!id) return -1.0;
      ids.push_back(*id);
    }
    for (const auto id : ids) {
      const JobReport rep = server.wait(id);
      if (rep.outcome != JobOutcome::kCompleted) return -1.0;
    }
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(kBatch) * kBatchesPerRound / secs;
}

}  // namespace

int main() {
  const Program p = assemble("lex $1,1\nsys\n");

  Lane pooled{8, 0.0};
  Lane cold{0, 0.0};

  JobServerConfig pooled_cfg;
  pooled_cfg.threads = 4;
  pooled_cfg.queue_capacity = kBatch;
  pooled_cfg.sim_pool = pooled.sim_pool;
  JobServer pooled_server(pooled_cfg);

  JobServerConfig cold_cfg = pooled_cfg;
  cold_cfg.sim_pool = cold.sim_pool;
  JobServer cold_server(cold_cfg);

  // Warm-up: populate the pool and fault in every code path before timing.
  if (one_round(pooled_server, p) < 0 || one_round(cold_server, p) < 0) {
    std::fprintf(stderr, "perf_serve_floor: warm-up round lost a job\n");
    return 2;
  }

  for (int r = 0; r < kRounds; ++r) {
    for (Lane* lane : {&pooled, &cold}) {
      JobServer& server = lane->sim_pool != 0 ? pooled_server : cold_server;
      const double rate = one_round(server, p);
      if (rate < 0) {
        std::fprintf(stderr, "perf_serve_floor: round %d lost a job\n", r);
        return 2;
      }
      if (rate > lane->best_jobs_per_s) lane->best_jobs_per_s = rate;
    }
  }

  double floor = kDefaultFloor;
  if (const char* env = std::getenv("TANGLED_SERVE_FLOOR_MIN")) {
    floor = std::atof(env);
  }
  const double gain = pooled.best_jobs_per_s / cold.best_jobs_per_s;
  std::printf(
      "perf_serve_floor: pooled %.0f jobs/s, cold %.0f jobs/s "
      "(gain %.2fx, floor %.0f)\n",
      pooled.best_jobs_per_s, cold.best_jobs_per_s, gain, floor);

  bool ok = true;
  if (pooled.best_jobs_per_s < floor) {
    std::fprintf(stderr,
                 "perf_serve_floor: FAIL pooled floor: %.0f < %.0f jobs/s "
                 "(override with TANGLED_SERVE_FLOOR_MIN)\n",
                 pooled.best_jobs_per_s, floor);
    ok = false;
  }
  if (gain < kMinPoolGain) {
    std::fprintf(stderr,
                 "perf_serve_floor: FAIL pool gain: %.2fx < %.2fx over "
                 "cold construction\n",
                 gain, kMinPoolGain);
    ok = false;
  }
  return ok ? 0 : 1;
}
