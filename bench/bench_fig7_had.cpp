// bench_fig7_had — Figure 7 / §3.2 / §5: three hardware structures for the
// Qat `had` initializer.
//
//   generator  — the parametric Figure 7 circuit (word-optimized here)
//   structural — the same circuit evaluated channel-at-a-time, as the
//                generate loop literally unrolls (the naive synthesis)
//   lut        — the student solution: precomputed constants behind a mux
//   const_reg  — the §5 recommendation: reserved constant registers, so
//                `had` is just a register-file copy
//
// Expected shape: const_reg ≈ lut (a copy) < generator << structural, which
// is the paper's §5 argument for replacing the had instruction with reserved
// registers.
#include <benchmark/benchmark.h>

#include "arch/qat_engine.hpp"
#include "pbp/hadamard.hpp"

namespace {

using pbp::Aob;

void BM_had_generator(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  unsigned k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbp::hadamard_generate(ways, k));
    k = (k + 1) % ways;
  }
  state.SetBytesProcessed(state.iterations() *
                          ((std::int64_t{1} << ways) / 8));
}

void BM_had_structural(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  unsigned k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tangled::QatEngine::had_structural(ways, k));
    k = (k + 1) % ways;
  }
  state.SetBytesProcessed(state.iterations() *
                          ((std::int64_t{1} << ways) / 8));
}

void BM_had_lut(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const pbp::HadamardLut lut(ways);
  Aob dst(ways);
  unsigned k = 0;
  for (auto _ : state) {
    dst = lut.select(k);  // mux select + register write
    benchmark::DoNotOptimize(dst);
    k = (k + 1) % ways;
  }
  state.SetBytesProcessed(state.iterations() *
                          ((std::int64_t{1} << ways) / 8));
}

void BM_had_const_reg(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  const pbp::HadamardRegisterFile rf(ways);
  Aob dst(ways);
  unsigned k = 0;
  for (auto _ : state) {
    dst = rf.h(k);  // plain register copy (§5: copying is allowed in PBP)
    benchmark::DoNotOptimize(dst);
    k = (k + 1) % ways;
  }
  state.SetBytesProcessed(state.iterations() *
                          ((std::int64_t{1} << ways) / 8));
}

#define HAD_SWEEP(fn) BENCHMARK(fn)->Arg(8)->Arg(12)->Arg(16)->Arg(20)
HAD_SWEEP(BM_had_generator);
HAD_SWEEP(BM_had_structural);
HAD_SWEEP(BM_had_lut);
HAD_SWEEP(BM_had_const_reg);

}  // namespace

