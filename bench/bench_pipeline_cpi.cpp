// bench_pipeline_cpi — §3.1: pipeline behaviour across workload classes and
// design points.
//
// The paper: "All implementations were capable of sustaining completion of
// one instruction every clock cycle, provided there were no pipeline
// interlocks encountered."  Six teams built 4 stages, two built 5.  This
// bench quantifies what each hazard class costs on each design point.
//
// Workloads:  straightline (no hazards), dependent (ALU chains),
//             loadheavy (load-use pairs), branchy (short taken loops),
//             qatheavy (two-word Qat instructions).
// Designs:    pipe4 / pipe5, forwarding on / off.
//
// Expected shape: straightline CPI -> 1.0 everywhere; dependent code only
// hurts with forwarding off; load-use costs 1 bubble on pipe5 only;
// branches cost 2 flush slots; Qat-heavy code pays exactly the extra fetch
// word (CPI -> 2).
#include <benchmark/benchmark.h>

#include "arch/simulators.hpp"

namespace {

using namespace tangled;

std::string workload(int kind) {
  std::string body;
  switch (kind) {
    case 0:  // straightline: independent one-word ops
      for (int i = 0; i < 64; ++i) {
        body += "lex $" + std::to_string(i % 8) + ",1\n";
      }
      break;
    case 1:  // dependent ALU chain
      body = "lex $1,1\n";
      for (int i = 0; i < 64; ++i) body += "add $1,$1\n";
      break;
    case 2:  // load-use pairs
      body = "lex $2,100\n";
      for (int i = 0; i < 32; ++i) {
        body += "load $1,$2\n";
        body += "add $1,$1\n";
      }
      break;
    case 3:  // branchy: taken loop, 4 instructions per iteration
      body =
          "      lex $1,16\n"
          "      lex $2,-1\n"
          "loop: add $1,$2\n"
          "      copy $3,$1\n"
          "      or $3,$3\n"
          "      brt $1,loop\n";
      break;
    default:  // qatheavy: two-word coprocessor ops
      body = "had @1,1\nhad @2,2\n";
      for (int i = 0; i < 64; ++i) {
        body += "and @" + std::to_string(3 + i % 8) + ",@1,@2\n";
      }
      break;
  }
  return body + "sys\n";
}

const char* workload_name(int kind) {
  switch (kind) {
    case 0:
      return "straightline";
    case 1:
      return "dependent";
    case 2:
      return "loadheavy";
    case 3:
      return "branchy";
    default:
      return "qatheavy";
  }
}

void BM_cpi(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const unsigned stages = static_cast<unsigned>(state.range(1));
  const bool forwarding = state.range(2) != 0;
  const Program p = assemble(workload(kind));
  PipelineSim sim(8, {.stages = stages, .forwarding = forwarding});
  SimStats st;
  for (auto _ : state) {
    sim.cpu() = CpuState{};
    sim.load(p);
    st = sim.run();
  }
  state.SetLabel(std::string(workload_name(kind)) + "/pipe" +
                 std::to_string(stages) + (forwarding ? "/fwd" : "/nofwd"));
  state.counters["cpi"] = st.cpi();
  state.counters["stall_cycles"] = static_cast<double>(st.data_stall_cycles);
  state.counters["flush_cycles"] = static_cast<double>(st.flush_cycles);
  state.counters["extra_fetch"] =
      static_cast<double>(st.fetch_extra_cycles);
  state.SetItemsProcessed(state.iterations() * st.instructions);
}

BENCHMARK(BM_cpi)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {4, 5}, {0, 1}});

}  // namespace

