// bench_table3_qat — Table 3: per-instruction cost of every Qat coprocessor
// operation as a function of entanglement WAYS.
//
// Shape expected from the paper: all data operations are single-cycle
// combinatorial in hardware; in simulation their cost is the word-parallel
// sweep over 2^WAYS bits, so time should scale linearly with AoB size and be
// nearly identical across and/or/xor/cnot/ccnot.  meas is O(1); next and pop
// scan words.  swap is pointer-swap cheap (the hardware analogue: register
// renaming instead of data movement).
#include <benchmark/benchmark.h>

#include "arch/qat_engine.hpp"

namespace {

using namespace tangled;

QatEngine make_engine(unsigned ways) {
  QatEngine q(ways);
  // Populate operand registers with non-trivial patterns.
  q.had(1, 1);
  q.had(2, ways > 2 ? ways - 1 : 1);
  q.had(3, ways / 2);
  return q;
}

void BM_qat_zero(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.zero(0);
}
void BM_qat_one(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.one(0);
}
void BM_qat_had(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.had(0, static_cast<unsigned>(state.range(0)) - 1);
}
void BM_qat_not(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.not_(1);
}
void BM_qat_cnot(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.cnot(1, 2);
}
void BM_qat_ccnot(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.ccnot(1, 2, 3);
}
void BM_qat_swap(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.swap(1, 2);
}
void BM_qat_cswap(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.cswap(1, 2, 3);
}
void BM_qat_and(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.and_(0, 1, 2);
}
void BM_qat_or(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.or_(0, 1, 2);
}
void BM_qat_xor(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.xor_(0, 1, 2);
}
void BM_qat_meas(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  std::uint16_t ch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.meas(2, ch));
    ch += 7;
  }
}
void BM_qat_next(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  std::uint16_t ch = 0;
  for (auto _ : state) {
    ch = q.next(2, ch);
    benchmark::DoNotOptimize(ch);
  }
}
void BM_qat_pop(benchmark::State& state) {
  QatEngine q = make_engine(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(q.pop(2, 5));
}

#define QAT_SWEEP(fn) BENCHMARK(fn)->Arg(8)->Arg(12)->Arg(16)->Arg(20)

QAT_SWEEP(BM_qat_zero);
QAT_SWEEP(BM_qat_one);
QAT_SWEEP(BM_qat_had);
QAT_SWEEP(BM_qat_not);
QAT_SWEEP(BM_qat_cnot);
QAT_SWEEP(BM_qat_ccnot);
QAT_SWEEP(BM_qat_swap);
QAT_SWEEP(BM_qat_cswap);
QAT_SWEEP(BM_qat_and);
QAT_SWEEP(BM_qat_or);
QAT_SWEEP(BM_qat_xor);
QAT_SWEEP(BM_qat_meas);
QAT_SWEEP(BM_qat_next);
QAT_SWEEP(BM_qat_pop);

}  // namespace

