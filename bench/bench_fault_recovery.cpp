// bench_fault_recovery — cost of the fault-tolerance layer (ISSUE:
// fault-tolerant execution).
//
// Measured:
//   * checkpoint save / restore of full machine state, dense and
//     RE-compressed Qat register files (mid-Figure-10, registers in flight);
//   * Figure 10 end to end, plain run() vs CheckpointingRunner at several
//     checkpoint intervals (the overhead of periodic snapshots);
//   * Figure 10 under a forced RE chunk-pool exhaustion, paying one
//     transparent RE -> dense migration mid-run;
//   * a full rollback-recovery run with an injected register upset.
#include <benchmark/benchmark.h>

#include "arch/recovery.hpp"
#include "arch/simulators.hpp"
#include "asm/programs.hpp"

namespace {

using namespace tangled;

/// Advance to mid-Figure-10 (40 instructions): Qat registers hold real state.
void advance_fig10(FunctionalSim& sim) {
  sim.load(assemble(figure10_source()));
  sim.run(40);
}

void BM_checkpoint_save_dense(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  FunctionalSim sim(ways, pbp::Backend::kDense);
  advance_fig10(sim);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto b = save_checkpoint(sim.cpu(), sim.memory(), sim.qat());
    bytes = b.size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes);
  state.counters["ways"] = static_cast<double>(ways);
}

void BM_checkpoint_save_re(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  FunctionalSim sim(ways, pbp::Backend::kCompressed);
  advance_fig10(sim);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto b = save_checkpoint(sim.cpu(), sim.memory(), sim.qat());
    bytes = b.size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes);
  state.counters["ways"] = static_cast<double>(ways);
}

void BM_checkpoint_restore_dense(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  FunctionalSim sim(ways, pbp::Backend::kDense);
  advance_fig10(sim);
  const auto bytes = save_checkpoint(sim.cpu(), sim.memory(), sim.qat());
  FunctionalSim target(ways, pbp::Backend::kDense);
  for (auto _ : state) {
    load_checkpoint(bytes, target.cpu(), target.memory(), target.qat());
  }
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes.size());
  state.counters["ways"] = static_cast<double>(ways);
}

void BM_checkpoint_restore_re(benchmark::State& state) {
  const unsigned ways = static_cast<unsigned>(state.range(0));
  FunctionalSim sim(ways, pbp::Backend::kCompressed);
  advance_fig10(sim);
  const auto bytes = save_checkpoint(sim.cpu(), sim.memory(), sim.qat());
  FunctionalSim target(ways, pbp::Backend::kCompressed);
  for (auto _ : state) {
    load_checkpoint(bytes, target.cpu(), target.memory(), target.qat());
  }
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes.size());
  state.counters["ways"] = static_cast<double>(ways);
}

void BM_fig10_plain(benchmark::State& state) {
  const Program p = assemble(figure10_source());
  for (auto _ : state) {
    FunctionalSim sim(8, pbp::Backend::kDense);
    sim.load(p);
    const SimStats st = sim.run();
    if (!st.halted || sim.cpu().reg(0) != 5) {
      state.SkipWithError("wrong factors");
    }
  }
}

/// Overhead of periodic checkpointing on a fault-free Figure 10 run.
void BM_fig10_checkpointed(benchmark::State& state) {
  const auto every = static_cast<std::uint64_t>(state.range(0));
  const Program p = assemble(figure10_source());
  std::uint64_t checkpoints = 0;
  for (auto _ : state) {
    FunctionalSim sim(8, pbp::Backend::kDense);
    sim.load(p);
    CheckpointingRunner<FunctionalSim> runner(sim, every);
    const RecoveryStats rs = runner.run(100'000, [](const FunctionalSim& s) {
      return s.cpu().regs[0] == 5 && s.cpu().regs[1] == 3;
    });
    checkpoints = rs.checkpoints_taken;
    if (!rs.halted || rs.gave_up) state.SkipWithError("did not converge");
  }
  state.counters["checkpoints"] = static_cast<double>(checkpoints);
  state.counters["checkpoint_every"] = static_cast<double>(every);
}

/// Forced pool exhaustion: one transparent RE -> dense migration mid-run.
void BM_fig10_migration(benchmark::State& state) {
  const Program p = assemble(figure10_source());
  std::uint64_t migrations = 0;
  for (auto _ : state) {
    FunctionalSim sim(16, pbp::Backend::kCompressed);
    sim.load(p);
    FaultPlan plan;
    plan.max_pool_symbols = 8;
    sim.set_fault_plan(plan);
    const SimStats st = sim.run();
    migrations = sim.qat().stats().backend_migrations;
    if (!st.halted || st.trap || sim.cpu().reg(0) != 5) {
      state.SkipWithError("migration run failed");
    }
  }
  state.counters["migrations"] = static_cast<double>(migrations);
}

/// Full recovery: a register upset near the end forces one rollback.
void BM_fig10_rollback_recovery(benchmark::State& state) {
  const Program p = assemble(figure10_source());
  std::uint64_t replayed = 0;
  for (auto _ : state) {
    FunctionalSim sim(8, pbp::Backend::kDense);
    sim.load(p);
    FaultPlan plan;
    FaultEvent e;
    e.target = FaultEvent::Target::kHostReg;
    e.at_instr = 90;
    e.addr = 0;
    e.bit = 3;
    plan.events.push_back(e);
    sim.set_fault_plan(plan);
    CheckpointingRunner<FunctionalSim> runner(sim, 25);
    const RecoveryStats rs = runner.run(100'000, [](const FunctionalSim& s) {
      return s.cpu().regs[0] == 5 && s.cpu().regs[1] == 3;
    });
    replayed = rs.instructions;
    if (!rs.halted || rs.gave_up || !rs.recovered) {
      state.SkipWithError("recovery failed");
    }
  }
  state.counters["instructions_incl_replay"] = static_cast<double>(replayed);
}

BENCHMARK(BM_checkpoint_save_dense)->Arg(8)->Arg(16);
BENCHMARK(BM_checkpoint_save_re)->Arg(16)->Arg(24);
BENCHMARK(BM_checkpoint_restore_dense)->Arg(8)->Arg(16);
BENCHMARK(BM_checkpoint_restore_re)->Arg(16)->Arg(24);
BENCHMARK(BM_fig10_plain);
BENCHMARK(BM_fig10_checkpointed)->Arg(10)->Arg(25)->Arg(50);
BENCHMARK(BM_fig10_migration);
BENCHMARK(BM_fig10_rollback_recovery);

}  // namespace

