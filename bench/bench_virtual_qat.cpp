// bench_virtual_qat — §1.2 / §5: the software RE-backed Qat beyond the
// hardware's 16-way limit.
//
// "It remains to be seen if the manipulation of regular patterns of AoB
// blocks will effectively scale to very high entanglements while keeping
// efficiency high" (§5).  Measured here: Table 3 data ops and the
// measurement family on VirtualQat from 16-way (the hardware size) to
// 32-way (4 billion channels), on Hadamard-structured state.
//
// Expected shape: compressed ops cost O(runs), so time grows with the run
// count of the touched patterns (≪ 2^E), and storage stays in kilobytes
// where dense registers would need gigabytes.
#include <benchmark/benchmark.h>

#include "pbp/virtual_qat.hpp"

namespace {

using pbp::VirtualQat;

VirtualQat make(unsigned ways) {
  VirtualQat q(ways, /*chunk_ways=*/12, /*num_regs=*/64);
  q.had(1, ways - 1);
  q.had(2, ways / 2);
  q.had(3, 13);  // finer-grained pattern: more runs
  return q;
}

void BM_vqat_and(benchmark::State& state) {
  VirtualQat q = make(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.and_(0, 1, 2);
  state.counters["storage_bytes"] = static_cast<double>(q.storage_bytes());
  state.counters["dense_bytes_each"] =
      static_cast<double>((std::size_t{1} << state.range(0)) / 8);
}

void BM_vqat_and_fine(benchmark::State& state) {
  VirtualQat q = make(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.and_(0, 2, 3);  // the many-run operand
  state.counters["storage_bytes"] = static_cast<double>(q.storage_bytes());
}

void BM_vqat_ccnot(benchmark::State& state) {
  VirtualQat q = make(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) q.ccnot(1, 2, 3);
}

void BM_vqat_next(benchmark::State& state) {
  VirtualQat q = make(static_cast<unsigned>(state.range(0)));
  q.and_(0, 1, 2);
  std::size_t ch = 0;
  for (auto _ : state) {
    ch = q.next(0, ch);
    benchmark::DoNotOptimize(ch);
  }
}

void BM_vqat_popcount(benchmark::State& state) {
  VirtualQat q = make(static_cast<unsigned>(state.range(0)));
  q.xor_(0, 1, 3);
  for (auto _ : state) benchmark::DoNotOptimize(q.popcount(0));
}

#define VQAT_SWEEP(fn) BENCHMARK(fn)->Arg(16)->Arg(20)->Arg(24)->Arg(28)->Arg(32)
VQAT_SWEEP(BM_vqat_and);
VQAT_SWEEP(BM_vqat_and_fine);
VQAT_SWEEP(BM_vqat_ccnot);
VQAT_SWEEP(BM_vqat_next);
VQAT_SWEEP(BM_vqat_popcount);

}  // namespace

