// bench_fig9_factoring — Figure 9 / §4.1: the word-level factoring workload
// against a classical baseline.
//
// The PBP pitch is not wall-clock speed on a laptop — it is that ONE gate
// pass evaluates all 2^E candidate pairs and the readout is non-destructive.
// The series reported:
//
//   BM_pbp_factor/N        — build + evaluate the pint circuit for N
//                            (gate passes touch every channel once)
//   BM_pbp_readout/N       — ONLY the readout on a prepared superposition
//                            (next-based; cost ~ number of factors)
//   BM_classical_trial/N   — classical trial division over all candidates
//   BM_classical_all_pairs/N — classical evaluation of every (b, c) pair,
//                            the honest apples-to-apples of what PBP computes
//
// Expected shape: PBP's evaluation cost tracks (gates × channels/64 words),
// beating the naive all-pairs baseline as the per-pair work grows, and the
// non-destructive readout is microscopic next to recomputation.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "pbp/pint.hpp"

namespace {

using pbp::Circuit;
using pbp::Pint;

struct Problem {
  std::uint64_t n;
  unsigned bits;   // operand width
  unsigned ways;   // 2 * bits
};

Problem problem_for(std::int64_t n) {
  switch (n) {
    case 15:
      return {15, 4, 8};
    case 77:
      return {77, 7, 14};
    default:
      return {221, 8, 16};
  }
}

/// The full Figure 9 pipeline: superpose, multiply, compare, read out.
void BM_pbp_factor(benchmark::State& state) {
  const Problem pr = problem_for(state.range(0));
  std::size_t factors = 0;
  for (auto _ : state) {
    auto ctx = pbp::PbpContext::create(pr.ways, pbp::Backend::kDense);
    auto circ = std::make_shared<Circuit>(ctx, /*hash_cons=*/true);
    const Pint nn = Pint::constant(circ, pr.bits, pr.n);
    const Pint b =
        Pint::hadamard(circ, pr.bits, (1u << pr.bits) - 1);
    const Pint c = Pint::hadamard(
        circ, pr.bits, ((1u << pr.bits) - 1) << pr.bits);
    const Pint e = Pint::eq(Pint::mul(b, c), nn);
    factors = circ->popcount(e.bit(0));
    benchmark::DoNotOptimize(factors);
  }
  state.counters["factor_pairs"] = static_cast<double>(factors);
  state.counters["channels"] =
      static_cast<double>(std::size_t{1} << pr.ways);
}

/// Readout only: the superposition is already prepared (PBP never collapses
/// it, §2.7, so amortizing preparation over many readouts is legal).
void BM_pbp_readout(benchmark::State& state) {
  const Problem pr = problem_for(state.range(0));
  auto ctx = pbp::PbpContext::create(pr.ways, pbp::Backend::kDense);
  auto circ = std::make_shared<Circuit>(ctx, /*hash_cons=*/true);
  const Pint nn = Pint::constant(circ, pr.bits, pr.n);
  const Pint b = Pint::hadamard(circ, pr.bits, (1u << pr.bits) - 1);
  const Pint c =
      Pint::hadamard(circ, pr.bits, ((1u << pr.bits) - 1) << pr.bits);
  const Pint e = Pint::eq(Pint::mul(b, c), nn);
  circ->eval(e.bit(0));  // force preparation outside the timed loop
  std::vector<std::size_t> found;
  for (auto _ : state) {
    found.clear();
    std::size_t ch = 0;
    while (auto nxt = circ->next(e.bit(0), ch)) {
      ch = *nxt;
      found.push_back(ch);
    }
    benchmark::DoNotOptimize(found);
  }
  state.counters["factor_pairs"] = static_cast<double>(found.size());
}

/// Classical baseline 1: trial division up to n.
void BM_classical_trial(benchmark::State& state) {
  const Problem pr = problem_for(state.range(0));
  for (auto _ : state) {
    std::vector<std::uint64_t> divisors;
    for (std::uint64_t d = 1; d <= pr.n; ++d) {
      if (pr.n % d == 0) divisors.push_back(d);
    }
    benchmark::DoNotOptimize(divisors);
  }
}

/// Classical baseline 2: evaluate b*c == n for every (b, c) pair — exactly
/// the computation the single PBP gate pass performs across channels.
void BM_classical_all_pairs(benchmark::State& state) {
  const Problem pr = problem_for(state.range(0));
  const std::uint64_t lim = std::uint64_t{1} << pr.bits;
  for (auto _ : state) {
    std::size_t hits = 0;
    for (std::uint64_t b = 0; b < lim; ++b) {
      for (std::uint64_t c = 0; c < lim; ++c) {
        if (b * c == pr.n) ++hits;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["pairs"] = static_cast<double>(lim * lim);
}

BENCHMARK(BM_pbp_factor)->Arg(15)->Arg(77)->Arg(221);
BENCHMARK(BM_pbp_readout)->Arg(15)->Arg(77)->Arg(221);
BENCHMARK(BM_classical_trial)->Arg(15)->Arg(77)->Arg(221);
BENCHMARK(BM_classical_all_pairs)->Arg(15)->Arg(77)->Arg(221);

}  // namespace

