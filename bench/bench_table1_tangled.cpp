// bench_table1_tangled — Table 1: per-instruction cost of the Tangled base
// ISA on the simulators.
//
// The paper's claim for Table 1 is architectural: every instruction is a
// single-cycle ALU/memory operation (Figure 6), so simulated throughput
// should be roughly uniform across opcodes, with bfloat16 ops paying only
// the software cost of the float path.  Each benchmark executes one
// instruction repeatedly through the full fetch/decode/execute loop.
#include <benchmark/benchmark.h>

#include <memory>

#include "arch/simulators.hpp"

namespace {

using namespace tangled;

/// Build a program of `reps` copies of `body` followed by sys, run it once
/// per iteration on the functional simulator.
void run_program(benchmark::State& state, const std::string& body,
                 const std::string& setup = "") {
  constexpr int reps = 256;
  std::string src = setup;
  for (int i = 0; i < reps; ++i) {
    // "%i" in the body becomes the repetition index (for unique labels).
    std::string expanded = body;
    for (std::size_t pos; (pos = expanded.find("%i")) != std::string::npos;) {
      expanded.replace(pos, 2, std::to_string(i));
    }
    src += expanded;
  }
  src += "sys\n";
  FunctionalSim sim(8);
  const Program p = assemble(src);
  for (auto _ : state) {
    sim.cpu() = CpuState{};
    sim.load(p);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * reps);
  state.counters["cpi_functional"] = 1.0;
}

void BM_add(benchmark::State& s) { run_program(s, "add $1,$2\n", "lex $2,3\n"); }
void BM_addf(benchmark::State& s) {
  run_program(s, "addf $1,$2\n", "lex $1,1\nfloat $1\nlex $2,3\nfloat $2\n");
}
void BM_and(benchmark::State& s) { run_program(s, "and $1,$2\n", "lex $2,3\n"); }
void BM_brf_untaken(benchmark::State& s) {
  run_program(s, "brf $1,n%i\nn%i:\n", "lex $1,1\n");
}
void BM_brt_untaken(benchmark::State& s) {
  run_program(s, "brt $1,n%i\nn%i:\n", "lex $1,0\n");
}
void BM_copy(benchmark::State& s) { run_program(s, "copy $1,$2\n"); }
void BM_float(benchmark::State& s) { run_program(s, "float $1\n", "lex $1,7\n"); }
void BM_int(benchmark::State& s) {
  run_program(s, "int $1\n", "lex $1,7\nfloat $1\n");
}
void BM_lex(benchmark::State& s) { run_program(s, "lex $1,42\n"); }
void BM_lhi(benchmark::State& s) { run_program(s, "lhi $1,42\n"); }
void BM_load(benchmark::State& s) { run_program(s, "load $1,$2\n", "lex $2,99\n"); }
void BM_mul(benchmark::State& s) { run_program(s, "mul $1,$2\n", "lex $2,3\n"); }
void BM_mulf(benchmark::State& s) {
  run_program(s, "mulf $1,$2\n", "lex $1,1\nfloat $1\nlex $2,3\nfloat $2\n");
}
void BM_neg(benchmark::State& s) { run_program(s, "neg $1\n"); }
void BM_negf(benchmark::State& s) { run_program(s, "negf $1\n"); }
void BM_not(benchmark::State& s) { run_program(s, "not $1\n"); }
void BM_or(benchmark::State& s) { run_program(s, "or $1,$2\n", "lex $2,3\n"); }
void BM_recip(benchmark::State& s) {
  run_program(s, "recip $1\n", "lex $1,3\nfloat $1\n");
}
void BM_shift(benchmark::State& s) {
  run_program(s, "shift $1,$2\n", "lex $1,1\nlex $2,1\n");
}
void BM_slt(benchmark::State& s) { run_program(s, "slt $1,$2\n", "lex $2,3\n"); }
void BM_store(benchmark::State& s) {
  run_program(s, "store $1,$2\n", "lex $2,99\n");
}
void BM_xor(benchmark::State& s) { run_program(s, "xor $1,$2\n", "lex $2,3\n"); }

BENCHMARK(BM_add);
BENCHMARK(BM_addf);
BENCHMARK(BM_and);
BENCHMARK(BM_brf_untaken);
BENCHMARK(BM_brt_untaken);
BENCHMARK(BM_copy);
BENCHMARK(BM_float);
BENCHMARK(BM_int);
BENCHMARK(BM_lex);
BENCHMARK(BM_lhi);
BENCHMARK(BM_load);
BENCHMARK(BM_mul);
BENCHMARK(BM_mulf);
BENCHMARK(BM_neg);
BENCHMARK(BM_negf);
BENCHMARK(BM_not);
BENCHMARK(BM_or);
BENCHMARK(BM_recip);
BENCHMARK(BM_shift);
BENCHMARK(BM_slt);
BENCHMARK(BM_store);
BENCHMARK(BM_xor);

/// Whole-ISA mix on each simulator: host-side MIPS and modelled CPI.
void BM_isa_mix(benchmark::State& state) {
  const std::string src =
      "      lex $1,0\n"
      "      lex $2,40\n"
      "loop: add $1,$2\n"
      "      copy $3,$1\n"
      "      slt $3,$2\n"
      "      store $1,$2\n"
      "      load $4,$2\n"
      "      xor $4,$1\n"
      "      lex $5,-1\n"
      "      add $2,$5\n"
      "      brt $2,loop\n"
      "      sys\n";
  const Program p = assemble(src);
  const int kind = static_cast<int>(state.range(0));
  std::unique_ptr<SimBase> sim;
  switch (kind) {
    case 0:
      sim = std::make_unique<FunctionalSim>(8);
      break;
    case 1:
      sim = std::make_unique<MultiCycleSim>(8);
      break;
    default:
      sim = std::make_unique<PipelineSim>(8);
      break;
  }
  SimStats st;
  for (auto _ : state) {
    sim->cpu() = CpuState{};
    sim->load(p);
    st = sim->run();
  }
  state.SetItemsProcessed(state.iterations() * st.instructions);
  state.counters["modelled_cpi"] = st.cpi();
  state.SetLabel(kind == 0 ? "functional" : kind == 1 ? "multicycle"
                                                      : "pipeline5");
}
BENCHMARK(BM_isa_mix)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

