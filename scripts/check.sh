#!/usr/bin/env bash
# check.sh — the tier-1 gate, run locally before pushing.
#
#   scripts/check.sh            normal (Release) build + full ctest
#   scripts/check.sh --asan     additionally build + test with
#                               -DTANGLED_SANITIZE=ON (ASan + UBSan)
#   scripts/check.sh --all      both configs
#
# Build trees: build/ (normal, the repo default) and build-asan/.
set -euo pipefail

cd "$(dirname "$0")/.."

run_config() {
  local dir="$1"
  shift
  echo "== configuring ${dir} ($*) =="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "== building ${dir} =="
  cmake --build "${dir}" -j "$(nproc)"
  echo "== testing ${dir} =="
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

mode="${1:-}"

case "${mode}" in
  --asan)
    run_config build-asan -DTANGLED_SANITIZE=ON
    ;;
  --all)
    run_config build
    run_config build-asan -DTANGLED_SANITIZE=ON
    ;;
  "")
    run_config build
    ;;
  *)
    echo "usage: scripts/check.sh [--asan|--all]" >&2
    exit 2
    ;;
esac

echo "== all checks passed =="
