#!/usr/bin/env bash
# check.sh — the tier-1 gate, run locally before pushing.
#
#   scripts/check.sh            normal (Release) build + full ctest
#   scripts/check.sh --asan     additionally build + test with
#                               -DTANGLED_SANITIZE=ON (ASan + UBSan)
#   scripts/check.sh soak       fault-injection soak (ctest -L soak) under
#                               the sanitizer config — the ISSUE's
#                               "no uncaught exception, ever" gate
#   scripts/check.sh --all      both configs + the sanitized soak
#
# Build trees: build/ (normal, the repo default) and build-asan/.
set -euo pipefail

cd "$(dirname "$0")/.."

run_config() {
  local dir="$1"
  shift
  echo "== configuring ${dir} ($*) =="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "== building ${dir} =="
  cmake --build "${dir}" -j "$(nproc)"
  echo "== testing ${dir} =="
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

run_soak() {
  echo "== configuring build-asan (-DTANGLED_SANITIZE=ON) =="
  cmake -B build-asan -S . -DTANGLED_SANITIZE=ON >/dev/null
  echo "== building sanitized soak harness =="
  cmake --build build-asan -j "$(nproc)" --target tangled_soak
  echo "== fault-injection soak (ctest -L soak, sanitized) =="
  ctest --test-dir build-asan -L soak --output-on-failure -j "$(nproc)"
}

mode="${1:-}"

case "${mode}" in
  --asan)
    run_config build-asan -DTANGLED_SANITIZE=ON
    ;;
  soak)
    run_soak
    ;;
  --all)
    run_config build
    run_config build-asan -DTANGLED_SANITIZE=ON
    run_soak
    ;;
  "")
    run_config build
    ;;
  *)
    echo "usage: scripts/check.sh [--asan|--all|soak]" >&2
    exit 2
    ;;
esac

echo "== all checks passed =="
