#!/usr/bin/env bash
# check.sh — the tier-1 gate, run locally before pushing.
#
#   scripts/check.sh            normal (Release) build + full ctest
#   scripts/check.sh --asan     additionally build + test with
#                               -DTANGLED_SANITIZE=ON (ASan + UBSan)
#   scripts/check.sh soak       fault-injection soak (ctest -L soak) under
#                               the sanitizer config — the ISSUE's
#                               "no uncaught exception, ever" gate
#   scripts/check.sh tsan       serve-layer concurrency tests (ctest -L
#                               'serve|net' minus the chaos soak, including
#                               the ISSUE-10 pool-reset differential suite,
#                               the sharded-ChunkPool stress, and the
#                               batched-wire tests) under -DTANGLED_TSAN=ON
#                               (ThreadSanitizer) — the data-race gate for
#                               src/serve and src/serve/net
#   scripts/check.sh net        network front-door suite (ctest -L net:
#                               wire codec forgeries, hostile-input
#                               handling, overload shedding, graceful
#                               drain, and the 220-run transport-chaos
#                               soak) under the sanitizer config — the
#                               "no crash, no leaked job, exactly-once
#                               reports" gate for src/serve/net
#   scripts/check.sh integrity  data-integrity suite (ctest -L integrity:
#                               ECC codec/verify/scrub, corruption-trap
#                               precision, checkpoint tamper rejection,
#                               storage-upset soak) under the sanitizer
#                               config — the "no wrong-answer completion,
#                               ever" gate
#   scripts/check.sh perf       Release perf guards (ctest -L perf): the
#                               Figure 10 run with --ecc=correct must stay
#                               within 8x of --ecc=off at the default
#                               verification epoch, the dispatched SIMD
#                               tier must not regress below the forced-scalar
#                               dense substrate baseline, and the serve
#                               layer's pooled trivial-job floor must clear
#                               its jobs/s bar while beating cold per-job
#                               construction — the "integrity is nearly
#                               free" + "vectorization actually pays" +
#                               "the fixed-cost floor stays dead" gates
#                               (bench/perf_smoke.cpp,
#                               bench/perf_serve_floor.cpp)
#   scripts/check.sh simd       vector-dispatch differential suite (ctest -L
#                               simd) re-run once per tier with TANGLED_SIMD
#                               forcing the process-wide dispatch to scalar /
#                               avx2 / avx512 — the bit-identical gate for
#                               the dense substrate kernels
#   scripts/check.sh crash      durability suite (ctest -L crash: the
#                               100-round SIGKILL/restart crash soak against
#                               the real daemon, the ENOSPC/EIO failpoint
#                               rounds, and the shell-level journal round
#                               trip) under the sanitizer config — the
#                               "exactly-once across process death" gate for
#                               src/serve/journal
#   scripts/check.sh govern     overload-governance suite (ctest -L govern:
#                               stall watchdog preempt/resume/quarantine,
#                               weighted-fair tenant quotas, health machine,
#                               brownout-scaled shed hints, and the
#                               combined-chaos soak) under the sanitizer
#                               config — the "no wedged worker, no starved
#                               tenant, exactly-once under chaos" gate
#   scripts/check.sh --all     both configs + the sanitized soak + the
#                               integrity suite + the TSAN serve run + the
#                               sanitized net lane + the crash lane + the
#                               govern lane + the simd differential lane +
#                               the perf smoke
#
# Build trees: build/ (normal, the repo default), build-asan/, build-tsan/.
# Every invocation ends with a per-lane wall-clock summary table.
set -euo pipefail

cd "$(dirname "$0")/.."

# --- Per-lane wall-clock bookkeeping: run_lane <name> <cmd...> times the
# lane; print_lane_summary renders the table every invocation ends with. ---
LANE_NAMES=()
LANE_SECS=()

run_lane() {
  local name="$1"
  shift
  local t0="${SECONDS}"
  "$@"
  LANE_NAMES+=("${name}")
  LANE_SECS+=("$((SECONDS - t0))")
}

print_lane_summary() {
  [ "${#LANE_NAMES[@]}" -eq 0 ] && return 0
  echo
  echo "== lane wall-clock summary =="
  printf '%-12s %10s\n' "lane" "seconds"
  printf '%-12s %10s\n' "----" "-------"
  local i total=0
  for i in "${!LANE_NAMES[@]}"; do
    printf '%-12s %10s\n' "${LANE_NAMES[$i]}" "${LANE_SECS[$i]}"
    total=$((total + LANE_SECS[i]))
  done
  printf '%-12s %10s\n' "total" "${total}"
}

run_config() {
  local dir="$1"
  shift
  echo "== configuring ${dir} ($*) =="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "== building ${dir} =="
  cmake --build "${dir}" -j "$(nproc)"
  echo "== testing ${dir} =="
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

run_soak() {
  echo "== configuring build-asan (-DTANGLED_SANITIZE=ON) =="
  cmake -B build-asan -S . -DTANGLED_SANITIZE=ON >/dev/null
  echo "== building sanitized soak harnesses =="
  cmake --build build-asan -j "$(nproc)" \
    --target tangled_soak tangled_storage_soak
  echo "== fault + storage-upset soak (ctest -L soak, sanitized) =="
  ctest --test-dir build-asan -L soak --output-on-failure -j "$(nproc)"
}

run_integrity() {
  echo "== configuring build-asan (-DTANGLED_SANITIZE=ON) =="
  cmake -B build-asan -S . -DTANGLED_SANITIZE=ON >/dev/null
  echo "== building sanitized integrity harnesses =="
  cmake --build build-asan -j "$(nproc)" \
    --target tangled_integrity tangled_storage_soak
  echo "== data-integrity suite (ctest -L integrity, sanitized) =="
  ctest --test-dir build-asan -L integrity --output-on-failure -j "$(nproc)"
}

run_tsan() {
  echo "== configuring build-tsan (-DTANGLED_TSAN=ON) =="
  cmake -B build-tsan -S . -DTANGLED_TSAN=ON >/dev/null
  echo "== building TSAN serve harnesses =="
  cmake --build build-tsan -j "$(nproc)" \
    --target tangled_serve_tests tangled_serve_stress tangled_net_tests \
    tangled_supervise_tests tangled_crash_soak tangled_batch \
    tangled_served tangled_client
  echo "== serve + net + crash concurrency tests (ctest -L 'serve|net|crash', ThreadSanitizer) =="
  # The chaos soak is excluded here: it runs sanitized in `check.sh net`,
  # and under TSAN's slowdown its wall-clock would dominate the lane.  The
  # crash soak runs at 8 rounds for the same reason (100 rounds is the
  # sanitized `check.sh crash` lane's job); what TSAN adds here is race
  # coverage of the journal's append path under the server's worker pool.
  TANGLED_CRASH_ROUNDS=8 \
    ctest --test-dir build-tsan -L 'serve|net|crash' -E '^tangled_net_chaos$' \
    --output-on-failure
  echo "== tangled_batch acceptance run (ThreadSanitizer) =="
  ./build-tsan/examples/tangled_batch --jobs=64 --threads=8 --inject-frac=0.25
}

run_simd() {
  echo "== configuring build (Release) =="
  cmake -B build -S . >/dev/null
  echo "== building simd differential suite =="
  cmake --build build -j "$(nproc)" --target tangled_simd_tests
  # The in-binary tests already force every CPU-supported tier via
  # set_tier(); re-running the whole suite under each TANGLED_SIMD override
  # additionally pins the env-dispatch path itself (the startup tier the
  # backends inherit).  Unsupported tiers are clamped down by the override
  # parser, so every lane runs everywhere.
  for tier in scalar avx2 avx512; do
    echo "== simd differential suite (ctest -L simd, TANGLED_SIMD=${tier}) =="
    TANGLED_SIMD="${tier}" ctest --test-dir build -L simd \
      --output-on-failure -j "$(nproc)"
  done
}

run_net() {
  echo "== configuring build-asan (-DTANGLED_SANITIZE=ON) =="
  cmake -B build-asan -S . -DTANGLED_SANITIZE=ON >/dev/null
  echo "== building sanitized net harnesses =="
  cmake --build build-asan -j "$(nproc)" \
    --target tangled_net_tests tangled_net_chaos tangled_served \
    tangled_client
  echo "== net front-door suite + transport-chaos soak (ctest -L net, sanitized) =="
  ctest --test-dir build-asan -L net --output-on-failure -j "$(nproc)"
}

run_crash() {
  echo "== configuring build-asan (-DTANGLED_SANITIZE=ON) =="
  cmake -B build-asan -S . -DTANGLED_SANITIZE=ON >/dev/null
  echo "== building sanitized crash harnesses =="
  cmake --build build-asan -j "$(nproc)" \
    --target tangled_crash_soak tangled_served tangled_client
  echo "== crash-durability suite (ctest -L crash, sanitized, 100 rounds) =="
  TANGLED_CRASH_ROUNDS=100 \
    ctest --test-dir build-asan -L crash --output-on-failure
}

run_perf() {
  echo "== configuring build (Release) =="
  cmake -B build -S . >/dev/null
  echo "== building perf smoke + serve floor guard =="
  cmake --build build -j "$(nproc)" --target perf_smoke perf_serve_floor
  echo "== perf guards (ctest -L perf, Release) =="
  # perf_smoke: integrity + SIMD cost gates.  perf_serve_floor: the serve
  # layer's fixed cost per trivial job must clear the pooled jobs/s bar and
  # pooling must beat cold per-job construction (ISSUE 10; the bar is
  # overridable via TANGLED_SERVE_FLOOR_MIN for slow CI boxes).
  ctest --test-dir build -L perf --output-on-failure
}

run_govern() {
  echo "== configuring build-asan (-DTANGLED_SANITIZE=ON) =="
  cmake -B build-asan -S . -DTANGLED_SANITIZE=ON >/dev/null
  echo "== building sanitized governance harnesses =="
  cmake --build build-asan -j "$(nproc)" \
    --target tangled_supervise_tests tangled_govern_soak
  echo "== governance + supervision suite (ctest -L govern, sanitized) =="
  ctest --test-dir build-asan -L govern --output-on-failure -j "$(nproc)"
}

mode="${1:-}"

case "${mode}" in
  --asan)
    run_lane asan run_config build-asan -DTANGLED_SANITIZE=ON
    ;;
  soak)
    run_lane soak run_soak
    ;;
  tsan)
    run_lane tsan run_tsan
    ;;
  integrity)
    run_lane integrity run_integrity
    ;;
  net)
    run_lane net run_net
    ;;
  crash)
    run_lane crash run_crash
    ;;
  govern)
    run_lane govern run_govern
    ;;
  perf)
    run_lane perf run_perf
    ;;
  simd)
    run_lane simd run_simd
    ;;
  --all)
    run_lane build run_config build
    run_lane asan run_config build-asan -DTANGLED_SANITIZE=ON
    run_lane soak run_soak
    run_lane integrity run_integrity
    run_lane tsan run_tsan
    run_lane net run_net
    run_lane crash run_crash
    run_lane govern run_govern
    run_lane simd run_simd
    run_lane perf run_perf
    ;;
  "")
    run_lane build run_config build
    ;;
  *)
    echo "usage: scripts/check.sh [--asan|--all|soak|tsan|integrity|net|crash|govern|perf|simd]" >&2
    exit 2
    ;;
esac

print_lane_summary
echo "== all checks passed =="
