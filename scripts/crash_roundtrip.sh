#!/usr/bin/env bash
# crash_roundtrip.sh — shell-level acceptance for the durable job journal:
# boot tangled_served with --journal, complete a keyed batch, SIGKILL the
# daemon, restart it on the same directory, and require (a) the journal to
# replay, (b) resubmitted keys to dedup onto their stored reports instead of
# re-executing, and (c) a mid-run crash to recover the admitted job.  Ends
# with a graceful SIGTERM drain (exit 0).
#
#   scripts/crash_roundtrip.sh [path/to/tangled_served path/to/tangled_client]
set -u -o pipefail

SERVED=${1:-build/examples/tangled_served}
CLIENT=${2:-build/examples/tangled_client}

fail() { echo "crash_roundtrip: FAIL: $*" >&2; exit 1; }

[ -x "$SERVED" ] || fail "missing $SERVED (build first)"
[ -x "$CLIENT" ] || fail "missing $CLIENT (build first)"

tmp=$(mktemp -d)
served_pid=""
trap 'kill -9 "$served_pid" 2>/dev/null; wait "$served_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

# A ~2M-instruction run: long enough for the SIGKILL to land mid-execution.
cat > "$tmp/long.s" <<'EOF'
	had @0,3
	had @1,5
	and @2,@0,@1
	li  $1,2000
	lex $4,-1
outer:	li  $2,200
inner:	add $2,$4
	jumpt $2,inner
	add $1,$4
	jumpt $1,outer
	lex $1,5
	lex $2,3
	sys
EOF

start_daemon() {
  : > "$tmp/served.log"
  "$SERVED" --port=0 --threads=4 --journal="$tmp/journal" \
            --checkpoint-every=200000 > "$tmp/served.log" 2>&1 &
  served_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$tmp/served.log")
    [ -n "$port" ] && break
    kill -0 "$served_pid" 2>/dev/null \
      || fail "daemon died during startup: $(cat "$tmp/served.log")"
    sleep 0.1
  done
  [ -n "$port" ] || fail "daemon never printed its port"
}

daemon_alive() {
  kill -0 "$served_pid" 2>/dev/null \
    || fail "daemon died during '$1'; log:
$(cat "$tmp/served.log")"
}

# --- Phase 1: complete a keyed batch, then crash. -------------------------
start_daemon
"$CLIENT" --port="$port" --jobs=5 --sim=func --idemp=batch \
  | grep -q "5 completed, 0 failed" || fail "keyed batch did not complete"
daemon_alive "keyed batch"
kill -9 "$served_pid"
wait "$served_pid" 2>/dev/null

# --- Phase 2: restart; resubmits must dedup, not re-execute. --------------
start_daemon
grep -q "segment(s) replayed" "$tmp/served.log" \
  || fail "restart did not replay the journal: $(cat "$tmp/served.log")"
"$CLIENT" --port="$port" --jobs=5 --sim=func --idemp=batch \
  | grep -q "5 completed, 0 failed" || fail "dedup resubmit failed"
"$CLIENT" --port="$port" --stats | grep -q "5 deduped" \
  || fail "stats do not show 5 deduped reports"

# --- Phase 3: crash right after admission; the job must not be lost. ------
# Depending on where the SIGKILL lands, the restarted daemon either re-runs
# the admitted-but-unreported job ("1 job(s) recovered") or already holds its
# durable report (the resubmit dedups).  Both are exactly-once; losing the
# job is the only failure.
"$CLIENT" --port="$port" --jobs=1 --sim=func --idemp=midrun \
          --expect=1=5,2=3 --checkpoint-every=200000 "$tmp/long.s" \
          > "$tmp/midrun.log" 2>&1 &
client_pid=$!
sleep 0.05
kill -9 "$served_pid"
wait "$served_pid" 2>/dev/null
wait "$client_pid" 2>/dev/null || true  # its connection just died; expected

start_daemon
grep -q "job(s) recovered" "$tmp/served.log" \
  || fail "restart did not replay the journal: $(cat "$tmp/served.log")"
# Resubmitting the key attaches to the recovered run or dedups onto the
# stored report; either way exactly one completed result comes back.
"$CLIENT" --port="$port" --jobs=1 --sim=func --idemp=midrun \
          --expect=1=5,2=3 "$tmp/long.s" \
  | grep -q "1 completed, 0 failed" || fail "admitted job was lost"

# --- Graceful drain. ------------------------------------------------------
kill -TERM "$served_pid"
wait "$served_pid"
rc=$?
[ "$rc" -eq 0 ] || fail "daemon exited $rc on SIGTERM"
grep -q "drained" "$tmp/served.log" || fail "no drain summary"

echo "crash_roundtrip: OK"
