#!/usr/bin/env bash
# net_roundtrip.sh — end-to-end acceptance for the network front door:
# start tangled_served on an ephemeral port, run a client round trip
# (submit + stream reports + stats), SIGTERM the daemon, and require a
# clean drain (exit 0, no lost reports).
#
#   scripts/net_roundtrip.sh [path/to/tangled_served path/to/tangled_client]
set -u -o pipefail

SERVED=${1:-build/examples/tangled_served}
CLIENT=${2:-build/examples/tangled_client}

fail() { echo "net_roundtrip: FAIL: $*" >&2; exit 1; }

# A client phase that "fails" because the daemon silently died is a daemon
# bug, not a client bug: check liveness after every phase and surface the
# daemon's log, which holds the actual cause.
daemon_alive() {
  kill -0 "$served_pid" 2>/dev/null \
    || fail "daemon died during '$1'; log:
$(cat "$tmp/served.log")"
}

[ -x "$SERVED" ] || fail "missing $SERVED (build first)"
[ -x "$CLIENT" ] || fail "missing $CLIENT (build first)"

tmp=$(mktemp -d)
trap 'kill "$served_pid" 2>/dev/null; wait "$served_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

"$SERVED" --port=0 --threads=4 --queue=16 > "$tmp/served.log" 2>&1 &
served_pid=$!

# The daemon prints its bound port on startup; wait for the line.
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$tmp/served.log")
  [ -n "$port" ] && break
  kill -0 "$served_pid" 2>/dev/null || fail "daemon died during startup: $(cat "$tmp/served.log")"
  sleep 0.1
done
[ -n "$port" ] || fail "daemon never printed its port"

"$CLIENT" --port="$port" --ping || { daemon_alive "ping"; fail "ping"; }
"$CLIENT" --port="$port" --jobs=7 \
  || { daemon_alive "submit"; fail "submit round trip"; }
daemon_alive "submit"
"$CLIENT" --port="$port" --stats | grep -q "7 submitted, 7 completed" \
  || { daemon_alive "stats"; fail "stats snapshot disagrees"; }
daemon_alive "stats"

# Graceful drain: SIGTERM must flush and exit 0.
kill -TERM "$served_pid"
wait "$served_pid"
rc=$?
[ "$rc" -eq 0 ] || fail "daemon exited $rc on SIGTERM"
grep -q "drained" "$tmp/served.log" || fail "no drain summary: $(cat "$tmp/served.log")"

echo "net_roundtrip: OK"
