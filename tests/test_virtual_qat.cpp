// Tests for VirtualQat — the software RE-backed Qat for high entanglement —
// including differential verification against the hardware QatEngine.
#include "pbp/virtual_qat.hpp"

#include <gtest/gtest.h>

#include <random>

#include "arch/qat_engine.hpp"

namespace pbp {
namespace {

TEST(VirtualQat, BasicOps) {
  VirtualQat q(20, 12);
  q.one(1);
  EXPECT_TRUE(q.all(1));
  q.had(2, 19);
  EXPECT_EQ(q.popcount(2), std::size_t{1} << 19);
  q.and_(3, 1, 2);
  EXPECT_TRUE(q.reg(3) == q.reg(2));
  q.zero(1);
  EXPECT_FALSE(q.any(1));
}

TEST(VirtualQat, MeasurementFamilyBeyond16Ways) {
  // 2^22 channels: a dense AoB would be 512 KiB per register; here the
  // register file stays tiny because everything is Hadamard-structured.
  VirtualQat q(22, 12);
  q.had(0, 21);
  EXPECT_FALSE(q.meas(0, 0));
  EXPECT_TRUE(q.meas(0, std::size_t{1} << 21));
  EXPECT_EQ(q.next(0, 0), std::size_t{1} << 21);
  EXPECT_EQ(q.pop_after(0, 0), std::size_t{1} << 21);
  EXPECT_LT(q.storage_bytes(), 256u * 64u);
}

TEST(VirtualQat, ReversibleGateInvolutions) {
  VirtualQat q(18, 10);
  q.had(0, 3);
  q.had(1, 9);
  q.had(2, 15);
  const Re a0 = q.reg(0);
  const Re b0 = q.reg(1);
  q.not_(0);
  q.not_(0);
  EXPECT_TRUE(q.reg(0) == a0);
  q.cnot(0, 1);
  q.cnot(0, 1);
  EXPECT_TRUE(q.reg(0) == a0);
  q.ccnot(0, 1, 2);
  q.ccnot(0, 1, 2);
  EXPECT_TRUE(q.reg(0) == a0);
  q.cswap(0, 1, 2);
  q.cswap(0, 1, 2);
  EXPECT_TRUE(q.reg(0) == a0 && q.reg(1) == b0);
  q.swap(0, 1);
  EXPECT_TRUE(q.reg(0) == b0 && q.reg(1) == a0);
}

TEST(VirtualQat, SelfSwapAndAliasedCswap) {
  VirtualQat q(16, 8);
  q.had(5, 7);
  const Re before = q.reg(5);
  q.swap(5, 5);
  EXPECT_TRUE(q.reg(5) == before);
  q.cswap(5, 5, 5);
  EXPECT_TRUE(q.reg(5) == before);
}

// Differential: a random Table 3 op sequence produces the same architectural
// result on the hardware engine and the virtual one (at sizes both support).
class VirtualVsHardware : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VirtualVsHardware, RandomOpSequencesAgree) {
  const unsigned ways = 12;
  tangled::QatEngine hw(ways);
  VirtualQat sw(ways, 6);
  std::mt19937_64 rng(GetParam());
  const auto r = [&] { return static_cast<unsigned>(rng() % 12); };
  for (int step = 0; step < 200; ++step) {
    const unsigned a = r();
    const unsigned b = r();
    const unsigned c = r();
    switch (rng() % 11) {
      case 0:
        hw.zero(a);
        sw.zero(a);
        break;
      case 1:
        hw.one(a);
        sw.one(a);
        break;
      case 2: {
        const unsigned k = static_cast<unsigned>(rng() % ways);
        hw.had(a, k);
        sw.had(a, k);
        break;
      }
      case 3:
        hw.not_(a);
        sw.not_(a);
        break;
      case 4:
        hw.cnot(a, b);
        sw.cnot(a, b);
        break;
      case 5:
        hw.ccnot(a, b, c);
        sw.ccnot(a, b, c);
        break;
      case 6:
        hw.swap(a, b);
        sw.swap(a, b);
        break;
      case 7:
        hw.cswap(a, b, c);
        sw.cswap(a, b, c);
        break;
      case 8:
        hw.and_(a, b, c);
        sw.and_(a, b, c);
        break;
      case 9:
        hw.or_(a, b, c);
        sw.or_(a, b, c);
        break;
      default:
        hw.xor_(a, b, c);
        sw.xor_(a, b, c);
        break;
    }
    // Spot-check measurement agreement as the state evolves.
    const std::uint16_t ch = static_cast<std::uint16_t>(rng() % 4096);
    ASSERT_EQ(hw.meas(a, ch) != 0, sw.meas(a, ch)) << "step " << step;
    ASSERT_EQ(hw.next(a, ch), sw.next(a, ch)) << "step " << step;
    ASSERT_EQ(hw.pop(a, ch), sw.pop_after(a, ch)) << "step " << step;
  }
  for (unsigned reg = 0; reg < 12; ++reg) {
    ASSERT_EQ(hw.reg(reg), sw.reg(reg).to_aob()) << "@" << reg;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VirtualVsHardware,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(VirtualQat, Factor221At32Ways) {
  // The factoring pattern at 32-way entanglement (4 billion channels):
  // b = H(0..15), c = H(16..31), find b*c == 221 among ALL 16-bit pairs.
  // Dense AoBs would be 512 MiB each; the compressed registers stay small.
  // (A full 16x16 multiplier is ~2k ops; to keep the test fast we check the
  // low-width equality only: b*c restricted to 8-bit b, c works the same.)
  VirtualQat q(32, 12);
  q.had(0, 0);   // b bit 0
  q.had(1, 16);  // c bit 0
  q.and_(2, 0, 1);
  // Channel e has bit0(b)=e&1, bit0(c)=(e>>16)&1: AND is 1 iff both set.
  EXPECT_EQ(q.popcount(2), std::size_t{1} << 30);
  EXPECT_EQ(q.next(2, 0), 0x10001u);
  EXPECT_TRUE(q.meas(2, 0x10001u));
  EXPECT_FALSE(q.meas(2, 0x10000u));
}

}  // namespace
}  // namespace pbp
