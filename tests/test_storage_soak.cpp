// Storage-upset soak (labels `soak;integrity`): hundreds of seeded random
// raw-payload bit flips (FaultPlan::random_storage) against the Figure 10
// factoring run, across ECC modes, backends, and all simulator models.
//
// The acceptance contract:
//   * ecc=correct — every single-bit upset is either corrected in place or
//     rolled back; ZERO wrong-answer completions, and the aggregate
//     corrected count is nonzero (the plans really fired);
//   * ecc=detect  — every upset surfaces as a kDataCorruption trap feeding
//     the rollback/restart machinery, NEVER a silent success: any run whose
//     plan fired either recovered or gave up with a recorded trap;
//   * double-bit upsets (two flips, same word, same boundary) never
//     complete with a wrong answer in any mode;
//   * ecc=off (memory-storage lane) documents the threat model: upsets are
//     silent, but the validate predicate still drives recovery and no run
//     ever escapes as an uncaught exception.
#include <gtest/gtest.h>

#include <cstdint>

#include "arch/multicycle_fsm.hpp"
#include "arch/recovery.hpp"
#include "arch/rtl_pipeline.hpp"
#include "arch/simulators.hpp"
#include "asm/assembler.hpp"
#include "asm/programs.hpp"

namespace tangled {
namespace {

constexpr std::uint64_t kBudget = 20'000;
constexpr std::uint64_t kScrubEvery = 16;

bool factors_ok(const CpuState& cpu) {
  return cpu.regs[0] == 5 && cpu.regs[1] == 3;
}

struct PipelineSim5 : PipelineSim {
  PipelineSim5(unsigned ways, pbp::Backend backend)
      : PipelineSim(ways, PipelineConfig{.stages = 5, .forwarding = true},
                    backend) {}
};

struct SoakTally {
  std::uint64_t runs = 0;
  std::uint64_t recovered = 0;
  std::uint64_t upsets_applied = 0;
  std::uint64_t corrected = 0;
  std::uint64_t detected = 0;
  std::uint64_t wrong_answers = 0;  // must stay 0 whenever ECC is on
};

/// One seeded storage-upset run under the checkpointing runner.  The
/// wrong-answer check deliberately bypasses the runner's own validate
/// result and re-inspects the machine: a silent corruption that slipped
/// through every gate would be counted here.
template <typename Sim>
void soak_one(Sim& sim, const Program& p, pbp::EccMode mode,
              FaultPlan plan, std::uint64_t checkpoint_every,
              SoakTally& tally, std::uint64_t ecc_epoch = 1) {
  sim.load(p);
  sim.set_ecc_mode(mode);
  sim.set_ecc_epoch(ecc_epoch);
  sim.set_scrub_every(kScrubEvery);
  sim.set_fault_plan(std::move(plan));
  CheckpointingRunner<Sim> runner(sim, checkpoint_every);
  const RecoveryStats rs = runner.run(
      kBudget, [](const Sim& s) { return factors_ok(s.cpu()); });
  ++tally.runs;
  tally.upsets_applied += sim.injector().applied();
  if (rs.recovered) ++tally.recovered;
  const auto qs = sim.qat().stats_snapshot();
  tally.corrected += qs.ecc_corrected + sim.memory().ecc_corrected();
  tally.detected += qs.ecc_detected + sim.memory().ecc_detected();

  EXPECT_FALSE(rs.gave_up) << "final trap " << to_string(rs.final_trap);
  if (rs.gave_up) return;
  EXPECT_TRUE(rs.halted);
  if (rs.halted && !factors_ok(sim.cpu())) ++tally.wrong_answers;

  if (mode == pbp::EccMode::kDetect && sim.injector().applied() > 0) {
    // detect cannot repair: a fired upset can only have been cleared by a
    // restore, so a completed run MUST have recovered.  Anything else
    // would be a silent success over corrupted state.
    EXPECT_TRUE(rs.recovered) << "silent success past a detected upset";
  }
}

template <typename Sim>
void soak_seeds(pbp::EccMode mode, unsigned ways, pbp::Backend backend,
                std::uint64_t checkpoint_every, std::uint64_t seed0,
                std::uint64_t n_seeds, SoakTally& tally,
                std::uint64_t ecc_epoch = 1) {
  const Program p = assemble(figure10_source());
  for (std::uint64_t seed = seed0; seed < seed0 + n_seeds; ++seed) {
    Sim sim(ways, backend);
    soak_one(sim, p, mode,
             FaultPlan::random_storage(seed, /*n_events=*/4,
                                       /*horizon=*/100, ways),
             checkpoint_every, tally, ecc_epoch);
  }
}

// --- ecc=correct: zero wrong answers, corrected > 0 in aggregate ---------

TEST(StorageSoak, CorrectModeZeroWrongAnswers) {
  SoakTally tally;
  soak_seeds<FunctionalSim>(pbp::EccMode::kCorrect, 8, pbp::Backend::kDense,
                            25, 0, 40, tally);
  soak_seeds<MultiCycleSim>(pbp::EccMode::kCorrect, 8, pbp::Backend::kDense,
                            25, 1000, 20, tally);
  soak_seeds<PipelineSim5>(pbp::EccMode::kCorrect, 8, pbp::Backend::kDense,
                           25, 2000, 20, tally);
  soak_seeds<MultiCycleFsmSim>(pbp::EccMode::kCorrect, 8,
                               pbp::Backend::kDense, 25, 3000, 20, tally);
  // RTL is restart-only (checkpoint_every = 0): in-flight latches cannot be
  // sliced mid-run.
  soak_seeds<RtlPipelineSim>(pbp::EccMode::kCorrect, 8, pbp::Backend::kDense,
                             0, 4000, 15, tally);
  EXPECT_EQ(tally.wrong_answers, 0u);
  EXPECT_GT(tally.upsets_applied, 0u);
  EXPECT_GT(tally.corrected, 0u);  // the plans really hit protected state
}

TEST(StorageSoak, CorrectModeCompressedBackend) {
  // RE backend: upsets land in shared chunk-pool symbols, so a single flip
  // can corrupt every register referencing the symbol — correction must
  // still hold the zero-wrong-answer line.
  SoakTally tally;
  soak_seeds<FunctionalSim>(pbp::EccMode::kCorrect, 16,
                            pbp::Backend::kCompressed, 25, 5000, 30, tally);
  soak_seeds<RtlPipelineSim>(pbp::EccMode::kCorrect, 16,
                             pbp::Backend::kCompressed, 0, 6000, 10, tally);
  EXPECT_EQ(tally.wrong_answers, 0u);
  EXPECT_GT(tally.upsets_applied, 0u);
  EXPECT_GT(tally.corrected, 0u);
}

// --- ecc=detect: trap -> rollback/restart, never silent success ----------

TEST(StorageSoak, DetectModeNeverSilentlySucceeds) {
  SoakTally tally;
  soak_seeds<FunctionalSim>(pbp::EccMode::kDetect, 8, pbp::Backend::kDense,
                            25, 7000, 25, tally);
  soak_seeds<PipelineSim5>(pbp::EccMode::kDetect, 8, pbp::Backend::kDense,
                           25, 8000, 15, tally);
  soak_seeds<MultiCycleFsmSim>(pbp::EccMode::kDetect, 8,
                               pbp::Backend::kDense, 25, 9000, 15, tally);
  soak_seeds<RtlPipelineSim>(pbp::EccMode::kDetect, 8, pbp::Backend::kDense,
                             0, 10000, 10, tally);
  EXPECT_EQ(tally.wrong_answers, 0u);
  EXPECT_GT(tally.upsets_applied, 0u);
  EXPECT_GT(tally.detected, 0u);
  EXPECT_EQ(tally.corrected, 0u);  // detect never repairs
  EXPECT_GT(tally.recovered, 0u);
}

// --- epoch-scheduled verification under fire -----------------------------
//
// With --ecc-epoch=25 a corrupted value can legally be *read* within one
// epoch of the upset before any access-path verification fires; the scrub
// cadence and the clean-halt gate bound how long it can hide, and the
// validate predicate catches any answer it poisoned.  These lanes are
// restart-only (checkpoint_every = 0): a checkpoint sliced inside the
// detection-latency window could bake the poisoned value into the rollback
// target, while a restart always re-executes from pristine state — and the
// retired-instruction clock never rewinds, so the retry is fault-free.

TEST(StorageSoak, Epoch25CorrectModeZeroWrongAnswers) {
  SoakTally tally;
  soak_seeds<FunctionalSim>(pbp::EccMode::kCorrect, 8, pbp::Backend::kDense,
                            0, 12000, 30, tally, /*ecc_epoch=*/25);
  soak_seeds<RtlPipelineSim>(pbp::EccMode::kCorrect, 8, pbp::Backend::kDense,
                             0, 13000, 10, tally, /*ecc_epoch=*/25);
  soak_seeds<FunctionalSim>(pbp::EccMode::kCorrect, 16,
                            pbp::Backend::kCompressed, 0, 14000, 10, tally,
                            /*ecc_epoch=*/25);
  EXPECT_EQ(tally.wrong_answers, 0u);
  EXPECT_GT(tally.upsets_applied, 0u);
  EXPECT_GT(tally.corrected, 0u);
}

TEST(StorageSoak, Epoch25DetectModeNeverSilentlySucceeds) {
  SoakTally tally;
  soak_seeds<FunctionalSim>(pbp::EccMode::kDetect, 8, pbp::Backend::kDense,
                            0, 15000, 25, tally, /*ecc_epoch=*/25);
  soak_seeds<MultiCycleFsmSim>(pbp::EccMode::kDetect, 8, pbp::Backend::kDense,
                               0, 16000, 10, tally, /*ecc_epoch=*/25);
  soak_seeds<RtlPipelineSim>(pbp::EccMode::kDetect, 8, pbp::Backend::kDense,
                             0, 17000, 10, tally, /*ecc_epoch=*/25);
  EXPECT_EQ(tally.wrong_answers, 0u);
  EXPECT_GT(tally.upsets_applied, 0u);
  EXPECT_GT(tally.detected, 0u);
  EXPECT_EQ(tally.corrected, 0u);  // detect never repairs, at any epoch
  EXPECT_GT(tally.recovered, 0u);
}

// --- double-bit upsets: never a wrong completion in any mode -------------

template <typename Sim>
void double_bit_runs(pbp::EccMode mode, std::uint64_t checkpoint_every,
                     SoakTally& tally) {
  const Program p = assemble(figure10_source());
  for (std::uint64_t v = 0; v < 4; ++v) {
    FaultPlan plan;
    // Two flips in the same protected word at the same retire boundary:
    // beyond SECDED's correction radius by construction.
    FaultEvent a;
    a.target = v % 2 == 0 ? FaultEvent::Target::kMemStorage
                          : FaultEvent::Target::kQatStorage;
    a.at_instr = 30;
    a.addr = v % 2 == 0 ? static_cast<std::uint16_t>(4000 + v) : 2;
    a.bit = 3;
    a.channel = 3;
    FaultEvent b = a;
    b.bit = 9;
    b.channel = 9;  // same 64-bit chunk word as channel 3
    plan.events.push_back(a);
    plan.events.push_back(b);
    Sim sim(8, pbp::Backend::kDense);
    soak_one(sim, p, mode, std::move(plan), checkpoint_every, tally);
  }
}

TEST(StorageSoak, DoubleBitNeverCompletesWrong) {
  SoakTally tally;
  double_bit_runs<FunctionalSim>(pbp::EccMode::kCorrect, 25, tally);
  double_bit_runs<FunctionalSim>(pbp::EccMode::kDetect, 25, tally);
  double_bit_runs<PipelineSim5>(pbp::EccMode::kCorrect, 25, tally);
  double_bit_runs<MultiCycleFsmSim>(pbp::EccMode::kCorrect, 25, tally);
  double_bit_runs<RtlPipelineSim>(pbp::EccMode::kCorrect, 0, tally);
  EXPECT_EQ(tally.wrong_answers, 0u);
  EXPECT_GT(tally.detected, 0u);  // double flips are uncorrectable
  EXPECT_GT(tally.recovered, 0u);  // and can only be cleared by a restore
}

// --- ecc=off: the documented threat model --------------------------------

TEST(StorageSoak, OffModeMemUpsetsRecoverViaValidateOnly) {
  // With protection off a memory-storage upset is just a silent bit flip;
  // the wrong-answer/trap recovery machinery (validate + rollback) is the
  // only line of defence, exactly like the architectural fault soak.  ECC
  // tallies must stay zero.
  const Program p = assemble(figure10_source());
  SoakTally tally;
  for (std::uint64_t seed = 11000; seed < 11030; ++seed) {
    FaultPlan plan =
        FaultPlan::random_storage(seed, /*n_events=*/4, /*horizon=*/100, 8);
    // Keep the memory-word lane only: Qat-storage flips under ecc=off mimic
    // kQatChannel faults, already soaked elsewhere.
    FaultPlan mem_only;
    for (const FaultEvent& ev : plan.events) {
      if (ev.target == FaultEvent::Target::kMemStorage) {
        mem_only.events.push_back(ev);
      }
    }
    FunctionalSim sim(8, pbp::Backend::kDense);
    soak_one(sim, p, pbp::EccMode::kOff, std::move(mem_only), 25, tally);
  }
  EXPECT_EQ(tally.corrected, 0u);
  EXPECT_EQ(tally.detected, 0u);
  EXPECT_EQ(tally.wrong_answers, 0u);  // validate-driven recovery converged
}

}  // namespace
}  // namespace tangled
