// Differential pool-reset equivalence (ISSUE 10): a simulator handed back
// by the worker pool via reset() must be bit-identical to a freshly
// constructed one — same architectural state, same stats and ECC counters,
// same serialized Qat bytes, same console output, same coverage, same trap
// behavior.  The suite dirties a simulator as hard as the serve layer ever
// does (ECC correct mode, storage upsets, scrubbing, a partial run of a
// different program), resets it, re-runs the reference workload, and
// compares every observable against a fresh machine — across all seven
// SimKind configurations and both Qat backends.
//
// Also covered here: the SimulatorPool cache policy itself (hit/miss
// accounting, LRU eviction, footprint gating) and a concurrent stress of
// the sharded RE ChunkPool (run under TSAN by the `serve` lane).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/multicycle_fsm.hpp"
#include "arch/rtl_pipeline.hpp"
#include "arch/simulators.hpp"
#include "asm/assembler.hpp"
#include "asm/programs.hpp"
#include "pbp/re.hpp"
#include "pbp/serialize.hpp"
#include "serve/job.hpp"
#include "serve/sim_pool.hpp"

namespace tangled {
namespace {

using serve::SimKind;
using serve::SimulatorPool;

constexpr SimKind kAllKinds[] = {
    SimKind::kFunc,  SimKind::kMulti,      SimKind::kMultiFsm, SimKind::kPipe4,
    SimKind::kPipe5, SimKind::kPipe5NoFwd, SimKind::kRtl};

const char* kind_name(SimKind k) {
  switch (k) {
    case SimKind::kFunc:       return "func";
    case SimKind::kMulti:      return "multi";
    case SimKind::kMultiFsm:   return "multi-fsm";
    case SimKind::kPipe4:      return "pipe4";
    case SimKind::kPipe5:      return "pipe5";
    case SimKind::kPipe5NoFwd: return "pipe5-nofwd";
    case SimKind::kRtl:        return "rtl";
  }
  return "?";
}

/// Construct a fresh simulator of `kind` (exactly as JobServer::execute
/// does) and hand it to `fn`.  The five concrete classes are duck-typed —
/// MultiCycleFsmSim and RtlPipelineSim share the SimBase surface without
/// inheriting it — so dispatch is by template, not by base pointer.
template <typename Fn>
void with_sim(SimKind kind, unsigned ways, pbp::Backend backend, Fn&& fn) {
  switch (kind) {
    case SimKind::kFunc: {
      FunctionalSim s(ways, backend);
      fn(s);
      return;
    }
    case SimKind::kMulti: {
      MultiCycleSim s(ways, backend);
      fn(s);
      return;
    }
    case SimKind::kMultiFsm: {
      MultiCycleFsmSim s(ways, backend);
      fn(s);
      return;
    }
    case SimKind::kPipe4: {
      PipelineSim s(ways, PipelineConfig{.stages = 4, .forwarding = true},
                    backend);
      fn(s);
      return;
    }
    case SimKind::kPipe5: {
      PipelineSim s(ways, PipelineConfig{.stages = 5, .forwarding = true},
                    backend);
      fn(s);
      return;
    }
    case SimKind::kPipe5NoFwd: {
      PipelineSim s(ways, PipelineConfig{.stages = 5, .forwarding = false},
                    backend);
      fn(s);
      return;
    }
    case SimKind::kRtl: {
      RtlPipelineSim s(ways, backend);
      fn(s);
      return;
    }
  }
}

/// Every observable the serve layer (or a report consumer) can see from a
/// simulator after a run.  Two machines whose Observed compare equal are
/// indistinguishable to any job.
struct Observed {
  std::array<std::uint16_t, kNumRegs> regs{};
  std::uint16_t pc = 0;
  bool halted = false;
  Trap trap{};
  std::vector<std::uint16_t> memory;
  std::size_t mem_dirty_high_water = 0;
  std::uint64_t mem_ecc_corrected = 0;
  std::uint64_t mem_ecc_detected = 0;
  std::vector<std::uint8_t> qat_bytes;  // full serialized engine image
  QatStatsSnapshot qat_stats{};
  SimStats run_stats{};  // what run() returned
  std::string console;
  std::uint64_t retired_total = 0;
  std::vector<std::uint64_t> coverage;  // models that track it
};

template <typename Sim>
Observed observe(Sim& sim, const SimStats& run_stats,
                 std::uint16_t program_words) {
  Observed o;
  o.regs = sim.cpu().regs;
  o.pc = sim.cpu().pc;
  o.halted = sim.cpu().halted;
  o.trap = sim.cpu().trap;
  o.memory = sim.memory().words();
  o.mem_dirty_high_water = sim.memory().dirty_high_water();
  o.mem_ecc_corrected = sim.memory().ecc_corrected();
  o.mem_ecc_detected = sim.memory().ecc_detected();
  pbp::ByteWriter w;
  sim.qat().serialize(w);
  o.qat_bytes = w.take();
  o.qat_stats = sim.qat().stats_snapshot();
  o.run_stats = run_stats;
  o.console = sim.console();
  o.retired_total = sim.retired_total();
  if constexpr (requires { sim.execution_count(std::uint16_t{0}); }) {
    o.coverage.reserve(program_words);
    for (std::uint16_t a = 0; a < program_words; ++a) {
      o.coverage.push_back(sim.execution_count(a));
    }
  }
  return o;
}

void expect_identical(const Observed& fresh, const Observed& reset,
                      const std::string& label) {
  EXPECT_EQ(fresh.regs, reset.regs) << label;
  EXPECT_EQ(fresh.pc, reset.pc) << label;
  EXPECT_EQ(fresh.halted, reset.halted) << label;
  EXPECT_EQ(fresh.trap, reset.trap) << label;
  EXPECT_EQ(fresh.memory, reset.memory) << label;
  EXPECT_EQ(fresh.mem_dirty_high_water, reset.mem_dirty_high_water) << label;
  EXPECT_EQ(fresh.mem_ecc_corrected, reset.mem_ecc_corrected) << label;
  EXPECT_EQ(fresh.mem_ecc_detected, reset.mem_ecc_detected) << label;
  EXPECT_EQ(fresh.qat_bytes, reset.qat_bytes)
      << label << ": serialized Qat images differ";
  EXPECT_EQ(fresh.qat_stats.ops, reset.qat_stats.ops) << label;
  EXPECT_EQ(fresh.qat_stats.reg_reads, reset.qat_stats.reg_reads) << label;
  EXPECT_EQ(fresh.qat_stats.reg_writes, reset.qat_stats.reg_writes) << label;
  EXPECT_EQ(fresh.qat_stats.backend_migrations,
            reset.qat_stats.backend_migrations)
      << label;
  EXPECT_EQ(fresh.qat_stats.ecc_corrected, reset.qat_stats.ecc_corrected)
      << label;
  EXPECT_EQ(fresh.qat_stats.ecc_detected, reset.qat_stats.ecc_detected)
      << label;
  EXPECT_EQ(fresh.qat_stats.ecc_scrubs, reset.qat_stats.ecc_scrubs) << label;
  EXPECT_EQ(fresh.qat_stats.ecc_words_verified,
            reset.qat_stats.ecc_words_verified)
      << label;
  EXPECT_EQ(fresh.qat_stats.ecc_verifies_elided,
            reset.qat_stats.ecc_verifies_elided)
      << label;
  EXPECT_EQ(fresh.run_stats.instructions, reset.run_stats.instructions)
      << label;
  EXPECT_EQ(fresh.run_stats.cycles, reset.run_stats.cycles) << label;
  EXPECT_EQ(fresh.run_stats.taken_branches, reset.run_stats.taken_branches)
      << label;
  EXPECT_EQ(fresh.run_stats.data_stall_cycles,
            reset.run_stats.data_stall_cycles)
      << label;
  EXPECT_EQ(fresh.run_stats.flush_cycles, reset.run_stats.flush_cycles)
      << label;
  EXPECT_EQ(fresh.run_stats.fetch_extra_cycles,
            reset.run_stats.fetch_extra_cycles)
      << label;
  EXPECT_EQ(fresh.run_stats.halted, reset.run_stats.halted) << label;
  EXPECT_EQ(fresh.run_stats.trap, reset.run_stats.trap) << label;
  EXPECT_EQ(fresh.console, reset.console) << label;
  EXPECT_EQ(fresh.retired_total, reset.retired_total) << label;
  EXPECT_EQ(fresh.coverage, reset.coverage) << label;
}

/// Dirty a simulator the way the worst-behaved job would: ECC-protected
/// run with periodic scrubbing, storage upsets underneath the sidecars
/// (so correction counters move), Qat activity, memory/console writes —
/// then cut it off mid-program so internal pipeline state is mid-flight.
template <typename Sim>
void dirty_hard(Sim& sim) {
  const Program p = assemble(
      "lex $2,7\n"
      "lex $3,255\n"
      "store $3,$2\n"
      "had @0,2\n"
      "had @1,2\n"
      "and @2,@0,@1\n"
      "load $4,$2\n"
      "sys $4\n"
      "add $2,$3\n"
      "store $2,$3\n"
      "sys\n");
  sim.load(p);
  sim.set_ecc_mode(pbp::EccMode::kCorrect);
  sim.set_scrub_every(3);
  FaultPlan plan;
  FaultEvent ev;
  ev.target = FaultEvent::Target::kMemStorage;
  ev.at_instr = 2;
  ev.addr = 7;
  ev.bit = 5;
  plan.events.push_back(ev);
  ev.target = FaultEvent::Target::kQatStorage;
  ev.at_instr = 4;
  ev.addr = 0;
  ev.channel = 1;
  plan.events.push_back(ev);
  sim.set_fault_plan(plan);
  sim.run(6);  // stop mid-program: leave half-executed state behind
}

/// Run the reference program on `sim` (assumed at power-on state) and
/// capture every observable.
template <typename Sim>
Observed run_reference(Sim& sim, const Program& p,
                       std::uint16_t program_words) {
  sim.load(p);
  const SimStats st = sim.run(20'000);
  return observe(sim, st, program_words);
}

TEST(PoolReset, ResetEqualsFreshAcrossAllConfigs) {
  const Program ref = assemble(figure10_source());
  const auto words = static_cast<std::uint16_t>(ref.words.size());
  for (const pbp::Backend backend :
       {pbp::Backend::kDense, pbp::Backend::kCompressed}) {
    const unsigned ways = backend == pbp::Backend::kCompressed ? 16 : 8;
    for (const SimKind kind : kAllKinds) {
      const std::string label =
          std::string(kind_name(kind)) +
          (backend == pbp::Backend::kDense ? "/dense" : "/compressed");

      Observed fresh;
      with_sim(kind, ways, backend,
               [&](auto& sim) { fresh = run_reference(sim, ref, words); });

      Observed after;
      with_sim(kind, ways, backend, [&](auto& sim) {
        dirty_hard(sim);
        sim.reset();
        after = run_reference(sim, ref, words);
      });

      expect_identical(fresh, after, label);
      // The reference program must actually have run (factors 15 = 5 × 3),
      // or the comparison above proved nothing.
      EXPECT_EQ(fresh.regs[0], 5u) << label;
      EXPECT_EQ(fresh.regs[1], 3u) << label;
    }
  }
}

TEST(PoolReset, TrapBehaviorSurvivesReset) {
  // A trapping reference program: the trap kind, trap PC, and final state
  // must be identical on a fresh machine and a dirtied-then-reset one.
  const Program ref = assemble(
      "lex $1,0\n"
      "recip $1\n"  // reciprocal of zero: kDivideByZero on every model
      "sys\n");
  const auto words = static_cast<std::uint16_t>(ref.words.size());
  for (const SimKind kind : kAllKinds) {
    const std::string label = std::string(kind_name(kind)) + "/trap";

    Observed fresh;
    with_sim(kind, 8, pbp::Backend::kDense,
             [&](auto& sim) { fresh = run_reference(sim, ref, words); });

    Observed after;
    with_sim(kind, 8, pbp::Backend::kDense, [&](auto& sim) {
      dirty_hard(sim);
      sim.reset();
      after = run_reference(sim, ref, words);
    });

    expect_identical(fresh, after, label);
    EXPECT_EQ(fresh.trap.kind, TrapKind::kDivideByZero) << label;
  }
}

TEST(PoolReset, ResetClearsEccPolicyAndSidecars) {
  // A job that never asked for ECC must not inherit the previous job's
  // protection (mode, sidecar bytes, counters, epoch).
  FunctionalSim sim(8, pbp::Backend::kDense);
  dirty_hard(sim);
  ASSERT_NE(sim.memory().ecc_mode(), pbp::EccMode::kOff);
  sim.reset();
  EXPECT_EQ(sim.memory().ecc_mode(), pbp::EccMode::kOff);
  EXPECT_EQ(sim.memory().ecc_bytes(), 0u);
  EXPECT_EQ(sim.memory().ecc_corrected(), 0u);
  EXPECT_EQ(sim.memory().ecc_detected(), 0u);
  EXPECT_EQ(sim.memory().dirty_high_water(), 0u);
  const auto qs = sim.qat().stats_snapshot();
  EXPECT_EQ(qs.ops, 0u);
  EXPECT_EQ(qs.ecc_corrected, 0u);
  EXPECT_EQ(qs.ecc_detected, 0u);
  EXPECT_EQ(qs.ecc_scrubs, 0u);
}

// --- SimulatorPool cache policy --------------------------------------

TEST(SimulatorPool, HitReturnsCachedInstanceAndCounts) {
  std::atomic<std::uint64_t> hits{0}, misses{0};
  SimulatorPool pool(4, std::size_t{8} << 20, &hits, &misses);
  unsigned makes = 0;
  const auto make = [&] {
    ++makes;
    return std::make_unique<FunctionalSim>(8, pbp::Backend::kDense);
  };
  auto a = pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 8,
                                       make);
  const FunctionalSim* first = a.get();
  a.reset();  // job done: drop the caller's reference
  auto b = pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 8,
                                       make);
  EXPECT_EQ(b.get(), first) << "hit must reuse the cached simulator";
  EXPECT_EQ(makes, 1u);
  EXPECT_EQ(hits.load(), 1u);
  EXPECT_EQ(misses.load(), 1u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(SimulatorPool, DistinctKeysGetDistinctSimulators) {
  SimulatorPool pool(8);
  const auto mk = [] {
    return std::make_unique<FunctionalSim>(8, pbp::Backend::kDense);
  };
  const auto mk16 = [] {
    return std::make_unique<FunctionalSim>(16, pbp::Backend::kCompressed);
  };
  auto dense = pool.acquire<FunctionalSim>(SimKind::kFunc,
                                           pbp::Backend::kDense, 8, mk);
  auto re = pool.acquire<FunctionalSim>(SimKind::kFunc,
                                        pbp::Backend::kCompressed, 16, mk16);
  EXPECT_NE(dense.get(), re.get());
  EXPECT_EQ(pool.size(), 2u);
}

TEST(SimulatorPool, EvictsLeastRecentlyUsedPastCapacity) {
  std::atomic<std::uint64_t> hits{0}, misses{0};
  SimulatorPool pool(2, std::size_t{8} << 20, &hits, &misses);
  const auto mk = [](unsigned ways) {
    return [ways] {
      return std::make_unique<FunctionalSim>(ways, pbp::Backend::kDense);
    };
  };
  // Fill with ways=1 then ways=2; touch ways=1 so ways=2 is the LRU; a
  // third key must evict ways=2.
  pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 1, mk(1));
  pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 2, mk(2));
  pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 1, mk(1));
  pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 4, mk(4));
  EXPECT_EQ(pool.size(), 2u);
  pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 1, mk(1));
  EXPECT_EQ(hits.load(), 2u) << "ways=1 must have survived the eviction";
  const auto misses_before = misses.load();
  pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 2, mk(2));
  EXPECT_EQ(misses.load(), misses_before + 1)
      << "ways=2 must have been the LRU victim";
}

TEST(SimulatorPool, FootprintGateRefusesOversizedEntries) {
  std::atomic<std::uint64_t> hits{0}, misses{0};
  // 1 KiB budget: every dense simulator estimate exceeds it, so nothing is
  // ever cached and each acquire cold-constructs (the pre-pool behavior).
  SimulatorPool pool(8, 1024, &hits, &misses);
  const auto mk = [] {
    return std::make_unique<FunctionalSim>(8, pbp::Backend::kDense);
  };
  pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 8, mk);
  pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 8, mk);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(hits.load(), 0u);
  EXPECT_EQ(misses.load(), 2u);
}

TEST(SimulatorPool, ZeroEntriesDisablesCaching) {
  std::atomic<std::uint64_t> hits{0}, misses{0};
  SimulatorPool pool(0, std::size_t{8} << 20, &hits, &misses);
  const auto mk = [] {
    return std::make_unique<FunctionalSim>(8, pbp::Backend::kDense);
  };
  pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 8, mk);
  pool.acquire<FunctionalSim>(SimKind::kFunc, pbp::Backend::kDense, 8, mk);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(misses.load(), 2u);
}

// --- Sharded ChunkPool under concurrency ------------------------------

TEST(ShardedChunkPool, StripesAreStableAndCoverAllKeys) {
  pbp::ShardedChunkPool shards(4, 8);
  EXPECT_EQ(shards.stripes(), 4u);
  EXPECT_EQ(shards.chunk_ways(), 8u);
  for (std::uint64_t key = 0; key < 64; ++key) {
    const auto& a = shards.stripe(key);
    const auto& b = shards.stripe(key);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a.get(), b.get()) << "stripe pinning must be deterministic";
  }
}

TEST(ShardedChunkPool, ConcurrentJobsMatchPrivatePoolResults) {
  // The TSAN teeth of this suite: many threads run compressed-backend
  // figure10 jobs that all adopt stripes of one shared ShardedChunkPool —
  // exactly what concurrent RE jobs in the serve layer do.  Results must
  // be identical to a run on a private (unshared) pool, and TSAN must see
  // no races inside the stripe's hash-consing.
  const Program ref = assemble(figure10_source());

  FunctionalSim private_sim(16, pbp::Backend::kCompressed);
  private_sim.load(ref);
  private_sim.run(20'000);
  const std::array<std::uint16_t, kNumRegs> want = private_sim.cpu().regs;
  // The serialized RE image is pool-relative (chunk ids, chunk width), so
  // the equivalence check decodes the register CONTENTS instead: bit-exact
  // channel vectors for the registers figure10 touches.
  std::array<std::string, 8> want_qat;
  for (unsigned r = 0; r < want_qat.size(); ++r) {
    want_qat[r] = private_sim.qat().reg_string(r, 16);
  }

  pbp::ShardedChunkPool shards(4, 8);
  constexpr unsigned kThreads = 8;
  constexpr unsigned kJobsPerThread = 4;
  std::atomic<unsigned> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (unsigned j = 0; j < kJobsPerThread; ++j) {
        FunctionalSim sim(16, pbp::Backend::kCompressed);
        sim.qat().use_chunk_pool(
            shards.stripe(std::uint64_t{t} * kJobsPerThread + j));
        sim.load(ref);
        sim.run(20'000);
        if (sim.cpu().regs != want) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (unsigned r = 0; r < want_qat.size(); ++r) {
          if (sim.qat().reg_string(r, 16) != want_qat[r]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0u)
      << "stripe-shared runs diverged from the private-pool run";
}

}  // namespace
}  // namespace tangled
