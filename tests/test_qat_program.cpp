// Tests for the compiled Qat instruction-stream layer (arch/qat_program.hpp).
#include "arch/qat_program.hpp"

#include <gtest/gtest.h>

#include "pbp/optimizer.hpp"
#include "pbp/pint.hpp"

namespace tangled {
namespace {

using pbp::Circuit;
using pbp::Pint;

/// The Figure 9 equality circuit: e = (b * c == 15) over disjoint Hadamards.
struct Fig9 {
  std::shared_ptr<Circuit> circ;
  Circuit::Node e;

  explicit Fig9(unsigned ways) {
    auto ctx = pbp::PbpContext::create(ways, pbp::Backend::kDense);
    circ = std::make_shared<Circuit>(ctx, /*hash_cons=*/true);
    const Pint n = Pint::constant(circ, 4, 15);
    const Pint b = Pint::hadamard(circ, 4, 0x0f);
    const Pint c = Pint::hadamard(circ, 4, 0xf0);
    e = Pint::eq(Pint::mul(b, c), n).bit(0);
  }
};

TEST(QatProgram, CompileProducesOnlyQatOps) {
  Fig9 f(8);
  const Circuit::Node roots[] = {f.e};
  pbp::EmitOptions opts;
  opts.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
  const QatProgram p = compile_qat(*f.circ, roots, opts);
  EXPECT_FALSE(p.instrs.empty());
  for (const Instr& i : p.instrs) EXPECT_TRUE(is_qat(i.op));
  ASSERT_EQ(p.root_regs.size(), 1u);
  EXPECT_LE(p.registers_used, 64u);
}

TEST(QatProgram, RunsOnHardwareEngine) {
  Fig9 f(8);
  const Circuit::Node roots[] = {f.e};
  pbp::EmitOptions opts;
  opts.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
  const QatProgram p = compile_qat(*f.circ, roots, opts);
  QatEngine engine(8);
  run_on(engine, p);
  EXPECT_EQ(engine.reg(p.root_regs[0]), f.circ->eval(f.e).to_aob());
  // The factor channels, as in Figure 10's @80.
  EXPECT_EQ(engine.reg(p.root_regs[0]).popcount(), 4u);
}

TEST(QatProgram, RunsOnVirtualQat) {
  Fig9 f(8);
  const Circuit::Node roots[] = {f.e};
  pbp::EmitOptions opts;
  opts.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
  const QatProgram p = compile_qat(*f.circ, roots, opts);
  pbp::VirtualQat engine(8, /*chunk_ways=*/4);
  run_on(engine, p);
  EXPECT_EQ(engine.reg(p.root_regs[0]).to_aob(), f.circ->eval(f.e).to_aob());
}

TEST(QatProgram, ConstantRegisterModeMatches) {
  Fig9 f(8);
  const Circuit::Node roots[] = {f.e};
  pbp::EmitOptions opts;
  opts.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
  opts.constant_registers = true;
  const QatProgram p = compile_qat(*f.circ, roots, opts);
  // No initializer instructions at all in this mode.
  for (const Instr& i : p.instrs) {
    EXPECT_NE(i.op, Op::kQHad);
    EXPECT_NE(i.op, Op::kQZero);
    EXPECT_NE(i.op, Op::kQOne);
  }
  QatEngine engine(8);
  run_on(engine, p);
  EXPECT_EQ(engine.reg(p.root_regs[0]), f.circ->eval(f.e).to_aob());
}

TEST(QatProgram, OptimizedProgramSameResultFewerInstructions) {
  Fig9 f(8);
  const Circuit::Node roots[] = {f.e};
  pbp::EmitOptions opts;
  opts.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
  const QatProgram raw = compile_qat(*f.circ, roots, opts);
  auto opt = pbp::optimize(*f.circ, roots);
  const QatProgram slim = compile_qat(opt.circuit, opt.roots, opts);
  EXPECT_LT(slim.instrs.size(), raw.instrs.size() / 2);
  QatEngine e1(8);
  QatEngine e2(8);
  run_on(e1, raw);
  run_on(e2, slim);
  EXPECT_EQ(e1.reg(raw.root_regs[0]), e2.reg(slim.root_regs[0]));
}

TEST(QatProgram, HighEntanglementOnVirtualQat) {
  // Beyond the hardware limit: 2^22 channels.  had k > 15 is inexpressible
  // in the 16-bit ISA's 4-bit immediate, so the §5 constant-register layout
  // is mandatory here — the registers are preloaded out-of-band, exactly
  // how a software layer would stage hardware-sized chunks.
  const unsigned ways = 22;
  auto ctx = pbp::PbpContext::create(ways, pbp::Backend::kCompressed, 12);
  auto circ = std::make_shared<Circuit>(ctx, true);
  // parity of three high Hadamards, then masked by a fourth
  const auto x = circ->g_xor(circ->g_xor(circ->had(20), circ->had(21)),
                             circ->had(5));
  const auto m = circ->g_and(x, circ->had(13));
  const Circuit::Node roots[] = {m};
  pbp::EmitOptions opts;
  opts.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
  opts.constant_registers = true;
  const QatProgram p = compile_qat(*circ, roots, opts);
  pbp::VirtualQat engine(ways, 12);
  run_on(engine, p);
  EXPECT_EQ(engine.reg(p.root_regs[0]).popcount(), circ->popcount(m));
  // x alone is balanced; the mask halves it.
  EXPECT_EQ(engine.reg(p.root_regs[0]).popcount(),
            (std::size_t{1} << ways) / 4);
}

TEST(QatProgram, MeasurementOpsRejectedOnVirtualQat) {
  QatProgram p;
  Instr meas{};
  meas.op = Op::kQMeas;
  p.instrs.push_back(meas);
  pbp::VirtualQat engine(16, 12);
  EXPECT_THROW(run_on(engine, p), std::runtime_error);
}

}  // namespace
}  // namespace tangled
