// Property-based tests: algebraic invariants of the PBP model and
// differential testing of the simulators on randomly generated programs.
#include <gtest/gtest.h>

#include <random>

#include "arch/simulators.hpp"
#include "pbp/hadamard.hpp"
#include "pbp/pbit.hpp"

namespace tangled {
namespace {

using pbp::Aob;

// --- Gate algebra over random AoBs ---

class AobAlgebra : public ::testing::TestWithParam<unsigned> {
 protected:
  std::mt19937_64 rng_{GetParam()};
  Aob rand_aob(unsigned ways = 8) {
    return Aob::from_fn(ways, [&](std::size_t) { return rng_() & 1; });
  }
};

TEST_P(AobAlgebra, DeMorgan) {
  const Aob a = rand_aob();
  const Aob b = rand_aob();
  EXPECT_EQ(~(a & b), ~a | ~b);
  EXPECT_EQ(~(a | b), ~a & ~b);
}

TEST_P(AobAlgebra, XorProperties) {
  const Aob a = rand_aob();
  const Aob b = rand_aob();
  const Aob c = rand_aob();
  EXPECT_EQ(a ^ b, b ^ a);
  EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));
  EXPECT_EQ(a ^ Aob::zeros(8), a);
  EXPECT_EQ(a ^ a, Aob::zeros(8));
  EXPECT_EQ(a ^ Aob::ones(8), ~a);
}

TEST_P(AobAlgebra, Distributivity) {
  const Aob a = rand_aob();
  const Aob b = rand_aob();
  const Aob c = rand_aob();
  EXPECT_EQ(a & (b | c), (a & b) | (a & c));
  EXPECT_EQ(a | (b & c), (a | b) & (a | c));
}

TEST_P(AobAlgebra, PopcountIsAHomomorphismForDisjointOr) {
  const Aob a = rand_aob();
  const Aob mask = rand_aob();
  const Aob x = a & mask;
  const Aob y = a & ~mask;
  EXPECT_EQ(x.popcount() + y.popcount(), a.popcount());
  EXPECT_EQ((x | y), a);
}

TEST_P(AobAlgebra, NextOneEnumeratesExactlyTheOnes) {
  const Aob a = rand_aob();
  std::size_t count = a.get(0) ? 1 : 0;
  std::size_t ch = 0;
  std::size_t last = 0;
  while (auto nxt = a.next_one(ch)) {
    EXPECT_GT(*nxt, last);  // strictly increasing
    EXPECT_TRUE(a.get(*nxt));
    last = *nxt;
    ch = *nxt;
    ++count;
  }
  EXPECT_EQ(count, a.popcount());
}

TEST_P(AobAlgebra, PopAfterIsSuffixSumOfMeas) {
  const Aob a = rand_aob();
  // pop(ch) - pop(ch+1) == meas(ch+1) for every interior channel.
  for (std::size_t ch = 0; ch + 1 < a.bit_count(); ch += 5) {
    EXPECT_EQ(a.popcount_after(ch) - a.popcount_after(ch + 1),
              a.get(ch + 1) ? 1u : 0u);
  }
}

TEST_P(AobAlgebra, CnotChainsCompose) {
  // XOR-accumulating a and b twice in any interleaving restores a.
  Aob a = rand_aob();
  const Aob orig = a;
  const Aob b = rand_aob();
  const Aob c = rand_aob();
  a ^= b;
  a ^= c;
  a ^= b;
  a ^= c;
  EXPECT_EQ(a, orig);
}

TEST_P(AobAlgebra, SwapNetworkPermutes) {
  // A random cswap network preserves the multiset of per-channel pairs.
  Aob a = rand_aob();
  Aob b = rand_aob();
  const std::size_t total = a.popcount() + b.popcount();
  for (int step = 0; step < 16; ++step) {
    const Aob ctl = rand_aob();
    Aob::cswap(a, b, ctl);
    EXPECT_EQ(a.popcount() + b.popcount(), total);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AobAlgebra,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// --- Hadamard entanglement-channel laws ---

TEST(HadamardLaws, ChannelBitIdentity) {
  // The defining property: channel e of H(k) is bit k of e; therefore any
  // boolean function composed from H patterns evaluates per channel as the
  // function of the channel index's bits.
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 16; ++trial) {
    const unsigned i = rng() % 8;
    const unsigned j = rng() % 8;
    const Aob f = (pbp::hadamard_generate(8, i) ^ pbp::hadamard_generate(8, j)) &
                  ~pbp::hadamard_generate(8, (i + 1) % 8);
    for (std::size_t e = 0; e < f.bit_count(); ++e) {
      const bool bi = (e >> i) & 1;
      const bool bj = (e >> j) & 1;
      const bool b1 = (e >> ((i + 1) % 8)) & 1;
      ASSERT_EQ(f.get(e), (bi != bj) && !b1) << e;
    }
  }
}

// --- Differential testing: random programs, four simulator configs ---

/// Generates straight-line programs with forward-only branches: always
/// terminate, exercise every instruction class including Qat ops.
class RandomProgram {
 public:
  explicit RandomProgram(std::uint64_t seed) : rng_(seed) {}

  Program generate() {
    std::string src;
    // Seed registers with arbitrary values.
    for (unsigned r = 0; r < 8; ++r) {
      src += "li $" + std::to_string(r) + "," +
             std::to_string(rng_() % 65536) + "\n";
    }
    src += "had @1,1\nhad @2,3\nhad @3,5\n";
    for (int i = 0; i < 120; ++i) src += random_instr();
    src += "sys\n";
    return assemble(src);
  }

 private:
  std::string r() { return "$" + std::to_string(rng_() % 11); }
  std::string q() { return "@" + std::to_string(rng_() % 16); }

  std::string random_instr() {
    switch (rng_() % 20) {
      case 0:
        return "add " + r() + "," + r() + "\n";
      case 1:
        return "and " + r() + "," + r() + "\n";
      case 2:
        return "or " + r() + "," + r() + "\n";
      case 3:
        return "xor " + r() + "," + r() + "\n";
      case 4:
        return "mul " + r() + "," + r() + "\n";
      case 5:
        return "copy " + r() + "," + r() + "\n";
      case 6:
        return "not " + r() + "\n";
      case 7:
        return "neg " + r() + "\n";
      case 8:
        return "slt " + r() + "," + r() + "\n";
      case 9:
        return "lex " + r() + "," + std::to_string(static_cast<int>(rng_() % 256) - 128) +
               "\n";
      case 10:
        return "lhi " + r() + "," + std::to_string(rng_() % 256) + "\n";
      case 11: {
        // Bound addresses to a scratch area so stores never hit code.
        const std::string addr = r();
        return "li $at,0x7fff\nand " + addr + ",$at\nlhi " + addr +
               ",0x80\nstore " + r() + "," + addr + "\n";
      }
      case 12: {
        const std::string addr = r();
        return "li $at,0x7fff\nand " + addr + ",$at\nlhi " + addr +
               ",0x80\nload " + r() + "," + addr + "\n";
      }
      case 13: {
        // Forward-only branch over one instruction: always terminates.
        const std::string lab = "L" + std::to_string(label_++);
        return "brt " + r() + "," + lab + "\n" + random_simple() + lab +
               ":\n";
      }
      case 14:
        return "shift " + r() + "," + r() + "\n";
      case 15:
        return "had " + q() + "," + std::to_string(rng_() % 8) + "\n";
      case 16:
        return "and " + q() + "," + q() + "," + q() + "\n";
      case 17:
        return "xor " + q() + "," + q() + "," + q() + "\n";
      case 18:
        return "meas " + r() + "," + q() + "\n";
      default:
        return "next " + r() + "," + q() + "\n";
    }
  }

  std::string random_simple() {
    return "add " + r() + "," + r() + "\n";
  }

  std::mt19937_64 rng_;
  int label_ = 0;
};

class DifferentialSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSim, AllModelsAgreeOnArchitecturalState) {
  const Program p = RandomProgram(GetParam()).generate();
  FunctionalSim f(8);
  MultiCycleSim m(8);
  PipelineSim p5(8, {.stages = 5, .forwarding = true});
  PipelineSim p5n(8, {.stages = 5, .forwarding = false});
  PipelineSim p4(8, {.stages = 4, .forwarding = true});
  SimBase* sims[] = {&f, &m, &p5, &p5n, &p4};
  for (SimBase* s : sims) {
    s->load(p);
    const SimStats st = s->run(100000);
    ASSERT_TRUE(st.halted) << "seed " << GetParam();
  }
  for (unsigned r = 0; r < kNumRegs; ++r) {
    for (std::size_t si = 1; si < std::size(sims); ++si) {
      ASSERT_EQ(f.cpu().reg(r), sims[si]->cpu().reg(r))
          << "seed " << GetParam() << " sim " << si << " reg $" << r;
    }
  }
  for (unsigned qr = 0; qr < 16; ++qr) {
    for (std::size_t si = 1; si < std::size(sims); ++si) {
      ASSERT_EQ(f.qat().reg(qr), sims[si]->qat().reg(qr))
          << "seed " << GetParam() << " sim " << si << " @" << qr;
    }
  }
}

TEST_P(DifferentialSim, CycleModelOrdering) {
  const Program p = RandomProgram(GetParam() * 7919).generate();
  FunctionalSim f(8);
  MultiCycleSim m(8);
  PipelineSim p5(8);
  PipelineSim p5n(8, {.stages = 5, .forwarding = false});
  f.load(p);
  m.load(p);
  p5.load(p);
  p5n.load(p);
  const auto sf = f.run(100000);
  const auto sm = m.run(100000);
  const auto sp = p5.run(100000);
  const auto spn = p5n.run(100000);
  // Invariants a correct pipeline must satisfy:
  EXPECT_LE(sf.cycles, sp.cycles);   // single-cycle is the CPI floor
  EXPECT_LE(sp.cycles, spn.cycles);  // forwarding never hurts
  // A forwarding pipeline beats multi-cycle on any non-trivial program.
  // (The no-forwarding variant can lose on dependent-branch chains, where a
  // stalled EX makes the flush window wider than multi-cycle's fixed cost.)
  EXPECT_LE(sp.cycles, sm.cycles);
  EXPECT_GE(sp.cycles, sp.instructions);  // CPI >= 1 for single issue
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSim,
                         ::testing::Range<std::uint64_t>(1, 21));

// Assembler robustness: arbitrary garbage must error, never crash.
TEST(AssemblerFuzz, GarbageInputsErrorCleanly) {
  std::mt19937_64 rng(42);
  const std::string alphabet = "abcdefgh $@,;:.0123456789-\n\t";
  for (int trial = 0; trial < 500; ++trial) {
    std::string src;
    const std::size_t len = rng() % 200;
    for (std::size_t i = 0; i < len; ++i) {
      src += alphabet[rng() % alphabet.size()];
    }
    try {
      const Program p = assemble(src);
      (void)p;
    } catch (const AsmError&) {
      // expected for most inputs
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace tangled
