// test_journal.cpp — the serve layer's write-ahead journal (label `serve`):
// record round-trips through replay, torn-tail and corrupt-record tolerance,
// rotation + compaction bounds, failpoint degradation (degrade, never lie),
// checkpoint-image lifecycle, and the JobServer recovery/dedup contract that
// makes results exactly-once across process death.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/checkpoint.hpp"
#include "arch/simulators.hpp"
#include "asm/assembler.hpp"
#include "asm/programs.hpp"
#include "serve/job_server.hpp"
#include "serve/journal.hpp"

namespace tangled::serve {
namespace {

/// A throwaway journal directory, removed (files + dir) on scope exit.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/tangled-journal-XXXXXX";
    const char* d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr) << std::strerror(errno);
    path_ = d != nullptr ? d : "";
  }
  ~TempDir() {
    if (path_.empty()) return;
    for (const std::string& f : files()) ::unlink((path_ + "/" + f).c_str());
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

  /// Plain-file names in the directory (no ordering guarantee).
  std::vector<std::string> files(const char* suffix = "") const {
    std::vector<std::string> out;
    DIR* d = ::opendir(path_.c_str());
    if (d == nullptr) return out;
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      if (name.size() >= std::strlen(suffix) &&
          name.compare(name.size() - std::strlen(suffix), std::string::npos,
                       suffix) == 0) {
        out.push_back(name);
      }
    }
    ::closedir(d);
    return out;
  }

 private:
  std::string path_;
};

Journal::Config journal_config(const TempDir& dir,
                               std::size_t segment_bytes = 1 << 20) {
  Journal::Config c;
  c.dir = dir.path();
  c.segment_bytes = segment_bytes;
  return c;
}

std::unique_ptr<Journal> open_or_die(const Journal::Config& c,
                                     Journal::Recovery* rec) {
  std::string err;
  auto j = Journal::open(c, rec, &err);
  EXPECT_NE(j, nullptr) << err;
  return j;
}

JobSpec fig10_spec(const std::string& key, const std::string& name = "fig10") {
  JobSpec s;
  s.name = name;
  s.source = figure10_source();
  s.sim = SimKind::kFunc;
  s.max_instructions = 20'000;
  s.expect = {{0, 5}, {1, 3}};
  s.idempotency_key = key;
  return s;
}

JobReport fake_report(const std::string& key) {
  JobReport r;
  r.id = 7;
  r.name = "done-" + key;
  r.outcome = JobOutcome::kCompleted;
  r.instructions = 123;
  r.idem_key = key;
  return r;
}

void append_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Flip one byte `off_from_end` bytes before EOF.
void corrupt_tail(const std::string& path, long off_from_end) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -off_from_end, SEEK_END), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, -off_from_end, SEEK_END), 0);
  std::fputc(c ^ 0x41, f);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Journal-level tests.

TEST(Journal, ReplayRoundTripsAdmitsCheckpointsAndReports) {
  TempDir dir;
  {
    Journal::Recovery rec;
    auto j = open_or_die(journal_config(dir), &rec);
    EXPECT_TRUE(rec.incomplete.empty());
    EXPECT_TRUE(rec.completed.empty());
    EXPECT_TRUE(j->append_admit(fig10_spec("a")));
    EXPECT_TRUE(j->append_admit(fig10_spec("b", "second")));
    const std::vector<std::uint8_t> image = {1, 2, 3};  // opaque to the log
    EXPECT_TRUE(j->append_checkpoint("b", image));
    EXPECT_TRUE(j->append_report(fake_report("a")));
    EXPECT_TRUE(j->healthy());
    EXPECT_GT(j->bytes(), 0u);
  }
  Journal::Recovery rec;
  auto j = open_or_die(journal_config(dir), &rec);
  ASSERT_EQ(rec.incomplete.size(), 1u);
  EXPECT_EQ(rec.incomplete[0].spec.idempotency_key, "b");
  EXPECT_EQ(rec.incomplete[0].spec.name, "second");
  EXPECT_EQ(rec.incomplete[0].checkpoint_seq, 1u);
  EXPECT_FALSE(rec.incomplete[0].checkpoint_file.empty());
  ASSERT_EQ(rec.completed.count("a"), 1u);
  const JobReport& back = rec.completed.at("a");
  EXPECT_EQ(back.outcome, JobOutcome::kCompleted);
  EXPECT_EQ(back.instructions, 123u);
  EXPECT_EQ(back.name, "done-a");
  EXPECT_GE(rec.segments_replayed, 1u);
  EXPECT_GT(rec.bytes_replayed, 0u);
  EXPECT_EQ(rec.torn_records, 0u);
}

TEST(Journal, TornTailIsDroppedNotFatal) {
  TempDir dir;
  {
    Journal::Recovery rec;
    auto j = open_or_die(journal_config(dir), &rec);
    EXPECT_TRUE(j->append_admit(fig10_spec("a")));
    EXPECT_TRUE(j->append_admit(fig10_spec("b")));
  }
  const auto segs = dir.files(".tgj");
  ASSERT_EQ(segs.size(), 1u);
  // Crash debris: a record that began but never finished.
  append_bytes(dir.path() + "/" + segs[0], {'T', 'N', 'G', 'J', 1, 0, 1});

  Journal::Recovery rec;
  auto j = open_or_die(journal_config(dir), &rec);
  EXPECT_EQ(rec.incomplete.size(), 2u);
  EXPECT_EQ(rec.torn_records, 1u);
}

TEST(Journal, CorruptRecordStopsReplayAtLastGoodRecord) {
  TempDir dir;
  {
    Journal::Recovery rec;
    auto j = open_or_die(journal_config(dir), &rec);
    EXPECT_TRUE(j->append_admit(fig10_spec("a")));
    EXPECT_TRUE(j->append_admit(fig10_spec("b")));
  }
  const auto segs = dir.files(".tgj");
  ASSERT_EQ(segs.size(), 1u);
  corrupt_tail(dir.path() + "/" + segs[0], 3);  // inside b's payload

  Journal::Recovery rec;
  auto j = open_or_die(journal_config(dir), &rec);
  ASSERT_EQ(rec.incomplete.size(), 1u);
  EXPECT_EQ(rec.incomplete[0].spec.idempotency_key, "a");
  EXPECT_EQ(rec.torn_records, 1u);
}

TEST(Journal, RotationCompactsToLiveStateAndBoundsSegments) {
  TempDir dir;
  {
    Journal::Recovery rec;
    // The minimum segment size forces many rotations (each fig10 admit
    // record alone is a sizeable fraction of 4 KiB).
    auto j = open_or_die(journal_config(dir, /*segment_bytes=*/4096), &rec);
    for (int i = 0; i < 40; ++i) {
      const std::string key = "k" + std::to_string(i);
      ASSERT_TRUE(j->append_admit(fig10_spec(key)));
      ASSERT_TRUE(j->append_report(fake_report(key)));
    }
    EXPECT_TRUE(j->healthy());
    // Rotation never leaves more than the live segment plus at most the
    // freshly-compacted predecessor's replacement: one file.
    EXPECT_LE(dir.files(".tgj").size(), 2u);
  }
  Journal::Recovery rec;
  auto j = open_or_die(journal_config(dir, 4096), &rec);
  EXPECT_TRUE(rec.incomplete.empty());
  EXPECT_EQ(rec.completed.size(), 40u);  // exactly-once memory survives
}

TEST(Journal, CheckpointImagesReplaceTheirPredecessor) {
  TempDir dir;
  const Program p = assemble(figure10_source());
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(p);
  sim.run(40);
  const auto image = save_checkpoint(sim.cpu(), sim.memory(), sim.qat());

  Journal::Recovery rec0;
  auto j = open_or_die(journal_config(dir), &rec0);
  ASSERT_TRUE(j->append_admit(fig10_spec("a")));
  ASSERT_TRUE(j->append_checkpoint("a", image));
  ASSERT_TRUE(j->append_checkpoint("a", image));
  // The older image is deleted once the newer reference is durable.
  EXPECT_EQ(dir.files(".tgnc").size(), 1u);
  j.reset();

  Journal::Recovery rec;
  auto j2 = open_or_die(journal_config(dir), &rec);
  ASSERT_EQ(rec.incomplete.size(), 1u);
  EXPECT_EQ(rec.incomplete[0].checkpoint_seq, 2u);
  // The referenced image must exist and load cleanly.
  FunctionalSim fresh(8, pbp::Backend::kDense);
  EXPECT_NO_THROW(load_checkpoint_file(rec.incomplete[0].checkpoint_file,
                                       fresh.cpu(), fresh.memory(),
                                       fresh.qat()));
}

TEST(Journal, ReportDeletesTheJobsCheckpointImage) {
  TempDir dir;
  const Program p = assemble(figure10_source());
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(p);
  sim.run(40);
  const auto image = save_checkpoint(sim.cpu(), sim.memory(), sim.qat());

  Journal::Recovery rec;
  auto j = open_or_die(journal_config(dir), &rec);
  ASSERT_TRUE(j->append_admit(fig10_spec("a")));
  ASSERT_TRUE(j->append_checkpoint("a", image));
  EXPECT_EQ(dir.files(".tgnc").size(), 1u);
  ASSERT_TRUE(j->append_report(fake_report("a")));
  EXPECT_EQ(dir.files(".tgnc").size(), 0u);  // no longer resumable: cleaned
}

TEST(Journal, FailpointDegradesWithoutLying) {
  TempDir dir;
  Journal::Recovery rec;
  auto j = open_or_die(journal_config(dir), &rec);
  ASSERT_TRUE(j->append_admit(fig10_spec("before")));

  j->set_failpoint([](const char* op) {
    return std::strcmp(op, "append") == 0 ? ENOSPC : 0;
  });
  EXPECT_FALSE(j->append_admit(fig10_spec("during")));  // NOT durable
  EXPECT_FALSE(j->healthy());
  // Unhealthy is sticky: clearing the failpoint does not resurrect the log
  // (the segment may already be inconsistent with the mirrors).
  j->set_failpoint(nullptr);
  EXPECT_FALSE(j->append_report(fake_report("before")));
  EXPECT_FALSE(j->healthy());
  j.reset();

  // What was durable before the failure replays; what was shed does not.
  Journal::Recovery rec2;
  auto j2 = open_or_die(journal_config(dir), &rec2);
  ASSERT_EQ(rec2.incomplete.size(), 1u);
  EXPECT_EQ(rec2.incomplete[0].spec.idempotency_key, "before");
}

TEST(Journal, FsyncFailpointAlsoDegrades) {
  TempDir dir;
  Journal::Recovery rec;
  auto j = open_or_die(journal_config(dir), &rec);
  j->set_failpoint([](const char* op) {
    return std::strcmp(op, "fsync") == 0 ? EIO : 0;
  });
  EXPECT_FALSE(j->append_admit(fig10_spec("x")));
  EXPECT_FALSE(j->healthy());
}

TEST(Journal, DegradedCheckpointAppendIsNonFatal) {
  TempDir dir;
  Journal::Recovery rec;
  auto j = open_or_die(journal_config(dir), &rec);
  ASSERT_TRUE(j->append_admit(fig10_spec("a")));
  j->set_failpoint([](const char* op) {
    return std::strcmp(op, "checkpoint") == 0 ? ENOSPC : 0;
  });
  EXPECT_FALSE(j->append_checkpoint("a", {1, 2, 3}));
  EXPECT_EQ(dir.files(".tgnc").size(), 0u);  // no orphaned image
}

// ---------------------------------------------------------------------------
// JobServer integration: recovery, dedup, resume, shedding.

JobServerConfig served_config(const TempDir& dir) {
  JobServerConfig c;
  c.threads = 2;
  c.journal_dir = dir.path();
  return c;
}

TEST(JournalServer, KeyedResultsAreExactlyOnceAcrossRestart) {
  TempDir dir;
  JobReport first;
  {
    JobServer server(served_config(dir));
    const auto id = server.submit_spec(fig10_spec("job-1"));
    ASSERT_TRUE(id.has_value());
    // Same key while live: the SAME job, not a second run.
    const auto dup = server.submit_spec(fig10_spec("job-1"));
    ASSERT_TRUE(dup.has_value());
    first = server.wait(*id);
    EXPECT_EQ(first.outcome, JobOutcome::kCompleted) << first.to_string();
    EXPECT_FALSE(first.deduped);
    EXPECT_EQ(first.idem_key, "job-1");
  }
  JobServer server(served_config(dir));
  EXPECT_GE(server.stats().journal_replays, 1u);
  EXPECT_EQ(server.stats().jobs_recovered, 0u);  // it finished last life
  std::string reason;
  const auto id = server.submit_spec(fig10_spec("job-1"), &reason);
  ASSERT_TRUE(id.has_value()) << reason;
  const JobReport again = server.wait(*id);
  EXPECT_EQ(again.outcome, JobOutcome::kCompleted) << again.to_string();
  EXPECT_TRUE(again.deduped) << "resubmit must be served from the journal";
  EXPECT_EQ(again.instructions, first.instructions);
  EXPECT_EQ(server.stats().reports_deduped, 1u);
}

TEST(JournalServer, AdmittedButUnreportedJobRerunsAtStartup) {
  TempDir dir;
  {
    // Simulate a crash after admission: the admit record is durable but no
    // worker ever ran (journal written directly, no server).
    Journal::Recovery rec;
    auto j = open_or_die(journal_config(dir), &rec);
    ASSERT_TRUE(j->append_admit(fig10_spec("lost")));
  }
  JobServer server(served_config(dir));
  EXPECT_EQ(server.stats().jobs_recovered, 1u);
  const auto reports = server.wait_all();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].outcome, JobOutcome::kCompleted)
      << reports[0].to_string();
  EXPECT_EQ(reports[0].idem_key, "lost");
  EXPECT_FALSE(reports[0].resumed);  // no checkpoint existed
  // The re-run's report is itself durable: a resubmit dedups.
  const auto id = server.submit_spec(fig10_spec("lost"));
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(server.wait(*id).deduped);
}

/// The ISSUE 8 satellite: a journaled job using intra-register sharding
/// (`--qat-threads`, ways ≥ 20) and epoch-scheduled ECC verification
/// resumes from its durable mid-run checkpoint after "process death" and
/// still lands on the right answer.
TEST(JournalServer, ResumeRestoresShardedEccJobMidRun) {
  static constexpr char kLongLoop[] = R"(
        had @0,3
        had @1,5
        and @2,@0,@1
        li  $1,250
        lex $4,-1
 outer: li  $2,200
 inner: add $2,$4
        jumpt $2,inner
        add $1,$4
        jumpt $1,outer
        lex $1,5
        lex $2,3
        sys
)";
  TempDir dir;
  JobSpec spec;
  spec.name = "sharded-resume";
  spec.source = kLongLoop;
  spec.sim = SimKind::kFunc;
  spec.ways = 20;            // wide enough for sharding to engage
  spec.qat_threads = 2;      // intra-register sharding
  spec.ecc = pbp::EccMode::kCorrect;
  spec.ecc_epoch = 25;       // epoch-scheduled verification
  spec.max_instructions = 2'000'000;
  spec.expect = {{1, 5}, {2, 3}};
  spec.idempotency_key = "sharded";

  std::uint64_t midpoint = 0;
  std::uint64_t full_run = 0;
  {
    // Run the first "life" of the job to its midpoint and persist the
    // journal state a crash would leave behind: admit + one checkpoint.
    const Program p = assemble(spec.source);
    FunctionalSim sim(spec.ways, pbp::Backend::kDense);
    sim.load(p);
    midpoint = sim.run(50'000).instructions;
    ASSERT_FALSE(sim.cpu().halted);
    const auto image = save_checkpoint(sim.cpu(), sim.memory(), sim.qat());
    full_run = midpoint + sim.run().instructions;  // reference: run to halt
    ASSERT_TRUE(sim.cpu().halted);

    Journal::Recovery rec;
    auto j = open_or_die(journal_config(dir), &rec);
    ASSERT_TRUE(j->append_admit(spec));
    ASSERT_TRUE(j->append_checkpoint(spec.idempotency_key, image));
  }

  JobServer server(served_config(dir));
  EXPECT_EQ(server.stats().jobs_recovered, 1u);
  const auto reports = server.wait_all();
  ASSERT_EQ(reports.size(), 1u);
  const JobReport& r = reports[0];
  EXPECT_EQ(r.outcome, JobOutcome::kCompleted) << r.to_string();
  EXPECT_TRUE(r.resumed) << "attempt 1 must restore the journaled image";
  // A resumed run retires only the remainder of the program; a fresh run
  // would have needed the whole thing again.
  EXPECT_LE(r.instructions + midpoint, full_run + 1000) << r.to_string();
  EXPECT_LT(r.instructions, full_run) << "resume saved no work";
}

TEST(JournalServer, CorruptResumeImageFallsBackToFreshStart) {
  TempDir dir;
  {
    const Program p = assemble(figure10_source());
    FunctionalSim sim(8, pbp::Backend::kDense);
    sim.load(p);
    sim.run(40);
    const auto image = save_checkpoint(sim.cpu(), sim.memory(), sim.qat());
    Journal::Recovery rec;
    auto j = open_or_die(journal_config(dir), &rec);
    ASSERT_TRUE(j->append_admit(fig10_spec("frayed")));
    ASSERT_TRUE(j->append_checkpoint("frayed", image));
  }
  const auto images = dir.files(".tgnc");
  ASSERT_EQ(images.size(), 1u);
  corrupt_tail(dir.path() + "/" + images[0], 5);

  JobServer server(served_config(dir));
  const auto reports = server.wait_all();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].outcome, JobOutcome::kCompleted)
      << reports[0].to_string();
  EXPECT_FALSE(reports[0].resumed) << "corrupt image must not be trusted";
}

TEST(JournalServer, DegradedJournalShedsNewAdmissions) {
  TempDir dir;
  JobServer server(served_config(dir));
  server.journal()->set_failpoint([](const char*) { return ENOSPC; });
  std::string reason;
  const auto id = server.try_submit_spec(fig10_spec("wont-fit"), &reason);
  EXPECT_FALSE(id.has_value());
  EXPECT_EQ(reason, "journal-unavailable");
  EXPECT_EQ(server.stats().journal_shed, 1u);
  // The daemon itself must keep serving: an unkeyed plain submission still
  // runs (durability degraded, execution alive)... via the non-spec path.
  Job j = fig10_spec("").to_job();
  const auto plain = server.submit(std::move(j));
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(server.wait(*plain).outcome, JobOutcome::kCompleted);
}

TEST(JournalServer, BadSpecRejectsWithoutAdmission) {
  TempDir dir;
  JobServer server(served_config(dir));
  JobSpec bad = fig10_spec("nope");
  bad.source = "not an opcode $$$\n";
  std::string reason;
  const auto id = server.submit_spec(bad, &reason);
  EXPECT_FALSE(id.has_value());
  EXPECT_EQ(reason.rfind("bad-job:", 0), 0u) << reason;
  EXPECT_EQ(server.stats().submitted, 0u);
}

TEST(JournalServer, UnusableJournalDirectoryIsAStartupError) {
  JobServerConfig c;
  c.threads = 1;
  c.journal_dir = "/proc/definitely/not/writable";
  EXPECT_THROW(JobServer server(c), std::runtime_error);
}

TEST(JournalServer, CancelledKeyedJobIsNotResurrectedOnReplay) {
  // A cancellation is a terminal outcome like any other: it must reach the
  // journal as a durable record, so a restart neither re-runs the job nor
  // forgets the answer — and a resubmission of the key is served the
  // cancellation from the log.
  TempDir dir;
  {
    JobServer server(served_config(dir));
    JobSpec spec = fig10_spec("cancel-me", "spin");
    spec.source = "loop: br loop\n";
    spec.max_instructions = 2'000'000'000ULL;
    spec.expect.clear();
    const auto id = server.submit_spec(spec);
    ASSERT_TRUE(id.has_value());
    EXPECT_TRUE(server.cancel(*id));
    const JobReport r = server.wait(*id);
    EXPECT_EQ(r.outcome, JobOutcome::kCancelled) << r.to_string();
  }
  JobServer revived(served_config(dir));
  EXPECT_GE(revived.stats().journal_replays, 1u);
  EXPECT_EQ(revived.stats().jobs_recovered, 0u)
      << "a cancelled keyed job rose from the journal";
  const auto again_id = revived.submit_spec(fig10_spec("cancel-me", "spin"));
  ASSERT_TRUE(again_id.has_value());
  const JobReport again = revived.wait(*again_id);
  EXPECT_TRUE(again.deduped)
      << "the resubmitted key re-ran instead of replaying the cancellation";
  EXPECT_EQ(again.outcome, JobOutcome::kCancelled) << again.to_string();
  EXPECT_EQ(revived.stats().reports_deduped, 1u);
}

TEST(JournalServer, RotationCompactionSurvivesConcurrentKeyedSubmissions) {
  // Minimum-size segments force rotation + compaction to race live keyed
  // traffic from several submitter threads (checkpointing jobs included, so
  // image files churn too).  Nothing may be lost, duplicated, or left
  // unhealthy — and the exactly-once memory must survive a restart intact.
  TempDir dir;
  JobServerConfig c = served_config(dir);
  c.threads = 3;
  c.journal_segment_bytes = 4096;
  constexpr unsigned kSubmitters = 4, kPerThread = 12;
  {
    JobServer server(c);
    std::mutex mu;
    std::vector<JobServer::JobId> ids;
    std::vector<std::thread> submitters;
    for (unsigned t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (unsigned i = 0; i < kPerThread; ++i) {
          const std::string key =
              "rot/" + std::to_string(t) + "/" + std::to_string(i);
          JobSpec spec = fig10_spec(key);
          if (i % 2 == 0) spec.checkpoint_every = 25;
          const auto id = server.submit_spec(spec);
          if (!id.has_value()) continue;  // asserted via the count below
          std::lock_guard lk(mu);
          ids.push_back(*id);
        }
      });
    }
    for (auto& th : submitters) th.join();
    ASSERT_EQ(ids.size(), std::size_t{kSubmitters} * kPerThread);
    for (const auto id : ids) {
      EXPECT_EQ(server.wait(id).outcome, JobOutcome::kCompleted);
    }
    ASSERT_NE(server.journal(), nullptr);
    EXPECT_TRUE(server.journal()->healthy())
        << "rotation under concurrency degraded the journal";
    const ServerStats s = server.stats();
    EXPECT_EQ(s.completed, ids.size());
    EXPECT_EQ(s.reports_deduped, 0u);  // distinct keys: nothing deduped
  }
  // Compaction kept the segment count bounded instead of accreting one
  // file per rotation (generous slack for a rotation caught mid-flight).
  EXPECT_GE(dir.files(".tgj").size(), 1u);
  EXPECT_LE(dir.files(".tgj").size(), 4u);
  JobServer revived(c);
  EXPECT_EQ(revived.stats().jobs_recovered, 0u);
  EXPECT_GE(revived.stats().journal_replays, 1u);
  const auto id = revived.submit_spec(fig10_spec("rot/0/0"));
  ASSERT_TRUE(id.has_value());
  const JobReport again = revived.wait(*id);
  EXPECT_TRUE(again.deduped) << "exactly-once memory lost in compaction";
  EXPECT_EQ(again.outcome, JobOutcome::kCompleted) << again.to_string();
}

}  // namespace
}  // namespace tangled::serve
