// Tests for the gate-level optimizer.
#include "pbp/optimizer.hpp"

#include <gtest/gtest.h>

#include <random>

#include "pbp/pint.hpp"

namespace pbp {
namespace {

std::shared_ptr<Circuit> circ(unsigned ways = 8) {
  return std::make_shared<Circuit>(PbpContext::create(ways, Backend::kDense));
}

TEST(Optimizer, DeadGateElimination) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto h1 = c->had(1);
  (void)c->g_and(h0, h1);  // dead
  (void)c->g_or(h0, h1);   // dead
  const auto keep = c->g_xor(h0, h1);
  const Circuit::Node roots[] = {keep};
  auto r = optimize(*c, roots);
  EXPECT_EQ(r.stats.gates_before, 5u);
  EXPECT_EQ(r.stats.gates_after, 3u);
  EXPECT_TRUE(r.circuit.eval(r.roots[0]) == c->eval(keep));
}

TEST(Optimizer, ConstantFolding) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto z = c->zero();
  const auto o = c->one();
  const auto and_z = c->g_and(h0, z);   // -> 0
  const auto or_o = c->g_or(h0, o);     // -> 1
  const auto xor_self = c->g_xor(h0, h0);  // -> 0
  const auto and_o = c->g_and(h0, o);   // -> h0
  const Circuit::Node roots[] = {and_z, or_o, xor_self, and_o};
  auto r = optimize(*c, roots);
  EXPECT_GE(r.stats.folds, 4u);
  EXPECT_EQ(r.circuit.gate(r.roots[0]).kind, GateKind::kZero);
  EXPECT_EQ(r.circuit.gate(r.roots[1]).kind, GateKind::kOne);
  EXPECT_EQ(r.circuit.gate(r.roots[2]).kind, GateKind::kZero);
  EXPECT_EQ(r.circuit.gate(r.roots[3]).kind, GateKind::kHad);
}

TEST(Optimizer, ComplementRules) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto n = c->g_not(h0);
  const auto and_c = c->g_and(h0, n);  // -> 0
  const auto or_c = c->g_or(h0, n);    // -> 1
  const auto xor_c = c->g_xor(h0, n);  // -> 1
  const Circuit::Node roots[] = {and_c, or_c, xor_c};
  auto r = optimize(*c, roots);
  EXPECT_EQ(r.circuit.gate(r.roots[0]).kind, GateKind::kZero);
  EXPECT_EQ(r.circuit.gate(r.roots[1]).kind, GateKind::kOne);
  EXPECT_EQ(r.circuit.gate(r.roots[2]).kind, GateKind::kOne);
}

TEST(Optimizer, DoubleNegation) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto nn = c->g_not(c->g_not(h0));
  const Circuit::Node roots[] = {nn};
  auto r = optimize(*c, roots);
  EXPECT_EQ(r.circuit.gate(r.roots[0]).kind, GateKind::kHad);
  EXPECT_EQ(r.stats.gates_after, 1u);
}

TEST(Optimizer, XorWithOneBecomesNot) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto x = c->g_xor(h0, c->one());
  const Circuit::Node roots[] = {x};
  auto r = optimize(*c, roots);
  EXPECT_EQ(r.circuit.gate(r.roots[0]).kind, GateKind::kNot);
  EXPECT_TRUE(r.circuit.eval(r.roots[0]) == c->eval(x));
}

TEST(Optimizer, HadOutOfRangeFoldsToZero) {
  auto c = circ();  // 8 ways
  const auto h9 = c->had(9);
  const Circuit::Node roots[] = {h9};
  auto r = optimize(*c, roots);
  EXPECT_EQ(r.circuit.gate(r.roots[0]).kind, GateKind::kZero);
}

TEST(Optimizer, CseMergesDuplicates) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto h1 = c->had(1);
  const auto a1 = c->g_and(h0, h1);
  const auto a2 = c->g_and(h0, h1);
  const auto out = c->g_xor(a1, a2);  // really x ^ x = 0
  const Circuit::Node roots[] = {out};
  auto r = optimize(*c, roots);
  // After CSE, a1 and a2 collapse; then xor(x, x) folds to 0.
  EXPECT_EQ(r.circuit.gate(r.roots[0]).kind, GateKind::kZero);
  EXPECT_GE(r.stats.cse_hits + r.stats.folds, 1u);
}

TEST(Optimizer, DisableFlagsRespected) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto and_z = c->g_and(h0, c->zero());
  const Circuit::Node roots[] = {and_z};
  OptimizeOptions opts;
  opts.fold_constants = false;
  opts.cse = false;
  opts.simplify_not = false;
  auto r = optimize(*c, roots, opts);
  EXPECT_EQ(r.stats.folds, 0u);
  EXPECT_EQ(r.stats.gates_after, 3u);  // nothing removed except dead gates
}

// Property: optimization preserves every root's value on randomly built DAGs.
class OptimizerRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(OptimizerRandom, PreservesSemantics) {
  std::mt19937_64 rng(GetParam());
  auto c = circ();
  std::vector<Circuit::Node> nodes;
  for (unsigned k = 0; k < 8; ++k) nodes.push_back(c->had(k));
  nodes.push_back(c->zero());
  nodes.push_back(c->one());
  for (int i = 0; i < 120; ++i) {
    const auto a = nodes[rng() % nodes.size()];
    const auto b = nodes[rng() % nodes.size()];
    switch (rng() % 4) {
      case 0:
        nodes.push_back(c->g_and(a, b));
        break;
      case 1:
        nodes.push_back(c->g_or(a, b));
        break;
      case 2:
        nodes.push_back(c->g_xor(a, b));
        break;
      default:
        nodes.push_back(c->g_not(a));
        break;
    }
  }
  std::vector<Circuit::Node> roots(nodes.end() - 5, nodes.end());
  auto r = optimize(*c, roots);
  EXPECT_LE(r.stats.gates_after, r.stats.gates_before);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_TRUE(r.circuit.eval(r.roots[i]) == c->eval(roots[i]))
        << "root " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// End-to-end: the Figure 9 factoring circuit shrinks under optimization but
// still factors 15.
TEST(Optimizer, Figure9CircuitShrinksAndStillWorks) {
  auto c = circ();
  const Pint a = Pint::constant(c, 4, 15);
  const Pint b = Pint::hadamard(c, 4, 0x0f);
  const Pint cc = Pint::hadamard(c, 4, 0xf0);
  const Pint d = Pint::mul(b, cc);
  const Pint e = Pint::eq(d, a);
  const Circuit::Node roots[] = {e.bit(0)};
  auto r = optimize(*c, roots);
  EXPECT_LT(r.stats.gates_after, r.stats.gates_before / 2)
      << "multiplying by constant-0 partial products should fold hard";
  EXPECT_TRUE(r.circuit.eval(r.roots[0]) == c->eval(e.bit(0)));
}

}  // namespace
}  // namespace pbp
