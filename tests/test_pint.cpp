// Tests for pattern integers (paper §4.1, Figure 9).
#include "pbp/pint.hpp"

#include <gtest/gtest.h>

#include <random>

namespace pbp {
namespace {

std::shared_ptr<Circuit> circ8() {
  return std::make_shared<Circuit>(PbpContext::create(8, Backend::kDense));
}

TEST(Pint, ConstantMeasuresToItself) {
  auto c = circ8();
  for (std::uint64_t v : {0ull, 1ull, 7ull, 15ull}) {
    const Pint p = Pint::constant(c, 4, v);
    const auto values = p.measure_values();
    ASSERT_EQ(values.size(), 1u);
    EXPECT_EQ(values[0], v);
    EXPECT_EQ(p.channels_equal_to(v), 256u);  // every channel holds v
  }
}

TEST(Pint, HadamardIsUniformSuperposition) {
  auto c = circ8();
  const Pint b = Pint::hadamard(c, 4, 0x0f);
  const auto dist = b.measure_distribution();
  ASSERT_EQ(dist.size(), 16u);
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(dist[v].first, v);
    EXPECT_EQ(dist[v].second, 16u);  // 256 channels / 16 values
  }
}

TEST(Pint, HadamardMaskWidthMismatchThrows) {
  auto c = circ8();
  EXPECT_THROW(Pint::hadamard(c, 4, 0x07), std::invalid_argument);
  EXPECT_THROW(Pint::hadamard(c, 4, 0x1f), std::invalid_argument);
}

TEST(Pint, ChannelEncodingMatchesHadamardIndices) {
  // With b = H(0..3) and c = H(4..7), channel e encodes b = e % 16 and
  // c = e / 16 — the identity §4.2 uses to skip the final multiply.
  auto c = circ8();
  const Pint b = Pint::hadamard(c, 4, 0x0f);
  const Pint cc = Pint::hadamard(c, 4, 0xf0);
  for (std::size_t e = 0; e < 256; e += 17) {
    EXPECT_EQ(b.value_at_channel(e), e % 16);
    EXPECT_EQ(cc.value_at_channel(e), e / 16);
  }
}

TEST(Pint, AddExhaustive4x4) {
  auto c = circ8();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint b = Pint::hadamard(c, 4, 0xf0);
  const Pint s = Pint::add(a, b);
  ASSERT_EQ(s.width(), 5u);
  // Every channel is one (x, y) pair; the sum must be exact in all 256.
  for (std::size_t e = 0; e < 256; ++e) {
    EXPECT_EQ(s.value_at_channel(e), (e % 16) + (e / 16)) << "e=" << e;
  }
}

TEST(Pint, AddModWraps) {
  auto c = circ8();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint b = Pint::hadamard(c, 4, 0xf0);
  const Pint s = Pint::add_mod(a, b);
  ASSERT_EQ(s.width(), 4u);
  for (std::size_t e = 0; e < 256; ++e) {
    EXPECT_EQ(s.value_at_channel(e), ((e % 16) + (e / 16)) & 15u);
  }
}

TEST(Pint, SubModExhaustive) {
  auto c = circ8();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint b = Pint::hadamard(c, 4, 0xf0);
  const Pint d = Pint::sub_mod(a, b);
  for (std::size_t e = 0; e < 256; ++e) {
    EXPECT_EQ(d.value_at_channel(e), ((e % 16) - (e / 16)) & 15u);
  }
}

TEST(Pint, MulExhaustive4x4) {
  auto c = circ8();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint b = Pint::hadamard(c, 4, 0xf0);
  const Pint m = Pint::mul(a, b);
  ASSERT_EQ(m.width(), 8u);
  for (std::size_t e = 0; e < 256; ++e) {
    EXPECT_EQ(m.value_at_channel(e), (e % 16) * (e / 16)) << "e=" << e;
  }
}

TEST(Pint, SharedChannelsComputeSquares) {
  // §4.1: "Had b and c used the same entanglement channels, that
  // multiplication would only have computed 4-way entangled squares."
  auto c = circ8();
  const Pint b1 = Pint::hadamard(c, 4, 0x0f);
  const Pint b2 = Pint::hadamard(c, 4, 0x0f);
  const Pint m = Pint::mul(b1, b2);
  for (std::size_t e = 0; e < 256; ++e) {
    EXPECT_EQ(m.value_at_channel(e), (e % 16) * (e % 16));
  }
}

TEST(Pint, ComparisonsExhaustive) {
  auto c = circ8();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint b = Pint::hadamard(c, 4, 0xf0);
  const Pint eq = Pint::eq(a, b);
  const Pint ne = Pint::ne(a, b);
  const Pint lt = Pint::lt(a, b);
  const Pint le = Pint::le(a, b);
  for (std::size_t e = 0; e < 256; ++e) {
    const std::uint64_t x = e % 16;
    const std::uint64_t y = e / 16;
    EXPECT_EQ(eq.value_at_channel(e), x == y ? 1u : 0u);
    EXPECT_EQ(ne.value_at_channel(e), x != y ? 1u : 0u);
    EXPECT_EQ(lt.value_at_channel(e), x < y ? 1u : 0u);
    EXPECT_EQ(le.value_at_channel(e), x <= y ? 1u : 0u);
  }
}

TEST(Pint, DivmodConstExhaustive) {
  auto c = circ8();
  const Pint a4 = Pint::hadamard(c, 4, 0x0f);
  const Pint b4 = Pint::hadamard(c, 4, 0xf0);
  const Pint a = Pint::mul(a4, b4);  // 8-bit values 0..225 across channels
  for (std::uint64_t d : {1ull, 2ull, 3ull, 7ull, 10ull, 15ull, 16ull,
                          100ull, 255ull}) {
    const auto [q, r] = Pint::divmod_const(a, d);
    for (std::size_t e = 0; e < 256; e += 5) {
      const std::uint64_t v = (e % 16) * (e / 16);
      ASSERT_EQ(q.value_at_channel(e), v / d) << "d=" << d << " e=" << e;
      ASSERT_EQ(r.value_at_channel(e), v % d) << "d=" << d << " e=" << e;
    }
  }
}

TEST(Pint, DivByZeroThrows) {
  auto c = circ8();
  const Pint a = Pint::constant(c, 4, 5);
  EXPECT_THROW(Pint::divmod_const(a, 0), std::invalid_argument);
  EXPECT_THROW(Pint::modexp_const(2, a, 0), std::invalid_argument);
}

TEST(Pint, ModConstMatchesReference) {
  auto c = circ8();
  const Pint x = Pint::hadamard(c, 8, 0xff);  // 0..255 uniform
  const Pint m = Pint::mod_const(x, 15);
  for (std::size_t e = 0; e < 256; ++e) {
    ASSERT_EQ(m.value_at_channel(e), e % 15) << e;
  }
}

TEST(Pint, ModexpConstAllChannels) {
  auto c = circ8();
  const Pint x = Pint::hadamard(c, 8, 0xff);  // exponent 0..255
  for (const auto& [base, mod] : std::vector<std::pair<std::uint64_t,
                                                       std::uint64_t>>{
           {2, 15}, {7, 15}, {3, 7}, {5, 21}}) {
    const Pint f = Pint::modexp_const(base, x, mod);
    for (std::size_t e = 0; e < 256; e += 3) {
      std::uint64_t want = 1 % mod;
      for (std::size_t k = 0; k < e; ++k) want = (want * base) % mod;
      ASSERT_EQ(f.value_at_channel(e), want)
          << "base=" << base << " mod=" << mod << " x=" << e;
    }
  }
}

TEST(Pint, ModexpPeriodOf2Mod15IsFour) {
  // The Shor connection (§2.2 cites Shor's algorithm): f(x) = 2^x mod 15
  // takes exactly 4 distinct values {1, 2, 4, 8}; the period IS the count,
  // read off non-destructively in one evaluation.
  auto c = circ8();
  const Pint x = Pint::hadamard(c, 4, 0x0f);
  const Pint f = Pint::modexp_const(2, x, 15);
  EXPECT_EQ(f.measure_values(), (std::vector<std::uint64_t>{1, 2, 4, 8}));
}

TEST(Pint, MixedWidthComparison) {
  auto c = circ8();
  const Pint narrow = Pint::constant(c, 3, 5);
  const Pint wide = Pint::constant(c, 6, 5);
  EXPECT_EQ(Pint::eq(narrow, wide).measure_values(),
            std::vector<std::uint64_t>{1});
  const Pint wide2 = Pint::constant(c, 6, 37);  // 5 + 32: high bit differs
  EXPECT_EQ(Pint::eq(narrow, wide2).measure_values(),
            std::vector<std::uint64_t>{0});
}

TEST(Pint, BitwiseOps) {
  auto c = circ8();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint b = Pint::hadamard(c, 4, 0xf0);
  const Pint land = a & b;
  const Pint lor = a | b;
  const Pint lxor = a ^ b;
  const Pint lnot = ~a;
  for (std::size_t e = 0; e < 256; e += 7) {
    const std::uint64_t x = e % 16;
    const std::uint64_t y = e / 16;
    EXPECT_EQ(land.value_at_channel(e), x & y);
    EXPECT_EQ(lor.value_at_channel(e), x | y);
    EXPECT_EQ(lxor.value_at_channel(e), x ^ y);
    EXPECT_EQ(lnot.value_at_channel(e), (~x) & 15u);
  }
}

TEST(Pint, ShlAndResize) {
  auto c = circ8();
  const Pint a = Pint::constant(c, 4, 5);
  EXPECT_EQ(a.shl(2).measure_values(), std::vector<std::uint64_t>{20});
  EXPECT_EQ(a.resize(8).measure_values(), std::vector<std::uint64_t>{5});
  EXPECT_EQ(a.resize(2).measure_values(), std::vector<std::uint64_t>{1});
}

TEST(Pint, ShlVarBarrelNetwork) {
  auto c = circ8();
  const Pint v = Pint::hadamard(c, 4, 0x0f);       // value 0..15
  const Pint amt = Pint::hadamard(c, 4, 0xf0).resize(3);  // shift 0..7
  const Pint r = Pint::shl_var(v, amt);
  ASSERT_EQ(r.width(), 4u + 7u);
  for (std::size_t e = 0; e < 256; ++e) {
    const std::uint64_t value = e % 16;
    const std::uint64_t shift = (e / 16) & 7u;
    EXPECT_EQ(r.value_at_channel(e), value << shift) << "e=" << e;
  }
}

TEST(Pint, ShlVarRejectsHugeAmounts) {
  auto c = circ8();
  const Pint v = Pint::constant(c, 4, 1);
  const Pint amt = Pint::constant(c, 7, 0);
  EXPECT_THROW(Pint::shl_var(v, amt), std::invalid_argument);
}

TEST(Pint, SelectPerChannel) {
  auto c = circ8();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint b = Pint::hadamard(c, 4, 0xf0);
  const Pint cond = Pint::lt(a, b);
  const Pint m = Pint::select(cond, a, b);  // min(a, b)
  for (std::size_t e = 0; e < 256; ++e) {
    EXPECT_EQ(m.value_at_channel(e), std::min(e % 16, e / 16));
  }
}

TEST(Pint, GateByZeroesDisabledChannels) {
  auto c = circ8();
  const Pint b = Pint::hadamard(c, 4, 0x0f);
  const Pint three = Pint::constant(c, 4, 3);
  const Pint is3 = Pint::eq(b, three);
  const Pint f = Pint::gate_by(b, is3);
  // Channels where b==3 keep the value 3; all others become 0.
  const auto values = f.measure_values();
  EXPECT_EQ(values, (std::vector<std::uint64_t>{0, 3}));
}

// The headline: Figure 9's word-level prime factoring of 15, verbatim.
TEST(Pint, Figure9Factoring15) {
  auto c = circ8();
  const Pint a = Pint::constant(c, 4, 15);     // a = 15
  const Pint b = Pint::hadamard(c, 4, 0x0f);   // b = 0..15
  const Pint cc = Pint::hadamard(c, 4, 0xf0);  // c = 0..15
  const Pint d = Pint::mul(b, cc);             // d = b*c
  const Pint e = Pint::eq(d, a);               // e = (d == 15)
  const Pint f = Pint::gate_by(b, e);          // zero the non-factors
  EXPECT_EQ(f.measure_values(), (std::vector<std::uint64_t>{0, 1, 3, 5, 15}));
}

// Non-destructive measurement: measuring f again gives the same answer, and
// the inputs are still usable afterwards.
TEST(Pint, MeasurementIsRepeatable) {
  auto c = circ8();
  const Pint b = Pint::hadamard(c, 4, 0x0f);
  const Pint cc = Pint::hadamard(c, 4, 0xf0);
  const Pint d = Pint::mul(b, cc);
  const Pint e = Pint::eq(d, Pint::constant(c, 4, 15));
  const Pint f = Pint::gate_by(b, e);
  const auto first = f.measure_values();
  const auto second = f.measure_values();
  EXPECT_EQ(first, second);
  // b is still the full superposition.
  EXPECT_EQ(b.measure_values().size(), 16u);
}

TEST(Pint, DifferentCircuitsThrow) {
  auto c1 = circ8();
  auto c2 = circ8();
  const Pint a = Pint::constant(c1, 4, 1);
  const Pint b = Pint::constant(c2, 4, 1);
  EXPECT_THROW(Pint::add(a, b), std::invalid_argument);
}

TEST(Pint, DistributionCountsSumToChannels) {
  auto c = circ8();
  const Pint b = Pint::hadamard(c, 4, 0x0f);
  const Pint cc = Pint::hadamard(c, 4, 0xf0);
  const Pint m = Pint::mul(b, cc);
  std::size_t total = 0;
  for (const auto& entry : m.measure_distribution()) total += entry.second;
  EXPECT_EQ(total, 256u);
  // Probability of product 15: 4 channels in parts per 256 (§1.1 units).
  EXPECT_EQ(m.channels_equal_to(15), 4u);
  EXPECT_EQ(m.channels_equal_to(0), 31u);  // x*y==0 for 16+16-1 pairs
}

}  // namespace
}  // namespace pbp
