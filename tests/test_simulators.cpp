// Tests for the three simulators: instruction semantics on the functional
// model (Figure 6), cycle accounting on the multi-cycle and pipelined
// models (§3.1).
#include "arch/simulators.hpp"

#include <gtest/gtest.h>

#include "arch/bfloat16.hpp"
#include "arch/rtl_pipeline.hpp"

namespace tangled {
namespace {

CpuState run_func(const std::string& src, unsigned ways = 8) {
  FunctionalSim sim(ways);
  sim.load(assemble(src));
  EXPECT_TRUE(sim.run().halted);
  return sim.cpu();
}

// --- Table 1 semantics, one behaviour per test ---

TEST(Semantics, AddWraps) {
  const auto cpu = run_func(
      "li $1,65535\n"
      "lex $2,1\n"
      "add $1,$2\n"
      "sys\n");
  EXPECT_EQ(cpu.reg(1), 0u);
}

TEST(Semantics, BitwiseOps) {
  const auto cpu = run_func(
      "li $1,0x0F0F\n"
      "li $2,0x00FF\n"
      "copy $3,$1\n"
      "and $3,$2\n"
      "copy $4,$1\n"
      "or $4,$2\n"
      "copy $5,$1\n"
      "xor $5,$2\n"
      "copy $6,$1\n"
      "not $6\n"
      "sys\n");
  EXPECT_EQ(cpu.reg(3), 0x000Fu);
  EXPECT_EQ(cpu.reg(4), 0x0FFFu);
  EXPECT_EQ(cpu.reg(5), 0x0FF0u);
  EXPECT_EQ(cpu.reg(6), 0xF0F0u);
}

TEST(Semantics, MulLow16) {
  const auto cpu = run_func(
      "li $1,300\n"
      "li $2,300\n"
      "mul $1,$2\n"
      "sys\n");
  EXPECT_EQ(cpu.reg(1), 90000u & 0xffffu);
}

TEST(Semantics, NegAndSlt) {
  const auto cpu = run_func(
      "lex $1,5\n"
      "neg $1\n"          // $1 = -5
      "lex $2,3\n"
      "copy $3,$1\n"
      "slt $3,$2\n"       // -5 < 3 -> 1 (signed)
      "copy $4,$2\n"
      "slt $4,$1\n"       // 3 < -5 -> 0
      "sys\n");
  EXPECT_EQ(cpu.reg(1), 0xFFFBu);
  EXPECT_EQ(cpu.reg(3), 1u);
  EXPECT_EQ(cpu.reg(4), 0u);
}

TEST(Semantics, ShiftBothDirections) {
  const auto cpu = run_func(
      "lex $1,1\n"
      "lex $2,4\n"
      "shift $1,$2\n"   // 1 << 4 = 16
      "li $3,0x8000\n"
      "lex $4,-3\n"
      "shift $3,$4\n"   // arithmetic right: sign fills
      "lex $5,1\n"
      "lex $6,20\n"
      "shift $5,$6\n"   // over-shift left -> 0
      "sys\n");
  EXPECT_EQ(cpu.reg(1), 16u);
  EXPECT_EQ(cpu.reg(3), 0xF000u);
  EXPECT_EQ(cpu.reg(5), 0u);
}

TEST(Semantics, LexSignExtendsLhiSetsHigh) {
  const auto cpu = run_func(
      "lex $1,-1\n"
      "lex $2,-1\n"
      "lhi $2,0x12\n"
      "sys\n");
  EXPECT_EQ(cpu.reg(1), 0xFFFFu);
  EXPECT_EQ(cpu.reg(2), 0x12FFu);
}

TEST(Semantics, LoadStore) {
  const auto cpu = run_func(
      "li $1,0x1234\n"
      "li $2,100\n"
      "store $1,$2\n"
      "load $3,$2\n"
      "sys\n");
  EXPECT_EQ(cpu.reg(3), 0x1234u);
}

TEST(Semantics, FloatIntRoundTrip) {
  const auto cpu = run_func(
      "lex $1,25\n"
      "float $1\n"
      "copy $2,$1\n"
      "int $2\n"
      "sys\n");
  EXPECT_EQ(Bf16(cpu.reg(1)).to_float(), 25.0f);
  EXPECT_EQ(cpu.reg(2), 25u);
}

TEST(Semantics, FloatArithmetic) {
  const auto cpu = run_func(
      "lex $1,3\n"
      "float $1\n"
      "lex $2,4\n"
      "float $2\n"
      "copy $3,$1\n"
      "addf $3,$2\n"   // 7.0
      "copy $4,$1\n"
      "mulf $4,$2\n"   // 12.0
      "copy $5,$2\n"
      "negf $5\n"      // -4.0
      "copy $6,$2\n"
      "recip $6\n"     // 0.25
      "sys\n");
  EXPECT_EQ(Bf16(cpu.reg(3)).to_float(), 7.0f);
  EXPECT_EQ(Bf16(cpu.reg(4)).to_float(), 12.0f);
  EXPECT_EQ(Bf16(cpu.reg(5)).to_float(), -4.0f);
  EXPECT_EQ(Bf16(cpu.reg(6)).to_float(), 0.25f);
}

TEST(Semantics, JumprAndReturn) {
  const auto cpu = run_func(
      "      li $ra,back\n"
      "      li $at,sub\n"
      "      jumpr $at\n"
      "back: lex $2,7\n"
      "      sys\n"
      "sub:  lex $1,9\n"
      "      jumpr $ra\n");
  EXPECT_EQ(cpu.reg(1), 9u);
  EXPECT_EQ(cpu.reg(2), 7u);
}

TEST(Semantics, QatMeasNextPopViaProgram) {
  const auto cpu = run_func(
      "had @123,4\n"
      "lex $8,42\n"
      "next $8,@123\n"  // §2.7 worked example: 48
      "lex $9,48\n"
      "meas $9,@123\n"  // 1
      "lex $10,0\n"
      "pop $10,@123\n"  // ones strictly after channel 0 of H(4): 128
      "sys\n");
  EXPECT_EQ(cpu.reg(8), 48u);
  EXPECT_EQ(cpu.reg(9), 1u);
  EXPECT_EQ(cpu.reg(10), 128u);
}

TEST(Semantics, SysPrintService) {
  FunctionalSim sim(8);
  sim.load(assemble(
      "lex $1,42\n"
      "sys $1\n"       // print 42
      "lex $2,-7\n"
      "sys $2\n"       // print -7 (signed formatting)
      "sys\n"));
  const SimStats st = sim.run();
  EXPECT_TRUE(st.halted);
  EXPECT_EQ(sim.console(), "42\n-7\n");
}

TEST(Semantics, SysPrintOnRtlMatchesFunctional) {
  const Program p = assemble(
      "lex $1,5\n"
      "add $1,$1\n"
      "sys $1\n"  // prints the forwarded value: 10
      "sys\n");
  FunctionalSim f(8);
  RtlPipelineSim rtl(8);
  f.load(p);
  rtl.load(p);
  f.run();
  rtl.run();
  EXPECT_EQ(f.console(), "10\n");
  EXPECT_EQ(rtl.console(), f.console());
}

TEST(Semantics, SysPrintOnWrongPathNeverFires) {
  RtlPipelineSim sim(8);
  sim.load(assemble(
      "      lex $1,1\n"
      "      brt $1,skip\n"
      "      sys $1\n"  // squashed
      "skip: sys\n"));
  sim.run();
  EXPECT_EQ(sim.console(), "");
}

TEST(Coverage, ReportsUnexecutedInstructions) {
  // The course required students to demonstrate 100% line coverage (§4);
  // SimBase provides the analogous measurement for Tangled programs.
  FunctionalSim sim(8);
  const Program p = assemble(
      "      lex $1,1\n"
      "      brt $1,skip\n"
      "      lex $2,99\n"  // never executed
      "skip: sys\n");
  sim.load(p);
  sim.run();
  const auto dead = sim.unexecuted(static_cast<std::uint16_t>(p.words.size()));
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 2u);  // the skipped lex
  EXPECT_EQ(sim.execution_count(0), 1u);
  EXPECT_EQ(sim.execution_count(2), 0u);
}

TEST(Coverage, AccumulatesAcrossRuns) {
  FunctionalSim sim(8);
  const Program p = assemble(
      "      load $1,$2\n"     // $2 = 100: reads a flag
      "      brf $1,skip\n"
      "      lex $3,7\n"
      "skip: sys\n");
  sim.cpu().set_reg(2, 100);
  sim.load(p);
  sim.run();  // flag 0: lex skipped
  EXPECT_EQ(sim.unexecuted(static_cast<std::uint16_t>(p.words.size())).size(),
            1u);
  sim.memory().write(100, 1);
  sim.cpu() = CpuState{};
  sim.cpu().set_reg(2, 100);
  sim.run();  // flag 1: lex now covered
  EXPECT_TRUE(
      sim.unexecuted(static_cast<std::uint16_t>(p.words.size())).empty());
}

TEST(Semantics, InvalidOpcodeHalts) {
  FunctionalSim sim(8);
  sim.load_words({0x6000});  // unassigned primary opcode
  const SimStats st = sim.run();
  EXPECT_TRUE(st.halted);
  EXPECT_EQ(st.instructions, 1u);
}

TEST(Semantics, RunAbortsAtInstructionLimit) {
  FunctionalSim sim(8);
  // br self: infinite loop.
  sim.load(assemble("self: br self\n"));
  const SimStats st = sim.run(1000);
  EXPECT_FALSE(st.halted);
  EXPECT_EQ(st.instructions, 1000u);
}

// --- Timing models ---

TEST(Timing, FunctionalIsOneCyclePerInstruction) {
  FunctionalSim sim(8);
  sim.load(assemble("lex $1,1\nlex $2,2\nadd $1,$2\nsys\n"));
  const SimStats st = sim.run();
  EXPECT_EQ(st.instructions, 4u);
  EXPECT_EQ(st.cycles, 4u);
  EXPECT_DOUBLE_EQ(st.cpi(), 1.0);
}

TEST(Timing, MultiCycleBaseline) {
  // 4 cycles per plain instruction; +1 per extra fetch word; +1 for memory.
  MultiCycleSim sim(8);
  sim.load(assemble(
      "lex $1,1\n"      // 4
      "had @0,3\n"      // 5 (two words)
      "store $1,$1\n"   // 5 (MEM)
      "sys\n"));        // 4
  const SimStats st = sim.run();
  EXPECT_EQ(st.cycles, 4u + 5u + 5u + 4u);
  EXPECT_EQ(st.fetch_extra_cycles, 1u);
}

TEST(Timing, PipelineSustainsOneInstructionPerCycle) {
  // §3.1: "capable of sustaining completion of one instruction every clock
  // cycle, provided there were no pipeline interlocks".  Independent
  // one-word instructions: CPI -> 1 asymptotically (pipeline fill excluded).
  std::string src;
  for (int i = 0; i < 200; ++i) src += "lex $" + std::to_string(i % 8) + ",1\n";
  src += "sys\n";
  PipelineSim sim(8);
  sim.load(assemble(src));
  const SimStats st = sim.run();
  EXPECT_EQ(st.instructions, 201u);
  // 201 instructions + 4-cycle fill for a 5-stage pipe.
  EXPECT_EQ(st.cycles, 201u + 4u);
  EXPECT_EQ(st.data_stall_cycles, 0u);
  EXPECT_EQ(st.flush_cycles, 0u);
}

TEST(Timing, ForwardingHidesAluLatency) {
  // Back-to-back dependent ALU ops need no stalls with forwarding.
  PipelineSim sim(8);
  sim.load(assemble(
      "lex $1,1\n"
      "add $1,$1\n"
      "add $1,$1\n"
      "add $1,$1\n"
      "sys\n"));
  const SimStats st = sim.run();
  EXPECT_EQ(st.data_stall_cycles, 0u);
  EXPECT_EQ(st.cycles, 5u + 4u);
}

TEST(Timing, LoadUseInterlockStallsOneCycle) {
  PipelineSim sim(8);
  sim.load(assemble(
      "lex $2,100\n"
      "load $1,$2\n"
      "add $1,$1\n"  // consumes the load result immediately
      "sys\n"));
  const SimStats st = sim.run();
  EXPECT_EQ(st.data_stall_cycles, 1u);
}

TEST(Timing, LoadUseGapRemovesStall) {
  PipelineSim sim(8);
  sim.load(assemble(
      "lex $2,100\n"
      "load $1,$2\n"
      "lex $3,0\n"   // independent filler covers the load delay slot
      "add $1,$1\n"
      "sys\n"));
  const SimStats st = sim.run();
  EXPECT_EQ(st.data_stall_cycles, 0u);
}

TEST(Timing, FourStageLoadHasNoUseDelay) {
  // The 4-stage teams folded MEM into EX: loads forward like ALU results.
  PipelineSim sim(8, {.stages = 4, .forwarding = true});
  sim.load(assemble(
      "lex $2,100\n"
      "load $1,$2\n"
      "add $1,$1\n"
      "sys\n"));
  EXPECT_EQ(sim.run().data_stall_cycles, 0u);
}

TEST(Timing, NoForwardingStallsHard) {
  PipelineSim fwd(8, {.stages = 5, .forwarding = true});
  PipelineSim nofwd(8, {.stages = 5, .forwarding = false});
  const Program p = assemble(
      "lex $1,1\n"
      "add $1,$1\n"
      "add $1,$1\n"
      "sys\n");
  fwd.load(p);
  nofwd.load(p);
  const auto sf = fwd.run();
  const auto sn = nofwd.run();
  EXPECT_EQ(sf.data_stall_cycles, 0u);
  EXPECT_GT(sn.data_stall_cycles, 0u);
  EXPECT_GT(sn.cycles, sf.cycles);
}

TEST(Timing, TakenBranchFlushesTwo) {
  PipelineSim sim(8);
  sim.load(assemble(
      "lex $1,1\n"
      "brt $1,skip\n"
      "lex $2,99\n"   // squashed
      "lex $3,99\n"
      "skip: sys\n"));
  const SimStats st = sim.run();
  EXPECT_EQ(st.flush_cycles, 2u);  // branch resolves in EX: 2 wrong fetches
  EXPECT_EQ(sim.cpu().reg(2), 0u);
}

TEST(Timing, UntakenBranchCostsNothing) {
  PipelineSim sim(8);
  sim.load(assemble(
      "lex $1,0\n"
      "brt $1,skip\n"
      "lex $2,5\n"
      "skip: sys\n"));
  const SimStats st = sim.run();
  EXPECT_EQ(st.flush_cycles, 0u);
  EXPECT_EQ(sim.cpu().reg(2), 5u);
}

TEST(Timing, TwoWordQatFetchAddsACycle) {
  // "The most common student questions involved the fetch and decode
  // handling of variable-length instructions" (§3.1).
  PipelineSim sim(8);
  sim.load(assemble(
      "had @0,1\n"
      "had @1,2\n"
      "and @2,@0,@1\n"
      "sys\n"));
  const SimStats st = sim.run();
  EXPECT_EQ(st.fetch_extra_cycles, 3u);
  // 4 instructions, 7 words: cycles = words + fill.
  EXPECT_EQ(st.cycles, 7u + 4u);
}

TEST(Timing, QatResultForwardsIntoTangledPipe) {
  // meas/next results forward exactly like ALU results — the "tangled"
  // coupling of §1.3: no stall for an immediately dependent add.
  PipelineSim sim(8);
  sim.load(assemble(
      "had @0,4\n"
      "lex $1,42\n"
      "next $1,@0\n"
      "add $1,$1\n"
      "sys\n"));
  const SimStats st = sim.run();
  EXPECT_EQ(st.data_stall_cycles, 0u);
  EXPECT_EQ(sim.cpu().reg(1), 96u);  // 48 + 48
}

TEST(Timing, PipelineConfigValidation) {
  EXPECT_THROW(PipelineSim(8, {.stages = 3, .forwarding = true}),
               std::invalid_argument);
  EXPECT_THROW(PipelineSim(8, {.stages = 6, .forwarding = true}),
               std::invalid_argument);
}

// All three simulators agree on architectural results for a mixed program.
TEST(SimsAgree, MixedProgramSameArchitecturalState) {
  const Program p = assemble(
      "      lex $1,0\n"
      "      lex $2,10\n"
      "      had @0,2\n"
      "loop: add $1,$2\n"
      "      lex $3,-1\n"
      "      add $2,$3\n"
      "      brt $2,loop\n"
      "      lex $4,0\n"
      "      next $4,@0\n"
      "      pop $5,@0\n"
      "      sys\n");
  FunctionalSim f(8);
  MultiCycleSim m(8);
  PipelineSim pl(8);
  PipelineSim pl4(8, {.stages = 4, .forwarding = false});
  f.load(p);
  m.load(p);
  pl.load(p);
  pl4.load(p);
  f.run();
  m.run();
  pl.run();
  pl4.run();
  for (unsigned r = 0; r < kNumRegs; ++r) {
    EXPECT_EQ(f.cpu().reg(r), m.cpu().reg(r)) << "$" << r;
    EXPECT_EQ(f.cpu().reg(r), pl.cpu().reg(r)) << "$" << r;
    EXPECT_EQ(f.cpu().reg(r), pl4.cpu().reg(r)) << "$" << r;
  }
  EXPECT_EQ(f.qat().reg(0), pl.qat().reg(0));
}

TEST(Timing, RerunningASimulatorGivesIdenticalStats) {
  // Regression: the pipeline scoreboard must reset between run() calls, or
  // reused simulators report absurd cycle counts.
  const Program p = assemble(
      "lex $1,3\nadd $1,$1\nhad @0,1\nload $2,$1\nadd $2,$2\nsys\n");
  PipelineSim sim(8);
  sim.load(p);
  const SimStats first = sim.run();
  sim.cpu() = CpuState{};
  sim.load(p);
  const SimStats second = sim.run();
  EXPECT_EQ(first.cycles, second.cycles);
  EXPECT_EQ(first.data_stall_cycles, second.data_stall_cycles);
  EXPECT_EQ(first.flush_cycles, second.flush_cycles);
  EXPECT_DOUBLE_EQ(first.cpi(), second.cpi());
}

TEST(SimsAgree, CycleOrdering) {
  // For any program: functional <= pipeline <= multicycle cycles.
  const Program p = assemble(
      "lex $1,3\n"
      "add $1,$1\n"
      "had @0,1\n"
      "store $1,$1\n"
      "sys\n");
  FunctionalSim f(8);
  MultiCycleSim m(8);
  PipelineSim pl(8);
  f.load(p);
  m.load(p);
  pl.load(p);
  const auto sf = f.run();
  const auto sm = m.run();
  const auto sp = pl.run();
  EXPECT_LE(sf.cycles, sp.cycles);
  EXPECT_LE(sp.cycles, sm.cycles);
}

}  // namespace
}  // namespace tangled
