// End-to-end reproduction of the paper's §4: prime factoring of 15 through
// the whole stack — Figure 10's literal program on all three simulators, and
// the same circuit regenerated from the Figure 9 word-level source via the
// circuit recorder.
#include <gtest/gtest.h>

#include "arch/simulators.hpp"
#include "asm/programs.hpp"
#include "pbp/optimizer.hpp"
#include "pbp/pint.hpp"

namespace tangled {
namespace {

TEST(Figure10, AssemblesToExpectedShape) {
  const Program p = assemble(figure10_source());
  // 83 Qat ops + 2 not + ... : 90 instructions + appended sys.
  EXPECT_EQ(p.instruction_count, 91u);
}

class Figure10Sims : public ::testing::Test {
 protected:
  static void check(SimBase& sim) {
    sim.load(assemble(figure10_source()));
    const SimStats st = sim.run();
    ASSERT_TRUE(st.halted);
    // §4.2: "the complete Tangled/Qat code to place the prime factors of 15
    // in registers $0 and $1" — with the ;5 and ;3 comments giving expected
    // values.
    EXPECT_EQ(sim.cpu().reg(0), 5u);
    EXPECT_EQ(sim.cpu().reg(1), 3u);
  }
};

TEST_F(Figure10Sims, Functional8Way) {
  FunctionalSim sim(8);
  check(sim);
}

TEST_F(Figure10Sims, MultiCycle8Way) {
  MultiCycleSim sim(8);
  check(sim);
}

TEST_F(Figure10Sims, Pipeline8Way) {
  PipelineSim sim(8);
  check(sim);
}

TEST_F(Figure10Sims, Pipeline4StageNoForwarding) {
  PipelineSim sim(8, {.stages = 4, .forwarding = false});
  check(sim);
}

TEST_F(Figure10Sims, FullSize16Way) {
  // The author's hardware size: 65,536-bit AoBs.  The factoring program only
  // uses H(0..7), so results are identical — the superposition just carries
  // 256x redundancy across the wider channels.
  FunctionalSim sim(16);
  check(sim);
}

TEST(Figure10, E80EncodesTheFactorChannels) {
  // @80 ends as the equality pbit e: 1 exactly in channels where b*c == 15,
  // i.e. channels 31 (1*16+15... b=15,c=1), 53 (b=5,c=3), 83 (b=3,c=5),
  // 241 (b=1,c=15).
  FunctionalSim sim(8);
  sim.load(assemble(figure10_source()));
  sim.run();
  const pbp::Aob& e = sim.qat().reg(80);
  EXPECT_EQ(e.popcount(), 4u);
  for (std::size_t ch : {31u, 53u, 83u, 241u}) {
    EXPECT_TRUE(e.get(ch)) << "channel " << ch;
  }
  for (std::size_t ch = 0; ch < 256; ++ch) {
    const unsigned b = ch % 16;
    const unsigned c = ch / 16;
    EXPECT_EQ(e.get(ch), b * c == 15) << "channel " << ch;
  }
}

TEST(Figure10, NonDestructiveReadoutRepeats) {
  // Rerunning only the readout suffix (next/next/and) must reproduce the
  // factors: nothing collapsed.
  FunctionalSim sim(8);
  sim.load(assemble(figure10_source()));
  sim.run();
  auto& qat = sim.qat();
  for (int round = 0; round < 3; ++round) {
    std::uint16_t d = 31;
    d = qat.next(80, d);
    EXPECT_EQ(d & 15u, 5u);
    d = qat.next(80, d);
    EXPECT_EQ(d & 15u, 3u);
  }
}

// Regenerate a Figure 10-class program from the Figure 9 word-level source
// using the circuit recorder, then run the emitted assembly.
class GeneratedFactoring : public ::testing::TestWithParam<bool> {};

TEST_P(GeneratedFactoring, EmittedProgramFactors15) {
  const bool optimize_gates = GetParam();
  auto ctx = pbp::PbpContext::create(8, pbp::Backend::kDense);
  auto circ = std::make_shared<pbp::Circuit>(ctx);
  const pbp::Pint a = pbp::Pint::constant(circ, 4, 15);
  const pbp::Pint b = pbp::Pint::hadamard(circ, 4, 0x0f);
  const pbp::Pint cc = pbp::Pint::hadamard(circ, 4, 0xf0);
  const pbp::Pint d = pbp::Pint::mul(b, cc);
  const pbp::Pint e = pbp::Pint::eq(d, a);

  std::string asm_text;
  std::uint8_t e_reg;
  if (optimize_gates) {
    const pbp::Circuit::Node roots[] = {e.bit(0)};
    auto opt = pbp::optimize(*circ, roots);
    pbp::EmitOptions eo;
    eo.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
    const auto r = pbp::emit_qat(opt.circuit, opt.roots, eo);
    asm_text = r.asm_text;
    e_reg = r.root_regs[0];
  } else {
    const pbp::Circuit::Node roots[] = {e.bit(0)};
    pbp::EmitOptions eo;
    eo.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;  // >256 gates greedy
    const auto r = pbp::emit_qat(*circ, roots, eo);
    asm_text = r.asm_text;
    e_reg = r.root_regs[0];
  }

  // Append the readout epilogue of Figure 10, retargeted at e's register.
  const std::string er = std::to_string(e_reg);
  asm_text += "\tlex $0,31\n";
  asm_text += "\tnext $0,@" + er + "\n";
  asm_text += "\tcopy $1,$0\n";
  asm_text += "\tnext $1,@" + er + "\n";
  asm_text += "\tlex $2,15\n";
  asm_text += "\tand $0,$2\n";
  asm_text += "\tand $1,$2\n";
  asm_text += "\tsys\n";

  FunctionalSim sim(8);
  sim.load(assemble(asm_text));
  const SimStats st = sim.run();
  ASSERT_TRUE(st.halted);
  EXPECT_EQ(sim.cpu().reg(0), 5u);
  EXPECT_EQ(sim.cpu().reg(1), 3u);
}

INSTANTIATE_TEST_SUITE_P(OptOnOff, GeneratedFactoring, ::testing::Bool());

TEST(GeneratedFactoring, OptimizerShrinksTheProgram) {
  auto ctx = pbp::PbpContext::create(8, pbp::Backend::kDense);
  auto circ = std::make_shared<pbp::Circuit>(ctx);
  const pbp::Pint a = pbp::Pint::constant(circ, 4, 15);
  const pbp::Pint b = pbp::Pint::hadamard(circ, 4, 0x0f);
  const pbp::Pint cc = pbp::Pint::hadamard(circ, 4, 0xf0);
  const pbp::Pint e = pbp::Pint::eq(pbp::Pint::mul(b, cc), a);
  const pbp::Circuit::Node roots[] = {e.bit(0)};

  pbp::EmitOptions eo;
  eo.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
  const auto raw = pbp::emit_qat(*circ, roots, eo);
  auto opt = pbp::optimize(*circ, roots);
  const auto optimized = pbp::emit_qat(opt.circuit, opt.roots, eo);
  EXPECT_LT(optimized.instruction_count, raw.instruction_count / 2);
}

// The factoring approach generalizes: factor 21 = 3 * 7 the same way.
TEST(GeneratedFactoring, Factor21) {
  auto ctx = pbp::PbpContext::create(10, pbp::Backend::kDense);
  auto circ = std::make_shared<pbp::Circuit>(ctx);
  const pbp::Pint n = pbp::Pint::constant(circ, 5, 21);
  const pbp::Pint b = pbp::Pint::hadamard(circ, 5, 0x01f);   // H(0..4)
  const pbp::Pint cc = pbp::Pint::hadamard(circ, 5, 0x3e0);  // H(5..9)
  const pbp::Pint e = pbp::Pint::eq(pbp::Pint::mul(b, cc), n);
  const pbp::Pint f = pbp::Pint::gate_by(b, e);
  EXPECT_EQ(f.measure_values(), (std::vector<std::uint64_t>{0, 1, 3, 7, 21}));
}

}  // namespace
}  // namespace tangled
