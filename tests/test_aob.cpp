// Tests for the dense AoB representation (paper §1.1, Figure 1).
#include "pbp/aob.hpp"

#include <gtest/gtest.h>

#include <random>

namespace pbp {
namespace {

TEST(Aob, ZerosAndOnesBasics) {
  for (unsigned ways : {0u, 1u, 2u, 4u, 6u, 7u, 10u, 16u}) {
    const Aob z = Aob::zeros(ways);
    const Aob o = Aob::ones(ways);
    EXPECT_EQ(z.bit_count(), std::size_t{1} << ways);
    EXPECT_EQ(z.popcount(), 0u);
    EXPECT_EQ(o.popcount(), o.bit_count());
    EXPECT_FALSE(z.any());
    EXPECT_TRUE(o.any());
    EXPECT_FALSE(z.all());
    EXPECT_TRUE(o.all());
  }
}

TEST(Aob, WaysLimitEnforced) {
  EXPECT_NO_THROW((void)Aob(kMaxAobWays));
  EXPECT_THROW((void)Aob(kMaxAobWays + 1), std::invalid_argument);
}

TEST(Aob, GetSetRoundTrip) {
  Aob a(10);
  a.set(0, true);
  a.set(511, true);
  a.set(1023, true);
  EXPECT_TRUE(a.get(0));
  EXPECT_TRUE(a.get(511));
  EXPECT_TRUE(a.get(1023));
  EXPECT_FALSE(a.get(1));
  EXPECT_EQ(a.popcount(), 3u);
  a.set(511, false);
  EXPECT_FALSE(a.get(511));
  EXPECT_EQ(a.popcount(), 2u);
}

TEST(Aob, ChannelIndexMasksLikeHardware) {
  // Indexing a 2^E-bit vector with a wider register wraps, as a hardware
  // address decoder would.
  Aob a(4);  // 16 channels
  a.set(3, true);
  EXPECT_TRUE(a.get(3 + 16));
  EXPECT_TRUE(a.get(3 + 32));
  a.set(5 + 16, true);
  EXPECT_TRUE(a.get(5));
}

// Figure 1: two 2-way-entangled pbits {0,1,0,1} and {0,0,1,1} encode the
// two-bit values {0,1,2,3}, one per entanglement channel.
TEST(Aob, Figure1EquiprobablePair) {
  Aob lsb = Aob::from_fn(2, [](std::size_t e) { return e % 2 == 1; });   // 0101
  Aob msb = Aob::from_fn(2, [](std::size_t e) { return e >= 2; });       // 0011
  for (std::size_t e = 0; e < 4; ++e) {
    const unsigned value = (lsb.get(e) ? 1 : 0) + (msb.get(e) ? 2 : 0);
    EXPECT_EQ(value, e) << "channel " << e;
  }
}

// Figure 1's second example: vectors {0,0,1,0} and {0,0,1,1} encode values
// {0,0,3,2} — 50% zero, 0% one, 25% two, 25% three.
TEST(Aob, Figure1BiasedDistribution) {
  Aob lsb(2);
  lsb.set(2, true);  // {0,0,1,0}
  Aob msb(2);
  msb.set(2, true);
  msb.set(3, true);  // {0,0,1,1}
  unsigned counts[4] = {0, 0, 0, 0};
  for (std::size_t e = 0; e < 4; ++e) {
    ++counts[(lsb.get(e) ? 1 : 0) + (msb.get(e) ? 2 : 0)];
  }
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(Aob, BitwiseOpsMatchChannelwiseReference) {
  std::mt19937_64 rng(42);
  for (unsigned ways : {3u, 6u, 8u, 12u}) {
    Aob a = Aob::from_fn(ways, [&](std::size_t) { return rng() & 1; });
    Aob b = Aob::from_fn(ways, [&](std::size_t) { return rng() & 1; });
    const Aob land = a & b;
    const Aob lor = a | b;
    const Aob lxor = a ^ b;
    const Aob lnot = ~a;
    for (std::size_t e = 0; e < a.bit_count(); ++e) {
      EXPECT_EQ(land.get(e), a.get(e) && b.get(e));
      EXPECT_EQ(lor.get(e), a.get(e) || b.get(e));
      EXPECT_EQ(lxor.get(e), a.get(e) != b.get(e));
      EXPECT_EQ(lnot.get(e), !a.get(e));
    }
  }
}

TEST(Aob, MixedWaysThrows) {
  Aob a(4);
  Aob b(5);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(Aob, InvertKeepsTailClean) {
  // For ways < 6 the storage word has dead tail bits; inversion must not
  // leak 1s into them (they would corrupt popcount/any/all).
  Aob a(2);
  a.invert();
  EXPECT_EQ(a.popcount(), 4u);
  EXPECT_TRUE(a.all());
  a.invert();
  EXPECT_EQ(a.popcount(), 0u);
}

TEST(Aob, CswapIsFredkin) {
  std::mt19937_64 rng(7);
  Aob a = Aob::from_fn(8, [&](std::size_t) { return rng() & 1; });
  Aob b = Aob::from_fn(8, [&](std::size_t) { return rng() & 1; });
  const Aob c = Aob::from_fn(8, [&](std::size_t) { return rng() & 1; });
  const Aob a0 = a;
  const Aob b0 = b;
  Aob::cswap(a, b, c);
  for (std::size_t e = 0; e < a.bit_count(); ++e) {
    if (c.get(e)) {
      EXPECT_EQ(a.get(e), b0.get(e));
      EXPECT_EQ(b.get(e), a0.get(e));
    } else {
      EXPECT_EQ(a.get(e), a0.get(e));
      EXPECT_EQ(b.get(e), b0.get(e));
    }
  }
  // Fredkin is its own inverse.
  Aob::cswap(a, b, c);
  EXPECT_EQ(a, a0);
  EXPECT_EQ(b, b0);
}

TEST(Aob, CswapConservesPopcount) {
  // "Billiard-ball conservancy" (§2.5): the pair's total popcount is
  // preserved through swap-based gates.
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Aob a = Aob::from_fn(7, [&](std::size_t) { return rng() & 1; });
    Aob b = Aob::from_fn(7, [&](std::size_t) { return rng() & 1; });
    const Aob c = Aob::from_fn(7, [&](std::size_t) { return rng() & 1; });
    const std::size_t before = a.popcount() + b.popcount();
    Aob::cswap(a, b, c);
    EXPECT_EQ(a.popcount() + b.popcount(), before);
  }
}

TEST(Aob, SwapValuesExchanges) {
  Aob a = Aob::ones(5);
  Aob b = Aob::zeros(5);
  Aob::swap_values(a, b);
  EXPECT_FALSE(a.any());
  EXPECT_TRUE(b.all());
}

TEST(Aob, NextOneBasic) {
  Aob a(8);
  a.set(0, true);
  a.set(42, true);
  a.set(200, true);
  EXPECT_EQ(a.next_one(0), 42u);
  EXPECT_EQ(a.next_one(41), 42u);
  EXPECT_EQ(a.next_one(42), 200u);
  EXPECT_EQ(a.next_one(200), std::nullopt);
  // Bit 0 is never returned: the search is strictly after the argument.
  EXPECT_EQ(a.next_one(255), std::nullopt);
}

TEST(Aob, NextOneExhaustiveAgainstReference) {
  std::mt19937_64 rng(11);
  for (unsigned ways : {3u, 6u, 9u}) {
    Aob a = Aob::from_fn(ways, [&](std::size_t) { return (rng() & 7) == 0; });
    for (std::size_t ch = 0; ch < a.bit_count(); ++ch) {
      std::optional<std::size_t> expect;
      for (std::size_t e = ch + 1; e < a.bit_count(); ++e) {
        if (a.get(e)) {
          expect = e;
          break;
        }
      }
      EXPECT_EQ(a.next_one(ch), expect) << "ways=" << ways << " ch=" << ch;
    }
  }
}

TEST(Aob, PopcountAfterExhaustive) {
  std::mt19937_64 rng(13);
  Aob a = Aob::from_fn(9, [&](std::size_t) { return rng() & 1; });
  for (std::size_t ch = 0; ch < a.bit_count(); ++ch) {
    std::size_t expect = 0;
    for (std::size_t e = ch + 1; e < a.bit_count(); ++e) expect += a.get(e);
    EXPECT_EQ(a.popcount_after(ch), expect) << "ch=" << ch;
  }
}

// §2.7: pop after channel 0 plus meas of channel 0 equals the true POP.
TEST(Aob, PopSplitIdentity) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    Aob a = Aob::from_fn(10, [&](std::size_t) { return rng() & 1; });
    EXPECT_EQ(a.popcount(), a.popcount_after(0) + (a.get(0) ? 1 : 0));
  }
}

TEST(Aob, HashDiffersOnContent) {
  Aob a(8);
  Aob b(8);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(17, true);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Aob, ToStringTruncates) {
  Aob a(8);
  a.set(1, true);
  const std::string s = a.to_string(8);
  EXPECT_EQ(s, "01000000...");
  EXPECT_EQ(Aob::zeros(2).to_string(), "0000");
}

TEST(Aob, EqualityIncludesWays) {
  EXPECT_FALSE(Aob::zeros(3) == Aob::zeros(4));
  EXPECT_TRUE(Aob::zeros(4) == Aob::zeros(4));
}

// Measurement is non-destructive: reading every channel leaves the value
// intact (Figure 5 discussion).
TEST(Aob, MeasurementIsNonDestructive) {
  std::mt19937_64 rng(23);
  Aob a = Aob::from_fn(10, [&](std::size_t) { return rng() & 1; });
  const Aob before = a;
  std::size_t ones = 0;
  for (std::size_t e = 0; e < a.bit_count(); ++e) ones += a.get(e);
  (void)a.next_one(5);
  (void)a.popcount_after(100);
  EXPECT_EQ(a, before);
  EXPECT_EQ(ones, a.popcount());
}

}  // namespace
}  // namespace pbp
