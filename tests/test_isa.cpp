// Tests for instruction encoding/decoding (DESIGN.md's encoding of the
// paper's Tables 1 and 3).
#include "isa/isa.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace tangled {
namespace {

/// Every encodable opcode with representative operand values.
std::vector<Instr> sample_instrs() {
  std::vector<Instr> v;
  const auto opr2 = [&](Op op) {
    Instr i;
    i.op = op;
    i.d = 3;
    i.s = 12;
    v.push_back(i);
  };
  const auto opr1 = [&](Op op) {
    Instr i;
    i.op = op;
    i.d = 9;
    v.push_back(i);
  };
  for (Op op : {Op::kAdd, Op::kAddf, Op::kAnd, Op::kCopy, Op::kLoad, Op::kMul,
                Op::kMulf, Op::kOr, Op::kShift, Op::kSlt, Op::kStore,
                Op::kXor}) {
    opr2(op);
  }
  for (Op op : {Op::kFloat, Op::kInt, Op::kNeg, Op::kNegf, Op::kNot,
                Op::kRecip, Op::kJumpr, Op::kSys}) {
    opr1(op);
  }
  for (Op op : {Op::kBrf, Op::kBrt, Op::kLex}) {
    for (int imm : {-128, -1, 0, 1, 127}) {
      Instr i;
      i.op = op;
      i.d = 5;
      i.imm = static_cast<std::int16_t>(imm);
      v.push_back(i);
    }
  }
  {
    Instr i;
    i.op = Op::kLhi;
    i.d = 5;
    i.imm = 0xAB;
    v.push_back(i);
  }
  for (Op op : {Op::kQNot, Op::kQZero, Op::kQOne}) {
    Instr i;
    i.op = op;
    i.qa = 200;
    v.push_back(i);
  }
  {
    Instr i;
    i.op = Op::kQHad;
    i.qa = 123;
    i.k = 15;
    v.push_back(i);
  }
  for (Op op : {Op::kQCnot, Op::kQSwap}) {
    Instr i;
    i.op = op;
    i.qa = 1;
    i.qb = 255;
    v.push_back(i);
  }
  for (Op op : {Op::kQAnd, Op::kQOr, Op::kQXor, Op::kQCcnot, Op::kQCswap}) {
    Instr i;
    i.op = op;
    i.qa = 80;
    i.qb = 79;
    i.qc = 78;
    v.push_back(i);
  }
  for (Op op : {Op::kQMeas, Op::kQNext, Op::kQPop}) {
    Instr i;
    i.op = op;
    i.d = 8;
    i.qa = 123;
    v.push_back(i);
  }
  return v;
}

TEST(Isa, EncodeDecodeRoundTripsEveryOpcode) {
  for (const Instr& i : sample_instrs()) {
    std::uint16_t w[2] = {0, 0};
    const unsigned n = encode(i, w);
    EXPECT_EQ(n, instr_words(i.op)) << disassemble(i);
    const Decoded d = decode(w[0], w[1]);
    EXPECT_EQ(d.words, n) << disassemble(i);
    EXPECT_EQ(d.instr, i) << disassemble(i) << " vs " << disassemble(d.instr);
  }
}

TEST(Isa, WordCounts) {
  // "some Qat instructions encode as two 16-bit words" (§3.1): exactly the
  // ones that cannot fit their 8-bit register fields in one word.
  EXPECT_EQ(instr_words(Op::kQNot), 1u);
  EXPECT_EQ(instr_words(Op::kQZero), 1u);
  EXPECT_EQ(instr_words(Op::kQOne), 1u);
  for (Op op : {Op::kQHad, Op::kQCnot, Op::kQSwap, Op::kQAnd, Op::kQOr,
                Op::kQXor, Op::kQCcnot, Op::kQCswap, Op::kQMeas, Op::kQNext,
                Op::kQPop}) {
    EXPECT_EQ(instr_words(op), 2u);
  }
  EXPECT_EQ(instr_words(Op::kAdd), 1u);
  EXPECT_EQ(instr_words(Op::kSys), 1u);
}

TEST(Isa, InvalidOpcodesDecodeAsInvalid) {
  // Unassigned primary opcodes 0x6..0xD and out-of-range sub-opcodes.
  for (std::uint16_t op = 0x6; op <= 0xD; ++op) {
    EXPECT_EQ(decode(static_cast<std::uint16_t>(op << 12), 0).instr.op,
              Op::kInvalid);
  }
  EXPECT_EQ(decode(0x000F, 0).instr.op, Op::kInvalid);  // OPR2 sub 15
  EXPECT_EQ(decode(0x1008, 0).instr.op, Op::kInvalid);  // OPR1 sub 8
  EXPECT_EQ(decode(0xEE00, 0).instr.op, Op::kInvalid);  // Qat sub 14
  EXPECT_EQ(decode(0xEE00, 0).words, 1u);
}

TEST(Isa, EncodeInvalidThrows) {
  Instr i;
  std::uint16_t w[2];
  EXPECT_THROW(encode(i, w), std::invalid_argument);
}

TEST(Isa, RegisterNames) {
  EXPECT_EQ(reg_name(0), "$0");
  EXPECT_EQ(reg_name(10), "$10");
  EXPECT_EQ(reg_name(kRegAt), "$at");
  EXPECT_EQ(reg_name(kRegRv), "$rv");
  EXPECT_EQ(reg_name(kRegRa), "$ra");
  EXPECT_EQ(reg_name(kRegFp), "$fp");
  EXPECT_EQ(reg_name(kRegSp), "$sp");
}

TEST(Isa, ParseRegAcceptsNamesAndNumbers) {
  EXPECT_EQ(parse_reg("$0"), 0u);
  EXPECT_EQ(parse_reg("$15"), 15u);
  EXPECT_EQ(parse_reg("$at"), kRegAt);
  EXPECT_EQ(parse_reg("$sp"), kRegSp);
  EXPECT_EQ(parse_reg("$16"), std::nullopt);
  EXPECT_EQ(parse_reg("r3"), std::nullopt);
  EXPECT_EQ(parse_reg("$"), std::nullopt);
  EXPECT_EQ(parse_reg("$x"), std::nullopt);
}

TEST(Isa, Classification) {
  EXPECT_TRUE(is_qat(Op::kQNot));
  EXPECT_TRUE(is_qat(Op::kQPop));
  EXPECT_FALSE(is_qat(Op::kNot));
  EXPECT_TRUE(is_branch(Op::kBrf));
  EXPECT_TRUE(is_branch(Op::kJumpr));
  EXPECT_FALSE(is_branch(Op::kAdd));
  EXPECT_TRUE(writes_tangled_reg(Op::kQNext));
  EXPECT_FALSE(writes_tangled_reg(Op::kStore));
  EXPECT_FALSE(writes_tangled_reg(Op::kQAnd));
  EXPECT_TRUE(reads_d(Op::kStore));
  EXPECT_TRUE(reads_s(Op::kStore));
  EXPECT_FALSE(reads_d(Op::kLex));
  EXPECT_FALSE(reads_s(Op::kLex));
  EXPECT_TRUE(reads_d(Op::kQMeas));
}

TEST(Isa, DisassembleMatchesPaperSyntax) {
  Instr i;
  i.op = Op::kQHad;
  i.qa = 123;
  i.k = 4;
  EXPECT_EQ(disassemble(i), "had @123,4");
  i = {};
  i.op = Op::kQNext;
  i.d = 8;
  i.qa = 123;
  EXPECT_EQ(disassemble(i), "next $8,@123");
  i = {};
  i.op = Op::kLex;
  i.d = 8;
  i.imm = 42;
  EXPECT_EQ(disassemble(i), "lex $8,42");
  i = {};
  i.op = Op::kQAnd;
  i.qa = 2;
  i.qb = 0;
  i.qc = 1;
  EXPECT_EQ(disassemble(i), "and @2,@0,@1");
}

TEST(Isa, DecodeFuzzNeverCrashes) {
  std::mt19937 rng(8);
  for (int i = 0; i < 100000; ++i) {
    const auto w0 = static_cast<std::uint16_t>(rng());
    const auto w1 = static_cast<std::uint16_t>(rng());
    const Decoded d = decode(w0, w1);
    EXPECT_GE(d.words, 1u);
    EXPECT_LE(d.words, 2u);
    // Whatever decoded must disassemble without throwing.
    (void)disassemble(d.instr);
    // And valid decodes must re-encode to the same semantic instruction.
    if (d.instr.op != Op::kInvalid) {
      std::uint16_t w[2] = {0, 0};
      const unsigned n = encode(d.instr, w);
      const Decoded d2 = decode(w[0], w[1]);
      EXPECT_EQ(d2.instr, d.instr);
      EXPECT_EQ(n, d.words);
    }
  }
}

}  // namespace
}  // namespace tangled
