// Tests for exact pint distribution statistics (stats.hpp).
#include "pbp/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace pbp {
namespace {

std::shared_ptr<Circuit> circ(unsigned ways = 8) {
  return std::make_shared<Circuit>(PbpContext::create(ways, Backend::kDense));
}

TEST(Stats, ConstantHasZeroVariance) {
  auto c = circ();
  const Pint p = Pint::constant(c, 6, 37);
  const PintMoments m = moments(p);
  EXPECT_DOUBLE_EQ(m.mean, 37.0);
  EXPECT_DOUBLE_EQ(m.variance, 0.0);
  EXPECT_EQ(m.min_value, 37u);
  EXPECT_EQ(m.max_value, 37u);
}

TEST(Stats, UniformSuperpositionMoments) {
  auto c = circ();
  const Pint b = Pint::hadamard(c, 4, 0x0f);  // uniform over 0..15
  const PintMoments m = moments(b);
  EXPECT_DOUBLE_EQ(m.mean, 7.5);
  // Var of discrete uniform over 0..15: (16² - 1) / 12 = 21.25.
  EXPECT_NEAR(m.variance, 21.25, 1e-9);
  EXPECT_EQ(m.min_value, 0u);
  EXPECT_EQ(m.max_value, 15u);
}

TEST(Stats, MomentsMatchEnumerationOnArbitraryPint) {
  auto c = circ();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint b = Pint::hadamard(c, 4, 0xf0);
  const Pint s = Pint::mul(a, b);  // triangular-ish product distribution
  const PintMoments m = moments(s);
  // Reference by full enumeration.
  double mean = 0;
  double second = 0;
  std::uint64_t lo = ~0ull;
  std::uint64_t hi = 0;
  for (const auto& [value, count] : s.measure_distribution()) {
    mean += static_cast<double>(value) * count;
    second += static_cast<double>(value) * value * count;
    if (count > 0) {
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
  }
  mean /= 256.0;
  second /= 256.0;
  EXPECT_NEAR(m.mean, mean, 1e-9);
  EXPECT_NEAR(m.variance, second - mean * mean, 1e-6);
  EXPECT_EQ(m.min_value, lo);
  EXPECT_EQ(m.max_value, hi);
}

TEST(Stats, CorrelationOfIndependentHadamardsIsZero) {
  auto c = circ();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint b = Pint::hadamard(c, 4, 0xf0);
  EXPECT_NEAR(pbit_correlation(a, 0, b, 0), 0.0, 1e-12);
  EXPECT_NEAR(pbit_correlation(a, 2, b, 3), 0.0, 1e-12);
}

TEST(Stats, CorrelationOfSharedChannelIsOne) {
  auto c = circ();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  EXPECT_NEAR(pbit_correlation(a, 1, a, 1), 1.0, 1e-12);
  // b = ~a has correlation -1 with a on every bit.
  const Pint b = ~a;
  EXPECT_NEAR(pbit_correlation(a, 1, b, 1), -1.0, 1e-12);
}

TEST(Stats, ConstantCorrelationIsDefinedAsZero) {
  auto c = circ();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint k = Pint::constant(c, 4, 9);
  EXPECT_EQ(pbit_correlation(a, 0, k, 0), 0.0);
}

TEST(Stats, SamplingMatchesDistribution) {
  auto c = circ();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint b = Pint::hadamard(c, 4, 0xf0);
  const Pint e = Pint::eq(Pint::mul(a, b), Pint::constant(c, 4, 15));
  const Pint f = Pint::gate_by(a, e);
  std::mt19937_64 rng(123);
  std::map<std::uint64_t, int> hist;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) ++hist[sample(f, rng)];
  // P(0) = 252/256; each factor channel has probability 1/256.
  EXPECT_NEAR(hist[0] / double(kSamples), 252.0 / 256.0, 0.01);
  for (const std::uint64_t v : {1ull, 3ull, 5ull, 15ull}) {
    EXPECT_NEAR(hist[v] / double(kSamples), 1.0 / 256.0, 0.005) << v;
  }
  // Sampling is non-destructive: the distribution is still exact.
  EXPECT_EQ(f.measure_values(), (std::vector<std::uint64_t>{0, 1, 3, 5, 15}));
}

TEST(Stats, EntropyOfUniformIsWidth) {
  auto c = circ();
  EXPECT_NEAR(entropy_bits(Pint::hadamard(c, 4, 0x0f)), 4.0, 1e-12);
  EXPECT_NEAR(entropy_bits(Pint::hadamard(c, 8, 0xff)), 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(entropy_bits(Pint::constant(c, 4, 3)), 0.0);
}

TEST(Stats, EntropyOfSumIsBelowUniform) {
  auto c = circ();
  const Pint a = Pint::hadamard(c, 4, 0x0f);
  const Pint b = Pint::hadamard(c, 4, 0xf0);
  const double h = entropy_bits(Pint::add(a, b));
  // 31 values, triangular weights: strictly between 4 and log2(31) bits.
  EXPECT_GT(h, 4.0);
  EXPECT_LT(h, std::log2(31.0));
}

}  // namespace
}  // namespace pbp
