// test_net.cpp — unit + end-to-end tests for the hardened network front
// door (labels `net;serve`): wire codec round trips, header validation,
// submit→report round trips over real loopback TCP, overload shedding
// (RETRY_AFTER on queue-full and the per-connection in-flight cap),
// slow-loris / garbage / wrong-version / oversized / torn-frame defense,
// graceful drain (explicit and via SIGTERM), and client reconnect backoff.
#include <gtest/gtest.h>

#include <csignal>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "asm/programs.hpp"
#include "serve/net/chaos.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"

namespace tangled::serve::net {
namespace {

using namespace std::chrono_literals;

SubmitRequest fig10_request(SimKind sim = SimKind::kFunc) {
  SubmitRequest req;
  req.name = std::string("fig10-") + sim_kind_name(sim);
  req.source = figure10_source();
  req.sim = sim;
  req.max_instructions = 20'000;
  req.checkpoint_every = 25;
  req.expect = {{0, 5}, {1, 3}};
  return req;
}

SubmitRequest spin_request() {
  SubmitRequest req;
  req.name = "spin";
  req.source = "loop: br loop\n";
  req.max_instructions = 2'000'000'000ULL;
  return req;
}

NetServerConfig small_server(unsigned threads = 2) {
  NetServerConfig c;
  c.jobs.threads = threads;
  return c;
}

ServeClientConfig client_for(const NetServer& server) {
  ServeClientConfig c;
  c.port = server.port();
  return c;
}

/// A raw TCP connection for crafting abusive byte streams.
struct RawConn {
  Socket sock;
  bool connect(std::uint16_t port) {
    std::string err;
    sock = connect_tcp("127.0.0.1", port, 2000ms, &err);
    return sock.valid();
  }
  bool send_bytes(const std::vector<std::uint8_t>& b) {
    return write_all(sock.fd(), b.data(), b.size(), Clock::now() + 2s) ==
           IoStatus::kOk;
  }
  RecvStatus recv(Frame* f, std::chrono::milliseconds wait = 2000ms) {
    return recv_frame(sock.fd(), {kDefaultMaxFrameBytes, wait, wait}, f);
  }
  /// True once the server has closed its side (EOF / reset).
  bool closed_by_peer(std::chrono::milliseconds wait = 2000ms) {
    Frame f;
    const RecvStatus st = recv(&f, wait);
    return st == RecvStatus::kEof || st == RecvStatus::kIoError;
  }
};

ErrorReply decode_error(const Frame& f) {
  EXPECT_EQ(f.type, MsgType::kError);
  pbp::ByteReader r(f.payload);
  return ErrorReply::decode(r);
}

void put_u16(std::vector<std::uint8_t>* v, std::uint16_t x) {
  v->push_back(static_cast<std::uint8_t>(x));
  v->push_back(static_cast<std::uint8_t>(x >> 8));
}
void put_u32(std::vector<std::uint8_t>* v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) {
    v->push_back(static_cast<std::uint8_t>(x >> (8 * i)));
  }
}

/// Hand-build a header so each field can be individually forged.
std::vector<std::uint8_t> forge_header(std::uint32_t magic,
                                       std::uint16_t version,
                                       std::uint8_t type, std::uint32_t length,
                                       std::uint32_t crc) {
  std::vector<std::uint8_t> h;
  put_u32(&h, magic);
  put_u16(&h, version);
  h.push_back(type);
  h.push_back(0);
  put_u32(&h, length);
  put_u32(&h, crc);
  return h;
}

// ---------------------------------------------------------------------------
// Wire codec.

TEST(Wire, SubmitRequestRoundTrips) {
  SubmitRequest req = fig10_request(SimKind::kPipe5);
  req.backend = pbp::Backend::kCompressed;
  req.ways = 21;
  req.max_cycles = 123;
  req.ecc = pbp::EccMode::kCorrect;
  req.ecc_epoch = 64;
  req.scrub_every = 512;
  req.qat_threads = 2;
  req.deadline_ms = 1500;
  req.retry_max = 3;
  req.fault_spec = "seed=41,events=2";

  pbp::ByteWriter w;
  req.encode(w);
  pbp::ByteReader r(w.bytes());
  const SubmitRequest back = SubmitRequest::decode(r);
  EXPECT_EQ(back.name, req.name);
  EXPECT_EQ(back.source, req.source);
  EXPECT_EQ(back.sim, req.sim);
  EXPECT_EQ(back.backend, req.backend);
  EXPECT_EQ(back.ways, req.ways);
  EXPECT_EQ(back.max_cycles, req.max_cycles);
  EXPECT_EQ(back.ecc, req.ecc);
  EXPECT_EQ(back.ecc_epoch, req.ecc_epoch);
  EXPECT_EQ(back.scrub_every, req.scrub_every);
  EXPECT_EQ(back.qat_threads, req.qat_threads);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.retry_max, req.retry_max);
  EXPECT_EQ(back.fault_spec, req.fault_spec);
  EXPECT_EQ(back.expect, req.expect);
}

TEST(Wire, ReportRoundTrips) {
  JobReport rep;
  rep.id = 42;
  rep.name = "fig10/poisoned";
  rep.outcome = JobOutcome::kQuarantined;
  rep.trap = Trap{TrapKind::kQatFault, 17};
  rep.attempts = 3;
  rep.retries = 5;
  rep.recovered = true;
  rep.instructions = 999;
  rep.qat_ops = 1234;
  rep.ecc_corrected = 2;
  rep.queue_ms = 1.5;
  rep.exec_ms = 20.25;

  pbp::ByteWriter w;
  encode_report(rep, w);
  pbp::ByteReader r(w.bytes());
  const JobReport back = decode_report(r);
  EXPECT_EQ(back.id, rep.id);
  EXPECT_EQ(back.name, rep.name);
  EXPECT_EQ(back.outcome, rep.outcome);
  EXPECT_EQ(back.trap.kind, rep.trap.kind);
  EXPECT_EQ(back.trap.pc, rep.trap.pc);
  EXPECT_EQ(back.attempts, rep.attempts);
  EXPECT_EQ(back.retries, rep.retries);
  EXPECT_EQ(back.recovered, rep.recovered);
  EXPECT_EQ(back.instructions, rep.instructions);
  EXPECT_EQ(back.qat_ops, rep.qat_ops);
  EXPECT_EQ(back.ecc_corrected, rep.ecc_corrected);
  EXPECT_DOUBLE_EQ(back.queue_ms, rep.queue_ms);
  EXPECT_DOUBLE_EQ(back.exec_ms, rep.exec_ms);
}

TEST(Wire, HeaderValidationRejectsForgeries) {
  const std::vector<std::uint8_t> good =
      encode_frame(MsgType::kPing, {1, 2, 3});
  ASSERT_GE(good.size(), kHeaderBytes);
  FrameHeader h;
  EXPECT_EQ(parse_header(good.data(), kDefaultMaxFrameBytes, &h),
            FrameCheck::kOk);
  EXPECT_EQ(h.length, 3u);

  const auto bad_magic = forge_header(0xdeadbeef, kWireVersion, 5, 0, 0);
  EXPECT_EQ(parse_header(bad_magic.data(), kDefaultMaxFrameBytes, &h),
            FrameCheck::kBadMagic);
  const auto bad_version = forge_header(kWireMagic, 999, 5, 0, 0);
  EXPECT_EQ(parse_header(bad_version.data(), kDefaultMaxFrameBytes, &h),
            FrameCheck::kBadVersion);
  // A forged 256 MiB length is rejected from the header alone.
  const auto oversized =
      forge_header(kWireMagic, kWireVersion, 5, 256u << 20, 0);
  EXPECT_EQ(parse_header(oversized.data(), kDefaultMaxFrameBytes, &h),
            FrameCheck::kOversized);
}

TEST(Wire, CrcCatchesBitFlip) {
  std::vector<std::uint8_t> frame = encode_frame(MsgType::kPing, {7, 8, 9});
  FrameHeader h;
  ASSERT_EQ(parse_header(frame.data(), kDefaultMaxFrameBytes, &h),
            FrameCheck::kOk);
  std::vector<std::uint8_t> payload(frame.begin() + kHeaderBytes, frame.end());
  EXPECT_EQ(verify_payload(h, payload), FrameCheck::kOk);
  payload[1] ^= 0x10;
  EXPECT_EQ(verify_payload(h, payload), FrameCheck::kBadCrc);
}

TEST(Wire, MalformedEnumInCrcCleanPayloadThrows) {
  SubmitRequest req = fig10_request();
  pbp::ByteWriter w;
  req.encode(w);
  std::vector<std::uint8_t> bytes = w.bytes();
  // The sim-kind byte sits right after the two length-prefixed strings.
  const std::size_t sim_off = 4 + req.name.size() + 4 + req.source.size();
  ASSERT_LT(sim_off, bytes.size());
  bytes[sim_off] = 0xff;
  pbp::ByteReader r(bytes);
  EXPECT_THROW(SubmitRequest::decode(r), std::runtime_error);
}

// ---------------------------------------------------------------------------
// End-to-end over loopback TCP.

TEST(NetServer, SubmitStreamsExactlyOneReportPerJobOnEveryModel) {
  NetServer server(small_server(4));
  ASSERT_TRUE(server.ok()) << server.error();
  ServeClient client(client_for(server));
  ASSERT_TRUE(client.connect().ok);

  static const SimKind kKinds[] = {SimKind::kFunc,     SimKind::kMulti,
                                   SimKind::kMultiFsm, SimKind::kPipe4,
                                   SimKind::kPipe5,    SimKind::kPipe5NoFwd,
                                   SimKind::kRtl};
  std::set<std::uint64_t> ids;
  for (const SimKind k : kKinds) {
    ClientResult r;
    const auto id = client.submit(fig10_request(k), &r);
    ASSERT_TRUE(id.has_value()) << r.message;
    EXPECT_TRUE(ids.insert(*id).second) << "duplicate job id";
  }
  std::set<std::uint64_t> reported;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ClientResult r;
    const auto rep = client.next_report(30'000ms, &r);
    ASSERT_TRUE(rep.has_value()) << r.message;
    EXPECT_EQ(rep->outcome, JobOutcome::kCompleted) << rep->to_string();
    EXPECT_TRUE(ids.count(rep->id)) << "report for a job we never submitted";
    EXPECT_TRUE(reported.insert(rep->id).second) << "duplicate report";
  }
  EXPECT_EQ(reported, ids);
  // Nothing further arrives: exactly once means exactly once.
  EXPECT_FALSE(client.next_report(100ms).has_value());

  const NetStats ns = server.net_stats();
  EXPECT_EQ(ns.submits_admitted, 7u);
  EXPECT_EQ(ns.reports_streamed, 7u);
  EXPECT_EQ(ns.reports_orphaned, 0u);
}

TEST(NetServer, StatsSnapshotCountsJobsAndFrames) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  ServeClient client(client_for(server));
  ASSERT_TRUE(client.submit(fig10_request()).has_value());
  ASSERT_TRUE(client.next_report(30'000ms).has_value());

  StatsOk s;
  ASSERT_TRUE(client.stats(&s).ok);
  EXPECT_EQ(s.snapshot_version, kStatsSnapshotVersion);
  EXPECT_EQ(s.jobs.submitted, 1u);
  EXPECT_EQ(s.jobs.completed, 1u);
  EXPECT_EQ(s.reports_streamed, 1u);
  EXPECT_FALSE(s.draining);
  EXPECT_GE(s.frames_rx, 2u);  // submit + stats at least
  // The stats-ok carrying this snapshot is sent AFTER the snapshot is
  // taken, so it cannot count itself: submit-ok + report only.
  EXPECT_GE(s.frames_tx, 2u);
  EXPECT_EQ(s.connections_accepted, 1u);
}

TEST(NetServer, EccUpsetsSurfaceInHealthSnapshot) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  ServeClient client(client_for(server));
  // Storage upsets beneath the ECC-corrected Qat register file / memory:
  // the integrity layer repairs them, the report counts the repairs, and
  // the server aggregates them into the health snapshot.
  std::uint64_t total_corrected = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SubmitRequest req = fig10_request(SimKind::kRtl);
    req.ecc = pbp::EccMode::kCorrect;
    req.fault_spec =
        "seed=" + std::to_string(seed) + ",events=4,horizon=100,storage=1";
    ClientResult r;
    ASSERT_TRUE(client.submit(req, &r).has_value()) << r.message;
    const auto rep = client.next_report(30'000ms);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->outcome, JobOutcome::kCompleted) << rep->to_string();
    total_corrected += rep->ecc_corrected;
  }
  EXPECT_GE(total_corrected, 1u) << "32 storage upsets and no repair?";
  StatsOk s;
  ASSERT_TRUE(client.stats(&s).ok);
  EXPECT_EQ(s.ecc_corrected, total_corrected);
}

TEST(NetServer, ProgressAndCancelOverTheWire) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  ServeClient client(client_for(server));
  ClientResult r;
  const auto id = client.submit(spin_request(), &r);
  ASSERT_TRUE(id.has_value()) << r.message;

  // Progress becomes visible once the worker picks the job up.
  ProgressOk p;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.progress(*id, &p).ok);
    ASSERT_TRUE(p.known);
    if (p.qat_ops > 0 || p.attempts > 0) break;
    std::this_thread::sleep_for(10ms);
  }
  ProgressOk unknown;
  ASSERT_TRUE(client.progress(99'999, &unknown).ok);
  EXPECT_FALSE(unknown.known);

  bool cancelled = false;
  ASSERT_TRUE(client.cancel(*id, &cancelled).ok);
  EXPECT_TRUE(cancelled);
  const auto rep = client.next_report(30'000ms);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->id, *id);
  EXPECT_EQ(rep->outcome, JobOutcome::kCancelled);
  // Cancelling a terminal job reports false, not an error.
  ASSERT_TRUE(client.cancel(*id, &cancelled).ok);
  EXPECT_FALSE(cancelled);
}

TEST(NetServer, QueueFullShedsWithRetryAfter) {
  NetServerConfig config;
  config.jobs.threads = 1;
  config.jobs.queue_capacity = 1;
  NetServer server(config);
  ASSERT_TRUE(server.ok()) << server.error();

  ServeClientConfig cc = client_for(server);
  cc.submit_retries = 0;  // surface the shed instead of absorbing it
  ServeClient client(cc);

  // One job runs, one sits in the queue; the third must be shed.
  ClientResult r;
  const auto running = client.submit(spin_request(), &r);
  ASSERT_TRUE(running.has_value()) << r.message;
  // Wait until the worker dequeued the first job so the queue slot is free.
  ProgressOk p;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client.progress(*running, &p).ok);
    if (p.qat_ops > 0 || p.attempts > 0) break;
    std::this_thread::sleep_for(5ms);
  }
  const auto queued = client.submit(spin_request(), &r);
  ASSERT_TRUE(queued.has_value()) << r.message;

  const auto shed = client.submit(spin_request(), &r);
  EXPECT_FALSE(shed.has_value());
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, WireError::kOverloaded);
  EXPECT_GE(server.net_stats().retry_after_sent, 1u);

  // With retries enabled the same submission eventually gets through once
  // capacity frees up (a shed submit was never admitted, so no duplicate).
  std::thread unblock([&] {
    std::this_thread::sleep_for(50ms);
    ServeClient side(client_for(server));
    side.cancel(*running);
    side.cancel(*queued);
  });
  ServeClientConfig retry_cc = client_for(server);
  retry_cc.submit_retries = 200;
  ServeClient retry_client(retry_cc);
  const auto admitted = retry_client.submit(fig10_request(), &r);
  ASSERT_TRUE(admitted.has_value()) << r.message;
  unblock.join();
  const auto rep = retry_client.next_report(30'000ms);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->outcome, JobOutcome::kCompleted);
  // The first client still gets exactly its two cancelled reports.
  std::set<std::uint64_t> got;
  for (int i = 0; i < 2; ++i) {
    const auto cancelled_rep = client.next_report(30'000ms);
    ASSERT_TRUE(cancelled_rep.has_value());
    EXPECT_EQ(cancelled_rep->outcome, JobOutcome::kCancelled);
    got.insert(cancelled_rep->id);
  }
  EXPECT_EQ(got, (std::set<std::uint64_t>{*running, *queued}));
}

TEST(NetServer, PerConnectionInFlightCapSheds) {
  // Three workers: the first connection's two spin jobs occupy two of them,
  // leaving one free to actually run the second connection's job.
  NetServerConfig config = small_server(3);
  config.max_inflight_per_conn = 2;
  NetServer server(config);
  ASSERT_TRUE(server.ok()) << server.error();

  ServeClientConfig cc = client_for(server);
  cc.submit_retries = 0;
  ServeClient client(cc);
  ClientResult r;
  const auto a = client.submit(spin_request(), &r);
  ASSERT_TRUE(a.has_value()) << r.message;
  const auto b = client.submit(spin_request(), &r);
  ASSERT_TRUE(b.has_value()) << r.message;
  EXPECT_FALSE(client.submit(spin_request(), &r).has_value());
  EXPECT_EQ(r.code, WireError::kOverloaded);

  // A SECOND connection is not constrained by the first one's cap.
  ServeClient other(client_for(server));
  const auto c = other.submit(fig10_request(), &r);
  ASSERT_TRUE(c.has_value()) << r.message;
  EXPECT_TRUE(other.next_report(30'000ms).has_value());

  client.cancel(*a);
  client.cancel(*b);
  EXPECT_TRUE(client.next_report(30'000ms).has_value());
  EXPECT_TRUE(client.next_report(30'000ms).has_value());
}

// ---------------------------------------------------------------------------
// Abusive clients.

TEST(NetServer, GarbageBytesGetStructuredBadMagicThenClose) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  RawConn raw;
  ASSERT_TRUE(raw.connect(server.port()));
  std::vector<std::uint8_t> junk(64, 'X');
  ASSERT_TRUE(raw.send_bytes(junk));
  Frame f;
  ASSERT_EQ(raw.recv(&f), RecvStatus::kOk);
  EXPECT_EQ(decode_error(f).code, WireError::kBadMagic);
  EXPECT_TRUE(raw.closed_by_peer());
  EXPECT_GE(server.net_stats().protocol_errors, 1u);
}

TEST(NetServer, WrongVersionGetsStructuredReplyThenClose) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  RawConn raw;
  ASSERT_TRUE(raw.connect(server.port()));
  ASSERT_TRUE(raw.send_bytes(forge_header(
      kWireMagic, kWireVersion + 7, static_cast<std::uint8_t>(MsgType::kPing),
      0, pbp::crc32(nullptr, 0))));
  Frame f;
  ASSERT_EQ(raw.recv(&f), RecvStatus::kOk);
  EXPECT_EQ(decode_error(f).code, WireError::kBadVersion);
  EXPECT_TRUE(raw.closed_by_peer());
}

TEST(NetServer, OversizedDeclarationRejectedFromHeaderAlone) {
  NetServerConfig config = small_server();
  config.max_frame_bytes = 4096;
  NetServer server(config);
  ASSERT_TRUE(server.ok()) << server.error();
  RawConn raw;
  ASSERT_TRUE(raw.connect(server.port()));
  // Declare 512 MiB; send no payload at all — the rejection must come from
  // the header, before any allocation or payload read.
  ASSERT_TRUE(raw.send_bytes(forge_header(
      kWireMagic, kWireVersion, static_cast<std::uint8_t>(MsgType::kSubmit),
      512u << 20, 0)));
  Frame f;
  ASSERT_EQ(raw.recv(&f), RecvStatus::kOk);
  EXPECT_EQ(decode_error(f).code, WireError::kOversized);
  EXPECT_TRUE(raw.closed_by_peer());
}

TEST(NetServer, CorruptPayloadGetsBadCrcThenClose) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  RawConn raw;
  ASSERT_TRUE(raw.connect(server.port()));
  std::vector<std::uint8_t> frame = encode_frame(MsgType::kPing, {1, 2, 3, 4});
  frame[kHeaderBytes + 2] ^= 0x40;  // flip a payload bit in flight
  ASSERT_TRUE(raw.send_bytes(frame));
  Frame f;
  ASSERT_EQ(raw.recv(&f), RecvStatus::kOk);
  EXPECT_EQ(decode_error(f).code, WireError::kBadCrc);
  EXPECT_TRUE(raw.closed_by_peer());
}

TEST(NetServer, SlowLorisConnectionIsClosedWithoutBlockingOthers) {
  NetServerConfig config = small_server();
  config.frame_timeout = 100ms;
  NetServer server(config);
  ASSERT_TRUE(server.ok()) << server.error();

  RawConn loris;
  ASSERT_TRUE(loris.connect(server.port()));
  // Begin a frame (4 bytes of a valid magic) and then stall forever.
  ASSERT_TRUE(loris.send_bytes({0x54, 0x4e, 0x47, 0x57}));

  // A well-behaved client is served while the loris dangles.
  ServeClient good(client_for(server));
  ASSERT_TRUE(good.submit(fig10_request()).has_value());
  EXPECT_TRUE(good.next_report(30'000ms).has_value());

  EXPECT_TRUE(loris.closed_by_peer(5000ms));
  EXPECT_GE(server.net_stats().stall_closes, 1u);
}

TEST(NetServer, TornFrameThenDisconnectLeaksNothing) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  {
    RawConn raw;
    ASSERT_TRUE(raw.connect(server.port()));
    const std::vector<std::uint8_t> frame =
        encode_message(MsgType::kSubmit, fig10_request());
    const std::vector<std::uint8_t> half(frame.begin(),
                                         frame.begin() + frame.size() / 2);
    ASSERT_TRUE(raw.send_bytes(half));
  }  // disconnect mid-frame
  // The server survives and still serves new clients.
  ServeClient client(client_for(server));
  ASSERT_TRUE(client.submit(fig10_request()).has_value());
  EXPECT_TRUE(client.next_report(30'000ms).has_value());
  EXPECT_EQ(server.jobs().stats().submitted, 1u) << "torn submit was admitted";
}

TEST(NetServer, UnknownTypeIsAnsweredButKeepsTheConnection) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  RawConn raw;
  ASSERT_TRUE(raw.connect(server.port()));
  ASSERT_TRUE(raw.send_bytes(
      forge_header(kWireMagic, kWireVersion, 200, 0, pbp::crc32(nullptr, 0))));
  Frame f;
  ASSERT_EQ(raw.recv(&f), RecvStatus::kOk);
  EXPECT_EQ(decode_error(f).code, WireError::kUnknownType);
  // Same connection still answers a well-formed ping.
  ASSERT_TRUE(raw.send_bytes(encode_frame(MsgType::kPing, {9})));
  ASSERT_EQ(raw.recv(&f), RecvStatus::kOk);
  EXPECT_EQ(f.type, MsgType::kPong);
  EXPECT_EQ(f.payload, (std::vector<std::uint8_t>{9}));
}

TEST(NetServer, MalformedSubmitPayloadGetsStructuredErrorThenClose) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  RawConn raw;
  ASSERT_TRUE(raw.connect(server.port()));
  // CRC-clean but truncated SubmitRequest payload.
  SubmitRequest req = fig10_request();
  pbp::ByteWriter w;
  req.encode(w);
  std::vector<std::uint8_t> short_payload(w.bytes().begin(),
                                          w.bytes().begin() + 10);
  ASSERT_TRUE(raw.send_bytes(encode_frame(MsgType::kSubmit, short_payload)));
  Frame f;
  ASSERT_EQ(raw.recv(&f), RecvStatus::kOk);
  EXPECT_EQ(decode_error(f).code, WireError::kMalformed);
  EXPECT_TRUE(raw.closed_by_peer());
  EXPECT_EQ(server.jobs().stats().submitted, 0u);
}

TEST(NetServer, BadAssemblyIsRejectedAsBadJobNotACrash) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  ServeClient client(client_for(server));
  SubmitRequest req;
  req.name = "nonsense";
  req.source = "this is not assembly\n";
  ClientResult r;
  EXPECT_FALSE(client.submit(req, &r).has_value());
  EXPECT_EQ(r.code, WireError::kBadJob);
  // The connection survives a rejected job.
  EXPECT_TRUE(client.ping().ok);
}

// ---------------------------------------------------------------------------
// Batched submission (ISSUE 10).

TEST(Wire, SubmitBatchRoundTrips) {
  SubmitBatchRequest req;
  JobSpec a;
  a.name = "one";
  a.source = "sys\n";
  a.max_instructions = 7;
  JobSpec b;
  b.name = "two";
  b.source = "lex $1,1\nsys\n";
  b.ways = 16;
  b.backend = pbp::Backend::kCompressed;
  req.jobs = {a, b};
  pbp::ByteWriter w;
  req.encode(w);
  pbp::ByteReader r(w.bytes());
  const SubmitBatchRequest back = SubmitBatchRequest::decode(r);
  ASSERT_EQ(back.jobs.size(), 2u);
  EXPECT_EQ(back.jobs[0].name, "one");
  EXPECT_EQ(back.jobs[0].max_instructions, 7u);
  EXPECT_EQ(back.jobs[1].source, b.source);
  EXPECT_EQ(back.jobs[1].ways, 16u);
  EXPECT_EQ(back.jobs[1].backend, pbp::Backend::kCompressed);

  SubmitBatchOk ok;
  SubmitBatchOk::Item admitted;
  admitted.status = SubmitBatchOk::Status::kAdmitted;
  admitted.id = 99;
  SubmitBatchOk::Item shed;
  shed.status = SubmitBatchOk::Status::kRetry;
  shed.delay_ms = 250;
  shed.reason = 2;
  SubmitBatchOk::Item bad;
  bad.status = SubmitBatchOk::Status::kError;
  bad.code = static_cast<std::uint8_t>(WireError::kBadJob);
  bad.message = "no such mnemonic";
  ok.items = {admitted, shed, bad};
  pbp::ByteWriter w2;
  ok.encode(w2);
  pbp::ByteReader r2(w2.bytes());
  const SubmitBatchOk ok_back = SubmitBatchOk::decode(r2);
  ASSERT_EQ(ok_back.items.size(), 3u);
  EXPECT_EQ(ok_back.items[0].status, SubmitBatchOk::Status::kAdmitted);
  EXPECT_EQ(ok_back.items[0].id, 99u);
  EXPECT_EQ(ok_back.items[1].status, SubmitBatchOk::Status::kRetry);
  EXPECT_EQ(ok_back.items[1].delay_ms, 250u);
  EXPECT_EQ(ok_back.items[1].reason, 2u);
  EXPECT_EQ(ok_back.items[2].status, SubmitBatchOk::Status::kError);
  EXPECT_EQ(ok_back.items[2].code,
            static_cast<std::uint8_t>(WireError::kBadJob));
  EXPECT_EQ(ok_back.items[2].message, "no such mnemonic");

  ReportBatch rb;
  JobReport rep;
  rep.id = 5;
  rep.name = "one";
  rep.outcome = JobOutcome::kCompleted;
  rep.instructions = 12;
  rb.reports = {rep, rep};
  rb.reports[1].id = 6;
  pbp::ByteWriter w3;
  rb.encode(w3);
  pbp::ByteReader r3(w3.bytes());
  const ReportBatch rb_back = ReportBatch::decode(r3);
  ASSERT_EQ(rb_back.reports.size(), 2u);
  EXPECT_EQ(rb_back.reports[0].id, 5u);
  EXPECT_EQ(rb_back.reports[1].id, 6u);
  EXPECT_EQ(rb_back.reports[0].instructions, 12u);
}

TEST(NetServer, BatchSubmitAdmitsPerItemAndStreamsEveryReport) {
  NetServer server(small_server(4));
  ASSERT_TRUE(server.ok()) << server.error();
  ServeClient client(client_for(server));

  // A mixed batch: one valid job per model, plus one that cannot assemble —
  // admission is per item, so the bad job must NOT poison its neighbors.
  static const SimKind kKinds[] = {SimKind::kFunc,     SimKind::kMulti,
                                   SimKind::kMultiFsm, SimKind::kPipe4,
                                   SimKind::kPipe5,    SimKind::kPipe5NoFwd,
                                   SimKind::kRtl};
  std::vector<JobSpec> specs;
  for (const SimKind k : kKinds) specs.push_back(fig10_request(k));
  JobSpec bad;
  bad.name = "nonsense";
  bad.source = "this is not assembly\n";
  specs.insert(specs.begin() + 3, bad);

  std::vector<SubmitBatchOk::Item> items;
  ClientResult r;
  ASSERT_TRUE(client.submit_batch(specs, &items, &r)) << r.message;
  ASSERT_EQ(items.size(), specs.size());
  std::set<std::uint64_t> ids;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i == 3) {
      EXPECT_EQ(items[i].status, SubmitBatchOk::Status::kError);
      EXPECT_EQ(items[i].code, static_cast<std::uint8_t>(WireError::kBadJob));
      continue;
    }
    ASSERT_EQ(items[i].status, SubmitBatchOk::Status::kAdmitted)
        << "item " << i << ": " << items[i].message;
    EXPECT_TRUE(ids.insert(items[i].id).second) << "duplicate job id";
  }

  std::set<std::uint64_t> reported;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ClientResult rr;
    const auto rep = client.next_report(30'000ms, &rr);
    ASSERT_TRUE(rep.has_value()) << rr.message;
    EXPECT_EQ(rep->outcome, JobOutcome::kCompleted) << rep->to_string();
    EXPECT_TRUE(reported.insert(rep->id).second) << "duplicate report";
  }
  EXPECT_EQ(reported, ids);
  EXPECT_FALSE(client.next_report(100ms).has_value());

  StatsOk s;
  ASSERT_TRUE(client.stats(&s).ok);
  EXPECT_EQ(s.snapshot_version, kStatsSnapshotVersion);
  EXPECT_EQ(s.batch_submits, 1u);
  EXPECT_EQ(s.batch_jobs, 7u);
  EXPECT_EQ(s.reports_streamed, 7u);
}

TEST(NetServer, BatchReportsCoalesceWhenSeveralJobsAreTerminal) {
  NetServer server(small_server(4));
  ASSERT_TRUE(server.ok()) << server.error();
  ServeClient client(client_for(server));

  // The FIRST admitted job stalls 400 ms mid-run while the rest finish
  // immediately.  The report pump delivers in admission order, so by the
  // time the stalled head becomes terminal every other report is already
  // waiting — they MUST come back coalesced in kReportBatch frames.
  std::vector<JobSpec> specs;
  for (int i = 0; i < 6; ++i) {
    JobSpec s;
    s.name = "noop-" + std::to_string(i);
    s.source = "lex $1,1\nlex $2,2\nlex $3,3\nlex $4,4\nlex $5,5\nsys\n";
    s.max_instructions = 100;
    if (i == 0) s.stall_spec = "at=2,ms=400";
    specs.push_back(s);
  }
  std::vector<SubmitBatchOk::Item> items;
  ClientResult r;
  ASSERT_TRUE(client.submit_batch(specs, &items, &r)) << r.message;
  for (const auto& it : items) {
    ASSERT_EQ(it.status, SubmitBatchOk::Status::kAdmitted) << it.message;
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.next_report(30'000ms).has_value());
  }
  StatsOk s;
  ASSERT_TRUE(client.stats(&s).ok);
  EXPECT_GE(s.batch_reports, 1u) << "no kReportBatch frame was ever sent";
  // Coalescing compresses frames: strictly fewer report frames than
  // reports (6 reports in at most 5 frames means at least one coalesced).
  EXPECT_EQ(s.reports_streamed, 6u);
}

TEST(NetServer, UnbatchedV1ClientNeverSeesBatchFrames) {
  // Interop pin: a connection that never sends kSubmitBatch (a v1 client)
  // must receive plain kReport frames even while another connection on the
  // same server is using the batch family.
  NetServer server(small_server(4));
  ASSERT_TRUE(server.ok()) << server.error();

  ServeClient batch_client(client_for(server));
  std::vector<JobSpec> specs(3);
  for (int i = 0; i < 3; ++i) {
    specs[i].name = "batch-noop";
    specs[i].source = "lex $1,1\nsys\n";
    specs[i].max_instructions = 100;
  }
  std::vector<SubmitBatchOk::Item> items;
  ASSERT_TRUE(batch_client.submit_batch(specs, &items));

  RawConn raw;
  ASSERT_TRUE(raw.connect(server.port()));
  SubmitRequest req = fig10_request();
  pbp::ByteWriter w;
  req.encode(w);
  ASSERT_TRUE(raw.send_bytes(encode_frame(MsgType::kSubmit, w.bytes())));
  Frame f;
  ASSERT_EQ(raw.recv(&f), RecvStatus::kOk);
  ASSERT_EQ(f.type, MsgType::kSubmitOk);
  // The terminal report arrives as a v1 kReport frame, never kReportBatch.
  ASSERT_EQ(raw.recv(&f, 30'000ms), RecvStatus::kOk);
  EXPECT_EQ(f.type, MsgType::kReport);
  pbp::ByteReader rr(f.payload);
  const JobReport rep = decode_report(rr);
  EXPECT_EQ(rep.outcome, JobOutcome::kCompleted) << rep.to_string();

  // And the batch connection still drains all of its own reports.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(batch_client.next_report(30'000ms).has_value());
  }
}

// ---------------------------------------------------------------------------
// Drain and reconnect.

TEST(NetServer, GracefulDrainFlushesEveryAdmittedReport) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  ServeClient client(client_for(server));
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    const auto id = client.submit(fig10_request(
        i % 2 == 0 ? SimKind::kRtl : SimKind::kPipe5));
    ASSERT_TRUE(id.has_value());
    ids.insert(*id);
  }
  server.begin_drain();
  // Post-drain submissions are refused with a structured error…
  ClientResult r;
  EXPECT_FALSE(client.submit(fig10_request(), &r).has_value());
  EXPECT_EQ(r.code, WireError::kShuttingDown);
  // …but every admitted report still arrives.
  std::set<std::uint64_t> reported;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto rep = client.next_report(30'000ms);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->outcome, JobOutcome::kCompleted) << rep->to_string();
    reported.insert(rep->id);
  }
  EXPECT_EQ(reported, ids);
  server.wait_drained();
  EXPECT_EQ(server.net_stats().reports_orphaned, 0u);
  EXPECT_EQ(server.net_stats().reports_streamed, ids.size());
}

TEST(NetServer, SigtermDrainLosesNoAcceptedJob) {
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  server.install_signal_drain();
  ServeClient client(client_for(server));
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto id = client.submit(fig10_request());
    ASSERT_TRUE(id.has_value());
    ids.insert(*id);
  }
  ASSERT_EQ(::raise(SIGTERM), 0);
  std::set<std::uint64_t> reported;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto rep = client.next_report(30'000ms);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->outcome, JobOutcome::kCompleted);
    reported.insert(rep->id);
  }
  EXPECT_EQ(reported, ids);
  server.wait_drained();
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(server.net_stats().reports_orphaned, 0u);
}

TEST(ServeClient, ReconnectBackoffIsBoundedAndEventuallySucceeds) {
  // No listener: every attempt fails, with jittered sleeps between.
  ServeClientConfig cc;
  cc.port = 1;  // reserved port, nothing listens
  cc.connect_timeout = 100ms;
  cc.connect_attempts = 3;
  cc.backoff.base = std::chrono::milliseconds{2};
  cc.backoff.cap = std::chrono::milliseconds{8};
  ServeClient client(cc);
  const auto t0 = Clock::now();
  const ClientResult r = client.connect();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, WireError::kTransport);
  // 2 sleeps of at most 8ms each plus 3 bounded connects.
  EXPECT_LT(Clock::now() - t0, 2s);

  // With a live server the same client connects and works.
  NetServer server(small_server());
  ASSERT_TRUE(server.ok()) << server.error();
  ServeClientConfig live = client_for(server);
  live.connect_attempts = 3;
  ServeClient ok_client(live);
  EXPECT_TRUE(ok_client.connect().ok);
  EXPECT_TRUE(ok_client.ping().ok);
}

TEST(ServeClient, ReportsBufferedDuringCallsAreNotLost) {
  NetServer server(small_server(4));
  ASSERT_TRUE(server.ok()) << server.error();
  ServeClient client(client_for(server));
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto id = client.submit(fig10_request());
    ASSERT_TRUE(id.has_value());
    ids.insert(*id);
  }
  // Poll stats until every job is terminal: the report frames arrive during
  // these calls and must be buffered, not dropped.
  StatsOk s;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(client.stats(&s).ok);
    if (s.jobs.completed == ids.size()) break;
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_EQ(s.jobs.completed, ids.size());
  std::set<std::uint64_t> reported;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto rep = client.next_report(5'000ms);
    ASSERT_TRUE(rep.has_value());
    reported.insert(rep->id);
  }
  EXPECT_EQ(reported, ids);
}

// ---------------------------------------------------------------------------
// JobServer.submit_for (the bounded-admission satellite).

TEST(JobServer, SubmitForTimesOutOnFullQueueAndAdmitsWhenSpaceFrees) {
  JobServerConfig config;
  config.threads = 1;
  config.queue_capacity = 1;
  JobServer server(config);

  Job spin;
  spin.name = "spin";
  spin.program = assemble("loop: br loop\n");
  spin.max_instructions = 2'000'000'000ULL;

  const auto running = server.submit(spin);
  ASSERT_TRUE(running.has_value());
  // Wait for the worker to dequeue so exactly one queue slot exists.
  for (int i = 0; i < 200 && server.stats().active_jobs == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  const auto queued = server.submit(spin);
  ASSERT_TRUE(queued.has_value());

  // Queue full: a bounded wait expires with "queue-full" after >= max_wait.
  std::string reason;
  const auto t0 = Clock::now();
  EXPECT_FALSE(server.submit_for(spin, 60ms, &reason).has_value());
  EXPECT_GE(Clock::now() - t0, 55ms);
  EXPECT_EQ(reason, "queue-full");
  EXPECT_GE(server.stats().queue_full_rejections, 1u);

  // Space frees during the wait: the same call admits instead.
  std::thread unblock([&] {
    std::this_thread::sleep_for(30ms);
    server.cancel(*queued);
    server.cancel(*running);
  });
  const auto admitted = server.submit_for(spin, 5'000ms, &reason);
  EXPECT_TRUE(admitted.has_value());
  unblock.join();
  if (admitted) server.cancel(*admitted);
  server.shutdown(true);
}

TEST(JobServer, SubmitForReportsShutdownNotQueueFullWhenDraining) {
  JobServer server({.threads = 1});
  server.shutdown(true);
  Job j;
  j.name = "late";
  j.program = assemble(figure10_source());
  std::string reason;
  EXPECT_FALSE(server.submit_for(std::move(j), 50ms, &reason).has_value());
  EXPECT_EQ(reason, "shutting-down");
}

}  // namespace
}  // namespace tangled::serve::net
