// Differential and regression tests for the pluggable Qat register-file
// backends (pbp/qat_backend.hpp):
//   * fixed-seed random Table 3 sequences through DenseQatBackend and
//     ReQatBackend at WAYS 6..12, comparing every register plus the whole
//     measurement family after every op;
//   * the RE backend past the dense kMaxAobWays ceiling (ways 32/40);
//   * the ChunkPool symbol-space guard that protects pack_memo_key;
//   * QatEngine construction over both backends.
#include "pbp/qat_backend.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "arch/qat_engine.hpp"

namespace pbp {
namespace {

constexpr unsigned kRegs = 16;  // enough registers to shuffle, fast to scan

/// One random Table 3 op applied to BOTH backends.
template <typename Rng>
void random_op(Rng& rng, QatBackend& d, QatBackend& r, unsigned ways) {
  const unsigned a = static_cast<unsigned>(rng() % kRegs);
  const unsigned b = static_cast<unsigned>(rng() % kRegs);
  const unsigned c = static_cast<unsigned>(rng() % kRegs);
  const unsigned k = static_cast<unsigned>(rng() % (ways + 2));  // may exceed
  switch (rng() % 11) {
    case 0:
      d.zero(a);
      r.zero(a);
      break;
    case 1:
      d.one(a);
      r.one(a);
      break;
    case 2:
      d.had(a, k);
      r.had(a, k);
      break;
    case 3:
      d.not_(a);
      r.not_(a);
      break;
    case 4:
      d.cnot(a, b);
      r.cnot(a, b);
      break;
    case 5:
      d.ccnot(a, b, c);
      r.ccnot(a, b, c);
      break;
    case 6:
      d.swap(a, b);
      r.swap(a, b);
      break;
    case 7:
      d.cswap(a, b, c);
      r.cswap(a, b, c);
      break;
    case 8:
      d.and_(a, b, c);
      r.and_(a, b, c);
      break;
    case 9:
      d.or_(a, b, c);
      r.or_(a, b, c);
      break;
    default:
      d.xor_(a, b, c);
      r.xor_(a, b, c);
      break;
  }
}

/// Full architectural comparison: every register, dense materialization and
/// the entire measurement family at a sample of channels.
template <typename Rng>
void expect_equal(Rng& rng, const QatBackend& d, const QatBackend& r,
                  std::uint64_t seed, int step) {
  for (unsigned reg = 0; reg < kRegs; ++reg) {
    ASSERT_EQ(d.reg_aob(reg), r.reg_aob(reg))
        << "seed " << seed << " step " << step << " reg @" << reg;
    ASSERT_EQ(d.popcount(reg), r.popcount(reg))
        << "seed " << seed << " step " << step << " reg @" << reg;
    ASSERT_EQ(d.any(reg), r.any(reg)) << "seed " << seed << " @" << reg;
    ASSERT_EQ(d.all(reg), r.all(reg)) << "seed " << seed << " @" << reg;
    ASSERT_EQ(d.reg_string(reg, 64), r.reg_string(reg, 64))
        << "seed " << seed << " step " << step << " reg @" << reg;
    for (int probe = 0; probe < 4; ++probe) {
      const std::size_t ch = rng() % d.channels();
      ASSERT_EQ(d.meas(reg, ch), r.meas(reg, ch))
          << "seed " << seed << " step " << step << " reg @" << reg
          << " ch " << ch;
      ASSERT_EQ(d.next_one(reg, ch), r.next_one(reg, ch))
          << "seed " << seed << " step " << step << " reg @" << reg
          << " ch " << ch;
      ASSERT_EQ(d.pop_after(reg, ch), r.pop_after(reg, ch))
          << "seed " << seed << " step " << step << " reg @" << reg
          << " ch " << ch;
    }
  }
}

class BackendDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(BackendDifferential, DenseAndReAgreeOnRandomSequences) {
  const unsigned ways = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::mt19937_64 rng(seed * 1000 + ways);
    DenseQatBackend dense(ways, kRegs);
    ReQatBackend re(ways, kRegs, /*chunk_ways=*/4);
    // Non-trivial starting state.
    for (unsigned reg = 0; reg < kRegs; ++reg) {
      dense.had(reg, reg % (ways + 1));
      re.had(reg, reg % (ways + 1));
    }
    for (int step = 0; step < 120; ++step) {
      random_op(rng, dense, re, ways);
      expect_equal(rng, dense, re, seed, step);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, BackendDifferential,
                         ::testing::Values(6u, 7u, 8u, 9u, 10u, 11u, 12u));

TEST(BackendFactory, ProducesRequestedKind) {
  auto d = make_qat_backend(Backend::kDense, 8, kRegs);
  auto r = make_qat_backend(Backend::kCompressed, 8, kRegs);
  EXPECT_EQ(d->kind(), Backend::kDense);
  EXPECT_EQ(r->kind(), Backend::kCompressed);
  EXPECT_EQ(d->channels(), 256u);
  EXPECT_EQ(r->channels(), 256u);
}

// --- RE backend past the dense ceiling ---

TEST(ReBackendWide, EntanglementBeyondMaxAobWays) {
  constexpr unsigned ways = 32;  // 2^32 channels: undeniably not an Aob
  ASSERT_GT(ways, kMaxAobWays);
  ReQatBackend re(ways, 8, /*chunk_ways=*/12);

  // H(20) on @1: channel i is set iff bit 20 of i is set.
  re.had(1, 20);
  EXPECT_EQ(re.popcount(1), std::size_t{1} << (ways - 1));
  EXPECT_FALSE(re.meas(1, 0));
  EXPECT_TRUE(re.meas(1, std::size_t{1} << 20));

  // CNOT from H(31) flips the top half.
  re.had(2, 31);
  re.cnot(1, 2);
  const std::size_t top = std::size_t{1} << 31;
  EXPECT_TRUE(re.meas(1, top));                      // 0 ^ 1
  EXPECT_FALSE(re.meas(1, top | (std::size_t{1} << 20)));  // 1 ^ 1

  // next/pop walk full-width channel indices.
  re.zero(3);
  re.had(3, 31);
  EXPECT_EQ(re.next_one(3, 0), std::optional<std::size_t>{top});
  // Strictly after `top`: all of [top, 2^32) except top itself.
  EXPECT_EQ(re.pop_after(3, top), (std::size_t{1} << 31) - 1);
  EXPECT_EQ(re.popcount(3), std::size_t{1} << 31);

  // Dense materialization is correctly refused, not silently wrong.
  EXPECT_THROW(re.reg_aob(1), std::length_error);
  // But bounded rendering still works.
  EXPECT_EQ(re.reg_string(3, 8).substr(0, 8), "00000000");
}

TEST(ReBackendWide, MaxReWaysRunsToCompletion) {
  ReQatBackend re(kMaxReWays, 4, /*chunk_ways=*/12);
  re.one(0);
  re.had(1, kMaxReWays - 1);
  re.and_(2, 0, 1);  // = H(ways-1)
  EXPECT_EQ(re.popcount(2), std::size_t{1} << (kMaxReWays - 1));
  EXPECT_TRUE(re.all(0));
  EXPECT_FALSE(re.all(2));
  EXPECT_TRUE(re.any(2));
  const std::size_t top = std::size_t{1} << (kMaxReWays - 1);
  EXPECT_EQ(re.next_one(2, 1), std::optional<std::size_t>{top});
  EXPECT_THROW(ReQatBackend(kMaxReWays + 1, 4), std::invalid_argument);
}

TEST(ReBackendWide, SwapIsPointerCheap) {
  ReQatBackend re(36, 4, /*chunk_ways=*/12);
  re.had(0, 35);
  re.one(1);
  const std::size_t before = re.total_runs();
  for (int i = 0; i < 1000; ++i) re.swap(0, 1);  // must not decompress
  EXPECT_EQ(re.total_runs(), before);
  EXPECT_TRUE(re.all(1));  // even number of swaps: @1 still all-ones
  EXPECT_EQ(re.popcount(0), std::size_t{1} << 35);
}

// --- ChunkPool symbol-space guard (pack_memo_key regression) ---

TEST(ChunkPoolGuard, InternThrowsWhenSymbolSpaceExhausted) {
  // A tiny pool makes the guard testable: 2 chunk-ways, at most 5 symbols.
  ChunkPool pool(2, /*max_symbols=*/5);
  // Interning distinct 4-bit chunks; the pool pre-seeds some constants, so
  // just count how many distinct values fit before the guard trips.
  bool threw = false;
  int interned = 0;
  for (std::uint64_t v = 0; v < 16; ++v) {
    const Aob chunk = Aob::from_fn(2, [v](std::size_t e) {
      return ((v >> e) & 1u) != 0;
    });
    try {
      pool.intern(chunk);
      ++interned;
    } catch (const std::length_error&) {
      threw = true;
      break;
    }
  }
  EXPECT_TRUE(threw) << "guard never tripped after " << interned
                     << " interns";
  EXPECT_LE(pool.size(), 5u);
}

TEST(ChunkPoolGuard, DefaultLimitMatchesMemoKeyLayout) {
  // pack_memo_key packs symbol ids into 28-bit fields; the static limit must
  // never exceed that.  (The static_assert in re.cpp enforces it at compile
  // time; this documents the value at the API level.)
  EXPECT_EQ(ChunkPool::kMaxSymbols, std::size_t{1} << 28);
  EXPECT_THROW(ChunkPool(2, 1), std::invalid_argument);
}

// --- QatEngine over both backends ---

TEST(QatEngineBackend, ExecutesTable3OverBothBackends) {
  for (const Backend kind : {Backend::kDense, Backend::kCompressed}) {
    tangled::QatEngine eng(10, kind);
    EXPECT_EQ(eng.backend_kind(), kind);
    eng.had(1, 3);
    eng.one(2);
    eng.and_(3, 1, 2);
    EXPECT_EQ(eng.reg_popcount(3), 512u);
    EXPECT_EQ(eng.reg(3), eng.reg(1));  // materialized comparison
    EXPECT_EQ(eng.reg_string(3, 16), eng.reg_string(1, 16));
  }
}

TEST(QatEngineBackend, WideReEngineMeasuresCorrectly) {
  tangled::QatEngine eng(34, Backend::kCompressed);
  eng.had(5, 33);
  EXPECT_EQ(eng.reg_popcount(5), std::size_t{1} << 33);
  EXPECT_TRUE(eng.meas_wide(5, std::size_t{1} << 33));
  EXPECT_FALSE(eng.meas_wide(5, 0));
  EXPECT_EQ(eng.next_wide(5, 0), std::size_t{1} << 33);
  EXPECT_EQ(eng.pop_wide(5, std::size_t{1} << 33),
            (std::size_t{1} << 33) - 1);
  EXPECT_THROW(eng.reg(5), std::length_error);
  EXPECT_THROW(tangled::QatEngine(34, Backend::kDense), std::exception);
}

}  // namespace
}  // namespace pbp
