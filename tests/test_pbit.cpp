// Tests for the unified Pbit abstraction (dense and compressed backends).
#include "pbp/pbit.hpp"

#include <gtest/gtest.h>

#include <random>

#include "pbp/hadamard.hpp"

namespace pbp {
namespace {

struct BackendCase {
  Backend backend;
  unsigned ways;
  unsigned chunk_ways;
};

class PbitBothBackends : public ::testing::TestWithParam<BackendCase> {
 protected:
  std::shared_ptr<PbpContext> ctx() const {
    const auto& p = GetParam();
    return PbpContext::create(p.ways, p.backend, p.chunk_ways);
  }
};

TEST_P(PbitBothBackends, ConstantsAndHadamard) {
  auto c = ctx();
  EXPECT_FALSE(c->zero().any());
  EXPECT_TRUE(c->one().all());
  for (unsigned k = 0; k < c->ways(); ++k) {
    EXPECT_EQ(c->hadamard(k).to_aob(), hadamard_generate(c->ways(), k));
  }
}

TEST_P(PbitBothBackends, GateSemantics) {
  auto c = ctx();
  std::mt19937_64 rng(5);
  const Aob aa = Aob::from_fn(c->ways(), [&](std::size_t) { return rng() & 1; });
  const Aob bb = Aob::from_fn(c->ways(), [&](std::size_t) { return rng() & 1; });
  const Pbit a = c->from_aob(aa);
  const Pbit b = c->from_aob(bb);
  EXPECT_EQ((a & b).to_aob(), aa & bb);
  EXPECT_EQ((a | b).to_aob(), aa | bb);
  EXPECT_EQ((a ^ b).to_aob(), aa ^ bb);
  EXPECT_EQ((~a).to_aob(), ~aa);
  EXPECT_EQ(a.and_not(b).to_aob(), aa & ~bb);
}

TEST_P(PbitBothBackends, ReversibleGatesAreInvolutions) {
  auto c = ctx();
  std::mt19937_64 rng(6);
  const Aob aa = Aob::from_fn(c->ways(), [&](std::size_t) { return rng() & 1; });
  const Aob cc = Aob::from_fn(c->ways(), [&](std::size_t) { return rng() & 1; });
  Pbit a = c->from_aob(aa);
  const Pbit ctl = c->from_aob(cc);
  const Pbit orig = a;

  a.pauli_x();
  a.pauli_x();
  EXPECT_TRUE(a == orig);

  a.cnot(ctl);
  a.cnot(ctl);
  EXPECT_TRUE(a == orig);

  const Pbit c2 = c->hadamard(0);
  a.ccnot(ctl, c2);
  a.ccnot(ctl, c2);
  EXPECT_TRUE(a == orig);
}

TEST_P(PbitBothBackends, CcnotIsToffoli) {
  auto c = ctx();
  Pbit t = c->zero();
  const Pbit c1 = c->hadamard(0);
  const Pbit c2 = c->hadamard(1);
  t.ccnot(c1, c2);
  // t = H0 & H1: 1 in exactly a quarter of channels.
  EXPECT_EQ(t.popcount(), t.bit_count() / 4);
  EXPECT_TRUE(t == (c1 & c2));
}

TEST_P(PbitBothBackends, SwapAndCswap) {
  auto c = ctx();
  Pbit a = c->hadamard(0);
  Pbit b = c->hadamard(1);
  const Pbit a0 = a;
  const Pbit b0 = b;
  Pbit::swap_values(a, b);
  EXPECT_TRUE(a == b0);
  EXPECT_TRUE(b == a0);
  Pbit::swap_values(a, b);

  const Pbit ctl = c->hadamard(2);
  Pbit::cswap(a, b, ctl);
  Pbit::cswap(a, b, ctl);
  EXPECT_TRUE(a == a0);
  EXPECT_TRUE(b == b0);
}

TEST_P(PbitBothBackends, MeasurementFamily) {
  auto c = ctx();
  const Pbit h = c->hadamard(2);  // period-8 pattern: 4 zeros then 4 ones
  EXPECT_FALSE(h.meas(0));
  EXPECT_TRUE(h.meas(4));
  EXPECT_EQ(h.next_one(0), 4u);
  EXPECT_EQ(h.next_one(7), 12u);
  EXPECT_EQ(h.popcount(), h.bit_count() / 2);
  EXPECT_TRUE(h.any());
  EXPECT_FALSE(h.all());
  EXPECT_FALSE(c->zero().any());
  EXPECT_TRUE(c->one().all());
  // pop-after + meas(0) = POP identity (§2.7).
  EXPECT_EQ(h.pop_after(0) + (h.meas(0) ? 1 : 0), h.popcount());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, PbitBothBackends,
    ::testing::Values(BackendCase{Backend::kDense, 8, 0},
                      BackendCase{Backend::kDense, 12, 0},
                      BackendCase{Backend::kCompressed, 8, 4},
                      BackendCase{Backend::kCompressed, 12, 6},
                      BackendCase{Backend::kCompressed, 16, 12}));

TEST(Pbit, MixingBackendsThrows) {
  auto dense = PbpContext::create(8, Backend::kDense);
  auto comp = PbpContext::create(8, Backend::kCompressed, 4);
  Pbit a = dense->zero();
  const Pbit b = comp->zero();
  EXPECT_THROW((void)(a & b), std::invalid_argument);
}

TEST(Pbit, CompressedStorageSmallerOnRegularData) {
  auto comp = PbpContext::create(20, Backend::kCompressed, 12);
  const Pbit h = comp->hadamard(19);
  auto dense = PbpContext::create(20, Backend::kDense);
  const Pbit hd = dense->hadamard(19);
  EXPECT_LT(h.storage_bytes(), hd.storage_bytes() / 1000);
}

TEST(Pbit, ContextValidation) {
  EXPECT_THROW(PbpContext::create(kMaxAobWays + 1, Backend::kDense),
               std::invalid_argument);
  EXPECT_THROW(PbpContext::create(8, Backend::kCompressed, 12),
               std::invalid_argument);
  auto c = PbpContext::create(8, Backend::kDense);
  EXPECT_THROW(c->from_aob(Aob::zeros(9)), std::invalid_argument);
}

}  // namespace
}  // namespace pbp
