// Tests for the RE compressed representation (paper §1.2).
//
// Every Re operation is checked against the dense Aob reference at small
// entanglement, plus compression-specific behaviour at large entanglement.
#include "pbp/re.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "pbp/hadamard.hpp"

namespace pbp {
namespace {

std::shared_ptr<ChunkPool> pool4() { return std::make_shared<ChunkPool>(4); }

Aob random_aob(unsigned ways, std::mt19937_64& rng, unsigned density = 2) {
  return Aob::from_fn(ways, [&](std::size_t) { return (rng() % density) == 0; });
}

TEST(ChunkPool, InternDeduplicates) {
  auto p = pool4();
  const auto a = p->intern(Aob::zeros(4));
  const auto b = p->intern(Aob::zeros(4));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, p->zero_symbol());
  Aob x(4);
  x.set(3, true);
  const auto c = p->intern(x);
  EXPECT_NE(c, a);
  EXPECT_EQ(p->intern(x), c);
}

TEST(ChunkPool, WrongChunkSizeThrows) {
  auto p = pool4();
  EXPECT_THROW(p->intern(Aob::zeros(5)), std::invalid_argument);
}

TEST(ChunkPool, ApplyMemoizes) {
  auto p = pool4();
  std::mt19937_64 rng(1);
  const auto a = p->intern(random_aob(4, rng));
  const auto b = p->intern(random_aob(4, rng));
  const auto misses0 = p->memo_misses();
  const auto r1 = p->apply(BitOp::Xor, a, b);
  const auto misses1 = p->memo_misses();
  const auto r2 = p->apply(BitOp::Xor, a, b);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(p->memo_misses(), misses1);
  EXPECT_GE(misses1, misses0);
  // Commutative canonicalization: the swapped operand order also hits.
  const auto r3 = p->apply(BitOp::Xor, b, a);
  EXPECT_EQ(r3, r1);
  EXPECT_EQ(p->memo_misses(), misses1);
}

TEST(ChunkPool, IdentitiesAvoidWork) {
  auto p = pool4();
  std::mt19937_64 rng(2);
  const auto a = p->intern(random_aob(4, rng));
  const auto misses = p->memo_misses();
  EXPECT_EQ(p->apply(BitOp::And, a, p->zero_symbol()), p->zero_symbol());
  EXPECT_EQ(p->apply(BitOp::And, a, p->one_symbol()), a);
  EXPECT_EQ(p->apply(BitOp::Or, a, p->zero_symbol()), a);
  EXPECT_EQ(p->apply(BitOp::Or, a, p->one_symbol()), p->one_symbol());
  EXPECT_EQ(p->apply(BitOp::Xor, a, a), p->zero_symbol());
  EXPECT_EQ(p->apply(BitOp::AndNot, a, a), p->zero_symbol());
  EXPECT_EQ(p->memo_misses(), misses);  // all resolved symbolically
}

TEST(ChunkPool, NotIsInvolutionInMemo) {
  auto p = pool4();
  std::mt19937_64 rng(3);
  const auto a = p->intern(random_aob(4, rng));
  const auto na = p->apply_not(a);
  EXPECT_EQ(p->apply_not(na), a);
  EXPECT_EQ(p->chunk(na), ~p->chunk(a));
}

TEST(ChunkPool, PopcountCached) {
  auto p = pool4();
  Aob x(4);
  x.set(1, true);
  x.set(9, true);
  const auto s = p->intern(x);
  EXPECT_EQ(p->popcount(s), 2u);
  EXPECT_EQ(p->popcount(p->one_symbol()), 16u);
}

// --- Re vs dense reference ---

class ReVsDense : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReVsDense, RoundTrip) {
  const unsigned ways = GetParam();
  auto p = pool4();
  std::mt19937_64 rng(ways);
  const Aob a = random_aob(ways, rng);
  const Re r = Re::from_aob(p, a);
  EXPECT_EQ(r.to_aob(), a);
  EXPECT_EQ(r.popcount(), a.popcount());
  EXPECT_EQ(r.any(), a.any());
  EXPECT_EQ(r.all(), a.all());
}

TEST_P(ReVsDense, BinaryOpsMatch) {
  const unsigned ways = GetParam();
  auto p = pool4();
  std::mt19937_64 rng(ways * 31 + 1);
  const Aob a = random_aob(ways, rng);
  const Aob b = random_aob(ways, rng);
  for (const BitOp op :
       {BitOp::And, BitOp::Or, BitOp::Xor, BitOp::AndNot}) {
    Re r = Re::from_aob(p, a);
    r.apply(op, Re::from_aob(p, b));
    Aob expect = a;
    switch (op) {
      case BitOp::And:
        expect &= b;
        break;
      case BitOp::Or:
        expect |= b;
        break;
      case BitOp::Xor:
        expect ^= b;
        break;
      case BitOp::AndNot:
        expect &= ~b;
        break;
    }
    EXPECT_EQ(r.to_aob(), expect) << "op=" << static_cast<int>(op);
  }
}

TEST_P(ReVsDense, InvertMatches) {
  const unsigned ways = GetParam();
  auto p = pool4();
  std::mt19937_64 rng(ways * 7 + 5);
  const Aob a = random_aob(ways, rng);
  Re r = Re::from_aob(p, a);
  r.invert();
  EXPECT_EQ(r.to_aob(), ~a);
}

TEST_P(ReVsDense, NextOneMatchesEverywhere) {
  const unsigned ways = GetParam();
  auto p = pool4();
  std::mt19937_64 rng(ways * 13 + 2);
  const Aob a = random_aob(ways, rng, /*density=*/8);  // sparse
  const Re r = Re::from_aob(p, a);
  for (std::size_t ch = 0; ch < a.bit_count(); ++ch) {
    ASSERT_EQ(r.next_one(ch), a.next_one(ch)) << "ways=" << ways << " ch=" << ch;
  }
}

TEST_P(ReVsDense, PopcountAfterMatchesEverywhere) {
  const unsigned ways = GetParam();
  auto p = pool4();
  std::mt19937_64 rng(ways * 17 + 3);
  const Aob a = random_aob(ways, rng);
  const Re r = Re::from_aob(p, a);
  for (std::size_t ch = 0; ch < a.bit_count(); ++ch) {
    ASSERT_EQ(r.popcount_after(ch), a.popcount_after(ch)) << "ch=" << ch;
  }
}

TEST_P(ReVsDense, GetMatchesEverywhere) {
  const unsigned ways = GetParam();
  auto p = pool4();
  std::mt19937_64 rng(ways * 19 + 4);
  const Aob a = random_aob(ways, rng);
  const Re r = Re::from_aob(p, a);
  for (std::size_t ch = 0; ch < a.bit_count(); ++ch) {
    ASSERT_EQ(r.get(ch), a.get(ch));
  }
}

TEST_P(ReVsDense, SetMatches) {
  const unsigned ways = GetParam();
  auto p = pool4();
  std::mt19937_64 rng(ways * 23 + 5);
  Aob a = random_aob(ways, rng);
  Re r = Re::from_aob(p, a);
  for (int trial = 0; trial < 32; ++trial) {
    const std::size_t ch = rng() % a.bit_count();
    const bool v = rng() & 1;
    a.set(ch, v);
    r.set(ch, v);
  }
  EXPECT_EQ(r.to_aob(), a);
}

TEST_P(ReVsDense, HadamardMatches) {
  const unsigned ways = GetParam();
  auto p = pool4();
  for (unsigned k = 0; k <= ways; ++k) {
    EXPECT_EQ(Re::hadamard(p, ways, k).to_aob(), hadamard_generate(ways, k))
        << "k=" << k;
  }
}

TEST_P(ReVsDense, CswapMatches) {
  const unsigned ways = GetParam();
  auto p = pool4();
  std::mt19937_64 rng(ways * 29 + 6);
  Aob a = random_aob(ways, rng);
  Aob b = random_aob(ways, rng);
  const Aob c = random_aob(ways, rng);
  Re ra = Re::from_aob(p, a);
  Re rb = Re::from_aob(p, b);
  const Re rc = Re::from_aob(p, c);
  Aob::cswap(a, b, c);
  Re::cswap(ra, rb, rc);
  EXPECT_EQ(ra.to_aob(), a);
  EXPECT_EQ(rb.to_aob(), b);
}

INSTANTIATE_TEST_SUITE_P(WaysSweep, ReVsDense,
                         ::testing::Values(4u, 5u, 6u, 8u, 10u));

// --- Compression behaviour ---

TEST(Re, HadamardCompressesExponentially) {
  // H(k) for k >= chunk_ways is alternating all-0/all-1 chunk runs: run
  // count stays tiny regardless of 2^E size; storage stays O(runs).
  auto p = std::make_shared<ChunkPool>(12);  // 4096-bit chunks, as LCPC'20
  const Re h = Re::hadamard(p, 26, 25);      // 2^26-bit value = 8 MiB dense
  EXPECT_EQ(h.run_count(), 2u);
  EXPECT_LT(h.compressed_bytes(), 64u);
  EXPECT_EQ(h.dense_bytes(), std::size_t{1} << 23);
  EXPECT_EQ(h.popcount(), std::size_t{1} << 25);
}

TEST(Re, LogicOnCompressedStaysCompressed) {
  auto p = std::make_shared<ChunkPool>(12);
  Re a = Re::hadamard(p, 24, 20);
  const Re b = Re::hadamard(p, 24, 22);
  a.apply(BitOp::And, b);
  EXPECT_LE(a.run_count(), 8u);
  // a AND b is 1 in a quarter of the channels.
  EXPECT_EQ(a.popcount(), (std::size_t{1} << 24) / 4);
}

TEST(Re, NextOneOnHugeValueIsFast) {
  auto p = std::make_shared<ChunkPool>(12);
  const Re h = Re::hadamard(p, 26, 25);
  // First 1 strictly after channel 0 is the start of the upper half.
  EXPECT_EQ(h.next_one(0), std::size_t{1} << 25);
  EXPECT_EQ(h.next_one((std::size_t{1} << 26) - 1), std::nullopt);
}

TEST(Re, WaysBelowChunkThrows) {
  auto p = std::make_shared<ChunkPool>(12);
  EXPECT_THROW(Re::zeros(p, 8), std::invalid_argument);
}

TEST(Re, MixedPoolsThrow) {
  auto p = pool4();
  auto q = pool4();
  Re a = Re::zeros(p, 8);
  const Re b = Re::zeros(q, 8);
  EXPECT_THROW(a.apply(BitOp::And, b), std::invalid_argument);
}

TEST(Re, EqualityIsCanonical) {
  auto p = pool4();
  std::mt19937_64 rng(99);
  const Aob a = random_aob(8, rng);
  // Build the same value two different ways.
  Re r1 = Re::from_aob(p, a);
  Re r2 = Re::zeros(p, 8);
  for (std::size_t ch = 0; ch < a.bit_count(); ++ch) {
    if (a.get(ch)) r2.set(ch, true);
  }
  EXPECT_TRUE(r1 == r2);
}

}  // namespace
}  // namespace pbp
