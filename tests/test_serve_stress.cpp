// test_serve_stress.cpp — serve-layer soak (labels `serve`, `soak`; the
// TSAN target of scripts/check.sh tsan).
//
// 200+ jobs against 8 worker threads with a deliberately hostile mix:
// clean runs on every model, fault-injected runs, hopeless (quarantining)
// runs, runaway programs under short deadlines, mid-flight cancellations,
// memory-pressured RE jobs, and a monitoring thread hammering progress()
// and stats() throughout.  The contract: exactly one terminal JobReport per
// admitted job, no losses, no duplicates, tallies that add up, and a clean
// drain at the end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "asm/assembler.hpp"
#include "asm/programs.hpp"
#include "serve/job_server.hpp"

namespace tangled::serve {
namespace {

using namespace std::chrono_literals;

bool factors_ok(const CpuState& cpu) {
  return cpu.regs[0] == 5 && cpu.regs[1] == 3;
}

TEST(ServeStress, MixedWorkloadNeverLosesAJob) {
  constexpr unsigned kJobs = 240;
  const Program fig10 = assemble(figure10_source());
  const Program spin = assemble("loop: br loop\n");

  JobServer server({.threads = 8,
                    .queue_capacity = 32,
                    .memory_budget_bytes = 48u << 20,
                    .retry_max = 2,
                    .backoff_base = 1ms,
                    .backoff_cap = 8ms});

  // Monitoring thread: polls live state the whole time.  Under TSAN this is
  // what proves QatStats snapshots and server counters are race-free.
  std::atomic<bool> monitoring{true};
  std::atomic<std::uint64_t> polls{0};
  std::thread monitor([&] {
    while (monitoring.load(std::memory_order_relaxed)) {
      const ServerStats s = server.stats();
      EXPECT_LE(s.in_flight_bytes, server.config().memory_budget_bytes);
      for (std::uint64_t id = 1; id <= kJobs; ++id) {
        if (const auto p = server.progress(id)) {
          polls.fetch_add(1 + p->qat.ops / (p->qat.ops + 1),
                          std::memory_order_relaxed);
        }
      }
      std::this_thread::sleep_for(1ms);
    }
  });

  static const SimKind kKinds[] = {SimKind::kFunc,  SimKind::kMulti,
                                   SimKind::kMultiFsm, SimKind::kPipe4,
                                   SimKind::kPipe5, SimKind::kPipe5NoFwd,
                                   SimKind::kRtl};
  std::vector<JobServer::JobId> ids;
  std::map<std::string, unsigned> expected;  // flavor -> count submitted
  ids.reserve(kJobs);

  // Concurrent canceller: "cancel" jobs spin forever, so they must be
  // cancelled while submission is still in progress — 8 of them would
  // otherwise pin every worker and deadlock the bounded queue.  The small
  // delay makes most cancellations land mid-run rather than mid-queue.
  std::mutex cancel_mu;
  std::vector<JobServer::JobId> pending_cancel;
  std::atomic<bool> cancelling{true};
  std::thread canceller([&] {
    while (true) {
      std::vector<JobServer::JobId> batch;
      {
        std::lock_guard lk(cancel_mu);
        batch.swap(pending_cancel);
      }
      for (const auto id : batch) server.cancel(id);
      if (batch.empty() && !cancelling.load(std::memory_order_relaxed)) {
        return;
      }
      std::this_thread::sleep_for(2ms);
    }
  });

  for (unsigned i = 0; i < kJobs; ++i) {
    Job j;
    j.sim = kKinds[i % std::size(kKinds)];
    const unsigned flavor = i % 10;
    if (flavor < 4) {
      // Clean factoring run.
      j.name = "clean";
      j.program = fig10;
      j.max_instructions = 20'000;
      j.checkpoint_every = 25;
      j.validate = factors_ok;
    } else if (flavor < 7) {
      // Fault-injected factoring run: must recover or quarantine, never
      // report a wrong answer as completed.
      j.name = "fault";
      j.program = fig10;
      j.max_instructions = 20'000;
      j.checkpoint_every = 25;
      j.fault_plan = FaultPlan::random(1000 + i, 6, 120, 8);
      j.validate = factors_ok;
    } else if (flavor == 7) {
      // Runaway under a short deadline.
      j.name = "deadline";
      j.program = spin;
      j.sim = SimKind::kFunc;  // instruction-atomic → deadline polls apply
      j.max_instructions = 2'000'000'000ULL;
      j.deadline = 40ms;
    } else if (flavor == 8) {
      // Runaway that we cancel from outside.
      j.name = "cancel";
      j.program = spin;
      j.sim = SimKind::kFunc;
      j.max_instructions = 2'000'000'000ULL;
    } else {
      // RE job under pool pressure: migrates or quarantines, budget held.
      j.name = "re-pressure";
      j.program = fig10;
      j.backend = pbp::Backend::kCompressed;
      j.ways = 16;
      j.max_instructions = 20'000;
      j.fault_plan.max_pool_symbols = 8;
    }
    ++expected[j.name];
    const auto id = server.submit(std::move(j));
    ASSERT_TRUE(id.has_value()) << "submission " << i << " refused";
    ids.push_back(*id);
    if (flavor == 8) {
      std::lock_guard lk(cancel_mu);
      pending_cancel.push_back(*id);
    }
  }
  cancelling.store(false, std::memory_order_relaxed);

  const auto reports = server.wait_all();
  monitoring.store(false, std::memory_order_relaxed);
  monitor.join();
  canceller.join();

  // Exactly one terminal report per admitted job, ids exact.
  ASSERT_EQ(reports.size(), ids.size());
  std::set<std::uint64_t> seen;
  for (const auto& r : reports) {
    EXPECT_TRUE(seen.insert(r.id).second) << "duplicate report for " << r.id;
  }
  for (const auto id : ids) {
    EXPECT_TRUE(seen.count(id)) << "job " << id << " lost";
  }

  std::map<JobOutcome, unsigned> by_outcome;
  for (const auto& r : reports) {
    ++by_outcome[r.outcome];
    switch (r.outcome) {
      case JobOutcome::kCompleted:
        if (r.name == "clean" || r.name == "fault") {
          // validate() enforced factors_ok, so completion == right answer.
          EXPECT_GT(r.instructions, 0u);
        }
        if (r.name == "fault" && r.attempts > 1) {
          EXPECT_TRUE(r.recovered) << r.to_string();
        }
        break;
      case JobOutcome::kQuarantined:
        EXPECT_TRUE(r.name == "fault" || r.name == "re-pressure")
            << r.to_string();
        break;
      case JobOutcome::kDeadlineExpired:
        EXPECT_EQ(r.name, "deadline") << r.to_string();
        break;
      case JobOutcome::kCancelled:
        EXPECT_EQ(r.name, "cancel") << r.to_string();
        break;
      default:
        ADD_FAILURE() << "unexpected outcome: " << r.to_string();
    }
  }
  // Every clean job completed; every deadline job expired; every cancel job
  // cancelled (they spin forever, so nothing else can terminate them).
  EXPECT_EQ(by_outcome[JobOutcome::kDeadlineExpired], expected["deadline"]);
  EXPECT_EQ(by_outcome[JobOutcome::kCancelled], expected["cancel"]);
  EXPECT_GE(by_outcome[JobOutcome::kCompleted], expected["clean"]);

  // Tallies agree with the published reports, and the drain left nothing.
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, kJobs);
  EXPECT_EQ(s.completed, by_outcome[JobOutcome::kCompleted]);
  EXPECT_EQ(s.quarantined, by_outcome[JobOutcome::kQuarantined]);
  EXPECT_EQ(s.deadline_expired, by_outcome[JobOutcome::kDeadlineExpired]);
  EXPECT_EQ(s.cancelled, by_outcome[JobOutcome::kCancelled]);
  EXPECT_EQ(s.in_flight_bytes, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.active_jobs, 0u);
  EXPECT_GT(polls.load(), 0u);

  server.shutdown(/*drain=*/true);  // idempotent with the destructor
}

// Hammer construction/teardown: a server that is created, loaded, and
// abort-shutdown repeatedly must neither deadlock nor leak reports.
TEST(ServeStress, RepeatedAbortShutdownIsClean) {
  const Program spin = assemble("loop: br loop\n");
  for (int round = 0; round < 10; ++round) {
    JobServer server({.threads = 4, .queue_capacity = 8});
    std::vector<JobServer::JobId> ids;
    for (int i = 0; i < 8; ++i) {
      Job j;
      j.name = "spin";
      j.program = spin;
      j.max_instructions = 2'000'000'000ULL;
      const auto id = server.submit(std::move(j));
      if (id) ids.push_back(*id);
    }
    server.shutdown(/*drain=*/false);
    for (const auto id : ids) {
      EXPECT_EQ(server.wait(id).outcome, JobOutcome::kCancelled);
    }
  }
}

}  // namespace
}  // namespace tangled::serve
