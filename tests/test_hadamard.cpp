// Tests for the Hadamard initializer models (paper §2.3, §3.2, Figure 7).
#include "pbp/hadamard.hpp"

#include <gtest/gtest.h>

namespace pbp {
namespace {

// Cross-check all three hardware models against the single-channel reference
// definition for every k at every ways up to 12.
class HadamardModels : public ::testing::TestWithParam<unsigned> {};

TEST_P(HadamardModels, GeneratorMatchesReference) {
  const unsigned ways = GetParam();
  for (unsigned k = 0; k < ways; ++k) {
    const Aob a = hadamard_generate(ways, k);
    for (std::size_t e = 0; e < a.bit_count(); ++e) {
      ASSERT_EQ(a.get(e), hadamard_bit(k, e))
          << "ways=" << ways << " k=" << k << " e=" << e;
    }
  }
}

TEST_P(HadamardModels, LutMatchesGenerator) {
  const unsigned ways = GetParam();
  const HadamardLut lut(ways);
  for (unsigned k = 0; k < ways; ++k) {
    EXPECT_EQ(lut.select(k), hadamard_generate(ways, k)) << "k=" << k;
  }
}

TEST_P(HadamardModels, RegisterFileMatchesGenerator) {
  const unsigned ways = GetParam();
  const HadamardRegisterFile rf(ways);
  EXPECT_EQ(rf.zero(), Aob::zeros(ways));
  EXPECT_EQ(rf.one(), Aob::ones(ways));
  for (unsigned k = 0; k < ways; ++k) {
    EXPECT_EQ(rf.h(k), hadamard_generate(ways, k)) << "k=" << k;
  }
  // §5 layout: @0 = 0, @1 = 1, @2 = H(0), @3 = H(1), ...
  EXPECT_EQ(rf.reg(0), Aob::zeros(ways));
  EXPECT_EQ(rf.reg(1), Aob::ones(ways));
  for (unsigned k = 0; k < ways; ++k) {
    EXPECT_EQ(rf.reg(2 + k), hadamard_generate(ways, k));
  }
}

INSTANTIATE_TEST_SUITE_P(WaysSweep, HadamardModels,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           10u, 12u, 16u));

// §2.3's worked examples.
TEST(Hadamard, HadZeroAlternates) {
  const Aob a = hadamard_generate(8, 0);
  for (std::size_t e = 0; e < a.bit_count(); ++e) {
    EXPECT_EQ(a.get(e), e % 2 == 1) << "e=" << e;
  }
}

TEST(Hadamard, Had15SplitsInHalf) {
  // "The AoB value created by had @a,15 would consist of 32,768 0 bits
  // followed by 32,768 1 bits."
  const Aob a = hadamard_generate(16, 15);
  for (std::size_t e : {std::size_t{0}, std::size_t{100}, std::size_t{32767}}) {
    EXPECT_FALSE(a.get(e));
  }
  for (std::size_t e : {std::size_t{32768}, std::size_t{40000},
                        std::size_t{65535}}) {
    EXPECT_TRUE(a.get(e));
  }
  EXPECT_EQ(a.popcount(), 32768u);
}

TEST(Hadamard, RunStructure) {
  // had @a,k is runs of 2^k zeros then 2^k ones, repeating.
  for (unsigned k = 0; k < 8; ++k) {
    const Aob a = hadamard_generate(8, k);
    const std::size_t run = std::size_t{1} << k;
    for (std::size_t e = 0; e < a.bit_count(); ++e) {
      EXPECT_EQ(a.get(e), ((e / run) % 2) == 1) << "k=" << k << " e=" << e;
    }
  }
}

TEST(Hadamard, EveryPatternIsBalanced) {
  // Each H(k) has exactly half its channels 1 — the 50/50 superposition.
  for (unsigned ways : {4u, 8u, 12u}) {
    for (unsigned k = 0; k < ways; ++k) {
      EXPECT_EQ(hadamard_generate(ways, k).popcount(),
                (std::size_t{1} << ways) / 2);
    }
  }
}

TEST(Hadamard, OutOfRangeKIsAllZero) {
  // Figure 7's Verilog takes the LSB of (i >> h); h >= WAYS gives 0.
  EXPECT_FALSE(hadamard_generate(8, 8).any());
  EXPECT_FALSE(hadamard_generate(8, 15).any());
  const HadamardLut lut(8);
  EXPECT_FALSE(lut.select(9).any());
}

TEST(Hadamard, ReversibleViaXorWithConstant) {
  // §5: "a quantum-like reversible Hadamard operator can be implemented by
  // XOR with a Hadamard constant register."
  const Aob h3 = hadamard_generate(10, 3);
  Aob v = hadamard_generate(10, 7);
  const Aob orig = v;
  v ^= h3;
  EXPECT_NE(v, orig);
  v ^= h3;
  EXPECT_EQ(v, orig);
}

TEST(Hadamard, DisjointChannelSetsAreIndependent) {
  // Two pbits using disjoint Hadamard indices take all 4 combinations
  // across channels — the independence Figure 9's b and c rely on.
  const Aob b0 = hadamard_generate(8, 0);
  const Aob c0 = hadamard_generate(8, 4);
  bool seen[2][2] = {{false, false}, {false, false}};
  for (std::size_t e = 0; e < b0.bit_count(); ++e) {
    seen[b0.get(e)][c0.get(e)] = true;
  }
  EXPECT_TRUE(seen[0][0] && seen[0][1] && seen[1][0] && seen[1][1]);
}

}  // namespace
}  // namespace pbp
