// Tests for the Qat coprocessor engine (paper §2.2–§2.7, §3.2–§3.3).
#include "arch/qat_engine.hpp"

#include <gtest/gtest.h>

#include <random>

#include "pbp/hadamard.hpp"

namespace tangled {
namespace {

using pbp::Aob;

TEST(QatEngine, RegistersStartZero) {
  QatEngine q(8);
  for (unsigned r = 0; r < kNumQatRegs; r += 37) {
    EXPECT_FALSE(q.reg(r).any());
  }
  EXPECT_EQ(q.channels(), 256u);
}

TEST(QatEngine, Initializers) {
  QatEngine q(8);
  q.one(5);
  EXPECT_TRUE(q.reg(5).all());
  q.zero(5);
  EXPECT_FALSE(q.reg(5).any());
  q.had(7, 3);
  EXPECT_EQ(q.reg(7), pbp::hadamard_generate(8, 3));
}

TEST(QatEngine, LogicOps) {
  QatEngine q(8);
  q.had(0, 0);
  q.had(1, 1);
  q.and_(2, 0, 1);
  q.or_(3, 0, 1);
  q.xor_(4, 0, 1);
  const Aob h0 = pbp::hadamard_generate(8, 0);
  const Aob h1 = pbp::hadamard_generate(8, 1);
  EXPECT_EQ(q.reg(2), h0 & h1);
  EXPECT_EQ(q.reg(3), h0 | h1);
  EXPECT_EQ(q.reg(4), h0 ^ h1);
}

TEST(QatEngine, ReversibleGates) {
  QatEngine q(8);
  q.had(0, 2);
  q.had(1, 5);
  q.had(2, 7);
  const Aob a0 = q.reg(0);
  q.not_(0);
  EXPECT_EQ(q.reg(0), ~a0);
  q.not_(0);
  EXPECT_EQ(q.reg(0), a0);

  q.cnot(0, 1);
  EXPECT_EQ(q.reg(0), a0 ^ q.reg(1));
  q.cnot(0, 1);
  EXPECT_EQ(q.reg(0), a0);

  q.ccnot(0, 1, 2);
  EXPECT_EQ(q.reg(0), a0 ^ (q.reg(1) & q.reg(2)));
  q.ccnot(0, 1, 2);
  EXPECT_EQ(q.reg(0), a0);
}

TEST(QatEngine, CnotEqualsXorSelf) {
  // §5: "cnot @a,@b is actually equivalent to xor @a,@a,@b".
  QatEngine q1(8);
  QatEngine q2(8);
  q1.had(0, 1);
  q1.had(1, 4);
  q2.had(0, 1);
  q2.had(1, 4);
  q1.cnot(0, 1);
  q2.xor_(0, 0, 1);
  EXPECT_EQ(q1.reg(0), q2.reg(0));
}

TEST(QatEngine, SwapAndCswap) {
  QatEngine q(8);
  q.had(0, 0);
  q.had(1, 1);
  q.had(2, 2);
  const Aob a0 = q.reg(0);
  const Aob a1 = q.reg(1);
  q.swap(0, 1);
  EXPECT_EQ(q.reg(0), a1);
  EXPECT_EQ(q.reg(1), a0);
  q.swap(0, 1);

  q.cswap(0, 1, 2);
  q.cswap(0, 1, 2);  // involution
  EXPECT_EQ(q.reg(0), a0);
  EXPECT_EQ(q.reg(1), a1);
}

TEST(QatEngine, SwapSameRegisterIsIdentity) {
  QatEngine q(8);
  q.had(3, 4);
  const Aob before = q.reg(3);
  q.swap(3, 3);
  EXPECT_EQ(q.reg(3), before);
  q.cswap(3, 3, 3);
  EXPECT_EQ(q.reg(3), before);
}

TEST(QatEngine, CswapAliasedControl) {
  // cswap @a,@b,@a: channels where @a is 1 exchange — result must match the
  // mathematical Fredkin applied with the ORIGINAL control value.
  QatEngine q(8);
  q.had(0, 2);
  q.had(1, 5);
  const Aob a = q.reg(0);
  const Aob b = q.reg(1);
  Aob ea = a;
  Aob eb = b;
  Aob::cswap(ea, eb, a);
  q.cswap(0, 1, 0);
  EXPECT_EQ(q.reg(0), ea);
  EXPECT_EQ(q.reg(1), eb);
}

TEST(QatEngine, MeasurementInstructions) {
  QatEngine q(8);
  q.had(123, 4);
  // §2.7's worked example: next after channel 42 of H(4) is 48.
  EXPECT_EQ(q.next(123, 42), 48u);
  EXPECT_EQ(q.meas(123, 48), 1u);
  EXPECT_EQ(q.meas(123, 42), 0u);
  // pop: strictly-after count (§2.7); H(4) has 128 ones total.
  EXPECT_EQ(q.pop(123, 0) + q.meas(123, 0), 128u);
  // next on an all-zero register aliases "none" to 0.
  q.zero(9);
  EXPECT_EQ(q.next(9, 0), 0u);
}

TEST(QatEngine, MeasurementIsNonDestructive) {
  QatEngine q(8);
  q.had(5, 3);
  const Aob before = q.reg(5);
  for (std::uint16_t ch = 0; ch < 256; ++ch) {
    (void)q.meas(5, ch);
    (void)q.next(5, ch);
    (void)q.pop(5, ch);
  }
  EXPECT_EQ(q.reg(5), before);
}

TEST(QatEngine, ExecuteDispatch) {
  QatEngine q(8);
  std::uint16_t d = 0;
  Instr had{};
  had.op = Op::kQHad;
  had.qa = 0;
  had.k = 4;
  q.execute(had, d);
  Instr next{};
  next.op = Op::kQNext;
  next.qa = 0;
  d = 42;
  q.execute(next, d);
  EXPECT_EQ(d, 48u);
  Instr meas{};
  meas.op = Op::kQMeas;
  meas.qa = 0;
  d = 48;
  q.execute(meas, d);
  EXPECT_EQ(d, 1u);
  Instr bad{};
  bad.op = Op::kAdd;
  EXPECT_THROW(q.execute(bad, d), std::invalid_argument);
}

TEST(QatEngine, StatsCountPorts) {
  // §5's ablation arguments hinge on port counts: ccnot/cswap need a third
  // read port, swap/cswap a second write port.
  QatEngine q(8);
  q.reset_stats();
  q.ccnot(0, 1, 2);
  EXPECT_EQ(q.stats().reg_reads, 3u);
  EXPECT_EQ(q.stats().reg_writes, 1u);
  q.reset_stats();
  q.cswap(0, 1, 2);
  EXPECT_EQ(q.stats().reg_reads, 3u);
  EXPECT_EQ(q.stats().reg_writes, 2u);
  q.reset_stats();
  q.and_(0, 1, 2);
  EXPECT_EQ(q.stats().reg_reads, 2u);
  EXPECT_EQ(q.stats().reg_writes, 1u);
}

TEST(QatEngine, WaysValidation) {
  EXPECT_THROW(QatEngine(0), std::invalid_argument);
  EXPECT_THROW(QatEngine(31), std::invalid_argument);
  QatEngine q(4);
  EXPECT_THROW(q.set_reg(0, Aob::zeros(5)), std::invalid_argument);
}

// --- Structural model cross-checks (Figures 7 and 8) ---

class StructuralWays : public ::testing::TestWithParam<unsigned> {};

TEST_P(StructuralWays, HadStructuralMatchesGenerator) {
  const unsigned ways = GetParam();
  for (unsigned k = 0; k < ways; ++k) {
    EXPECT_EQ(QatEngine::had_structural(ways, k),
              pbp::hadamard_generate(ways, k))
        << "k=" << k;
  }
}

TEST_P(StructuralWays, NextStructuralMatchesBehaviouralExhaustive) {
  const unsigned ways = GetParam();
  std::mt19937_64 rng(ways * 1234 + 1);
  for (int trial = 0; trial < 4; ++trial) {
    const unsigned density = trial + 2;
    const Aob a = Aob::from_fn(
        ways, [&](std::size_t) { return (rng() % density) == 0; });
    const std::size_t n = a.bit_count();
    for (std::size_t s = 0; s < n; ++s) {
      const auto ref = a.next_one(s);
      const std::uint16_t want =
          ref ? static_cast<std::uint16_t>(*ref) : 0;
      ASSERT_EQ(QatEngine::next_structural(a, static_cast<std::uint16_t>(s)),
                want)
          << "ways=" << ways << " s=" << s;
    }
  }
}

TEST_P(StructuralWays, NextStructuralOnHadamards) {
  const unsigned ways = GetParam();
  for (unsigned k = 0; k < ways; ++k) {
    const Aob h = pbp::hadamard_generate(ways, k);
    for (std::size_t s = 0; s < h.bit_count(); s += 3) {
      const auto ref = h.next_one(s);
      const std::uint16_t want = ref ? static_cast<std::uint16_t>(*ref) : 0;
      ASSERT_EQ(QatEngine::next_structural(h, static_cast<std::uint16_t>(s)),
                want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WaysSweep, StructuralWays,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u, 10u));

TEST(QatEngine, NextStructural16Way) {
  // Full-size hardware: 65,536-bit AoB, spot-checked against behavioural.
  std::mt19937_64 rng(77);
  const Aob a =
      Aob::from_fn(16, [&](std::size_t) { return (rng() % 97) == 0; });
  for (std::uint16_t s :
       {std::uint16_t{0}, std::uint16_t{1}, std::uint16_t{1000},
        std::uint16_t{32767}, std::uint16_t{65000}, std::uint16_t{65535}}) {
    const auto ref = a.next_one(s);
    EXPECT_EQ(QatEngine::next_structural(a, s),
              ref ? static_cast<std::uint16_t>(*ref) : 0);
  }
}

TEST(QatEngine, GateDelayModelMatchesSection33) {
  // Wide OR: total levels grow linearly in WAYS.
  // 2-input OR: the reduction term is sum(k) = WAYS(WAYS-1)/2 — quadratic.
  const unsigned wide16 = QatEngine::next_gate_delay(16, 0);
  const unsigned wide8 = QatEngine::next_gate_delay(8, 0);
  const unsigned narrow16 = QatEngine::next_gate_delay(16, 2);
  const unsigned narrow8 = QatEngine::next_gate_delay(8, 2);
  // Linear: doubling WAYS roughly doubles the wide-OR delay.
  EXPECT_LT(wide16, 3 * wide8);
  // Quadratic: doubling WAYS roughly quadruples the reduction-dominated
  // 2-input delay.
  EXPECT_GT(narrow16, 3 * narrow8 - wide8);
  // The quadratic model is strictly worse, and the gap widens with WAYS.
  EXPECT_GT(narrow16 - wide16, narrow8 - wide8);
  // Intermediate fan-in sits between the extremes.
  const unsigned mid16 = QatEngine::next_gate_delay(16, 4);
  EXPECT_LT(mid16, narrow16);
  EXPECT_GT(mid16, wide16);
}

}  // namespace
}  // namespace tangled
