// Assembly program corpus: realistic Tangled/Qat programs with golden
// console output, each executed on every implementation model (single-cycle,
// multi-cycle, 4/5-stage accounting pipelines, latch-level RTL pipeline).
// One program per ISA-interplay theme — loops, memory, subroutine linkage,
// the stack registers, bfloat16 kernels, Qat measurement idioms.
#include <gtest/gtest.h>

#include <memory>

#include "arch/rtl_pipeline.hpp"
#include "arch/simulators.hpp"

namespace tangled {
namespace {

struct CorpusProgram {
  const char* name;
  const char* source;
  const char* expected_console;
};

const CorpusProgram kCorpus[] = {
    {"fibonacci",
     // Iterative Fibonacci: F(10) = 55.
     R"(      lex $1,0        ; a = F(0)
      lex $2,1        ; b = F(1)
      lex $3,10       ; n
loop: copy $4,$2      ; t = b
      add $2,$1       ; b = a + b
      copy $1,$4      ; a = t
      lex $5,-1
      add $3,$5
      brt $3,loop
      sys $1          ; 55
      sys
)",
     "55\n"},

    {"gcd_subroutine",
     // Euclid by subtraction, as a $ra-linked subroutine: gcd(54, 24) = 6.
     R"(      lex $1,54
      lex $2,24
      li $ra,back
      jump gcd
back: sys $1          ; 6
      sys

gcd:  copy $3,$1
      xor $3,$2
      brf $3,done     ; a == b
      copy $3,$1
      slt $3,$2       ; a < b ?
      brt $3,less
      neg $2
      add $1,$2       ; a -= b
      neg $2
      br gcd
less: neg $1
      add $2,$1       ; b -= a
      neg $1
      br gcd
done: jumpr $ra
)",
     "6\n"},

    {"bubble_sort",
     // In-memory bubble sort of five words, printed ascending.
     R"(n = 5
      lex $7,n
      lex $6,-1
      add $7,$6       ; passes = n-1
pass: li $1,arr       ; p = &arr[0]
      lex $2,n
      add $2,$6       ; inner = n-1 compares
scan: load $3,$1      ; x = *p
      copy $4,$1
      lex $5,1
      add $4,$5       ; q = p+1
      load $5,$4      ; y = *q
      copy $8,$5
      slt $8,$3       ; y < x ?
      brf $8,noswap
      store $5,$1     ; *p = y
      store $3,$4     ; *q = x
noswap:
      lex $5,1
      add $1,$5       ; ++p
      add $2,$6       ; --inner
      brt $2,scan
      add $7,$6       ; --passes
      brt $7,pass
      li $1,arr
      lex $2,n
print:load $3,$1
      sys $3
      lex $5,1
      add $1,$5
      add $2,$6
      brt $2,print
      sys
arr:  .word 9
      .word 3
      .word 7
      .word 1
      .word 5
)",
     "1\n3\n5\n7\n9\n"},

    {"stack_push_pop",
     // Classic $sp usage: push three values, pop and accumulate.
     R"(      li $sp,0xF000
      lex $1,1
      lex $2,-1
      add $sp,$2
      store $1,$sp    ; push 1
      lex $1,2
      add $sp,$2
      store $1,$sp    ; push 2
      lex $1,3
      add $sp,$2
      store $1,$sp    ; push 3
      lex $4,0
      lex $5,1
      load $3,$sp     ; pop 3
      add $4,$3
      add $sp,$5
      load $3,$sp     ; pop 2
      add $4,$3
      add $sp,$5
      load $3,$sp     ; pop 1
      add $4,$3
      add $sp,$5
      sys $4          ; 6
      sys
)",
     "6\n"},

    {"bf16_kernel",
     // (3.0 + 4.0) * (1/4) = 1.75; int truncation prints 1.
     R"(      lex $1,3
      float $1
      lex $2,4
      float $2
      addf $1,$2      ; 7.0
      copy $3,$2
      recip $3        ; 0.25
      mulf $1,$3      ; 1.75
      int $1
      sys $1          ; 1
      lex $4,-6
      float $4
      negf $4         ; 6.0
      int $4
      sys $4          ; 6
      sys
)",
     "1\n6\n"},

    {"popcount_shift",
     // Software popcount of 0xB7 (= 6 ones) with shift/and.
     R"(      li $1,0xB7
      lex $2,0        ; count
      lex $3,16       ; bits
      lex $4,-1
bit:  copy $5,$1
      lex $6,1
      and $5,$6
      add $2,$5
      shift $1,$4     ; logical? arithmetic right by 1
      li $6,0x7FFF
      and $1,$6       ; mask sign fill: logical shift
      add $3,$4
      brt $3,bit
      sys $2          ; 6
      sys
)",
     "6\n"},

    {"qat_any_all",
     // §2.7's ANY and ALL recipes, printed as flags.
     R"(      had @5,2
      zero @6
      one @7
; ANY @5: next after 0, else meas channel 0
      lex $1,0
      next $1,@5
      brt $1,a1
      lex $1,0
      meas $1,@5
a1:   brf $1,a2
      lex $1,1
a2:   sys $1          ; 1  (H(2) has ones)
; ANY @6
      lex $2,0
      next $2,@6
      brt $2,b1
      lex $2,0
      meas $2,@6
b1:   brf $2,b2
      lex $2,1
b2:   sys $2          ; 0
; ALL @7 = NOT ANY(NOT @7)
      not @7
      lex $3,0
      next $3,@7
      brt $3,c1
      lex $3,0
      meas $3,@7
c1:   not @7          ; restore
      lex $4,1
      brf $3,c2
      lex $4,0
c2:   sys $4          ; 1
      sys
)",
     "1\n0\n1\n"},

    {"next_worked_example",
     // The paper's §2.7 worked example, printed: next 1 after channel 42 of
     // H(4) is 48; pop confirms 128 ones total.
     R"(      had @123,4
      lex $8,42
      next $8,@123
      sys $8          ; 48
      lex $9,0
      pop $9,@123
      lex $10,0
      meas $10,@123
      add $9,$10
      sys $9          ; 128
      sys
)",
     "48\n128\n"},
};

enum class Model { kFunctional, kMultiCycle, kPipe4, kPipe5, kRtl };

struct Case {
  const CorpusProgram* program;
  Model model;
};

class Corpus : public ::testing::TestWithParam<Case> {};

TEST_P(Corpus, GoldenConsoleOutput) {
  const auto& [prog, model] = GetParam();
  const Program p = assemble(prog->source);
  std::string console;
  bool halted = false;
  if (model == Model::kRtl) {
    RtlPipelineSim sim(8);
    sim.load(p);
    halted = sim.run(1'000'000).halted;
    console = sim.console();
  } else {
    std::unique_ptr<SimBase> sim;
    switch (model) {
      case Model::kFunctional:
        sim = std::make_unique<FunctionalSim>(8);
        break;
      case Model::kMultiCycle:
        sim = std::make_unique<MultiCycleSim>(8);
        break;
      case Model::kPipe4:
        sim = std::make_unique<PipelineSim>(
            8, PipelineConfig{.stages = 4, .forwarding = true});
        break;
      default:
        sim = std::make_unique<PipelineSim>(8);
        break;
    }
    sim->load(p);
    halted = sim->run(1'000'000).halted;
    console = sim->console();
  }
  ASSERT_TRUE(halted) << prog->name;
  EXPECT_EQ(console, prog->expected_console) << prog->name;
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& prog : kCorpus) {
    for (const Model m : {Model::kFunctional, Model::kMultiCycle,
                          Model::kPipe4, Model::kPipe5, Model::kRtl}) {
      cases.push_back({&prog, m});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const char* model = nullptr;
  switch (info.param.model) {
    case Model::kFunctional:
      model = "functional";
      break;
    case Model::kMultiCycle:
      model = "multicycle";
      break;
    case Model::kPipe4:
      model = "pipe4";
      break;
    case Model::kPipe5:
      model = "pipe5";
      break;
    case Model::kRtl:
      model = "rtl";
      break;
  }
  return std::string(info.param.program->name) + "_" + model;
}

INSTANTIATE_TEST_SUITE_P(Programs, Corpus, ::testing::ValuesIn(all_cases()),
                         case_name);

}  // namespace
}  // namespace tangled
