// Differential trap equivalence: every simulator model must report the SAME
// TrapKind, trap PC, and architectural state for a corpus of faulting
// programs — an architectural trap is part of the ISA contract, not a
// modelling detail.  Also pins the wrong-path rule: a trap in a flushed
// (wrong-path) pipeline slot must NOT fire on the latch-level model.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "arch/bfloat16.hpp"
#include "arch/multicycle_fsm.hpp"
#include "arch/rtl_pipeline.hpp"
#include "arch/simulators.hpp"
#include "asm/assembler.hpp"
#include "asm/programs.hpp"

namespace tangled {
namespace {

struct Outcome {
  bool halted = false;
  Trap trap{};
  std::uint16_t pc = 0;
  std::array<std::uint16_t, kNumRegs> regs{};
  std::string model;

  bool operator==(const Outcome& o) const {
    return halted == o.halted && trap == o.trap && pc == o.pc &&
           regs == o.regs;
  }
};

template <typename Sim>
Outcome run_on(Sim&& sim, const Program& p, const char* model,
               const FaultPlan* plan = nullptr) {
  sim.load(p);
  if (plan != nullptr) sim.set_fault_plan(*plan);
  const SimStats st = sim.run(100'000);
  Outcome o;
  o.halted = st.halted;
  o.trap = sim.cpu().trap;
  o.pc = sim.cpu().pc;
  o.regs = sim.cpu().regs;
  o.model = model;
  return o;
}

/// Run `src` on all five implementation models and require identical
/// trap kind, trap PC, final PC, and register file.
std::vector<Outcome> run_everywhere(const std::string& src, unsigned ways = 8,
                                    pbp::Backend backend = pbp::Backend::kDense,
                                    const FaultPlan* plan = nullptr) {
  const Program p = assemble(src);
  std::vector<Outcome> outs;
  outs.push_back(run_on(FunctionalSim(ways, backend), p, "func", plan));
  outs.push_back(run_on(MultiCycleSim(ways, backend), p, "multi", plan));
  outs.push_back(run_on(
      PipelineSim(ways, {.stages = 5, .forwarding = true}, backend), p,
      "pipe5", plan));
  outs.push_back(run_on(MultiCycleFsmSim(ways, backend), p, "multi-fsm",
                        plan));
  outs.push_back(run_on(RtlPipelineSim(ways, backend), p, "rtl", plan));
  return outs;
}

void expect_all_equal(const std::vector<Outcome>& outs) {
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_EQ(outs[0], outs[i])
        << outs[i].model << " diverged from " << outs[0].model << ": trap "
        << to_string(outs[i].trap) << " vs " << to_string(outs[0].trap)
        << ", pc " << outs[i].pc << " vs " << outs[0].pc;
  }
}

TEST(Traps, IllegalOpcodeDecodesInvalid) {
  EXPECT_EQ(decode(0xf000, 0).instr.op, Op::kInvalid);
}

TEST(Traps, IllegalInstructionAllModels) {
  const auto outs = run_everywhere(
      "\tlex $1,5\n"
      "\t.word 0xf000\n"
      "\tsys\n");
  expect_all_equal(outs);
  ASSERT_TRUE(outs[0].halted);
  EXPECT_EQ(outs[0].trap.kind, TrapKind::kIllegalInstruction);
  EXPECT_EQ(outs[0].trap.pc, 1u);  // pc stays at the faulting word
  EXPECT_EQ(outs[0].pc, 1u);
  EXPECT_EQ(outs[0].regs[1], 5u);  // prior state committed
}

TEST(Traps, SysHaltIsNotATrap) {
  const auto outs = run_everywhere("\tlex $1,3\n\tsys\n");
  expect_all_equal(outs);
  ASSERT_TRUE(outs[0].halted);
  EXPECT_EQ(outs[0].trap.kind, TrapKind::kNone);
}

TEST(Traps, SysPrintContinuesThenHalts) {
  const auto outs =
      run_everywhere("\tlex $1,9\n\tsys $1\n\tlex $2,4\n\tsys\n");
  expect_all_equal(outs);
  ASSERT_TRUE(outs[0].halted);
  EXPECT_EQ(outs[0].trap.kind, TrapKind::kNone);
  EXPECT_EQ(outs[0].regs[2], 4u);
}

TEST(Traps, RecipOfZeroIsDivideByZero) {
  const auto outs = run_everywhere(
      "\tlex $1,0\n"
      "\trecip $1\n"
      "\tsys\n");
  expect_all_equal(outs);
  ASSERT_TRUE(outs[0].halted);
  EXPECT_EQ(outs[0].trap.kind, TrapKind::kDivideByZero);
  EXPECT_EQ(outs[0].trap.pc, 1u);
  EXPECT_EQ(outs[0].regs[1], 0u);  // the faulting instruction did not commit
}

TEST(Traps, RecipOfNonZeroStillWorks) {
  // bf16 2.0 = 0x4000; recip -> 0.5 = 0x3f00.  Build 0x4000 from lex+lhi.
  const auto outs = run_everywhere(
      "\tlex $1,0\n"
      "\tlhi $1,0x40\n"
      "\trecip $1\n"
      "\tsys\n");
  expect_all_equal(outs);
  ASSERT_TRUE(outs[0].halted);
  EXPECT_EQ(outs[0].trap.kind, TrapKind::kNone);
  EXPECT_EQ(outs[0].regs[1], Bf16(0x4000).recip().bits());
}

TEST(Traps, PoolExhaustionTrapsAtUnmigratableWays) {
  // RE registers at 36 ways have no dense form (> kMaxAobWays), so symbol
  // exhaustion must surface as a clean kResourceExhausted trap, identically
  // everywhere.  Cap = 4: zeros/ones are implicit, the first two `had`s
  // intern one chunk each, the third has no room.
  FaultPlan plan;
  plan.max_pool_symbols = 4;
  const auto outs = run_everywhere(
      "\thad @1,0\n"
      "\thad @2,1\n"
      "\thad @3,2\n"
      "\tsys\n",
      36, pbp::Backend::kCompressed, &plan);
  expect_all_equal(outs);
  ASSERT_TRUE(outs[0].halted);
  EXPECT_EQ(outs[0].trap.kind, TrapKind::kResourceExhausted);
  EXPECT_EQ(outs[0].trap.pc, 4u);  // had is a two-word instruction
}

TEST(Traps, PoolExhaustionMigratesAtDenseableWays) {
  // Same program, 16 ways: the engine must degrade RE -> dense transparently
  // and finish with NO trap and the right register contents.
  FaultPlan plan;
  plan.max_pool_symbols = 4;
  const Program p = assemble(
      "\thad @1,0\n"
      "\thad @2,1\n"
      "\thad @3,2\n"
      "\tsys\n");
  FunctionalSim sim(16, pbp::Backend::kCompressed);
  sim.load(p);
  sim.set_fault_plan(plan);
  const SimStats st = sim.run();
  ASSERT_TRUE(st.halted);
  EXPECT_EQ(st.trap.kind, TrapKind::kNone);
  EXPECT_EQ(sim.qat().backend_kind(), pbp::Backend::kDense);
  EXPECT_EQ(sim.qat().stats().backend_migrations, 1u);
  // had @3,2 must hold the right pattern despite the mid-run migration.
  FunctionalSim ref(16, pbp::Backend::kDense);
  ref.load(p);
  ref.run();
  for (unsigned r = 1; r <= 3; ++r) {
    EXPECT_EQ(sim.qat().reg(r), ref.qat().reg(r)) << "@" << r;
  }
}

TEST(Traps, WrongPathIllegalInstructionDoesNotTrap) {
  // The invalid word sits in the taken branch's shadow: the latch-level
  // pipeline fetches it, then the EX-resolved branch flushes it before it
  // can reach EX.  No model may trap.
  const auto outs = run_everywhere(
      "\tlex $1,1\n"
      "\tbrt $1,skip\n"
      "\t.word 0xf000\n"
      "skip:\tlex $2,7\n"
      "\tsys\n");
  expect_all_equal(outs);
  ASSERT_TRUE(outs[0].halted);
  EXPECT_EQ(outs[0].trap.kind, TrapKind::kNone);
  EXPECT_EQ(outs[0].regs[2], 7u);
}

TEST(Traps, WatchdogExpiresOnInfiniteLoop) {
  const Program p = assemble("self:\tbr self\n");
  FunctionalSim f(8);
  f.load(p);
  f.set_max_cycles(100);
  const SimStats sf = f.run();
  ASSERT_TRUE(sf.halted);
  EXPECT_EQ(sf.trap.kind, TrapKind::kWatchdogExpired);
  EXPECT_EQ(sf.cycles, 100u);

  MultiCycleFsmSim m(8);
  m.load(p);
  m.set_max_cycles(100);
  const SimStats sm = m.run();
  ASSERT_TRUE(sm.halted);
  EXPECT_EQ(sm.trap.kind, TrapKind::kWatchdogExpired);

  RtlPipelineSim r(8);
  r.load(p);
  r.set_max_cycles(100);
  const SimStats sr = r.run();
  ASSERT_TRUE(sr.halted);
  EXPECT_EQ(sr.trap.kind, TrapKind::kWatchdogExpired);
  EXPECT_EQ(sr.cycles, 100u);
}

TEST(Traps, OversizedImageTrapsAtLoad) {
  const std::vector<std::uint16_t> huge(65537, 0x1234);
  FunctionalSim f(8);
  f.load_words(huge);
  const SimStats st = f.run();
  ASSERT_TRUE(st.halted);
  EXPECT_EQ(st.trap.kind, TrapKind::kMemImageOverflow);
  EXPECT_EQ(st.instructions, 0u);     // nothing executed
  EXPECT_EQ(f.memory().read(0), 0u);  // and nothing partially loaded

  RtlPipelineSim r(8);
  r.load_words(huge);
  const SimStats sr = r.run();
  ASSERT_TRUE(sr.halted);
  EXPECT_EQ(sr.trap.kind, TrapKind::kMemImageOverflow);

  MultiCycleFsmSim m(8);
  m.load_words(huge);
  const SimStats sm = m.run();
  ASSERT_TRUE(sm.halted);
  EXPECT_EQ(sm.trap.kind, TrapKind::kMemImageOverflow);
}

TEST(Traps, ExactSizeImageStillLoads) {
  std::vector<std::uint16_t> image(65536, 0);
  image[0] = assemble("\tsys\n").words[0];
  FunctionalSim f(8);
  f.load_words(image);
  const SimStats st = f.run();
  ASSERT_TRUE(st.halted);
  EXPECT_EQ(st.trap.kind, TrapKind::kNone);
}

TEST(Traps, InjectedChannelFlipPastExhaustionIsARecordedTrap) {
  // A fault-injected channel flip that itself exhausts an unmigratable pool
  // must surface as a recorded trap, not an escaping exception.
  FaultPlan plan;
  plan.max_pool_symbols = 4;
  FaultEvent e;
  e.target = FaultEvent::Target::kQatChannel;
  e.at_instr = 3;
  e.addr = 1;
  e.channel = 5;
  plan.events.push_back(e);
  const Program p = assemble(
      "\thad @1,0\n"
      "\thad @2,1\n"
      "\tlex $1,1\n"
      "\tlex $2,2\n"
      "\tsys\n");
  FunctionalSim sim(36, pbp::Backend::kCompressed);
  sim.load(p);
  sim.set_fault_plan(plan);
  const SimStats st = sim.run();
  ASSERT_TRUE(st.halted);
  EXPECT_EQ(st.trap.kind, TrapKind::kResourceExhausted);
}

TEST(Traps, FaultPlanParseRoundTrip) {
  const FaultPlan a = FaultPlan::parse("seed=7,events=5,horizon=300,pool=64", 8);
  EXPECT_EQ(a.events.size(), 5u);
  EXPECT_EQ(a.max_pool_symbols, 64u);
  const FaultPlan b = FaultPlan::random(7, 5, 300, 8);
  ASSERT_EQ(b.events.size(), a.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].to_string(), b.events[i].to_string());
  }
  EXPECT_THROW(FaultPlan::parse("bogus=1", 8), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed", 8), std::invalid_argument);
}

TEST(Traps, TrapNamesAreStable) {
  EXPECT_STREQ(trap_kind_name(TrapKind::kNone), "none");
  EXPECT_STREQ(trap_kind_name(TrapKind::kIllegalInstruction),
               "illegal-instruction");
  EXPECT_STREQ(trap_kind_name(TrapKind::kDivideByZero), "divide-by-zero");
  EXPECT_STREQ(trap_kind_name(TrapKind::kQatFault), "qat-fault");
  EXPECT_STREQ(trap_kind_name(TrapKind::kResourceExhausted),
               "resource-exhausted");
  EXPECT_STREQ(trap_kind_name(TrapKind::kWatchdogExpired),
               "watchdog-expired");
  EXPECT_STREQ(trap_kind_name(TrapKind::kMemImageOverflow),
               "mem-image-overflow");
}

}  // namespace
}  // namespace tangled
