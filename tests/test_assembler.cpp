// Tests for the two-pass assembler (paper §2.1, Table 2 macros).
#include "asm/assembler.hpp"

#include <gtest/gtest.h>

#include "arch/simulators.hpp"

namespace tangled {
namespace {

/// Assemble, run to sys on the functional simulator, return the CPU.
CpuState run(const std::string& src, unsigned ways = 8) {
  FunctionalSim sim(ways);
  sim.load(assemble(src));
  const SimStats st = sim.run();
  EXPECT_TRUE(st.halted) << "program did not halt";
  return sim.cpu();
}

TEST(Assembler, BasicInstructionBytes) {
  const Program p = assemble("lex $8,42\n");
  ASSERT_EQ(p.words.size(), 1u);
  const Decoded d = decode(p.words[0], 0);
  EXPECT_EQ(d.instr.op, Op::kLex);
  EXPECT_EQ(d.instr.d, 8);
  EXPECT_EQ(d.instr.imm, 42);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(
      "; full-line comment\n"
      "\n"
      "  lex $1,5  ; trailing comment\n"
      "\t\n"
      "sys\n");
  EXPECT_EQ(p.instruction_count, 2u);
}

TEST(Assembler, PaperFigure10SyntaxFragment) {
  // A verbatim fragment of Figure 10, including the `;5` style comments.
  const Program p = assemble(
      "had @0,3\n"
      "and @2,@0,@1\n"
      "lex $0,31\n"
      "next $0,@80\n"
      "copy $1,$0\n"
      "lex $2,15\n"
      "and $0,$2 ;5\n"
      "and $1,$2 ;3\n");
  EXPECT_EQ(p.instruction_count, 8u);
  // had and the three-operand and are two words; next is two words.
  EXPECT_EQ(p.words.size(), 2u + 2u + 1u + 2u + 1u + 1u + 1u + 1u);
}

TEST(Assembler, SharedMnemonicsDispatchOnSigil) {
  // `and $d,$s` is Tangled; `and @a,@b,@c` is Qat (§2.2's shared gate names).
  const Program p = assemble(
      "and $1,$2\n"
      "and @1,@2,@3\n"
      "not $1\n"
      "not @1\n"
      "or $1,$2\n"
      "xor @4,@5,@6\n");
  std::size_t pc = 0;
  std::vector<Op> ops;
  while (pc < p.words.size()) {
    const Decoded d =
        decode(p.words[pc], pc + 1 < p.words.size() ? p.words[pc + 1] : 0);
    ops.push_back(d.instr.op);
    pc += d.words;
  }
  EXPECT_EQ(ops, (std::vector<Op>{Op::kAnd, Op::kQAnd, Op::kNot, Op::kQNot,
                                  Op::kOr, Op::kQXor}));
}

TEST(Assembler, LabelsAndBranches) {
  const auto cpu = run(
      "      lex $1,0\n"
      "      lex $2,5\n"
      "loop: add $1,$2\n"
      "      lex $3,1\n"
      "      neg $3\n"
      "      add $2,$3\n"  // $2 -= 1
      "      brt $2,loop\n"
      "      sys\n");
  // 5+4+3+2+1 = 15
  EXPECT_EQ(cpu.reg(1), 15u);
  EXPECT_EQ(cpu.reg(2), 0u);
}

TEST(Assembler, ForwardLabelReference) {
  const auto cpu = run(
      "      lex $1,1\n"
      "      brt $1,done\n"
      "      lex $2,99\n"  // skipped
      "done: sys\n");
  EXPECT_EQ(cpu.reg(2), 0u);
}

TEST(Assembler, MacroBr) {
  const auto cpu = run(
      "      br over\n"
      "      lex $2,99\n"
      "over: lex $3,7\n"
      "      sys\n");
  EXPECT_EQ(cpu.reg(2), 0u);
  EXPECT_EQ(cpu.reg(3), 7u);
  // br clobbers $at (documented macro behaviour).
  EXPECT_EQ(cpu.reg(kRegAt), 1u);
}

TEST(Assembler, MacroJumpReachesFarTargets) {
  // Build a gap too large for an 8-bit branch: jump must still work.
  std::string src = "      jump far\n";
  for (int i = 0; i < 200; ++i) src += "      lex $2,99\n";
  src += "far:  lex $3,1\n      sys\n";
  const auto cpu = run(src);
  EXPECT_EQ(cpu.reg(2), 0u);
  EXPECT_EQ(cpu.reg(3), 1u);
}

TEST(Assembler, MacroJumpfJumpt) {
  const auto cpu = run(
      "      lex $1,0\n"
      "      lex $2,1\n"
      "      jumpf $1,a\n"   // taken: $1 == 0
      "      lex $3,99\n"
      "a:    jumpt $2,b\n"   // taken: $2 != 0
      "      lex $4,99\n"
      "b:    jumpf $2,c\n"   // NOT taken
      "      lex $5,55\n"
      "c:    sys\n");
  EXPECT_EQ(cpu.reg(3), 0u);
  EXPECT_EQ(cpu.reg(4), 0u);
  EXPECT_EQ(cpu.reg(5), 55u);
}

TEST(Assembler, MacroLiLoadsFull16Bits) {
  const auto cpu = run(
      "li $1,0x1234\n"
      "li $2,65535\n"
      "li $3,-2\n"
      "li $4,128\n"  // would sign-extend wrong without the lhi
      "sys\n");
  EXPECT_EQ(cpu.reg(1), 0x1234u);
  EXPECT_EQ(cpu.reg(2), 0xffffu);
  EXPECT_EQ(cpu.reg(3), 0xfffeu);
  EXPECT_EQ(cpu.reg(4), 128u);
}

TEST(Assembler, LiWithLabelValue) {
  const auto cpu = run(
      "      li $1,data\n"
      "      load $2,$1\n"
      "      sys\n"
      "data: .word 1234\n");
  EXPECT_EQ(cpu.reg(2), 1234u);
}

TEST(Assembler, WordDirective) {
  const Program p = assemble(".word 0xABCD\n.word -1\n.word 42\n");
  ASSERT_EQ(p.words.size(), 3u);
  EXPECT_EQ(p.words[0], 0xABCDu);
  EXPECT_EQ(p.words[1], 0xFFFFu);
  EXPECT_EQ(p.words[2], 42u);
}

TEST(Assembler, HexAndNegativeImmediates) {
  const auto cpu = run(
      "lex $1,0x2A\n"
      "lex $2,-5\n"
      "sys\n");
  EXPECT_EQ(cpu.reg(1), 42u);
  EXPECT_EQ(cpu.reg(2), 0xFFFBu);
}

TEST(Assembler, EquConstants) {
  const auto cpu = run(
      "answer = 42\n"
      "base = 0x100\n"
      "lex $1,answer\n"
      "li $2,base\n"
      "sys\n");
  EXPECT_EQ(cpu.reg(1), 42u);
  EXPECT_EQ(cpu.reg(2), 0x100u);
}

TEST(Assembler, EquForwardUseThrows) {
  EXPECT_THROW(assemble("x = y\ny = 2\n"), AsmError);
  EXPECT_THROW(assemble("x = 1\nx = 2\n"), AsmError);  // redefinition
}

TEST(Assembler, SpaceDirective) {
  const Program p = assemble(
      "      lex $1,1\n"
      "      sys\n"
      "buf:  .space 4\n"
      "end:  .word 7\n");
  EXPECT_EQ(p.labels.at("buf"), 2u);
  EXPECT_EQ(p.labels.at("end"), 6u);
  ASSERT_EQ(p.words.size(), 7u);
  EXPECT_EQ(p.words[6], 7u);
  for (int i = 2; i < 6; ++i) EXPECT_EQ(p.words[i], 0u);
}

TEST(Assembler, OriginDirective) {
  const Program p = assemble(
      "lex $1,1\n"
      ".origin 0x10\n"
      "data: .word 99\n");
  EXPECT_EQ(p.labels.at("data"), 0x10u);
  ASSERT_EQ(p.words.size(), 0x11u);
  EXPECT_EQ(p.words[0x10], 99u);
  EXPECT_THROW(assemble(".origin 10\n.origin 5\n"), AsmError);
}

TEST(Assembler, SpaceUsedAsScratchMemory) {
  const auto cpu = run(
      "      li $1,buf\n"
      "      lex $2,123\n"
      "      store $2,$1\n"
      "      load $3,$1\n"
      "      sys\n"
      "buf:  .space 2\n");
  EXPECT_EQ(cpu.reg(3), 123u);
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("bogus $1,$2\n"), AsmError);
  EXPECT_THROW(assemble("add $1\n"), AsmError);          // operand count
  EXPECT_THROW(assemble("add $1,$2,$3\n"), AsmError);    // operand count
  EXPECT_THROW(assemble("add $16,$2\n"), AsmError);      // bad register
  EXPECT_THROW(assemble("and @256,@0,@1\n"), AsmError);  // bad Qat register
  EXPECT_THROW(assemble("lex $1,300\n"), AsmError);      // imm out of range
  EXPECT_THROW(assemble("lhi $1,-1\n"), AsmError);
  EXPECT_THROW(assemble("had @1,64\n"), AsmError);       // had index range (6-bit)
  // A literal too wide for any operand must be rejected, not wrapped by
  // (undefined) accumulator overflow into a plausible 16-bit value.
  EXPECT_THROW(assemble("lex $1,18446744073709551530\n"), AsmError);
  EXPECT_THROW(assemble(".word 0xffffffffffffffffff\n"), AsmError);
  EXPECT_THROW(assemble("brt $1,nowhere\n"), AsmError);  // undefined symbol
  EXPECT_THROW(assemble("x: lex $1,1\nx: sys\n"), AsmError);  // dup label
  EXPECT_THROW(assemble("meas @1,$2\n"), AsmError);      // swapped operands
  EXPECT_THROW(assemble("sys $0\n"), AsmError);           // $0 = halt encoding
  EXPECT_THROW(assemble("sys $1,$2\n"), AsmError);        // operand count
}

TEST(Assembler, ErrorCarriesLineNumber) {
  try {
    assemble("lex $1,1\nbogus\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Assembler, BranchOutOfRangeSuggestsJump) {
  std::string src = "      brt $1,far\n";
  for (int i = 0; i < 200; ++i) src += "      lex $2,0\n";
  src += "far:  sys\n";
  EXPECT_THROW(assemble(src), AsmError);
}

TEST(Assembler, DisassembleRoundTrip) {
  const std::string src =
      "had @0,3\n"
      "and @2,@0,@1\n"
      "lex $0,31\n"
      "next $0,@80\n"
      "sys\n";
  const Program p = assemble(src);
  const std::string dis = disassemble_words(p.words);
  // Reassembling the disassembly (addresses stripped) gives identical words.
  std::string stripped;
  for (std::size_t i = 0; i < dis.size(); ++i) {
    if (dis[i] == '\t') {
      const auto eol = dis.find('\n', i);
      stripped += dis.substr(i + 1, eol - i - 1);
      stripped += '\n';
      i = eol;
    }
  }
  const Program p2 = assemble(stripped);
  EXPECT_EQ(p2.words, p.words);
}

}  // namespace
}  // namespace tangled
