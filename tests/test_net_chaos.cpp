// test_net_chaos.cpp — the transport-chaos soak for the network front door
// (labels `net;soak`): 220 seeded abusive-client runs against a live
// NetServer, plus a fault-injecting proxy (drops, truncation, delays, bit
// flips, duplication) between a well-behaved client and the server.  The
// invariants, checked at the end of each soak:
//
//   * the server never crashes and drains in bounded time;
//   * no job leaks: every admitted job reaches exactly one terminal state
//     (submitted == sum of terminal outcomes, nothing left active);
//   * the well-behaved client's jobs produce exactly one report each, with
//     no duplicates, no matter what the abusive connections do;
//   * the abuse actually registered (protocol errors, stall closes, chaos
//     injections are all nonzero) — a soak that injected nothing proves
//     nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "asm/programs.hpp"
#include "serve/net/chaos.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"

namespace tangled::serve::net {
namespace {

using namespace std::chrono_literals;

constexpr int kAbusiveRuns = 120;
constexpr int kProxyRuns = 100;

SubmitRequest fig10_request() {
  SubmitRequest req;
  req.name = "fig10";
  req.source = figure10_source();
  req.max_instructions = 20'000;
  req.checkpoint_every = 25;
  req.expect = {{0, 5}, {1, 3}};
  return req;
}

SubmitRequest spin_request() {
  SubmitRequest req;
  req.name = "spin";
  req.source = "loop: br loop\n";
  req.max_instructions = 2'000'000'000ULL;
  return req;
}

struct RawConn {
  Socket sock;
  bool connect(std::uint16_t port) {
    std::string err;
    sock = connect_tcp("127.0.0.1", port, 2000ms, &err);
    return sock.valid();
  }
  bool send_bytes(const std::vector<std::uint8_t>& b) {
    return write_all(sock.fd(), b.data(), b.size(), Clock::now() + 2s) ==
           IoStatus::kOk;
  }
  RecvStatus recv(Frame* f, std::chrono::milliseconds wait = 2000ms) {
    return recv_frame(sock.fd(), {kDefaultMaxFrameBytes, wait, wait}, f);
  }
};

/// One seeded abusive-client session.  Returns the scenario index it ran.
int abuse_once(std::uint16_t port, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int scenario = static_cast<int>(rng() % 9);
  RawConn raw;
  if (!raw.connect(port)) return scenario;  // accept raced a reap; fine
  Frame f;
  switch (scenario) {
    case 0: {  // garbage blast
      std::vector<std::uint8_t> junk(1 + rng() % 512);
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
      // Avoid accidentally forging valid magic in byte 0..3.
      junk[0] = 'X';
      raw.send_bytes(junk);
      raw.recv(&f, 500ms);
      break;
    }
    case 1: {  // torn header: a prefix of a valid frame, then vanish
      const auto frame = encode_message(MsgType::kSubmit, fig10_request());
      const std::size_t cut = 1 + rng() % (kHeaderBytes - 1);
      raw.send_bytes({frame.begin(), frame.begin() + cut});
      break;  // destructor closes mid-header
    }
    case 2: {  // torn payload: full header, partial payload, then vanish
      const auto frame = encode_message(MsgType::kSubmit, fig10_request());
      const std::size_t cut =
          kHeaderBytes + rng() % (frame.size() - kHeaderBytes);
      raw.send_bytes({frame.begin(), frame.begin() + cut});
      break;
    }
    case 3: {  // oversized declaration
      pbp::ByteWriter w;
      w.u32(kWireMagic);
      w.u16(kWireVersion);
      w.u8(1);
      w.u8(0);
      w.u32(64u << 20);
      w.u32(0);
      raw.send_bytes(w.take());
      raw.recv(&f, 500ms);
      break;
    }
    case 4: {  // wrong wire version
      pbp::ByteWriter w;
      w.u32(kWireMagic);
      w.u16(static_cast<std::uint16_t>(kWireVersion + 1 + rng() % 100));
      w.u8(5);
      w.u8(0);
      w.u32(0);
      w.u32(pbp::crc32(nullptr, 0));
      raw.send_bytes(w.take());
      raw.recv(&f, 500ms);
      break;
    }
    case 5: {  // slow loris: begin a frame, stall past the frame timeout
      raw.send_bytes({0x54, 0x4e, 0x47, 0x57});
      std::this_thread::sleep_for(150ms);
      break;
    }
    case 6:  // connect and instantly vanish
      break;
    case 7: {  // submit a long job, take the SubmitOk, vanish (orphan path)
      raw.send_bytes(encode_message(MsgType::kSubmit, spin_request()));
      raw.recv(&f, 2000ms);
      break;
    }
    case 8: {  // submit, cancel mid-job, then vanish without reading reports
      raw.send_bytes(encode_message(MsgType::kSubmit, spin_request()));
      if (raw.recv(&f, 2000ms) == RecvStatus::kOk &&
          f.type == MsgType::kSubmitOk) {
        pbp::ByteReader r(f.payload);
        const SubmitOk ok = SubmitOk::decode(r);
        raw.send_bytes(encode_message(MsgType::kCancel, CancelRequest{ok.id}));
      }
      break;
    }
    default:
      break;
  }
  return scenario;
}

void check_no_leaked_jobs(const ServerStats& s) {
  const std::uint64_t terminal = s.completed + s.quarantined + s.cancelled +
                                 s.deadline_expired + s.rejected_memory +
                                 s.errors;
  EXPECT_EQ(s.submitted, terminal)
      << "leaked job(s): " << s.submitted << " admitted, " << terminal
      << " terminal";
  EXPECT_EQ(s.active_jobs, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(NetChaos, AbusiveClientSoakLeaksNothingAndServesTheHonestClient) {
  NetServerConfig config;
  config.jobs.threads = 4;
  config.frame_timeout = 100ms;  // make the loris scenarios bite quickly
  NetServer server(config);
  ASSERT_TRUE(server.ok()) << server.error();

  // The honest client runs the whole time, interleaved with the abuse.
  ServeClientConfig honest_cc;
  honest_cc.port = server.port();
  ServeClient honest(honest_cc);
  std::set<std::uint64_t> honest_ids;
  std::set<std::uint64_t> honest_reports;

  std::vector<int> scenario_count(9, 0);
  constexpr int kBatch = 8;
  for (int base = 0; base < kAbusiveRuns; base += kBatch) {
    const int n = std::min(kBatch, kAbusiveRuns - base);
    std::vector<std::thread> abusers;
    std::vector<int> ran(n, -1);
    abusers.reserve(n);
    for (int i = 0; i < n; ++i) {
      abusers.emplace_back([&, i] {
        ran[i] = abuse_once(server.port(),
                            0xab05e0ULL * 2654435761u + base + i);
      });
    }
    // Meanwhile the honest client gets real work done on schedule.
    ClientResult r;
    const auto id = honest.submit(fig10_request(), &r);
    ASSERT_TRUE(id.has_value()) << r.message;
    ASSERT_TRUE(honest_ids.insert(*id).second);
    const auto rep = honest.next_report(30'000ms, &r);
    ASSERT_TRUE(rep.has_value()) << r.message;
    EXPECT_EQ(rep->outcome, JobOutcome::kCompleted) << rep->to_string();
    EXPECT_TRUE(honest_reports.insert(rep->id).second)
        << "duplicate report for honest job " << rep->id;
    for (auto& t : abusers) t.join();
    for (const int s : ran) {
      if (s >= 0) ++scenario_count[static_cast<std::size_t>(s)];
    }
  }

  // No further reports owed to the honest client: exactly once, no extras.
  EXPECT_FALSE(honest.next_report(200ms).has_value());
  EXPECT_EQ(honest_reports, honest_ids);

  // Give orphaned spin jobs a beat to reach their cancelled terminal state,
  // then drain; wait_drained() returning at all proves bounded shutdown.
  server.begin_drain();
  server.wait_drained();

  check_no_leaked_jobs(server.jobs().stats());
  const NetStats ns = server.net_stats();
  EXPECT_GT(ns.protocol_errors, 0u) << "the abuse never registered";
  EXPECT_GT(ns.stall_closes, 0u) << "no loris was ever stalled out";
  EXPECT_EQ(ns.connections_active, 0u);
  EXPECT_GE(ns.reports_streamed + ns.reports_orphaned,
            server.jobs().stats().submitted)
      << "an admitted job's report was neither streamed nor harvested";
  // Every scenario class actually ran at least once over 120 seeded draws.
  for (std::size_t s = 0; s < scenario_count.size(); ++s) {
    EXPECT_GT(scenario_count[s], 0) << "scenario " << s << " never ran";
  }
}

TEST(NetChaos, FaultInjectingProxySoakNeverCrashesOrDuplicatesReports) {
  NetServerConfig config;
  config.jobs.threads = 4;
  config.frame_timeout = 500ms;
  NetServer server(config);
  ASSERT_TRUE(server.ok()) << server.error();

  ChaosConfig chaos;
  chaos.upstream_port = server.port();
  chaos.seed = 0xc4a05'5eedULL;
  chaos.p_bitflip = 0.02;
  chaos.p_truncate = 0.02;
  chaos.p_drop = 0.01;
  chaos.p_delay = 0.05;
  chaos.delay_ms = 2;
  chaos.p_duplicate = 0.01;
  ChaosProxy proxy(chaos);
  ASSERT_TRUE(proxy.ok()) << proxy.error();

  int clean_roundtrips = 0;
  int transport_failures = 0;
  std::set<std::uint64_t> reported_ids;
  for (int run = 0; run < kProxyRuns; ++run) {
    ServeClientConfig cc;
    cc.port = proxy.port();
    cc.io_timeout = 2000ms;
    cc.connect_attempts = 2;
    cc.seed = 0x5eedULL + static_cast<std::uint64_t>(run);
    ServeClient client(cc);
    ClientResult r;
    const auto id = client.submit(fig10_request(), &r);
    if (!id) {
      // Chaos ate the exchange — acceptable, as long as nothing leaks.
      ++transport_failures;
      continue;
    }
    const auto rep = client.next_report(30'000ms, &r);
    if (!rep) {
      ++transport_failures;
      continue;
    }
    // A report that survived the proxy must be intact (CRC gate) and ours.
    EXPECT_EQ(rep->id, *id);
    EXPECT_EQ(rep->outcome, JobOutcome::kCompleted) << rep->to_string();
    EXPECT_TRUE(reported_ids.insert(rep->id).second)
        << "duplicate report id " << rep->id;
    ++clean_roundtrips;
  }

  proxy.stop();
  server.begin_drain();
  server.wait_drained();

  check_no_leaked_jobs(server.jobs().stats());
  const ChaosStats cs = proxy.stats();
  EXPECT_GT(cs.chunks_forwarded, 0u);
  EXPECT_GT(cs.bitflips + cs.truncates + cs.drops + cs.duplicates, 0u)
      << "the proxy never injected anything";
  EXPECT_GT(clean_roundtrips, 0)
      << "all " << kProxyRuns << " sessions failed; chaos too hot to prove "
      << "anything (" << transport_failures << " transport failures)";
  // The CRC gate must have turned at least part of the byte-level chaos
  // into structured protocol errors rather than crashes.
  if (cs.bitflips > 0) {
    EXPECT_GT(server.net_stats().protocol_errors, 0u);
  }
  ::testing::Test::RecordProperty("clean_roundtrips", clean_roundtrips);
  ::testing::Test::RecordProperty("transport_failures", transport_failures);
}

}  // namespace
}  // namespace tangled::serve::net
