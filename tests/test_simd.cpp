// test_simd.cpp — the bit-identical contract of the runtime-dispatched
// vector kernels (pbp/simd.hpp) and the deterministic sharding layer
// (pbp/shard.hpp):
//   * tier control: parse/name round-trip, env-independent set_tier,
//     unsupported tiers rejected;
//   * every kernel pinned against a plain reference loop at every supported
//     tier, across sizes that exercise full vector blocks and ragged tails;
//   * the fused SECDED kernels pinned against the table-driven scalar codec
//     (secded64_encode_fast) via the code's GF(2) linearity;
//   * shard_range coverage/disjointness/alignment and ShardPool execution
//     including exception propagation;
//   * forced-tier whole-backend differentials (dense vs RE) across ECC modes
//     and thread counts, plus operand-aliasing differentials for every
//     Table 3 op;
//   * the epoch-freshness overflow regression (--ecc-epoch=UINT64_MAX).
#include "pbp/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "pbp/ecc.hpp"
#include "pbp/qat_backend.hpp"
#include "pbp/shard.hpp"

namespace pbp {
namespace {

using simd::Tier;

/// Every tier this CPU can actually run (always includes kScalar).
std::vector<Tier> supported_tiers() {
  std::vector<Tier> out{Tier::kScalar};
  if (simd::best_supported() >= Tier::kAvx2) out.push_back(Tier::kAvx2);
  if (simd::best_supported() >= Tier::kAvx512) out.push_back(Tier::kAvx512);
  return out;
}

/// RAII tier override so a failing test cannot leak a forced tier into the
/// rest of the binary.
class TierGuard {
 public:
  explicit TierGuard(Tier t) : saved_(simd::active()) {
    EXPECT_TRUE(simd::set_tier(t));
  }
  ~TierGuard() { simd::set_tier(saved_); }

 private:
  Tier saved_;
};

/// SECDED kernel variants: every supported tier, and when the CPU has the
/// GFNI refinement, the avx512 tier both ways — the popcount path must stay
/// covered on machines where GFNI would otherwise always win dispatch.
struct SecdedVariant {
  Tier tier;
  bool gfni;
};

std::vector<SecdedVariant> secded_variants() {
  std::vector<SecdedVariant> out;
  for (const Tier t : supported_tiers()) {
    if (t == Tier::kAvx512 && simd::gfni_supported()) {
      out.push_back({t, false});
      out.push_back({t, true});
    } else {
      out.push_back({t, simd::gfni_active()});
    }
  }
  return out;
}

std::string variant_name(const SecdedVariant& v) {
  std::string s = simd::tier_name(v.tier);
  if (v.tier == Tier::kAvx512 && simd::gfni_supported()) {
    s += v.gfni ? "+gfni" : "+popcnt";
  }
  return s;
}

/// TierGuard plus a pinned GFNI refinement state, both restored on exit.
class VariantGuard {
 public:
  explicit VariantGuard(const SecdedVariant& v)
      : tier_(v.tier), saved_gfni_(simd::gfni_active()) {
    EXPECT_TRUE(simd::set_gfni(v.gfni));
  }
  ~VariantGuard() { simd::set_gfni(saved_gfni_); }

 private:
  TierGuard tier_;
  bool saved_gfni_;
};

/// Sizes that hit: sub-block, one exact AVX2 block, one ragged AVX-512
/// block, exact AVX-512 blocks, a full SECDED chunk, and a large buffer
/// with every kind of tail.
constexpr std::size_t kSizes[] = {0, 1, 3, 4, 7, 8, 9, 63, 64, 65, 100, 1000};

std::vector<std::uint64_t> random_words(std::mt19937_64& rng, std::size_t n,
                                        bool sprinkle_zeros = false) {
  std::vector<std::uint64_t> v(n);
  for (auto& w : v) {
    w = rng();
    if (sprinkle_zeros && rng() % 3 == 0) w = 0;  // exercise zero-skip paths
  }
  return v;
}

// --- Tier control ---------------------------------------------------------

TEST(SimdTier, NameParseRoundTrip) {
  for (const Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    EXPECT_EQ(simd::parse_tier(simd::tier_name(t)), t);
  }
  EXPECT_THROW(simd::parse_tier("sse9"), std::invalid_argument);
  EXPECT_THROW(simd::parse_tier(""), std::invalid_argument);
}

TEST(SimdTier, SetTierControlsActiveWithinSupport) {
  const Tier before = simd::active();
  for (const Tier t : supported_tiers()) {
    ASSERT_TRUE(simd::set_tier(t));
    EXPECT_EQ(simd::active(), t);
  }
  if (simd::best_supported() < Tier::kAvx512) {
    EXPECT_FALSE(simd::set_tier(Tier::kAvx512));
    EXPECT_NE(simd::active(), Tier::kAvx512);
  }
  simd::set_tier(before);
}

TEST(SimdTier, ActiveNeverExceedsBestSupported) {
  EXPECT_LE(static_cast<int>(simd::active()),
            static_cast<int>(simd::best_supported()));
}

TEST(SimdTier, GfniRefinementRespectsSupport) {
  const bool before = simd::gfni_active();
  if (simd::gfni_supported()) {
    EXPECT_EQ(simd::best_supported(), Tier::kAvx512);
    EXPECT_TRUE(simd::set_gfni(false));
    EXPECT_FALSE(simd::gfni_active());
    EXPECT_TRUE(simd::set_gfni(true));
    EXPECT_TRUE(simd::gfni_active());
  } else {
    EXPECT_FALSE(simd::gfni_active());
    EXPECT_FALSE(simd::set_gfni(true));
    EXPECT_FALSE(simd::gfni_active());
    EXPECT_TRUE(simd::set_gfni(false));  // off is always accepted
  }
  simd::set_gfni(before);
}

// --- Bitwise and reduction kernels vs reference loops ---------------------

TEST(SimdKernels, BitwiseMatchReferenceAtEveryTier) {
  std::mt19937_64 rng(42);
  for (const Tier t : supported_tiers()) {
    TierGuard guard(t);
    for (const std::size_t n : kSizes) {
      const auto a0 = random_words(rng, n);
      const auto b = random_words(rng, n);
      const auto c = random_words(rng, n);

      auto check2 = [&](void (*fn)(std::uint64_t*, const std::uint64_t*,
                                   std::size_t),
                        auto op, const char* name) {
        auto a = a0;
        fn(a.data(), b.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(a[i], op(a0[i], b[i]))
              << name << " tier " << simd::tier_name(t) << " n=" << n
              << " i=" << i;
        }
      };
      check2(simd::and_inplace,
             [](std::uint64_t x, std::uint64_t y) { return x & y; }, "and");
      check2(simd::or_inplace,
             [](std::uint64_t x, std::uint64_t y) { return x | y; }, "or");
      check2(simd::xor_inplace,
             [](std::uint64_t x, std::uint64_t y) { return x ^ y; }, "xor");

      auto check3 = [&](void (*fn)(std::uint64_t*, const std::uint64_t*,
                                   const std::uint64_t*, std::size_t),
                        auto op, const char* name) {
        std::vector<std::uint64_t> a(n, 0xdeadbeefull);
        fn(a.data(), b.data(), c.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(a[i], op(b[i], c[i]))
              << name << " tier " << simd::tier_name(t) << " n=" << n;
        }
      };
      check3(simd::and3,
             [](std::uint64_t x, std::uint64_t y) { return x & y; }, "and3");
      check3(simd::or3,
             [](std::uint64_t x, std::uint64_t y) { return x | y; }, "or3");
      check3(simd::xor3,
             [](std::uint64_t x, std::uint64_t y) { return x ^ y; }, "xor3");

      {
        auto a = a0;
        simd::ccnot(a.data(), b.data(), c.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(a[i], a0[i] ^ (b[i] & c[i]))
              << "ccnot tier " << simd::tier_name(t) << " n=" << n;
        }
      }
      {
        auto a = a0;
        auto bb = b;
        simd::cswap(a.data(), bb.data(), c.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint64_t ea = (a0[i] & ~c[i]) | (b[i] & c[i]);
          const std::uint64_t eb = (b[i] & ~c[i]) | (a0[i] & c[i]);
          ASSERT_EQ(a[i], ea) << "cswap-a tier " << simd::tier_name(t);
          ASSERT_EQ(bb[i], eb) << "cswap-b tier " << simd::tier_name(t);
        }
      }
    }
  }
}

TEST(SimdKernels, ReductionsMatchReferenceAtEveryTier) {
  std::mt19937_64 rng(7);
  for (const Tier t : supported_tiers()) {
    TierGuard guard(t);
    for (const std::size_t n : kSizes) {
      auto a = random_words(rng, n, /*sprinkle_zeros=*/true);

      std::size_t pop = 0;
      for (const auto w : a) pop += std::popcount(w);
      EXPECT_EQ(simd::popcount(a.data(), n), pop)
          << "tier " << simd::tier_name(t) << " n=" << n;

      std::size_t first = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != 0) {
          first = i;
          break;
        }
      }
      EXPECT_EQ(simd::first_nonzero(a.data(), n), first)
          << "tier " << simd::tier_name(t) << " n=" << n;

      // All-zero and single-bit-at-end variants for first_nonzero.
      std::fill(a.begin(), a.end(), 0);
      EXPECT_EQ(simd::first_nonzero(a.data(), n), n);
      if (n > 0) {
        a[n - 1] = 1;
        EXPECT_EQ(simd::first_nonzero(a.data(), n), n - 1);
      }

      std::fill(a.begin(), a.end(), ~std::uint64_t{0});
      EXPECT_TRUE(simd::all_ones(a.data(), n));
      if (n > 0) {
        a[n / 2] ^= std::uint64_t{1} << 17;
        EXPECT_FALSE(simd::all_ones(a.data(), n))
            << "tier " << simd::tier_name(t) << " n=" << n;
      }
    }
  }
}

// --- Fused SECDED kernels vs the table-driven codec -----------------------

TEST(SimdSecded, EncodeMatchesScalarCodecAtEveryTier) {
  std::mt19937_64 rng(11);
  for (const SecdedVariant v : secded_variants()) {
    VariantGuard guard(v);
    for (const std::size_t n : kSizes) {
      const auto w = random_words(rng, n, /*sprinkle_zeros=*/true);
      std::vector<std::uint8_t> checks(n, 0xee);
      simd::secded64_encode(w.data(), checks.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(checks[i], secded64_encode_fast(w[i]))
            << "variant " << variant_name(v) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdSecded, MismatchMaskMatchesBruteForceAtEveryTier) {
  std::mt19937_64 rng(13);
  for (const SecdedVariant v : secded_variants()) {
    VariantGuard guard(v);
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{8}, std::size_t{33},
                                std::size_t{64}}) {
      auto w = random_words(rng, n, /*sprinkle_zeros=*/true);
      std::vector<std::uint8_t> checks(n);
      for (std::size_t i = 0; i < n; ++i) checks[i] = secded64_encode_fast(w[i]);

      // Clean block: no mismatches.
      EXPECT_EQ(simd::secded64_mismatch_mask(w.data(), checks.data(), n), 0u)
          << "variant " << variant_name(v) << " n=" << n;

      // Flip a scattering of payload / check bits and recompute by brute
      // force.
      for (int trial = 0; trial < 8; ++trial) {
        const std::size_t i = rng() % n;
        if (rng() % 2) {
          w[i] ^= std::uint64_t{1} << (rng() % 64);
        } else {
          checks[i] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
        }
        std::uint64_t expect = 0;
        for (std::size_t j = 0; j < n; ++j) {
          if (secded64_encode_fast(w[j]) != checks[j]) {
            expect |= std::uint64_t{1} << j;
          }
        }
        EXPECT_EQ(simd::secded64_mismatch_mask(w.data(), checks.data(), n),
                  expect)
            << "variant " << variant_name(v) << " n=" << n;
      }
    }
  }
}

TEST(SimdSecded, FusedOpKernelsMatchScalarDerivationAtEveryTier) {
  std::mt19937_64 rng(17);
  for (const SecdedVariant v : secded_variants()) {
    VariantGuard guard(v);
    for (const std::size_t n : kSizes) {
      const auto wa0 = random_words(rng, n);
      const auto wb = random_words(rng, n);
      const auto wc = random_words(rng, n, /*sprinkle_zeros=*/true);
      std::vector<std::uint8_t> ca0(n), cb(n), cc(n);
      for (std::size_t i = 0; i < n; ++i) {
        ca0[i] = secded64_encode_fast(wa0[i]);
        cb[i] = secded64_encode_fast(wb[i]);
        cc[i] = secded64_encode_fast(wc[i]);
      }
      // Every fused kernel must leave (word, check) consistent AND equal to
      // the scalar derivation.
      auto consistent = [&](const std::vector<std::uint64_t>& w,
                            const std::vector<std::uint8_t>& c,
                            const char* name) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(c[i], secded64_encode_fast(w[i]))
              << name << " variant " << variant_name(v) << " n=" << n
              << " i=" << i;
        }
      };

      {
        auto wa = wa0;
        auto ca = ca0;
        simd::cnot_ecc(wa.data(), wb.data(), ca.data(), cb.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(wa[i], wa0[i] ^ wb[i]);
        }
        consistent(wa, ca, "cnot_ecc");
      }
      {
        auto wa = wa0;
        auto ca = ca0;
        simd::ccnot_ecc(wa.data(), wb.data(), wc.data(), ca.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(wa[i], wa0[i] ^ (wb[i] & wc[i]));
        }
        consistent(wa, ca, "ccnot_ecc");
      }
      {
        auto wa = wa0;
        auto wb2 = wb;
        auto ca = ca0;
        auto cb2 = cb;
        simd::cswap_ecc(wa.data(), wb2.data(), wc.data(), ca.data(),
                        cb2.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(wa[i], (wa0[i] & ~wc[i]) | (wb[i] & wc[i]));
          ASSERT_EQ(wb2[i], (wb[i] & ~wc[i]) | (wa0[i] & wc[i]));
        }
        consistent(wa, ca, "cswap_ecc-a");
        consistent(wb2, cb2, "cswap_ecc-b");
      }
      {
        std::vector<std::uint64_t> wa(n, 0x5555);
        std::vector<std::uint8_t> ca(n, 0xff);
        simd::and3_ecc(wa.data(), wb.data(), wc.data(), ca.data(), n);
        for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(wa[i], wb[i] & wc[i]);
        consistent(wa, ca, "and3_ecc");
      }
      {
        std::vector<std::uint64_t> wa(n, 0x5555);
        std::vector<std::uint8_t> ca(n, 0xff);
        simd::or3_ecc(wa.data(), wb.data(), wc.data(), ca.data(), n);
        for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(wa[i], wb[i] | wc[i]);
        consistent(wa, ca, "or3_ecc");
      }
      {
        std::vector<std::uint64_t> wa(n, 0x5555);
        std::vector<std::uint8_t> ca(n, 0xff);
        simd::xor3_ecc(wa.data(), wb.data(), wc.data(), ca.data(), cb.data(),
                       cc.data(), n);
        for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(wa[i], wb[i] ^ wc[i]);
        consistent(wa, ca, "xor3_ecc");
      }
    }
  }
}

// --- shard_range / ShardPool ----------------------------------------------

TEST(ShardRange, CoversDisjointlyAndRespectsAlignment) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
        std::size_t{1000}, std::size_t{1} << 14, (std::size_t{1} << 14) + 7,
        std::size_t{1} << 18}) {
    for (const unsigned threads : {1u, 2u, 3u, 7u, 16u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (unsigned s = 0; s < threads; ++s) {
        const auto [b, e] = shard_range(n, 64, s, threads);
        ASSERT_LE(b, e);
        // Alignment is only meaningful for non-empty ranges (a trailing
        // empty shard is {n, n}, and n itself need not be aligned).
        if (b < e) {
          ASSERT_EQ(b, prev_end) << "gap/overlap at shard " << s
                                 << " n=" << n;
          ASSERT_EQ(b % 64, 0u) << "unaligned begin, shard " << s;
          if (e != n) {
            ASSERT_EQ(e % 64, 0u) << "unaligned end, shard " << s;
          }
          prev_end = e;
        }
        covered += e - b;
      }
      ASSERT_EQ(covered, n) << "threads=" << threads;
      ASSERT_EQ(prev_end, n);
    }
  }
}

TEST(ShardPool, RunsEveryShardExactlyOnceOverItsRange) {
  ShardPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  constexpr std::size_t kN = (std::size_t{1} << 14) + 100;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  std::atomic<unsigned> shards_seen{0};
  pool.run(kN, 64, [&](std::size_t b, std::size_t e, unsigned shard) {
    EXPECT_LT(shard, 4u);
    shards_seen.fetch_add(1);
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "word " << i;
  }
  // Every shard with a non-empty range ran; with this n all 4 have work.
  EXPECT_EQ(shards_seen.load(), 4u);
}

TEST(ShardPool, ReusableAcrossJobsAndPropagatesExceptions) {
  ShardPool pool(3);
  // A pool must survive many generations (it is persistent across ops).
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> total{0};
    pool.run(640, 64, [&](std::size_t b, std::size_t e, unsigned) {
      total.fetch_add(e - b);
    });
    ASSERT_EQ(total.load(), 640u);
  }
  EXPECT_THROW(
      pool.run(640, 64,
               [&](std::size_t, std::size_t, unsigned shard) {
                 if (shard == 1) throw std::runtime_error("shard boom");
               }),
      std::runtime_error);
  // And it still works after an exception.
  std::atomic<std::size_t> total{0};
  pool.run(128, 64, [&](std::size_t b, std::size_t e, unsigned) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 128u);
}

// --- Forced-tier whole-backend differentials ------------------------------

constexpr unsigned kRegs = 12;

template <typename Rng>
void random_table3_op(Rng& rng, QatBackend& d, QatBackend& r, unsigned ways) {
  const unsigned a = static_cast<unsigned>(rng() % kRegs);
  const unsigned b = static_cast<unsigned>(rng() % kRegs);
  const unsigned c = static_cast<unsigned>(rng() % kRegs);
  const unsigned k = static_cast<unsigned>(rng() % (ways + 1));
  switch (rng() % 11) {
    case 0: d.zero(a); r.zero(a); break;
    case 1: d.one(a); r.one(a); break;
    case 2: d.had(a, k); r.had(a, k); break;
    case 3: d.not_(a); r.not_(a); break;
    case 4: d.cnot(a, b); r.cnot(a, b); break;
    case 5: d.ccnot(a, b, c); r.ccnot(a, b, c); break;
    case 6: d.swap(a, b); r.swap(a, b); break;
    case 7: d.cswap(a, b, c); r.cswap(a, b, c); break;
    case 8: d.and_(a, b, c); r.and_(a, b, c); break;
    case 9: d.or_(a, b, c); r.or_(a, b, c); break;
    default: d.xor_(a, b, c); r.xor_(a, b, c); break;
  }
}

void expect_backends_equal(const QatBackend& d, const QatBackend& r,
                           const char* what) {
  for (unsigned reg = 0; reg < kRegs; ++reg) {
    ASSERT_EQ(d.reg_aob(reg), r.reg_aob(reg)) << what << " reg @" << reg;
    ASSERT_EQ(d.popcount(reg), r.popcount(reg)) << what << " reg @" << reg;
    ASSERT_EQ(d.any(reg), r.any(reg)) << what << " reg @" << reg;
    ASSERT_EQ(d.all(reg), r.all(reg)) << what << " reg @" << reg;
    ASSERT_EQ(d.next_one(reg, 0), r.next_one(reg, 0)) << what << " @" << reg;
    ASSERT_EQ(d.pop_after(reg, 1), r.pop_after(reg, 1)) << what << " @" << reg;
  }
}

struct TierEccCase {
  Tier tier;
  EccMode ecc;
  unsigned threads;
};

class ForcedTierDifferential
    : public ::testing::TestWithParam<std::tuple<int, int, unsigned>> {};

TEST_P(ForcedTierDifferential, DenseMatchesReAcrossWays) {
  const Tier tier = static_cast<Tier>(std::get<0>(GetParam()));
  const EccMode ecc = static_cast<EccMode>(std::get<1>(GetParam()));
  const unsigned threads = std::get<2>(GetParam());
  if (tier > simd::best_supported()) {
    GTEST_SKIP() << "CPU lacks " << simd::tier_name(tier);
  }
  TierGuard guard(tier);
  for (const unsigned ways : {6u, 10u, 12u}) {
    std::mt19937_64 rng(ways * 77 + static_cast<unsigned>(tier));
    DenseQatBackend dense(ways, kRegs);
    ReQatBackend re(ways, kRegs, /*chunk_ways=*/4);
    dense.set_ecc_mode(ecc);
    dense.set_threads(threads);
    re.set_ecc_mode(ecc);
    for (unsigned reg = 0; reg < kRegs; ++reg) {
      dense.had(reg, reg % (ways + 1));
      re.had(reg, reg % (ways + 1));
    }
    for (int step = 0; step < 80; ++step) {
      random_table3_op(rng, dense, re, ways);
      expect_backends_equal(dense, re, simd::tier_name(tier));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TiersEccThreads, ForcedTierDifferential,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(Tier::kScalar),
                          static_cast<int>(Tier::kAvx2),
                          static_cast<int>(Tier::kAvx512)),
        ::testing::Values(static_cast<int>(EccMode::kOff),
                          static_cast<int>(EccMode::kCorrect)),
        ::testing::Values(1u, 3u)));

// One wide run actually over the sharding threshold (ways 20 ≥ 2^14 words):
// sharded + SIMD must equal the single-thread scalar dense result bit for
// bit.  Kept to a handful of ops — each register is 128 KiB.
TEST(ForcedTierWide, ShardedSimdMatchesScalarAtWays20) {
  constexpr unsigned kWays = 20;
  constexpr unsigned kWideRegs = 4;
  ASSERT_GE((std::size_t{1} << kWays) / 64, DenseQatBackend::kShardMinWords);

  auto run = [&](Tier tier, unsigned threads, EccMode ecc) {
    TierGuard guard(tier);
    DenseQatBackend d(kWays, kWideRegs);
    d.set_ecc_mode(ecc);
    d.set_threads(threads);
    d.had(0, 19);
    d.had(1, 3);
    d.one(2);
    d.ccnot(3, 0, 1);
    d.cswap(0, 1, 3);
    d.and_(2, 0, 1);
    d.or_(3, 2, 0);
    d.xor_(1, 3, 2);
    d.cnot(2, 1);
    std::vector<std::size_t> sig;
    for (unsigned r = 0; r < kWideRegs; ++r) {
      sig.push_back(d.popcount(r));
      sig.push_back(d.pop_after(r, 12345));
      const auto nx = d.next_one(r, 777);
      sig.push_back(nx ? *nx + 1 : 0);
    }
    EXPECT_EQ(d.scrub_ecc().uncorrectable, 0u);
    return sig;
  };

  const auto baseline = run(Tier::kScalar, 1, EccMode::kOff);
  for (const Tier tier : supported_tiers()) {
    for (const unsigned threads : {1u, 3u}) {
      for (const EccMode ecc : {EccMode::kOff, EccMode::kCorrect}) {
        EXPECT_EQ(run(tier, threads, ecc), baseline)
            << simd::tier_name(tier) << " threads=" << threads
            << " ecc=" << static_cast<int>(ecc);
      }
    }
  }
}

// End-to-end coverage of the avx512 popcount SECDED variant on GFNI
// machines, where default dispatch would otherwise never exercise it: the
// whole dense-vs-RE differential must hold with the refinement pinned off.
TEST(GfniRefinement, PopcountVariantMatchesReEndToEnd) {
  if (!simd::gfni_supported()) {
    GTEST_SKIP() << "CPU lacks GFNI + AVX512VBMI";
  }
  TierGuard tier_guard(Tier::kAvx512);
  const bool before = simd::gfni_active();
  ASSERT_TRUE(simd::set_gfni(false));
  for (const unsigned ways : {6u, 10u, 12u}) {
    std::mt19937_64 rng(ways * 131);
    DenseQatBackend dense(ways, kRegs);
    ReQatBackend re(ways, kRegs, /*chunk_ways=*/4);
    dense.set_ecc_mode(EccMode::kCorrect);
    re.set_ecc_mode(EccMode::kCorrect);
    for (unsigned reg = 0; reg < kRegs; ++reg) {
      dense.had(reg, reg % (ways + 1));
      re.had(reg, reg % (ways + 1));
    }
    for (int step = 0; step < 80; ++step) {
      random_table3_op(rng, dense, re, ways);
      expect_backends_equal(dense, re, "avx512+popcnt");
      if (::testing::Test::HasFatalFailure()) break;
    }
    EXPECT_EQ(dense.scrub_ecc().uncorrectable, 0u);
    if (::testing::Test::HasFatalFailure()) break;
  }
  simd::set_gfni(before);
}

// --- Operand-aliasing differentials (ISSUE satellite 3) -------------------

// Every Table 3 op with every aliasing pattern (a==b, a==c, b==c,
// all-equal), dense at every tier and ECC off/correct vs the RE backend.
TEST(AliasingDifferential, Table3OpsWithAliasedOperands) {
  constexpr unsigned ways = 8;
  struct Triple {
    unsigned a, b, c;
  };
  const Triple patterns[] = {
      {0, 0, 1},  // a == b
      {0, 1, 0},  // a == c
      {0, 1, 1},  // b == c
      {0, 0, 0},  // all equal
      {0, 1, 2},  // control: no aliasing
  };
  for (const Tier tier : supported_tiers()) {
    TierGuard guard(tier);
    for (const EccMode ecc : {EccMode::kOff, EccMode::kCorrect}) {
      for (const auto& p : patterns) {
        DenseQatBackend d(ways, kRegs);
        ReQatBackend r(ways, kRegs, /*chunk_ways=*/4);
        d.set_ecc_mode(ecc);
        r.set_ecc_mode(ecc);
        // Distinct non-trivial contents per register.
        for (unsigned reg = 0; reg < kRegs; ++reg) {
          d.had(reg, reg % (ways + 1));
          r.had(reg, reg % (ways + 1));
          if (reg % 2) {
            d.not_(reg);
            r.not_(reg);
          }
        }
        for (int op = 0; op < 7; ++op) {
          switch (op) {
            case 0: d.cnot(p.a, p.b); r.cnot(p.a, p.b); break;
            case 1: d.ccnot(p.a, p.b, p.c); r.ccnot(p.a, p.b, p.c); break;
            case 2: d.swap(p.a, p.b); r.swap(p.a, p.b); break;
            case 3: d.cswap(p.a, p.b, p.c); r.cswap(p.a, p.b, p.c); break;
            case 4: d.and_(p.a, p.b, p.c); r.and_(p.a, p.b, p.c); break;
            case 5: d.or_(p.a, p.b, p.c); r.or_(p.a, p.b, p.c); break;
            default: d.xor_(p.a, p.b, p.c); r.xor_(p.a, p.b, p.c); break;
          }
          expect_backends_equal(d, r, simd::tier_name(tier));
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

// --- Epoch-overflow regression (ISSUE satellite 1) ------------------------

TEST(EccEpochOverflow, FreshnessArithmeticDoesNotWrap) {
  // The historical additive form (now < stamp - 1 + epoch) wrapped for large
  // epochs: stamp=5, epoch=UINT64_MAX gave stamp-1+epoch == 3, so NOTHING
  // was ever fresh.  The subtraction form must report fresh.
  constexpr std::uint64_t kHuge = ~std::uint64_t{0};
  EXPECT_TRUE(ecc_epoch_fresh(/*now=*/10, /*stamp=*/5, kHuge));
  EXPECT_TRUE(ecc_epoch_fresh(10, 5, kMaxEccEpoch));
  // Basic semantics preserved: epoch 1 and unstamped state never fresh.
  EXPECT_FALSE(ecc_epoch_fresh(10, 5, 1));
  EXPECT_FALSE(ecc_epoch_fresh(10, 0, kHuge));
  // Exactly-epoch-old state is stale, one tick younger is fresh.
  EXPECT_FALSE(ecc_epoch_fresh(/*now=*/100, /*stamp=*/1, /*epoch=*/100));
  EXPECT_TRUE(ecc_epoch_fresh(/*now=*/99, /*stamp=*/1, /*epoch=*/100));
  // Large clock values (late in a long run) stay exact.
  const std::uint64_t late = std::uint64_t{1} << 63;
  EXPECT_TRUE(ecc_epoch_fresh(late + 10, late + 1, kMaxEccEpoch));
  EXPECT_FALSE(ecc_epoch_fresh(late + kMaxEccEpoch, late + 1, kMaxEccEpoch));
}

TEST(EccEpochOverflow, SetEpochClampsAndElidesAtUint64Max) {
  // `--ecc-epoch=UINT64_MAX` (everything-is-fresh-forever) must behave as a
  // huge epoch, not wrap into verify-always.
  for (const Backend kind : {Backend::kDense, Backend::kCompressed}) {
    auto b = make_qat_backend(kind, 8, kRegs);
    b->set_ecc_mode(EccMode::kCorrect);
    b->set_ecc_epoch(~std::uint64_t{0});
    EXPECT_EQ(b->ecc_epoch(), kMaxEccEpoch);

    b->had(1, 3);
    b->cnot(2, 1);       // verifies + stamps operands/dest
    b->take_ecc_counts();  // drain
    b->ecc_tick(1000);   // far along the clock, still inside the epoch
    b->popcount(1);
    b->popcount(2);
    const EccSweep s = b->take_ecc_counts();
    EXPECT_GT(s.elided, 0u)
        << "huge epoch failed to elide re-verification ("
        << (kind == Backend::kDense ? "dense" : "re") << ")";
    EXPECT_EQ(s.uncorrectable, 0u);
  }
}

TEST(EccEpochOverflow, ZeroEpochClampsToVerifyAlways) {
  DenseQatBackend d(6, 4);
  d.set_ecc_epoch(0);
  EXPECT_EQ(d.ecc_epoch(), 1u);
}

}  // namespace
}  // namespace pbp
