// test_crash_soak.cpp — SIGKILL/restart chaos for the durable job journal
// (label `crash`; the ISSUE 8 acceptance harness).
//
// Each round boots a REAL tangled_served process (found via the
// TANGLED_SERVED_BIN compile definition) on a shared journal directory,
// submits a batch of idempotency-keyed jobs over the real wire protocol,
// then SIGKILLs the daemon at a seeded random point — sometimes before any
// job finished, sometimes mid-submission, sometimes after reports were
// already streamed.  A fresh daemon is then started on the same directory
// and every key is resubmitted.  The invariants, per round:
//
//   * no lost jobs — every key ends with a kCompleted report (the answer is
//     validated server-side via the spec's expect list);
//   * no duplicate results — at most one report per key per daemon life,
//     and a key whose report was already streamed before the kill comes
//     back deduped with the SAME instruction count (proof the job did not
//     execute twice);
//   * clean recovery — the restarted daemon replays the journal without
//     error and exits 0 on SIGTERM.
//
// Round count comes from TANGLED_CRASH_ROUNDS (default 12; scripts/check.sh
// crash runs 100 under ASan/UBSan, the tsan lane runs 8).
//
// The ENOSPC/EIO tests arm the daemon's TANGLED_JOURNAL_FAILPOINT env hook:
// a full or erroring disk must degrade (shed new admissions with a
// structured retry hint) — never crash, never corrupt the journal.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "serve/net/client.hpp"

namespace tangled::serve::net {
namespace {

using namespace std::chrono_literals;

#ifndef TANGLED_SERVED_BIN
#error "TANGLED_SERVED_BIN must point at the tangled_served executable"
#endif

unsigned rounds_from_env(unsigned fallback) {
  const char* env = std::getenv("TANGLED_CRASH_ROUNDS");
  if (env == nullptr || *env == '\0') return fallback;
  const unsigned long v = std::strtoul(env, nullptr, 10);
  return v == 0 ? fallback : static_cast<unsigned>(v);
}

/// ~2M-instruction factoring run: long enough that a SIGKILL routinely
/// lands mid-execution, with mid-run checkpoints for the journal to persist.
const char* long_source() {
  return R"(
        had @0,3
        had @1,5
        and @2,@0,@1
        li  $1,2000
        lex $4,-1
 outer: li  $2,200
 inner: add $2,$4
        jumpt $2,inner
        add $1,$4
        jumpt $1,outer
        lex $1,5
        lex $2,3
        sys
)";
}

/// The short fig10-style run (finishes in well under a millisecond).
const char* short_source() {
  return R"(
        lex $1,5
        lex $2,3
        sys
)";
}

SubmitRequest keyed_request(const std::string& key, bool long_job) {
  SubmitRequest req;
  req.name = key;
  req.source = long_job ? long_source() : short_source();
  req.sim = SimKind::kFunc;
  req.ways = 8;
  req.max_instructions = 8'000'000;
  req.checkpoint_every = long_job ? 200'000 : 0;
  req.expect = {{1, 5}, {2, 3}};
  req.idempotency_key = key;
  return req;
}

/// One tangled_served child process with captured stdout.
class Daemon {
 public:
  /// Start on `journal_dir`; `failpoint` (may be empty) becomes the child's
  /// TANGLED_JOURNAL_FAILPOINT.  Returns false (with a diagnosis in *err)
  /// when the daemon does not reach its listening line.
  bool start(const std::string& journal_dir, const std::string& failpoint,
             std::string* err) {
    // A Daemon is reused across lives; a stale listening line from the
    // previous life must not satisfy (or mis-port) this one's parse.
    output_.clear();
    port_ = 0;
    int fds[2];
    if (::pipe(fds) != 0) {
      *err = std::string("pipe: ") + std::strerror(errno);
      return false;
    }
    pid_ = ::fork();
    if (pid_ < 0) {
      *err = std::string("fork: ") + std::strerror(errno);
      ::close(fds[0]);
      ::close(fds[1]);
      return false;
    }
    if (pid_ == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::dup2(fds[1], STDERR_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      if (!failpoint.empty()) {
        ::setenv("TANGLED_JOURNAL_FAILPOINT", failpoint.c_str(), 1);
      } else {
        ::unsetenv("TANGLED_JOURNAL_FAILPOINT");
      }
      const std::string journal = "--journal=" + journal_dir;
      ::execl(TANGLED_SERVED_BIN, "tangled_served", "--port=0", "--threads=4",
              journal.c_str(), "--checkpoint-every=200000",
              "--retry-after-ms=1", "--submit-wait-ms=100", nullptr);
      std::perror("execl");
      ::_exit(127);
    }
    ::close(fds[1]);
    out_fd_ = fds[0];
    // The listening line is the daemon's first output; 10 s is generous.
    if (!read_until_listening(err)) {
      kill_now();
      return false;
    }
    return true;
  }

  std::uint16_t port() const { return port_; }
  pid_t pid() const { return pid_; }
  const std::string& output() const { return output_; }

  bool alive() {
    return pid_ > 0 && ::waitpid(pid_, nullptr, WNOHANG) == 0 &&
           ::kill(pid_, 0) == 0;
  }

  /// SIGKILL + reap: the crash.
  void kill_now() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    close_pipe();
  }

  /// SIGTERM + reap; returns the daemon's exit code (-1 = signal death).
  int terminate() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    drain_pipe();
    close_pipe();
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  ~Daemon() { kill_now(); }

 private:
  bool read_until_listening(std::string* err) {
    const char* needle = "listening on 127.0.0.1:";
    for (int spins = 0; spins < 1000; ++spins) {
      const std::size_t at = output_.find(needle);
      if (at != std::string::npos &&
          output_.find('\n', at) != std::string::npos) {
        port_ = static_cast<std::uint16_t>(
            std::strtoul(output_.c_str() + at + std::strlen(needle), nullptr,
                         10));
        return port_ != 0;
      }
      pollfd p{out_fd_, POLLIN, 0};
      const int r = ::poll(&p, 1, 10);
      if (r > 0) {
        char buf[512];
        const ssize_t n = ::read(out_fd_, buf, sizeof buf);
        if (n <= 0) break;  // daemon died before listening
        output_.append(buf, static_cast<std::size_t>(n));
      }
    }
    *err = "daemon never reported a port; output:\n" + output_;
    return false;
  }

  void drain_pipe() {
    if (out_fd_ < 0) return;
    char buf[512];
    while (true) {
      pollfd p{out_fd_, POLLIN, 0};
      if (::poll(&p, 1, 50) <= 0) break;
      const ssize_t n = ::read(out_fd_, buf, sizeof buf);
      if (n <= 0) break;
      output_.append(buf, static_cast<std::size_t>(n));
    }
  }

  void close_pipe() {
    if (out_fd_ >= 0) ::close(out_fd_);
    out_fd_ = -1;
  }

  pid_t pid_ = -1;
  int out_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string output_;
};

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/tangled-crash-XXXXXX";
    EXPECT_NE(::mkdtemp(tmpl), nullptr) << std::strerror(errno);
    path_ = tmpl;
  }
  ~TempDir() {
    // Best-effort cleanup; the directory holds only journal files.
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ServeClientConfig client_config(std::uint16_t port, std::uint64_t seed) {
  ServeClientConfig c;
  c.port = port;
  c.seed = seed;
  c.connect_attempts = 3;
  c.io_timeout = 10'000ms;
  return c;
}

TEST(CrashSoak, NoJobLostNoResultDuplicatedAcrossSigkill) {
  const unsigned rounds = rounds_from_env(12);
  constexpr unsigned kJobsPerRound = 6;
  TempDir dir;
  std::mt19937_64 rng(0xdeadbeefULL);

  for (unsigned round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    Daemon daemon;
    std::string err;
    ASSERT_TRUE(daemon.start(dir.path(), "", &err)) << err;

    // Life 1: submit the round's keyed batch, then crash at a random point.
    std::map<std::string, JobReport> before_kill;
    {
      ServeClient client(client_config(daemon.port(), rng()));
      ASSERT_TRUE(client.connect().ok);
      for (unsigned i = 0; i < kJobsPerRound; ++i) {
        const std::string key =
            "r" + std::to_string(round) + "-j" + std::to_string(i);
        // Mix long (kill lands mid-run) and short (often already done).
        const SubmitRequest req = keyed_request(key, i % 2 == 0);
        // A kill mid-submission is part of the chaos: ignore failures.
        (void)client.submit(req);
        if (i == rng() % kJobsPerRound) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(rng() % 25));
        }
      }
      // Sometimes linger and collect a few reports before the kill, so the
      // dedup path (report durable, then crash) is exercised too.
      const auto linger = std::chrono::milliseconds(rng() % 40);
      const auto until = std::chrono::steady_clock::now() + linger;
      while (std::chrono::steady_clock::now() < until) {
        const auto rep = client.next_report(5ms);
        if (!rep) continue;
        EXPECT_EQ(rep->outcome, JobOutcome::kCompleted) << rep->to_string();
        before_kill[rep->idem_key] = *rep;
      }
      daemon.kill_now();  // <-- the crash
    }

    // Life 2: restart on the same journal, resubmit every key, drain.
    ASSERT_TRUE(daemon.start(dir.path(), "", &err)) << err;
    ServeClient client(client_config(daemon.port(), rng()));
    ASSERT_TRUE(client.connect().ok);
    for (unsigned i = 0; i < kJobsPerRound; ++i) {
      const std::string key =
          "r" + std::to_string(round) + "-j" + std::to_string(i);
      ClientResult res;
      const auto id = client.submit(keyed_request(key, i % 2 == 0), &res);
      ASSERT_TRUE(id.has_value())
          << key << ": " << wire_error_name(res.code) << " " << res.message;
    }
    std::map<std::string, unsigned> seen;
    std::map<std::string, JobReport> after;
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    while (after.size() < kJobsPerRound &&
           std::chrono::steady_clock::now() < deadline) {
      const auto rep = client.next_report(250ms);
      if (!rep) continue;
      ++seen[rep->idem_key];
      after[rep->idem_key] = *rep;
    }

    for (unsigned i = 0; i < kJobsPerRound; ++i) {
      const std::string key =
          "r" + std::to_string(round) + "-j" + std::to_string(i);
      SCOPED_TRACE(key);
      ASSERT_EQ(after.count(key), 1u) << "lost job (no terminal report)";
      const JobReport& rep = after.at(key);
      EXPECT_EQ(seen[key], 1u) << "duplicate report in one daemon life";
      // kCompleted implies the expect list matched: the answer is correct.
      EXPECT_EQ(rep.outcome, JobOutcome::kCompleted) << rep.to_string();
      EXPECT_EQ(rep.idem_key, key);
      const auto first = before_kill.find(key);
      if (first != before_kill.end()) {
        // The result was already delivered once: the journal must re-serve
        // THAT run's report, not execute the job a second time.
        EXPECT_TRUE(rep.deduped) << rep.to_string();
        EXPECT_EQ(rep.instructions, first->second.instructions);
        EXPECT_EQ(rep.attempts, first->second.attempts);
      }
    }

    EXPECT_EQ(daemon.terminate(), 0)
        << "drain after recovery must exit cleanly:\n"
        << daemon.output();
  }
}

void disk_failure_round(const std::string& failpoint) {
  TempDir dir;
  Daemon daemon;
  std::string err;
  ASSERT_TRUE(daemon.start(dir.path(), failpoint, &err)) << err;
  ServeClient client(client_config(daemon.port(), 0x5eedULL));
  ASSERT_TRUE(client.connect().ok);

  // Keep submitting until the failpoint bites: admissions must shed with a
  // structured failure, never kill the daemon.
  std::vector<std::string> acked;
  bool shed = false;
  for (unsigned i = 0; i < 20 && !shed; ++i) {
    const std::string key = "disk-" + std::to_string(i);
    ClientResult res;
    const auto id = client.submit(keyed_request(key, false), &res);
    if (id.has_value()) {
      acked.push_back(key);
    } else {
      shed = true;
      EXPECT_NE(res.code, WireError::kTransport)
          << "shed must be a structured reply, not a dead socket: "
          << res.message;
    }
  }
  EXPECT_TRUE(shed) << "failpoint never triggered";
  // Degraded, not dead: the daemon still answers.
  EXPECT_TRUE(client.ping().ok);
  EXPECT_TRUE(daemon.alive());
  EXPECT_EQ(daemon.terminate(), 0) << daemon.output();

  // The journal a degraded daemon leaves behind replays cleanly, and every
  // acknowledged job is still exactly-once: resubmits complete (deduped or
  // re-run), with one report each.
  ASSERT_TRUE(daemon.start(dir.path(), "", &err)) << err;
  ServeClient fresh(client_config(daemon.port(), 0xf00dULL));
  ASSERT_TRUE(fresh.connect().ok);
  for (const std::string& key : acked) {
    ClientResult res;
    const auto id = fresh.submit(keyed_request(key, false), &res);
    ASSERT_TRUE(id.has_value()) << key << ": " << res.message;
  }
  std::map<std::string, unsigned> seen;
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (seen.size() < acked.size() &&
         std::chrono::steady_clock::now() < deadline) {
    const auto rep = fresh.next_report(250ms);
    if (!rep) continue;
    EXPECT_EQ(rep->outcome, JobOutcome::kCompleted) << rep->to_string();
    ++seen[rep->idem_key];
  }
  for (const std::string& key : acked) {
    EXPECT_EQ(seen[key], 1u) << key;
  }
  EXPECT_EQ(daemon.terminate(), 0) << daemon.output();
}

TEST(CrashSoak, EnospcDegradesGracefully) { disk_failure_round("enospc@6"); }

TEST(CrashSoak, EioDegradesGracefully) { disk_failure_round("eio@6"); }

}  // namespace
}  // namespace tangled::serve::net
