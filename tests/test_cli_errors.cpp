// test_cli_errors.cpp — unit tests for the strict CLI numeric parsers the
// example binaries share (examples/cli_parse.hpp).  The contract: a value
// is accepted only when the WHOLE string is a number in range; anything
// else is nullopt so the binary can exit 2 with a usage message instead of
// silently running with a zeroed flag (the historical std::atoi failure).
#include <gtest/gtest.h>

#include "cli_parse.hpp"

namespace {

TEST(CliParse, U64AcceptsWholeDecimalStrings) {
  EXPECT_EQ(cli::parse_u64("0"), 0u);
  EXPECT_EQ(cli::parse_u64("42"), 42u);
  EXPECT_EQ(cli::parse_u64("18446744073709551615"), ~std::uint64_t{0});
}

TEST(CliParse, U64RejectsGarbageSignsAndOverflow) {
  EXPECT_FALSE(cli::parse_u64(""));
  EXPECT_FALSE(cli::parse_u64("abc"));
  EXPECT_FALSE(cli::parse_u64("12x"));     // trailing garbage
  EXPECT_FALSE(cli::parse_u64("x12"));     // leading garbage
  EXPECT_FALSE(cli::parse_u64(" 12"));     // whitespace
  EXPECT_FALSE(cli::parse_u64("12 "));
  EXPECT_FALSE(cli::parse_u64("-1"));      // signs are not unsigned
  EXPECT_FALSE(cli::parse_u64("+1"));
  EXPECT_FALSE(cli::parse_u64("1.5"));
  EXPECT_FALSE(cli::parse_u64("18446744073709551616"));  // 2^64 overflows
}

TEST(CliParse, UnsignedAppliesTheCallerBound) {
  EXPECT_EQ(cli::parse_unsigned("65535", 65535), 65535u);
  EXPECT_FALSE(cli::parse_unsigned("65536", 65535));  // the --port=70000 bug
  EXPECT_FALSE(cli::parse_unsigned("4294967296"));    // > unsigned range
  EXPECT_EQ(cli::parse_unsigned("0", 0), 0u);
}

TEST(CliParse, IntHandlesSignsAndRange) {
  EXPECT_EQ(cli::parse_int("0"), 0);
  EXPECT_EQ(cli::parse_int("-1"), -1);
  EXPECT_EQ(cli::parse_int("2147483647"), 2147483647);
  EXPECT_EQ(cli::parse_int("-2147483648"), -2147483647 - 1);
  EXPECT_FALSE(cli::parse_int("2147483648"));
  EXPECT_FALSE(cli::parse_int("-2147483649"));
  EXPECT_FALSE(cli::parse_int("--1"));
  EXPECT_FALSE(cli::parse_int("-"));
  EXPECT_FALSE(cli::parse_int("1e3"));
}

TEST(CliParse, DoubleRejectsPartialParses) {
  EXPECT_EQ(cli::parse_double("0.25"), 0.25);
  EXPECT_EQ(cli::parse_double("-1.5"), -1.5);
  EXPECT_EQ(cli::parse_double("1e-3"), 1e-3);
  EXPECT_FALSE(cli::parse_double(""));
  EXPECT_FALSE(cli::parse_double("0.25x"));
  EXPECT_FALSE(cli::parse_double(" 0.25"));
  EXPECT_FALSE(cli::parse_double("nope"));
}

}  // namespace
