// Fault-injection soak (label `soak`): hundreds of seeded random fault
// plans against the Figure 10 factoring program.  The contract under test
// is the ISSUE's acceptance bar: every run must end in a correct answer, a
// recorded architectural trap, or a successful rollback — NEVER an uncaught
// exception.  scripts/check.sh additionally runs this suite under
// AddressSanitizer/UBSan (-DTANGLED_SANITIZE=ON).
#include <gtest/gtest.h>

#include <cstdint>

#include "arch/multicycle_fsm.hpp"
#include "arch/recovery.hpp"
#include "arch/rtl_pipeline.hpp"
#include "arch/simulators.hpp"
#include "asm/assembler.hpp"
#include "asm/programs.hpp"

namespace tangled {
namespace {

constexpr std::uint64_t kBudget = 20'000;  // fig10 needs 91 instructions

bool factors_ok(const CpuState& cpu) {
  return cpu.regs[0] == 5 && cpu.regs[1] == 3;
}

/// Soak aggregates: proof the plans actually upset state, not just that
/// nothing crashed.
struct SoakTally {
  std::uint64_t runs = 0;
  std::uint64_t recovered = 0;  // runs needing at least one restore
  std::uint64_t faults_applied = 0;
};

/// One seeded recovery run.  The contract: converge to the correct
/// factoring answer; any escaping exception fails the whole suite.
template <typename Sim>
void soak_one(Sim& sim, const Program& p, std::uint64_t seed,
              std::uint64_t checkpoint_every, unsigned ways,
              SoakTally& tally) {
  sim.load(p);
  sim.set_fault_plan(FaultPlan::random(seed, /*n_events=*/6,
                                       /*horizon=*/120, ways));
  CheckpointingRunner<Sim> runner(sim, checkpoint_every);
  const RecoveryStats rs = runner.run(
      kBudget, [](const Sim& s) { return factors_ok(s.cpu()); });
  ++tally.runs;
  tally.faults_applied += sim.injector().applied();
  if (rs.recovered) ++tally.recovered;
  EXPECT_FALSE(rs.gave_up) << "seed " << seed << " exhausted its attempt "
                           << "budget; final trap "
                           << to_string(rs.final_trap);
  if (rs.gave_up) return;
  EXPECT_TRUE(rs.halted) << "seed " << seed;
  EXPECT_TRUE(factors_ok(sim.cpu())) << "seed " << seed;
}

TEST(FaultSoak, FunctionalDenseRollback) {
  const Program p = assemble(figure10_source());
  SoakTally tally;
  for (std::uint64_t seed = 0; seed < 70; ++seed) {
    FunctionalSim sim(8, pbp::Backend::kDense);
    soak_one(sim, p, seed, /*checkpoint_every=*/25, 8, tally);
  }
  EXPECT_GT(tally.faults_applied, 0u);  // the plans really fired
  EXPECT_GT(tally.recovered, 0u);       // and some runs really needed recovery
}

TEST(FaultSoak, FunctionalCompressedRollback) {
  const Program p = assemble(figure10_source());
  SoakTally tally;
  for (std::uint64_t seed = 100; seed < 170; ++seed) {
    FunctionalSim sim(16, pbp::Backend::kCompressed);
    soak_one(sim, p, seed, /*checkpoint_every=*/25, 16, tally);
  }
  EXPECT_GT(tally.faults_applied, 0u);
  EXPECT_GT(tally.recovered, 0u);
}

TEST(FaultSoak, MultiCycleFsmRollback) {
  const Program p = assemble(figure10_source());
  SoakTally tally;
  for (std::uint64_t seed = 200; seed < 270; ++seed) {
    MultiCycleFsmSim sim(8, pbp::Backend::kDense);
    soak_one(sim, p, seed, /*checkpoint_every=*/25, 8, tally);
  }
  EXPECT_GT(tally.faults_applied, 0u);
  EXPECT_GT(tally.recovered, 0u);
}

TEST(FaultSoak, RtlPipelineRestartOnly) {
  // The latch-level model discards in-flight pipeline state between run()
  // calls, so mid-run slicing is not sound there: recovery is restart-only
  // (checkpoint_every = 0).
  const Program p = assemble(figure10_source());
  SoakTally tally;
  for (std::uint64_t seed = 300; seed < 330; ++seed) {
    RtlPipelineSim sim(8, pbp::Backend::kDense);
    soak_one(sim, p, seed, /*checkpoint_every=*/0, 8, tally);
  }
  EXPECT_GT(tally.faults_applied, 0u);
  EXPECT_GT(tally.recovered, 0u);
}

TEST(FaultSoak, PoolExhaustionMigratesAndStillFactors) {
  // The ISSUE's acceptance scenario: force RE chunk-pool exhaustion at
  // ways <= 16 and require the full factoring run to finish with the
  // correct answer via a transparent RE -> dense migration.
  const Program p = assemble(figure10_source());
  FunctionalSim sim(16, pbp::Backend::kCompressed);
  sim.load(p);
  FaultPlan plan;
  plan.max_pool_symbols = 8;
  sim.set_fault_plan(plan);
  const SimStats st = sim.run();
  ASSERT_TRUE(st.halted);
  EXPECT_EQ(st.trap.kind, TrapKind::kNone);
  EXPECT_TRUE(factors_ok(sim.cpu()));
  EXPECT_EQ(sim.qat().backend_kind(), pbp::Backend::kDense);
  EXPECT_EQ(sim.qat().stats().backend_migrations, 1u);
}

TEST(FaultSoak, PoolExhaustionAtWideWaysTrapsCleanly) {
  // Beyond kMaxAobWays there is no dense escape hatch: the same forced
  // exhaustion must end in a clean kResourceExhausted trap, not an abort.
  const Program p = assemble(figure10_source());
  FunctionalSim sim(36, pbp::Backend::kCompressed);
  sim.load(p);
  FaultPlan plan;
  plan.max_pool_symbols = 8;
  sim.set_fault_plan(plan);
  const SimStats st = sim.run();
  ASSERT_TRUE(st.halted);
  EXPECT_EQ(st.trap.kind, TrapKind::kResourceExhausted);
}

}  // namespace
}  // namespace tangled
