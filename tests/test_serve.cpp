// test_serve.cpp — unit tests for the concurrent job service (label
// `serve`): admission control, deadlines, cancellation, retry/quarantine,
// memory budgeting with RE→dense migration shedding, and drain semantics.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "asm/programs.hpp"
#include "pbp/qat_backend.hpp"
#include "serve/backoff.hpp"
#include "serve/job_server.hpp"

namespace tangled::serve {
namespace {

using namespace std::chrono_literals;

bool factors_ok(const CpuState& cpu) {
  return cpu.regs[0] == 5 && cpu.regs[1] == 3;
}

Job fig10_job(SimKind sim, pbp::Backend backend = pbp::Backend::kDense,
              unsigned ways = 8) {
  Job j;
  j.name = std::string("fig10-") + sim_kind_name(sim);
  j.program = assemble(figure10_source());
  j.sim = sim;
  j.backend = backend;
  j.ways = ways;
  j.max_instructions = 20'000;
  j.checkpoint_every = 25;
  j.validate = factors_ok;
  return j;
}

Job spin_job() {
  Job j;
  j.name = "spin";
  j.program = assemble("loop: br loop\n");
  j.max_instructions = 2'000'000'000ULL;
  return j;
}

TEST(Serve, CleanJobsOnEveryModelComplete) {
  JobServer server({.threads = 4});
  std::vector<JobServer::JobId> ids;
  for (const SimKind k :
       {SimKind::kFunc, SimKind::kMulti, SimKind::kMultiFsm, SimKind::kPipe4,
        SimKind::kPipe5, SimKind::kPipe5NoFwd, SimKind::kRtl}) {
    const auto id = server.submit(fig10_job(k));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  const auto reports = server.wait_all();
  ASSERT_EQ(reports.size(), ids.size());
  for (const auto& r : reports) {
    EXPECT_EQ(r.outcome, JobOutcome::kCompleted) << r.to_string();
    EXPECT_EQ(r.attempts, 1u) << r.to_string();
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.qat_ops, 0u);
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, ids.size());
  EXPECT_EQ(s.completed, ids.size());
  EXPECT_EQ(s.in_flight_bytes, 0u);  // everything released
}

TEST(Serve, InjectedFaultsRecoverThroughCheckpointRunner) {
  JobServer server({.threads = 4});
  unsigned recovered = 0;
  std::vector<JobServer::JobId> ids;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Job j = fig10_job(SimKind::kFunc);
    j.name = "faulty-" + std::to_string(seed);
    j.fault_plan = FaultPlan::random(seed, /*n_events=*/6, /*horizon=*/120, 8);
    ids.push_back(*server.submit(std::move(j)));
  }
  for (const auto id : ids) {
    const JobReport r = server.wait(id);
    EXPECT_EQ(r.outcome, JobOutcome::kCompleted) << r.to_string();
    if (r.recovered) ++recovered;
  }
  EXPECT_GT(recovered, 0u) << "no fault plan forced a recovery";
}

TEST(Serve, RetryResumesShardedEccJobs) {
  // The robustness features must compose: a wide job using intra-register
  // sharding (ways ≥ 20, qat_threads > 1) with epoch-scheduled ECC
  // verification still recovers through the checkpointing runner when
  // architectural faults are injected, and still lands on the right answer.
  JobServer server({.threads = 4});
  unsigned recovered = 0;
  std::vector<JobServer::JobId> ids;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Job j = fig10_job(SimKind::kFunc, pbp::Backend::kDense, /*ways=*/20);
    j.name = "sharded-ecc-faulty-" + std::to_string(seed);
    j.qat_threads = 2;
    j.ecc = pbp::EccMode::kCorrect;
    j.ecc_epoch = 25;
    j.fault_plan = FaultPlan::random(seed, /*n_events=*/6, /*horizon=*/120, 20);
    ids.push_back(*server.submit(std::move(j)));
  }
  for (const auto id : ids) {
    const JobReport r = server.wait(id);
    EXPECT_EQ(r.outcome, JobOutcome::kCompleted) << r.to_string();
    if (r.recovered) ++recovered;
  }
  EXPECT_GT(recovered, 0u) << "no fault plan forced a recovery";
}

TEST(Serve, HopelessJobQuarantinesWithTrapKind) {
  // RE at ways beyond the dense escape hatch + a capped chunk pool: every
  // attempt deterministically dies with kResourceExhausted, so the job must
  // burn its retries and quarantine with that trap recorded.
  JobServer server(
      {.threads = 1, .retry_max = 2, .backoff_base = 1ms, .backoff_cap = 4ms});
  Job j = fig10_job(SimKind::kFunc, pbp::Backend::kCompressed, 36);
  j.fault_plan.max_pool_symbols = 8;
  j.validate = nullptr;
  const auto id = *server.submit(std::move(j));
  const JobReport r = server.wait(id);
  EXPECT_EQ(r.outcome, JobOutcome::kQuarantined) << r.to_string();
  EXPECT_EQ(r.trap.kind, TrapKind::kResourceExhausted) << r.to_string();
  EXPECT_EQ(r.attempts, 3u);  // 1 + retry_max
  EXPECT_GT(r.retries, 0u);
  EXPECT_GT(r.backoff_ms, 0.0) << "retries must be separated by backoff";
}

TEST(Serve, DeadlineExpiresARunawayJob) {
  JobServer server({.threads = 1});
  Job j = spin_job();
  j.deadline = 50ms;
  const auto id = *server.submit(std::move(j));
  const JobReport r = server.wait(id);
  EXPECT_EQ(r.outcome, JobOutcome::kDeadlineExpired) << r.to_string();
  EXPECT_LT(r.exec_ms, 5000.0);  // polled out long before max_instructions
}

TEST(Serve, CancelStopsARunningJob) {
  JobServer server({.threads = 1});
  const auto id = *server.submit(spin_job());
  // Let it reach the worker, then cancel cooperatively.
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(server.cancel(*server.submit(spin_job())));  // queued one too
  EXPECT_TRUE(server.cancel(id));
  const auto reports = server.wait_all();
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& r : reports) {
    EXPECT_EQ(r.outcome, JobOutcome::kCancelled) << r.to_string();
  }
  EXPECT_FALSE(server.cancel(id)) << "terminal jobs cannot be re-cancelled";
  EXPECT_FALSE(server.cancel(9999)) << "unknown ids are not cancellable";
}

TEST(Serve, QueueFullRejectsButBlockingSubmitBackpressures) {
  JobServer server({.threads = 1, .queue_capacity = 1});
  // Occupy the worker and fill the single queue slot.
  const auto running = *server.submit(spin_job());
  std::this_thread::sleep_for(20ms);
  const auto queued = *server.submit(spin_job());
  std::string reason;
  EXPECT_FALSE(server.try_submit(spin_job(), &reason).has_value());
  EXPECT_EQ(reason, "queue-full");
  EXPECT_GE(server.stats().queue_full_rejections, 1u);
  // A blocking submit parks until space frees up (the cancel below).
  std::thread unblocker([&] {
    std::this_thread::sleep_for(30ms);
    server.cancel(running);
    server.cancel(queued);
  });
  Job third = fig10_job(SimKind::kFunc);
  const auto id3 = server.submit(std::move(third));
  unblocker.join();
  ASSERT_TRUE(id3.has_value());
  server.cancel(*id3);  // don't care how it ends; just that it terminates
  const auto reports = server.wait_all();
  EXPECT_EQ(reports.size(), 3u);
}

TEST(Serve, OversizedDenseJobIsRejectedByAdmission) {
  // dense ways=20 needs 2^20/8 * 256 = 32 MiB; give the server half that.
  JobServer server({.threads = 1, .memory_budget_bytes = 16u << 20});
  Job j = fig10_job(SimKind::kFunc, pbp::Backend::kDense, 20);
  const auto id = *server.submit(std::move(j));
  const JobReport r = server.wait(id);
  EXPECT_EQ(r.outcome, JobOutcome::kRejectedMemory) << r.to_string();
  EXPECT_NE(r.error.find("budget"), std::string::npos) << r.error;
  EXPECT_EQ(server.stats().rejected_memory, 1u);
}

TEST(Serve, MemoryBudgetSerializesWideJobs) {
  // Two dense ways=16 jobs (2 MiB each) against a 3 MiB budget: they must
  // run one at a time, and both must finish.
  JobServer server({.threads = 2, .memory_budget_bytes = 3u << 20});
  const auto a = *server.submit(fig10_job(SimKind::kFunc,
                                          pbp::Backend::kDense, 16));
  const auto b = *server.submit(fig10_job(SimKind::kMulti,
                                          pbp::Backend::kDense, 16));
  EXPECT_EQ(server.wait(a).outcome, JobOutcome::kCompleted);
  EXPECT_EQ(server.wait(b).outcome, JobOutcome::kCompleted);
  const ServerStats s = server.stats();
  EXPECT_LE(s.peak_in_flight_bytes, std::size_t{3} << 20);
  EXPECT_EQ(s.in_flight_bytes, 0u);
}

TEST(Serve, MigrationShedsUnderMemoryPressure) {
  // An RE job whose pool is capped wants to degrade to dense (2 MiB extra at
  // ways=16).  With a budget that can't absorb the delta the migration is
  // vetoed, the job traps kResourceExhausted, and the shed is counted.
  JobServer server({.threads = 1,
                    .memory_budget_bytes = 5u << 20,
                    .retry_max = 1,
                    .backoff_base = 1ms,
                    .backoff_cap = 2ms});
  Job j = fig10_job(SimKind::kFunc, pbp::Backend::kCompressed, 16);
  j.fault_plan.max_pool_symbols = 8;
  j.validate = nullptr;
  const auto id = *server.submit(std::move(j));
  const JobReport r = server.wait(id);
  EXPECT_EQ(r.outcome, JobOutcome::kQuarantined) << r.to_string();
  EXPECT_EQ(r.trap.kind, TrapKind::kResourceExhausted) << r.to_string();
  EXPECT_EQ(r.backend_migrations, 0u);
  EXPECT_GT(server.stats().migrations_shed, 0u);
}

TEST(Serve, MigrationProceedsWhenBudgetAllows) {
  // Same job, roomy budget: the degradation is admitted and the job
  // completes on the dense backend.
  JobServer server({.threads = 1, .memory_budget_bytes = 64u << 20});
  Job j = fig10_job(SimKind::kFunc, pbp::Backend::kCompressed, 16);
  j.fault_plan.max_pool_symbols = 8;
  const auto id = *server.submit(std::move(j));
  const JobReport r = server.wait(id);
  EXPECT_EQ(r.outcome, JobOutcome::kCompleted) << r.to_string();
  EXPECT_EQ(r.backend_migrations, 1u) << r.to_string();
  EXPECT_EQ(server.stats().migrations_shed, 0u);
  EXPECT_EQ(server.stats().in_flight_bytes, 0u);  // extra reservation freed
}

TEST(Serve, DrainShutdownRunsEverythingExactlyOnce) {
  std::vector<JobServer::JobId> ids;
  std::vector<JobReport> reports;
  {
    JobServer server({.threads = 2});
    for (int i = 0; i < 12; ++i) {
      ids.push_back(*server.submit(fig10_job(SimKind::kFunc)));
    }
    server.shutdown(/*drain=*/true);
    EXPECT_FALSE(server.submit(fig10_job(SimKind::kFunc)).has_value());
    std::string reason;
    EXPECT_FALSE(server.try_submit(fig10_job(SimKind::kFunc), &reason));
    EXPECT_EQ(reason, "shutting-down");
    reports = server.wait_all();  // everything already terminal
  }
  ASSERT_EQ(reports.size(), ids.size());
  std::set<std::uint64_t> seen;
  for (const auto& r : reports) {
    EXPECT_TRUE(seen.insert(r.id).second) << "duplicate report " << r.id;
    EXPECT_EQ(r.outcome, JobOutcome::kCompleted) << r.to_string();
  }
}

TEST(Serve, AbortShutdownCancelsQueuedJobs) {
  JobServer server({.threads = 1});
  const auto running = *server.submit(spin_job());
  std::vector<JobServer::JobId> queued;
  for (int i = 0; i < 4; ++i) queued.push_back(*server.submit(spin_job()));
  std::this_thread::sleep_for(20ms);
  server.shutdown(/*drain=*/false);
  EXPECT_EQ(server.wait(running).outcome, JobOutcome::kCancelled);
  for (const auto id : queued) {
    const JobReport r = server.wait(id);
    EXPECT_EQ(r.outcome, JobOutcome::kCancelled) << r.to_string();
    EXPECT_EQ(r.attempts, 0u) << "queued jobs must not have run";
  }
}

TEST(Serve, ProgressIsObservableMidRun) {
  JobServer server({.threads = 1});
  const auto id = *server.submit(spin_job());
  std::this_thread::sleep_for(30ms);
  const auto p = server.progress(id);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->phase, JobPhase::kRunning);
  EXPECT_EQ(p->attempts, 1u);
  EXPECT_FALSE(server.progress(424242).has_value());
  server.cancel(id);
  server.wait(id);
  EXPECT_EQ(server.progress(id)->phase, JobPhase::kDone);
}

TEST(Serve, BackoffDelaysDoubleAndJitter) {
  std::mt19937_64 rng(7);
  const BackoffPolicy policy{.base = 4ms, .cap = 64ms};
  for (unsigned attempt = 1; attempt <= 8; ++attempt) {
    const auto nominal = std::min<std::int64_t>(4LL << (attempt - 1), 64);
    for (int i = 0; i < 50; ++i) {
      const auto d = backoff_delay(policy, attempt, rng);
      EXPECT_GE(d.count(), nominal - nominal / 2) << "attempt " << attempt;
      EXPECT_LE(d.count(), nominal) << "attempt " << attempt;
    }
  }
  const BackoffPolicy off{.base = 0ms, .cap = 64ms};
  EXPECT_EQ(backoff_delay(off, 3, rng).count(), 0);
}

TEST(Serve, EccUpsetsAreCountedAndSurvivedPerJob) {
  // Storage upsets under ecc=correct complete with corrected counts in the
  // report; under ecc=detect they trap into the recovery machinery and the
  // report carries the detected count — never a silent wrong answer.
  JobServer server({.threads = 4});
  FaultEvent ev;
  ev.target = FaultEvent::Target::kQatStorage;
  ev.at_instr = 20;
  ev.addr = 2;
  ev.channel = 5;

  Job correct = fig10_job(SimKind::kFunc);
  correct.ecc = pbp::EccMode::kCorrect;
  correct.scrub_every = 16;
  correct.fault_plan.events.push_back(ev);
  const auto cid = *server.submit(std::move(correct));

  Job detect = fig10_job(SimKind::kPipe5);
  detect.ecc = pbp::EccMode::kDetect;
  detect.scrub_every = 16;
  detect.fault_plan.events.push_back(ev);
  const auto did = *server.submit(std::move(detect));

  const JobReport cr = server.wait(cid);
  EXPECT_EQ(cr.outcome, JobOutcome::kCompleted);
  EXPECT_GE(cr.ecc_corrected, 1u);
  EXPECT_EQ(cr.ecc_detected, 0u);

  const JobReport dr = server.wait(did);
  EXPECT_EQ(dr.outcome, JobOutcome::kCompleted);  // recovered via rollback
  EXPECT_TRUE(dr.recovered);
  EXPECT_GE(dr.ecc_detected, 1u);
  EXPECT_EQ(dr.ecc_corrected, 0u);
  server.shutdown(true);
}

TEST(Serve, SimKindNamesRoundTrip) {
  for (const SimKind k :
       {SimKind::kFunc, SimKind::kMulti, SimKind::kMultiFsm, SimKind::kPipe4,
        SimKind::kPipe5, SimKind::kPipe5NoFwd, SimKind::kRtl}) {
    EXPECT_EQ(parse_sim_kind(sim_kind_name(k)), k);
  }
  EXPECT_THROW(parse_sim_kind("warp-drive"), std::invalid_argument);
}

}  // namespace
}  // namespace tangled::serve
