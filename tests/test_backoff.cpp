// test_backoff.cpp — direct unit tests for serve/backoff.hpp (label
// `serve`): jitter bounds, monotone capped growth, seeded reproducibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "serve/backoff.hpp"

namespace tangled::serve {
namespace {

TEST(Backoff, JitterStaysWithinHalfToFullDelay) {
  const BackoffPolicy policy{std::chrono::milliseconds{2},
                             std::chrono::milliseconds{250}};
  std::mt19937_64 rng(12345);
  for (unsigned attempt = 1; attempt <= 12; ++attempt) {
    // Nominal delay: base << (attempt-1), saturating at the cap.
    std::int64_t d = policy.base.count();
    for (unsigned i = 1; i < attempt && d < policy.cap.count(); ++i) d *= 2;
    d = std::min<std::int64_t>(d, policy.cap.count());
    for (int draw = 0; draw < 200; ++draw) {
      const auto got = backoff_delay(policy, attempt, rng).count();
      EXPECT_GE(got, d - d / 2) << "attempt " << attempt;
      EXPECT_LE(got, d) << "attempt " << attempt;
    }
  }
}

TEST(Backoff, NominalDelayIsMonotoneAndCapped) {
  const BackoffPolicy policy{std::chrono::milliseconds{2},
                             std::chrono::milliseconds{250}};
  // The UPPER bound of the jitter window is the nominal delay itself; take
  // the max over many draws as a tight estimate and require monotone growth
  // up to the cap.
  std::mt19937_64 rng(7);
  std::int64_t prev_max = 0;
  for (unsigned attempt = 1; attempt <= 16; ++attempt) {
    std::int64_t max_seen = 0;
    for (int draw = 0; draw < 500; ++draw) {
      max_seen =
          std::max(max_seen, backoff_delay(policy, attempt, rng).count());
    }
    EXPECT_GE(max_seen, prev_max) << "attempt " << attempt;
    EXPECT_LE(max_seen, policy.cap.count());
    prev_max = max_seen;
  }
  // Far past the doubling range the delay is pinned to the cap's window.
  for (int draw = 0; draw < 100; ++draw) {
    const auto got = backoff_delay(policy, 60, rng).count();
    EXPECT_GE(got, policy.cap.count() / 2);
    EXPECT_LE(got, policy.cap.count());
  }
}

TEST(Backoff, SameSeedSameSchedule) {
  const BackoffPolicy policy;
  std::mt19937_64 a(0xfeedULL), b(0xfeedULL), c(0xbeefULL);
  std::vector<std::int64_t> sa, sb, sc;
  for (unsigned attempt = 1; attempt <= 10; ++attempt) {
    sa.push_back(backoff_delay(policy, attempt, a).count());
    sb.push_back(backoff_delay(policy, attempt, b).count());
    sc.push_back(backoff_delay(policy, attempt, c).count());
  }
  EXPECT_EQ(sa, sb) << "same seed must reproduce the exact schedule";
  EXPECT_NE(sa, sc) << "different seeds should decorrelate";
}

TEST(Backoff, ZeroBaseDisablesBackoff) {
  const BackoffPolicy policy{std::chrono::milliseconds{0},
                             std::chrono::milliseconds{250}};
  std::mt19937_64 rng(1);
  for (unsigned attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(backoff_delay(policy, attempt, rng).count(), 0);
  }
}

}  // namespace
}  // namespace tangled::serve
