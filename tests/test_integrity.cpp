// End-to-end data-integrity tests: ECC-protected Qat/Tangled state,
// corruption traps with precise no-commit semantics, scrubbing, and the
// checksummed checkpoint format (label `integrity`).
//
// Layers covered:
//   * Memory sidecar: load_checked repair/detect, scrub, refresh;
//   * Qat backends (dense + RE): verify-on-access, shared-pool upset
//     semantics, scrub;
//   * all five simulator models: storage upsets -> kDataCorruption traps
//     under kDetect (never a silent clean halt), repaired completions under
//     kCorrect, fetch- and load-path precision (the corrupt word is never
//     committed);
//   * differential: ecc=correct is architecturally invisible on fault-free
//     runs;
//   * checkpoint durability: v2 framed images (magic/version/length/CRC32),
//     tamper/truncation rejection with structured CheckpointError kinds,
//     atomic file save/load, restart-from-program fallback.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "arch/checkpoint.hpp"
#include "arch/multicycle_fsm.hpp"
#include "arch/recovery.hpp"
#include "arch/rtl_pipeline.hpp"
#include "arch/simulators.hpp"
#include "asm/assembler.hpp"
#include "asm/programs.hpp"
#include "pbp/qat_backend.hpp"
#include "pbp/virtual_qat.hpp"

namespace tangled {
namespace {

bool factors_ok(const CpuState& cpu) {
  return cpu.regs[0] == 5 && cpu.regs[1] == 3;
}

/// PipelineSim with the (ways, backend) constructor shape the generic model
/// helpers expect.
struct PipelineSim5 : PipelineSim {
  PipelineSim5(unsigned ways, pbp::Backend backend)
      : PipelineSim(ways, PipelineConfig{.stages = 5, .forwarding = true},
                    backend) {}
};

// ---------------------------------------------------------------------------
// Memory sidecar
// ---------------------------------------------------------------------------

TEST(MemoryEcc, CorrectRepairsSingleBitInPlace) {
  Memory mem;
  mem.set_ecc_mode(pbp::EccMode::kCorrect);
  mem.write(100, 0xbeef);
  mem.storage_upset(100, 3);
  EXPECT_EQ(mem.read(100), 0xbeef ^ (1u << 3));  // raw view sees the flip
  bool corrupt = false;  // only ever set true by load_checked
  EXPECT_EQ(mem.load_checked(100, &corrupt), 0xbeef);
  EXPECT_FALSE(corrupt);
  EXPECT_EQ(mem.read(100), 0xbeef);  // repaired in place
  EXPECT_EQ(mem.ecc_corrected(), 1u);
  EXPECT_EQ(mem.ecc_detected(), 0u);
}

TEST(MemoryEcc, CorrectTrapsDoubleBit) {
  Memory mem;
  mem.set_ecc_mode(pbp::EccMode::kCorrect);
  mem.write(7, 0x1234);
  mem.storage_upset(7, 0);
  mem.storage_upset(7, 9);
  bool corrupt = false;
  (void)mem.load_checked(7, &corrupt);
  EXPECT_TRUE(corrupt);
  EXPECT_EQ(mem.ecc_detected(), 1u);
}

TEST(MemoryEcc, DetectNeverRepairs) {
  Memory mem;
  mem.set_ecc_mode(pbp::EccMode::kDetect);
  mem.write(50, 0x00ff);
  mem.storage_upset(50, 12);
  bool corrupt = false;
  (void)mem.load_checked(50, &corrupt);
  EXPECT_TRUE(corrupt);
  EXPECT_EQ(mem.ecc_corrected(), 0u);
  EXPECT_EQ(mem.read(50), 0x00ff ^ (1u << 12));  // untouched
}

TEST(MemoryEcc, OffIsSilent) {
  Memory mem;  // kOff default
  mem.write(9, 0xaaaa);
  mem.storage_upset(9, 1);
  bool corrupt = false;
  EXPECT_EQ(mem.load_checked(9, &corrupt), 0xaaaa ^ 2u);
  EXPECT_FALSE(corrupt);  // the silent-corruption threat model
}

TEST(MemoryEcc, ScrubRepairsAndRefreshResyncs) {
  Memory mem;
  mem.set_ecc_mode(pbp::EccMode::kCorrect);
  mem.write(1000, 0x5a5a);
  mem.storage_upset(1000, 7);
  const pbp::EccSweep sweep = mem.scrub_ecc();
  EXPECT_EQ(sweep.corrected, 1u);
  EXPECT_EQ(sweep.uncorrectable, 0u);
  EXPECT_EQ(mem.read(1000), 0x5a5a);

  // Raw mutation through words_mut() + refresh_ecc() must read clean.
  mem.words_mut()[1000] = 0x1111;
  mem.refresh_ecc();
  bool corrupt = false;
  EXPECT_EQ(mem.load_checked(1000, &corrupt), 0x1111);
  EXPECT_FALSE(corrupt);
}

// ---------------------------------------------------------------------------
// Qat backends
// ---------------------------------------------------------------------------

TEST(QatBackendEcc, DenseCorrectRepairsOnAccess) {
  pbp::DenseQatBackend be(8, 256);
  be.set_ecc_mode(pbp::EccMode::kCorrect);
  be.one(4);
  be.storage_upset(4, 17);
  EXPECT_TRUE(be.meas(4, 17));  // repaired before the measurement commits
  const pbp::EccSweep c = be.take_ecc_counts();
  EXPECT_GE(c.corrected, 1u);
  EXPECT_EQ(c.uncorrectable, 0u);
}

TEST(QatBackendEcc, DenseDetectThrowsOnAccess) {
  pbp::DenseQatBackend be(8, 256);
  be.set_ecc_mode(pbp::EccMode::kDetect);
  be.one(4);
  be.storage_upset(4, 17);
  EXPECT_THROW((void)be.meas(4, 17), pbp::CorruptionError);
  EXPECT_GE(be.take_ecc_counts().uncorrectable, 1u);
}

TEST(QatBackendEcc, DenseDoubleBitUncorrectableEvenInCorrect) {
  pbp::DenseQatBackend be(8, 256);
  be.set_ecc_mode(pbp::EccMode::kCorrect);
  be.one(2);
  // Two flips in the same 64-bit chunk word.
  be.storage_upset(2, 3);
  be.storage_upset(2, 9);
  EXPECT_THROW((void)be.popcount(2), pbp::CorruptionError);
}

TEST(QatBackendEcc, DenseScrubRepairs) {
  pbp::DenseQatBackend be(8, 256);
  be.set_ecc_mode(pbp::EccMode::kCorrect);
  be.had(0, 3);
  be.storage_upset(0, 40);
  const pbp::EccSweep sweep = be.scrub_ecc();
  EXPECT_GE(sweep.corrected, 1u);
  EXPECT_EQ(sweep.uncorrectable, 0u);
  EXPECT_EQ(be.scrub_ecc().corrected, 0u);  // nothing left to fix
}

TEST(QatBackendEcc, ReSharedPoolUpsetHitsSiblingsAndRepairs) {
  pbp::ReQatBackend be(16, 256, /*chunk_ways=*/8);
  be.set_ecc_mode(pbp::EccMode::kCorrect);
  // @0 and @1 intern the same all-ones symbol: an upset under @0 is a
  // shared-chunk upset, visible through @1 too — and one repair fixes both.
  be.one(0);
  be.one(1);
  be.storage_upset(0, 5);
  EXPECT_TRUE(be.meas(1, 5));
  EXPECT_GE(be.take_ecc_counts().corrected, 1u);
  EXPECT_TRUE(be.meas(0, 5));
  EXPECT_EQ(be.take_ecc_counts().corrected, 0u);
}

TEST(QatBackendEcc, ReDetectThrowsAndScrubCounts) {
  pbp::ReQatBackend be(16, 256, /*chunk_ways=*/8);
  be.set_ecc_mode(pbp::EccMode::kDetect);
  be.had(3, 7);
  be.storage_upset(3, 100);
  EXPECT_THROW((void)be.popcount(3), pbp::CorruptionError);
  const pbp::EccSweep sweep = be.scrub_ecc();
  EXPECT_GE(sweep.uncorrectable, 1u);
  EXPECT_EQ(sweep.corrected, 0u);  // detect never repairs
}

TEST(QatBackendEcc, EccBytesReportsSidecarFootprint) {
  pbp::DenseQatBackend be(8, 256);
  EXPECT_EQ(be.ecc_bytes(), 0u);
  be.set_ecc_mode(pbp::EccMode::kCorrect);
  EXPECT_GT(be.ecc_bytes(), 0u);
  be.set_ecc_mode(pbp::EccMode::kOff);
  EXPECT_EQ(be.ecc_bytes(), 0u);
}

TEST(VirtualQatEcc, UpsetRepairScrubAndModeSurvivesRestore) {
  pbp::VirtualQat vq(24, /*chunk_ways=*/8);
  vq.set_ecc_mode(pbp::EccMode::kCorrect);
  vq.had(0, 5);
  vq.one(1);
  vq.storage_upset(1, 9);
  EXPECT_TRUE(vq.meas(1, 9));
  EXPECT_GE(vq.take_ecc_counts().corrected, 1u);

  pbp::ByteWriter w;
  vq.save(w);
  vq.storage_upset(1, 3);  // pending damage is wiped by the restore
  pbp::ByteReader r(w.bytes());
  vq.restore(r);
  EXPECT_EQ(vq.ecc_mode(), pbp::EccMode::kCorrect);  // policy survives
  const pbp::EccSweep sweep = vq.scrub_ecc();
  EXPECT_EQ(sweep.uncorrectable, 0u);
  EXPECT_TRUE(vq.meas(1, 9));
}

// ---------------------------------------------------------------------------
// Model-level corruption traps (all five implementation models)
// ---------------------------------------------------------------------------

constexpr std::uint64_t kBudget = 20'000;

/// A latent storage upset (on state the program never touches again) must
/// still surface before a "clean" halt under kDetect: the final scrub gate
/// turns it into a kDataCorruption trap.  Under kCorrect the same run
/// completes with the right factors and a nonzero corrected tally.
template <typename Sim>
void storage_upset_modes(const Program& p, unsigned ways,
                         pbp::Backend backend, FaultEvent ev) {
  {
    Sim sim(ways, backend);
    sim.load(p);
    sim.set_ecc_mode(pbp::EccMode::kDetect);
    FaultPlan plan;
    plan.events.push_back(ev);
    sim.set_fault_plan(plan);
    const SimStats st = sim.run(kBudget);
    EXPECT_EQ(st.trap.kind, TrapKind::kDataCorruption) << ev.to_string();
  }
  {
    Sim sim(ways, backend);
    sim.load(p);
    sim.set_ecc_mode(pbp::EccMode::kCorrect);
    FaultPlan plan;
    plan.events.push_back(ev);
    sim.set_fault_plan(plan);
    const SimStats st = sim.run(kBudget);
    EXPECT_TRUE(st.halted) << ev.to_string();
    EXPECT_EQ(st.trap.kind, TrapKind::kNone) << ev.to_string();
    EXPECT_TRUE(factors_ok(sim.cpu()));
    const auto qs = sim.qat().stats_snapshot();
    EXPECT_GE(qs.ecc_corrected + sim.memory().ecc_corrected(), 1u);
  }
}

FaultEvent qat_upset() {
  FaultEvent ev;
  ev.target = FaultEvent::Target::kQatStorage;
  ev.at_instr = 20;
  ev.addr = 2;  // @2 is live mid-run
  ev.channel = 5;
  return ev;
}

FaultEvent mem_upset(std::uint16_t addr, unsigned bit, std::uint64_t at) {
  FaultEvent ev;
  ev.target = FaultEvent::Target::kMemStorage;
  ev.at_instr = at;
  ev.addr = addr;
  ev.bit = bit;
  return ev;
}

TEST(ModelIntegrity, QatUpsetFunctionalDense) {
  storage_upset_modes<FunctionalSim>(assemble(figure10_source()), 8,
                                     pbp::Backend::kDense, qat_upset());
}

TEST(ModelIntegrity, QatUpsetFunctionalCompressed) {
  storage_upset_modes<FunctionalSim>(assemble(figure10_source()), 16,
                                     pbp::Backend::kCompressed, qat_upset());
}

TEST(ModelIntegrity, QatUpsetMultiCycle) {
  storage_upset_modes<MultiCycleSim>(assemble(figure10_source()), 8,
                                     pbp::Backend::kDense, qat_upset());
}

TEST(ModelIntegrity, QatUpsetMultiCycleFsm) {
  storage_upset_modes<MultiCycleFsmSim>(assemble(figure10_source()), 8,
                                        pbp::Backend::kDense, qat_upset());
}

TEST(ModelIntegrity, QatUpsetRtl) {
  storage_upset_modes<RtlPipelineSim>(assemble(figure10_source()), 8,
                                      pbp::Backend::kDense, qat_upset());
}

TEST(ModelIntegrity, MemUpsetOnDataEveryPipeline) {
  const Program p = assemble(figure10_source());
  // Data address 4000 is never written by fig10: a pure latent upset, only
  // the scrub gates can see it.
  const FaultEvent ev = mem_upset(4000, 6, 30);
  storage_upset_modes<FunctionalSim>(p, 8, pbp::Backend::kDense, ev);
  storage_upset_modes<PipelineSim5>(p, 8, pbp::Backend::kDense, ev);
  storage_upset_modes<MultiCycleFsmSim>(p, 8, pbp::Backend::kDense, ev);
  storage_upset_modes<RtlPipelineSim>(p, 8, pbp::Backend::kDense, ev);
}

/// Fetch-path precision: corrupt the not-yet-fetched `sys` word.  kDetect
/// must trap AT the fetch pc without retiring the instruction; kCorrect
/// must repair in the fetch path and halt cleanly.
template <typename Sim>
void fetch_corruption(const Program& p, std::uint16_t sys_addr) {
  {
    Sim sim(8, pbp::Backend::kDense);
    sim.load(p);
    sim.set_ecc_mode(pbp::EccMode::kDetect);
    FaultPlan plan;
    plan.events.push_back(mem_upset(sys_addr, 0, 10));
    sim.set_fault_plan(plan);
    const SimStats st = sim.run(kBudget);
    EXPECT_EQ(st.trap.kind, TrapKind::kDataCorruption);
    EXPECT_EQ(st.trap.pc, sys_addr);  // precise: the fetch pc
  }
  {
    Sim sim(8, pbp::Backend::kDense);
    sim.load(p);
    sim.set_ecc_mode(pbp::EccMode::kCorrect);
    FaultPlan plan;
    plan.events.push_back(mem_upset(sys_addr, 0, 10));
    sim.set_fault_plan(plan);
    const SimStats st = sim.run(kBudget);
    EXPECT_TRUE(st.halted);
    EXPECT_EQ(st.trap.kind, TrapKind::kNone);
    EXPECT_TRUE(factors_ok(sim.cpu()));
    EXPECT_GE(sim.memory().ecc_corrected(), 1u);
  }
}

TEST(ModelIntegrity, FetchCorruptionIsPreciseOnEveryModel) {
  const Program p = assemble(figure10_source());
  const auto sys_addr =
      static_cast<std::uint16_t>(p.words.size() - 1);  // the final `sys`
  fetch_corruption<FunctionalSim>(p, sys_addr);
  fetch_corruption<MultiCycleSim>(p, sys_addr);
  fetch_corruption<PipelineSim5>(p, sys_addr);
  fetch_corruption<MultiCycleFsmSim>(p, sys_addr);
  fetch_corruption<RtlPipelineSim>(p, sys_addr);
}

/// Load-path precision: a corrupted data word must trap at the load under
/// kDetect — with the destination register NOT committed — and come back
/// repaired under kCorrect.
constexpr const char* kLoadProgram = R"(	lex $0,21
	lex $3,40
	store $0,$3
	lex $0,0
	lex $1,0
	lex $2,0
	load $1,$3
	sys
)";

template <typename Sim>
void load_corruption() {
  const Program p = assemble(kLoadProgram);
  const FaultEvent ev = mem_upset(40, 2, 4);  // after the store, before the load
  {
    Sim sim(8, pbp::Backend::kDense);
    sim.load(p);
    sim.set_ecc_mode(pbp::EccMode::kDetect);
    FaultPlan plan;
    plan.events.push_back(ev);
    sim.set_fault_plan(plan);
    const SimStats st = sim.run(kBudget);
    EXPECT_EQ(st.trap.kind, TrapKind::kDataCorruption);
    EXPECT_EQ(sim.cpu().regs[1], 0u);  // the corrupt value never committed
  }
  {
    Sim sim(8, pbp::Backend::kDense);
    sim.load(p);
    sim.set_ecc_mode(pbp::EccMode::kCorrect);
    FaultPlan plan;
    plan.events.push_back(ev);
    sim.set_fault_plan(plan);
    const SimStats st = sim.run(kBudget);
    EXPECT_TRUE(st.halted);
    EXPECT_EQ(st.trap.kind, TrapKind::kNone);
    EXPECT_EQ(sim.cpu().regs[1], 21u);  // repaired load value
    EXPECT_GE(sim.memory().ecc_corrected(), 1u);
  }
  {
    Sim sim(8, pbp::Backend::kDense);  // ecc off: the documented threat
    sim.load(p);
    FaultPlan plan;
    plan.events.push_back(ev);
    sim.set_fault_plan(plan);
    const SimStats st = sim.run(kBudget);
    EXPECT_TRUE(st.halted);
    EXPECT_EQ(sim.cpu().regs[1], 21u ^ 4u);  // silent wrong answer
  }
}

TEST(ModelIntegrity, LoadCorruptionIsPreciseOnEveryModel) {
  load_corruption<FunctionalSim>();
  load_corruption<MultiCycleSim>();
  load_corruption<PipelineSim5>();
  load_corruption<MultiCycleFsmSim>();
  load_corruption<RtlPipelineSim>();
}

TEST(ModelIntegrity, PeriodicScrubRunsAndCounts) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(assemble(figure10_source()));
  sim.set_ecc_mode(pbp::EccMode::kCorrect);
  sim.set_scrub_every(10);
  FaultPlan plan;
  plan.events.push_back(qat_upset());
  sim.set_fault_plan(plan);
  const SimStats st = sim.run(kBudget);
  EXPECT_TRUE(st.halted);
  EXPECT_EQ(st.trap.kind, TrapKind::kNone);
  const auto qs = sim.qat().stats_snapshot();
  EXPECT_GE(qs.ecc_scrubs, 8u);  // 91 retired / every 10, plus the halt gate
  EXPECT_GE(qs.ecc_corrected + sim.memory().ecc_corrected(), 1u);
}

// ---------------------------------------------------------------------------
// Differential: protection must be architecturally invisible without faults
// ---------------------------------------------------------------------------

struct ArchState {
  std::array<std::uint16_t, kNumRegs> regs{};
  std::uint16_t pc = 0;
  bool halted = false;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::string console;
  std::vector<std::string> qregs;

  bool operator==(const ArchState& o) const {
    return regs == o.regs && pc == o.pc && halted == o.halted &&
           instructions == o.instructions && cycles == o.cycles &&
           console == o.console && qregs == o.qregs;
  }
};

template <typename Sim>
ArchState run_with_mode(const Program& p, unsigned ways, pbp::Backend backend,
                        pbp::EccMode mode, std::uint64_t scrub_every,
                        std::uint64_t ecc_epoch = 1) {
  Sim sim(ways, backend);
  sim.load(p);
  sim.set_ecc_mode(mode);
  sim.set_ecc_epoch(ecc_epoch);
  sim.set_scrub_every(scrub_every);
  const SimStats st = sim.run(kBudget);
  ArchState a;
  a.regs = sim.cpu().regs;
  a.pc = sim.cpu().pc;
  a.halted = st.halted;
  a.instructions = st.instructions;
  a.cycles = st.cycles;
  a.console = sim.console();
  for (unsigned r = 0; r < 96; ++r) {
    a.qregs.push_back(sim.qat().reg_string(r, 64));
  }
  return a;
}

template <typename Sim>
void modes_agree(const Program& p, unsigned ways, pbp::Backend backend) {
  const ArchState off =
      run_with_mode<Sim>(p, ways, backend, pbp::EccMode::kOff, 0);
  const ArchState detect =
      run_with_mode<Sim>(p, ways, backend, pbp::EccMode::kDetect, 16);
  const ArchState correct =
      run_with_mode<Sim>(p, ways, backend, pbp::EccMode::kCorrect, 16);
  EXPECT_TRUE(off == detect);
  EXPECT_TRUE(off == correct);
  EXPECT_TRUE(off.halted);
}

TEST(EccDifferential, FaultFreeRunsAreModeInvariant) {
  const Program fig10 = assemble(figure10_source());
  modes_agree<FunctionalSim>(fig10, 8, pbp::Backend::kDense);
  modes_agree<MultiCycleSim>(fig10, 8, pbp::Backend::kDense);
  modes_agree<PipelineSim5>(fig10, 8, pbp::Backend::kDense);
  modes_agree<MultiCycleFsmSim>(fig10, 8, pbp::Backend::kDense);
  modes_agree<RtlPipelineSim>(fig10, 8, pbp::Backend::kDense);
  modes_agree<FunctionalSim>(fig10, 16, pbp::Backend::kCompressed);
  modes_agree<RtlPipelineSim>(fig10, 16, pbp::Backend::kCompressed);

  const Program loads = assemble(kLoadProgram);
  modes_agree<FunctionalSim>(loads, 8, pbp::Backend::kDense);
  modes_agree<RtlPipelineSim>(loads, 8, pbp::Backend::kDense);
}

// ---------------------------------------------------------------------------
// Epoch-scheduled verification (--ecc-epoch; see DESIGN.md §6)
// ---------------------------------------------------------------------------

TEST(EpochPolicy, ZeroClampsToVerifyEveryAccess) {
  Memory mem;
  mem.set_ecc_epoch(0);
  EXPECT_EQ(mem.ecc_epoch(), 1u);
  pbp::DenseQatBackend be(8, 256);
  be.set_ecc_epoch(0);
  EXPECT_EQ(be.ecc_epoch(), 1u);
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.set_ecc_epoch(0);
  EXPECT_EQ(sim.qat().ecc_epoch(), 1u);
}

TEST(EpochPolicy, LazySidecarAllocatesNothingWhenOff) {
  // --ecc=off pays zero check-byte storage everywhere, including after a
  // round trip through an enabled mode.
  Memory mem;
  EXPECT_EQ(mem.ecc_bytes(), 0u);
  mem.set_ecc_mode(pbp::EccMode::kCorrect);
  EXPECT_GT(mem.ecc_bytes(), 0u);
  mem.set_ecc_mode(pbp::EccMode::kOff);
  EXPECT_EQ(mem.ecc_bytes(), 0u);

  pbp::ReQatBackend re(16, 256, /*chunk_ways=*/8);
  EXPECT_EQ(re.ecc_bytes(), 0u);
  re.set_ecc_mode(pbp::EccMode::kDetect);
  re.one(0);
  EXPECT_GT(re.ecc_bytes(), 0u);
  re.set_ecc_mode(pbp::EccMode::kOff);
  EXPECT_EQ(re.ecc_bytes(), 0u);
}

TEST(EpochPolicy, MemoryElidesWithinEpochAndReverifiesAfter) {
  Memory mem;
  mem.set_ecc_mode(pbp::EccMode::kCorrect);  // trusted encode stamps pages
  mem.set_ecc_epoch(25);
  mem.ecc_tick(5);
  bool corrupt = false;
  mem.write(100, 0xbeef);
  EXPECT_EQ(mem.load_checked(100, &corrupt), 0xbeef);
  EXPECT_GE(mem.ecc_verifies_elided(), 1u);  // page still fresh at tick 5

  const std::uint64_t verified_before = mem.ecc_words_verified();
  mem.ecc_tick(100);  // stamp expired: next access sweeps its whole page
  EXPECT_EQ(mem.load_checked(100, &corrupt), 0xbeef);
  EXPECT_EQ(mem.ecc_words_verified(),
            verified_before + Memory::kEccPageWords);
  EXPECT_FALSE(corrupt);

  // ...and having just been re-stamped, the next access elides again.
  const std::uint64_t elided_before = mem.ecc_verifies_elided();
  EXPECT_EQ(mem.load_checked(101, &corrupt), 0u);
  EXPECT_EQ(mem.ecc_verifies_elided(), elided_before + 1);
}

TEST(EpochPolicy, MemoryRepairsLatentUpsetOnceStampExpires) {
  Memory mem;
  mem.set_ecc_mode(pbp::EccMode::kCorrect);
  mem.set_ecc_epoch(25);
  mem.ecc_tick(1);
  mem.write(100, 0xbeef);
  mem.storage_upset(100, 3);
  mem.ecc_tick(200);  // one epoch later the page is stale again
  bool corrupt = false;
  EXPECT_EQ(mem.load_checked(100, &corrupt), 0xbeef);
  EXPECT_FALSE(corrupt);
  EXPECT_GE(mem.ecc_corrected(), 1u);
  EXPECT_EQ(mem.read(100), 0xbeef);  // repaired in place
}

TEST(EpochPolicy, BackendElidesWithinEpochAndRepairsAfterExpiry) {
  pbp::DenseQatBackend be(8, 256);
  be.set_ecc_mode(pbp::EccMode::kCorrect);
  be.set_ecc_epoch(25);
  be.ecc_tick(1);
  be.one(4);            // trusted encode-on-write stamps the register
  EXPECT_TRUE(be.meas(4, 7));
  const pbp::EccSweep fresh = be.take_ecc_counts();
  EXPECT_GE(fresh.elided, 1u);  // read within the epoch skipped verification

  be.storage_upset(4, 9);
  be.ecc_tick(200);  // stamp expired: the next read verifies and repairs
  EXPECT_TRUE(be.meas(4, 9));
  const pbp::EccSweep stale = be.take_ecc_counts();
  EXPECT_GE(stale.corrected, 1u);
  EXPECT_EQ(stale.uncorrectable, 0u);
}

TEST(EpochPolicy, FaultFreeRunsAreEpochInvariant) {
  // Elision is pure scheduling: with no faults, epoch 25 must be
  // architecturally indistinguishable from verify-every-access.
  const Program fig10 = assemble(figure10_source());
  const ArchState eager = run_with_mode<FunctionalSim>(
      fig10, 8, pbp::Backend::kDense, pbp::EccMode::kOff, 0);
  EXPECT_TRUE(eager == run_with_mode<FunctionalSim>(
                           fig10, 8, pbp::Backend::kDense,
                           pbp::EccMode::kCorrect, 16, /*ecc_epoch=*/25));
  EXPECT_TRUE(eager == run_with_mode<FunctionalSim>(
                           fig10, 8, pbp::Backend::kDense,
                           pbp::EccMode::kDetect, 0, /*ecc_epoch=*/25));
  const ArchState rtl = run_with_mode<RtlPipelineSim>(
      fig10, 16, pbp::Backend::kCompressed, pbp::EccMode::kOff, 0);
  EXPECT_TRUE(rtl == run_with_mode<RtlPipelineSim>(
                         fig10, 16, pbp::Backend::kCompressed,
                         pbp::EccMode::kCorrect, 16, /*ecc_epoch=*/25));
}

/// Same upset, both epochs: whatever the schedule, a detect-mode run must
/// end in a corruption trap (never a silent wrong answer) and a correct-mode
/// run must end in a clean halt with the upset repaired by halt time.  The
/// trap *site* may legally differ — deferral within one epoch is the
/// documented tradeoff — but the outcome may not.
template <typename Sim>
void epoch_outcomes_match(const Program& p, unsigned ways,
                          pbp::Backend backend) {
  for (const std::uint64_t epoch : {std::uint64_t{1}, std::uint64_t{25}}) {
    {
      Sim sim(ways, backend);
      sim.load(p);
      sim.set_ecc_mode(pbp::EccMode::kDetect);
      sim.set_ecc_epoch(epoch);
      FaultPlan plan;
      plan.events.push_back(qat_upset());
      sim.set_fault_plan(plan);
      const SimStats st = sim.run(kBudget);
      EXPECT_EQ(st.trap.kind, TrapKind::kDataCorruption)
          << "epoch " << epoch;
    }
    {
      Sim sim(ways, backend);
      sim.load(p);
      sim.set_ecc_mode(pbp::EccMode::kCorrect);
      sim.set_ecc_epoch(epoch);
      FaultPlan plan;
      plan.events.push_back(qat_upset());
      sim.set_fault_plan(plan);
      const SimStats st = sim.run(kBudget);
      EXPECT_TRUE(st.halted) << "epoch " << epoch;
      EXPECT_EQ(st.trap.kind, TrapKind::kNone) << "epoch " << epoch;
      const auto qs = sim.qat().stats_snapshot();
      EXPECT_GE(qs.ecc_corrected, 1u) << "epoch " << epoch;
    }
  }
}

TEST(EpochPolicy, UpsetOutcomesMatchEagerFunctionalDense) {
  epoch_outcomes_match<FunctionalSim>(assemble(figure10_source()), 8,
                                      pbp::Backend::kDense);
}

TEST(EpochPolicy, UpsetOutcomesMatchEagerFunctionalCompressed) {
  epoch_outcomes_match<FunctionalSim>(assemble(figure10_source()), 16,
                                      pbp::Backend::kCompressed);
}

TEST(EpochPolicy, UpsetOutcomesMatchEagerMultiCycle) {
  epoch_outcomes_match<MultiCycleSim>(assemble(figure10_source()), 8,
                                      pbp::Backend::kDense);
}

TEST(EpochPolicy, UpsetOutcomesMatchEagerMultiCycleFsm) {
  epoch_outcomes_match<MultiCycleFsmSim>(assemble(figure10_source()), 8,
                                         pbp::Backend::kDense);
}

TEST(EpochPolicy, UpsetOutcomesMatchEagerPipeline5) {
  epoch_outcomes_match<PipelineSim5>(assemble(figure10_source()), 8,
                                     pbp::Backend::kDense);
}

TEST(EpochPolicy, UpsetOutcomesMatchEagerRtl) {
  epoch_outcomes_match<RtlPipelineSim>(assemble(figure10_source()), 8,
                                       pbp::Backend::kDense);
}

TEST(EpochPolicy, UpsetOutcomesMatchEagerRtlCompressed) {
  epoch_outcomes_match<RtlPipelineSim>(assemble(figure10_source()), 16,
                                       pbp::Backend::kCompressed);
}

TEST(EpochPolicy, LargeEpochStillCaughtByCleanHaltGate) {
  // With the epoch pushed past the program length nothing is ever
  // re-verified on access — every upset must still be caught by the
  // clean-halt scrub gate (which ignores freshness stamps).
  const Program p = assemble(figure10_source());
  const FaultEvent latent = mem_upset(4000, 6, 30);  // never touched by fig10
  {
    FunctionalSim sim(8, pbp::Backend::kDense);
    sim.load(p);
    sim.set_ecc_mode(pbp::EccMode::kCorrect);
    sim.set_ecc_epoch(1'000'000);
    FaultPlan plan;
    plan.events.push_back(latent);
    sim.set_fault_plan(plan);
    const SimStats st = sim.run(kBudget);
    EXPECT_TRUE(st.halted);
    EXPECT_EQ(st.trap.kind, TrapKind::kNone);
    EXPECT_TRUE(factors_ok(sim.cpu()));
    EXPECT_GE(sim.memory().ecc_corrected(), 1u);
  }
  {
    FunctionalSim sim(8, pbp::Backend::kDense);
    sim.load(p);
    sim.set_ecc_mode(pbp::EccMode::kDetect);
    sim.set_ecc_epoch(1'000'000);
    FaultPlan plan;
    plan.events.push_back(latent);
    sim.set_fault_plan(plan);
    const SimStats st = sim.run(kBudget);
    EXPECT_EQ(st.trap.kind, TrapKind::kDataCorruption);
  }
  {
    // Qat upset, detect: the halt gate (or any verified access) must trap;
    // the upset may not escape through a "clean" halt.
    FunctionalSim sim(8, pbp::Backend::kDense);
    sim.load(p);
    sim.set_ecc_mode(pbp::EccMode::kDetect);
    sim.set_ecc_epoch(1'000'000);
    FaultPlan plan;
    plan.events.push_back(qat_upset());
    sim.set_fault_plan(plan);
    const SimStats st = sim.run(kBudget);
    EXPECT_EQ(st.trap.kind, TrapKind::kDataCorruption);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint durability (v2 framed format)
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> mid_run_image(FunctionalSim& sim) {
  sim.load(assemble(figure10_source()));
  sim.run(40);
  return save_checkpoint(sim.cpu(), sim.memory(), sim.qat());
}

CheckpointError::Kind load_kind(const std::vector<std::uint8_t>& bytes) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  try {
    load_checkpoint(bytes, sim.cpu(), sim.memory(), sim.qat());
  } catch (const CheckpointError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "tampered image was accepted";
  return CheckpointError::Kind::kMalformed;
}

TEST(CheckpointDurability, EveryPayloadBitFlipIsRejectedByCrc) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  const std::vector<std::uint8_t> image = mid_run_image(sim);
  // Flip one bit in a spread of payload bytes (every byte would be slow):
  // the CRC must catch each one.
  for (std::size_t off = 14; off < image.size();
       off += 1 + image.size() / 97) {
    std::vector<std::uint8_t> bad = image;
    bad[off] ^= 0x10;
    EXPECT_EQ(load_kind(bad), CheckpointError::Kind::kCrcMismatch)
        << "offset " << off;
  }
}

TEST(CheckpointDurability, TruncationMagicAndVersionAreStructured) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  const std::vector<std::uint8_t> image = mid_run_image(sim);

  std::vector<std::uint8_t> bad(image.begin(), image.begin() + 5);
  EXPECT_EQ(load_kind(bad), CheckpointError::Kind::kTruncated);

  bad.assign(image.begin(), image.end() - 7);  // body cut short
  EXPECT_EQ(load_kind(bad), CheckpointError::Kind::kTruncated);

  bad = image;
  bad[1] ^= 0xff;  // magic
  EXPECT_EQ(load_kind(bad), CheckpointError::Kind::kBadMagic);

  bad = image;
  bad[4] ^= 0x04;  // version halfword
  EXPECT_EQ(load_kind(bad), CheckpointError::Kind::kBadVersion);

  EXPECT_EQ(load_kind({}), CheckpointError::Kind::kTruncated);
}

TEST(CheckpointDurability, RejectionLeavesNoHalfRestoredRegs) {
  // A rejected image must not have clobbered the host registers (cpu state
  // is committed last, after the frame checks).
  FunctionalSim victim(8, pbp::Backend::kDense);
  victim.load(assemble(figure10_source()));
  victim.run(kBudget);
  ASSERT_TRUE(factors_ok(victim.cpu()));

  FunctionalSim donor(8, pbp::Backend::kDense);
  std::vector<std::uint8_t> bad = mid_run_image(donor);
  bad[bad.size() - 1] ^= 0x01;
  EXPECT_THROW(
      load_checkpoint(bad, victim.cpu(), victim.memory(), victim.qat()),
      CheckpointError);
  EXPECT_TRUE(factors_ok(victim.cpu()));
}

TEST(CheckpointDurability, FileRoundTripResumesAndFactors) {
  const std::string path =
      testing::TempDir() + "/tangled_ckpt_roundtrip.tgnc";
  const Program p = assemble(figure10_source());
  {
    FunctionalSim sim(8, pbp::Backend::kDense);
    sim.load(p);
    sim.run(40);
    save_checkpoint_file(path, sim.cpu(), sim.memory(), sim.qat());
  }
  FunctionalSim resumed(8, pbp::Backend::kDense);
  load_checkpoint_file(path, resumed.cpu(), resumed.memory(), resumed.qat());
  const SimStats st = resumed.run(kBudget);
  EXPECT_TRUE(st.halted);
  EXPECT_TRUE(factors_ok(resumed.cpu()));
  std::remove(path.c_str());
}

TEST(CheckpointDurability, TamperedFileRejectedThenRestartFromProgram) {
  const std::string path = testing::TempDir() + "/tangled_ckpt_tamper.tgnc";
  const Program p = assemble(figure10_source());
  {
    FunctionalSim sim(8, pbp::Backend::kDense);
    sim.load(p);
    sim.run(40);
    save_checkpoint_file(path, sim.cpu(), sim.memory(), sim.qat());
  }
  {
    // Bit-flip the image on disk.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(f.tellg());
    f.seekp(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(size / 2));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
  }
  FunctionalSim sim(8, pbp::Backend::kDense);
  bool rejected = false;
  try {
    load_checkpoint_file(path, sim.cpu(), sim.memory(), sim.qat());
  } catch (const CheckpointError& e) {
    rejected = true;
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kCrcMismatch);
  }
  EXPECT_TRUE(rejected);
  // The documented fallback: restart from the program image.
  sim.load(p);
  const SimStats st = sim.run(kBudget);
  EXPECT_TRUE(st.halted);
  EXPECT_TRUE(factors_ok(sim.cpu()));
  std::remove(path.c_str());
}

TEST(CheckpointDurability, TruncatedFileAndMissingFileAreStructured) {
  const std::string path = testing::TempDir() + "/tangled_ckpt_trunc.tgnc";
  {
    FunctionalSim sim(8, pbp::Backend::kDense);
    const std::vector<std::uint8_t> image = mid_run_image(sim);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size() / 3));
  }
  FunctionalSim sim(8, pbp::Backend::kDense);
  try {
    load_checkpoint_file(path, sim.cpu(), sim.memory(), sim.qat());
    ADD_FAILURE() << "truncated file accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kTruncated);
  }
  std::remove(path.c_str());

  try {
    load_checkpoint_file(testing::TempDir() + "/tangled_no_such_file.tgnc",
                         sim.cpu(), sim.memory(), sim.qat());
    ADD_FAILURE() << "missing file accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kIoError);
  }
}

TEST(CheckpointDurability, SaveFileLeavesNoTempOnSuccess) {
  const std::string path = testing::TempDir() + "/tangled_ckpt_atomic.tgnc";
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(assemble(figure10_source()));
  sim.run(10);
  save_checkpoint_file(path, sim.cpu(), sim.memory(), sim.qat());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());  // atomically renamed away
  std::ifstream real(path, std::ios::binary);
  EXPECT_TRUE(real.good());
  std::remove(path.c_str());
}

TEST(CheckpointDurability, RandomGarbageNeverCrashesTheLoader) {
  // Deserialize-guard regression: arbitrary bytes must produce a structured
  // CheckpointError, never a crash or huge allocation.
  std::uint64_t x = 42;
  auto rng = [&x]() {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng() % 4096);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    FunctionalSim sim(8, pbp::Backend::kDense);
    EXPECT_THROW(
        load_checkpoint(junk, sim.cpu(), sim.memory(), sim.qat()),
        CheckpointError)
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Recovery integration: scrub gate keeps corruption out of checkpoints
// ---------------------------------------------------------------------------

TEST(RecoveryIntegrity, DetectModeUpsetRecoversThroughRollback) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(assemble(figure10_source()));
  sim.set_ecc_mode(pbp::EccMode::kDetect);
  FaultPlan plan;
  plan.events.push_back(qat_upset());
  sim.set_fault_plan(plan);
  CheckpointingRunner<FunctionalSim> runner(sim, /*checkpoint_every=*/25);
  const RecoveryStats rs = runner.run(
      kBudget, [](const FunctionalSim& s) { return factors_ok(s.cpu()); });
  EXPECT_FALSE(rs.gave_up) << to_string(rs.final_trap);
  EXPECT_TRUE(rs.halted);
  EXPECT_TRUE(rs.recovered);  // detect cannot repair: it must roll back
  EXPECT_TRUE(factors_ok(sim.cpu()));
  const auto qs = sim.qat().stats_snapshot();
  EXPECT_GE(qs.ecc_detected + sim.memory().ecc_detected(), 1u);
}

TEST(RecoveryIntegrity, CorrectModeUpsetNeedsNoRollback) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(assemble(figure10_source()));
  sim.set_ecc_mode(pbp::EccMode::kCorrect);
  FaultPlan plan;
  plan.events.push_back(qat_upset());
  sim.set_fault_plan(plan);
  CheckpointingRunner<FunctionalSim> runner(sim, /*checkpoint_every=*/25);
  const RecoveryStats rs = runner.run(
      kBudget, [](const FunctionalSim& s) { return factors_ok(s.cpu()); });
  EXPECT_FALSE(rs.gave_up);
  EXPECT_TRUE(rs.halted);
  EXPECT_FALSE(rs.recovered);  // the pre-checkpoint scrub repaired in place
  EXPECT_TRUE(factors_ok(sim.cpu()));
  const auto qs = sim.qat().stats_snapshot();
  EXPECT_GE(qs.ecc_corrected + sim.memory().ecc_corrected(), 1u);
}

}  // namespace
}  // namespace tangled
