// Tests for the gate-circuit recorder and Qat assembly emission (§4.2).
#include "pbp/circuit.hpp"

#include <gtest/gtest.h>

namespace pbp {
namespace {

std::shared_ptr<Circuit> circ(unsigned ways = 8, bool cons = false) {
  return std::make_shared<Circuit>(PbpContext::create(ways, Backend::kDense),
                                   cons);
}

TEST(Circuit, EvalMatchesDirectPbitOps) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto h1 = c->had(1);
  const auto a = c->g_and(h0, h1);
  const auto o = c->g_or(h0, h1);
  const auto x = c->g_xor(h0, h1);
  const auto n = c->g_not(h0);
  auto ctx = c->context();
  EXPECT_TRUE(c->eval(a) == (ctx->hadamard(0) & ctx->hadamard(1)));
  EXPECT_TRUE(c->eval(o) == (ctx->hadamard(0) | ctx->hadamard(1)));
  EXPECT_TRUE(c->eval(x) == (ctx->hadamard(0) ^ ctx->hadamard(1)));
  EXPECT_TRUE(c->eval(n) == ~ctx->hadamard(0));
}

TEST(Circuit, EvalIsMemoized) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto h1 = c->had(1);
  const auto a = c->g_and(h0, h1);
  c->eval(a);
  const auto evals = c->evals_performed();
  c->eval(a);
  c->eval(h0);
  EXPECT_EQ(c->evals_performed(), evals);
  c->clear_values();
  c->eval(a);
  EXPECT_GT(c->evals_performed(), evals);
}

TEST(Circuit, EvalIsLazyOverCone) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto h1 = c->had(1);
  (void)c->g_and(h0, h1);              // unrelated gate
  const auto wanted = c->g_not(h1);
  c->eval(wanted);
  // Only h1 and the NOT should have evaluated: 2 gate evals, not 4.
  EXPECT_EQ(c->evals_performed(), 2u);
}

TEST(Circuit, HashConsDeduplicates) {
  auto c = circ(8, /*cons=*/true);
  const auto h0 = c->had(0);
  const auto h1 = c->had(1);
  const auto a1 = c->g_and(h0, h1);
  const auto a2 = c->g_and(h0, h1);
  const auto a3 = c->g_and(h1, h0);  // commutative canonicalization
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(a1, a3);
  EXPECT_EQ(c->had(0), h0);
  EXPECT_EQ(c->node_count(), 3u);
}

TEST(Circuit, NoConsKeepsDuplicates) {
  // Paper-faithful mode: the Figure 10 generator repeats gates freely.
  auto c = circ(8, /*cons=*/false);
  const auto h0 = c->had(0);
  const auto h1 = c->had(1);
  const auto a1 = c->g_and(h0, h1);
  const auto a2 = c->g_and(h0, h1);
  EXPECT_NE(a1, a2);
  EXPECT_EQ(c->node_count(), 4u);
}

TEST(Circuit, MuxSelects) {
  auto c = circ();
  const auto sel = c->had(2);
  const auto t = c->one();
  const auto f = c->zero();
  const auto m = c->g_mux(sel, t, f);
  EXPECT_TRUE(c->eval(m) == c->context()->hadamard(2));
}

TEST(Circuit, MeasurementHelpers) {
  auto c = circ();
  const auto h4 = c->had(4);
  EXPECT_FALSE(c->meas(h4, 42));
  EXPECT_EQ(c->next(h4, 42), 48u);  // the paper's §2.7 worked example
  EXPECT_EQ(c->popcount(h4), 128u);
  EXPECT_TRUE(c->any(h4));
  EXPECT_FALSE(c->all(h4));
  EXPECT_EQ(c->pop_after(h4, 0) + (c->meas(h4, 0) ? 1 : 0), 128u);
}

// --- Emission ---

TEST(Emit, GreedyAllocMatchesPaperStyle) {
  auto c = circ();
  const auto h3 = c->had(3);
  const auto h5 = c->had(5);
  const auto a = c->g_and(h3, h5);
  const Circuit::Node roots[] = {a};
  const EmitResult r = emit_qat(*c, roots);
  EXPECT_EQ(r.asm_text, "\thad @0,3\n\thad @1,5\n\tand @2,@0,@1\n");
  EXPECT_EQ(r.root_regs.size(), 1u);
  EXPECT_EQ(r.root_regs[0], 2u);
  EXPECT_EQ(r.registers_used, 3u);
  EXPECT_EQ(r.instruction_count, 3u);
}

TEST(Emit, NotUsesCopyThenInvertIdiom) {
  // §4.2: "or @80,@79,@79 ... so that the not will not destroy the value".
  auto c = circ();
  const auto h0 = c->had(0);
  const auto n = c->g_not(h0);
  const Circuit::Node roots[] = {n, h0};  // h0 must survive
  const EmitResult r = emit_qat(*c, roots);
  EXPECT_EQ(r.asm_text, "\thad @0,0\n\tor @1,@0,@0\n\tnot @1\n");
}

TEST(Emit, LinearScanInvertsDyingOperandInPlace) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto n = c->g_not(h0);  // h0 dies at the NOT
  const Circuit::Node roots[] = {n};
  EmitOptions opts;
  opts.alloc = EmitOptions::RegAlloc::kLinearScan;
  const EmitResult r = emit_qat(*c, roots, opts);
  EXPECT_EQ(r.asm_text, "\thad @0,0\n\tnot @0\n");
  EXPECT_EQ(r.instruction_count, 2u);
}

TEST(Emit, DeadGatesNotEmitted) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto h1 = c->had(1);
  (void)c->g_and(h0, h1);  // dead
  const auto keep = c->g_or(h0, h1);
  const Circuit::Node roots[] = {keep};
  const EmitResult r = emit_qat(*c, roots);
  EXPECT_EQ(r.instruction_count, 3u);  // had, had, or
}

TEST(Emit, GreedyRunsOutOfRegisters) {
  auto c = circ();
  auto prev = c->had(0);
  for (int i = 0; i < 300; ++i) prev = c->g_xor(prev, c->had(1));
  const Circuit::Node roots[] = {prev};
  EXPECT_THROW(emit_qat(*c, roots), std::runtime_error);
}

TEST(Emit, LinearScanReusesRegisters) {
  auto c = circ();
  auto prev = c->had(0);
  for (int i = 0; i < 300; ++i) prev = c->g_xor(prev, c->had(i % 8));
  const Circuit::Node roots[] = {prev};
  EmitOptions opts;
  opts.alloc = EmitOptions::RegAlloc::kLinearScan;
  const EmitResult r = emit_qat(*c, roots, opts);
  EXPECT_LE(r.registers_used, 8u);
}

TEST(Emit, ConstantRegistersSkipInitializers) {
  // §5: with @0=0, @1=1, @2..=H(k) reserved, zero/one/had emit nothing.
  auto c = circ();
  const auto h3 = c->had(3);
  const auto z = c->zero();
  const auto o = c->one();
  const auto r1 = c->g_and(h3, o);
  const auto r2 = c->g_or(r1, z);
  const Circuit::Node roots[] = {r2};
  EmitOptions opts;
  opts.constant_registers = true;
  const EmitResult r = emit_qat(*c, roots, opts);
  // Only the two logic gates emit; operands read reserved registers.
  EXPECT_EQ(r.instruction_count, 2u);
  // H(3) lives in @5 (= 2 + 3), one in @1, zero in @0.  Commutative operand
  // canonicalization puts the lower-numbered node first in the OR.
  EXPECT_EQ(r.asm_text, "\tand @10,@5,@1\n\tor @11,@0,@10\n");
}

TEST(Emit, MultipleRootsReported) {
  auto c = circ();
  const auto h0 = c->had(0);
  const auto h1 = c->had(1);
  const auto a = c->g_and(h0, h1);
  const auto x = c->g_xor(h0, h1);
  const Circuit::Node roots[] = {a, x};
  const EmitResult r = emit_qat(*c, roots);
  ASSERT_EQ(r.root_regs.size(), 2u);
  EXPECT_NE(r.root_regs[0], r.root_regs[1]);
}

}  // namespace
}  // namespace pbp
