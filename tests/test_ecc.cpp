// SECDED codec tests (pbp/ecc.hpp): the correction/detection guarantees the
// whole integrity layer leans on, proved exhaustively at the codec level.
//
//   * clean round-trip: encode -> check is kClean and changes nothing;
//   * single-bit correction: EVERY single flip — any payload bit, any used
//     check-byte bit (Hamming or overall parity) — comes back kCorrected
//     with the original payload and a canonical check byte;
//   * double-bit detection: EVERY pair of distinct single flips comes back
//     kUncorrectable, never a silent "correction" to a wrong payload.
//
// The 16-bit codec is swept over every payload value; the 64-bit codec over
// a deterministic pseudo-random payload set (the code is linear, so the
// error behaviour depends only on the flipped positions, not the payload —
// the sweep is belt and braces, not a sampling compromise).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pbp/ecc.hpp"

namespace pbp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// A "codeword bit" index for flip tests: [0, DataBits) is a payload bit,
// [DataBits, DataBits + CheckBits) is a used bit of the check byte.
// secded16 uses 6 check-byte bits (5 Hamming + overall), secded64 all 8.
constexpr int k16DataBits = 16, k16CheckBits = 6;
constexpr int k64DataBits = 64, k64CheckBits = 8;

template <typename P>
void flip(P& payload, std::uint8_t& check, int pos, int data_bits) {
  if (pos < data_bits) {
    payload ^= P{1} << pos;
  } else {
    check ^= static_cast<std::uint8_t>(1u << (pos - data_bits));
  }
}

TEST(Secded16, CleanRoundTripAllPayloads) {
  for (unsigned v = 0; v <= 0xffffu; ++v) {
    std::uint16_t payload = static_cast<std::uint16_t>(v);
    std::uint8_t check = secded16_encode(payload);
    EXPECT_TRUE(secded16_clean(payload, check));
    ASSERT_EQ(secded16_check(payload, check), EccCheck::kClean);
    ASSERT_EQ(payload, static_cast<std::uint16_t>(v));
    ASSERT_EQ(check, secded16_encode(payload));
  }
}

TEST(Secded16, EverySingleFlipCorrectsExhaustively) {
  for (unsigned v = 0; v <= 0xffffu; ++v) {
    const std::uint16_t orig = static_cast<std::uint16_t>(v);
    const std::uint8_t canonical = secded16_encode(orig);
    for (int pos = 0; pos < k16DataBits + k16CheckBits; ++pos) {
      std::uint16_t payload = orig;
      std::uint8_t check = canonical;
      flip(payload, check, pos, k16DataBits);
      ASSERT_EQ(secded16_check(payload, check), EccCheck::kCorrected)
          << "payload " << v << " flip " << pos;
      ASSERT_EQ(payload, orig) << "payload " << v << " flip " << pos;
      ASSERT_EQ(check, canonical) << "payload " << v << " flip " << pos;
    }
  }
}

TEST(Secded16, EveryDoubleFlipDetectsNeverMiscorrects) {
  // All C(22,2) position pairs, over a payload sample (linearity makes the
  // verdict payload-independent; the sample guards the implementation).
  std::uint64_t rng = 16;
  for (int s = 0; s < 64; ++s) {
    const std::uint16_t orig = static_cast<std::uint16_t>(splitmix64(rng));
    const std::uint8_t canonical = secded16_encode(orig);
    for (int a = 0; a < k16DataBits + k16CheckBits; ++a) {
      for (int b = a + 1; b < k16DataBits + k16CheckBits; ++b) {
        std::uint16_t payload = orig;
        std::uint8_t check = canonical;
        flip(payload, check, a, k16DataBits);
        flip(payload, check, b, k16DataBits);
        ASSERT_EQ(secded16_check(payload, check), EccCheck::kUncorrectable)
            << "flips " << a << "," << b;
      }
    }
  }
}

TEST(Secded64, CleanRoundTrip) {
  std::uint64_t rng = 64;
  for (int s = 0; s < 4096; ++s) {
    const std::uint64_t orig = splitmix64(rng);
    std::uint64_t payload = orig;
    std::uint8_t check = secded64_encode(payload);
    EXPECT_TRUE(secded64_clean(payload, check));
    ASSERT_EQ(secded64_check(payload, check), EccCheck::kClean);
    ASSERT_EQ(payload, orig);
  }
}

TEST(Secded64, EverySingleFlipCorrects) {
  std::uint64_t rng = 65;
  for (int s = 0; s < 512; ++s) {
    const std::uint64_t orig = splitmix64(rng);
    const std::uint8_t canonical = secded64_encode(orig);
    for (int pos = 0; pos < k64DataBits + k64CheckBits; ++pos) {
      std::uint64_t payload = orig;
      std::uint8_t check = canonical;
      flip(payload, check, pos, k64DataBits);
      ASSERT_EQ(secded64_check(payload, check), EccCheck::kCorrected)
          << "seed " << s << " flip " << pos;
      ASSERT_EQ(payload, orig) << "seed " << s << " flip " << pos;
      ASSERT_EQ(check, canonical) << "seed " << s << " flip " << pos;
    }
  }
}

TEST(Secded64, EveryDoubleFlipDetectsNeverMiscorrects) {
  std::uint64_t rng = 66;
  for (int s = 0; s < 16; ++s) {
    const std::uint64_t orig = splitmix64(rng);
    const std::uint8_t canonical = secded64_encode(orig);
    for (int a = 0; a < k64DataBits + k64CheckBits; ++a) {
      for (int b = a + 1; b < k64DataBits + k64CheckBits; ++b) {
        std::uint64_t payload = orig;
        std::uint8_t check = canonical;
        flip(payload, check, a, k64DataBits);
        flip(payload, check, b, k64DataBits);
        ASSERT_EQ(secded64_check(payload, check), EccCheck::kUncorrectable)
            << "seed " << s << " flips " << a << "," << b;
      }
    }
  }
}

// --- Fast-path (table-driven) codec vs the scalar reference ---------------
// The hot paths encode with secded*_encode_fast and verify with
// secded*_check_block; the per-bit scalar codec stays the exhaustive-test
// reference.  These suites pin the two implementations to each other.

TEST(SecdedFast, Encode16MatchesScalarExhaustively) {
  for (unsigned v = 0; v <= 0xffffu; ++v) {
    const std::uint16_t p = static_cast<std::uint16_t>(v);
    ASSERT_EQ(secded16_encode_fast(p), secded16_encode(p)) << "payload " << v;
  }
}

TEST(SecdedFast, Encode64MatchesScalar) {
  std::uint64_t rng = 164;
  for (int s = 0; s < 65536; ++s) {
    const std::uint64_t p = splitmix64(rng);
    ASSERT_EQ(secded64_encode_fast(p), secded64_encode(p)) << "seed " << s;
  }
  // Structured corners the random sweep may miss.
  for (int b = 0; b < 64; ++b) {
    const std::uint64_t p = std::uint64_t{1} << b;
    ASSERT_EQ(secded64_encode_fast(p), secded64_encode(p));
    ASSERT_EQ(secded64_encode_fast(~p), secded64_encode(~p));
  }
  ASSERT_EQ(secded64_encode_fast(0), secded64_encode(0));
  ASSERT_EQ(secded64_encode_fast(~std::uint64_t{0}),
            secded64_encode(~std::uint64_t{0}));
}

TEST(SecdedFast, EncodeBlockMatchesScalarPerWord) {
  std::uint64_t rng = 165;
  std::vector<std::uint64_t> w64(1024);
  for (auto& w : w64) w = splitmix64(rng) & (splitmix64(rng) | splitmix64(rng));
  w64[17] = 0;  // exercise the zero fast path
  std::vector<std::uint8_t> c64(w64.size());
  secded64_encode_block(w64.data(), c64.data(), w64.size());
  for (std::size_t i = 0; i < w64.size(); ++i) {
    ASSERT_EQ(c64[i], secded64_encode(w64[i])) << "word " << i;
  }

  std::vector<std::uint16_t> w16(1024);
  for (auto& w : w16) w = static_cast<std::uint16_t>(splitmix64(rng));
  w16[3] = 0;
  std::vector<std::uint8_t> c16(w16.size());
  secded16_encode_block(w16.data(), c16.data(), w16.size());
  for (std::size_t i = 0; i < w16.size(); ++i) {
    ASSERT_EQ(c16[i], secded16_encode(w16[i])) << "word " << i;
  }
}

// Every single codeword-bit flip of a random block: check_block in correct
// mode must classify and repair exactly like the scalar reference.
TEST(SecdedFast, CheckBlock64EverySingleFlipCorrects) {
  std::uint64_t rng = 166;
  std::vector<std::uint64_t> orig(8);
  for (auto& w : orig) w = splitmix64(rng);
  std::vector<std::uint8_t> canonical(orig.size());
  secded64_encode_block(orig.data(), canonical.data(), orig.size());

  for (std::size_t word = 0; word < orig.size(); ++word) {
    for (int pos = 0; pos < k64DataBits + k64CheckBits; ++pos) {
      auto words = orig;
      auto checks = canonical;
      flip(words[word], checks[word], pos, k64DataBits);
      EccSweep sweep;
      ASSERT_EQ(secded64_check_block(EccMode::kCorrect, words.data(),
                                     checks.data(), words.size(), sweep),
                EccCheck::kCorrected)
          << "word " << word << " flip " << pos;
      ASSERT_EQ(sweep.corrected, 1u);
      ASSERT_EQ(sweep.uncorrectable, 0u);
      ASSERT_EQ(sweep.words, orig.size());
      ASSERT_EQ(words, orig) << "word " << word << " flip " << pos;
      ASSERT_EQ(checks, canonical) << "word " << word << " flip " << pos;
    }
  }
}

// Every double flip within one word of a block (all C(72,2) pairs) must be
// uncorrectable — and in detect mode nothing may be modified.
TEST(SecdedFast, CheckBlock64EveryDoubleFlipDetects) {
  std::uint64_t rng = 167;
  std::vector<std::uint64_t> orig(8);
  for (auto& w : orig) w = splitmix64(rng);
  std::vector<std::uint8_t> canonical(orig.size());
  secded64_encode_block(orig.data(), canonical.data(), orig.size());

  const std::size_t word = 5;
  for (int a = 0; a < k64DataBits + k64CheckBits; ++a) {
    for (int b = a + 1; b < k64DataBits + k64CheckBits; ++b) {
      auto words = orig;
      auto checks = canonical;
      flip(words[word], checks[word], a, k64DataBits);
      flip(words[word], checks[word], b, k64DataBits);
      EccSweep sweep;
      ASSERT_EQ(secded64_check_block(EccMode::kCorrect, words.data(),
                                     checks.data(), words.size(), sweep),
                EccCheck::kUncorrectable)
          << "flips " << a << "," << b;
      ASSERT_EQ(sweep.uncorrectable, 1u);
      ASSERT_EQ(sweep.corrected, 0u);
    }
  }
}

TEST(SecdedFast, CheckBlock64DetectModeFlagsWithoutRepair) {
  std::uint64_t rng = 168;
  std::vector<std::uint64_t> orig(16);
  for (auto& w : orig) w = splitmix64(rng);
  std::vector<std::uint8_t> canonical(orig.size());
  secded64_encode_block(orig.data(), canonical.data(), orig.size());

  auto words = orig;
  auto checks = canonical;
  words[2] ^= std::uint64_t{1} << 41;  // single flip: correctable in kCorrect
  const auto flipped_words = words;
  EccSweep sweep;
  ASSERT_EQ(secded64_check_block(EccMode::kDetect, words.data(), checks.data(),
                                 words.size(), sweep),
            EccCheck::kUncorrectable);
  EXPECT_EQ(sweep.uncorrectable, 1u);
  EXPECT_EQ(sweep.corrected, 0u);
  // Detect-only hardware has no corrector: payloads and checks untouched.
  EXPECT_EQ(words, flipped_words);
  EXPECT_EQ(checks, canonical);
}

TEST(SecdedFast, CheckBlock16ExhaustiveFlipsOnOneWord) {
  std::uint64_t rng = 169;
  std::vector<std::uint16_t> orig(8);
  for (auto& w : orig) w = static_cast<std::uint16_t>(splitmix64(rng));
  std::vector<std::uint8_t> canonical(orig.size());
  secded16_encode_block(orig.data(), canonical.data(), orig.size());

  const std::size_t word = 3;
  for (int a = 0; a < k16DataBits + k16CheckBits; ++a) {
    auto words = orig;
    auto checks = canonical;
    flip(words[word], checks[word], a, k16DataBits);
    EccSweep sweep;
    ASSERT_EQ(secded16_check_block(EccMode::kCorrect, words.data(),
                                   checks.data(), words.size(), sweep),
              EccCheck::kCorrected)
        << "flip " << a;
    ASSERT_EQ(words, orig);
    ASSERT_EQ(checks, canonical);
    for (int b = a + 1; b < k16DataBits + k16CheckBits; ++b) {
      auto words2 = orig;
      auto checks2 = canonical;
      flip(words2[word], checks2[word], a, k16DataBits);
      flip(words2[word], checks2[word], b, k16DataBits);
      EccSweep sweep2;
      ASSERT_EQ(secded16_check_block(EccMode::kCorrect, words2.data(),
                                     checks2.data(), words2.size(), sweep2),
                EccCheck::kUncorrectable)
          << "flips " << a << "," << b;
    }
  }
}

TEST(SecdedFast, CheckBlockOffModeTouchesNothing) {
  std::vector<std::uint64_t> words = {1, 2, 3};
  std::vector<std::uint8_t> checks = {0xff, 0xff, 0xff};  // garbage sidecar
  EccSweep sweep;
  EXPECT_EQ(secded64_check_block(EccMode::kOff, words.data(), checks.data(),
                                 words.size(), sweep),
            EccCheck::kClean);
  EXPECT_EQ(sweep.words, 0u);
  EXPECT_EQ(sweep.corrected, 0u);
  EXPECT_EQ(sweep.uncorrectable, 0u);
}

TEST(EccMode, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_ecc_mode("off"), EccMode::kOff);
  EXPECT_EQ(parse_ecc_mode("detect"), EccMode::kDetect);
  EXPECT_EQ(parse_ecc_mode("correct"), EccMode::kCorrect);
  EXPECT_STREQ(ecc_mode_name(EccMode::kOff), "off");
  EXPECT_STREQ(ecc_mode_name(EccMode::kDetect), "detect");
  EXPECT_STREQ(ecc_mode_name(EccMode::kCorrect), "correct");
  EXPECT_THROW(parse_ecc_mode("on"), std::invalid_argument);
}

TEST(EccMode, DetectFlagsEveryMismatch) {
  // kDetect is a parity-check model: _clean() compares the whole stored
  // byte, so any single payload flip must read unclean.
  std::uint64_t rng = 67;
  for (int s = 0; s < 256; ++s) {
    const std::uint16_t p16 = static_cast<std::uint16_t>(splitmix64(rng));
    const std::uint64_t p64 = splitmix64(rng);
    const std::uint8_t c16 = secded16_encode(p16);
    const std::uint8_t c64 = secded64_encode(p64);
    for (int b = 0; b < 16; ++b) {
      EXPECT_FALSE(
          secded16_clean(static_cast<std::uint16_t>(p16 ^ (1u << b)), c16));
    }
    for (int b = 0; b < 64; ++b) {
      EXPECT_FALSE(secded64_clean(p64 ^ (1ull << b), c64));
    }
  }
}

}  // namespace
}  // namespace pbp
