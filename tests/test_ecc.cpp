// SECDED codec tests (pbp/ecc.hpp): the correction/detection guarantees the
// whole integrity layer leans on, proved exhaustively at the codec level.
//
//   * clean round-trip: encode -> check is kClean and changes nothing;
//   * single-bit correction: EVERY single flip — any payload bit, any used
//     check-byte bit (Hamming or overall parity) — comes back kCorrected
//     with the original payload and a canonical check byte;
//   * double-bit detection: EVERY pair of distinct single flips comes back
//     kUncorrectable, never a silent "correction" to a wrong payload.
//
// The 16-bit codec is swept over every payload value; the 64-bit codec over
// a deterministic pseudo-random payload set (the code is linear, so the
// error behaviour depends only on the flipped positions, not the payload —
// the sweep is belt and braces, not a sampling compromise).
#include <gtest/gtest.h>

#include <cstdint>

#include "pbp/ecc.hpp"

namespace pbp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// A "codeword bit" index for flip tests: [0, DataBits) is a payload bit,
// [DataBits, DataBits + CheckBits) is a used bit of the check byte.
// secded16 uses 6 check-byte bits (5 Hamming + overall), secded64 all 8.
constexpr int k16DataBits = 16, k16CheckBits = 6;
constexpr int k64DataBits = 64, k64CheckBits = 8;

template <typename P>
void flip(P& payload, std::uint8_t& check, int pos, int data_bits) {
  if (pos < data_bits) {
    payload ^= P{1} << pos;
  } else {
    check ^= static_cast<std::uint8_t>(1u << (pos - data_bits));
  }
}

TEST(Secded16, CleanRoundTripAllPayloads) {
  for (unsigned v = 0; v <= 0xffffu; ++v) {
    std::uint16_t payload = static_cast<std::uint16_t>(v);
    std::uint8_t check = secded16_encode(payload);
    EXPECT_TRUE(secded16_clean(payload, check));
    ASSERT_EQ(secded16_check(payload, check), EccCheck::kClean);
    ASSERT_EQ(payload, static_cast<std::uint16_t>(v));
    ASSERT_EQ(check, secded16_encode(payload));
  }
}

TEST(Secded16, EverySingleFlipCorrectsExhaustively) {
  for (unsigned v = 0; v <= 0xffffu; ++v) {
    const std::uint16_t orig = static_cast<std::uint16_t>(v);
    const std::uint8_t canonical = secded16_encode(orig);
    for (int pos = 0; pos < k16DataBits + k16CheckBits; ++pos) {
      std::uint16_t payload = orig;
      std::uint8_t check = canonical;
      flip(payload, check, pos, k16DataBits);
      ASSERT_EQ(secded16_check(payload, check), EccCheck::kCorrected)
          << "payload " << v << " flip " << pos;
      ASSERT_EQ(payload, orig) << "payload " << v << " flip " << pos;
      ASSERT_EQ(check, canonical) << "payload " << v << " flip " << pos;
    }
  }
}

TEST(Secded16, EveryDoubleFlipDetectsNeverMiscorrects) {
  // All C(22,2) position pairs, over a payload sample (linearity makes the
  // verdict payload-independent; the sample guards the implementation).
  std::uint64_t rng = 16;
  for (int s = 0; s < 64; ++s) {
    const std::uint16_t orig = static_cast<std::uint16_t>(splitmix64(rng));
    const std::uint8_t canonical = secded16_encode(orig);
    for (int a = 0; a < k16DataBits + k16CheckBits; ++a) {
      for (int b = a + 1; b < k16DataBits + k16CheckBits; ++b) {
        std::uint16_t payload = orig;
        std::uint8_t check = canonical;
        flip(payload, check, a, k16DataBits);
        flip(payload, check, b, k16DataBits);
        ASSERT_EQ(secded16_check(payload, check), EccCheck::kUncorrectable)
            << "flips " << a << "," << b;
      }
    }
  }
}

TEST(Secded64, CleanRoundTrip) {
  std::uint64_t rng = 64;
  for (int s = 0; s < 4096; ++s) {
    const std::uint64_t orig = splitmix64(rng);
    std::uint64_t payload = orig;
    std::uint8_t check = secded64_encode(payload);
    EXPECT_TRUE(secded64_clean(payload, check));
    ASSERT_EQ(secded64_check(payload, check), EccCheck::kClean);
    ASSERT_EQ(payload, orig);
  }
}

TEST(Secded64, EverySingleFlipCorrects) {
  std::uint64_t rng = 65;
  for (int s = 0; s < 512; ++s) {
    const std::uint64_t orig = splitmix64(rng);
    const std::uint8_t canonical = secded64_encode(orig);
    for (int pos = 0; pos < k64DataBits + k64CheckBits; ++pos) {
      std::uint64_t payload = orig;
      std::uint8_t check = canonical;
      flip(payload, check, pos, k64DataBits);
      ASSERT_EQ(secded64_check(payload, check), EccCheck::kCorrected)
          << "seed " << s << " flip " << pos;
      ASSERT_EQ(payload, orig) << "seed " << s << " flip " << pos;
      ASSERT_EQ(check, canonical) << "seed " << s << " flip " << pos;
    }
  }
}

TEST(Secded64, EveryDoubleFlipDetectsNeverMiscorrects) {
  std::uint64_t rng = 66;
  for (int s = 0; s < 16; ++s) {
    const std::uint64_t orig = splitmix64(rng);
    const std::uint8_t canonical = secded64_encode(orig);
    for (int a = 0; a < k64DataBits + k64CheckBits; ++a) {
      for (int b = a + 1; b < k64DataBits + k64CheckBits; ++b) {
        std::uint64_t payload = orig;
        std::uint8_t check = canonical;
        flip(payload, check, a, k64DataBits);
        flip(payload, check, b, k64DataBits);
        ASSERT_EQ(secded64_check(payload, check), EccCheck::kUncorrectable)
            << "seed " << s << " flips " << a << "," << b;
      }
    }
  }
}

TEST(EccMode, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_ecc_mode("off"), EccMode::kOff);
  EXPECT_EQ(parse_ecc_mode("detect"), EccMode::kDetect);
  EXPECT_EQ(parse_ecc_mode("correct"), EccMode::kCorrect);
  EXPECT_STREQ(ecc_mode_name(EccMode::kOff), "off");
  EXPECT_STREQ(ecc_mode_name(EccMode::kDetect), "detect");
  EXPECT_STREQ(ecc_mode_name(EccMode::kCorrect), "correct");
  EXPECT_THROW(parse_ecc_mode("on"), std::invalid_argument);
}

TEST(EccMode, DetectFlagsEveryMismatch) {
  // kDetect is a parity-check model: _clean() compares the whole stored
  // byte, so any single payload flip must read unclean.
  std::uint64_t rng = 67;
  for (int s = 0; s < 256; ++s) {
    const std::uint16_t p16 = static_cast<std::uint16_t>(splitmix64(rng));
    const std::uint64_t p64 = splitmix64(rng);
    const std::uint8_t c16 = secded16_encode(p16);
    const std::uint8_t c64 = secded64_encode(p64);
    for (int b = 0; b < 16; ++b) {
      EXPECT_FALSE(
          secded16_clean(static_cast<std::uint16_t>(p16 ^ (1u << b)), c16));
    }
    for (int b = 0; b < 64; ++b) {
      EXPECT_FALSE(secded64_clean(p64 ^ (1ull << b), c64));
    }
  }
}

}  // namespace
}  // namespace pbp
