// Checkpoint/restore: full-machine snapshots (CPU + memory + Qat register
// file in either backend representation) must round-trip exactly, and the
// CheckpointingRunner must recover a faulted run via rollback/restart.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/checkpoint.hpp"
#include "arch/recovery.hpp"
#include "arch/simulators.hpp"
#include "asm/assembler.hpp"
#include "asm/programs.hpp"

namespace tangled {
namespace {

/// Everything a checkpoint promises to preserve, read back out of a sim.
struct MachineState {
  std::array<std::uint16_t, kNumRegs> regs{};
  std::uint16_t pc = 0;
  bool halted = false;
  Trap trap{};
  std::vector<std::string> qat_regs;  // reg_string works at any width
  std::vector<std::uint16_t> mem_head;

  bool operator==(const MachineState& o) const {
    return regs == o.regs && pc == o.pc && halted == o.halted &&
           trap == o.trap && qat_regs == o.qat_regs && mem_head == o.mem_head;
  }
};

template <typename Sim>
MachineState snapshot_state(Sim& sim, unsigned n_qat_regs = 96) {
  MachineState m;
  m.regs = sim.cpu().regs;
  m.pc = sim.cpu().pc;
  m.halted = sim.cpu().halted;
  m.trap = sim.cpu().trap;
  for (unsigned r = 0; r < n_qat_regs; ++r) {
    m.qat_regs.push_back(sim.qat().reg_string(r, 128));
  }
  for (std::uint16_t a = 0; a < 256; ++a) {
    m.mem_head.push_back(sim.memory().read(a));
  }
  return m;
}

template <typename Sim>
void roundtrip_mid_run(unsigned ways, pbp::Backend backend) {
  const Program p = assemble(figure10_source());

  Sim sim(ways, backend);
  sim.load(p);
  sim.run(40);  // stop mid-program, Qat registers in flight
  ASSERT_FALSE(sim.cpu().halted);
  const std::vector<std::uint8_t> bytes =
      save_checkpoint(sim.cpu(), sim.memory(), sim.qat());

  // Reference: let the original continue to the end.
  sim.run();
  ASSERT_TRUE(sim.cpu().halted);
  const MachineState want = snapshot_state(sim);
  EXPECT_EQ(sim.cpu().regs[0], 5u);
  EXPECT_EQ(sim.cpu().regs[1], 3u);

  // A FRESH machine restored from the snapshot must reach the same end.
  Sim fresh(ways, backend);
  load_checkpoint(bytes, fresh.cpu(), fresh.memory(), fresh.qat());
  EXPECT_EQ(fresh.qat().backend_kind(), backend);
  fresh.run();
  const MachineState got = snapshot_state(fresh);
  EXPECT_EQ(want, got);
}

TEST(Checkpoint, DenseMidRunRoundTrip) {
  roundtrip_mid_run<FunctionalSim>(8, pbp::Backend::kDense);
}

TEST(Checkpoint, ReMidRunRoundTrip) {
  roundtrip_mid_run<FunctionalSim>(16, pbp::Backend::kCompressed);
}

TEST(Checkpoint, RestoreOverwritesDivergedState) {
  // Restoring must fully replace whatever the target machine did since.
  const Program p = assemble(figure10_source());
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(p);
  sim.run(40);
  const std::vector<std::uint8_t> bytes =
      save_checkpoint(sim.cpu(), sim.memory(), sim.qat());
  const MachineState at_save = snapshot_state(sim);

  sim.run();  // diverge: run to completion
  ASSERT_TRUE(sim.cpu().halted);
  sim.memory().write(200, 0xbeef);  // and scribble on memory

  load_checkpoint(bytes, sim.cpu(), sim.memory(), sim.qat());
  EXPECT_EQ(snapshot_state(sim), at_save);
  EXPECT_FALSE(sim.cpu().halted);
}

TEST(Checkpoint, WideCompressedRoundTrip) {
  // 36-way RE registers have no dense form; the checkpoint must carry the
  // chunk pool + run lists directly.
  FunctionalSim sim(36, pbp::Backend::kCompressed);
  sim.load(assemble("\thad @1,0\n\thad @2,20\n\tsys\n"));
  sim.run();
  ASSERT_TRUE(sim.cpu().halted);
  const std::vector<std::uint8_t> bytes =
      save_checkpoint(sim.cpu(), sim.memory(), sim.qat());

  FunctionalSim fresh(36, pbp::Backend::kCompressed);
  load_checkpoint(bytes, fresh.cpu(), fresh.memory(), fresh.qat());
  EXPECT_EQ(fresh.qat().reg_string(1, 64), sim.qat().reg_string(1, 64));
  EXPECT_EQ(fresh.qat().reg_string(2, 64), sim.qat().reg_string(2, 64));
  EXPECT_EQ(fresh.qat().reg_popcount(1), sim.qat().reg_popcount(1));
  EXPECT_EQ(fresh.qat().reg_popcount(2), sim.qat().reg_popcount(2));
}

TEST(Checkpoint, TruncatedStreamThrows) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(assemble("\tlex $1,1\n\tsys\n"));
  std::vector<std::uint8_t> bytes =
      save_checkpoint(sim.cpu(), sim.memory(), sim.qat());
  bytes.resize(bytes.size() / 2);
  FunctionalSim target(8, pbp::Backend::kDense);
  EXPECT_THROW(
      load_checkpoint(bytes, target.cpu(), target.memory(), target.qat()),
      std::runtime_error);
}

TEST(Checkpoint, BadMagicThrows) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  std::vector<std::uint8_t> bytes =
      save_checkpoint(sim.cpu(), sim.memory(), sim.qat());
  bytes[0] ^= 0xff;
  FunctionalSim target(8, pbp::Backend::kDense);
  EXPECT_THROW(
      load_checkpoint(bytes, target.cpu(), target.memory(), target.qat()),
      std::runtime_error);
}

TEST(Checkpoint, RunnerRecoversFromInjectedRegisterFlip) {
  // Flip a bit of $0 right after the factoring answer lands in it: the run
  // halts with a wrong answer, validate() rejects it, and the runner rolls
  // back.  The fault is keyed on the monotone retired clock, so it does not
  // refire on re-execution and the second lineage is clean.
  const Program p = assemble(figure10_source());
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(p);
  FaultPlan plan;
  FaultEvent e;
  e.target = FaultEvent::Target::kHostReg;
  e.at_instr = 90;  // fig10 retires 91 instructions
  e.addr = 0;
  e.bit = 3;
  plan.events.push_back(e);
  sim.set_fault_plan(plan);

  CheckpointingRunner<FunctionalSim> runner(sim, 25);
  const RecoveryStats rs = runner.run(100'000, [](const FunctionalSim& s) {
    return s.cpu().regs[0] == 5 && s.cpu().regs[1] == 3;
  });
  EXPECT_TRUE(rs.halted);
  EXPECT_FALSE(rs.gave_up);
  EXPECT_TRUE(rs.recovered);
  EXPECT_GE(rs.rollbacks + rs.restarts, 1u);
  EXPECT_EQ(sim.cpu().regs[0], 5u);
  EXPECT_EQ(sim.cpu().regs[1], 3u);
}

TEST(Checkpoint, RunnerRestartOnlyModeRecovers) {
  // checkpoint_every = 0: no mid-run snapshots, recovery = full restart.
  const Program p = assemble(figure10_source());
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(p);
  FaultPlan plan;
  FaultEvent e;
  e.target = FaultEvent::Target::kHostReg;
  e.at_instr = 90;  // corrupt $0 after the answer lands in it
  e.addr = 0;
  e.bit = 3;
  plan.events.push_back(e);
  sim.set_fault_plan(plan);

  CheckpointingRunner<FunctionalSim> runner(sim, 0);
  const RecoveryStats rs = runner.run(100'000, [](const FunctionalSim& s) {
    return s.cpu().regs[0] == 5 && s.cpu().regs[1] == 3;
  });
  EXPECT_TRUE(rs.halted);
  EXPECT_FALSE(rs.gave_up);
  EXPECT_TRUE(rs.recovered);
  EXPECT_EQ(rs.rollbacks, 0u);  // no mid-run checkpoints to roll back to
  EXPECT_EQ(rs.restarts, 1u);
  EXPECT_EQ(sim.cpu().regs[0], 5u);
  EXPECT_EQ(sim.cpu().regs[1], 3u);
}

TEST(Checkpoint, CleanRunTakesNoRestores) {
  const Program p = assemble(figure10_source());
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(p);
  CheckpointingRunner<FunctionalSim> runner(sim, 25);
  const RecoveryStats rs = runner.run(100'000, [](const FunctionalSim& s) {
    return s.cpu().regs[0] == 5 && s.cpu().regs[1] == 3;
  });
  EXPECT_TRUE(rs.halted);
  EXPECT_FALSE(rs.recovered);
  EXPECT_EQ(rs.rollbacks, 0u);
  EXPECT_EQ(rs.restarts, 0u);
  EXPECT_EQ(rs.instructions, 91u);
}

TEST(Checkpoint, RunnerSinkObservesEveryCleanSlice) {
  // The CheckpointSink feeds the serve journal's durable resume images: it
  // must see each in-memory checkpoint the runner takes (not the initial
  // one) together with the lineage instruction count, in order.
  const Program p = assemble(figure10_source());
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(p);
  CheckpointingRunner<FunctionalSim> runner(sim, 25);
  std::vector<std::uint64_t> at;
  std::vector<std::vector<std::uint8_t>> images;
  runner.set_checkpoint_sink(
      [&](const std::vector<std::uint8_t>& image, std::uint64_t completed) {
        images.push_back(image);
        at.push_back(completed);
      });
  const RecoveryStats rs =
      runner.run(100'000, [](const FunctionalSim&) { return true; });
  ASSERT_TRUE(rs.halted);
  // The initial pre-run checkpoint is counted but never sunk (there is
  // nothing to resume: attempt 1 starts from scratch anyway).
  ASSERT_EQ(at.size() + 1, rs.checkpoints_taken);
  ASSERT_GE(at.size(), 2u);
  EXPECT_TRUE(std::is_sorted(at.begin(), at.end()));
  // Every sunk image is a complete, restorable machine.
  FunctionalSim fresh(8, pbp::Backend::kDense);
  load_checkpoint(images.back(), fresh.cpu(), fresh.memory(), fresh.qat());
  fresh.run();
  EXPECT_EQ(fresh.cpu().regs[0], 5u);
  EXPECT_EQ(fresh.cpu().regs[1], 3u);
}

// ---------------------------------------------------------------------------
// Durable on-disk images: the fsync/rename discipline under injected
// filesystem failures (the ISSUE 8 satellite).  Each failure stage must
// leave either the old complete image or the new complete image — never a
// torn file, never a stale .tmp published.

class DurableFile : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/tangled-ckpt-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr) << std::strerror(errno);
    dir_ = tmpl;
    path_ = dir_ + "/image.tgnc";
  }
  void TearDown() override {
    set_checkpoint_io_failpoint(nullptr);
    ::unlink(path_.c_str());
    ::unlink((path_ + ".tmp").c_str());
    ::rmdir(dir_.c_str());
  }

  static bool exists(const std::string& p) {
    return ::access(p.c_str(), F_OK) == 0;
  }

  /// Fail every stage named `stage` with EIO.
  static void fail_stage(const char* stage) {
    static std::string want;  // the hook outlives this frame
    want = stage;
    set_checkpoint_io_failpoint(
        [](const char* s) { return want == s ? EIO : 0; });
  }

  std::string dir_;
  std::string path_;
};

TEST_F(DurableFile, CleanSaveRoundTripsAndLeavesNoTemp) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(assemble(figure10_source()));
  sim.run(40);
  save_checkpoint_file(path_, sim.cpu(), sim.memory(), sim.qat());
  EXPECT_TRUE(exists(path_));
  EXPECT_FALSE(exists(path_ + ".tmp"));
  FunctionalSim fresh(8, pbp::Backend::kDense);
  load_checkpoint_file(path_, fresh.cpu(), fresh.memory(), fresh.qat());
  fresh.run();
  EXPECT_EQ(fresh.cpu().regs[0], 5u);
  EXPECT_EQ(fresh.cpu().regs[1], 3u);
}

TEST_F(DurableFile, RenameFailureLeavesOldImageIntact) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(assemble(figure10_source()));
  sim.run(40);
  save_checkpoint_file(path_, sim.cpu(), sim.memory(), sim.qat());
  const std::uint16_t old_pc = sim.cpu().pc;

  sim.run(20);  // newer state that must NOT survive the failed save
  fail_stage("rename");
  try {
    save_checkpoint_file(path_, sim.cpu(), sim.memory(), sim.qat());
    FAIL() << "rename failpoint did not throw";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kIoError);
  }
  set_checkpoint_io_failpoint(nullptr);
  EXPECT_FALSE(exists(path_ + ".tmp")) << "failed save must clean its temp";

  // The published name still carries the OLD complete image.
  FunctionalSim fresh(8, pbp::Backend::kDense);
  load_checkpoint_file(path_, fresh.cpu(), fresh.memory(), fresh.qat());
  EXPECT_EQ(fresh.cpu().pc, old_pc);
}

TEST_F(DurableFile, TmpFsyncFailureNeverPublishes) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(assemble("\tlex $1,1\n\tsys\n"));
  fail_stage("fsync-tmp");
  try {
    save_checkpoint_file(path_, sim.cpu(), sim.memory(), sim.qat());
    FAIL() << "fsync-tmp failpoint did not throw";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kIoError);
  }
  EXPECT_FALSE(exists(path_)) << "unflushed bytes must never be published";
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(DurableFile, WriteFailureNeverPublishes) {
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(assemble("\tlex $1,1\n\tsys\n"));
  fail_stage("write");
  EXPECT_THROW(save_checkpoint_file(path_, sim.cpu(), sim.memory(), sim.qat()),
               CheckpointError);
  EXPECT_FALSE(exists(path_));
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(DurableFile, DirFsyncFailureReportsNotDurable) {
  // After a rename the image IS in place, but an unflushed directory entry
  // may vanish on power loss — the caller must see the failure and treat
  // the save as not having happened.
  FunctionalSim sim(8, pbp::Backend::kDense);
  sim.load(assemble("\tlex $1,1\n\tsys\n"));
  fail_stage("fsync-dir");
  try {
    save_checkpoint_file(path_, sim.cpu(), sim.memory(), sim.qat());
    FAIL() << "fsync-dir failpoint did not throw";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kIoError);
  }
}

}  // namespace
}  // namespace tangled
