// Exhaustive/randomized reference checks for the EX-stage ALU (cpu.hpp) and
// generative property tests for the pint word layer: random expression trees
// evaluated both channel-wise (gate networks over AoBs) and directly with
// host integer arithmetic per channel.
#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "arch/cpu.hpp"
#include "pbp/pint.hpp"

namespace tangled {
namespace {

/// Run one instruction's EX stage against a plain-integer reference model.
class AluSweep : public ::testing::Test {
 protected:
  std::uint16_t ex(Op op, std::uint16_t d, std::uint16_t s,
                   std::int16_t imm = 0) {
    Instr i;
    i.op = op;
    i.imm = imm;
    QatEngine qat(4);  // unused by Tangled ALU ops
    const ExOut o = exec_stage(i, /*pc=*/0, /*words=*/1, d, s, qat);
    EXPECT_TRUE(o.writes_reg);
    return o.value;
  }
};

TEST_F(AluSweep, AddWrapsExhaustiveGrid) {
  for (std::uint32_t d = 0; d <= 0xffff; d += 257) {
    for (std::uint32_t s = 0; s <= 0xffff; s += 263) {
      ASSERT_EQ(ex(Op::kAdd, d, s),
                static_cast<std::uint16_t>(d + s));
    }
  }
}

TEST_F(AluSweep, BitwiseExhaustiveGrid) {
  for (std::uint32_t d = 0; d <= 0xffff; d += 509) {
    for (std::uint32_t s = 0; s <= 0xffff; s += 521) {
      ASSERT_EQ(ex(Op::kAnd, d, s), (d & s));
      ASSERT_EQ(ex(Op::kOr, d, s), (d | s));
      ASSERT_EQ(ex(Op::kXor, d, s), (d ^ s));
      ASSERT_EQ(ex(Op::kNot, d, s), static_cast<std::uint16_t>(~d));
    }
  }
}

TEST_F(AluSweep, MulLow16ExhaustiveGrid) {
  for (std::uint32_t d = 0; d <= 0xffff; d += 251) {
    for (std::uint32_t s = 0; s <= 0xffff; s += 241) {
      ASSERT_EQ(ex(Op::kMul, d, s), static_cast<std::uint16_t>(d * s));
    }
  }
}

TEST_F(AluSweep, SltIsSignedEverywhere) {
  for (std::uint32_t d = 0; d <= 0xffff; d += 127) {
    for (std::uint32_t s = 0; s <= 0xffff; s += 131) {
      const bool want = static_cast<std::int16_t>(d) <
                        static_cast<std::int16_t>(s);
      ASSERT_EQ(ex(Op::kSlt, d, s), want ? 1u : 0u) << d << " " << s;
    }
  }
}

TEST_F(AluSweep, NegIsTwosComplement) {
  for (std::uint32_t d = 0; d <= 0xffff; ++d) {
    ASSERT_EQ(ex(Op::kNeg, d, 0),
              static_cast<std::uint16_t>(-static_cast<std::int16_t>(d)));
  }
}

TEST_F(AluSweep, ShiftFullAmountSweep) {
  // Every shift amount, both directions, representative values.
  for (const std::uint16_t d : {std::uint16_t{0x0001}, std::uint16_t{0x8000},
                                std::uint16_t{0xBEEF}, std::uint16_t{0x7FFF}}) {
    for (int amt = -20; amt <= 20; ++amt) {
      const std::uint16_t got =
          ex(Op::kShift, d, static_cast<std::uint16_t>(amt));
      std::uint16_t want;
      if (amt >= 0) {
        want = amt >= 16 ? 0 : static_cast<std::uint16_t>(d << amt);
      } else {
        const int r = -amt;
        const std::int16_t sd = static_cast<std::int16_t>(d);
        want = r >= 16 ? (sd < 0 ? 0xffff : 0)
                       : static_cast<std::uint16_t>(sd >> r);
      }
      ASSERT_EQ(got, want) << "d=" << d << " amt=" << amt;
    }
  }
}

TEST_F(AluSweep, LexLhiFieldSemantics) {
  for (int imm = -128; imm <= 127; ++imm) {
    ASSERT_EQ(ex(Op::kLex, 0xABCD, 0, static_cast<std::int16_t>(imm)),
              static_cast<std::uint16_t>(imm));
  }
  for (int imm = 0; imm <= 255; ++imm) {
    ASSERT_EQ(ex(Op::kLhi, 0xABCD, 0, static_cast<std::int16_t>(imm)),
              static_cast<std::uint16_t>((imm << 8) | 0xCD));
  }
}

// --- Generative pint property test ---

/// A random word-level expression over two Hadamard operands, evaluated
/// (a) channel-wise through the gate layer and (b) per channel with host
/// integer arithmetic.  Any divergence is a synthesis bug.
class PintExpression : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PintExpression, MatchesHostArithmeticInEveryChannel) {
  std::mt19937_64 rng(GetParam());
  auto ctx = pbp::PbpContext::create(8, pbp::Backend::kDense);
  auto circ = std::make_shared<pbp::Circuit>(ctx, /*hash_cons=*/true);
  using pbp::Pint;

  const Pint b = Pint::hadamard(circ, 4, 0x0f);
  const Pint c = Pint::hadamard(circ, 4, 0xf0);

  // Host-side reference mirrors every step on (x, y) per channel.
  struct Value {
    Pint p;
    // reference evaluator for channel e (x = e % 16, y = e / 16)
    std::function<std::uint64_t(std::uint64_t, std::uint64_t)> ref;
  };
  std::vector<Value> pool;
  pool.push_back({b, [](std::uint64_t x, std::uint64_t) { return x; }});
  pool.push_back({c, [](std::uint64_t, std::uint64_t y) { return y; }});
  const std::uint64_t k = rng() % 16;
  pool.push_back({Pint::constant(circ, 4, k),
                  [k](std::uint64_t, std::uint64_t) { return k; }});

  const auto mask_of = [](unsigned width) {
    return width >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << width) - 1;
  };

  for (int step = 0; step < 10; ++step) {
    const Value& a = pool[rng() % pool.size()];
    const Value& d = pool[rng() % pool.size()];
    const unsigned wa = a.p.width();
    const unsigned wd = d.p.width();
    const unsigned wmax = std::max(wa, wd);
    Value nv{a.p, nullptr};
    switch (rng() % 8) {
      case 0:
        nv = {Pint::add(a.p, d.p), [ar = a.ref, dr = d.ref](auto x, auto y) {
                return ar(x, y) + dr(x, y);
              }};
        break;
      case 1:
        nv = {Pint::add_mod(a.p, d.p),
              [ar = a.ref, dr = d.ref, m = mask_of(wmax)](auto x, auto y) {
                return (ar(x, y) + dr(x, y)) & m;
              }};
        break;
      case 2:
        nv = {Pint::sub_mod(a.p, d.p),
              [ar = a.ref, dr = d.ref, m = mask_of(wmax)](auto x, auto y) {
                return (ar(x, y) - dr(x, y)) & m;
              }};
        break;
      case 3:
        // Cap widths so products do not explode the gate count.
        if (wa + wd > 24) continue;
        nv = {Pint::mul(a.p, d.p), [ar = a.ref, dr = d.ref](auto x, auto y) {
                return ar(x, y) * dr(x, y);
              }};
        break;
      case 4:
        nv = {a.p & d.p, [ar = a.ref, dr = d.ref](auto x, auto y) {
                return ar(x, y) & dr(x, y);
              }};
        break;
      case 5:
        nv = {a.p ^ d.p, [ar = a.ref, dr = d.ref](auto x, auto y) {
                return ar(x, y) ^ dr(x, y);
              }};
        break;
      case 6:
        nv = {Pint::select(Pint::lt(a.p, d.p), a.p, d.p),
              [ar = a.ref, dr = d.ref](auto x, auto y) {
                const auto av = ar(x, y);
                const auto dv = dr(x, y);
                return av < dv ? av : dv;  // min via lt+select
              }};
        break;
      default:
        nv = {Pint::eq(a.p, d.p), [ar = a.ref, dr = d.ref](auto x, auto y) {
                return ar(x, y) == dr(x, y) ? 1u : 0u;
              }};
        break;
    }
    pool.push_back(std::move(nv));
  }

  for (const Value& v : pool) {
    for (std::size_t e = 0; e < 256; e += 3) {
      ASSERT_EQ(v.p.value_at_channel(e), v.ref(e % 16, e / 16))
          << "seed " << GetParam() << " channel " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PintExpression,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace tangled
