// Tests for the explicit-FSM multi-cycle simulator, including differential
// verification against the functional model (state) and the accounting
// multi-cycle model (cycles).
#include "arch/multicycle_fsm.hpp"

#include <gtest/gtest.h>

#include <random>

#include "asm/programs.hpp"

namespace tangled {
namespace {

TEST(MultiCycleFsm, BasicProgramAndStateHistogram) {
  MultiCycleFsmSim sim(8);
  sim.load(assemble(
      "lex $1,5\n"       // 4 states
      "had @0,3\n"       // 5 (FETCH2)
      "li $3,0x100\n"    // 2 x 4 (macro: lex + lhi)
      "store $1,$3\n"    // 5 (MEM)
      "load $2,$3\n"     // 5 (MEM)
      "sys\n"));         // 4
  const SimStats st = sim.run();
  ASSERT_TRUE(st.halted);
  EXPECT_EQ(sim.cpu().reg(2), 5u);
  EXPECT_EQ(st.cycles, 4u + 5u + 8u + 5u + 5u + 4u);
  EXPECT_EQ(sim.state_cycles(McState::kFetch), 7u);
  EXPECT_EQ(sim.state_cycles(McState::kFetch2), 1u);
  EXPECT_EQ(sim.state_cycles(McState::kDecode), 7u);
  EXPECT_EQ(sim.state_cycles(McState::kEx), 7u);
  EXPECT_EQ(sim.state_cycles(McState::kMem), 2u);
  EXPECT_EQ(sim.state_cycles(McState::kWb), 7u);
}

TEST(MultiCycleFsm, Figure10EndToEnd) {
  MultiCycleFsmSim sim(8);
  sim.load(assemble(figure10_source()));
  const SimStats st = sim.run();
  ASSERT_TRUE(st.halted);
  EXPECT_EQ(sim.cpu().reg(0), 5u);
  EXPECT_EQ(sim.cpu().reg(1), 3u);
  // The accounting model reports 447 cycles for Figure 10 (see
  // EXPERIMENTS.md); the FSM must step through exactly the same states.
  EXPECT_EQ(st.cycles, 447u);
}

TEST(MultiCycleFsm, ConsoleService) {
  MultiCycleFsmSim sim(8);
  sim.load(assemble("lex $1,9\nsys $1\nsys\n"));
  sim.run();
  EXPECT_EQ(sim.console(), "9\n");
}

TEST(MultiCycleFsm, InstructionLimit) {
  MultiCycleFsmSim sim(8);
  sim.load(assemble("self: br self\n"));
  const SimStats st = sim.run(100);
  EXPECT_FALSE(st.halted);
  EXPECT_EQ(st.instructions, 100u);
}

class McFsmDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McFsmDifferential, MatchesFunctionalStateAndAccountingCycles) {
  // Random straight-line-with-forward-branch programs, as in
  // test_property.cpp but generated inline with a different mix.
  std::mt19937_64 rng(GetParam());
  std::string src;
  int label = 0;
  for (unsigned r = 0; r < 8; ++r) {
    src += "li $" + std::to_string(r) + "," + std::to_string(rng() % 65536) +
           "\n";
  }
  src += "had @1,2\nhad @2,6\n";
  const auto reg = [&] { return "$" + std::to_string(rng() % 11); };
  for (int i = 0; i < 80; ++i) {
    switch (rng() % 10) {
      case 0:
        src += "add " + reg() + "," + reg() + "\n";
        break;
      case 1:
        src += "mul " + reg() + "," + reg() + "\n";
        break;
      case 2:
        src += "not " + reg() + "\n";
        break;
      case 3: {
        const std::string a = reg();
        src += "li $at,0x7fff\nand " + a + ",$at\nlhi " + a +
               ",0x80\nstore " + reg() + "," + a + "\n";
        break;
      }
      case 4: {
        const std::string a = reg();
        src += "li $at,0x7fff\nand " + a + ",$at\nlhi " + a +
               ",0x80\nload " + reg() + "," + a + "\n";
        break;
      }
      case 5: {
        const std::string lab = "L" + std::to_string(label++);
        src += "brt " + reg() + "," + lab + "\nneg " + reg() + "\n" + lab +
               ":\n";
        break;
      }
      case 6:
        src += "xor @3,@1,@2\n";
        break;
      case 7:
        src += "meas " + reg() + ",@3\n";
        break;
      case 8:
        src += "shift " + reg() + "," + reg() + "\n";
        break;
      default:
        src += "slt " + reg() + "," + reg() + "\n";
        break;
    }
  }
  src += "sys\n";
  const Program p = assemble(src);

  FunctionalSim f(8);
  MultiCycleSim acc(8);
  MultiCycleFsmSim fsm(8);
  f.load(p);
  acc.load(p);
  fsm.load(p);
  const SimStats sf = f.run(100000);
  const SimStats sa = acc.run(100000);
  const SimStats sm = fsm.run(100000);
  ASSERT_TRUE(sf.halted && sa.halted && sm.halted);
  EXPECT_EQ(sm.instructions, sf.instructions);
  for (unsigned r = 0; r < kNumRegs; ++r) {
    ASSERT_EQ(fsm.cpu().reg(r), f.cpu().reg(r)) << "seed " << GetParam();
  }
  EXPECT_EQ(sm.cycles, sa.cycles) << "seed " << GetParam();
  EXPECT_EQ(sm.fetch_extra_cycles, sa.fetch_extra_cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McFsmDifferential,
                         ::testing::Range<std::uint64_t>(300, 312));

}  // namespace
}  // namespace tangled
