// test_asm_errors.cpp — malformed-input corpus for the assembler front end.
//
// Every entry must yield a structured AsmError carrying the file name and
// the 1-based line of the offending statement — never a crash, never a
// silent mis-assembly.  The corpus covers the classic front-end holes: bad
// mnemonics, out-of-range literals, unterminated strings, bad escapes, and
// labels/symbols that dangle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "asm/assembler.hpp"

namespace tangled {
namespace {

struct Malformed {
  const char* tag;
  const char* source;
  std::size_t line;  // expected 1-based error line
};

const std::vector<Malformed>& corpus() {
  static const std::vector<Malformed> k = {
      // Bad mnemonics.
      {"unknown-mnemonic", "frobnicate $1,$2\n", 1},
      {"unknown-directive", ".data 7\n", 1},
      {"mnemonic-on-line-3", "lex $1,1\nsys $1\nbogus\n", 3},
      {"qat-form-of-tangled-op", "add @1,@2\n", 1},  // no Qat add exists

      // Out-of-range literals.
      {"lex-too-big", "lex $1,300\n", 1},
      {"lex-too-negative", "lex $1,-200\n", 1},
      {"lhi-negative", "lhi $1,-1\n", 1},
      {"word-too-wide", ".word 65536\n", 1},
      {"word-absurd", ".word 18446744073709551616\n", 1},
      {"had-index-7bit", "had @1,64\n", 1},
      {"space-negative", ".space -4\n", 1},
      {"space-huge", ".space 70000\n", 1},
      {"origin-negative", ".origin -1\n", 1},
      {"origin-huge", ".origin 70000\n", 1},
      {"bad-register", "add $16,$1\n", 1},
      {"bad-qat-register", "one @256\n", 1},

      // Strings.
      {"unterminated-string", ".ascii \"no closing quote\n", 1},
      {"unterminated-line-2", "sys\n.ascii \"oops\n", 2},
      {"string-trailing-junk", ".ascii \"ab\"cd\"\n", 1},
      {"unknown-escape", ".ascii \"bad \\q escape\"\n", 1},
      {"not-a-string", ".ascii 42\n", 1},
      {"missing-string", ".ascii\n", 1},

      // Dangling labels and symbols.
      {"branch-to-nowhere", "loop: brt $1,elsewhere\n", 1},
      {"jump-to-nowhere", "jump nowhere\n", 1},
      {"duplicate-label", "x: sys\nx: sys\n", 2},
      {"equ-forward-ref", "x = y\ny = 2\n", 1},
      {"bad-label", "1bad: sys\n", 1},

      // Operand shape.
      {"missing-operand", "add $1\n", 1},
      {"extra-operand", "not $1,$2\n", 1},
      {"empty-operand", "add $1,,$2\n", 1},
      {"swapped-sigils", "meas @1,$2\n", 1},
  };
  return k;
}

TEST(AsmErrors, CorpusYieldsStructuredErrors) {
  for (const auto& m : corpus()) {
    try {
      assemble(m.source, std::string(m.tag) + ".s");
      FAIL() << m.tag << ": expected AsmError, assembled cleanly";
    } catch (const AsmError& e) {
      EXPECT_EQ(e.line(), m.line) << m.tag << ": " << e.what();
      EXPECT_EQ(e.file(), std::string(m.tag) + ".s") << m.tag;
      EXPECT_FALSE(e.message().empty()) << m.tag;
      // what() renders the conventional compiler-style prefix.
      EXPECT_NE(std::string(e.what()).find(':'), std::string::npos) << m.tag;
    } catch (const std::exception& e) {
      FAIL() << m.tag << ": wrong exception type: " << e.what();
    }
  }
}

TEST(AsmErrors, DefaultFileNameIsInput) {
  try {
    assemble("bogus\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.file(), "<input>");
    EXPECT_EQ(std::string(e.what()).rfind("<input>:1: ", 0), 0u) << e.what();
  }
}

// The hardening must not break well-formed strings: quote-aware comment
// stripping and operand splitting keep `;`, `,`, `:` and `=` inside quotes.
TEST(AsmErrors, WellFormedStringsStillAssemble) {
  const Program p = assemble(
      "msg: .ascii \"a;b,c:d=e\"\n"
      "     .ascii \"tab\\there\\n\"  ; trailing comment\n"
      "     .ascii \"q\\\"q\\\\\"\n"
      "     .ascii \"\\0\"\n");
  const std::string expect = std::string("a;b,c:d=e") + "tab\there\n" +
                             "q\"q\\" + std::string(1, '\0');
  ASSERT_EQ(p.words.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(p.words[i], static_cast<unsigned char>(expect[i])) << i;
  }
  EXPECT_EQ(p.labels.at("msg"), 0u);
}

// Labels placed after a .ascii block must account for its width.
TEST(AsmErrors, AsciiAdvancesLabelPlacement) {
  const Program p = assemble(
      ".ascii \"abc\"\n"
      "after: .word 7\n");
  EXPECT_EQ(p.labels.at("after"), 3u);
  ASSERT_EQ(p.words.size(), 4u);
  EXPECT_EQ(p.words[3], 7u);
}

}  // namespace
}  // namespace tangled
