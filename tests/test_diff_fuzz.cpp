// test_diff_fuzz.cpp — seeded random-program differential fuzzing across the
// implementation models (ctest label `fuzz`).
//
// Each iteration generates a random well-formed instruction stream and runs
// it on every simulator model; all models must produce identical
// architectural state (registers, PC, full Qat register file) or raise the
// identical trap at the identical PC.  The generator is constrained so every
// program terminates without a watchdog:
//
//   * branches are forward-only and target instruction-start boundaries
//     (a branch into the middle of a two-word Qat form would be an illegal-
//     instruction trap by construction, which is legal but uninteresting);
//   * kStore and kJumpr are excluded — self-modifying stores and computed
//     jumps make the latch-level model's already-fetched-word timing an
//     architecturally visible difference, which is a known modelling
//     deviation (DESIGN.md), not a bug this fuzzer should report;
//   * recip stays in the pool, so a fraction of programs exercise the
//     divide-by-zero trap path naturally, and a sprinkle of raw 0xf000
//     words exercises illegal-instruction equivalence.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "arch/multicycle_fsm.hpp"
#include "arch/rtl_pipeline.hpp"
#include "arch/simulators.hpp"
#include "asm/assembler.hpp"

namespace tangled {
namespace {

constexpr unsigned kWays = 4;  // 16 Qat channels: fast, still interesting
constexpr unsigned kQatRegsUsed = 12;

struct GenInstr {
  Instr instr;
  bool raw_illegal = false;  // emit 0xf000 instead of an encoding
  int branch_to = -1;        // instruction index to fix up (brf/brt)
};

/// One random, guaranteed-terminating program.
Program generate(std::mt19937_64& rng) {
  const auto pick = [&](unsigned lo, unsigned hi) {
    return lo + static_cast<unsigned>(rng() % (hi - lo + 1));
  };
  const unsigned n = pick(24, 96);
  std::vector<GenInstr> gen;
  gen.reserve(n + 1);

  // Ops by frequency class: plain ALU traffic dominates, Qat ops are
  // common, branches and the trap makers are seasoning.
  static const Op kAlu[] = {Op::kAdd, Op::kAnd, Op::kCopy, Op::kLex,
                            Op::kLhi, Op::kMul, Op::kNeg,  Op::kNot,
                            Op::kOr,  Op::kShift, Op::kSlt, Op::kXor,
                            Op::kLoad};
  static const Op kFloat[] = {Op::kAddf, Op::kMulf, Op::kNegf, Op::kFloat,
                              Op::kInt, Op::kRecip};
  static const Op kQat[] = {Op::kQNot,  Op::kQZero, Op::kQOne,  Op::kQHad,
                            Op::kQCnot, Op::kQSwap, Op::kQAnd,  Op::kQOr,
                            Op::kQXor,  Op::kQCcnot, Op::kQCswap,
                            Op::kQMeas, Op::kQNext, Op::kQPop};

  for (unsigned i = 0; i < n; ++i) {
    GenInstr g;
    const unsigned roll = pick(0, 99);
    if (roll < 2) {
      g.raw_illegal = true;  // 2%: undefined opcode word
    } else {
      Instr& ins = g.instr;
      if (roll < 10) {  // 8%: forward branch
        ins.op = rng() % 2 ? Op::kBrt : Op::kBrf;
        ins.d = static_cast<std::uint8_t>(pick(0, kNumRegs - 1));
        g.branch_to = static_cast<int>(i + pick(1, 6));  // fixed up below
      } else if (roll < 55) {
        ins.op = kAlu[rng() % std::size(kAlu)];
      } else if (roll < 65) {
        ins.op = kFloat[rng() % std::size(kFloat)];
      } else {
        ins.op = kQat[rng() % std::size(kQat)];
      }
      if (ins.op != Op::kBrf && ins.op != Op::kBrt) {
        ins.d = static_cast<std::uint8_t>(pick(0, kNumRegs - 1));
        ins.s = static_cast<std::uint8_t>(pick(0, kNumRegs - 1));
        ins.qa = static_cast<std::uint8_t>(pick(0, kQatRegsUsed - 1));
        ins.qb = static_cast<std::uint8_t>(pick(0, kQatRegsUsed - 1));
        ins.qc = static_cast<std::uint8_t>(pick(0, kQatRegsUsed - 1));
        ins.k = static_cast<std::uint8_t>(pick(0, kWays));
        if (ins.op == Op::kLex) {
          ins.imm = static_cast<std::int16_t>(
              static_cast<std::int8_t>(pick(0, 255)));
        } else if (ins.op == Op::kLhi) {
          ins.imm = static_cast<std::int16_t>(pick(0, 255));
        }
      }
    }
    gen.push_back(g);
  }
  GenInstr halt;
  halt.instr.op = Op::kSys;
  gen.push_back(halt);

  // Place instructions, then resolve branch targets to the start address of
  // the chosen (clamped forward) instruction.
  std::vector<std::uint16_t> addr(gen.size());
  std::uint16_t pc = 0;
  for (std::size_t i = 0; i < gen.size(); ++i) {
    addr[i] = pc;
    pc = static_cast<std::uint16_t>(
        pc + (gen[i].raw_illegal ? 1 : instr_words(gen[i].instr.op)));
  }
  Program p;
  p.words.reserve(pc);
  for (std::size_t i = 0; i < gen.size(); ++i) {
    GenInstr& g = gen[i];
    if (g.raw_illegal) {
      p.words.push_back(0xf000);
      continue;
    }
    if (g.branch_to >= 0) {
      const std::size_t target =
          std::min<std::size_t>(static_cast<std::size_t>(g.branch_to),
                                gen.size() - 1);
      g.instr.imm =
          static_cast<std::int16_t>(addr[target] - (addr[i] + 1));
    }
    std::uint16_t w[2];
    const unsigned words = encode(g.instr, w);
    for (unsigned j = 0; j < words; ++j) p.words.push_back(w[j]);
    ++p.instruction_count;
  }
  return p;
}

struct Outcome {
  bool halted = false;
  Trap trap{};
  std::uint16_t pc = 0;
  std::array<std::uint16_t, kNumRegs> regs{};
  std::vector<std::string> qat;  // reg_string of each used Qat register
  std::string console;
  std::string model;

  bool operator==(const Outcome& o) const {
    return halted == o.halted && trap == o.trap && pc == o.pc &&
           regs == o.regs && qat == o.qat && console == o.console;
  }
};

template <typename Sim>
Outcome run_on(Sim&& sim, const Program& p, const char* model) {
  sim.load(p);
  const SimStats st = sim.run(200'000);
  Outcome o;
  o.halted = st.halted;
  o.trap = sim.cpu().trap;
  o.pc = sim.cpu().pc;
  o.regs = sim.cpu().regs;
  o.qat.reserve(kQatRegsUsed);
  for (unsigned r = 0; r < kQatRegsUsed; ++r) {
    o.qat.push_back(sim.qat().reg_string(r, std::size_t{1} << kWays));
  }
  o.console = sim.console();
  o.model = model;
  return o;
}

TEST(DiffFuzz, AllModelsAgreeOnRandomPrograms) {
  const std::uint64_t base_seed = 0xd1ffbeef2026ULL;
  unsigned trapped = 0;
  for (unsigned iter = 0; iter < 150; ++iter) {
    std::mt19937_64 rng(base_seed + iter);
    const Program p = generate(rng);
    std::vector<Outcome> outs;
    outs.push_back(run_on(FunctionalSim(kWays), p, "func"));
    outs.push_back(run_on(MultiCycleSim(kWays), p, "multi"));
    outs.push_back(run_on(MultiCycleFsmSim(kWays), p, "multi-fsm"));
    outs.push_back(run_on(
        PipelineSim(kWays, {.stages = 4, .forwarding = true}), p, "pipe4"));
    outs.push_back(run_on(
        PipelineSim(kWays, {.stages = 5, .forwarding = true}), p, "pipe5"));
    outs.push_back(run_on(
        PipelineSim(kWays, {.stages = 5, .forwarding = false}), p,
        "pipe5-nofwd"));
    outs.push_back(run_on(RtlPipelineSim(kWays), p, "rtl"));

    ASSERT_TRUE(outs[0].halted)
        << "seed " << iter << ": reference model did not halt";
    if (outs[0].trap) ++trapped;
    for (std::size_t i = 1; i < outs.size(); ++i) {
      ASSERT_EQ(outs[0], outs[i])
          << "seed " << iter << ": " << outs[i].model << " diverged from "
          << outs[0].model << " (trap " << to_string(outs[i].trap) << " vs "
          << to_string(outs[0].trap) << ", pc " << outs[i].pc << " vs "
          << outs[0].pc << ")";
    }
  }
  // The corpus must actually exercise the trap-equivalence path; if the
  // generator drifts to all-clean programs it stops testing anything hard.
  EXPECT_GE(trapped, 10u) << "trap coverage collapsed; retune the generator";
}

// The compressed backend must be architecturally indistinguishable from
// dense at the same width — same fuzz corpus, backends compared pairwise on
// the reference model.
TEST(DiffFuzz, BackendsAgreeOnRandomPrograms) {
  const std::uint64_t base_seed = 0xc0ffee2026ULL;
  for (unsigned iter = 0; iter < 60; ++iter) {
    std::mt19937_64 rng(base_seed + iter);
    const Program p = generate(rng);
    const Outcome dense =
        run_on(FunctionalSim(kWays, pbp::Backend::kDense), p, "dense");
    const Outcome re =
        run_on(FunctionalSim(kWays, pbp::Backend::kCompressed), p, "re");
    ASSERT_EQ(dense, re) << "seed " << iter << ": backend divergence";
  }
}

}  // namespace
}  // namespace tangled
