// test_govern_soak.cpp — the combined-chaos governance soak (labels
// `govern;soak`).  One journaled, supervised, multi-tenant NetServer is
// driven through four layered abuse phases:
//
//   A1  governed tenant traffic through a delay-injecting chaos proxy —
//       a mix of clean, storage-upset (fault-plan + ECC) and injected-stall
//       jobs from a weighted heavy/light tenant pair.  Strict assertions:
//       every key yields exactly one correct (validated) report, every
//       stall job was preempted and still completed, the weighted-fair
//       dequeue never starves the light tenant, and the whole phase
//       finishes orders of magnitude faster than the injected stalls would
//       allow if supervision were broken.
//   A2  hostile transport: a second proxy that drops/truncates/bitflips.
//       Keyed submissions are retried across reconnects; the journal dedup
//       makes the retries safe.  Loose assertions: every key converges to
//       exactly one agreed terminal outcome, nothing leaks.
//   B   wedge + flood: jobs that stall on every attempt must quarantine
//       after exactly max_preemptions, and a flooding tenant must be shed
//       with "tenant-over-quota" while its admitted backlog still drains.
//   C   durability failpoint (last — journal unhealthiness is sticky):
//       admissions shed "journal-unavailable", health degrades, and the
//       front door's RETRY_AFTER hint scales 16x.
//
// Afterwards a fresh JobServer on the same journal directory must recover
// zero jobs (every admitted job already has a durable terminal record) and
// answer a resubmitted key from the log — exactly-once across the soak,
// the chaos, and a restart.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "asm/programs.hpp"
#include "serve/job_server.hpp"
#include "serve/journal.hpp"
#include "serve/net/chaos.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/net/socket.hpp"

namespace tangled::serve {
namespace {

using namespace std::chrono_literals;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/tangled-govern-soak-XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) path = tmpl;
  }
  ~TempDir() {
    if (!path.empty()) std::system(("rm -rf " + path).c_str());
  }
};

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 10'000ms) {
  const auto until = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

/// The per-key traffic mix: clean runs, storage upsets beneath ECC, and
/// injected stalls that only supervision can unwedge.
net::SubmitRequest soak_request(const std::string& tenant, unsigned i,
                                bool with_stalls) {
  net::SubmitRequest req;
  req.name = tenant + "-" + std::to_string(i);
  req.source = figure10_source();
  req.max_instructions = 20'000;
  req.checkpoint_every = 25;
  req.expect = {{0, 5}, {1, 3}};
  req.tenant = tenant;
  req.idempotency_key = tenant + "/" + std::to_string(i);
  if (with_stalls && i % 6 == 5) {
    // Unsupervised, this sleep wedges a worker for two minutes.
    req.stall_spec = "at=50,ms=120000";
  } else if (i % 3 == 0) {
    req.fault_spec = "seed=" + std::to_string(100 + i) + ",events=4,horizon=120";
  } else if (i % 3 == 1) {
    req.ecc = pbp::EccMode::kCorrect;
    req.scrub_every = 256;
    req.fault_spec =
        "seed=" + std::to_string(200 + i) + ",events=4,horizon=100,storage=1";
  }
  return req;
}

/// Shared record of every first report per key, in global arrival order
/// (the fairness witness), plus re-delivered duplicates for the
/// exactly-once consistency check.
struct Ledger {
  std::mutex mu;
  std::map<std::string, JobReport> first;
  std::vector<std::string> arrival_tenants;  // tenant per first report
  std::uint64_t duplicates_consistent = 0;

  /// Returns false (under the lock) if a re-delivery disagreed with the
  /// first report — the exactly-once property is broken.
  bool record(const JobReport& rep) {
    std::lock_guard lk(mu);
    auto [it, fresh] = first.emplace(rep.idem_key, rep);
    if (fresh) {
      arrival_tenants.push_back(rep.tenant);
      return true;
    }
    ++duplicates_consistent;
    return it->second.outcome == rep.outcome;
  }
  bool has(const std::string& key) {
    std::lock_guard lk(mu);
    return first.count(key) != 0;
  }
};

/// Submit `keys` through `port`, reconnecting and resubmitting on any
/// transport casualty until every key has a terminal report (bounded
/// rounds).  Keyed resubmission is dedup-safe by design — that is the
/// property under test.
void drive_tenant(std::uint16_t port, const std::string& tenant, unsigned n,
                  bool with_stalls, Ledger& ledger, bool& ok) {
  ok = false;
  std::set<unsigned> pending;
  for (unsigned i = 0; i < n; ++i) pending.insert(i);
  for (int round = 0; round < 60 && !pending.empty(); ++round) {
    net::ServeClientConfig cc;
    cc.port = port;
    net::ServeClient client(cc);
    if (!client.connect().ok) {
      std::this_thread::sleep_for(20ms);
      continue;
    }
    std::set<unsigned> submitted;
    for (const unsigned i : pending) {
      net::ClientResult r;
      if (client.submit(soak_request(tenant, i, with_stalls), &r).has_value()) {
        submitted.insert(i);
      } else if (r.code != net::WireError::kTransport) {
        // Overloaded after the client's own RetryAfter budget: back off and
        // try again next round.
        std::this_thread::sleep_for(10ms);
      } else {
        break;  // connection is gone; reconnect
      }
    }
    while (!submitted.empty()) {
      net::ClientResult r;
      const auto rep = client.next_report(30'000ms, &r);
      if (!rep.has_value()) break;  // casualty — resubmit survivors
      if (!ledger.record(*rep)) return;  // inconsistent duplicate: fail
      const std::string prefix = tenant + "/";
      if (rep->idem_key.rfind(prefix, 0) == 0) {
        const unsigned i = static_cast<unsigned>(
            std::strtoul(rep->idem_key.c_str() + prefix.size(), nullptr, 10));
        submitted.erase(i);
        pending.erase(i);
      }
    }
  }
  ok = pending.empty();
}

TEST(GovernSoak, CombinedChaosKeepsEveryPromise) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());

  net::NetServerConfig config;
  config.jobs.threads = 4;
  config.jobs.queue_capacity = 32;
  config.jobs.journal_dir = dir.path;
  config.jobs.journal_segment_bytes = 32 * 1024;  // force rotation under load
  config.jobs.checkpoint_every_default = 50;
  config.jobs.stall_timeout = 100ms;
  config.jobs.max_preemptions = 2;
  config.jobs.supervise_tick = 10ms;
  config.jobs.tenant_max_queued = 16;
  config.jobs.tenant_max_inflight = 3;
  config.jobs.tenant_weights = {{"heavy", 3}, {"light", 1}};
  config.jobs.brownout_queue_delay = 200ms;
  config.retry_after_ms = 5;

  std::uint64_t expected_completed_min = 0;
  {
    net::NetServer server(config);
    ASSERT_TRUE(server.ok()) << server.error();

    // ---- Phase A1: governed tenant traffic through delay chaos. ----
    net::ChaosConfig pc;
    pc.upstream_port = server.port();
    pc.p_delay = 0.3;
    pc.delay_ms = 2;
    net::ChaosProxy delay_proxy(pc);
    ASSERT_TRUE(delay_proxy.ok());

    constexpr unsigned kHeavy = 24, kLight = 8;
    Ledger ledger;
    bool heavy_ok = false, light_ok = false;
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::thread heavy([&] {
        drive_tenant(delay_proxy.port(), "heavy", kHeavy, true, ledger,
                     heavy_ok);
      });
      std::thread light([&] {
        drive_tenant(delay_proxy.port(), "light", kLight, true, ledger,
                     light_ok);
      });
      heavy.join();
      light.join();
    }
    const auto a1_elapsed = std::chrono::steady_clock::now() - t0;
    ASSERT_TRUE(heavy_ok && light_ok)
        << "a tenant never collected all its reports (or saw an"
           " inconsistent duplicate)";
    // Supervision bound: 6 injected stalls sleep 120 s each — a wedged
    // worker pool could not finish in any reasonable time.
    EXPECT_LT(a1_elapsed, 90s) << "a worker sat through an injected stall";

    unsigned stall_jobs = 0;
    for (const auto& [key, rep] : ledger.first) {
      EXPECT_EQ(rep.outcome, JobOutcome::kCompleted) << rep.to_string();
      EXPECT_FALSE(rep.idem_key.empty());
      if (key == "heavy/5" || key == "heavy/11" || key == "heavy/17" ||
          key == "heavy/23" || key == "light/5") {
        ++stall_jobs;
        EXPECT_GE(rep.preemptions, 1u)
            << key << " completed without a supervisor preemption";
      }
    }
    EXPECT_EQ(stall_jobs, 5u);
    EXPECT_EQ(ledger.first.size(), kHeavy + kLight);
    {
      const ServerStats s = server.jobs().stats();
      EXPECT_GE(s.stalls_detected, 5u);
      EXPECT_GE(s.preemptions, 5u);
      EXPECT_EQ(s.stall_quarantines, 0u);
    }
    // Weighted-fair bound: at the i-th light completion, at most
    // weight-ratio * i heavy completions may have landed, plus slack for
    // the 4-way worker pool, requeues, and arrival-order jitter.
    {
      std::lock_guard lk(ledger.mu);
      unsigned heavy_seen = 0, light_seen = 0;
      for (const auto& t : ledger.arrival_tenants) {
        if (t == "heavy") ++heavy_seen;
        if (t != "light") continue;
        ++light_seen;
        EXPECT_LE(heavy_seen, 3 * light_seen + 12)
            << "light tenant starved: " << heavy_seen << " heavy reports"
            << " before light completion #" << light_seen;
      }
      EXPECT_EQ(light_seen, kLight);
    }
    // The proxy actually interfered.
    EXPECT_GT(delay_proxy.stats().delays, 0u);

    // ---- Phase A2: hostile transport (drops / truncation / bitflips). --
    net::ChaosConfig hc;
    hc.upstream_port = server.port();
    hc.seed = 0xbadcafeULL;
    hc.p_drop = 0.01;
    hc.p_truncate = 0.01;
    hc.p_bitflip = 0.01;
    hc.p_delay = 0.2;
    hc.delay_ms = 2;
    net::ChaosProxy hostile_proxy(hc);
    ASSERT_TRUE(hostile_proxy.ok());
    constexpr unsigned kChaos = 12;
    Ledger chaos_ledger;
    bool chaos_ok = false;
    drive_tenant(hostile_proxy.port(), "chaos", kChaos, false, chaos_ledger,
                 chaos_ok);
    ASSERT_TRUE(chaos_ok) << "a chaos-tenant key never reached a terminal"
                             " report (or reports disagreed)";
    EXPECT_EQ(chaos_ledger.first.size(), kChaos);
    unsigned chaos_completed = 0;
    for (const auto& [key, rep] : chaos_ledger.first) {
      // A connection the proxy killed post-admission legitimately cancels
      // its jobs; anything else must be a clean, validated completion.
      EXPECT_TRUE(rep.outcome == JobOutcome::kCompleted ||
                  rep.outcome == JobOutcome::kCancelled)
          << rep.to_string();
      chaos_completed += rep.outcome == JobOutcome::kCompleted;
    }
    const auto hs = hostile_proxy.stats();
    EXPECT_GT(hs.drops + hs.truncates + hs.bitflips, 0u)
        << "hostile proxy injected nothing — weak soak";
    hostile_proxy.stop();
    delay_proxy.stop();

    // ---- Phase B: wedges quarantine; a flood is shed, others admitted. --
    std::vector<JobServer::JobId> wedges;
    for (int i = 0; i < 3; ++i) {
      net::SubmitRequest req = soak_request("wedge", 100 + i, false);
      req.idempotency_key = "wedge/" + std::to_string(i);
      req.fault_spec.clear();
      req.ecc = pbp::EccMode::kOff;
      req.stall_spec = "at=25,ms=120000,times=100";  // stalls every attempt
      const auto id = server.jobs().submit_spec(req);
      ASSERT_TRUE(id.has_value());
      wedges.push_back(*id);
    }
    for (const auto id : wedges) {
      const JobReport r = server.jobs().wait(id);
      EXPECT_EQ(r.outcome, JobOutcome::kQuarantined) << r.to_string();
      EXPECT_NE(r.error.find("stalled"), std::string::npos) << r.error;
      EXPECT_EQ(r.preemptions, config.jobs.max_preemptions) << r.to_string();
    }
    EXPECT_EQ(server.jobs().stats().stall_quarantines, 3u);

    // Pin the flood tenant at its in-flight cap with spinners so its
    // subsequent submissions must queue (not drain), making the queue
    // quota deterministic to hit.
    std::vector<JobServer::JobId> plugs;
    for (int i = 0; i < 3; ++i) {
      net::SubmitRequest req;
      req.name = "plug";
      req.source = "loop: br loop\n";
      req.max_instructions = 2'000'000'000ULL;
      req.tenant = "flood";
      req.idempotency_key = "plug/" + std::to_string(i);
      const auto id = server.jobs().submit_spec(req);
      ASSERT_TRUE(id.has_value());
      plugs.push_back(*id);
    }
    ASSERT_TRUE(eventually([&] {
      unsigned running = 0;
      for (const auto id : plugs) {
        const auto p = server.jobs().progress(id);
        running += p.has_value() && p->phase == JobPhase::kRunning;
      }
      return running == plugs.size();
    }));

    bool flood_shed = false;
    std::vector<JobServer::JobId> flood;
    for (int i = 0; i < 200 && !flood_shed; ++i) {
      net::SubmitRequest req = soak_request("flood", 300 + i, false);
      req.idempotency_key = "flood/" + std::to_string(i);
      req.stall_spec.clear();
      req.fault_spec.clear();
      req.ecc = pbp::EccMode::kOff;
      std::string reason;
      const auto id = server.jobs().try_submit_spec(req, &reason);
      if (id.has_value()) {
        flood.push_back(*id);
      } else {
        EXPECT_EQ(reason, "tenant-over-quota");
        flood_shed = true;
      }
    }
    EXPECT_TRUE(flood_shed) << "200 rapid submissions never hit the quota";
    EXPECT_GE(server.jobs().stats().tenant_sheds, 1u);
    for (const auto id : plugs) server.jobs().cancel(id);
    for (const auto id : plugs) {
      EXPECT_EQ(server.jobs().wait(id).outcome, JobOutcome::kCancelled);
    }
    for (const auto id : flood) {
      EXPECT_EQ(server.jobs().wait(id).outcome, JobOutcome::kCompleted);
    }

    // ---- Phase C (last: journal unhealthiness is sticky): durability
    // failpoint → shed admissions, degraded health, 16x hints. ----
    ASSERT_NE(server.jobs().journal(), nullptr);
    server.jobs().journal()->set_failpoint([](const char* op) {
      return std::strcmp(op, "append") == 0 ? ENOSPC : 0;
    });
    {
      net::SubmitRequest req = soak_request("late", 999, false);
      req.idempotency_key = "late/999";
      std::string reason;
      EXPECT_FALSE(server.jobs().try_submit_spec(req, &reason).has_value());
      EXPECT_EQ(reason, "journal-unavailable");
    }
    ASSERT_TRUE(eventually(
        [&] { return server.jobs().health() == HealthState::kDegraded; }));
    {
      std::string err;
      net::Socket sock =
          net::connect_tcp("127.0.0.1", server.port(), 2000ms, &err);
      ASSERT_TRUE(sock.valid()) << err;
      const auto bytes = net::encode_message(net::MsgType::kSubmit,
                                             soak_request("late", 998, false));
      ASSERT_EQ(net::write_all(sock.fd(), bytes.data(), bytes.size(),
                               net::Clock::now() + 2s),
                net::IoStatus::kOk);
      net::Frame reply;
      ASSERT_EQ(net::recv_frame(sock.fd(),
                                {net::kDefaultMaxFrameBytes, 2000ms, 2000ms},
                                &reply),
                net::RecvStatus::kOk);
      ASSERT_EQ(reply.type, net::MsgType::kRetryAfter);
      pbp::ByteReader r(reply.payload);
      const net::RetryAfter shed = net::RetryAfter::decode(r);
      EXPECT_EQ(shed.reason, net::RetryAfter::Reason::kDurability);
      EXPECT_EQ(shed.delay_ms, 16 * config.retry_after_ms)
          << "degraded health must scale the hint 16x";
    }
    server.jobs().journal()->set_failpoint(nullptr);

    // ---- Global accounting: nothing leaked, nothing double-counted. ----
    const ServerStats s = server.jobs().stats();
    EXPECT_EQ(s.submitted, s.completed + s.quarantined + s.cancelled +
                               s.deadline_expired + s.rejected_memory +
                               s.errors)
        << "leaked jobs";
    EXPECT_EQ(s.errors, 0u);
    EXPECT_EQ(s.rejected_memory, 0u);
    EXPECT_EQ(s.deadline_expired, 0u);
    EXPECT_EQ(s.active_jobs, 0u);
    EXPECT_EQ(s.queue_depth, 0u);
    EXPECT_GE(s.completed,
              kHeavy + kLight + chaos_completed + flood.size());
    expected_completed_min = kHeavy + kLight;

    server.begin_drain();
    server.wait_drained();
  }

  // ---- Restart: exactly-once survived the whole soak.  Every admitted
  // job already has a durable terminal record (nothing to recover), and a
  // resubmitted key is answered from the log without running. ----
  JobServerConfig jc;
  jc.threads = 2;
  jc.journal_dir = dir.path;
  JobServer revived(jc);
  EXPECT_EQ(revived.stats().jobs_recovered, 0u)
      << "an admitted job was left without a durable terminal record";
  EXPECT_GT(revived.stats().journal_replays, 0u);
  JobSpec again;
  again.name = "replayed";
  again.source = figure10_source();
  again.max_instructions = 20'000;
  again.expect = {{0, 5}, {1, 3}};
  again.idempotency_key = "heavy/0";
  const auto id = revived.submit_spec(again);
  ASSERT_TRUE(id.has_value());
  const JobReport r = revived.wait(*id);
  EXPECT_TRUE(r.deduped) << "a soak-era key re-ran after restart";
  EXPECT_EQ(r.outcome, JobOutcome::kCompleted) << r.to_string();
  (void)expected_completed_min;
}

}  // namespace
}  // namespace tangled::serve
