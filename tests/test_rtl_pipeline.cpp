// Tests for the latch-level RTL pipeline simulator, including differential
// verification against both the functional model (architectural state) and
// the accounting pipeline model (cycle counts).
#include "arch/rtl_pipeline.hpp"

#include <gtest/gtest.h>

#include <random>

#include "asm/programs.hpp"

namespace tangled {
namespace {

RtlPipelineSim run_rtl(const std::string& src, unsigned ways = 8) {
  RtlPipelineSim sim(ways);
  sim.load(assemble(src));
  EXPECT_TRUE(sim.run().halted);
  return sim;
}

TEST(RtlPipeline, BasicProgram) {
  auto sim = run_rtl(
      "lex $1,5\n"
      "lex $2,7\n"
      "add $1,$2\n"
      "sys\n");
  EXPECT_EQ(sim.cpu().reg(1), 12u);
}

TEST(RtlPipeline, ForwardingFromExMem) {
  // Back-to-back dependency: only correct if the EX/MEM forward works.
  auto sim = run_rtl(
      "lex $1,3\n"
      "add $1,$1\n"
      "add $1,$1\n"
      "add $1,$1\n"
      "sys\n");
  EXPECT_EQ(sim.cpu().reg(1), 24u);
}

TEST(RtlPipeline, ForwardingFromMemWb) {
  // Producer two ahead: exercises the MEM/WB forwarding path alone.
  auto sim = run_rtl(
      "lex $1,3\n"
      "lex $2,0\n"
      "add $1,$1\n"
      "sys\n");
  EXPECT_EQ(sim.cpu().reg(1), 6u);
}

TEST(RtlPipeline, LoadUseStallsAndForwards) {
  auto sim = run_rtl(
      "li $2,0x8000\n"
      "li $1,1234\n"
      "store $1,$2\n"
      "load $3,$2\n"
      "add $3,$3\n"  // immediate use: needs the stall + MEM/WB forward
      "sys\n");
  EXPECT_EQ(sim.cpu().reg(3), 2468u);
  EXPECT_EQ(sim.stats().data_stall_cycles, 1u);
}

TEST(RtlPipeline, BranchSquashesWrongPath) {
  auto sim = run_rtl(
      "      lex $1,1\n"
      "      brt $1,skip\n"
      "      lex $2,99\n"   // wrong path: must be squashed
      "      lex $3,99\n"
      "skip: lex $4,4\n"
      "      sys\n");
  EXPECT_EQ(sim.cpu().reg(2), 0u);
  EXPECT_EQ(sim.cpu().reg(3), 0u);
  EXPECT_EQ(sim.cpu().reg(4), 4u);
}

TEST(RtlPipeline, WrongPathQatOpsHaveNoEffect) {
  // A squashed Qat instruction must not touch the coprocessor register
  // file (side effects happen in EX, which wrong-path ops never reach).
  auto sim = run_rtl(
      "      lex $1,1\n"
      "      brt $1,skip\n"
      "      one @5\n"      // wrong path
      "skip: sys\n");
  EXPECT_FALSE(sim.qat().reg(5).any());
}

TEST(RtlPipeline, BranchConditionForwarded) {
  // The branch condition is produced by the immediately preceding add: the
  // EX forward must feed the branch, or it would test a stale zero (and
  // fall through).
  auto sim = run_rtl(
      "      lex $1,0\n"
      "      lex $2,1\n"
      "      add $1,$2\n"
      "      brt $1,skip\n"
      "      lex $3,99\n"
      "skip: sys\n");
  EXPECT_EQ(sim.cpu().reg(3), 0u);
}

TEST(RtlPipeline, TwoWordQatFetch) {
  auto sim = run_rtl(
      "had @0,4\n"
      "lex $1,42\n"
      "next $1,@0\n"
      "sys\n");
  EXPECT_EQ(sim.cpu().reg(1), 48u);
  EXPECT_EQ(sim.stats().fetch_extra_cycles, 2u);  // had + next second words
}

TEST(RtlPipeline, Figure10EndToEnd) {
  RtlPipelineSim sim(8);
  sim.load(assemble(figure10_source()));
  const SimStats st = sim.run();
  ASSERT_TRUE(st.halted);
  EXPECT_EQ(sim.cpu().reg(0), 5u);
  EXPECT_EQ(sim.cpu().reg(1), 3u);
}

TEST(RtlPipeline, DiagramShowsClassicShape) {
  RtlPipelineSim sim(8);
  sim.enable_trace();
  sim.load(assemble("lex $1,1\nadd $1,$1\nsys\n"));
  sim.run();
  const std::string d = sim.diagram();
  // First instruction occupies F at cycle 0 and retires in W at cycle 4.
  EXPECT_NE(d.find("FDXMW"), std::string::npos);
  EXPECT_NE(d.find("lex $1,1"), std::string::npos);
  EXPECT_NE(d.find("add $1,$1"), std::string::npos);
}

TEST(RtlPipeline, DiagramShowsLoadUseStall) {
  RtlPipelineSim sim(8);
  sim.enable_trace();
  sim.load(assemble("lex $2,100\nload $1,$2\nadd $1,$1\nsys\n"));
  sim.run();
  // The dependent add shows a '-' stall bubble between D and X.
  EXPECT_NE(sim.diagram().find('-'), std::string::npos);
}

// --- Flush accounting (rtl_pipeline.cpp IF-stage squash) ---
//
// A taken branch resolving in EX always loses exactly two fetch slots: the
// wrong-path instruction behind it (in IF/ID or mid two-word fetch) plus the
// suppressed same-cycle fetch.  These tests pin the cycle-exact behaviour in
// all the structurally distinct squash situations, against hand-computed
// values that also match PipelineSim's accounting (redirect - next_fetch is
// provably always 2 for a one-word branch).

struct FlushCase {
  SimStats acc;
  SimStats rtl;
};

FlushCase run_both(const std::string& src) {
  const Program p = assemble(src);
  PipelineSim acc(8, {.stages = 5, .forwarding = true});
  RtlPipelineSim rtl(8);
  acc.load(p);
  rtl.load(p);
  FlushCase c{acc.run(100000), rtl.run(100000)};
  EXPECT_TRUE(c.acc.halted && c.rtl.halted);
  return c;
}

TEST(RtlPipelineFlushAccounting, PlainTakenBranch) {
  // The squashed slot is a plain one-word instruction sitting in IF/ID.
  const auto c = run_both(
      "      lex $1,1\n"
      "      brt $1,skip\n"
      "      lex $2,99\n"
      "      lex $3,99\n"
      "skip: lex $4,4\n"
      "      sys\n");
  EXPECT_EQ(c.rtl.cycles, 10u);
  EXPECT_EQ(c.rtl.flush_cycles, 2u);
  EXPECT_EQ(c.rtl.taken_branches, 1u);
  EXPECT_EQ(c.acc.cycles, c.rtl.cycles);
  EXPECT_EQ(c.acc.flush_cycles, c.rtl.flush_cycles);
}

TEST(RtlPipelineFlushAccounting, ForwardedCondition) {
  // The branch condition is produced by the immediately preceding add and
  // must be forwarded into EX; the flush cost is unchanged.
  const auto c = run_both(
      "      lex $1,0\n"
      "      lex $2,1\n"
      "      add $1,$2\n"
      "      brt $1,skip\n"
      "      lex $3,99\n"
      "skip: sys\n");
  EXPECT_EQ(c.rtl.cycles, 11u);
  EXPECT_EQ(c.rtl.flush_cycles, 2u);
  EXPECT_EQ(c.acc.cycles, c.rtl.cycles);
  EXPECT_EQ(c.acc.flush_cycles, c.rtl.flush_cycles);
}

TEST(RtlPipelineFlushAccounting, SquashesPendingTwoWordFetch) {
  // The wrong-path instruction is a two-word `had` caught mid-fetch:
  // `pending_valid` (not `ifid.valid`) accounts the first lost slot.
  const auto c = run_both(
      "      lex $1,1\n"
      "      brt $1,skip\n"
      "      had @0,4\n"
      "      lex $3,99\n"
      "skip: sys\n");
  EXPECT_EQ(c.rtl.cycles, 9u);
  EXPECT_EQ(c.rtl.flush_cycles, 2u);
  EXPECT_EQ(c.acc.cycles, c.rtl.cycles);
  EXPECT_EQ(c.acc.flush_cycles, c.rtl.flush_cycles);
}

TEST(RtlPipelineFlushAccounting, LoadUseStalledBranch) {
  // The branch stalls on a load-use interlock before resolving; the stall
  // is counted as data_stall_cycles, the squash still as exactly 2.
  const auto c = run_both(
      "      li $2,0x8000\n"
      "      li $1,1\n"
      "      store $1,$2\n"
      "      load $4,$2\n"
      "      brt $4,skip\n"
      "      lex $3,99\n"
      "skip: sys\n");
  EXPECT_EQ(c.rtl.cycles, 15u);
  EXPECT_EQ(c.rtl.flush_cycles, 2u);
  EXPECT_GE(c.rtl.data_stall_cycles, 1u);
  EXPECT_EQ(c.acc.cycles, c.rtl.cycles);
  EXPECT_EQ(c.acc.flush_cycles, c.rtl.flush_cycles);
}

TEST(RtlPipelineFlushAccounting, BackToBackTakenBranches) {
  // Two taken branches in a row: each costs its own two slots, no overlap.
  const auto c = run_both(
      "      lex $1,1\n"
      "      brt $1,a\n"
      "      lex $2,99\n"
      "a:    brt $1,b\n"
      "      lex $3,99\n"
      "b:    sys\n");
  EXPECT_EQ(c.rtl.cycles, 12u);
  EXPECT_EQ(c.rtl.flush_cycles, 4u);
  EXPECT_EQ(c.rtl.taken_branches, 2u);
  EXPECT_EQ(c.acc.cycles, c.rtl.cycles);
  EXPECT_EQ(c.acc.flush_cycles, c.rtl.flush_cycles);
}

TEST(RtlPipelineFlushAccounting, TightLoopAlwaysTwoPerTaken) {
  // A counted loop: flush_cycles is exactly 2 * taken_branches, in both
  // the latch-level machine and the accounting model.
  const auto c = run_both(
      "      lex $1,20\n"
      "      lex $2,-1\n"
      "loop: add $1,$2\n"
      "      brt $1,loop\n"
      "      sys\n");
  EXPECT_EQ(c.rtl.taken_branches, c.acc.taken_branches);
  EXPECT_GT(c.rtl.taken_branches, 10u);
  EXPECT_EQ(c.rtl.flush_cycles, 2 * c.rtl.taken_branches);
  EXPECT_EQ(c.acc.flush_cycles, 2 * c.acc.taken_branches);
  EXPECT_EQ(c.acc.cycles, c.rtl.cycles);
}

// --- Differential: RTL vs functional (state) and accounting (cycles) ---

/// Same generator as test_property.cpp, kept local for independence.
class RandomProgram {
 public:
  explicit RandomProgram(std::uint64_t seed) : rng_(seed) {}

  Program generate() {
    std::string src;
    for (unsigned r = 0; r < 8; ++r) {
      src += "li $" + std::to_string(r) + "," +
             std::to_string(rng_() % 65536) + "\n";
    }
    src += "had @1,1\nhad @2,3\nhad @3,5\n";
    for (int i = 0; i < 100; ++i) src += random_instr();
    src += "sys\n";
    return assemble(src);
  }

 private:
  std::string r() { return "$" + std::to_string(rng_() % 11); }
  std::string q() { return "@" + std::to_string(rng_() % 16); }

  std::string random_instr() {
    switch (rng_() % 18) {
      case 0:
        return "add " + r() + "," + r() + "\n";
      case 1:
        return "and " + r() + "," + r() + "\n";
      case 2:
        return "xor " + r() + "," + r() + "\n";
      case 3:
        return "mul " + r() + "," + r() + "\n";
      case 4:
        return "copy " + r() + "," + r() + "\n";
      case 5:
        return "not " + r() + "\n";
      case 6:
        return "neg " + r() + "\n";
      case 7:
        return "slt " + r() + "," + r() + "\n";
      case 8:
        return "lex " + r() + "," + std::to_string(static_cast<int>(rng_() % 256) - 128) +
               "\n";
      case 9: {
        const std::string addr = r();
        return "li $at,0x7fff\nand " + addr + ",$at\nlhi " + addr +
               ",0x80\nstore " + r() + "," + addr + "\n";
      }
      case 10: {
        const std::string addr = r();
        return "li $at,0x7fff\nand " + addr + ",$at\nlhi " + addr +
               ",0x80\nload " + r() + "," + addr + "\n";
      }
      case 11: {
        const std::string lab = "L" + std::to_string(label_++);
        return "brt " + r() + "," + lab + "\nadd " + r() + "," + r() + "\n" +
               lab + ":\n";
      }
      case 12:
        return "shift " + r() + "," + r() + "\n";
      case 13:
        return "had " + q() + "," + std::to_string(rng_() % 8) + "\n";
      case 14:
        return "and " + q() + "," + q() + "," + q() + "\n";
      case 15:
        return "xor " + q() + "," + q() + "," + q() + "\n";
      case 16:
        return "meas " + r() + "," + q() + "\n";
      default:
        return "next " + r() + "," + q() + "\n";
    }
  }

  std::mt19937_64 rng_;
  int label_ = 0;
};

class RtlDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtlDifferential, MatchesFunctionalStateAndAccountingCycles) {
  const Program p = RandomProgram(GetParam()).generate();
  FunctionalSim f(8);
  PipelineSim acc(8, {.stages = 5, .forwarding = true});
  RtlPipelineSim rtl(8);
  f.load(p);
  acc.load(p);
  rtl.load(p);
  const SimStats sf = f.run(100000);
  const SimStats sa = acc.run(100000);
  const SimStats sr = rtl.run(100000);
  ASSERT_TRUE(sf.halted && sa.halted && sr.halted);
  // Architectural state: the forwarding network really works.
  for (unsigned r = 0; r < kNumRegs; ++r) {
    ASSERT_EQ(sr.instructions, sf.instructions);
    ASSERT_EQ(rtl.cpu().reg(r), f.cpu().reg(r))
        << "seed " << GetParam() << " reg $" << r;
  }
  for (unsigned qr = 0; qr < 16; ++qr) {
    ASSERT_EQ(rtl.qat().reg(qr), f.qat().reg(qr))
        << "seed " << GetParam() << " @" << qr;
  }
  // Timing: the latch-level machine and the accounting model agree exactly.
  EXPECT_EQ(sr.cycles, sa.cycles) << "seed " << GetParam();
  EXPECT_EQ(sr.data_stall_cycles, sa.data_stall_cycles)
      << "seed " << GetParam();
  EXPECT_EQ(sr.taken_branches, sa.taken_branches) << "seed " << GetParam();
  EXPECT_EQ(sr.flush_cycles, sa.flush_cycles) << "seed " << GetParam();
  EXPECT_EQ(sr.flush_cycles, 2 * sr.taken_branches) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlDifferential,
                         ::testing::Range<std::uint64_t>(100, 116));

}  // namespace
}  // namespace tangled
