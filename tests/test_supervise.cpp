// test_supervise.cpp — overload governance and self-healing supervision
// (labels `govern;serve`): the stall watchdog (detect → preempt → requeue
// from checkpoint → quarantine after N), weighted-fair tenant dequeue with
// per-tenant queue/in-flight/memory quotas, the health state machine
// (healthy → browning-out → degraded), brownout-scaled RETRY_AFTER hints on
// the wire, the v3 codec tails, and the stall-spec parser.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/simulators.hpp"
#include "asm/assembler.hpp"
#include "asm/programs.hpp"
#include "serve/job_server.hpp"
#include "serve/journal.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/net/socket.hpp"

namespace tangled::serve {
namespace {

using namespace std::chrono_literals;

bool factors_ok(const CpuState& cpu) {
  return cpu.regs[0] == 5 && cpu.regs[1] == 3;
}

Job fig10_job(const std::string& tenant = "") {
  Job j;
  j.name = "fig10";
  j.program = assemble(figure10_source());
  j.sim = SimKind::kFunc;
  j.max_instructions = 20'000;
  j.checkpoint_every = 25;
  j.validate = factors_ok;
  j.tenant = tenant;
  return j;
}

Job spin_job(const std::string& tenant = "") {
  Job j;
  j.name = "spin";
  j.program = assemble("loop: br loop\n");
  j.max_instructions = 2'000'000'000ULL;
  j.tenant = tenant;
  return j;
}

/// Block until `pred` holds or `budget` elapses; true if it held.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 5'000ms) {
  const auto until = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Stall-spec parsing.

TEST(StallSpec, ParsesFullAndDefaultedSpecs) {
  const StallSpec s = parse_stall_spec("at=500,ms=2000,times=3");
  EXPECT_EQ(s.at, 500u);
  EXPECT_EQ(s.ms, 2000u);
  EXPECT_EQ(s.times, 3u);
  const StallSpec once = parse_stall_spec("at=1,ms=10");
  EXPECT_EQ(once.times, 1u) << "times must default to one";
}

TEST(StallSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_stall_spec("at=500"), std::invalid_argument);  // no ms
  EXPECT_THROW(parse_stall_spec("ms=10"), std::invalid_argument);   // no at
  EXPECT_THROW(parse_stall_spec("at=x,ms=10"), std::invalid_argument);
  EXPECT_THROW(parse_stall_spec("at=1,ms=10,bogus=2"), std::invalid_argument);
  EXPECT_THROW(parse_stall_spec("at=1;ms=10"), std::invalid_argument);
}

TEST(StallSpec, BadSpecOnAJobReportsErrorNotHang) {
  JobServer server({.threads = 1});
  Job j = fig10_job();
  j.stall_spec = "at=potato";
  const auto id = *server.submit(std::move(j));
  const JobReport r = server.wait(id);
  EXPECT_EQ(r.outcome, JobOutcome::kError) << r.to_string();
}

// ---------------------------------------------------------------------------
// Stall watchdog: detect, preempt, resume, quarantine.

TEST(Supervise, StalledJobIsPreemptedResumedAndCompletes) {
  JobServerConfig c;
  c.threads = 1;
  c.stall_timeout = 40ms;
  c.supervise_tick = 10ms;
  c.max_preemptions = 3;
  JobServer server(c);

  // The injected stall sleeps far longer than the whole test budget: only a
  // supervisor preemption can finish this job in bounded time.
  Job j = fig10_job();
  j.stall_spec = "at=50,ms=120000";
  const auto t0 = std::chrono::steady_clock::now();
  const auto id = *server.submit(std::move(j));
  const JobReport r = server.wait(id);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_EQ(r.outcome, JobOutcome::kCompleted) << r.to_string();
  EXPECT_GE(r.preemptions, 1u) << r.to_string();
  EXPECT_LT(elapsed, 30s) << "the worker sat through the injected stall";
  const ServerStats s = server.stats();
  EXPECT_GE(s.stalls_detected, 1u);
  EXPECT_GE(s.preemptions, 1u);
  EXPECT_EQ(s.stall_quarantines, 0u);
}

TEST(Supervise, PreemptedJobResumesInsteadOfRestarting) {
  // A long program stalled mid-run: the preempt snapshot must carry the
  // first segment's progress, so total retired instructions stay close to
  // one clean run (a restart would re-retire the prefix).
  static constexpr char kLongLoop[] = R"(
        li  $1,250
        lex $4,-1
 outer: li  $2,200
 inner: add $2,$4
        jumpt $2,inner
        add $1,$4
        jumpt $1,outer
        lex $1,5
        lex $2,3
        sys
)";
  const Program p = assemble(kLongLoop);
  FunctionalSim ref(8, pbp::Backend::kDense);
  ref.load(p);
  const std::uint64_t clean_run = ref.run().instructions;
  ASSERT_TRUE(ref.cpu().halted);

  JobServerConfig c;
  c.threads = 1;
  c.stall_timeout = 40ms;
  c.supervise_tick = 10ms;
  JobServer server(c);
  Job j;
  j.name = "long-loop";
  j.program = p;
  j.sim = SimKind::kFunc;
  j.max_instructions = 2'000'000;
  j.checkpoint_every = 1'000;
  // Stall halfway through so a from-scratch restart would be visible in the
  // instruction count.
  j.stall_spec = "at=" + std::to_string(clean_run / 2) + ",ms=120000";
  const auto id = *server.submit(std::move(j));
  const JobReport r = server.wait(id);
  EXPECT_EQ(r.outcome, JobOutcome::kCompleted) << r.to_string();
  EXPECT_GE(r.preemptions, 1u) << r.to_string();
  // Sliced execution overshoots a little per segment, never by half a run.
  EXPECT_LT(r.instructions, clean_run + clean_run / 4)
      << "preemption restarted the job instead of resuming it";
}

TEST(Supervise, WedgedJobQuarantinesAfterMaxPreemptions) {
  JobServerConfig c;
  c.threads = 1;
  c.stall_timeout = 30ms;
  c.supervise_tick = 10ms;
  c.max_preemptions = 2;
  JobServer server(c);

  Job j = fig10_job();
  j.stall_spec = "at=25,ms=120000,times=100";  // stalls again every segment
  const auto t0 = std::chrono::steady_clock::now();
  const auto id = *server.submit(std::move(j));
  const JobReport r = server.wait(id);
  EXPECT_EQ(r.outcome, JobOutcome::kQuarantined) << r.to_string();
  EXPECT_NE(r.error.find("stalled"), std::string::npos) << r.error;
  EXPECT_EQ(r.preemptions, 2u) << r.to_string();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 30s);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.stall_quarantines, 1u);
  EXPECT_GE(s.stalls_detected, 3u);  // 2 preemptions + the final detection
  EXPECT_EQ(s.preemptions, 2u);
}

TEST(Supervise, HealthyJobsAreNeverPreempted) {
  // Supervision on, nothing stalls: zero preemptions, everything completes.
  JobServerConfig c;
  c.threads = 2;
  c.stall_timeout = 250ms;
  c.supervise_tick = 10ms;
  JobServer server(c);
  std::vector<JobServer::JobId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(*server.submit(fig10_job()));
  for (const auto id : ids) {
    EXPECT_EQ(server.wait(id).outcome, JobOutcome::kCompleted);
  }
  EXPECT_EQ(server.stats().stalls_detected, 0u);
  EXPECT_EQ(server.stats().preemptions, 0u);
}

// ---------------------------------------------------------------------------
// Per-tenant governance.

TEST(Govern, WeightedFairDequeueInterleavesByWeight) {
  JobServerConfig c;
  c.threads = 1;
  c.tenant_weights = {{"heavy", 3}, {"light", 1}};
  JobServer server(c);

  // Hold the single worker while both tenants build a backlog.
  const auto blocker = *server.submit(spin_job());
  ASSERT_TRUE(eventually(
      [&] { return server.progress(blocker)->phase == JobPhase::kRunning; }));

  std::mutex order_mu;
  std::vector<std::string> order;
  const auto tagged = [&](const std::string& tenant) {
    Job j = fig10_job(tenant);
    j.validate = [&order_mu, &order, tenant](const CpuState& cpu) {
      {
        std::lock_guard lk(order_mu);
        order.push_back(tenant);
      }
      return factors_ok(cpu);
    };
    return j;
  };
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(server.submit(tagged("heavy")));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(server.submit(tagged("light")));

  server.cancel(blocker);
  server.wait_all();
  std::lock_guard lk(order_mu);
  ASSERT_EQ(order.size(), 12u);
  // Weight 3 vs 1: the stride scheduler interleaves ~3 heavy per light.
  unsigned heavy_in_first_8 = 0;
  for (std::size_t i = 0; i < 8; ++i) heavy_in_first_8 += order[i] == "heavy";
  EXPECT_GE(heavy_in_first_8, 5u) << "weight-3 tenant not favoured";
  // ...and the weight-1 tenant is never starved: it lands in every window
  // of five consecutive dequeues until its backlog drains.
  int last_light = -1;
  for (int i = 0; i < 12; ++i) {
    if (order[static_cast<std::size_t>(i)] == "light") {
      EXPECT_LE(i - last_light, 5) << "light tenant starved";
      last_light = i;
    }
  }
  EXPECT_GE(last_light, 0) << "light tenant never ran";
}

TEST(Govern, TenantQueueQuotaShedsOnlyTheFlooder) {
  JobServerConfig c;
  c.threads = 1;
  c.tenant_max_queued = 2;
  JobServer server(c);
  const auto blocker = *server.submit(spin_job());
  ASSERT_TRUE(eventually(
      [&] { return server.progress(blocker)->phase == JobPhase::kRunning; }));

  ASSERT_TRUE(server.try_submit(spin_job("noisy")).has_value());
  ASSERT_TRUE(server.try_submit(spin_job("noisy")).has_value());
  std::string reason;
  EXPECT_FALSE(server.try_submit(spin_job("noisy"), &reason).has_value());
  EXPECT_EQ(reason, "tenant-over-quota");
  EXPECT_EQ(server.stats().tenant_sheds, 1u);
  // The blocking submit path sheds a flooding tenant immediately too —
  // queue backpressure is for the well-behaved.
  EXPECT_FALSE(server.submit_for(spin_job("noisy"), 50ms, &reason));
  EXPECT_EQ(reason, "tenant-over-quota");
  // A different tenant is unaffected.
  EXPECT_TRUE(server.try_submit(fig10_job("quiet"), &reason).has_value())
      << reason;
  server.shutdown(/*drain=*/false);
}

TEST(Govern, TenantInflightCapLeavesWorkersForOthers) {
  JobServerConfig c;
  c.threads = 2;
  c.tenant_max_inflight = 1;
  JobServer server(c);
  const auto hog1 = *server.submit(spin_job("hog"));
  ASSERT_TRUE(eventually(
      [&] { return server.progress(hog1)->phase == JobPhase::kRunning; }));
  const auto hog2 = *server.submit(spin_job("hog"));

  // The second worker must skip the capped tenant and serve someone else.
  const auto quiet = *server.submit(fig10_job("quiet"));
  EXPECT_EQ(server.wait(quiet).outcome, JobOutcome::kCompleted);
  EXPECT_EQ(server.progress(hog2)->phase, JobPhase::kQueued)
      << "in-flight cap did not hold the second hog job back";
  server.cancel(hog1);
  server.cancel(hog2);
  server.wait_all();
}

TEST(Govern, TenantMemoryBudgetRejectsOversizedJobs) {
  JobServerConfig c;
  c.threads = 1;
  c.tenant_memory_budget_bytes = 16u << 20;  // dense ways=20 needs 32 MiB
  JobServer server(c);
  Job wide = fig10_job("capped");
  wide.ways = 20;
  wide.validate = nullptr;
  const JobReport r = server.wait(*server.submit(std::move(wide)));
  EXPECT_EQ(r.outcome, JobOutcome::kRejectedMemory) << r.to_string();
  EXPECT_NE(r.error.find("tenant budget"), std::string::npos) << r.error;
  // A job inside the slice still runs (2 MiB at ways=16).
  Job fits = fig10_job("capped");
  fits.ways = 16;
  EXPECT_EQ(server.wait(*server.submit(std::move(fits))).outcome,
            JobOutcome::kCompleted);
}

// ---------------------------------------------------------------------------
// Health state machine.

TEST(Health, QueueDelayBrownsOutThenRecovers) {
  JobServerConfig c;
  c.threads = 1;
  c.supervise_tick = 10ms;
  c.brownout_queue_delay = 80ms;
  JobServer server(c);
  EXPECT_EQ(server.health(), HealthState::kHealthy);

  const auto blocker = *server.submit(spin_job());
  const auto waiting = *server.submit(fig10_job());
  // The queued job ages past the threshold: first non-healthy state the
  // supervisor publishes must be browning-out (degraded needs 4x).
  HealthState first = HealthState::kHealthy;
  ASSERT_TRUE(eventually([&] {
    if (first == HealthState::kHealthy) first = server.health();
    return first != HealthState::kHealthy;
  }));
  EXPECT_EQ(first, HealthState::kBrowningOut);
  EXPECT_EQ(server.stats().health,
            static_cast<std::uint8_t>(HealthState::kBrowningOut));

  server.cancel(blocker);
  server.wait(waiting);
  EXPECT_TRUE(eventually([&] {
    return server.health() == HealthState::kHealthy;
  })) << "health must recover once the queue drains";
}

TEST(Health, UnhealthyJournalDegradesTheServer) {
  char tmpl[] = "/tmp/tangled-govern-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr) << std::strerror(errno);
  const std::string dir = tmpl;
  {
    JobServerConfig c;
    c.threads = 1;
    c.supervise_tick = 10ms;
    c.journal_dir = dir;
    JobServer server(c);
    server.journal()->set_failpoint([](const char* op) {
      return std::strcmp(op, "append") == 0 ? ENOSPC : 0;
    });
    JobSpec spec;
    spec.name = "shed-me";
    spec.source = figure10_source();
    spec.max_instructions = 20'000;
    std::string reason;
    EXPECT_FALSE(server.try_submit_spec(spec, &reason).has_value());
    EXPECT_EQ(reason, "journal-unavailable");
    EXPECT_TRUE(eventually([&] {
      return server.health() == HealthState::kDegraded;
    })) << "a sick journal must degrade the health state";
  }
  // Best-effort cleanup of the throwaway journal dir.
  std::system(("rm -rf " + dir).c_str());
}

// ---------------------------------------------------------------------------
// Wire: v3 tails, tenant-quota sheds, brownout-scaled hints.

net::SubmitRequest wire_spin(const std::string& tenant) {
  net::SubmitRequest req;
  req.name = "spin";
  req.source = "loop: br loop\n";
  req.max_instructions = 2'000'000'000ULL;
  req.tenant = tenant;
  return req;
}

/// Minimal raw peer: submit one frame, read one reply (bypasses
/// ServeClient's RetryAfter absorption so the hint itself is observable).
bool raw_exchange(std::uint16_t port, const net::SubmitRequest& req,
                  net::Frame* reply) {
  std::string err;
  net::Socket sock = net::connect_tcp("127.0.0.1", port, 2000ms, &err);
  if (!sock.valid()) return false;
  const auto bytes = net::encode_message(net::MsgType::kSubmit, req);
  if (net::write_all(sock.fd(), bytes.data(), bytes.size(),
                     net::Clock::now() + 2s) != net::IoStatus::kOk) {
    return false;
  }
  return net::recv_frame(sock.fd(),
                         {net::kDefaultMaxFrameBytes, 2000ms, 2000ms},
                         reply) == net::RecvStatus::kOk;
}

TEST(GovernWire, JobSpecAndReportDecodeWithoutTheV3Tail) {
  // v2-era journal records end before the tenant/stall tail; the decoder
  // must accept them with defaulted fields (optional-tail discipline).
  JobSpec spec;
  spec.name = "v2";
  spec.source = "sys\n";
  spec.tenant = "";
  spec.stall_spec = "";
  pbp::ByteWriter w;
  spec.serialize(w);
  std::vector<std::uint8_t> bytes = w.bytes();
  ASSERT_GE(bytes.size(), 8u);
  bytes.resize(bytes.size() - 8);  // strip the two empty tail strings
  pbp::ByteReader r(bytes);
  const JobSpec back = JobSpec::deserialize(r);
  EXPECT_EQ(back.name, "v2");
  EXPECT_TRUE(back.tenant.empty());
  EXPECT_TRUE(back.stall_spec.empty());

  JobReport rep;
  rep.id = 9;
  rep.outcome = JobOutcome::kCompleted;
  pbp::ByteWriter rw;
  rep.serialize(rw);
  std::vector<std::uint8_t> rbytes = rw.bytes();
  ASSERT_GE(rbytes.size(), 8u);
  rbytes.resize(rbytes.size() - 8);  // strip empty tenant + preemptions
  pbp::ByteReader rr(rbytes);
  const JobReport rback = JobReport::deserialize(rr);
  EXPECT_EQ(rback.id, 9u);
  EXPECT_TRUE(rback.tenant.empty());
  EXPECT_EQ(rback.preemptions, 0u);
}

TEST(GovernWire, TenantAndStallRoundTripTheV3Codec) {
  net::SubmitRequest req = wire_spin("acme");
  req.stall_spec = "at=10,ms=20,times=2";
  pbp::ByteWriter w;
  req.encode(w);
  pbp::ByteReader r(w.bytes());
  const net::SubmitRequest back = net::SubmitRequest::decode(r);
  EXPECT_EQ(back.tenant, "acme");
  EXPECT_EQ(back.stall_spec, "at=10,ms=20,times=2");

  JobReport rep;
  rep.tenant = "acme";
  rep.preemptions = 2;
  pbp::ByteWriter rw;
  rep.serialize(rw);
  pbp::ByteReader rr(rw.bytes());
  const JobReport rback = JobReport::deserialize(rr);
  EXPECT_EQ(rback.tenant, "acme");
  EXPECT_EQ(rback.preemptions, 2u);
}

TEST(GovernWire, TenantQuotaShedsWithTheirOwnRetryReason) {
  net::NetServerConfig config;
  config.jobs.threads = 1;
  config.jobs.tenant_max_queued = 1;
  config.jobs.brownout_queue_delay = 0ms;  // keep health out of this test
  config.retry_after_ms = 10;
  net::NetServer server(config);
  ASSERT_TRUE(server.ok()) << server.error();

  net::ServeClientConfig cc;
  cc.port = server.port();
  net::ServeClient client(cc);
  net::ClientResult cr;
  const auto running = client.submit(wire_spin("noisy"), &cr);
  ASSERT_TRUE(running.has_value()) << cr.message;
  ASSERT_TRUE(eventually([&] {
    net::ProgressOk p;
    return client.progress(*running, &p).ok && p.attempts > 0;
  }));
  const auto queued = client.submit(wire_spin("noisy"), &cr);
  ASSERT_TRUE(queued.has_value()) << cr.message;

  net::Frame reply;
  ASSERT_TRUE(raw_exchange(server.port(), wire_spin("noisy"), &reply));
  ASSERT_EQ(reply.type, net::MsgType::kRetryAfter);
  pbp::ByteReader r(reply.payload);
  const net::RetryAfter shed = net::RetryAfter::decode(r);
  EXPECT_EQ(shed.reason, net::RetryAfter::Reason::kTenantQuota);
  EXPECT_EQ(shed.delay_ms, 10u);  // healthy server: unscaled hint
  EXPECT_GE(server.jobs().stats().tenant_sheds, 1u);

  bool cancelled = false;
  client.cancel(*running, &cancelled);
  client.cancel(*queued, &cancelled);
  server.stop();
}

TEST(GovernWire, BrownoutScalesTheRetryAfterHint) {
  net::NetServerConfig config;
  config.jobs.threads = 1;
  config.jobs.queue_capacity = 1;
  config.jobs.supervise_tick = 10ms;
  config.jobs.brownout_queue_delay = 60ms;
  config.retry_after_ms = 10;
  net::NetServer server(config);
  ASSERT_TRUE(server.ok()) << server.error();

  net::ServeClientConfig cc;
  cc.port = server.port();
  net::ServeClient client(cc);
  net::ClientResult cr;
  const auto running = client.submit(wire_spin(""), &cr);
  ASSERT_TRUE(running.has_value()) << cr.message;
  ASSERT_TRUE(eventually([&] {
    net::ProgressOk p;
    return client.progress(*running, &p).ok && p.attempts > 0;
  }));
  const auto queued = client.submit(wire_spin(""), &cr);
  ASSERT_TRUE(queued.has_value()) << cr.message;

  // The queued spin ages past brownout_queue_delay; once the supervisor
  // publishes browning-out, queue-full sheds must carry a 4x hint.
  ASSERT_TRUE(eventually([&] {
    return server.jobs().health() == HealthState::kBrowningOut;
  }));
  net::Frame reply;
  ASSERT_TRUE(raw_exchange(server.port(), wire_spin(""), &reply));
  ASSERT_EQ(reply.type, net::MsgType::kRetryAfter);
  pbp::ByteReader r(reply.payload);
  const net::RetryAfter shed = net::RetryAfter::decode(r);
  EXPECT_EQ(shed.reason, net::RetryAfter::Reason::kQueueFull);
  EXPECT_EQ(shed.delay_ms, 40u) << "browning-out must scale the hint 4x";

  bool cancelled = false;
  client.cancel(*running, &cancelled);
  client.cancel(*queued, &cancelled);
  server.stop();
}

TEST(GovernWire, StatsSnapshotCarriesGovernanceCountersAndHealth) {
  net::NetServerConfig config;
  config.jobs.threads = 1;
  config.jobs.stall_timeout = 40ms;
  config.jobs.supervise_tick = 10ms;
  net::NetServer server(config);
  ASSERT_TRUE(server.ok()) << server.error();

  net::ServeClientConfig cc;
  cc.port = server.port();
  net::ServeClient client(cc);
  net::SubmitRequest req;
  req.name = "stall";
  req.source = figure10_source();
  req.max_instructions = 20'000;
  req.checkpoint_every = 25;
  req.expect = {{0, 5}, {1, 3}};
  req.tenant = "acme";
  req.stall_spec = "at=50,ms=120000";
  net::ClientResult cr;
  const auto id = client.submit(req, &cr);
  ASSERT_TRUE(id.has_value()) << cr.message;
  const auto rep = client.next_report(30'000ms, &cr);
  ASSERT_TRUE(rep.has_value()) << cr.message;
  EXPECT_EQ(rep->outcome, JobOutcome::kCompleted) << rep->to_string();
  EXPECT_EQ(rep->tenant, "acme") << "tenant must survive the report codec";
  EXPECT_GE(rep->preemptions, 1u);

  net::StatsOk s;
  ASSERT_TRUE(client.stats(&s).ok);
  EXPECT_EQ(s.snapshot_version, net::kStatsSnapshotVersion);
  EXPECT_GE(s.jobs.stalls_detected, 1u);
  EXPECT_GE(s.jobs.preemptions, 1u);
  EXPECT_EQ(s.jobs.stall_quarantines, 0u);
  EXPECT_LE(s.jobs.health, 2u);
  server.stop();
}

}  // namespace
}  // namespace tangled::serve
