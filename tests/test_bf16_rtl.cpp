// Differential verification of the gate-level bfloat16 datapath against the
// behavioural ALU — the same obligation the course's Verilog float library
// faced (§2.1, §3.1).
#include "arch/bf16_rtl.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace tangled {
namespace {

bool agree(Bf16 rtl, Bf16 ref) {
  if (ref.is_nan()) return rtl.is_nan();  // payload is platform-defined
  return rtl.bits() == ref.bits();
}

std::string show(Bf16 a, Bf16 b) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "a=0x%04x (%g) b=0x%04x (%g)", a.bits(),
                a.to_float(), b.bits(), b.to_float());
  return buf;
}

TEST(Bf16Rtl, AddSpecials) {
  const Bf16 inf = kBf16Inf;
  const Bf16 ninf = kBf16NegInf;
  const Bf16 nan = Bf16(0x7fc0);
  EXPECT_TRUE(bf16_add_rtl(inf, kBf16One).is_inf());
  EXPECT_TRUE(bf16_add_rtl(inf, ninf).is_nan());
  EXPECT_TRUE(bf16_add_rtl(nan, kBf16One).is_nan());
  EXPECT_TRUE(bf16_add_rtl(kBf16Zero, kBf16Zero).is_zero());
  // -0 + -0 = -0; x + -x = +0 under round-to-nearest.
  EXPECT_EQ(bf16_add_rtl(Bf16(0x8000), Bf16(0x8000)).bits(), 0x8000);
  EXPECT_EQ(bf16_add_rtl(kBf16One, -kBf16One).bits(), 0x0000);
}

TEST(Bf16Rtl, AddKnownValues) {
  EXPECT_EQ(bf16_add_rtl(Bf16::from_float(1.5f), Bf16::from_float(2.25f))
                .to_float(),
            3.75f);
  EXPECT_EQ(bf16_add_rtl(Bf16::from_float(100.0f), Bf16::from_float(-100.0f))
                .to_float(),
            0.0f);
}

TEST(Bf16Rtl, AddExhaustiveSmallExponentRange) {
  // All sign/fraction pairs over a band of exponents around 1.0: exercises
  // alignment, cancellation, normalization, and rounding carries.
  for (unsigned ea = 124; ea <= 130; ++ea) {
    for (unsigned fa = 0; fa < 128; fa += 3) {
      for (unsigned eb = 124; eb <= 130; eb += 2) {
        for (unsigned fb = 1; fb < 128; fb += 7) {
          for (unsigned signs = 0; signs < 4; ++signs) {
            const Bf16 a(static_cast<std::uint16_t>(((signs & 1) << 15) |
                                                    (ea << 7) | fa));
            const Bf16 b(static_cast<std::uint16_t>(((signs >> 1) << 15) |
                                                    (eb << 7) | fb));
            const Bf16 ref = a + b;
            ASSERT_TRUE(agree(bf16_add_rtl(a, b), ref)) << show(a, b);
          }
        }
      }
    }
  }
}

TEST(Bf16Rtl, AddRandomSweepAllBitPatterns) {
  std::mt19937 rng(31);
  for (int i = 0; i < 200000; ++i) {
    const Bf16 a(static_cast<std::uint16_t>(rng()));
    const Bf16 b(static_cast<std::uint16_t>(rng()));
    const Bf16 ref = a + b;
    ASSERT_TRUE(agree(bf16_add_rtl(a, b), ref)) << show(a, b);
  }
}

TEST(Bf16Rtl, AddDenormals) {
  // Denormal arithmetic (gradual underflow) must match binary32 exactly.
  for (unsigned fa = 0; fa < 128; ++fa) {
    for (unsigned fb = 0; fb < 128; fb += 5) {
      const Bf16 a(static_cast<std::uint16_t>(fa));           // +denormal
      const Bf16 b(static_cast<std::uint16_t>(0x8000u | fb)); // -denormal
      ASSERT_TRUE(agree(bf16_add_rtl(a, b), a + b)) << show(a, b);
      ASSERT_TRUE(agree(bf16_add_rtl(a, a), a + a)) << show(a, a);
    }
  }
}

TEST(Bf16Rtl, MulSpecials) {
  EXPECT_TRUE(bf16_mul_rtl(kBf16Inf, kBf16Zero).is_nan());
  EXPECT_TRUE(bf16_mul_rtl(kBf16Inf, kBf16One).is_inf());
  EXPECT_EQ(bf16_mul_rtl(kBf16One, Bf16(0x8000)).bits(), 0x8000);  // 1 * -0
  EXPECT_TRUE(bf16_mul_rtl(Bf16(0x7fc0), kBf16One).is_nan());
}

TEST(Bf16Rtl, MulRandomSweepAllBitPatterns) {
  std::mt19937 rng(32);
  for (int i = 0; i < 200000; ++i) {
    const Bf16 a(static_cast<std::uint16_t>(rng()));
    const Bf16 b(static_cast<std::uint16_t>(rng()));
    const Bf16 ref = a * b;
    ASSERT_TRUE(agree(bf16_mul_rtl(a, b), ref)) << show(a, b);
  }
}

TEST(Bf16Rtl, MulExhaustiveFractionGrid) {
  for (unsigned fa = 0; fa < 128; fa += 2) {
    for (unsigned fb = 0; fb < 128; fb += 3) {
      for (unsigned ea : {1u, 64u, 127u, 128u, 200u, 254u}) {
        const Bf16 a(static_cast<std::uint16_t>((ea << 7) | fa));
        const Bf16 b(static_cast<std::uint16_t>((100u << 7) | fb));
        ASSERT_TRUE(agree(bf16_mul_rtl(a, b), a * b)) << show(a, b);
      }
    }
  }
}

TEST(Bf16Rtl, MulUnderflowAndOverflow) {
  const Bf16 tiny(0x0080);   // smallest normal
  const Bf16 huge(0x7f00);   // large normal
  ASSERT_TRUE(agree(bf16_mul_rtl(tiny, tiny), tiny * tiny));  // denormal/0
  ASSERT_TRUE(agree(bf16_mul_rtl(huge, huge), huge * huge));  // inf
  const Bf16 denorm(0x0001);  // minimum denormal
  ASSERT_TRUE(agree(bf16_mul_rtl(denorm, huge), denorm * huge));
  ASSERT_TRUE(agree(bf16_mul_rtl(denorm, denorm), denorm * denorm));  // 0
}

TEST(Bf16Rtl, FromIntExhaustive) {
  for (int v = -32768; v <= 32767; ++v) {
    const auto i16 = static_cast<std::int16_t>(v);
    ASSERT_EQ(bf16_from_int_rtl(i16).bits(), Bf16::from_int(i16).bits())
        << v;
  }
}

TEST(Bf16Rtl, ToIntExhaustiveOverAllBitPatterns) {
  for (unsigned bits = 0; bits <= 0xffff; ++bits) {
    const Bf16 a(static_cast<std::uint16_t>(bits));
    ASSERT_EQ(bf16_to_int_rtl(a), a.to_int()) << "bits=0x" << std::hex << bits;
  }
}

}  // namespace
}  // namespace tangled
