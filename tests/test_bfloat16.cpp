// Tests for the bfloat16 ALU (paper §2.1).
#include "arch/bfloat16.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace tangled {
namespace {

Bf16 bf(float f) { return Bf16::from_float(f); }

TEST(Bf16, FieldExtraction) {
  const Bf16 one = kBf16One;
  EXPECT_FALSE(one.sign());
  EXPECT_EQ(one.exponent(), 127u);
  EXPECT_EQ(one.fraction(), 0u);
  const Bf16 neg2 = bf(-2.0f);
  EXPECT_TRUE(neg2.sign());
  EXPECT_EQ(neg2.exponent(), 128u);
}

TEST(Bf16, ToFloatIsExact) {
  // "values can be treated as standard 32-bit float values by simply
  // catenating a 16-bit value of 0" — every bf16 is exactly a float.
  for (float f : {0.0f, 1.0f, -1.0f, 0.5f, 3.140625f, 1024.0f, -0.0078125f}) {
    EXPECT_EQ(bf(f).to_float(), f);
  }
}

TEST(Bf16, RoundToNearestEven) {
  // 1 + 2^-8 is exactly between bf16(1.0) and bf16(1 + 2^-7): ties to even
  // rounds down to 1.0.
  EXPECT_EQ(bf(1.0f + 1.0f / 256.0f).bits(), kBf16One.bits());
  // 1 + 3*2^-8 is between 1+2^-7 and 1+2^-6; ties to even rounds up.
  EXPECT_EQ(bf(1.0f + 3.0f / 256.0f).bits(), bf(1.0f + 2.0f / 128.0f).bits());
  // Anything past the midpoint rounds up.
  EXPECT_EQ(bf(1.0f + 1.1f / 256.0f).bits(), bf(1.0f + 1.0f / 128.0f).bits());
}

TEST(Bf16, AddMatchesRoundedFloatAdd) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
  for (int i = 0; i < 2000; ++i) {
    const Bf16 a = bf(dist(rng));
    const Bf16 b = bf(dist(rng));
    const Bf16 sum = a + b;
    EXPECT_EQ(sum.bits(), bf(a.to_float() + b.to_float()).bits());
  }
}

TEST(Bf16, MulMatchesRoundedFloatMul) {
  std::mt19937 rng(4);
  std::uniform_real_distribution<float> dist(-16.0f, 16.0f);
  for (int i = 0; i < 2000; ++i) {
    const Bf16 a = bf(dist(rng));
    const Bf16 b = bf(dist(rng));
    EXPECT_EQ((a * b).bits(), bf(a.to_float() * b.to_float()).bits());
  }
}

TEST(Bf16, NegFlipsSignOnly) {
  const Bf16 x = bf(3.5f);
  EXPECT_EQ((-x).to_float(), -3.5f);
  EXPECT_EQ((-(-x)).bits(), x.bits());
  EXPECT_EQ((-kBf16Zero).bits(), 0x8000);
}

TEST(Bf16, IntConversionRoundTrip) {
  for (int v : {0, 1, -1, 2, -2, 100, -100, 127, -128}) {
    const Bf16 f = Bf16::from_int(static_cast<std::int16_t>(v));
    EXPECT_EQ(f.to_int(), v) << v;
  }
  // Values above 2^8 lose precision but stay close (7-bit fraction).
  const Bf16 big = Bf16::from_int(1000);
  EXPECT_NEAR(big.to_float(), 1000.0f, 4.0f);
}

TEST(Bf16, IntConversionTruncatesTowardZero) {
  EXPECT_EQ(bf(2.9f).to_int(), 2);
  EXPECT_EQ(bf(-2.9f).to_int(), -2);
  EXPECT_EQ(bf(0.99f).to_int(), 0);
}

TEST(Bf16, IntConversionClamps) {
  EXPECT_EQ(bf(1e9f).to_int(), 32767);
  EXPECT_EQ(bf(-1e9f).to_int(), -32768);
  EXPECT_EQ(kBf16Inf.to_int(), 32767);
  EXPECT_EQ(kBf16NegInf.to_int(), -32768);
}

TEST(Bf16, Specials) {
  EXPECT_TRUE(kBf16Inf.is_inf());
  EXPECT_FALSE(kBf16Inf.is_nan());
  const Bf16 nan = bf(std::nanf(""));
  EXPECT_TRUE(nan.is_nan());
  EXPECT_TRUE((nan + kBf16One).is_nan());
  EXPECT_TRUE((nan * kBf16One).is_nan());
  EXPECT_TRUE((kBf16Inf + kBf16NegInf).is_nan());
  EXPECT_TRUE(kBf16Zero.is_zero());
  EXPECT_TRUE(Bf16(0x8000).is_zero());  // -0
}

TEST(Bf16, RecipPowersOfTwoAreExact) {
  for (float f : {1.0f, 2.0f, 4.0f, 0.5f, 0.25f, 1024.0f, -8.0f}) {
    EXPECT_EQ(bf(f).recip().to_float(), 1.0f / f) << f;
  }
}

TEST(Bf16, RecipSpecials) {
  EXPECT_TRUE(kBf16Zero.recip().is_inf());
  EXPECT_EQ(Bf16(0x8000).recip().bits(), kBf16NegInf.bits());
  EXPECT_TRUE(kBf16Inf.recip().is_zero());
  EXPECT_TRUE(bf(std::nanf("")).recip().is_nan());
}

TEST(Bf16, RecipTableAccuracy) {
  // The LUT reciprocal is accurate to about one bf16 ULP (2^-7 relative):
  // that is the hardware trade the Verilog VMEM table makes.
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> dist(0.01f, 1000.0f);
  for (int i = 0; i < 2000; ++i) {
    const Bf16 x = bf(dist(rng));
    if (x.is_zero()) continue;
    const float approx = x.recip().to_float();
    const float exact = 1.0f / x.to_float();
    EXPECT_NEAR(approx / exact, 1.0f, 1.0f / 64.0f) << x.to_float();
  }
}

TEST(Bf16, RecipExactMatchesFloatDivision) {
  std::mt19937 rng(6);
  std::uniform_real_distribution<float> dist(0.01f, 1000.0f);
  for (int i = 0; i < 500; ++i) {
    const Bf16 x = bf(dist(rng));
    EXPECT_EQ(x.recip_exact().bits(), bf(1.0f / x.to_float()).bits());
  }
}

TEST(Bf16, AdditionCommutes) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(-1000.0f, 1000.0f);
  for (int i = 0; i < 500; ++i) {
    const Bf16 a = bf(dist(rng));
    const Bf16 b = bf(dist(rng));
    EXPECT_EQ((a + b).bits(), (b + a).bits());
  }
}

}  // namespace
}  // namespace tangled
