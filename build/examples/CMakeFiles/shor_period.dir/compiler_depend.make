# Empty compiler generated dependencies file for shor_period.
# This may be replaced when dependencies are built.
