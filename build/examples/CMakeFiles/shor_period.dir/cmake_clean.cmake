file(REMOVE_RECURSE
  "CMakeFiles/shor_period.dir/shor_period.cpp.o"
  "CMakeFiles/shor_period.dir/shor_period.cpp.o.d"
  "shor_period"
  "shor_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shor_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
