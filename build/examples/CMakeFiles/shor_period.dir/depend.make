# Empty dependencies file for shor_period.
# This may be replaced when dependencies are built.
