# Empty compiler generated dependencies file for tangled_run.
# This may be replaced when dependencies are built.
