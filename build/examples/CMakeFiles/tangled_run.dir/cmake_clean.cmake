file(REMOVE_RECURSE
  "CMakeFiles/tangled_run.dir/tangled_run.cpp.o"
  "CMakeFiles/tangled_run.dir/tangled_run.cpp.o.d"
  "tangled_run"
  "tangled_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tangled_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
