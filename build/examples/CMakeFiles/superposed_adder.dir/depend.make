# Empty dependencies file for superposed_adder.
# This may be replaced when dependencies are built.
