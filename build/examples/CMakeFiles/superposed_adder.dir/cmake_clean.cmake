file(REMOVE_RECURSE
  "CMakeFiles/superposed_adder.dir/superposed_adder.cpp.o"
  "CMakeFiles/superposed_adder.dir/superposed_adder.cpp.o.d"
  "superposed_adder"
  "superposed_adder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superposed_adder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
