# Empty compiler generated dependencies file for factor15_asm.
# This may be replaced when dependencies are built.
