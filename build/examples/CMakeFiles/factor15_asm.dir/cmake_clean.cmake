file(REMOVE_RECURSE
  "CMakeFiles/factor15_asm.dir/factor15_asm.cpp.o"
  "CMakeFiles/factor15_asm.dir/factor15_asm.cpp.o.d"
  "factor15_asm"
  "factor15_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor15_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
