file(REMOVE_RECURSE
  "CMakeFiles/factor221.dir/factor221.cpp.o"
  "CMakeFiles/factor221.dir/factor221.cpp.o.d"
  "factor221"
  "factor221.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor221.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
