# Empty dependencies file for factor221.
# This may be replaced when dependencies are built.
