# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "pint_measure\\(f\\): 0 1 3 5 15" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_factor15_asm "/root/repo/build/examples/factor15_asm")
set_tests_properties(example_factor15_asm PROPERTIES  PASS_REGULAR_EXPRESSION "\\\$0 = 5, \\\$1 = 3" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_factor221 "/root/repo/build/examples/factor221")
set_tests_properties(example_factor221 PROPERTIES  PASS_REGULAR_EXPRESSION "factors b = 221, 17, 13, 1" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_grover_search "/root/repo/build/examples/grover_search")
set_tests_properties(example_grover_search PROPERTIES  PASS_REGULAR_EXPRESSION "identical sets" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_superposed_adder "/root/repo/build/examples/superposed_adder")
set_tests_properties(example_superposed_adder PROPERTIES  PASS_REGULAR_EXPRESSION "P\\(carry\\) = 8386560 / 16777216" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shor_period "/root/repo/build/examples/shor_period")
set_tests_properties(example_shor_period PROPERTIES  PASS_REGULAR_EXPRESSION "period 4 -> gcd\\(a\\^\\(r/2\\)\\+-1, n\\) = 5, 3" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tangled_run "/root/repo/build/examples/tangled_run" "-s" "rtl" "-w" "8" "/root/repo/build/examples/figure10.s")
set_tests_properties(example_tangled_run PROPERTIES  PASS_REGULAR_EXPRESSION "halted \\(sys\\)" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;36;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tangled_run_multi_fsm "/root/repo/build/examples/tangled_run" "-s" "multi-fsm" "-w" "8" "/root/repo/build/examples/figure10.s")
set_tests_properties(example_tangled_run_multi_fsm PROPERTIES  PASS_REGULAR_EXPRESSION "91 instructions, 447 cycles" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;40;add_test;/root/repo/examples/CMakeLists.txt;0;")
