file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_next.dir/bench_fig8_next.cpp.o"
  "CMakeFiles/bench_fig8_next.dir/bench_fig8_next.cpp.o.d"
  "bench_fig8_next"
  "bench_fig8_next.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_next.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
