# Empty dependencies file for bench_fig8_next.
# This may be replaced when dependencies are built.
