
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_next.cpp" "bench/CMakeFiles/bench_fig8_next.dir/bench_fig8_next.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_next.dir/bench_fig8_next.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pbp/CMakeFiles/pbp.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/tangled_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/tangled_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tangled_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
