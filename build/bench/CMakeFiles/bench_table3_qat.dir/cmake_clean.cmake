file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_qat.dir/bench_table3_qat.cpp.o"
  "CMakeFiles/bench_table3_qat.dir/bench_table3_qat.cpp.o.d"
  "bench_table3_qat"
  "bench_table3_qat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_qat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
