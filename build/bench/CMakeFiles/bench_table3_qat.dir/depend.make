# Empty dependencies file for bench_table3_qat.
# This may be replaced when dependencies are built.
