file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_had.dir/bench_fig7_had.cpp.o"
  "CMakeFiles/bench_fig7_had.dir/bench_fig7_had.cpp.o.d"
  "bench_fig7_had"
  "bench_fig7_had.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_had.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
