file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_program.dir/bench_fig10_program.cpp.o"
  "CMakeFiles/bench_fig10_program.dir/bench_fig10_program.cpp.o.d"
  "bench_fig10_program"
  "bench_fig10_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
