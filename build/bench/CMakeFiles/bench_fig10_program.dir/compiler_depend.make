# Empty compiler generated dependencies file for bench_fig10_program.
# This may be replaced when dependencies are built.
