file(REMOVE_RECURSE
  "CMakeFiles/bench_virtual_qat.dir/bench_virtual_qat.cpp.o"
  "CMakeFiles/bench_virtual_qat.dir/bench_virtual_qat.cpp.o.d"
  "bench_virtual_qat"
  "bench_virtual_qat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtual_qat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
