# Empty dependencies file for bench_virtual_qat.
# This may be replaced when dependencies are built.
