file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_factoring.dir/bench_fig9_factoring.cpp.o"
  "CMakeFiles/bench_fig9_factoring.dir/bench_fig9_factoring.cpp.o.d"
  "bench_fig9_factoring"
  "bench_fig9_factoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_factoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
