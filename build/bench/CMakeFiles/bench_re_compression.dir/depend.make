# Empty dependencies file for bench_re_compression.
# This may be replaced when dependencies are built.
