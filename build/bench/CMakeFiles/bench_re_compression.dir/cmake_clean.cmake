file(REMOVE_RECURSE
  "CMakeFiles/bench_re_compression.dir/bench_re_compression.cpp.o"
  "CMakeFiles/bench_re_compression.dir/bench_re_compression.cpp.o.d"
  "bench_re_compression"
  "bench_re_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_re_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
