file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_tangled.dir/bench_table1_tangled.cpp.o"
  "CMakeFiles/bench_table1_tangled.dir/bench_table1_tangled.cpp.o.d"
  "bench_table1_tangled"
  "bench_table1_tangled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tangled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
