# Empty dependencies file for bench_pipeline_cpi.
# This may be replaced when dependencies are built.
