
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pbp/aob.cpp" "src/pbp/CMakeFiles/pbp.dir/aob.cpp.o" "gcc" "src/pbp/CMakeFiles/pbp.dir/aob.cpp.o.d"
  "/root/repo/src/pbp/circuit.cpp" "src/pbp/CMakeFiles/pbp.dir/circuit.cpp.o" "gcc" "src/pbp/CMakeFiles/pbp.dir/circuit.cpp.o.d"
  "/root/repo/src/pbp/hadamard.cpp" "src/pbp/CMakeFiles/pbp.dir/hadamard.cpp.o" "gcc" "src/pbp/CMakeFiles/pbp.dir/hadamard.cpp.o.d"
  "/root/repo/src/pbp/optimizer.cpp" "src/pbp/CMakeFiles/pbp.dir/optimizer.cpp.o" "gcc" "src/pbp/CMakeFiles/pbp.dir/optimizer.cpp.o.d"
  "/root/repo/src/pbp/pbit.cpp" "src/pbp/CMakeFiles/pbp.dir/pbit.cpp.o" "gcc" "src/pbp/CMakeFiles/pbp.dir/pbit.cpp.o.d"
  "/root/repo/src/pbp/pint.cpp" "src/pbp/CMakeFiles/pbp.dir/pint.cpp.o" "gcc" "src/pbp/CMakeFiles/pbp.dir/pint.cpp.o.d"
  "/root/repo/src/pbp/re.cpp" "src/pbp/CMakeFiles/pbp.dir/re.cpp.o" "gcc" "src/pbp/CMakeFiles/pbp.dir/re.cpp.o.d"
  "/root/repo/src/pbp/stats.cpp" "src/pbp/CMakeFiles/pbp.dir/stats.cpp.o" "gcc" "src/pbp/CMakeFiles/pbp.dir/stats.cpp.o.d"
  "/root/repo/src/pbp/virtual_qat.cpp" "src/pbp/CMakeFiles/pbp.dir/virtual_qat.cpp.o" "gcc" "src/pbp/CMakeFiles/pbp.dir/virtual_qat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
