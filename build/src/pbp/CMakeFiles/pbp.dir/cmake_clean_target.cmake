file(REMOVE_RECURSE
  "libpbp.a"
)
