file(REMOVE_RECURSE
  "CMakeFiles/pbp.dir/aob.cpp.o"
  "CMakeFiles/pbp.dir/aob.cpp.o.d"
  "CMakeFiles/pbp.dir/circuit.cpp.o"
  "CMakeFiles/pbp.dir/circuit.cpp.o.d"
  "CMakeFiles/pbp.dir/hadamard.cpp.o"
  "CMakeFiles/pbp.dir/hadamard.cpp.o.d"
  "CMakeFiles/pbp.dir/optimizer.cpp.o"
  "CMakeFiles/pbp.dir/optimizer.cpp.o.d"
  "CMakeFiles/pbp.dir/pbit.cpp.o"
  "CMakeFiles/pbp.dir/pbit.cpp.o.d"
  "CMakeFiles/pbp.dir/pint.cpp.o"
  "CMakeFiles/pbp.dir/pint.cpp.o.d"
  "CMakeFiles/pbp.dir/re.cpp.o"
  "CMakeFiles/pbp.dir/re.cpp.o.d"
  "CMakeFiles/pbp.dir/stats.cpp.o"
  "CMakeFiles/pbp.dir/stats.cpp.o.d"
  "CMakeFiles/pbp.dir/virtual_qat.cpp.o"
  "CMakeFiles/pbp.dir/virtual_qat.cpp.o.d"
  "libpbp.a"
  "libpbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
