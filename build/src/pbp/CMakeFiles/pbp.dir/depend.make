# Empty dependencies file for pbp.
# This may be replaced when dependencies are built.
