file(REMOVE_RECURSE
  "CMakeFiles/tangled_arch.dir/bf16_rtl.cpp.o"
  "CMakeFiles/tangled_arch.dir/bf16_rtl.cpp.o.d"
  "CMakeFiles/tangled_arch.dir/bfloat16.cpp.o"
  "CMakeFiles/tangled_arch.dir/bfloat16.cpp.o.d"
  "CMakeFiles/tangled_arch.dir/cpu.cpp.o"
  "CMakeFiles/tangled_arch.dir/cpu.cpp.o.d"
  "CMakeFiles/tangled_arch.dir/multicycle_fsm.cpp.o"
  "CMakeFiles/tangled_arch.dir/multicycle_fsm.cpp.o.d"
  "CMakeFiles/tangled_arch.dir/qat_engine.cpp.o"
  "CMakeFiles/tangled_arch.dir/qat_engine.cpp.o.d"
  "CMakeFiles/tangled_arch.dir/qat_program.cpp.o"
  "CMakeFiles/tangled_arch.dir/qat_program.cpp.o.d"
  "CMakeFiles/tangled_arch.dir/rtl_pipeline.cpp.o"
  "CMakeFiles/tangled_arch.dir/rtl_pipeline.cpp.o.d"
  "CMakeFiles/tangled_arch.dir/simulators.cpp.o"
  "CMakeFiles/tangled_arch.dir/simulators.cpp.o.d"
  "libtangled_arch.a"
  "libtangled_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tangled_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
