file(REMOVE_RECURSE
  "libtangled_arch.a"
)
