
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/bf16_rtl.cpp" "src/arch/CMakeFiles/tangled_arch.dir/bf16_rtl.cpp.o" "gcc" "src/arch/CMakeFiles/tangled_arch.dir/bf16_rtl.cpp.o.d"
  "/root/repo/src/arch/bfloat16.cpp" "src/arch/CMakeFiles/tangled_arch.dir/bfloat16.cpp.o" "gcc" "src/arch/CMakeFiles/tangled_arch.dir/bfloat16.cpp.o.d"
  "/root/repo/src/arch/cpu.cpp" "src/arch/CMakeFiles/tangled_arch.dir/cpu.cpp.o" "gcc" "src/arch/CMakeFiles/tangled_arch.dir/cpu.cpp.o.d"
  "/root/repo/src/arch/multicycle_fsm.cpp" "src/arch/CMakeFiles/tangled_arch.dir/multicycle_fsm.cpp.o" "gcc" "src/arch/CMakeFiles/tangled_arch.dir/multicycle_fsm.cpp.o.d"
  "/root/repo/src/arch/qat_engine.cpp" "src/arch/CMakeFiles/tangled_arch.dir/qat_engine.cpp.o" "gcc" "src/arch/CMakeFiles/tangled_arch.dir/qat_engine.cpp.o.d"
  "/root/repo/src/arch/qat_program.cpp" "src/arch/CMakeFiles/tangled_arch.dir/qat_program.cpp.o" "gcc" "src/arch/CMakeFiles/tangled_arch.dir/qat_program.cpp.o.d"
  "/root/repo/src/arch/rtl_pipeline.cpp" "src/arch/CMakeFiles/tangled_arch.dir/rtl_pipeline.cpp.o" "gcc" "src/arch/CMakeFiles/tangled_arch.dir/rtl_pipeline.cpp.o.d"
  "/root/repo/src/arch/simulators.cpp" "src/arch/CMakeFiles/tangled_arch.dir/simulators.cpp.o" "gcc" "src/arch/CMakeFiles/tangled_arch.dir/simulators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pbp/CMakeFiles/pbp.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tangled_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/tangled_asm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
