# Empty dependencies file for tangled_arch.
# This may be replaced when dependencies are built.
