file(REMOVE_RECURSE
  "libtangled_asm.a"
)
