# Empty dependencies file for tangled_asm.
# This may be replaced when dependencies are built.
