file(REMOVE_RECURSE
  "CMakeFiles/tangled_asm.dir/assembler.cpp.o"
  "CMakeFiles/tangled_asm.dir/assembler.cpp.o.d"
  "CMakeFiles/tangled_asm.dir/programs.cpp.o"
  "CMakeFiles/tangled_asm.dir/programs.cpp.o.d"
  "libtangled_asm.a"
  "libtangled_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tangled_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
