file(REMOVE_RECURSE
  "libtangled_isa.a"
)
