file(REMOVE_RECURSE
  "CMakeFiles/tangled_isa.dir/isa.cpp.o"
  "CMakeFiles/tangled_isa.dir/isa.cpp.o.d"
  "libtangled_isa.a"
  "libtangled_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tangled_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
