# Empty compiler generated dependencies file for tangled_isa.
# This may be replaced when dependencies are built.
