
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alu_reference.cpp" "tests/CMakeFiles/tangled_tests.dir/test_alu_reference.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_alu_reference.cpp.o.d"
  "/root/repo/tests/test_aob.cpp" "tests/CMakeFiles/tangled_tests.dir/test_aob.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_aob.cpp.o.d"
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/tangled_tests.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_bf16_rtl.cpp" "tests/CMakeFiles/tangled_tests.dir/test_bf16_rtl.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_bf16_rtl.cpp.o.d"
  "/root/repo/tests/test_bfloat16.cpp" "tests/CMakeFiles/tangled_tests.dir/test_bfloat16.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_bfloat16.cpp.o.d"
  "/root/repo/tests/test_circuit.cpp" "tests/CMakeFiles/tangled_tests.dir/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_circuit.cpp.o.d"
  "/root/repo/tests/test_corpus.cpp" "tests/CMakeFiles/tangled_tests.dir/test_corpus.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_corpus.cpp.o.d"
  "/root/repo/tests/test_fig10.cpp" "tests/CMakeFiles/tangled_tests.dir/test_fig10.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_fig10.cpp.o.d"
  "/root/repo/tests/test_hadamard.cpp" "tests/CMakeFiles/tangled_tests.dir/test_hadamard.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_hadamard.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/tangled_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_multicycle_fsm.cpp" "tests/CMakeFiles/tangled_tests.dir/test_multicycle_fsm.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_multicycle_fsm.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/tangled_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_pbit.cpp" "tests/CMakeFiles/tangled_tests.dir/test_pbit.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_pbit.cpp.o.d"
  "/root/repo/tests/test_pint.cpp" "tests/CMakeFiles/tangled_tests.dir/test_pint.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_pint.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/tangled_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_qat_engine.cpp" "tests/CMakeFiles/tangled_tests.dir/test_qat_engine.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_qat_engine.cpp.o.d"
  "/root/repo/tests/test_qat_program.cpp" "tests/CMakeFiles/tangled_tests.dir/test_qat_program.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_qat_program.cpp.o.d"
  "/root/repo/tests/test_re.cpp" "tests/CMakeFiles/tangled_tests.dir/test_re.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_re.cpp.o.d"
  "/root/repo/tests/test_rtl_pipeline.cpp" "tests/CMakeFiles/tangled_tests.dir/test_rtl_pipeline.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_rtl_pipeline.cpp.o.d"
  "/root/repo/tests/test_simulators.cpp" "tests/CMakeFiles/tangled_tests.dir/test_simulators.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_simulators.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/tangled_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_virtual_qat.cpp" "tests/CMakeFiles/tangled_tests.dir/test_virtual_qat.cpp.o" "gcc" "tests/CMakeFiles/tangled_tests.dir/test_virtual_qat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pbp/CMakeFiles/pbp.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/tangled_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/tangled_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tangled_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
