# Empty dependencies file for tangled_tests.
# This may be replaced when dependencies are built.
