// cli_parse.hpp — strict numeric parsing for the example binaries.
//
// The historical flag parsing used bare std::atoi / std::strtoull, which
// silently turn "--ways=abc" into 0 and ignore trailing garbage ("16x" →
// 16).  These helpers accept a value only when the WHOLE string is a number
// in range, and report failure so callers can print a usage error and exit
// with the documented bad-usage code (2).
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace cli {

/// Whole-string unsigned decimal parse; rejects empty strings, signs,
/// whitespace, trailing garbage, and out-of-range values.
inline std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

/// As parse_u64, further bounded to `max` (defaults to the unsigned range).
inline std::optional<unsigned> parse_unsigned(
    const std::string& s, unsigned max = ~0u) {
  const auto v = parse_u64(s);
  if (!v || *v > max) return std::nullopt;
  return static_cast<unsigned>(*v);
}

/// Whole-string signed decimal parse (an optional leading '-' plus digits).
inline std::optional<int> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  const bool neg = s[0] == '-';
  const auto mag = parse_u64(neg ? s.substr(1) : s);
  if (!mag) return std::nullopt;
  if (neg) {
    if (*mag > std::uint64_t{1} << 31) return std::nullopt;
    return static_cast<int>(-static_cast<std::int64_t>(*mag));
  }
  if (*mag > 0x7fffffffull) return std::nullopt;
  return static_cast<int>(*mag);
}

/// Whole-string floating-point parse.
inline std::optional<double> parse_double(const std::string& s) {
  if (s.empty() || s[0] == ' ') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno == ERANGE || end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

}  // namespace cli
