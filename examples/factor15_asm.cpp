// factor15_asm — the paper's Figure 10 program, assembled and executed on
// the pipelined Tangled/Qat simulator, with the pipeline statistics a
// hardware counter block would report.
//
//   $ ./factor15_asm
//   $0 = 5, $1 = 3
//   91 instructions, 256 cycles, CPI 2.81, ...
#include <cstdio>

#include "arch/simulators.hpp"
#include "asm/programs.hpp"

int main() {
  using namespace tangled;

  const Program program = assemble(figure10_source());
  std::printf("Figure 10: %zu instructions, %zu words of memory\n",
              program.instruction_count, program.words.size());

  for (const unsigned stages : {4u, 5u}) {
    PipelineSim sim(8, {.stages = stages, .forwarding = true});
    sim.load(program);
    const SimStats st = sim.run();
    if (!st.halted) {
      std::printf("error: program did not halt\n");
      return 1;
    }
    std::printf(
        "%u-stage pipeline: $0 = %u, $1 = %u | %llu instrs, %llu cycles, "
        "CPI %.2f (stalls %llu, flushes %llu, 2nd-word fetches %llu)\n",
        stages, sim.cpu().reg(0), sim.cpu().reg(1),
        static_cast<unsigned long long>(st.instructions),
        static_cast<unsigned long long>(st.cycles), st.cpi(),
        static_cast<unsigned long long>(st.data_stall_cycles),
        static_cast<unsigned long long>(st.flush_cycles),
        static_cast<unsigned long long>(st.fetch_extra_cycles));
  }

  // Non-destructive readout: sample the factor channels again, straight from
  // the coprocessor state (the superposition in @80 never collapsed).
  PipelineSim sim(8);
  sim.load(program);
  sim.run();
  std::printf("channels of @80 holding factors:");
  std::uint16_t ch = 0;
  for (int i = 0; i < 4; ++i) {
    ch = sim.qat().next(80, ch);
    if (ch == 0) break;
    std::printf(" %u(b=%u,c=%u)", ch, ch % 16, ch / 16);
  }
  std::printf("\n");
  return 0;
}
