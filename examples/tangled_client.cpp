// tangled_client — command-line client for tangled_served: submits jobs
// over the framed wire protocol, streams back their terminal reports, and
// exposes the service's health snapshot.
//
//   tangled_client --port=PORT --jobs=4 --expect=0=5,1=3
//   tangled_client --port=PORT --stats
//
// With no program file the client submits the paper's Figure 10 factoring
// program and (by default) validates $0=5, $1=3 server-side.  Exit codes:
// 0 = every job completed, 1 = a job failed (quarantined/cancelled/...),
// 2 = bad usage, 3 = transport or server error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "asm/programs.hpp"
#include "cli_parse.hpp"
#include "serve/net/client.hpp"

using namespace tangled;
using namespace tangled::serve;
using namespace tangled::serve::net;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: tangled_client [options] [program.s]\n"
      "  --host=H             server address (default 127.0.0.1)\n"
      "  --port=N             server port (required)\n"
      "  --jobs=N             copies of the program to submit (default 1)\n"
      "  --batch              submit every job in ONE wire frame and drain\n"
      "                       coalesced report batches (one round-trip\n"
      "                       instead of one per job; falls back to\n"
      "                       per-job frames against a pre-batch server)\n"
      "  --sim=K              func | multi | multi-fsm | pipe4 | pipe5 |\n"
      "                       pipe5-nofwd | rtl (default rotates over all)\n"
      "  --backend=B          dense | re (default dense)\n"
      "  --ways=N             Qat ways (default 8)\n"
      "  --expect=R=V,...     server-side validation: register R must hold\n"
      "                       V on clean halt (default 0=5,1=3 for the\n"
      "                       builtin Figure 10 program, none otherwise)\n"
      "  --deadline-ms=N      per-job wall-clock deadline (default server)\n"
      "  --retry-max=N        serve-level retries (default server)\n"
      "  --ecc=M              off | detect | correct (default off)\n"
      "  --inject=SPEC        FaultPlan spec, e.g. seed=41,events=2\n"
      "  --idemp=PREFIX       idempotency keys PREFIX/0, PREFIX/1, ...: a\n"
      "                       rerun against a journaled server dedups onto\n"
      "                       the stored reports instead of re-executing\n"
      "  --checkpoint-every=N rollback-recovery checkpoint cadence (and, on\n"
      "                       a journaled server, the crash-resume cadence)\n"
      "  --tenant=NAME        submit as this tenant (weighted-fair share +\n"
      "                       per-tenant quotas on the server)\n"
      "  --stall=SPEC         injected-stall seam for supervision drills,\n"
      "                       e.g. at=500,ms=2000[,times=2]\n"
      "  --cancel=ID          cancel job ID instead of submitting\n"
      "  --progress=ID        query progress of job ID\n"
      "  --stats              print the server stats snapshot\n"
      "  --stats-json         print the stats snapshot as one JSON line\n"
      "  --ping               liveness probe\n"
      "  --connect-timeout-ms=N  TCP connect budget (default 1000)\n"
      "  --io-timeout-ms=N    per-frame read/write budget (default 5000)\n"
      "  --connect-attempts=N connect tries with jittered backoff\n"
      "                       (default 5)\n"
      "  --seed=N             backoff-jitter seed (default fixed)\n"
      "  --verbose            print every job report\n");
}

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

[[noreturn]] void bad_value(const std::string& v, const char* flag) {
  std::fprintf(stderr, "tangled_client: invalid value '%s' for %s\n",
               v.c_str(), flag);
  usage();
  std::exit(2);
}

unsigned parse_small(const std::string& v, const char* flag,
                     unsigned max = ~0u) {
  const auto r = cli::parse_unsigned(v, max);
  if (!r) bad_value(v, flag);
  return *r;
}

/// "0=5,1=3" → [(0,5),(1,3)].
std::vector<std::pair<std::uint16_t, std::uint16_t>> parse_expect(
    const std::string& spec) {
  std::vector<std::pair<std::uint16_t, std::uint16_t>> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) bad_value(spec, "--expect");
    const auto reg = cli::parse_unsigned(item.substr(0, eq), 15);
    const auto val = cli::parse_unsigned(item.substr(eq + 1), 65535);
    if (!reg || !val) bad_value(spec, "--expect");
    out.emplace_back(static_cast<std::uint16_t>(*reg),
                     static_cast<std::uint16_t>(*val));
  }
  return out;
}

int transport_fail(const char* what, const ClientResult& r) {
  std::fprintf(stderr, "tangled_client: %s failed: %s (%s)\n", what,
               r.message.c_str(), wire_error_name(r.code));
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  ServeClientConfig cc;
  SubmitRequest base;
  unsigned jobs = 1;
  bool sim_fixed = false;
  bool have_port = false;
  bool do_stats = false, stats_json = false, do_ping = false, verbose = false;
  bool use_batch = false;
  std::uint64_t cancel_id = 0, progress_id = 0;
  bool do_cancel = false, do_progress = false;
  std::string program_file;
  std::string expect_spec;
  std::string idemp_prefix;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--host", &v)) {
      cc.host = v;
    } else if (parse_flag(argv[i], "--port", &v)) {
      cc.port = static_cast<std::uint16_t>(parse_small(v, "--port", 65535));
      have_port = true;
    } else if (parse_flag(argv[i], "--jobs", &v)) {
      jobs = parse_small(v, "--jobs");
    } else if (parse_flag(argv[i], "--sim", &v)) {
      try {
        base.sim = parse_sim_kind(v);
      } catch (const std::invalid_argument&) {
        bad_value(v, "--sim");
      }
      sim_fixed = true;
    } else if (parse_flag(argv[i], "--backend", &v)) {
      if (v == "dense") {
        base.backend = pbp::Backend::kDense;
      } else if (v == "re" || v == "compressed") {
        base.backend = pbp::Backend::kCompressed;
      } else {
        bad_value(v, "--backend");
      }
    } else if (parse_flag(argv[i], "--ways", &v)) {
      base.ways = parse_small(v, "--ways");
    } else if (parse_flag(argv[i], "--expect", &v)) {
      parse_expect(v);  // validate now: bad specs are a usage error (exit 2)
      expect_spec = v;
    } else if (parse_flag(argv[i], "--deadline-ms", &v)) {
      base.deadline_ms = parse_small(v, "--deadline-ms");
    } else if (parse_flag(argv[i], "--retry-max", &v)) {
      const auto r = cli::parse_int(v);
      if (!r) bad_value(v, "--retry-max");
      base.retry_max = *r;
    } else if (parse_flag(argv[i], "--ecc", &v)) {
      if (v == "off") {
        base.ecc = pbp::EccMode::kOff;
      } else if (v == "detect") {
        base.ecc = pbp::EccMode::kDetect;
      } else if (v == "correct") {
        base.ecc = pbp::EccMode::kCorrect;
      } else {
        bad_value(v, "--ecc");
      }
    } else if (parse_flag(argv[i], "--inject", &v)) {
      base.fault_spec = v;
    } else if (parse_flag(argv[i], "--idemp", &v)) {
      if (v.empty()) bad_value(v, "--idemp");
      idemp_prefix = v;
    } else if (parse_flag(argv[i], "--checkpoint-every", &v)) {
      const auto n = cli::parse_u64(v);
      if (!n) bad_value(v, "--checkpoint-every");
      base.checkpoint_every = *n;
    } else if (parse_flag(argv[i], "--tenant", &v)) {
      base.tenant = v;
    } else if (parse_flag(argv[i], "--stall", &v)) {
      base.stall_spec = v;
    } else if (parse_flag(argv[i], "--cancel", &v)) {
      const auto id = cli::parse_u64(v);
      if (!id) bad_value(v, "--cancel");
      cancel_id = *id;
      do_cancel = true;
    } else if (parse_flag(argv[i], "--progress", &v)) {
      const auto id = cli::parse_u64(v);
      if (!id) bad_value(v, "--progress");
      progress_id = *id;
      do_progress = true;
    } else if (parse_flag(argv[i], "--connect-timeout-ms", &v)) {
      cc.connect_timeout =
          std::chrono::milliseconds(parse_small(v, "--connect-timeout-ms"));
    } else if (parse_flag(argv[i], "--io-timeout-ms", &v)) {
      cc.io_timeout =
          std::chrono::milliseconds(parse_small(v, "--io-timeout-ms"));
    } else if (parse_flag(argv[i], "--connect-attempts", &v)) {
      cc.connect_attempts = parse_small(v, "--connect-attempts");
    } else if (parse_flag(argv[i], "--seed", &v)) {
      const auto s = cli::parse_u64(v);
      if (!s) bad_value(v, "--seed");
      cc.seed = *s;
    } else if (std::string(argv[i]) == "--stats") {
      do_stats = true;
    } else if (std::string(argv[i]) == "--stats-json") {
      do_stats = true;
      stats_json = true;
    } else if (std::string(argv[i]) == "--batch") {
      use_batch = true;
    } else if (std::string(argv[i]) == "--ping") {
      do_ping = true;
    } else if (std::string(argv[i]) == "--verbose") {
      verbose = true;
    } else if (argv[i][0] == '-') {
      usage();
      return 2;
    } else {
      program_file = argv[i];
    }
  }
  if (!have_port) {
    std::fprintf(stderr, "tangled_client: --port is required\n");
    usage();
    return 2;
  }

  ServeClient client(cc);
  if (const ClientResult r = client.connect(); !r.ok) {
    return transport_fail("connect", r);
  }

  if (do_ping) {
    if (const ClientResult r = client.ping(); !r.ok) {
      return transport_fail("ping", r);
    }
    std::printf("tangled_client: pong\n");
    return 0;
  }
  if (do_stats) {
    StatsOk s;
    if (const ClientResult r = client.stats(&s); !r.ok) {
      return transport_fail("stats", r);
    }
    if (stats_json) {
      std::printf(
          "{\"snapshot_version\":%u,\"draining\":%s,\"health\":\"%s\","
          "\"submitted\":%llu,\"completed\":%llu,\"quarantined\":%llu,"
          "\"cancelled\":%llu,\"retries\":%llu,\"queue_depth\":%llu,"
          "\"active_jobs\":%u,\"stalls_detected\":%llu,\"preemptions\":%llu,"
          "\"stall_quarantines\":%llu,\"tenant_sheds\":%llu,"
          "\"ecc_corrected\":%llu,\"ecc_detected\":%llu,"
          "\"connections_accepted\":%llu,\"connections_active\":%llu,"
          "\"frames_rx\":%llu,\"frames_tx\":%llu,\"protocol_errors\":%llu,"
          "\"stall_closes\":%llu,\"retry_after_sent\":%llu,"
          "\"reports_streamed\":%llu,\"reports_orphaned\":%llu,"
          "\"jobs_recovered\":%llu,\"journal_replays\":%llu,"
          "\"journal_bytes\":%llu,\"reports_deduped\":%llu,"
          "\"journal_shed\":%llu,"
          "\"sim_pool_hits\":%llu,\"sim_pool_misses\":%llu,"
          "\"batch_submits\":%llu,\"batch_jobs\":%llu,"
          "\"batch_reports\":%llu}\n",
          s.snapshot_version, s.draining ? "true" : "false",
          health_state_name(static_cast<HealthState>(s.jobs.health)),
          static_cast<unsigned long long>(s.jobs.submitted),
          static_cast<unsigned long long>(s.jobs.completed),
          static_cast<unsigned long long>(s.jobs.quarantined),
          static_cast<unsigned long long>(s.jobs.cancelled),
          static_cast<unsigned long long>(s.jobs.retries),
          static_cast<unsigned long long>(s.jobs.queue_depth),
          s.jobs.active_jobs,
          static_cast<unsigned long long>(s.jobs.stalls_detected),
          static_cast<unsigned long long>(s.jobs.preemptions),
          static_cast<unsigned long long>(s.jobs.stall_quarantines),
          static_cast<unsigned long long>(s.jobs.tenant_sheds),
          static_cast<unsigned long long>(s.ecc_corrected),
          static_cast<unsigned long long>(s.ecc_detected),
          static_cast<unsigned long long>(s.connections_accepted),
          static_cast<unsigned long long>(s.connections_active),
          static_cast<unsigned long long>(s.frames_rx),
          static_cast<unsigned long long>(s.frames_tx),
          static_cast<unsigned long long>(s.protocol_errors),
          static_cast<unsigned long long>(s.stall_closes),
          static_cast<unsigned long long>(s.retry_after_sent),
          static_cast<unsigned long long>(s.reports_streamed),
          static_cast<unsigned long long>(s.reports_orphaned),
          static_cast<unsigned long long>(s.jobs.jobs_recovered),
          static_cast<unsigned long long>(s.jobs.journal_replays),
          static_cast<unsigned long long>(s.jobs.journal_bytes),
          static_cast<unsigned long long>(s.jobs.reports_deduped),
          static_cast<unsigned long long>(s.jobs.journal_shed),
          static_cast<unsigned long long>(s.jobs.sim_pool_hits),
          static_cast<unsigned long long>(s.jobs.sim_pool_misses),
          static_cast<unsigned long long>(s.batch_submits),
          static_cast<unsigned long long>(s.batch_jobs),
          static_cast<unsigned long long>(s.batch_reports));
      return 0;
    }
    std::printf(
        "tangled_served stats (snapshot v%u)%s:\n"
        "  jobs: %llu submitted, %llu completed, %llu quarantined, "
        "%llu cancelled, %llu retries\n"
        "  ecc: %llu corrected, %llu detected\n"
        "  net: %llu conns (%llu active), %llu frames in, %llu out, "
        "%llu protocol errors, %llu stall closes, %llu retry-after\n"
        "  reports: %llu streamed, %llu orphaned\n"
        "  journal: %llu job(s) recovered, %llu replay(s), %llu bytes, "
        "%llu deduped, %llu shed\n"
        "  hot path: %llu pool hit(s), %llu miss(es), %llu batch submit(s) "
        "(%llu job(s)), %llu coalesced report frame(s)\n"
        "  governance: health=%s, %llu stall(s) detected, %llu preemption(s), "
        "%llu stall quarantine(s), %llu tenant shed(s)\n",
        s.snapshot_version, s.draining ? " [draining]" : "",
        static_cast<unsigned long long>(s.jobs.submitted),
        static_cast<unsigned long long>(s.jobs.completed),
        static_cast<unsigned long long>(s.jobs.quarantined),
        static_cast<unsigned long long>(s.jobs.cancelled),
        static_cast<unsigned long long>(s.jobs.retries),
        static_cast<unsigned long long>(s.ecc_corrected),
        static_cast<unsigned long long>(s.ecc_detected),
        static_cast<unsigned long long>(s.connections_accepted),
        static_cast<unsigned long long>(s.connections_active),
        static_cast<unsigned long long>(s.frames_rx),
        static_cast<unsigned long long>(s.frames_tx),
        static_cast<unsigned long long>(s.protocol_errors),
        static_cast<unsigned long long>(s.stall_closes),
        static_cast<unsigned long long>(s.retry_after_sent),
        static_cast<unsigned long long>(s.reports_streamed),
        static_cast<unsigned long long>(s.reports_orphaned),
        static_cast<unsigned long long>(s.jobs.jobs_recovered),
        static_cast<unsigned long long>(s.jobs.journal_replays),
        static_cast<unsigned long long>(s.jobs.journal_bytes),
        static_cast<unsigned long long>(s.jobs.reports_deduped),
        static_cast<unsigned long long>(s.jobs.journal_shed),
        static_cast<unsigned long long>(s.jobs.sim_pool_hits),
        static_cast<unsigned long long>(s.jobs.sim_pool_misses),
        static_cast<unsigned long long>(s.batch_submits),
        static_cast<unsigned long long>(s.batch_jobs),
        static_cast<unsigned long long>(s.batch_reports),
        health_state_name(static_cast<HealthState>(s.jobs.health)),
        static_cast<unsigned long long>(s.jobs.stalls_detected),
        static_cast<unsigned long long>(s.jobs.preemptions),
        static_cast<unsigned long long>(s.jobs.stall_quarantines),
        static_cast<unsigned long long>(s.jobs.tenant_sheds));
    return 0;
  }
  if (do_cancel) {
    bool cancelled = false;
    if (const ClientResult r = client.cancel(cancel_id, &cancelled); !r.ok) {
      return transport_fail("cancel", r);
    }
    std::printf("tangled_client: job %llu %s\n",
                static_cast<unsigned long long>(cancel_id),
                cancelled ? "cancelled" : "already terminal (or unknown)");
    return 0;
  }
  if (do_progress) {
    ProgressOk p;
    if (const ClientResult r = client.progress(progress_id, &p); !r.ok) {
      return transport_fail("progress", r);
    }
    if (!p.known) {
      std::printf("tangled_client: job %llu unknown\n",
                  static_cast<unsigned long long>(progress_id));
      return 1;
    }
    std::printf("tangled_client: job %llu phase=%u attempts=%u qat_ops=%llu\n",
                static_cast<unsigned long long>(progress_id), p.phase,
                p.attempts, static_cast<unsigned long long>(p.qat_ops));
    return 0;
  }

  // --- Submit path. ---
  if (program_file.empty()) {
    base.source = figure10_source();
    base.name = "figure10";
    if (expect_spec.empty()) expect_spec = "0=5,1=3";
  } else {
    std::ifstream in(program_file);
    if (!in) {
      std::fprintf(stderr, "tangled_client: cannot read %s\n",
                   program_file.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    base.source = buf.str();
    base.name = program_file;
  }
  base.expect = parse_expect(expect_spec);

  static const SimKind kKinds[] = {SimKind::kFunc,     SimKind::kMulti,
                                   SimKind::kMultiFsm, SimKind::kPipe4,
                                   SimKind::kPipe5,    SimKind::kPipe5NoFwd,
                                   SimKind::kRtl};
  std::vector<SubmitRequest> reqs;
  reqs.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i) {
    SubmitRequest req = base;
    if (!sim_fixed) req.sim = kKinds[i % std::size(kKinds)];
    req.name += std::string("/") + sim_kind_name(req.sim);
    // Deterministic per-copy keys: the same command line resubmits the
    // same keys, so a rerun after a daemon crash observes exactly-once.
    if (!idemp_prefix.empty()) {
      req.idempotency_key = idemp_prefix + "/" + std::to_string(i);
    }
    reqs.push_back(std::move(req));
  }

  std::vector<std::uint64_t> ids;
  ids.reserve(jobs);
  unsigned shed = 0;
  if (use_batch) {
    std::vector<JobSpec> specs(reqs.begin(), reqs.end());
    std::vector<SubmitBatchOk::Item> items;
    ClientResult r;
    if (!client.submit_batch(specs, &items, &r)) {
      if (r.code != WireError::kUnknownType) {
        return transport_fail("batch submit", r);
      }
      // Pre-batch server: the connection survives an unknown type, so the
      // same jobs go through one-at-a-time.
      std::fprintf(stderr,
                   "tangled_client: server predates batch submission; "
                   "falling back to per-job frames\n");
      use_batch = false;
    } else {
      for (std::size_t i = 0; i < items.size(); ++i) {
        const auto& it = items[i];
        if (it.status == SubmitBatchOk::Status::kAdmitted) {
          ids.push_back(it.id);
        } else if (it.status == SubmitBatchOk::Status::kRetry) {
          ++shed;
          std::fprintf(stderr,
                       "tangled_client: job %zu shed (retry after %u ms)\n", i,
                       it.delay_ms);
        } else {
          ++shed;
          std::fprintf(stderr, "tangled_client: job %zu rejected: %s\n", i,
                       it.message.c_str());
        }
      }
    }
  }
  if (!use_batch) {
    for (const SubmitRequest& req : reqs) {
      ClientResult r;
      const auto id = client.submit(req, &r);
      if (!id) return transport_fail("submit", r);
      ids.push_back(*id);
    }
  }
  std::printf("tangled_client: submitted %zu job(s)%s\n", ids.size(),
              use_batch ? " in one batch frame" : "");

  unsigned completed = 0, failed = 0;
  for (std::size_t got = 0; got < ids.size();) {
    ClientResult r;
    const auto rep = client.next_report(std::chrono::milliseconds{30'000}, &r);
    if (!rep) {
      if (!r.ok) return transport_fail("report stream", r);
      std::fprintf(stderr, "tangled_client: timed out waiting for reports "
                           "(%zu of %zu received)\n",
                   got, ids.size());
      return 3;
    }
    ++got;
    if (verbose) std::printf("%s\n", rep->to_string().c_str());
    if (rep->outcome == JobOutcome::kCompleted) {
      ++completed;
    } else {
      ++failed;
      std::fprintf(stderr, "tangled_client: job %llu %s\n",
                   static_cast<unsigned long long>(rep->id),
                   job_outcome_name(rep->outcome));
    }
  }
  std::printf("tangled_client: %u completed, %u failed\n", completed,
              failed + shed);
  return failed + shed == 0 ? 0 : 1;
}
