; wide_re.s — exercise the RE-compressed register file past the dense
; 2^30-bit AoB ceiling (run with: tangled_run --backend=re -w 36 -q 5).
; H(35) sets the top half of 2^36 channels; ccnot carves H(35)&H(34)
; into @6 (a quarter of the channels).
        had @5,35
        had @4,34
        zero @6
        ccnot @6,@5,@4
        next $3,@5          ; first one-channel is 2^35: truncates to 0
        sys
