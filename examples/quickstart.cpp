// quickstart — the paper's Figure 9, line for line, using the pint API.
//
// Factors 15 by multiplying two 4-pbit Hadamard superpositions (every pair
// of 4-bit values at once), comparing the 8-way-entangled product against
// 15, and non-destructively measuring the surviving values of b.
//
//   $ ./quickstart
//   pint_measure(f): 0 1 3 5 15
//
// 3 and 5 are the prime factors; 0, 1 and 15 are the artifacts Figure 9's
// caption explains (zeroed non-factors and the trivial factors).
#include <cstdio>

#include "pbp/pint.hpp"

int main() {
  using pbp::Pint;

  // 8 entanglement channels are enough: b uses H(0..3), c uses H(4..7).
  auto ctx = pbp::PbpContext::create(8, pbp::Backend::kDense);
  auto circ = std::make_shared<pbp::Circuit>(ctx);

  const Pint a = Pint::constant(circ, 4, 15);    // pint a = pint_mk(4, 15);
  const Pint b = Pint::hadamard(circ, 4, 0x0f);  // pint b = pint_h(4, 0x0f);
  const Pint c = Pint::hadamard(circ, 4, 0xf0);  // pint c = pint_h(4, 0xf0);
  const Pint d = Pint::mul(b, c);                // pint d = pint_mul(b, c);
  const Pint e = Pint::eq(d, a);                 // pint e = pint_eq(d, a);
  const Pint f = Pint::gate_by(b, e);            // pint f = pint_mul(e, b);

  std::printf("pint_measure(f):");               // pint_measure(f);
  for (const std::uint64_t v : f.measure_values()) {
    std::printf(" %llu", static_cast<unsigned long long>(v));
  }
  std::printf("\n");

  // The PBP bonus the paper stresses: measurement did not collapse anything.
  // The full distribution is still there, with exact channel counts.
  std::printf("distribution of f (value: channels of 256):\n");
  for (const auto& [value, count] : f.measure_distribution()) {
    std::printf("  %2llu: %zu\n", static_cast<unsigned long long>(value),
                count);
  }
  return 0;
}
