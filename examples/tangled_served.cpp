// tangled_served — the network daemon: a JobServer behind the hardened TCP
// front door (src/serve/net).  Binds 127.0.0.1, prints the bound port (so
// port 0 works for scripted tests), serves the framed wire protocol, and
// drains gracefully on SIGTERM/SIGINT: admissions stop, every already-
// admitted job finishes and its report is flushed to its connection, then
// the process exits 0 with a stats summary.
//
//   tangled_served --port=0 --threads=8 --queue=64
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cli_parse.hpp"
#include "serve/net/server.hpp"

using namespace tangled::serve;
using namespace tangled::serve::net;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: tangled_served [options]\n"
      "  --port=N             TCP port on 127.0.0.1; 0 = ephemeral, the\n"
      "                       bound port is printed (default 0)\n"
      "  --threads=K          worker threads (default 4)\n"
      "  --queue=N            submission queue capacity (default 64)\n"
      "  --mem-mb=N           global memory budget in MiB (default 512)\n"
      "  --retry-max=N        serve-level retries per job (default 2)\n"
      "  --submit-wait-ms=N   bounded admission wait before shedding with\n"
      "                       RETRY_AFTER; 0 = shed immediately (default 0)\n"
      "  --retry-after-ms=N   delay hint in RETRY_AFTER replies (default 25)\n"
      "  --idle-timeout-ms=N  close a quiet connection with no in-flight\n"
      "                       jobs after this long (default 60000)\n"
      "  --frame-timeout-ms=N slow-loris bound: a frame that began must\n"
      "                       complete within this (default 5000)\n"
      "  --max-frame-kb=N     reject frames larger than this (default 1024)\n"
      "  --max-inflight=N     per-connection unreported-job cap (default 64)\n"
      "  --max-conns=N        concurrent connection cap (default 256)\n"
      "  --journal=DIR        write-ahead journal: admitted jobs survive a\n"
      "                       crash (replayed + resumed at next start) and\n"
      "                       idempotency-keyed resubmits dedup onto their\n"
      "                       stored report (default: no durability)\n"
      "  --checkpoint-every=N persist a resume image every N instructions\n"
      "                       for journaled jobs that don't set their own\n"
      "                       cadence; 0 = crash restarts from scratch\n"
      "                       (default 0)\n"
      "  --stall-timeout-ms=N preempt a job whose retired-instruction\n"
      "                       heartbeat makes no progress for this long and\n"
      "                       requeue it from its newest checkpoint;\n"
      "                       0 = stall supervision off (default 0)\n"
      "  --max-preemptions=N  quarantine a job after N stall preemptions\n"
      "                       (default 3)\n"
      "  --tenant-max-queued=N    per-tenant queued-job quota; over-quota\n"
      "                       submits shed with RETRY_AFTER(tenant-quota);\n"
      "                       0 = unlimited (default 0)\n"
      "  --tenant-max-inflight=N  per-tenant running-job cap; 0 = unlimited\n"
      "                       (default 0)\n"
      "  --tenant-mem-mb=N    per-tenant memory budget in MiB; 0 = only the\n"
      "                       global budget applies (default 0)\n"
      "  --tenant-weight=T=W  weighted-fair share for tenant T (repeatable;\n"
      "                       unlisted tenants weigh 1)\n"
      "  --brownout-delay-ms=N   queue delay at which the server browns out\n"
      "                       and scales its RETRY_AFTER hints (default 500)\n"
      "  --sim-pool=N         per-worker simulator cache entries: jobs reuse\n"
      "                       a reset simulator instead of constructing one;\n"
      "                       0 = cold-construct per job (default 8)\n"
      "  --chunk-shards=N     share N RE chunk-pool stripes across eligible\n"
      "                       compressed-backend jobs; 0 = a private pool\n"
      "                       per job (default 0)\n"
      "  --stats-json         print the drain summary as one JSON line\n"
      "                       instead of prose\n");
}

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

[[noreturn]] void bad_value(const std::string& v, const char* flag) {
  std::fprintf(stderr, "tangled_served: invalid value '%s' for %s\n",
               v.c_str(), flag);
  usage();
  std::exit(2);
}

unsigned parse_small(const std::string& v, const char* flag,
                     unsigned max = ~0u) {
  const auto r = cli::parse_unsigned(v, max);
  if (!r) bad_value(v, flag);
  return *r;
}

}  // namespace

int main(int argc, char** argv) {
  NetServerConfig config;
  bool stats_json = false;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--port", &v)) {
      config.port = static_cast<std::uint16_t>(parse_small(v, "--port", 65535));
    } else if (parse_flag(argv[i], "--threads", &v)) {
      config.jobs.threads = parse_small(v, "--threads");
    } else if (parse_flag(argv[i], "--queue", &v)) {
      config.jobs.queue_capacity = parse_small(v, "--queue");
    } else if (parse_flag(argv[i], "--mem-mb", &v)) {
      config.jobs.memory_budget_bytes =
          std::size_t{parse_small(v, "--mem-mb")} << 20;
    } else if (parse_flag(argv[i], "--retry-max", &v)) {
      config.jobs.retry_max = parse_small(v, "--retry-max");
    } else if (parse_flag(argv[i], "--submit-wait-ms", &v)) {
      config.submit_wait =
          std::chrono::milliseconds(parse_small(v, "--submit-wait-ms"));
    } else if (parse_flag(argv[i], "--retry-after-ms", &v)) {
      config.retry_after_ms = parse_small(v, "--retry-after-ms");
    } else if (parse_flag(argv[i], "--idle-timeout-ms", &v)) {
      config.idle_timeout =
          std::chrono::milliseconds(parse_small(v, "--idle-timeout-ms"));
    } else if (parse_flag(argv[i], "--frame-timeout-ms", &v)) {
      config.frame_timeout =
          std::chrono::milliseconds(parse_small(v, "--frame-timeout-ms"));
    } else if (parse_flag(argv[i], "--max-frame-kb", &v)) {
      config.max_frame_bytes =
          std::size_t{parse_small(v, "--max-frame-kb")} << 10;
    } else if (parse_flag(argv[i], "--max-inflight", &v)) {
      config.max_inflight_per_conn = parse_small(v, "--max-inflight");
    } else if (parse_flag(argv[i], "--max-conns", &v)) {
      config.max_connections = parse_small(v, "--max-conns");
    } else if (parse_flag(argv[i], "--journal", &v)) {
      if (v.empty()) bad_value(v, "--journal");
      config.jobs.journal_dir = v;
    } else if (parse_flag(argv[i], "--checkpoint-every", &v)) {
      const auto n = cli::parse_u64(v);
      if (!n) bad_value(v, "--checkpoint-every");
      config.jobs.checkpoint_every_default = *n;
    } else if (parse_flag(argv[i], "--stall-timeout-ms", &v)) {
      config.jobs.stall_timeout =
          std::chrono::milliseconds(parse_small(v, "--stall-timeout-ms"));
    } else if (parse_flag(argv[i], "--max-preemptions", &v)) {
      config.jobs.max_preemptions = parse_small(v, "--max-preemptions");
    } else if (parse_flag(argv[i], "--tenant-max-queued", &v)) {
      config.jobs.tenant_max_queued = parse_small(v, "--tenant-max-queued");
    } else if (parse_flag(argv[i], "--tenant-max-inflight", &v)) {
      config.jobs.tenant_max_inflight = parse_small(v, "--tenant-max-inflight");
    } else if (parse_flag(argv[i], "--tenant-mem-mb", &v)) {
      config.jobs.tenant_memory_budget_bytes =
          std::size_t{parse_small(v, "--tenant-mem-mb")} << 20;
    } else if (parse_flag(argv[i], "--tenant-weight", &v)) {
      const auto eq = v.rfind('=');
      if (eq == std::string::npos || eq == 0) bad_value(v, "--tenant-weight");
      const unsigned w = parse_small(v.substr(eq + 1), "--tenant-weight");
      if (w == 0) bad_value(v, "--tenant-weight");
      config.jobs.tenant_weights.emplace_back(v.substr(0, eq), w);
    } else if (parse_flag(argv[i], "--brownout-delay-ms", &v)) {
      config.jobs.brownout_queue_delay =
          std::chrono::milliseconds(parse_small(v, "--brownout-delay-ms"));
    } else if (parse_flag(argv[i], "--sim-pool", &v)) {
      config.jobs.sim_pool = parse_small(v, "--sim-pool");
    } else if (parse_flag(argv[i], "--chunk-shards", &v)) {
      config.jobs.chunk_shards = parse_small(v, "--chunk-shards");
    } else if (std::string(argv[i]) == "--stats-json") {
      stats_json = true;
    } else {
      usage();
      return 2;
    }
  }

  // The JobServer constructor replays the journal and throws when the
  // directory is unusable — surface that as a startup error, not a crash.
  std::unique_ptr<NetServer> server_holder;
  try {
    server_holder = std::make_unique<NetServer>(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tangled_served: startup failed: %s\n", e.what());
    return 1;
  }
  NetServer& server = *server_holder;
  if (!server.ok()) {
    std::fprintf(stderr, "tangled_served: bind failed: %s\n",
                 server.error().c_str());
    return 1;
  }
  server.install_signal_drain();
  std::printf("tangled_served: listening on 127.0.0.1:%u\n", server.port());
  if (!config.jobs.journal_dir.empty()) {
    const ServerStats rs = server.jobs().stats();
    std::printf(
        "tangled_served: journal %s: %llu segment(s) replayed, "
        "%llu job(s) recovered\n",
        config.jobs.journal_dir.c_str(),
        static_cast<unsigned long long>(rs.journal_replays),
        static_cast<unsigned long long>(rs.jobs_recovered));
  }
  std::fflush(stdout);

  // Block until SIGTERM/SIGINT begins the drain, then until every admitted
  // job's report has been flushed.
  server.wait_drained();

  const ServerStats js = server.jobs().stats();
  const NetStats ns = server.net_stats();
  if (stats_json) {
    // One machine-readable line so a harness can scrape the drain summary
    // without parsing prose.
    std::printf(
        "{\"submitted\":%llu,\"completed\":%llu,\"quarantined\":%llu,"
        "\"cancelled\":%llu,\"retries\":%llu,\"stalls_detected\":%llu,"
        "\"preemptions\":%llu,\"stall_quarantines\":%llu,"
        "\"tenant_sheds\":%llu,\"health\":\"%s\",\"jobs_recovered\":%llu,"
        "\"reports_deduped\":%llu,\"conns\":%llu,\"frames_rx\":%llu,"
        "\"frames_tx\":%llu,\"protocol_errors\":%llu,"
        "\"reports_streamed\":%llu,\"reports_orphaned\":%llu}\n",
        static_cast<unsigned long long>(js.submitted),
        static_cast<unsigned long long>(js.completed),
        static_cast<unsigned long long>(js.quarantined),
        static_cast<unsigned long long>(js.cancelled),
        static_cast<unsigned long long>(js.retries),
        static_cast<unsigned long long>(js.stalls_detected),
        static_cast<unsigned long long>(js.preemptions),
        static_cast<unsigned long long>(js.stall_quarantines),
        static_cast<unsigned long long>(js.tenant_sheds),
        health_state_name(static_cast<HealthState>(js.health)),
        static_cast<unsigned long long>(js.jobs_recovered),
        static_cast<unsigned long long>(js.reports_deduped),
        static_cast<unsigned long long>(ns.connections_accepted),
        static_cast<unsigned long long>(ns.frames_rx),
        static_cast<unsigned long long>(ns.frames_tx),
        static_cast<unsigned long long>(ns.protocol_errors),
        static_cast<unsigned long long>(ns.reports_streamed),
        static_cast<unsigned long long>(ns.reports_orphaned));
    return 0;
  }
  std::printf(
      "tangled_served: drained; %llu submitted, %llu completed, "
      "%llu quarantined, %llu cancelled\n",
      static_cast<unsigned long long>(js.submitted),
      static_cast<unsigned long long>(js.completed),
      static_cast<unsigned long long>(js.quarantined),
      static_cast<unsigned long long>(js.cancelled));
  std::printf(
      "tangled_served: %llu conns, %llu frames in, %llu out, "
      "%llu protocol errors, %llu reports streamed (%llu orphaned)\n",
      static_cast<unsigned long long>(ns.connections_accepted),
      static_cast<unsigned long long>(ns.frames_rx),
      static_cast<unsigned long long>(ns.frames_tx),
      static_cast<unsigned long long>(ns.protocol_errors),
      static_cast<unsigned long long>(ns.reports_streamed),
      static_cast<unsigned long long>(ns.reports_orphaned));
  return 0;
}
