// tangled_run — command-line assembler / disassembler / runner.
//
//   tangled_run prog.s                     assemble + run (5-stage pipeline)
//   tangled_run -s func prog.s             single-cycle model
//   tangled_run -s multi prog.s            multi-cycle model (accounting)
//   tangled_run -s multi-fsm prog.s        multi-cycle model (explicit FSM)
//   tangled_run -s pipe4 prog.s            4-stage pipeline
//   tangled_run -s pipe5-nofwd prog.s      5-stage, forwarding disabled
//   tangled_run -s rtl prog.s              latch-level 5-stage pipeline
//   tangled_run -t prog.s                  print the pipeline diagram (rtl)
//   tangled_run -w 16 prog.s               16-way Qat (default 8)
//   tangled_run --backend=re prog.s        RE-compressed Qat register file
//   tangled_run -b re -w 36 prog.s         compressed registers past the
//                                          dense 2^30-bit limit
//   tangled_run -d prog.s                  disassemble only
//   tangled_run -m 5000000 prog.s          instruction limit
//   tangled_run -q 80 prog.s               also dump Qat register @80
//   tangled_run -c prog.s                  report unexecuted instructions
//   tangled_run --max-cycles=100000 prog.s watchdog: trap if still running
//   tangled_run --inject=seed=7,events=4 prog.s   seeded fault injection
//   tangled_run --checkpoint-every=500 prog.s     periodic checkpoints with
//                                          rollback recovery (SimBase models)
//   tangled_run --ecc=correct prog.s       SECDED over Qat + data memory
//                                          (off | detect | correct)
//   tangled_run --ecc-epoch=25 prog.s      verification epoch: skip
//                                          re-verifying unwritten state for
//                                          N retired instructions (default 1
//                                          = verify every access)
//   tangled_run --scrub-every=1000 prog.s  background scrub cadence, in
//                                          retired instructions
//   tangled_run --qat-threads=4 -w 24 prog.s   shard wide dense Qat
//                                          registers (ways >= 20) across
//                                          worker threads
//
// Reads from stdin when the file is "-".  Exit codes:
//   0  program halted cleanly (sys)
//   1  assembly / configuration error
//   2  bad usage
//   3  instruction limit reached without halting
//   4  the machine trapped (illegal instruction, Qat fault, watchdog, ...)
//   5  uncorrectable data corruption (ECC detected an upset it could not
//      repair; the affected instruction did not commit)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arch/multicycle_fsm.hpp"
#include "arch/recovery.hpp"
#include "arch/rtl_pipeline.hpp"
#include "arch/simulators.hpp"
#include "asm/assembler.hpp"
#include "cli_parse.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: tangled_run [-s func|multi|pipe4|pipe5|pipe5-nofwd] "
               "[-b dense|re] [--backend=dense|re] [-w ways] [-m max] "
               "[--max-cycles=N] [--inject=seed=N,events=N,horizon=N,pool=N] "
               "[--checkpoint-every=N] [--ecc=off|detect|correct] "
               "[--ecc-epoch=N] [--scrub-every=N] [--qat-threads=N] "
               "[-d] [-q reg]... file.s|-\n");
}

const char* status_text(const tangled::SimStats& st) {
  if (st.trap) return "TRAPPED";
  return st.halted ? "halted (sys)" : "INSTRUCTION LIMIT REACHED";
}

int exit_code(const tangled::SimStats& st) {
  if (st.trap) {
    return st.trap.kind == tangled::TrapKind::kDataCorruption ? 5 : 4;
  }
  return st.halted ? 0 : 3;
}

/// Printed after the stats line whenever the machine trapped.
void report_trap(const tangled::SimStats& st) {
  if (st.trap) {
    std::printf("trap: %s at pc=%u\n",
                tangled::trap_kind_name(st.trap.kind), st.trap.pc);
  }
}

/// Printed whenever ECC is on: corrected / detected upset tallies across the
/// Qat register file and Tangled data memory, plus scrub sweeps run and the
/// verification-scheduling counters (words swept / verifies elided).
template <typename Sim>
void report_ecc(Sim& sim, pbp::EccMode mode) {
  if (mode == pbp::EccMode::kOff) return;
  sim.qat().drain_ecc();  // flush pending access-path tallies into stats
  const auto qs = sim.qat().stats_snapshot();
  std::printf("ecc: %llu corrected, %llu detected, %llu scrub sweep(s)\n",
              static_cast<unsigned long long>(qs.ecc_corrected +
                                              sim.memory().ecc_corrected()),
              static_cast<unsigned long long>(qs.ecc_detected +
                                              sim.memory().ecc_detected()),
              static_cast<unsigned long long>(qs.ecc_scrubs));
  std::printf("ecc: %llu words verified, %llu verifies elided\n",
              static_cast<unsigned long long>(
                  qs.ecc_words_verified + sim.memory().ecc_words_verified()),
              static_cast<unsigned long long>(
                  qs.ecc_verifies_elided +
                  sim.memory().ecc_verifies_elided()));
}

}  // namespace

namespace {
int run_main(int argc, char** argv);
}

int main(int argc, char** argv) {
  // Backend/ways validation throws (e.g. dense ways > 30, re ways > 40):
  // surface those as CLI errors, not std::terminate.
  try {
    return run_main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tangled_run: %s\n", e.what());
    return 1;
  }
}

namespace {
int run_main(int argc, char** argv) {
  using namespace tangled;

  std::string sim_kind = "pipe5";
  pbp::Backend backend = pbp::Backend::kDense;
  std::string backend_name = "dense";
  unsigned ways = 8;
  std::uint64_t max_instructions = 10'000'000;
  std::uint64_t max_cycles = 0;
  std::uint64_t checkpoint_every = 0;
  pbp::EccMode ecc_mode = pbp::EccMode::kOff;
  std::uint64_t ecc_epoch = 1;
  std::uint64_t scrub_every = 0;
  unsigned qat_threads = 1;
  std::string inject_spec;
  bool disassemble_only = false;
  bool pipeline_diagram = false;
  bool coverage = false;
  std::vector<unsigned> dump_qregs;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_arg = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    // Strict numeric parse: reject non-numeric / out-of-range values with a
    // usage error instead of silently reading them as 0 (exit code 2).
    auto parse_num = [&](const std::string& value,
                         const char* flag) -> std::uint64_t {
      const auto v = cli::parse_u64(value);
      if (!v) {
        std::fprintf(stderr, "tangled_run: invalid value '%s' for %s\n",
                     value.c_str(), flag);
        usage();
        std::exit(2);
      }
      return *v;
    };
    auto parse_small = [&](const std::string& value,
                           const char* flag) -> unsigned {
      const auto v = cli::parse_unsigned(value);
      if (!v) {
        std::fprintf(stderr, "tangled_run: invalid value '%s' for %s\n",
                     value.c_str(), flag);
        usage();
        std::exit(2);
      }
      return *v;
    };
    auto set_backend = [&](const std::string& name) {
      backend_name = name;
      if (name == "dense") {
        backend = pbp::Backend::kDense;
      } else if (name == "re") {
        backend = pbp::Backend::kCompressed;
      } else {
        usage();
        std::exit(2);
      }
    };
    if (arg == "-s") {
      sim_kind = next_arg();
    } else if (arg == "-b") {
      set_backend(next_arg());
    } else if (arg.rfind("--backend=", 0) == 0) {
      set_backend(arg.substr(10));
    } else if (arg == "-w") {
      ways = parse_small(next_arg(), "-w");
    } else if (arg == "-m") {
      max_instructions = parse_num(next_arg(), "-m");
    } else if (arg.rfind("--max-cycles=", 0) == 0) {
      max_cycles = parse_num(arg.substr(13), "--max-cycles");
    } else if (arg.rfind("--inject=", 0) == 0) {
      inject_spec = arg.substr(9);
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      checkpoint_every = parse_num(arg.substr(19), "--checkpoint-every");
    } else if (arg.rfind("--ecc=", 0) == 0) {
      const std::string mode = arg.substr(6);
      if (mode == "off") {
        ecc_mode = pbp::EccMode::kOff;
      } else if (mode == "detect") {
        ecc_mode = pbp::EccMode::kDetect;
      } else if (mode == "correct") {
        ecc_mode = pbp::EccMode::kCorrect;
      } else {
        usage();
        return 2;
      }
    } else if (arg.rfind("--ecc-epoch=", 0) == 0) {
      ecc_epoch = parse_num(arg.substr(12), "--ecc-epoch");
    } else if (arg.rfind("--scrub-every=", 0) == 0) {
      scrub_every = parse_num(arg.substr(14), "--scrub-every");
    } else if (arg.rfind("--qat-threads=", 0) == 0) {
      qat_threads = parse_small(arg.substr(14), "--qat-threads");
    } else if (arg == "-d") {
      disassemble_only = true;
    } else if (arg == "-t") {
      pipeline_diagram = true;
      sim_kind = "rtl";
    } else if (arg == "-c") {
      coverage = true;
      if (sim_kind == "rtl") sim_kind = "pipe5";  // coverage lives in SimBase
    } else if (arg == "-q") {
      dump_qregs.push_back(parse_small(next_arg(), "-q"));
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::string source;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "tangled_run: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  Program program;
  try {
    program = assemble(source, path == "-" ? "<stdin>" : path);
  } catch (const AsmError& e) {
    std::fprintf(stderr, "tangled_run: %s\n", e.what());
    return 1;
  }

  if (disassemble_only) {
    std::fputs(disassemble_words(program.words).c_str(), stdout);
    return 0;
  }

  if (checkpoint_every != 0 && sim_kind != "func" && sim_kind != "multi" &&
      sim_kind.rfind("pipe", 0) != 0) {
    std::fprintf(stderr,
                 "tangled_run: --checkpoint-every needs -s func|multi|pipe* "
                 "(the instruction-atomic models)\n");
    return 2;
  }

  if (sim_kind == "multi-fsm") {
    MultiCycleFsmSim sim(ways, backend);
    sim.load(program);
    if (!inject_spec.empty()) {
      sim.set_fault_plan(FaultPlan::parse(inject_spec, ways));
    }
    sim.set_max_cycles(max_cycles);
    sim.set_ecc_mode(ecc_mode);
    sim.set_ecc_epoch(ecc_epoch);
    sim.set_scrub_every(scrub_every);
    sim.set_qat_threads(qat_threads);
    const SimStats st = sim.run(max_instructions);
    if (!sim.console().empty()) std::fputs(sim.console().c_str(), stdout);
    std::printf("== multi-fsm (explicit state machine), %u-way %s Qat ==\n",
                ways, backend_name.c_str());
    for (unsigned r = 0; r < kNumRegs; ++r) {
      std::printf("%-4s= %5u (0x%04x)%s", reg_name(r).c_str(),
                  sim.cpu().reg(r), sim.cpu().reg(r),
                  (r % 4 == 3) ? "\n" : "   ");
    }
    std::printf(
        "%llu instructions, %llu cycles, CPI %.3f | states: F %llu F2 %llu "
        "D %llu X %llu M %llu W %llu | %s\n",
        static_cast<unsigned long long>(st.instructions),
        static_cast<unsigned long long>(st.cycles), st.cpi(),
        static_cast<unsigned long long>(sim.state_cycles(McState::kFetch)),
        static_cast<unsigned long long>(sim.state_cycles(McState::kFetch2)),
        static_cast<unsigned long long>(sim.state_cycles(McState::kDecode)),
        static_cast<unsigned long long>(sim.state_cycles(McState::kEx)),
        static_cast<unsigned long long>(sim.state_cycles(McState::kMem)),
        static_cast<unsigned long long>(sim.state_cycles(McState::kWb)),
        status_text(st));
    report_trap(st);
    report_ecc(sim, ecc_mode);
    return exit_code(st);
  }

  if (sim_kind == "rtl") {
    RtlPipelineSim sim(ways, backend);
    sim.enable_trace(pipeline_diagram);
    sim.load(program);
    if (!inject_spec.empty()) {
      sim.set_fault_plan(FaultPlan::parse(inject_spec, ways));
    }
    sim.set_max_cycles(max_cycles);
    sim.set_ecc_mode(ecc_mode);
    sim.set_ecc_epoch(ecc_epoch);
    sim.set_scrub_every(scrub_every);
    sim.set_qat_threads(qat_threads);
    const SimStats st = sim.run(max_instructions);
    if (pipeline_diagram) std::fputs(sim.diagram().c_str(), stdout);
    std::printf("== rtl (latch-level 5-stage), %u-way %s Qat ==\n", ways,
                backend_name.c_str());
    for (unsigned r = 0; r < kNumRegs; ++r) {
      std::printf("%-4s= %5u (0x%04x)%s", reg_name(r).c_str(),
                  sim.cpu().reg(r), sim.cpu().reg(r),
                  (r % 4 == 3) ? "\n" : "   ");
    }
    for (const unsigned qr : dump_qregs) {
      std::printf("@%u = %s (pop %zu of %zu)\n", qr,
                  sim.qat().reg_string(qr).c_str(), sim.qat().reg_popcount(qr),
                  sim.qat().channels());
    }
    std::printf(
        "%llu instructions, %llu cycles, CPI %.3f | stalls %llu, flushes "
        "%llu, extra fetches %llu | %s\n",
        static_cast<unsigned long long>(st.instructions),
        static_cast<unsigned long long>(st.cycles), st.cpi(),
        static_cast<unsigned long long>(st.data_stall_cycles),
        static_cast<unsigned long long>(st.flush_cycles),
        static_cast<unsigned long long>(st.fetch_extra_cycles),
        status_text(st));
    report_trap(st);
    report_ecc(sim, ecc_mode);
    return exit_code(st);
  }

  std::unique_ptr<SimBase> sim;
  if (sim_kind == "func") {
    sim = std::make_unique<FunctionalSim>(ways, backend);
  } else if (sim_kind == "multi") {
    sim = std::make_unique<MultiCycleSim>(ways, backend);
  } else if (sim_kind == "pipe4") {
    sim = std::make_unique<PipelineSim>(
        ways, PipelineConfig{.stages = 4, .forwarding = true}, backend);
  } else if (sim_kind == "pipe5") {
    sim = std::make_unique<PipelineSim>(
        ways, PipelineConfig{.stages = 5, .forwarding = true}, backend);
  } else if (sim_kind == "pipe5-nofwd") {
    sim = std::make_unique<PipelineSim>(
        ways, PipelineConfig{.stages = 5, .forwarding = false}, backend);
  } else {
    usage();
    return 2;
  }

  sim->load(program);
  if (!inject_spec.empty()) {
    sim->set_fault_plan(FaultPlan::parse(inject_spec, ways));
  }
  sim->set_max_cycles(max_cycles);
  sim->set_ecc_mode(ecc_mode);
  sim->set_ecc_epoch(ecc_epoch);
  sim->set_scrub_every(scrub_every);
  sim->set_qat_threads(qat_threads);

  if (checkpoint_every != 0) {
    // Periodic-checkpoint driver: snapshot every N instructions, roll back
    // and resume when a slice ends in a trap.
    CheckpointingRunner<SimBase> runner(*sim, checkpoint_every);
    const RecoveryStats rs = runner.run(
        max_instructions, [](const SimBase&) { return true; });
    for (unsigned r = 0; r < kNumRegs; ++r) {
      std::printf("%-4s= %5u (0x%04x)%s", reg_name(r).c_str(),
                  sim->cpu().reg(r), sim->cpu().reg(r),
                  (r % 4 == 3) ? "\n" : "   ");
    }
    if (!sim->console().empty()) std::fputs(sim->console().c_str(), stdout);
    std::printf(
        "recovery: %llu instructions (re-execution included), %llu "
        "checkpoints, %llu rollbacks, %llu restarts | %s\n",
        static_cast<unsigned long long>(rs.instructions),
        static_cast<unsigned long long>(rs.checkpoints_taken),
        static_cast<unsigned long long>(rs.rollbacks),
        static_cast<unsigned long long>(rs.restarts),
        rs.gave_up ? "GAVE UP"
                   : (rs.halted ? "halted (sys)"
                                : "INSTRUCTION LIMIT REACHED"));
    if (rs.final_trap) {
      std::printf("trap: %s at pc=%u\n",
                  trap_kind_name(rs.final_trap.kind), rs.final_trap.pc);
    }
    report_ecc(*sim, ecc_mode);
    if (rs.gave_up || rs.final_trap) {
      return rs.final_trap.kind == TrapKind::kDataCorruption ? 5 : 4;
    }
    return rs.halted ? 0 : 3;
  }

  const SimStats st = sim->run(max_instructions);

  if (coverage) {
    // The course's Covered-style discipline (§4): report instruction
    // addresses this run never reached.
    const auto dead =
        sim->unexecuted(static_cast<std::uint16_t>(program.words.size()));
    if (dead.empty()) {
      std::printf("coverage: 100%% of instruction addresses executed\n");
    } else {
      std::printf("coverage: %zu unexecuted instruction(s):\n", dead.size());
      for (const auto pc : dead) {
        const std::uint16_t w0 = sim->memory().read(pc);
        const std::uint16_t w1 =
            sim->memory().read(static_cast<std::uint16_t>(pc + 1));
        std::printf("  %u:\t%s\n", pc, disassemble(decode(w0, w1).instr).c_str());
      }
    }
  }

  std::printf("== %s, %u-way %s Qat ==\n", sim_kind.c_str(), ways,
              backend_name.c_str());
  for (unsigned r = 0; r < kNumRegs; ++r) {
    std::printf("%-4s= %5u (0x%04x)%s", reg_name(r).c_str(),
                sim->cpu().reg(r), sim->cpu().reg(r),
                (r % 4 == 3) ? "\n" : "   ");
  }
  for (const unsigned qr : dump_qregs) {
    std::printf("@%u = %s (pop %zu of %zu)\n", qr,
                sim->qat().reg_string(qr).c_str(), sim->qat().reg_popcount(qr),
                sim->qat().channels());
  }
  std::printf(
      "%llu instructions, %llu cycles, CPI %.3f | stalls %llu, flushes %llu, "
      "extra fetches %llu | %s\n",
      static_cast<unsigned long long>(st.instructions),
      static_cast<unsigned long long>(st.cycles), st.cpi(),
      static_cast<unsigned long long>(st.data_stall_cycles),
      static_cast<unsigned long long>(st.flush_cycles),
      static_cast<unsigned long long>(st.fetch_extra_cycles),
      status_text(st));
  report_trap(st);
  report_ecc(*sim, ecc_mode);
  return exit_code(st);
}
}  // namespace
