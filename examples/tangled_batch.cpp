// tangled_batch — batch front end for the concurrent job service
// (src/serve): submits a fleet of Figure 10 factoring jobs across every
// simulator model, optionally poisoning a fraction of them with injected
// faults, and verifies the server's exactly-once reporting contract before
// printing a summary.
//
//   tangled_batch --jobs=64 --threads=8 --inject-frac=0.25
//
// The poison plan flips a bit of $0 late in the run (retired instruction
// 85 of 91), after the last checkpoint, so a poisoned job CANNOT complete
// by luck: it either recovers through the checkpointing runner / a serve
// retry (validate catches the wrong answer) or quarantines with a trap.
// With --ecc on, the poison is instead a raw storage upset beneath the Qat
// register file — invisible to validate until read — so the integrity
// layer itself must catch it: detect raises a corruption trap and rolls
// back; correct repairs in place (reported in the ecc summary line).
// The binary exits non-zero if any report is lost or duplicated, or if a
// poisoned job completed without recovering (or, under ecc=correct,
// without a counted repair).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "asm/programs.hpp"
#include "cli_parse.hpp"
#include "serve/job_server.hpp"

using namespace tangled;
using namespace tangled::serve;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: tangled_batch [options]\n"
      "  --jobs=N         jobs to submit (default 64)\n"
      "  --threads=K      worker threads (default 8)\n"
      "  --deadline-ms=N  per-job wall-clock deadline, 0 = none (default 0)\n"
      "  --inject-frac=F  fraction of jobs given a poison fault plan\n"
      "                   (default 0.25)\n"
      "  --retry-max=N    serve-level retries after the runner gives up\n"
      "                   (default 2)\n"
      "  --backend=B      dense | re (default dense)\n"
      "  --ways=N         Qat ways per job (default 8)\n"
      "  --queue=N        submission queue capacity (default 32)\n"
      "  --mem-mb=N       global memory budget in MiB (default 256)\n"
      "  --ecc=M          off | detect | correct: SECDED over Qat + data\n"
      "                   memory for every job (default off)\n"
      "  --ecc-epoch=N    verification epoch in retired instructions\n"
      "                   (default 1 = verify every access)\n"
      "  --scrub-every=N  background scrub cadence in retired instructions\n"
      "                   (default 0 = off)\n"
      "  --qat-threads=N  intra-register worker threads for wide dense Qat\n"
      "                   registers (ways >= 20; default 1)\n"
      "  --verbose        print every job report\n");
}

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

/// Strict-parse failure: report the bad value and exit with the documented
/// bad-usage code instead of letting std::stoul throw (or accept garbage).
[[noreturn]] void bad_value(const std::string& v, const char* flag) {
  std::fprintf(stderr, "tangled_batch: invalid value '%s' for %s\n", v.c_str(),
               flag);
  usage();
  std::exit(2);
}

unsigned parse_small(const std::string& v, const char* flag) {
  const auto r = cli::parse_unsigned(v);
  if (!r) bad_value(v, flag);
  return *r;
}

std::uint64_t parse_num(const std::string& v, const char* flag) {
  const auto r = cli::parse_u64(v);
  if (!r) bad_value(v, flag);
  return *r;
}

bool factors_ok(const CpuState& cpu) {
  return cpu.regs[0] == 5 && cpu.regs[1] == 3;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = 64;
  unsigned threads = 8;
  unsigned deadline_ms = 0;
  double inject_frac = 0.25;
  int retry_max = 2;
  unsigned ways = 8;
  unsigned queue = 32;
  unsigned mem_mb = 256;
  pbp::Backend backend = pbp::Backend::kDense;
  pbp::EccMode ecc = pbp::EccMode::kOff;
  std::uint64_t ecc_epoch = 1;
  std::uint64_t scrub_every = 0;
  unsigned qat_threads = 1;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--jobs", &v)) {
      jobs = parse_small(v, "--jobs");
    } else if (parse_flag(argv[i], "--threads", &v)) {
      threads = parse_small(v, "--threads");
    } else if (parse_flag(argv[i], "--deadline-ms", &v)) {
      deadline_ms = parse_small(v, "--deadline-ms");
    } else if (parse_flag(argv[i], "--inject-frac", &v)) {
      const auto f = cli::parse_double(v);
      if (!f) bad_value(v, "--inject-frac");
      inject_frac = *f;
    } else if (parse_flag(argv[i], "--retry-max", &v)) {
      const auto r = cli::parse_int(v);
      if (!r) bad_value(v, "--retry-max");
      retry_max = *r;
    } else if (parse_flag(argv[i], "--ways", &v)) {
      ways = parse_small(v, "--ways");
    } else if (parse_flag(argv[i], "--queue", &v)) {
      queue = parse_small(v, "--queue");
    } else if (parse_flag(argv[i], "--mem-mb", &v)) {
      mem_mb = parse_small(v, "--mem-mb");
    } else if (parse_flag(argv[i], "--backend", &v)) {
      if (v == "dense") {
        backend = pbp::Backend::kDense;
      } else if (v == "re" || v == "compressed") {
        backend = pbp::Backend::kCompressed;
      } else {
        usage();
        return 2;
      }
    } else if (parse_flag(argv[i], "--ecc", &v)) {
      if (v == "off") {
        ecc = pbp::EccMode::kOff;
      } else if (v == "detect") {
        ecc = pbp::EccMode::kDetect;
      } else if (v == "correct") {
        ecc = pbp::EccMode::kCorrect;
      } else {
        usage();
        return 2;
      }
    } else if (parse_flag(argv[i], "--ecc-epoch", &v)) {
      ecc_epoch = parse_num(v, "--ecc-epoch");
    } else if (parse_flag(argv[i], "--scrub-every", &v)) {
      scrub_every = parse_num(v, "--scrub-every");
    } else if (parse_flag(argv[i], "--qat-threads", &v)) {
      qat_threads = parse_small(v, "--qat-threads");
    } else if (std::string(argv[i]) == "--verbose") {
      verbose = true;
    } else {
      usage();
      return 2;
    }
  }
  if (inject_frac < 0.0 || inject_frac > 1.0) {
    std::fprintf(stderr, "tangled_batch: --inject-frac must be in [0,1]\n");
    return 2;
  }

  const Program fig10 = assemble(figure10_source());
  static const SimKind kKinds[] = {SimKind::kFunc,  SimKind::kMulti,
                                   SimKind::kMultiFsm, SimKind::kPipe4,
                                   SimKind::kPipe5, SimKind::kPipe5NoFwd,
                                   SimKind::kRtl};

  JobServerConfig config;
  config.threads = threads;
  config.queue_capacity = queue;
  config.memory_budget_bytes = std::size_t{mem_mb} << 20;
  config.retry_max = retry_max < 0 ? 0 : static_cast<unsigned>(retry_max);
  config.default_deadline = std::chrono::milliseconds(deadline_ms);
  JobServer server(config);

  // Poison: flip bit 1 of $0 ($0 5 -> 7) at retired instruction 85, past
  // the last 25-instruction checkpoint of the 91-instruction program.  The
  // retired-instruction clock never rewinds, so re-execution after the
  // rollback is fault-free and converges on the right factors.
  const unsigned poisoned =
      static_cast<unsigned>(static_cast<double>(jobs) * inject_frac + 0.5);
  std::set<std::uint64_t> poisoned_ids;
  std::vector<JobServer::JobId> ids;
  ids.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i) {
    Job j;
    j.sim = kKinds[i % std::size(kKinds)];
    j.backend = backend;
    j.ways = ways;
    j.program = fig10;
    j.max_instructions = 20'000;
    j.checkpoint_every = 25;
    j.ecc = ecc;
    j.ecc_epoch = ecc_epoch;
    j.scrub_every = scrub_every;
    j.qat_threads = qat_threads;
    j.validate = factors_ok;
    const bool poison = i < poisoned;
    j.name = std::string(sim_kind_name(j.sim)) + (poison ? "/poisoned" : "");
    if (poison) {
      FaultEvent ev;
      if (ecc != pbp::EccMode::kOff) {
        ev.target = FaultEvent::Target::kQatStorage;
        ev.at_instr = 85;
        ev.addr = 2;
        ev.channel = 5;
      } else {
        ev.target = FaultEvent::Target::kHostReg;
        ev.at_instr = 85;
        ev.addr = 0;
        ev.bit = 1;
      }
      j.fault_plan.events.push_back(ev);
    }
    const auto id = server.submit(std::move(j));
    if (!id) {
      std::fprintf(stderr, "tangled_batch: submission %u refused\n", i);
      return 1;
    }
    ids.push_back(*id);
    if (poison) poisoned_ids.insert(*id);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<JobReport> reports = server.wait_all();
  server.shutdown(true);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  // --- Verify the exactly-once contract and the recovery contract. ---
  int violations = 0;
  std::set<std::uint64_t> seen;
  for (const auto& r : reports) {
    if (!seen.insert(r.id).second) {
      std::fprintf(stderr, "DUPLICATE report for job %llu\n",
                   static_cast<unsigned long long>(r.id));
      ++violations;
    }
  }
  for (const auto id : ids) {
    if (!seen.count(id)) {
      std::fprintf(stderr, "LOST report for job %llu\n",
                   static_cast<unsigned long long>(id));
      ++violations;
    }
  }
  std::map<JobOutcome, unsigned> by_outcome;
  std::uint64_t total_retries = 0;
  std::uint64_t total_migrations = 0;
  std::uint64_t total_corrected = 0;
  std::uint64_t total_detected = 0;
  unsigned recovered = 0;
  for (const auto& r : reports) {
    ++by_outcome[r.outcome];
    total_retries += r.retries;
    total_migrations += r.backend_migrations;
    total_corrected += r.ecc_corrected;
    total_detected += r.ecc_detected;
    if (r.recovered) ++recovered;
    if (verbose) std::printf("%s\n", r.to_string().c_str());
    if (poisoned_ids.count(r.id)) {
      const bool recovered_ok =
          r.outcome == JobOutcome::kCompleted &&
          (r.retries > 0 || r.ecc_corrected > 0);
      const bool quarantined_ok = r.outcome == JobOutcome::kQuarantined;
      const bool stopped_ok = r.outcome == JobOutcome::kDeadlineExpired ||
                              r.outcome == JobOutcome::kCancelled;
      if (!recovered_ok && !quarantined_ok && !stopped_ok) {
        std::fprintf(stderr,
                     "POISONED job neither recovered nor quarantined: %s\n",
                     r.to_string().c_str());
        ++violations;
      }
    }
  }

  const ServerStats s = server.stats();
  std::printf("tangled_batch: %zu jobs on %u threads in %.1f ms "
              "(%.1f jobs/s)\n",
              reports.size(), threads, wall_ms,
              wall_ms > 0 ? 1000.0 * static_cast<double>(reports.size()) /
                                wall_ms
                          : 0.0);
  std::printf("  completed %u, quarantined %u, deadline-expired %u, "
              "cancelled %u, rejected %u, errors %u\n",
              by_outcome[JobOutcome::kCompleted],
              by_outcome[JobOutcome::kQuarantined],
              by_outcome[JobOutcome::kDeadlineExpired],
              by_outcome[JobOutcome::kCancelled],
              by_outcome[JobOutcome::kRejectedMemory],
              by_outcome[JobOutcome::kError]);
  std::printf("  poisoned %u, recovered %u, retries %llu, migrations %llu "
              "(shed %llu), peak memory %zu KiB\n",
              poisoned, recovered,
              static_cast<unsigned long long>(total_retries),
              static_cast<unsigned long long>(total_migrations),
              static_cast<unsigned long long>(s.migrations_shed),
              s.peak_in_flight_bytes >> 10);
  if (ecc != pbp::EccMode::kOff) {
    std::printf("  ecc: %llu upset(s) corrected, %llu detected\n",
                static_cast<unsigned long long>(total_corrected),
                static_cast<unsigned long long>(total_detected));
  }
  if (violations != 0) {
    std::fprintf(stderr, "tangled_batch: %d contract violation(s)\n",
                 violations);
    return 1;
  }
  std::printf("  exactly-once contract: OK\n");
  return 0;
}
