// grover_search — quantum-inspired satisfiability search on Qat.
//
// Grover's algorithm's job — find the inputs an oracle accepts — is exactly
// what PBP does without amplitude amplification: evaluate the oracle once
// over a Hadamard superposition of ALL inputs, then read out the accepting
// entanglement channels with `next` (§2.7).  Where a quantum computer gets
// one randomly collapsed sample per run, PBP enumerates every solution
// non-destructively.
//
// The oracle here is a small 3-CNF formula over 12 variables; the example
// also cross-checks against brute force and reports the Qat instruction
// count after gate-level optimization.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pbp/optimizer.hpp"
#include "pbp/pint.hpp"

namespace {

struct Clause {
  int a, b, c;  // 1-based variable indices, negative = negated
};

// A 12-variable formula with a handful of solutions.
const std::vector<Clause> kFormula = {
    {1, 2, -3},  {-1, 4, 5},   {3, -4, 6},   {-2, -5, 7},
    {8, -6, -7}, {-8, 9, 1},   {10, -9, 2},  {-10, 11, -1},
    {12, -11, 3}, {-12, -3, 4}, {5, 6, -12},  {-7, 8, 12},
    {1, -9, -11}, {-4, 7, 10},  {2, 9, -8},
};

bool eval_classical(unsigned x) {
  for (const Clause& cl : kFormula) {
    bool sat = false;
    for (const int lit : {cl.a, cl.b, cl.c}) {
      const unsigned v = (x >> (std::abs(lit) - 1)) & 1u;
      if ((lit > 0 && v) || (lit < 0 && !v)) sat = true;
    }
    if (!sat) return false;
  }
  return true;
}

}  // namespace

int main() {
  using pbp::Circuit;

  constexpr unsigned kVars = 12;
  auto ctx = pbp::PbpContext::create(kVars, pbp::Backend::kDense);
  auto circ = std::make_shared<Circuit>(ctx, /*hash_cons=*/true);

  // Variable i is the Hadamard pattern H(i): channel e assigns variable i
  // the value of bit i of e — the superposition of all 4096 assignments.
  std::vector<Circuit::Node> var;
  std::vector<Circuit::Node> nvar;
  for (unsigned i = 0; i < kVars; ++i) {
    var.push_back(circ->had(i));
    nvar.push_back(circ->g_not(var.back()));
  }
  const auto lit = [&](int l) {
    return l > 0 ? var[l - 1] : nvar[-l - 1];
  };

  // Oracle: AND of clause ORs, evaluated channel-wise across all inputs.
  Circuit::Node formula = circ->one();
  for (const Clause& cl : kFormula) {
    const auto clause =
        circ->g_or(circ->g_or(lit(cl.a), lit(cl.b)), lit(cl.c));
    formula = circ->g_and(formula, clause);
  }

  // Count solutions in O(1) data passes (POP), then enumerate with `next`.
  const std::size_t solutions = circ->popcount(formula);
  std::printf("formula: %zu clauses, %u variables, %zu solutions of %zu\n",
              kFormula.size(), kVars, solutions, std::size_t{1} << kVars);

  std::printf("solutions found by channel readout:");
  std::vector<unsigned> found;
  if (circ->meas(formula, 0)) found.push_back(0);
  std::size_t ch = 0;
  while (auto nxt = circ->next(formula, ch)) {
    ch = *nxt;
    found.push_back(static_cast<unsigned>(ch));
  }
  for (const unsigned x : found) std::printf(" %03x", x);
  std::printf("\n");

  // Cross-check against brute force.
  std::size_t brute = 0;
  bool mismatch = false;
  for (unsigned x = 0; x < (1u << kVars); ++x) {
    const bool want = eval_classical(x);
    if (want) ++brute;
    const bool got =
        std::find(found.begin(), found.end(), x) != found.end();
    if (want != got) mismatch = true;
  }
  std::printf("brute force: %zu solutions — %s\n", brute,
              mismatch ? "MISMATCH" : "identical sets");

  // What would this cost as a Qat program?
  const Circuit::Node roots[] = {formula};
  auto opt = pbp::optimize(*circ, roots);
  pbp::EmitOptions eo;
  eo.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
  eo.constant_registers = true;  // §5 layout: H(k) preloaded in registers
  const auto emitted = pbp::emit_qat(opt.circuit, opt.roots, eo);
  std::printf(
      "as a Qat program: %zu instructions, %u registers — one pass evaluates "
      "all %zu assignments\n",
      emitted.instruction_count, emitted.registers_used,
      std::size_t{1} << kVars);
  return mismatch ? 1 : 0;
}
