// superposed_adder — high-entanglement arithmetic on the compressed RE
// backend (paper §1.2).
//
// 24-way entanglement means 16,777,216-channel AoBs — 2 MiB per pbit dense,
// far past the paper's "practical scaling limit" for hardware AoBs (§5).
// The RE representation stores each pbit as runs of hash-consed 4096-bit
// chunks, so the same gate network runs with kilobytes of state.  This
// example adds two 12-bit superposed values (all 2^24 pairs at once) and
// interrogates the result's distribution through POP-style reductions only —
// never materializing the dense vectors.
#include <cstdio>

#include "pbp/pint.hpp"

int main() {
  using pbp::Pint;

  constexpr unsigned kWays = 24;
  auto ctx =
      pbp::PbpContext::create(kWays, pbp::Backend::kCompressed,
                              /*chunk_ways=*/12);  // LCPC'20's 4096-bit chunks
  auto circ = std::make_shared<pbp::Circuit>(ctx, /*hash_cons=*/true);

  const Pint a = Pint::hadamard(circ, 12, 0x000fff);  // H(0..11):  0..4095
  const Pint b = Pint::hadamard(circ, 12, 0xfff000);  // H(12..23): 0..4095
  const Pint sum = Pint::add(a, b);                   // 13 bits, exact

  const std::size_t channels = std::size_t{1} << kWays;
  std::printf("a + b over all %zu (a, b) pairs (12-bit each)\n", channels);

  // P(carry out) = P(a + b >= 4096): POP of the sum's MSB.
  const std::size_t carry = circ->popcount(sum.bit(12));
  std::printf("P(carry) = %zu / %zu = %.6f (exact: %.6f)\n", carry, channels,
              static_cast<double>(carry) / static_cast<double>(channels),
              4095.0 * 4096.0 / 2.0 / 16777216.0);

  // Exact channel counts for chosen sums, via equality-reduction popcounts.
  for (const std::uint64_t target : {0ull, 1ull, 4095ull, 4096ull, 8190ull}) {
    const std::size_t count = sum.channels_equal_to(target);
    // Number of (a, b) pairs with a+b == t is t+1 for t <= 4095, else
    // 8191-t: the discrete triangle distribution.
    const std::size_t expect = target <= 4095 ? target + 1 : 8190 - target + 1;
    std::printf("  channels with sum=%4llu: %zu (expected %zu)%s\n",
                static_cast<unsigned long long>(target), count, expect,
                count == expect ? "" : "  MISMATCH");
  }

  // Storage: compressed vs what a dense AoB would need.
  std::size_t stored = 0;
  for (unsigned i = 0; i < sum.width(); ++i) {
    stored += circ->eval(sum.bit(i)).storage_bytes();
  }
  std::printf(
      "compressed state for the 13 sum pbits: %zu bytes (dense would be "
      "%zu bytes); chunk pool holds %zu distinct chunks\n",
      stored, sum.width() * (channels / 8), ctx->pool()->size());
  std::printf("chunk-op memo: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(ctx->pool()->memo_hits()),
              static_cast<unsigned long long>(ctx->pool()->memo_misses()));
  return 0;
}
