// factor221 — the full-size version of the paper's factoring demo.
//
// The LCPC'20 prototype factored 221; the class projects shrank the problem
// to 15 to fit 8-way entanglement (§4.1).  The author's 16-way hardware
// (65,536-bit AoBs) handles 221 directly: b = H(0..7), c = H(8..15), so one
// multiplication evaluates all 65,536 (b, c) pairs simultaneously.
//
// This example does it both ways:
//   1. word-level pint program (the Figure 9 style),
//   2. compiled to a Qat assembly program via the circuit recorder +
//      optimizer, then executed on the pipelined 16-way simulator.
#include <cstdio>

#include "arch/simulators.hpp"
#include "pbp/optimizer.hpp"
#include "pbp/pint.hpp"

int main() {
  using pbp::Pint;
  using namespace tangled;

  constexpr unsigned kWays = 16;
  constexpr std::uint64_t kN = 221;  // 13 * 17

  auto ctx = pbp::PbpContext::create(kWays, pbp::Backend::kDense);
  auto circ = std::make_shared<pbp::Circuit>(ctx, /*hash_cons=*/true);

  const Pint n = Pint::constant(circ, 8, kN);
  const Pint b = Pint::hadamard(circ, 8, 0x00ff);  // H(0..7):  b = 0..255
  const Pint c = Pint::hadamard(circ, 8, 0xff00);  // H(8..15): c = 0..255
  const Pint e = Pint::eq(Pint::mul(b, c), n);

  std::printf("word-level: channels with b*c == %llu:\n",
              static_cast<unsigned long long>(kN));
  // Walk the equality pbit's set channels; channel ch encodes b = ch % 256.
  std::size_t ch = 0;
  bool first_channel = circ->meas(e.bit(0), 0);
  if (first_channel) std::printf("  b=%zu c=%zu\n", ch % 256, ch / 256);
  while (auto nxt = circ->next(e.bit(0), ch)) {
    ch = *nxt;
    std::printf("  b=%zu c=%zu\n", ch % 256, ch / 256);
  }

  // Probability of a factorization in parts per 2^16 (§1.1's units).
  std::printf("POP(e) = %zu of %zu channels\n", circ->popcount(e.bit(0)),
              std::size_t{1} << kWays);

  // --- Compile to Qat assembly and run on the pipelined simulator. ---
  const pbp::Circuit::Node roots[] = {e.bit(0)};
  auto opt = pbp::optimize(*circ, roots);
  pbp::EmitOptions eo;
  eo.alloc = pbp::EmitOptions::RegAlloc::kLinearScan;
  const auto emitted = pbp::emit_qat(opt.circuit, opt.roots, eo);
  std::printf(
      "compiled: %zu raw gates -> %zu after optimization -> %zu Qat "
      "instructions, %u registers\n",
      opt.stats.gates_before, opt.stats.gates_after,
      emitted.instruction_count, emitted.registers_used);

  std::string asm_text = emitted.asm_text;
  const std::string er = std::to_string(emitted.root_regs[0]);
  // Readout: scan factor channels, mask to b (= channel % 256).
  asm_text +=
      "\tlex $0,0\n"
      "\tnext $0,@" + er + "\n"
      "\tcopy $1,$0\n"
      "\tnext $1,@" + er + "\n"
      "\tcopy $2,$1\n"
      "\tnext $2,@" + er + "\n"
      "\tcopy $3,$2\n"
      "\tnext $3,@" + er + "\n"
      "\tli $4,0x00ff\n"
      "\tand $0,$4\n"
      "\tand $1,$4\n"
      "\tand $2,$4\n"
      "\tand $3,$4\n"
      "\tsys\n";

  PipelineSim sim(kWays);
  sim.load(assemble(asm_text));
  const SimStats st = sim.run(2'000'000);
  if (!st.halted) {
    std::printf("error: program did not halt\n");
    return 1;
  }
  std::printf(
      "pipelined 16-way run: factors b = %u, %u, %u, %u | %llu instrs, "
      "%llu cycles, CPI %.2f\n",
      sim.cpu().reg(0), sim.cpu().reg(1), sim.cpu().reg(2), sim.cpu().reg(3),
      static_cast<unsigned long long>(st.instructions),
      static_cast<unsigned long long>(st.cycles), st.cpi());
  return 0;
}
