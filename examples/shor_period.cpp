// shor_period — Shor-style period finding on the PBP model.
//
// Shor's quantum factoring (cited in the paper §2.2) reduces factoring N to
// finding the period r of f(x) = a^x mod N, which a quantum computer
// extracts with a Fourier transform over a superposed x — because a single
// measurement only ever yields one (x, f(x)) sample.
//
// PBP doesn't need the Fourier trick: evaluate f over a Hadamard-superposed
// x ONCE (a modular-exponentiation gate network applied channel-wise), then
// read the whole distribution non-destructively.  For x uniform over enough
// bits, the set of distinct values of f *is* the orbit of a, so the period
// is simply the count of distinct values — and from an even period the
// factors follow classically: gcd(a^(r/2) ± 1, N).
#include <cstdio>
#include <numeric>

#include "pbp/pint.hpp"

namespace {

std::uint64_t powmod(std::uint64_t a, std::uint64_t e, std::uint64_t m) {
  std::uint64_t r = 1 % m;
  a %= m;
  while (e) {
    if (e & 1) r = r * a % m;
    a = a * a % m;
    e >>= 1;
  }
  return r;
}

bool factor(std::uint64_t n, std::uint64_t a) {
  using pbp::Pint;
  // Enough exponent bits that x covers several full periods.
  const unsigned xbits = 6;
  auto ctx = pbp::PbpContext::create(xbits, pbp::Backend::kDense);
  auto circ = std::make_shared<pbp::Circuit>(ctx, /*hash_cons=*/true);

  const Pint x = Pint::hadamard(circ, xbits, (1u << xbits) - 1);
  const Pint f = Pint::modexp_const(a, x, n);

  const auto orbit = f.measure_values();  // non-destructive, exhaustive
  const std::uint64_t r = orbit.size();   // |orbit of a mod n| = period
  std::printf("n=%llu a=%llu: f(x)=a^x mod n takes %llu distinct values:",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(r));
  for (const auto v : orbit) {
    std::printf(" %llu", static_cast<unsigned long long>(v));
  }
  std::printf("\n");

  if (r % 2 != 0) {
    std::printf("  period %llu is odd; pick another a\n",
                static_cast<unsigned long long>(r));
    return false;
  }
  const std::uint64_t h = powmod(a, r / 2, n);
  if (h == n - 1) {
    std::printf("  a^(r/2) = -1 mod n; pick another a\n");
    return false;
  }
  const std::uint64_t p = std::gcd(h + 1, n);
  const std::uint64_t q = std::gcd(h + n - 1, n);
  std::printf("  period %llu -> gcd(a^(r/2)+-1, n) = %llu, %llu",
              static_cast<unsigned long long>(r),
              static_cast<unsigned long long>(p),
              static_cast<unsigned long long>(q));
  const bool ok = p * q == n && p > 1 && q > 1;
  std::printf("  %s\n", ok ? "=> factored" : "(trivial, pick another a)");
  return ok;
}

}  // namespace

int main() {
  bool any = false;
  any |= factor(15, 2);   // period 4 -> 3 * 5
  any |= factor(15, 7);   // period 4 -> 3 * 5
  any |= factor(21, 2);   // period 6 -> 3 * 7
  any |= factor(33, 5);   // period 10 -> 3 * 11
  factor(33, 2);          // period 10 but 2^5 = -1 mod 33: the bad case
  factor(15, 14);         // period 2, a^(r/2) = -1: the known bad case
  return any ? 0 : 1;
}
