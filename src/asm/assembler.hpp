// assembler.hpp — two-pass assembler for Tangled/Qat assembly source.
//
// Plays the role AIK (the Assembler Interpreter from Kentucky) played in the
// paper's course projects.  Accepts the exact syntax of the paper's listings
// (Figure 10, §2.7's worked example), including:
//
//   * labels (`loop:`), `;` comments
//   * Tangled forms (`add $d,$s`, `lex $d,imm8`, ...) per Table 1
//   * Qat forms (`and @a,@b,@c`, `had @a,k`, `meas $d,@a`, ...) per Table 3
//     — mnemonics shared with Tangled (and/or/xor/not) disambiguate by the
//     first operand's sigil, as the fetch/decode hardware does by opcode
//   * Table 2 pseudo-instructions expanded as macros:
//       br lab            →  lex $at,1 ; brt $at,lab
//       jump lab          →  li $at,lab ; jumpr $at
//       jumpf $c,lab      →  brt $c,+skip ; jump lab
//       jumpt $c,lab      →  brf $c,+skip ; jump lab
//       li $d,imm16       →  lex $d,low8 ; lhi $d,high8
//   * `.word value`, `.space n`, `.origin addr`, and `.ascii "text"` data
//     directives (.ascii stores one character per word; \n \t \0 \\ \"
//     escapes; `;` inside quotes is text, not a comment)
//
// Branch targets must be within the signed-8-bit PC-relative range;
// assembly errors carry 1-based line numbers.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/isa.hpp"

namespace tangled {

/// Structured assembly diagnostic: file (when known), 1-based source line,
/// and the bare message.  what() renders the conventional "file:line: msg".
class AsmError : public std::runtime_error {
 public:
  AsmError(std::size_t line, const std::string& message)
      : AsmError("<input>", line, message) {}
  AsmError(const std::string& file, std::size_t line,
           const std::string& message)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " + message),
        file_(file),
        line_(line),
        message_(message) {}
  const std::string& file() const { return file_; }
  std::size_t line() const { return line_; }
  const std::string& message() const { return message_; }

 private:
  std::string file_;
  std::size_t line_;
  std::string message_;
};

struct Program {
  std::vector<std::uint16_t> words;                    // memory image, word 0 = PC 0
  std::unordered_map<std::string, std::uint16_t> labels;
  std::size_t instruction_count = 0;                   // after macro expansion
};

/// Assemble `source`; throws AsmError on the first problem.  `file` names
/// the source in diagnostics ("prog.s:12: unknown instruction ...").
Program assemble(const std::string& source,
                 const std::string& file = "<input>");

/// Disassemble a memory image into one line per instruction (for the CLI and
/// round-trip tests).  Stops at `max_words` or the end of the image.
std::string disassemble_words(const std::vector<std::uint16_t>& words,
                              std::size_t max_words = SIZE_MAX);

}  // namespace tangled
