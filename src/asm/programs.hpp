// programs.hpp — canned Tangled/Qat assembly programs from the paper.
#pragma once

#include <string>

namespace tangled {

/// The complete Figure 10 program: prime factoring of 15 on 8-way
/// entanglement, transcribed verbatim (three columns, read top-to-bottom
/// left-to-right), with a final `sys` appended so simulators halt.
/// Running it leaves the prime factors in $0 (5) and $1 (3).
std::string figure10_source();

}  // namespace tangled
