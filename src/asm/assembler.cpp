#include "asm/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

namespace tangled {
namespace {

struct Line {
  std::size_t number = 0;          // 1-based source line
  std::string label;               // without ':'
  std::string mnemonic;            // lowercase
  std::vector<std::string> operands;
};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool is_ident(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' &&
      s[0] != '.') {
    return false;
  }
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_' || c == '.';
  });
}

std::vector<Line> parse_lines(const std::string& source) {
  std::vector<Line> out;
  std::istringstream in(source);
  std::string raw;
  std::size_t number = 0;
  while (std::getline(in, raw)) {
    ++number;
    // Strip comment — quote-aware, so `;` inside a string literal is text.
    // A string left open at end of line is a hard error here, before the
    // naive splitting below can scramble it into nonsense operands.
    {
      bool in_string = false;
      std::size_t pos = raw.size();
      for (std::size_t i = 0; i < raw.size(); ++i) {
        const char c = raw[i];
        if (in_string) {
          if (c == '\\' && i + 1 < raw.size()) {
            ++i;  // escaped character, including \"
          } else if (c == '"') {
            in_string = false;
          }
        } else if (c == '"') {
          in_string = true;
        } else if (c == ';') {
          pos = i;
          break;
        }
      }
      if (in_string) throw AsmError(number, "unterminated string literal");
      raw.resize(pos);
    }
    std::string text = trim(raw);
    if (text.empty()) continue;
    Line line;
    line.number = number;
    // Constant definition: `name = value` (an equ).  Encoded as the pseudo
    // mnemonic "=" with the name as first operand.  `=` or `:` inside a
    // string literal is text, so only look left of the first quote.
    const std::size_t quote = text.find('"');
    if (const auto eq = text.find('='); eq != std::string::npos &&
                                        eq < quote &&
                                        text.find(':') >= quote) {
      const std::string name = trim(text.substr(0, eq));
      const std::string value = trim(text.substr(eq + 1));
      if (!is_ident(name) || value.empty()) {
        throw AsmError(number, "bad constant definition");
      }
      line.mnemonic = "=";
      line.operands = {name, value};
      out.push_back(line);
      continue;
    }
    // Leading label(s).
    while (true) {
      const auto colon = text.find(':');
      if (colon == std::string::npos || colon > text.find('"')) break;
      const std::string head = trim(text.substr(0, colon));
      if (!is_ident(head)) {
        throw AsmError(number, "bad label '" + head + "'");
      }
      if (!line.label.empty()) {
        // Multiple labels on one line: emit a label-only line for the first.
        Line only;
        only.number = number;
        only.label = line.label;
        out.push_back(only);
      }
      line.label = head;
      text = trim(text.substr(colon + 1));
    }
    if (!text.empty()) {
      // mnemonic [operands]
      const auto sp = text.find_first_of(" \t");
      line.mnemonic = lower(text.substr(0, sp));
      if (sp != std::string::npos) {
        std::string ops = text.substr(sp + 1);
        std::string cur;
        bool in_string = false;
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const char c = ops[i];
          if (in_string) {
            cur += c;
            if (c == '\\' && i + 1 < ops.size()) {
              cur += ops[++i];
            } else if (c == '"') {
              in_string = false;
            }
          } else if (c == '"') {
            in_string = true;
            cur += c;
          } else if (c == ',') {
            line.operands.push_back(trim(cur));
            cur.clear();
          } else {
            cur += c;
          }
        }
        if (!trim(cur).empty()) line.operands.push_back(trim(cur));
        for (const auto& o : line.operands) {
          if (o.empty()) throw AsmError(number, "empty operand");
        }
      }
    }
    if (!line.label.empty() || !line.mnemonic.empty()) out.push_back(line);
  }
  return out;
}

std::optional<long> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::size_t i = 0;
  bool negative = false;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    i = 1;
  }
  if (i >= s.size()) return std::nullopt;
  long v = 0;
  // No assembler operand is wider than 16 bits, so reject absurd literals
  // before the accumulator can overflow (which would be UB, and silently
  // wrapped to a "valid" 16-bit value on common targets).
  constexpr long kOverflowGuard = 1L << 32;
  if (s.size() > i + 2 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    for (std::size_t j = i + 2; j < s.size(); ++j) {
      const char c = static_cast<char>(std::tolower(s[j]));
      if (v >= kOverflowGuard) return std::nullopt;
      if (c >= '0' && c <= '9') {
        v = v * 16 + (c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v = v * 16 + (c - 'a' + 10);
      } else {
        return std::nullopt;
      }
    }
  } else {
    for (std::size_t j = i; j < s.size(); ++j) {
      if (!std::isdigit(static_cast<unsigned char>(s[j]))) return std::nullopt;
      if (v >= kOverflowGuard) return std::nullopt;
      v = v * 10 + (s[j] - '0');
    }
  }
  return negative ? -v : v;
}

/// How a source statement maps to machine instructions.
enum class Form {
  kOpr2,      // op $d,$s
  kOpr1,      // op $d
  kSys,       // sys
  kBranch,    // brf/brt $c,target
  kImm,       // lex/lhi $d,imm8
  kQat1,      // op @a
  kQatHad,    // had @a,imm6
  kQat2,      // op @a,@b
  kQat3,      // op @a,@b,@c
  kQatMeas,   // meas/next/pop $d,@a
  kMacroBr,   // br lab
  kMacroJump, // jump lab
  kMacroJumpf,
  kMacroJumpt,
  kMacroLi,   // li $d,imm16
  kWord,      // .word
  kSpace,     // .space n — n zero words
  kOrigin,    // .origin addr — pad with zeros to addr
  kAscii,     // .ascii "text" — one character per word
  kEqu,       // name = value
};

struct Stmt {
  Form form;
  Op op = Op::kInvalid;
};

/// Resolve the statement form from mnemonic + operand sigils.  The and/or/
/// xor/not mnemonics exist in both Tables 1 and 3; the first operand's sigil
/// selects the unit, exactly as the opcode does in hardware.
std::optional<Stmt> classify(const Line& line) {
  const std::string& m = line.mnemonic;
  const bool qat_first =
      !line.operands.empty() && line.operands[0].size() > 1 &&
      line.operands[0][0] == '@';
  if (m == "add") return Stmt{Form::kOpr2, Op::kAdd};
  if (m == "addf") return Stmt{Form::kOpr2, Op::kAddf};
  if (m == "and" && !qat_first) return Stmt{Form::kOpr2, Op::kAnd};
  if (m == "and") return Stmt{Form::kQat3, Op::kQAnd};
  if (m == "brf") return Stmt{Form::kBranch, Op::kBrf};
  if (m == "brt") return Stmt{Form::kBranch, Op::kBrt};
  if (m == "copy") return Stmt{Form::kOpr2, Op::kCopy};
  if (m == "float") return Stmt{Form::kOpr1, Op::kFloat};
  if (m == "int") return Stmt{Form::kOpr1, Op::kInt};
  if (m == "jumpr") return Stmt{Form::kOpr1, Op::kJumpr};
  if (m == "lex") return Stmt{Form::kImm, Op::kLex};
  if (m == "lhi") return Stmt{Form::kImm, Op::kLhi};
  if (m == "load") return Stmt{Form::kOpr2, Op::kLoad};
  if (m == "mul") return Stmt{Form::kOpr2, Op::kMul};
  if (m == "mulf") return Stmt{Form::kOpr2, Op::kMulf};
  if (m == "neg") return Stmt{Form::kOpr1, Op::kNeg};
  if (m == "negf") return Stmt{Form::kOpr1, Op::kNegf};
  if (m == "not" && !qat_first) return Stmt{Form::kOpr1, Op::kNot};
  if (m == "not") return Stmt{Form::kQat1, Op::kQNot};
  if (m == "or" && !qat_first) return Stmt{Form::kOpr2, Op::kOr};
  if (m == "or") return Stmt{Form::kQat3, Op::kQOr};
  if (m == "recip") return Stmt{Form::kOpr1, Op::kRecip};
  if (m == "shift") return Stmt{Form::kOpr2, Op::kShift};
  if (m == "slt") return Stmt{Form::kOpr2, Op::kSlt};
  if (m == "store") return Stmt{Form::kOpr2, Op::kStore};
  if (m == "sys") return Stmt{Form::kSys, Op::kSys};
  if (m == "xor" && !qat_first) return Stmt{Form::kOpr2, Op::kXor};
  if (m == "xor") return Stmt{Form::kQat3, Op::kQXor};
  if (m == "zero") return Stmt{Form::kQat1, Op::kQZero};
  if (m == "one") return Stmt{Form::kQat1, Op::kQOne};
  if (m == "had") return Stmt{Form::kQatHad, Op::kQHad};
  if (m == "cnot") return Stmt{Form::kQat2, Op::kQCnot};
  if (m == "swap") return Stmt{Form::kQat2, Op::kQSwap};
  if (m == "ccnot") return Stmt{Form::kQat3, Op::kQCcnot};
  if (m == "cswap") return Stmt{Form::kQat3, Op::kQCswap};
  if (m == "meas") return Stmt{Form::kQatMeas, Op::kQMeas};
  if (m == "next") return Stmt{Form::kQatMeas, Op::kQNext};
  if (m == "pop") return Stmt{Form::kQatMeas, Op::kQPop};
  if (m == "br") return Stmt{Form::kMacroBr};
  if (m == "jump") return Stmt{Form::kMacroJump};
  if (m == "jumpf") return Stmt{Form::kMacroJumpf};
  if (m == "jumpt") return Stmt{Form::kMacroJumpt};
  if (m == "li") return Stmt{Form::kMacroLi};
  if (m == ".word") return Stmt{Form::kWord};
  if (m == ".space") return Stmt{Form::kSpace};
  if (m == ".origin") return Stmt{Form::kOrigin};
  if (m == ".ascii") return Stmt{Form::kAscii};
  if (m == "=") return Stmt{Form::kEqu};
  return std::nullopt;
}

/// Words a statement occupies in memory (fixed, so pass 1 can place labels).
std::size_t stmt_words(const Stmt& s) {
  switch (s.form) {
    case Form::kOpr2:
    case Form::kOpr1:
    case Form::kSys:
    case Form::kBranch:
    case Form::kImm:
    case Form::kQat1:
    case Form::kWord:
      return 1;
    case Form::kQatHad:
    case Form::kQat2:
    case Form::kQat3:
    case Form::kQatMeas:
      return 2;
    case Form::kMacroBr:
      return 2;  // lex $at,1 ; brt $at,lab
    case Form::kMacroLi:
      return 2;  // lex ; lhi
    case Form::kMacroJump:
      return 3;  // li(2) ; jumpr
    case Form::kMacroJumpf:
    case Form::kMacroJumpt:
      return 4;  // branch-over ; jump(3)
    case Form::kSpace:
    case Form::kOrigin:
    case Form::kAscii:
    case Form::kEqu:
      return 0;  // sized by place_labels (value-dependent / no output)
  }
  return 1;
}

class Assembler {
 public:
  explicit Assembler(const std::string& source) : lines_(parse_lines(source)) {}

  Program run() {
    place_labels();
    emit_all();
    return std::move(program_);
  }

 private:
  void place_labels() {
    std::size_t pc = 0;
    for (const Line& line : lines_) {
      if (!line.label.empty()) {
        if (program_.labels.count(line.label)) {
          throw AsmError(line.number, "duplicate label '" + line.label + "'");
        }
        program_.labels[line.label] = static_cast<std::uint16_t>(pc);
      }
      if (line.mnemonic.empty()) continue;
      const auto stmt = classify(line);
      if (!stmt) {
        throw AsmError(line.number,
                       "unknown instruction '" + line.mnemonic + "'");
      }
      switch (stmt->form) {
        case Form::kEqu: {
          // Constants must be resolvable in pass 1 (no forward references).
          if (program_.labels.count(line.operands[0])) {
            throw AsmError(line.number,
                           "duplicate symbol '" + line.operands[0] + "'");
          }
          program_.labels[line.operands[0]] =
              static_cast<std::uint16_t>(early_value(line, 1));
          break;
        }
        case Form::kSpace: {
          const long n = early_value(line, 0);
          // Guard before the size_t cast: a negative count would wrap to an
          // enormous block and surface as a baffling "program too large".
          if (n < 0 || n > 0x10000) {
            throw AsmError(line.number, ".space count out of range (0..65536)");
          }
          pc += static_cast<std::size_t>(n);
          break;
        }
        case Form::kOrigin: {
          const long target = early_value(line, 0);
          if (target < 0 || target > 0x10000) {
            throw AsmError(line.number,
                           ".origin address out of range (0..65536)");
          }
          if (target < static_cast<long>(pc)) {
            throw AsmError(line.number, ".origin moves backwards");
          }
          pc = static_cast<std::size_t>(target);
          break;
        }
        case Form::kAscii:
          pc += need_string(line, 0).size();
          break;
        default:
          pc += stmt_words(*stmt);
          break;
      }
      if (pc > 0x10000) throw AsmError(line.number, "program too large");
    }
  }

  /// Pass-1 evaluation: integers or already-defined symbols only.
  long early_value(const Line& line, std::size_t idx) const {
    if (idx >= line.operands.size()) {
      throw AsmError(line.number, "missing operand");
    }
    const std::string& s = line.operands[idx];
    if (const auto v = parse_int(s)) return *v;
    if (const auto it = program_.labels.find(s); it != program_.labels.end()) {
      return it->second;
    }
    throw AsmError(line.number,
                   "symbol '" + s + "' must be defined before use here");
  }

  unsigned need_reg(const Line& line, std::size_t idx) const {
    if (idx >= line.operands.size()) {
      throw AsmError(line.number, "missing register operand");
    }
    const auto r = parse_reg(line.operands[idx]);
    if (!r) {
      throw AsmError(line.number,
                     "bad register '" + line.operands[idx] + "'");
    }
    return *r;
  }

  unsigned need_qreg(const Line& line, std::size_t idx) const {
    if (idx >= line.operands.size()) {
      throw AsmError(line.number, "missing Qat register operand");
    }
    const std::string& s = line.operands[idx];
    if (s.size() < 2 || s[0] != '@') {
      throw AsmError(line.number, "bad Qat register '" + s + "'");
    }
    const auto v = parse_int(s.substr(1));
    if (!v || *v < 0 || *v >= static_cast<long>(kNumQatRegs)) {
      throw AsmError(line.number, "bad Qat register '" + s + "'");
    }
    return static_cast<unsigned>(*v);
  }

  long need_value(const Line& line, std::size_t idx) const {
    if (idx >= line.operands.size()) {
      throw AsmError(line.number, "missing operand");
    }
    const std::string& s = line.operands[idx];
    if (const auto v = parse_int(s)) return *v;
    if (const auto it = program_.labels.find(s); it != program_.labels.end()) {
      return it->second;
    }
    throw AsmError(line.number, "undefined symbol '" + s + "'");
  }

  /// Decode a quoted string operand ("text", \n \t \0 \\ \" escapes).
  std::string need_string(const Line& line, std::size_t idx) const {
    if (idx >= line.operands.size()) {
      throw AsmError(line.number, "missing string operand");
    }
    const std::string& s = line.operands[idx];
    if (s.size() < 2 || s.front() != '"' || s.back() != '"') {
      throw AsmError(line.number, "expected a quoted string, got '" + s + "'");
    }
    std::string out;
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
      char c = s[i];
      if (c == '"') {
        // A closing quote with trailing junk ("ab"c) ends up here.
        throw AsmError(line.number, "malformed string literal " + s);
      }
      if (c == '\\') {
        if (i + 2 >= s.size()) {
          throw AsmError(line.number, "dangling escape in string literal");
        }
        const char e = s[++i];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default:
            throw AsmError(line.number,
                           std::string("unknown escape '\\") + e + "'");
        }
      }
      out += c;
    }
    return out;
  }

  void expect_operands(const Line& line, std::size_t n) const {
    if (line.operands.size() != n) {
      throw AsmError(line.number,
                     "expected " + std::to_string(n) + " operand(s), got " +
                         std::to_string(line.operands.size()));
    }
  }

  void push_instr(const Instr& i) {
    std::uint16_t w[2];
    const unsigned n = encode(i, w);
    for (unsigned j = 0; j < n; ++j) program_.words.push_back(w[j]);
    ++program_.instruction_count;
  }

  std::int16_t branch_offset(const Line& line, long target) const {
    // PC-relative from the word after the branch.
    const long off = target - (static_cast<long>(program_.words.size()) + 1);
    if (off < -128 || off > 127) {
      throw AsmError(line.number,
                     "branch target out of range (offset " +
                         std::to_string(off) + "); use jumpt/jumpf");
    }
    return static_cast<std::int16_t>(off);
  }

  void emit_li(unsigned d, long value) {
    const std::uint16_t v = static_cast<std::uint16_t>(value);
    Instr lex{Op::kLex, static_cast<std::uint8_t>(d), 0,
              static_cast<std::int16_t>(static_cast<std::int8_t>(v & 0xff)),
              0, 0, 0, 0};
    push_instr(lex);
    Instr lhi{Op::kLhi, static_cast<std::uint8_t>(d), 0,
              static_cast<std::int16_t>(v >> 8), 0, 0, 0, 0};
    push_instr(lhi);
  }

  void emit_jump(long target) {
    emit_li(kRegAt, target);
    Instr jr{};
    jr.op = Op::kJumpr;
    jr.d = kRegAt;
    push_instr(jr);
  }

  void emit_all() {
    for (const Line& line : lines_) {
      if (line.mnemonic.empty()) continue;
      const Stmt stmt = *classify(line);
      Instr i{};
      i.op = stmt.op;
      switch (stmt.form) {
        case Form::kOpr2:
          expect_operands(line, 2);
          i.d = static_cast<std::uint8_t>(need_reg(line, 0));
          i.s = static_cast<std::uint8_t>(need_reg(line, 1));
          push_instr(i);
          break;
        case Form::kOpr1:
          expect_operands(line, 1);
          i.d = static_cast<std::uint8_t>(need_reg(line, 0));
          push_instr(i);
          break;
        case Form::kSys:
          // `sys` halts; `sys $r` prints $r (console service, $0 reserved
          // for halt since plain sys encodes d = 0).
          if (line.operands.size() > 1) {
            throw AsmError(line.number, "sys takes at most one register");
          }
          if (line.operands.size() == 1) {
            i.d = static_cast<std::uint8_t>(need_reg(line, 0));
            if (i.d == 0) {
              throw AsmError(line.number,
                             "sys $0 is the halt encoding; print another "
                             "register");
            }
          }
          push_instr(i);
          break;
        case Form::kBranch: {
          expect_operands(line, 2);
          i.d = static_cast<std::uint8_t>(need_reg(line, 0));
          i.imm = branch_offset(line, need_value(line, 1));
          push_instr(i);
          break;
        }
        case Form::kImm: {
          expect_operands(line, 2);
          i.d = static_cast<std::uint8_t>(need_reg(line, 0));
          const long v = need_value(line, 1);
          if (stmt.op == Op::kLex) {
            if (v < -128 || v > 255) {
              throw AsmError(line.number, "lex immediate out of range");
            }
            i.imm = static_cast<std::int16_t>(
                static_cast<std::int8_t>(v & 0xff));
          } else {
            if (v < 0 || v > 255) {
              throw AsmError(line.number, "lhi immediate out of range");
            }
            i.imm = static_cast<std::int16_t>(v);
          }
          push_instr(i);
          break;
        }
        case Form::kQat1:
          expect_operands(line, 1);
          i.qa = static_cast<std::uint8_t>(need_qreg(line, 0));
          push_instr(i);
          break;
        case Form::kQatHad: {
          expect_operands(line, 2);
          i.qa = static_cast<std::uint8_t>(need_qreg(line, 0));
          const long k = need_value(line, 1);
          // 6-bit encoded field; k >= ways yields the all-zeros pattern
          // (hadamard_generate), so wide-ways software backends can use the
          // full range while 16-way hardware programs keep using 0..15.
          if (k < 0 || k > 63) {
            throw AsmError(line.number, "had index out of range (0..63)");
          }
          i.k = static_cast<std::uint8_t>(k);
          push_instr(i);
          break;
        }
        case Form::kQat2:
          expect_operands(line, 2);
          i.qa = static_cast<std::uint8_t>(need_qreg(line, 0));
          i.qb = static_cast<std::uint8_t>(need_qreg(line, 1));
          push_instr(i);
          break;
        case Form::kQat3:
          expect_operands(line, 3);
          i.qa = static_cast<std::uint8_t>(need_qreg(line, 0));
          i.qb = static_cast<std::uint8_t>(need_qreg(line, 1));
          i.qc = static_cast<std::uint8_t>(need_qreg(line, 2));
          push_instr(i);
          break;
        case Form::kQatMeas:
          expect_operands(line, 2);
          i.d = static_cast<std::uint8_t>(need_reg(line, 0));
          i.qa = static_cast<std::uint8_t>(need_qreg(line, 1));
          push_instr(i);
          break;
        case Form::kMacroBr: {
          expect_operands(line, 1);
          // lex $at,1 ; brt $at,target — unconditional via a known-true reg.
          Instr lex{};
          lex.op = Op::kLex;
          lex.d = kRegAt;
          lex.imm = 1;
          push_instr(lex);
          Instr brt{};
          brt.op = Op::kBrt;
          brt.d = kRegAt;
          brt.imm = branch_offset(line, need_value(line, 0));
          push_instr(brt);
          break;
        }
        case Form::kMacroJump:
          expect_operands(line, 1);
          emit_jump(need_value(line, 0));
          break;
        case Form::kMacroJumpf:
        case Form::kMacroJumpt: {
          expect_operands(line, 2);
          // Branch over the 3-word jump when the condition does NOT call
          // for it, then jump.
          Instr over{};
          over.op = stmt.form == Form::kMacroJumpf ? Op::kBrt : Op::kBrf;
          over.d = static_cast<std::uint8_t>(need_reg(line, 0));
          over.imm = 3;
          push_instr(over);
          emit_jump(need_value(line, 1));
          break;
        }
        case Form::kMacroLi:
          expect_operands(line, 2);
          emit_li(need_reg(line, 0), need_value(line, 1));
          break;
        case Form::kWord: {
          expect_operands(line, 1);
          const long v = need_value(line, 0);
          if (v < -32768 || v > 65535) {
            throw AsmError(line.number, ".word value out of range");
          }
          program_.words.push_back(static_cast<std::uint16_t>(v));
          break;
        }
        case Form::kSpace: {
          expect_operands(line, 1);
          const long n = need_value(line, 0);
          if (n < 0 || n > 0x10000) {
            throw AsmError(line.number, ".space count out of range (0..65536)");
          }
          program_.words.insert(program_.words.end(),
                                static_cast<std::size_t>(n), 0);
          break;
        }
        case Form::kOrigin: {
          expect_operands(line, 1);
          const auto target = static_cast<std::size_t>(need_value(line, 0));
          program_.words.resize(target, 0);
          break;
        }
        case Form::kAscii: {
          expect_operands(line, 1);
          for (const char c : need_string(line, 0)) {
            program_.words.push_back(
                static_cast<std::uint16_t>(static_cast<unsigned char>(c)));
          }
          break;
        }
        case Form::kEqu:
          break;  // defined in pass 1
      }
    }
  }

  std::vector<Line> lines_;
  Program program_;
};

}  // namespace

Program assemble(const std::string& source, const std::string& file) {
  try {
    return Assembler(source).run();
  } catch (const AsmError& e) {
    // Internal throws carry line numbers only; attach the file name at the
    // single public boundary so every diagnostic reads "file:line: message".
    throw AsmError(file, e.line(), e.message());
  }
}

std::string disassemble_words(const std::vector<std::uint16_t>& words,
                              std::size_t max_words) {
  std::string out;
  const std::size_t limit = std::min(max_words, words.size());
  std::size_t pc = 0;
  while (pc < limit) {
    const std::uint16_t w0 = words[pc];
    const std::uint16_t w1 = pc + 1 < words.size() ? words[pc + 1] : 0;
    const Decoded d = decode(w0, w1);
    out += std::to_string(pc);
    out += ":\t";
    out += disassemble(d.instr);
    out += '\n';
    pc += d.words;
  }
  return out;
}

}  // namespace tangled
