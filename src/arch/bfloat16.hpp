// bfloat16.hpp — the 16-bit brain-float ALU used by Tangled's addf/mulf/
// negf/recip/float/int instructions (paper §2.1).
//
// bfloat16 is the top 16 bits of an IEEE-754 binary32: 1 sign, 8 exponent
// (bias 127), 7 fraction.  The paper notes the key property this library
// leans on: "values can be treated as standard 32-bit float values by simply
// catenating a 16-bit value of 0".  add/mul therefore compute in binary32
// (exact for bf16 operands) and round the result back to nearest-even —
// bit-identical to a correctly rounded bf16 FPU.  recip instead mirrors the
// Verilog implementation's small lookup table for fraction reciprocals (the
// VMEM file §2.1 mentions), so its accuracy is deliberately table-limited.
#pragma once

#include <cstdint>

namespace tangled {

/// One bfloat16 value as its raw 16-bit pattern.  Plain value type: this is
/// exactly what sits in a Tangled register.
class Bf16 {
 public:
  constexpr Bf16() = default;
  constexpr explicit Bf16(std::uint16_t bits) : bits_(bits) {}

  static Bf16 from_float(float f);        // round-to-nearest-even
  /// Convert a signed 16-bit integer (Tangled `float $d`).
  static Bf16 from_int(std::int16_t v);

  float to_float() const;                 // exact
  /// Truncate toward zero, clamped to int16 (Tangled `int $d`).
  std::int16_t to_int() const;

  constexpr std::uint16_t bits() const { return bits_; }
  constexpr bool sign() const { return bits_ >> 15; }
  constexpr unsigned exponent() const { return (bits_ >> 7) & 0xff; }
  constexpr unsigned fraction() const { return bits_ & 0x7f; }
  bool is_nan() const { return exponent() == 0xff && fraction() != 0; }
  bool is_inf() const { return exponent() == 0xff && fraction() == 0; }
  bool is_zero() const { return (bits_ & 0x7fff) == 0; }

  /// addf / mulf / negf (Table 1).
  friend Bf16 operator+(Bf16 a, Bf16 b);
  friend Bf16 operator*(Bf16 a, Bf16 b);
  Bf16 operator-() const { return Bf16(static_cast<std::uint16_t>(bits_ ^ 0x8000)); }

  /// recip (Table 1): lookup-table fraction reciprocal, hardware style.
  /// Accuracy is bounded by the 7-bit table (max relative error ~2^-7).
  Bf16 recip() const;

  /// Reference reciprocal (full binary32 divide + RNE) for accuracy tests.
  Bf16 recip_exact() const;

  bool operator==(const Bf16& o) const { return bits_ == o.bits_; }

 private:
  std::uint16_t bits_ = 0;
};

/// Useful constants.
inline constexpr Bf16 kBf16Zero{0x0000};
inline constexpr Bf16 kBf16One{0x3f80};
inline constexpr Bf16 kBf16Inf{0x7f80};
inline constexpr Bf16 kBf16NegInf{0xff80};

}  // namespace tangled
