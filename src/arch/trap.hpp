// trap.hpp — architectural traps for the Tangled/Qat machine.
//
// The paper's host is a *conventional* processor, and a conventional
// processor does not die on a bad instruction: it halts with a recorded
// cause.  Every fault the simulators can encounter — an undefined encoding
// reaching EX, a Qat coprocessor operational fault, Qat resource exhaustion
// the RE backend cannot absorb, a watchdog expiry, an oversized program
// image — is converted into a Trap record instead of an escaping C++
// exception.  All five timing models (functional, multi-cycle accounting,
// multi-cycle FSM, pipeline accounting, latch-level RTL) report the same
// TrapKind, trap PC, and architectural state for the same faulting program;
// tests/test_traps.cpp proves it differentially.  A trap in a wrong-path /
// flushed pipeline slot never fires: traps are raised in EX, which only
// correct-path instructions reach.
#pragma once

#include <cstdint>
#include <string>

namespace tangled {

enum class TrapKind : std::uint8_t {
  kNone = 0,
  kIllegalInstruction,  // undefined encoding reached EX
  kDivideByZero,        // recip with a +-0 operand (the LUT has no 1/0 row)
  kQatFault,            // Qat coprocessor operational fault
  kResourceExhausted,   // Qat resource limit (chunk-pool symbol space)
  kWatchdogExpired,     // cycle watchdog tripped (runaway program)
  kMemImageOverflow,    // program image larger than the 64Ki-word memory
  kDataCorruption,      // uncorrectable upset in ECC-protected storage
};

inline const char* trap_kind_name(TrapKind k) {
  switch (k) {
    case TrapKind::kNone:
      return "none";
    case TrapKind::kIllegalInstruction:
      return "illegal-instruction";
    case TrapKind::kDivideByZero:
      return "divide-by-zero";
    case TrapKind::kQatFault:
      return "qat-fault";
    case TrapKind::kResourceExhausted:
      return "resource-exhausted";
    case TrapKind::kWatchdogExpired:
      return "watchdog-expired";
    case TrapKind::kMemImageOverflow:
      return "mem-image-overflow";
    case TrapKind::kDataCorruption:
      return "data-corruption";
  }
  return "unknown";
}

/// The architectural trap record: what stopped the machine and where.  On a
/// trap the faulting instruction does not commit, the PC stays at the
/// faulting instruction, and the machine halts — identically in every
/// simulator model.
struct Trap {
  TrapKind kind = TrapKind::kNone;
  std::uint16_t pc = 0;

  explicit operator bool() const { return kind != TrapKind::kNone; }
  bool operator==(const Trap&) const = default;
};

inline std::string to_string(const Trap& t) {
  if (!t) return "no trap";
  return std::string(trap_kind_name(t.kind)) + " at pc=" + std::to_string(t.pc);
}

}  // namespace tangled
