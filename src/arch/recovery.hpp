// recovery.hpp — periodic-checkpoint execution with rollback recovery.
//
// CheckpointingRunner drives any simulator exposing the SimBase-shaped
// surface (cpu()/memory()/qat()/run()/injector()) in slices, snapshotting
// full machine state (checkpoint.hpp) every `checkpoint_every` instructions.
// When a slice ends in a trap — or halts with a *wrong* answer, detected by
// the caller's validate predicate — the runner restores the latest
// checkpoint and resumes.  Repeated failure falls back to the initial
// checkpoint (a full restart).
//
// Why this converges: fault events (fault.hpp) are keyed on the simulator's
// monotone retired-instruction clock, which a restore does NOT rewind, so
// every upset fires at most once.  Once the plan is exhausted, re-execution
// is deterministic and fault-free, ending in the correct answer or a clean
// architectural trap.  The attempt budget is therefore sized from the plan.
//
// checkpoint_every = 0 selects restart-only recovery: no mid-run snapshots,
// every failure restores the initial state.  This is the REQUIRED mode for
// RtlPipelineSim — its run() discards in-flight pipeline latches between
// calls, so mid-run slicing is not architecturally sound there; the
// instruction-atomic models (SimBase family, MultiCycleFsmSim) slice safely
// because their run() returns only at instruction boundaries.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "arch/checkpoint.hpp"
#include "arch/simulators.hpp"

namespace tangled {

struct RecoveryStats {
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t rollbacks = 0;  // restores of the latest checkpoint
  std::uint64_t restarts = 0;   // restores of the initial checkpoint
  std::uint64_t instructions = 0;  // total retired, re-execution included
  std::uint64_t cycles = 0;        // total simulated, re-execution included
  Trap final_trap{};
  bool halted = false;
  bool recovered = false;  // at least one restore happened along the way
  bool gave_up = false;    // attempt budget exhausted without a clean finish
  bool stopped = false;    // the caller's should_stop predicate fired
};

template <typename Sim>
class CheckpointingRunner {
 public:
  /// `slice_cap` (0 = unlimited) bounds any single sim.run() slice even in
  /// restart-only mode, so a caller's should_stop predicate (deadline,
  /// cancellation — src/serve) is consulted at least that often.  Only safe
  /// on the instruction-atomic models; leave it 0 for RtlPipelineSim, whose
  /// run() discards in-flight pipeline latches between calls.  When both
  /// checkpoint_every and slice_cap are set, the checkpoint cadence is their
  /// minimum (a checkpoint is taken after every clean slice).
  CheckpointingRunner(Sim& sim, std::uint64_t checkpoint_every,
                      std::uint64_t slice_cap = 0)
      : sim_(sim), every_(checkpoint_every), slice_cap_(slice_cap) {}

  /// Observer for mid-run checkpoints: called with each `latest` image the
  /// runner takes after a clean slice, plus the lineage instruction count it
  /// was taken at.  The serve journal uses this to persist resume points
  /// across process death.  The sink MUST NOT throw — durability failures
  /// are the sink's own policy (degrade, drop), never an execution fault.
  /// The initial checkpoint is not reported (a restart from scratch needs
  /// no image).  No-op in restart-only mode (checkpoint_every == 0).
  using CheckpointSink =
      std::function<void(const std::vector<std::uint8_t>&, std::uint64_t)>;
  void set_checkpoint_sink(CheckpointSink sink) { sink_ = std::move(sink); }

  /// Observer for slice progress: called after every sim.run() slice with the
  /// number of instructions that slice retired (re-execution included, so a
  /// recovering run still reads as alive).  The serve supervisor uses this as
  /// a liveness heartbeat for stall detection.  MUST NOT throw.  Granularity
  /// is min(checkpoint_every, slice_cap); with both 0 (restart-only RTL runs)
  /// the whole run is one slice and the observer fires once at the end.
  using SliceObserver = std::function<void(std::uint64_t)>;
  void set_slice_observer(SliceObserver obs) { observer_ = std::move(obs); }

  /// Run to completion (at most max_instructions along any one lineage).
  /// `validate` is called on a clean halt; returning false marks the run as
  /// silently corrupted and triggers recovery exactly like a trap.
  template <typename Validate>
  RecoveryStats run(std::uint64_t max_instructions, Validate&& validate) {
    return run(max_instructions, std::forward<Validate>(validate),
               [] { return false; });
  }

  /// As above, plus a cooperative stop predicate checked between slices.
  /// When it returns true the runner returns immediately with stopped set;
  /// the machine is left exactly as the last slice left it (no restore), so
  /// the caller can inspect partial state before discarding the sim.
  template <typename Validate, typename ShouldStop>
  RecoveryStats run(std::uint64_t max_instructions, Validate&& validate,
                    ShouldStop&& should_stop) {
    RecoveryStats rs;
    const std::vector<std::uint8_t> initial =
        save_checkpoint(sim_.cpu(), sim_.memory(), sim_.qat());
    std::vector<std::uint8_t> latest = initial;
    ++rs.checkpoints_taken;

    std::uint64_t completed = 0;  // instructions along the current lineage
    std::uint64_t base = 0;       // `completed` when `latest` was taken
    // Every fault event fires at most once, so this many attempts always
    // reach the deterministic fault-free tail (+ slack for validate-driven
    // restarts on a plan-free run).
    const std::uint64_t max_attempts =
        static_cast<std::uint64_t>(sim_.injector().plan().events.size()) + 4;
    std::uint64_t failures = 0;

    while (true) {
      if (should_stop()) {
        rs.stopped = true;
        return rs;
      }
      std::uint64_t slice = max_instructions - completed;
      if (every_ != 0) slice = std::min(slice, every_);
      if (slice_cap_ != 0) slice = std::min(slice, slice_cap_);
      const SimStats s = sim_.run(slice);
      rs.instructions += s.instructions;
      rs.cycles += s.cycles;
      completed += s.instructions;
      if (observer_) observer_(s.instructions);

      if (s.halted && !s.trap && validate(sim_)) {
        rs.halted = true;
        return rs;
      }

      bool failed = s.halted || completed >= max_instructions;
      Trap fail_trap = s.trap;
      bool fail_halted = s.halted;
      // Integrity gate before snapshotting: a checkpoint serializes raw
      // payload words, and restore re-encodes the ECC sidecar over them —
      // so snapshotting a latent upset would *launder* it into a "clean"
      // image that survives every future rollback.  Scrub first; an
      // uncorrectable upset makes this slice a failure instead.
      if (!failed && every_ != 0 && sim_.ecc_enabled()) {
        const TrapKind tk =
            scrub_protected_state(sim_.qat(), sim_.memory());
        if (tk != TrapKind::kNone) {
          failed = true;
          fail_halted = true;
          fail_trap = Trap{tk, sim_.cpu().pc};
        }
      }

      // A lineage fails by trapping, by halting with a wrong answer, or by
      // exhausting its instruction budget without halting (a fault-corrupted
      // branch can loop forever — recover from that too).
      if (failed) {
        ++failures;
        if (failures >= max_attempts) {
          rs.gave_up = true;
          rs.halted = fail_halted;
          rs.final_trap = fail_trap;
          return rs;
        }
        if (every_ != 0 && failures <= max_attempts / 2) {
          load_checkpoint(latest, sim_.cpu(), sim_.memory(), sim_.qat());
          completed = base;
          ++rs.rollbacks;
        } else {
          // Persistent failure (or restart-only mode): the damage may
          // predate `latest`; go back to the beginning.
          load_checkpoint(initial, sim_.cpu(), sim_.memory(), sim_.qat());
          latest = initial;
          completed = 0;
          base = 0;
          ++rs.restarts;
        }
        rs.recovered = true;
        continue;
      }

      // Restart-only mode (every_ == 0) never snapshots mid-run, even when a
      // slice cap splits the run for stop-predicate polling.
      if (every_ != 0) {
        latest = save_checkpoint(sim_.cpu(), sim_.memory(), sim_.qat());
        base = completed;
        ++rs.checkpoints_taken;
        if (sink_) sink_(latest, completed);
      }
    }
  }

 private:
  Sim& sim_;
  std::uint64_t every_;
  std::uint64_t slice_cap_;
  CheckpointSink sink_;
  SliceObserver observer_;
};

}  // namespace tangled
