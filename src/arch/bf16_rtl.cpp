#include "arch/bf16_rtl.hpp"

#include <bit>
#include <cstdint>
#include <utility>

namespace tangled {
namespace {

struct Unpacked {
  bool sign = false;
  int exp = 0;           // biased; denormals reported as exp = 1
  std::uint32_t sig = 0; // 8-bit significand with hidden bit (0 for denorm)
  bool nan = false;
  bool inf = false;
  bool zero = false;
};

Unpacked unpack(Bf16 x) {
  Unpacked u;
  u.sign = x.sign();
  const unsigned e = x.exponent();
  const unsigned f = x.fraction();
  if (e == 0xff) {
    u.nan = f != 0;
    u.inf = f == 0;
    return u;
  }
  if (e == 0) {
    u.zero = f == 0;
    u.exp = 1;        // denormal exponent
    u.sig = f;        // no hidden bit
  } else {
    u.exp = static_cast<int>(e);
    u.sig = 0x80u | f;
  }
  return u;
}

Bf16 make(bool sign, unsigned exp, unsigned frac) {
  return Bf16(static_cast<std::uint16_t>((sign ? 0x8000u : 0u) |
                                         ((exp & 0xffu) << 7) |
                                         (frac & 0x7fu)));
}

Bf16 quiet_nan(bool sign) { return make(sign, 0xff, 0x40); }
Bf16 infinity(bool sign) { return make(sign, 0xff, 0); }
Bf16 zero_val(bool sign) { return make(sign, 0, 0); }

/// Pack sign * sig * 2^pw2 into bf16 with round-to-nearest-even, handling
/// normal, subnormal, overflow and underflow.  `sig` is a plain integer
/// (any magnitude); this is the shared normalize-and-round back end that the
/// adder, multiplier and int converter all feed — one rounding unit, as a
/// real datapath would share it.
Bf16 pack_rne(bool sign, std::uint64_t sig, int pw2) {
  if (sig == 0) return zero_val(sign);
  const int msb = 63 - std::countl_zero(sig);
  const int unbiased = msb + pw2;          // value in [2^unbiased, 2^(unbiased+1))
  int biased = unbiased + 127;
  if (biased >= 1) {
    // Normal path: mantissa = bits msb..msb-7; round at bit msb-8.
    const int drop = msb - 7;
    std::uint64_t mant;
    if (drop <= 0) {
      mant = sig << -drop;  // exact
    } else {
      const std::uint64_t kept = sig >> drop;
      const std::uint64_t guard = (sig >> (drop - 1)) & 1u;
      const std::uint64_t sticky_mask = (std::uint64_t{1} << (drop - 1)) - 1;
      const bool sticky = (sig & sticky_mask) != 0;
      mant = kept + ((guard && (sticky || (kept & 1u))) ? 1u : 0u);
      if (mant >= 0x100u) {  // rounding carried out of the mantissa
        mant >>= 1;
        ++biased;
      }
    }
    if (biased >= 0xff) return infinity(sign);
    return make(sign, static_cast<unsigned>(biased),
                static_cast<unsigned>(mant & 0x7fu));
  }
  // Subnormal path: align so one unit = 2^-133 (the minimum denormal).
  const int n = pw2 + 133;
  std::uint64_t mant;
  if (n >= 0) {
    mant = msb + n < 62 ? (sig << n) : ~std::uint64_t{0};  // saturate huge
  } else {
    const int drop = -n;
    if (drop > 63) return zero_val(sign);
    const std::uint64_t kept = sig >> drop;
    const std::uint64_t guard = drop >= 1 ? (sig >> (drop - 1)) & 1u : 0u;
    const bool sticky =
        drop >= 2 && (sig & ((std::uint64_t{1} << (drop - 1)) - 1)) != 0;
    mant = kept + ((guard && (sticky || (kept & 1u))) ? 1u : 0u);
  }
  if (mant == 0) return zero_val(sign);
  if (mant >= 0x80u) return make(sign, 1, static_cast<unsigned>(mant & 0x7fu));
  return make(sign, 0, static_cast<unsigned>(mant));
}

}  // namespace

Bf16 bf16_add_rtl(Bf16 a, Bf16 b) {
  const Unpacked ua = unpack(a);
  const Unpacked ub = unpack(b);
  if (ua.nan || ub.nan) return quiet_nan(ua.nan ? ua.sign : ub.sign);
  if (ua.inf && ub.inf) {
    return ua.sign == ub.sign ? infinity(ua.sign) : quiet_nan(false);
  }
  if (ua.inf) return infinity(ua.sign);
  if (ub.inf) return infinity(ub.sign);
  if (ua.zero && ub.zero) return zero_val(ua.sign && ub.sign);
  if (ua.zero) return b;
  if (ub.zero) return a;

  // Order so |x| >= |y| (compare exponent then significand).
  Unpacked x = ua;
  Unpacked y = ub;
  if (y.exp > x.exp || (y.exp == x.exp && y.sig > x.sig)) std::swap(x, y);

  // Align with 3 guard bits (G, R, S); collapse far shifts into sticky.
  const int diff = x.exp - y.exp;
  std::uint64_t sx = static_cast<std::uint64_t>(x.sig) << 3;
  std::uint64_t sy = static_cast<std::uint64_t>(y.sig) << 3;
  if (diff >= 12) {
    sy = sy != 0 ? 1 : 0;  // pure sticky
  } else if (diff > 0) {
    const std::uint64_t lost = sy & ((std::uint64_t{1} << diff) - 1);
    sy = (sy >> diff) | (lost != 0 ? 1 : 0);
  }

  std::uint64_t sum;
  bool sign;
  if (x.sign == y.sign) {
    sum = sx + sy;
    sign = x.sign;
  } else {
    sum = sx - sy;  // non-negative: |x| >= |y|
    sign = x.sign;
    if (sum == 0) return zero_val(false);  // RNE: exact cancellation -> +0
  }
  // Units of 2^-3 below bit 0 of the significand; significand unit is
  // 2^(exp - 127 - 7).
  return pack_rne(sign, sum, x.exp - 127 - 7 - 3);
}

Bf16 bf16_mul_rtl(Bf16 a, Bf16 b) {
  const Unpacked ua = unpack(a);
  const Unpacked ub = unpack(b);
  const bool sign = ua.sign != ub.sign;
  if (ua.nan || ub.nan) return quiet_nan(ua.nan ? ua.sign : ub.sign);
  if (ua.inf || ub.inf) {
    if (ua.zero || ub.zero) return quiet_nan(false);  // inf * 0
    return infinity(sign);
  }
  if (ua.zero || ub.zero) return zero_val(sign);

  // 8x8 -> 16-bit significand product (one DSP multiplier / partial-product
  // array in hardware); each operand's significand unit is 2^(exp-127-7).
  const std::uint64_t prod =
      static_cast<std::uint64_t>(ua.sig) * static_cast<std::uint64_t>(ub.sig);
  return pack_rne(sign, prod, (ua.exp - 127 - 7) + (ub.exp - 127 - 7));
}

Bf16 bf16_from_int_rtl(std::int16_t v) {
  if (v == 0) return zero_val(false);
  const bool sign = v < 0;
  const std::uint64_t mag =
      sign ? static_cast<std::uint64_t>(-static_cast<std::int32_t>(v))
           : static_cast<std::uint64_t>(v);
  return pack_rne(sign, mag, 0);
}

std::int16_t bf16_to_int_rtl(Bf16 a) {
  const Unpacked u = unpack(a);
  if (u.nan) return 0;
  if (u.inf) return u.sign ? -32768 : 32767;
  if (u.zero || u.sig == 0) return 0;
  // value = sig * 2^(exp - 127 - 7): shift and truncate toward zero.
  const int shift = u.exp - 127 - 7;
  std::int64_t mag;
  if (shift >= 0) {
    if (shift > 20) return u.sign ? -32768 : 32767;  // saturate
    mag = static_cast<std::int64_t>(u.sig) << shift;
  } else {
    mag = shift < -63
              ? 0
              : static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(u.sig) >> -shift);
  }
  if (!u.sign && mag > 32767) return 32767;
  if (u.sign && mag > 32768) return -32768;
  return static_cast<std::int16_t>(u.sign ? -mag : mag);
}

}  // namespace tangled
