// rtl_pipeline.hpp — a latch-level 5-stage pipeline simulator, the C++
// analogue of the student teams' synthesizable Verilog (paper §3.1).
//
// Unlike PipelineSim (exact cycle *accounting* around atomic instruction
// execution), this model simulates the actual hardware structure cycle by
// cycle: IF/ID/EX/MEM/WB stage latches, a register file written in WB and
// read in ID (write-before-read), a real forwarding network into EX
// (EX/MEM and MEM/WB sources), load-use hazard detection that stalls ID,
// taken-branch squash of the two younger fetch slots, and the two-cycle
// fetch of two-word Qat instructions.
//
// Data correctness therefore genuinely depends on the forwarding unit —
// exactly the part of the project the paper says students wrestled with.
// tests/test_rtl_pipeline.cpp differentially verifies, over random
// programs, that (a) architectural results equal FunctionalSim and (b)
// cycle counts equal PipelineSim's accounting model.
//
// The per-cycle stage occupancy can be traced into a classic pipeline
// diagram (instruction rows, cycle columns, F D X M W letters) for
// debugging and documentation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/cpu.hpp"
#include "arch/simulators.hpp"

namespace tangled {

class RtlPipelineSim {
 public:
  explicit RtlPipelineSim(unsigned ways = 16,
                          pbp::Backend backend = pbp::Backend::kDense)
      : qat_(ways, backend) {}

  void load(const Program& p) { load_words(p.words); }
  void load_words(const std::vector<std::uint16_t>& w) {
    if (!mem_.load(w)) {
      cpu_.trap = Trap{TrapKind::kMemImageOverflow, 0};
      cpu_.halted = true;
    }
  }

  /// Simulate cycle-by-cycle until the halting instruction retires (or the
  /// instruction limit trips).  Enable tracing first to get a diagram.
  SimStats run(std::uint64_t max_instructions = 1'000'000);

  /// Rewind to power-on state, reusing allocations (same contract as
  /// SimBase::reset(): bit-identical to a freshly constructed sim).
  void reset() {
    cpu_ = CpuState{};
    mem_.reset();
    qat_.reset();
    stats_ = {};
    console_.clear();
    trace_enabled_ = false;
    rows_.clear();
    injector_ = FaultInjector{};
    retired_total_ = 0;
    max_cycles_ = 0;
    scrub_every_ = 0;
  }

  // --- Fault tolerance (same contract as SimBase) ---
  void set_fault_plan(FaultPlan plan) {
    if (plan.max_pool_symbols != 0) {
      qat_.set_pool_symbol_cap(plan.max_pool_symbols);
    }
    injector_.set_plan(std::move(plan));
  }
  const FaultInjector& injector() const { return injector_; }
  void set_max_cycles(std::uint64_t n) { max_cycles_ = n; }
  std::uint64_t retired_total() const { return retired_total_; }

  // --- Data integrity (same contract as SimBase) ---
  void set_ecc_mode(pbp::EccMode m) {
    mem_.set_ecc_mode(m);
    qat_.set_ecc_mode(m);
  }
  void set_ecc_epoch(std::uint64_t n) {
    mem_.set_ecc_epoch(n);
    qat_.set_ecc_epoch(n);
  }
  void set_scrub_every(std::uint64_t n) { scrub_every_ = n; }
  /// Intra-register worker threads for wide dense Qat sweeps.
  void set_qat_threads(unsigned n) { qat_.set_qat_threads(n); }
  bool ecc_enabled() const {
    return mem_.ecc_mode() != pbp::EccMode::kOff ||
           qat_.ecc_mode() != pbp::EccMode::kOff;
  }

  CpuState& cpu() { return cpu_; }
  const CpuState& cpu() const { return cpu_; }
  Memory& memory() { return mem_; }
  QatEngine& qat() { return qat_; }
  const SimStats& stats() const { return stats_; }

  /// Text emitted by `sys $r` console services (at EX, in program order —
  /// wrong-path instructions never reach EX, so nothing spurious prints).
  const std::string& console() const { return console_; }

  /// Record stage occupancy per cycle for diagram().
  void enable_trace(bool on = true) { trace_enabled_ = on; }
  /// Text pipeline diagram: one row per fetched instruction, one column per
  /// cycle, letters F f D X M W (f = second fetch word), '-' = stall.
  std::string diagram() const;

 private:
  struct IfId {
    bool valid = false;
    std::uint16_t pc = 0;
    Instr instr;
    unsigned words = 1;
    std::uint64_t seq = 0;  // fetch order, for tracing
    // Uncorrectable upset seen while fetching this slot: the latch carries
    // the poison to EX, where a precise kDataCorruption trap is raised —
    // a wrong-path poisoned fetch is squashed like any other slot.
    bool poisoned = false;
  };
  struct IdEx {
    bool valid = false;
    std::uint16_t pc = 0;
    Instr instr;
    unsigned words = 1;
    std::uint16_t dval = 0;
    std::uint16_t sval = 0;
    std::uint64_t seq = 0;
    bool poisoned = false;
  };
  struct ExMem {
    bool valid = false;
    std::uint16_t pc = 0;
    Instr instr;
    ExOut out;  // carries the trap cause, if EX trapped
    std::uint64_t seq = 0;
  };
  struct MemWb {
    bool valid = false;
    std::uint16_t pc = 0;
    Instr instr;
    bool writes_reg = false;
    std::uint16_t value = 0;
    bool halt = false;
    TrapKind trap = TrapKind::kNone;
    std::uint64_t seq = 0;
  };

  struct TraceRow {
    std::uint64_t seq;
    std::string text;  // disassembly
    std::vector<std::pair<std::uint64_t, char>> marks;  // (cycle, stage)
  };

  void mark(std::uint64_t seq, std::uint64_t cycle, char stage);

  Memory mem_;
  CpuState cpu_;
  QatEngine qat_;
  SimStats stats_;
  std::string console_;
  bool trace_enabled_ = false;
  std::vector<TraceRow> rows_;
  FaultInjector injector_;
  std::uint64_t retired_total_ = 0;
  std::uint64_t max_cycles_ = 0;
  std::uint64_t scrub_every_ = 0;
};

}  // namespace tangled
