#include "arch/rtl_pipeline.hpp"

#include <algorithm>

namespace tangled {

void RtlPipelineSim::mark(std::uint64_t seq, std::uint64_t cycle, char stage) {
  if (!trace_enabled_) return;
  for (auto it = rows_.rbegin(); it != rows_.rend(); ++it) {
    if (it->seq == seq) {
      it->marks.emplace_back(cycle, stage);
      return;
    }
  }
}

SimStats RtlPipelineSim::run(std::uint64_t max_instructions) {
  stats_ = {};
  console_.clear();
  rows_.clear();
  if (cpu_.halted) {
    // Image-overflow trap at load time, or a previous run halted/trapped.
    stats_.halted = true;
    stats_.trap = cpu_.trap;
    return stats_;
  }

  IfId ifid;
  IdEx idex;
  ExMem exmem;
  MemWb memwb;

  // Fetch state: a two-word instruction's first word, waiting for its second.
  bool pending_valid = false;
  std::uint16_t pending_w0 = 0;
  std::uint16_t pending_pc = 0;
  std::uint64_t pending_seq = 0;

  std::uint64_t seq_counter = 0;
  bool fetch_stopped = false;  // sys/invalid seen in EX: stop fetching
  const std::uint64_t cycle_limit = max_instructions * 8 + 64;

  std::uint64_t cycle = 0;
  for (; cycle < cycle_limit; ++cycle) {
    // ----- WB (first half: write-before-read register file) -----
    if (memwb.valid) {
      if (memwb.writes_reg) cpu_.set_reg(memwb.instr.d, memwb.value);
      mark(memwb.seq, cycle, 'W');
      ++stats_.instructions;
      ++retired_total_;
      if (ecc_enabled()) {
        // Same verification-clock advance point as SimBase::run.
        mem_.ecc_tick(retired_total_);
        qat_.ecc_tick(retired_total_);
      }
      if (memwb.halt) {
        if (memwb.trap != TrapKind::kNone) {
          // Precise trap: report the faulting instruction's PC as the
          // architectural PC, matching the instruction-atomic models.
          cpu_.trap = Trap{memwb.trap, memwb.pc};
          cpu_.pc = memwb.pc;
        } else {
          // Clean halt (sys, one word): the architectural PC is the next
          // word, not the run-ahead fetch pointer.
          cpu_.pc = static_cast<std::uint16_t>(memwb.pc + 1);
          // Clean-halt integrity gate (same contract as SimBase::run): a
          // protected run may not report success over corrupt state.
          if (ecc_enabled()) {
            const TrapKind tk = scrub_protected_state(qat_, mem_);
            if (tk != TrapKind::kNone) cpu_.trap = Trap{tk, cpu_.pc};
          }
        }
        cpu_.halted = true;
        stats_.halted = true;
        stats_.trap = cpu_.trap;
        stats_.cycles = cycle + 1;
        return stats_;
      }
      if (injector_.armed()) {
        const TrapKind tk =
            injector_.apply_due(retired_total_, cpu_, mem_, qat_);
        if (tk != TrapKind::kNone) {
          cpu_.trap = Trap{tk, cpu_.pc};
          cpu_.halted = true;
          stats_.halted = true;
          stats_.trap = cpu_.trap;
          stats_.cycles = cycle + 1;
          return stats_;
        }
      }
      // Background scrubber on the shared retired-instruction clock (the
      // same architectural point the instruction-atomic models scrub at).
      if (scrub_every_ != 0 && ecc_enabled() &&
          retired_total_ % scrub_every_ == 0) {
        const TrapKind tk = scrub_protected_state(qat_, mem_);
        if (tk != TrapKind::kNone) {
          cpu_.trap = Trap{tk, cpu_.pc};
          cpu_.halted = true;
          stats_.halted = true;
          stats_.trap = cpu_.trap;
          stats_.cycles = cycle + 1;
          return stats_;
        }
      }
      if (stats_.instructions >= max_instructions) {
        stats_.cycles = cycle + 1;
        return stats_;
      }
    }

    // ----- MEM -----
    MemWb new_memwb;
    if (exmem.valid) {
      const ExOut& o = exmem.out;
      new_memwb.valid = true;
      new_memwb.pc = exmem.pc;
      new_memwb.instr = exmem.instr;
      new_memwb.writes_reg = o.writes_reg;
      new_memwb.halt = o.halt;
      new_memwb.trap = o.trap;
      new_memwb.seq = exmem.seq;
      if (o.is_store) {
        mem_.write(o.addr, o.store_data);
        new_memwb.value = 0;
      } else if (o.is_load) {
        new_memwb.value = mem_.read(o.addr);
      } else {
        new_memwb.value = o.value;
      }
      mark(exmem.seq, cycle, 'M');
    }

    // ----- EX (with the forwarding network) -----
    ExMem new_exmem;
    bool flush = false;
    std::uint16_t redirect_pc = 0;
    bool halt_seen = false;
    if (idex.valid) {
      auto forwarded = [&](unsigned reg, std::uint16_t id_value,
                           bool used) -> std::uint16_t {
        if (!used) return id_value;
        // EX hazard: the instruction one ahead (in MEM this cycle) — its
        // ALU result was computed last cycle.  Loads have no data yet; the
        // hazard unit guarantees we never need them here.
        if (exmem.valid && exmem.out.writes_reg && !exmem.out.is_load &&
            (exmem.instr.d & 15u) == (reg & 15u)) {
          return exmem.out.value;
        }
        // MEM hazard: two ahead (in WB this cycle) — includes load data.
        if (memwb.valid && memwb.writes_reg &&
            (memwb.instr.d & 15u) == (reg & 15u)) {
          return memwb.value;
        }
        return id_value;
      };
      const std::uint16_t dv =
          forwarded(idex.instr.d, idex.dval, reads_d(idex.instr.op));
      const std::uint16_t sv =
          forwarded(idex.instr.s, idex.sval, reads_s(idex.instr.op));
      ExOut o;
      if (idex.poisoned) {
        // A poisoned fetch reaching EX is by construction correct-path:
        // synthesize the precise data-corruption trap here instead of
        // executing garbage bits.
        o.halt = true;
        o.trap = TrapKind::kDataCorruption;
      } else {
        o = exec_stage(idex.instr, idex.pc, idex.words, dv, sv, qat_);
        if (o.is_load && o.trap == TrapKind::kNone) {
          // Verified load, probed at EX so the trap is precise (MEM commits
          // a store of the *next* instruction before WB would see a MEM-
          // stage trap).  Under kCorrect the probe repairs the word in
          // place and MEM's raw read next cycle returns the corrected
          // value.
          bool corrupt = false;
          (void)mem_.load_checked(o.addr, &corrupt);
          if (corrupt) {
            o.halt = true;
            o.trap = TrapKind::kDataCorruption;
            o.writes_reg = false;
            o.is_load = false;
          }
        }
      }
      new_exmem.valid = true;
      new_exmem.pc = idex.pc;
      new_exmem.instr = idex.instr;
      new_exmem.out = o;
      new_exmem.seq = idex.seq;
      mark(idex.seq, cycle, 'X');
      if (o.print) {
        console_ += std::to_string(static_cast<std::int16_t>(o.print_value));
        console_ += '\n';
      }
      if (o.taken) {
        flush = true;
        redirect_pc = o.target;
        if (flush) ++stats_.taken_branches;
      }
      halt_seen = o.halt;
    }

    // ----- ID (hazard detection + register read) -----
    IdEx new_idex;  // bubble unless filled
    bool stall = false;
    if (ifid.valid && !flush && !halt_seen) {
      // Load-use: the instruction that just left for MEM is a load whose
      // destination this instruction reads — its data arrives too late to
      // forward into our EX next cycle.
      const bool producer_is_load =
          idex.valid && idex.instr.op == Op::kLoad;
      const unsigned load_dest = idex.instr.d & 15u;
      const bool uses_load =
          producer_is_load &&
          ((reads_d(ifid.instr.op) && (ifid.instr.d & 15u) == load_dest) ||
           (reads_s(ifid.instr.op) && (ifid.instr.s & 15u) == load_dest));
      if (uses_load) {
        stall = true;
        ++stats_.data_stall_cycles;
        mark(ifid.seq, cycle, '-');
      } else {
        new_idex.valid = true;
        new_idex.pc = ifid.pc;
        new_idex.instr = ifid.instr;
        new_idex.words = ifid.words;
        new_idex.seq = ifid.seq;
        new_idex.poisoned = ifid.poisoned;
        // Register file read (WB already wrote this cycle).
        new_idex.dval = cpu_.reg(ifid.instr.d);
        new_idex.sval = cpu_.reg(ifid.instr.s);
        mark(ifid.seq, cycle, 'D');
      }
    }

    // ----- IF -----
    IfId new_ifid = stall ? ifid : IfId{};
    if (flush) {
      // Squash the wrong path: the ID-stage instruction and any fetch in
      // progress.  Count the two lost slots like the accounting model.
      //
      // The two increments below are NOT a double count.  A taken branch
      // resolving in EX always costs exactly two fetch slots here:
      //   (1) the wrong-path instruction one stage behind it — either
      //       sitting in IF/ID (`ifid.valid`) or mid-way through a
      //       two-word fetch (`pending_valid`).  The branch itself is a
      //       one-word instruction, so by the cycle it reaches EX the
      //       fetch unit has always had time to issue at least the first
      //       wrong-path word: exactly one of the two flags is set.
      //   (2) this cycle's IF slot, suppressed by the `!flush` guard on
      //       the fetch arm below — a second lost fetch opportunity that
      //       no squashed latch records.
      // This matches PipelineSim::account, where `redirect - next_fetch`
      // is provably always 2 for a one-word branch (ex_at - 1 >=
      // fetch_end + 1, so next_fetch = ex_at - 1 and redirect = ex_at + 1).
      // Pinned cycle-exact in tests/test_rtl_pipeline.cpp (FlushAccounting*)
      // and cross-checked per-seed in RtlDifferential.
      if (ifid.valid || pending_valid) stats_.flush_cycles += 1;
      stats_.flush_cycles += 1;
      pending_valid = false;
      new_ifid = IfId{};
      new_idex.valid = false;
      cpu_.pc = redirect_pc;
    } else if (halt_seen) {
      fetch_stopped = true;
      pending_valid = false;
      new_ifid = IfId{};
      new_idex.valid = new_idex.valid && false;
    } else if (!stall && !fetch_stopped) {
      if (pending_valid) {
        // Second word of a two-word Qat instruction (fetch verified; an
        // upset poisons the whole slot).
        bool corrupt = false;
        const std::uint16_t w1 = mem_.load_checked(cpu_.pc, &corrupt);
        cpu_.pc = static_cast<std::uint16_t>(cpu_.pc + 1);
        const Decoded dec = decode(pending_w0, w1);
        new_ifid.valid = true;
        new_ifid.pc = pending_pc;
        new_ifid.instr = dec.instr;
        new_ifid.words = 2;
        new_ifid.seq = pending_seq;
        new_ifid.poisoned = corrupt;
        pending_valid = false;
        ++stats_.fetch_extra_cycles;
        mark(pending_seq, cycle, 'f');
      } else {
        bool corrupt = false;
        const std::uint16_t w0 = mem_.load_checked(cpu_.pc, &corrupt);
        const Decoded peek = decode(w0, 0);
        const std::uint64_t seq = seq_counter++;
        if (trace_enabled_) {
          // Row text is refined after full decode for two-word forms.
          rows_.push_back({seq, "", {}});
        }
        if (corrupt) {
          // Poisoned first word: never trust its decoded length — carry a
          // one-word poisoned slot to EX for the precise trap.
          new_ifid.valid = true;
          new_ifid.pc = cpu_.pc;
          new_ifid.instr = peek.instr;
          new_ifid.words = 1;
          new_ifid.seq = seq;
          new_ifid.poisoned = true;
          cpu_.pc = static_cast<std::uint16_t>(cpu_.pc + 1);
          mark(seq, cycle, 'F');
        } else if (peek.words == 2) {
          pending_valid = true;
          pending_w0 = w0;
          pending_pc = cpu_.pc;
          pending_seq = seq;
          cpu_.pc = static_cast<std::uint16_t>(cpu_.pc + 1);
          mark(seq, cycle, 'F');
          // new_ifid stays a bubble this cycle.
        } else {
          new_ifid.valid = true;
          new_ifid.pc = cpu_.pc;
          new_ifid.instr = peek.instr;
          new_ifid.words = 1;
          new_ifid.seq = seq;
          cpu_.pc = static_cast<std::uint16_t>(cpu_.pc + 1);
          mark(seq, cycle, 'F');
        }
        // Two-word forms get their text once the second word arrives (the
        // operand fields live in word 1).
        if (trace_enabled_ && peek.words == 1) {
          rows_.back().text = disassemble(peek.instr);
        }
      }
    }
    if (trace_enabled_ && new_ifid.valid) {
      for (auto& row : rows_) {
        if (row.seq == new_ifid.seq && row.text.empty()) {
          row.text = disassemble(new_ifid.instr);
        }
      }
    }

    // ----- latch update -----
    memwb = new_memwb;
    exmem = new_exmem;
    if (!stall) {
      idex = new_idex;
      ifid = new_ifid;
    } else {
      // Bubble into EX while ID holds.
      idex = IdEx{};
    }

    // ----- watchdog -----
    if (max_cycles_ != 0 && cycle + 1 >= max_cycles_) {
      cpu_.trap = Trap{TrapKind::kWatchdogExpired, cpu_.pc};
      cpu_.halted = true;
      stats_.halted = true;
      stats_.trap = cpu_.trap;
      stats_.cycles = cycle + 1;
      return stats_;
    }
  }
  stats_.cycles = cycle;
  stats_.trap = cpu_.trap;
  return stats_;
}

std::string RtlPipelineSim::diagram() const {
  std::string out;
  std::uint64_t max_cycle = 0;
  for (const auto& row : rows_) {
    for (const auto& [c, ch] : row.marks) max_cycle = std::max(max_cycle, c);
  }
  for (const auto& row : rows_) {
    if (row.marks.empty()) continue;
    std::string line(max_cycle + 1, '.');
    for (const auto& [c, ch] : row.marks) line[c] = ch;
    out += line;
    out += "  ";
    out += row.text;
    out += '\n';
  }
  return out;
}

}  // namespace tangled
