// checkpoint.hpp — serializable snapshots of full Tangled machine state.
//
// A checkpoint captures everything the architecture defines: the host CPU
// (registers, pc, halt/trap status), the 64Ki-word memory (run-length
// encoded — idle memory is overwhelmingly zero), and the Qat coprocessor
// register file in whichever backend representation is live (dense AoB word
// dumps, or RE chunk-pool symbols plus per-register run lists) together
// with its hardware counters.
//
// Format (all little-endian, pbp/serialize.hpp primitives):
//   u32 magic "TNGC"  u16 version
//   cpu:  16×u16 regs, u16 pc, u8 halted, u8 trap kind, u16 trap pc
//   mem:  u32 n_runs, then n_runs × (u32 length, u16 value)
//   qat:  QatEngine::serialize (backend snapshot + stats)
//
// The recovery driver (recovery.hpp) takes periodic checkpoints and rolls
// back to the latest one when a fault-injected run traps.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/cpu.hpp"

namespace tangled {

/// Snapshot the machine into a byte vector.
std::vector<std::uint8_t> save_checkpoint(const CpuState& cpu,
                                          const Memory& mem,
                                          const QatEngine& qat);

/// Restore a snapshot.  The QatEngine's backend is replaced by the
/// checkpointed one (kind and all).  Throws std::runtime_error on a
/// malformed or truncated stream.
void load_checkpoint(const std::vector<std::uint8_t>& bytes, CpuState& cpu,
                     Memory& mem, QatEngine& qat);

}  // namespace tangled
