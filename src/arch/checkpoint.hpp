// checkpoint.hpp — serializable snapshots of full Tangled machine state.
//
// A checkpoint captures everything the architecture defines: the host CPU
// (registers, pc, halt/trap status), the 64Ki-word memory (run-length
// encoded — idle memory is overwhelmingly zero), and the Qat coprocessor
// register file in whichever backend representation is live (dense AoB word
// dumps, or RE chunk-pool symbols plus per-register run lists) together
// with its hardware counters.
//
// Format v2 (all little-endian, pbp/serialize.hpp primitives) — a framed
// image so a truncated or bit-flipped file is *rejected*, never restored:
//   header:  u32 magic "TNGC"  u16 version  u32 payload_length  u32 crc32
//   payload: cpu:  16×u16 regs, u16 pc, u8 halted, u8 trap kind, u16 trap pc
//            mem:  u32 n_runs, then n_runs × (u32 length, u16 value)
//            qat:  QatEngine::serialize (backend snapshot + stats)
// crc32 (IEEE 802.3) covers the payload only; the magic/version/length
// fields are validated structurally.  Anything wrong throws CheckpointError
// with a machine-readable kind, and the target machine state is untouched.
//
// The recovery driver (recovery.hpp) takes periodic checkpoints and rolls
// back to the latest one when a fault-injected run traps.  On-disk images
// (save_checkpoint_file) are written with full durability discipline: the
// bytes go to a temp file which is fsync'd BEFORE the atomic rename (so the
// rename can never publish a name over unflushed data — the torn-rename
// window), and the parent directory is fsync'd AFTER it (so the new
// directory entry itself survives power loss).  A crash at any point leaves
// either the old complete image or the new complete image under the real
// name, never a half one.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/cpu.hpp"

namespace tangled {

/// Structured rejection of a checkpoint image.  Every failure mode a
/// tampered, truncated, or stale file can exhibit gets its own kind, so
/// callers (and tests) can assert the *reason*, not just "it threw".
class CheckpointError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kBadMagic,     // not a checkpoint file at all
    kBadVersion,   // a checkpoint, but from an incompatible format
    kTruncated,    // shorter than the header + declared payload length
    kCrcMismatch,  // framing intact but payload bits flipped
    kMalformed,    // CRC-clean yet structurally invalid (logic error /
                   // deliberate tamper that re-computed the CRC)
    kIoError,      // file could not be read or written
  };

  CheckpointError(Kind kind, const std::string& what)
      : std::runtime_error("checkpoint: " + what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Snapshot the machine into a framed byte vector.
std::vector<std::uint8_t> save_checkpoint(const CpuState& cpu,
                                          const Memory& mem,
                                          const QatEngine& qat);

/// Restore a snapshot.  The QatEngine's backend is replaced by the
/// checkpointed one (kind and all); memory's ECC sidecar is rebuilt and the
/// engine's ECC policy re-applied (policy is not machine state).  Throws
/// CheckpointError on any malformed, truncated, or corrupted image —
/// in which case cpu/mem/qat are left unchanged whenever the damage is
/// detectable before commit (magic/version/length/CRC all are).
void load_checkpoint(const std::vector<std::uint8_t>& bytes, CpuState& cpu,
                     Memory& mem, QatEngine& qat);

/// Durable on-disk image: writes `path` + ".tmp", fsyncs it, atomically
/// renames it over `path`, then fsyncs the parent directory.  Throws
/// CheckpointError(kIoError) on filesystem failure; on a pre-rename failure
/// the temp file is removed and the old image (if any) is untouched.  A
/// post-rename directory-fsync failure also throws: the new image is in
/// place but not yet durable, so the caller must treat the write as not
/// having happened and retry.
void save_checkpoint_file(const std::string& path, const CpuState& cpu,
                          const Memory& mem, const QatEngine& qat);

/// The durable-write primitive behind save_checkpoint_file, exposed so other
/// durability layers (the serve journal's checkpoint images) share one
/// fsync discipline.  Same contract and failure semantics.
void write_file_durable(const std::string& path, const std::uint8_t* data,
                        std::size_t size);

/// Test-only fault injection for write_file_durable.  The hook is consulted
/// at each durability stage — "open", "write", "fsync-tmp", "rename",
/// "fsync-dir" — and a nonzero return fails that stage with the returned
/// errno.  Pass nullptr to clear.  Not thread-safe; install only in
/// single-threaded test setup.
void set_checkpoint_io_failpoint(std::function<int(const char* stage)> hook);

/// Load and restore an on-disk image; same guarantees as load_checkpoint,
/// plus CheckpointError(kIoError) if the file cannot be read.
void load_checkpoint_file(const std::string& path, CpuState& cpu, Memory& mem,
                          QatEngine& qat);

}  // namespace tangled
