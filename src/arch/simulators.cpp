#include "arch/simulators.hpp"

#include <algorithm>

namespace tangled {

SimStats SimBase::run(std::uint64_t max_instructions) {
  stats_ = {};
  console_.clear();
  reset_timing();
  while (!cpu_.halted && stats_.instructions < max_instructions) {
    // Verified fetch: an uncorrectable upset in an instruction word is a
    // precise kDataCorruption trap at the fetch PC — the instruction never
    // enters the machine (it does not retire and consumes no cycles), so
    // every timing model reports the identical trap state.  The second
    // word is only verified when the first word says it exists.
    bool corrupt = false;
    const std::uint16_t w0 = mem_.load_checked(cpu_.pc, &corrupt);
    std::uint16_t w1 = 0;
    if (!corrupt && decode(w0, 0).words == 2) {
      w1 = mem_.load_checked(static_cast<std::uint16_t>(cpu_.pc + 1),
                             &corrupt);
    }
    if (corrupt) {
      cpu_.trap = Trap{TrapKind::kDataCorruption, cpu_.pc};
      cpu_.halted = true;
      break;
    }
    const Decoded dec = decode(w0, w1);
    ++coverage_[cpu_.pc];
    if (cpu_.pc >= coverage_limit_) coverage_limit_ = cpu_.pc + 1;
    const ExecResult exec =
        execute_instr(cpu_, mem_, qat_, dec.instr, dec.words);
    ++stats_.instructions;
    if (exec.taken_branch) ++stats_.taken_branches;
    if (exec.print) {
      console_ +=
          std::to_string(static_cast<std::int16_t>(exec.print_value));
      console_ += '\n';
    }
    account(dec.instr, dec.words, exec);
    cpu_.pc = exec.next_pc;
    ++retired_total_;
    if (ecc_enabled()) {
      // Advance the verification clock every retirement so epoch freshness
      // is measured on the same monotone clock as fault events and scrubs.
      mem_.ecc_tick(retired_total_);
      qat_.ecc_tick(retired_total_);
    }
    if (!cpu_.halted && injector_.armed()) {
      const TrapKind tk =
          injector_.apply_due(retired_total_, cpu_, mem_, qat_);
      if (tk != TrapKind::kNone) {
        cpu_.trap = Trap{tk, cpu_.pc};
        cpu_.halted = true;
      }
    }
    // Background scrubber, keyed on the same monotone retired-instruction
    // clock as fault events so every timing model scrubs (and, on an
    // uncorrectable upset, traps) at the identical architectural point.
    if (!cpu_.halted && scrub_every_ != 0 && ecc_enabled() &&
        retired_total_ % scrub_every_ == 0) {
      const TrapKind tk = scrub_protected_state(qat_, mem_);
      if (tk != TrapKind::kNone) {
        cpu_.trap = Trap{tk, cpu_.pc};
        cpu_.halted = true;
      }
    }
    if (!cpu_.halted && max_cycles_ != 0 && stats_.cycles >= max_cycles_) {
      cpu_.trap = Trap{TrapKind::kWatchdogExpired, cpu_.pc};
      cpu_.halted = true;
    }
  }
  // Clean-halt integrity gate: one final sweep so a protected run can never
  // report success while an undetected upset sits in its state (a detect-
  // mode run in particular must end in a trap, not silent completion).
  if (cpu_.halted && cpu_.trap.kind == TrapKind::kNone && ecc_enabled()) {
    const TrapKind tk = scrub_protected_state(qat_, mem_);
    if (tk != TrapKind::kNone) cpu_.trap = Trap{tk, cpu_.pc};
  }
  stats_.cycles += drain_cycles();
  stats_.halted = cpu_.halted;
  stats_.trap = cpu_.trap;
  return stats_;
}

void SimBase::reset() {
  cpu_ = CpuState{};
  mem_.reset();
  qat_.reset();
  stats_ = {};
  console_.clear();
  std::fill(coverage_.begin(),
            coverage_.begin() + static_cast<std::ptrdiff_t>(coverage_limit_),
            std::uint64_t{0});
  coverage_limit_ = 0;
  injector_ = FaultInjector{};
  retired_total_ = 0;
  max_cycles_ = 0;
  scrub_every_ = 0;
  reset_timing();
}

std::vector<std::uint16_t> SimBase::unexecuted(std::uint16_t limit) const {
  // Walk instruction starts from address 0 (the linker model: code at 0,
  // data after the final sys — a .word block would be reported as "code",
  // so pass the code length, not the image length).
  std::vector<std::uint16_t> out;
  std::uint32_t pc = 0;
  while (pc < limit) {
    const std::uint16_t w0 = mem_.read(static_cast<std::uint16_t>(pc));
    const std::uint16_t w1 = mem_.read(static_cast<std::uint16_t>(pc + 1));
    const Decoded dec = decode(w0, w1);
    if (coverage_[pc] == 0) out.push_back(static_cast<std::uint16_t>(pc));
    pc += dec.words;
  }
  return out;
}

PipelineSim::PipelineSim(unsigned ways, PipelineConfig config,
                         pbp::Backend backend)
    : SimBase(ways, backend), config_(config) {
  if (config_.stages != 4 && config_.stages != 5) {
    throw std::invalid_argument("PipelineSim: stages must be 4 or 5");
  }
}

void PipelineSim::account(const Instr& i, unsigned words,
                          const ExecResult& exec) {
  // Stage plan (5-stage): IF [F .. F+words-1], ID at D, EX at E,
  // MEM at E+1, WB at E+2.  The 4-stage variant folds MEM into EX
  // (IF ID EX/MEM WB): WB at E+1, loads forward like ALU results.
  const std::uint64_t fetch_start = fetch_time_;
  const std::uint64_t fetch_end = fetch_start + words - 1;
  if (words > 1) stats_.fetch_extra_cycles += words - 1;

  std::uint64_t decode_at = fetch_end + 1;
  if (!first_) decode_at = std::max(decode_at, last_decode_ + 1);

  std::uint64_t ex_at = decode_at + 1;
  if (!first_) ex_at = std::max(ex_at, last_ex_ + 1);

  // Operand interlocks: every Tangled register the instruction reads must be
  // ready at EX.  (Qat registers never interlock: the coprocessor register
  // file is read and written in EX only, in program order.)
  std::uint64_t ready_needed = 0;
  if (reads_d(i.op)) ready_needed = std::max(ready_needed, reg_ready_[i.d & 15u]);
  if (reads_s(i.op)) ready_needed = std::max(ready_needed, reg_ready_[i.s & 15u]);
  if (ready_needed > ex_at) {
    stats_.data_stall_cycles += ready_needed - ex_at;
    ex_at = ready_needed;
  }

  // Writeback scheduling / forwarding distance.
  if (writes_tangled_reg(i.op)) {
    std::uint64_t ready;
    const bool is_load = i.op == Op::kLoad;
    if (config_.forwarding) {
      // ALU/Qat results forward from the end of EX; loads from the end of
      // MEM (one bubble for a dependent successor in the 5-stage pipe).
      ready = ex_at + 1;
      if (is_load && config_.stages == 5) ready = ex_at + 2;
    } else {
      // Value visible only after WB writes the register file.
      ready = ex_at + (config_.stages == 5 ? 3 : 2);
    }
    reg_ready_[i.d & 15u] = ready;
  }

  // Next fetch: sequential fall-through, or redirect after EX resolves a
  // taken branch (squashing the wrong-path fetch slots).  The IF/ID buffer
  // is one deep, so while this instruction waits out a data interlock it
  // occupies the buffer and IF holds: the successor cannot begin fetching
  // before this instruction enters ID (= its EX cycle minus one).  The
  // latch-level model (rtl_pipeline.cpp) exhibits exactly this, and the two
  // are verified cycle-identical in tests/test_rtl_pipeline.cpp.
  std::uint64_t next_fetch = std::max(fetch_end + 1, ex_at - 1);
  if (exec.taken_branch) {
    const std::uint64_t redirect = ex_at + 1;
    if (redirect > next_fetch) {
      stats_.flush_cycles += redirect - next_fetch;
      next_fetch = redirect;
    }
  }

  fetch_time_ = next_fetch;
  last_decode_ = decode_at;
  last_ex_ = ex_at;
  first_ = false;

  // Completion time of this instruction (WB end, 0-based -> count).
  const std::uint64_t wb = ex_at + (config_.stages == 5 ? 2 : 1);
  stats_.cycles = std::max(stats_.cycles, wb + 1);
}

std::uint64_t PipelineSim::drain_cycles() const {
  // stats_.cycles already tracks the last writeback; nothing extra to add.
  return 0;
}

void PipelineSim::reset_timing() {
  reg_ready_.fill(0);
  fetch_time_ = 0;
  last_decode_ = 0;
  last_ex_ = 0;
  first_ = true;
}

}  // namespace tangled
