#include "arch/cpu.hpp"

#include <stdexcept>

#include "arch/bfloat16.hpp"

namespace tangled {
namespace {

std::int16_t s16(std::uint16_t v) { return static_cast<std::int16_t>(v); }
std::uint16_t u16(int v) { return static_cast<std::uint16_t>(v); }

/// Classify an exception escaping the Qat coprocessor.  Pool symbol-space
/// exhaustion (ChunkPool throws std::length_error) is a recoverable resource
/// trap — the backend guarantees the register file is unchanged when it
/// throws; anything else is a coprocessor fault.
TrapKind classify_qat_failure() {
  try {
    throw;  // rethrow the in-flight exception to inspect its type
  } catch (const pbp::CorruptionError&) {
    // Ordered first: CorruptionError derives from std::runtime_error, so
    // the broader clauses below would otherwise swallow it.
    return TrapKind::kDataCorruption;
  } catch (const std::length_error&) {
    return TrapKind::kResourceExhausted;
  } catch (const std::exception&) {
    return TrapKind::kQatFault;
  }
}

/// Table 1 `shift $d,$s`: left for non-negative $s, arithmetic right for
/// negative $s (the sign selects direction, as in the paper's earlier ISAs).
std::uint16_t do_shift(std::uint16_t d, std::uint16_t s) {
  const int amount = s16(s);
  if (amount >= 0) {
    return amount >= 16 ? 0 : u16(d << amount);
  }
  const int right = -amount;
  const std::int16_t sd = s16(d);
  if (right >= 16) return sd < 0 ? 0xffff : 0;
  return u16(sd >> right);
}

}  // namespace

ExOut exec_stage(const Instr& i, std::uint16_t pc, unsigned words,
                 std::uint16_t d_val, std::uint16_t s_val, QatEngine& qat) {
  ExOut o;
  const std::uint16_t d = d_val;
  const std::uint16_t s = s_val;
  const auto write = [&](std::uint16_t v) {
    o.value = v;
    o.writes_reg = true;
  };
  switch (i.op) {
    case Op::kAdd:
      write(u16(d + s));
      break;
    case Op::kAddf:
      write((Bf16(d) + Bf16(s)).bits());
      break;
    case Op::kAnd:
      write(d & s);
      break;
    case Op::kBrf:
      if (d == 0) {
        o.taken = true;
        o.target = u16(pc + 1 + i.imm);
      }
      break;
    case Op::kBrt:
      if (d != 0) {
        o.taken = true;
        o.target = u16(pc + 1 + i.imm);
      }
      break;
    case Op::kCopy:
      write(s);
      break;
    case Op::kFloat:
      write(Bf16::from_int(s16(d)).bits());
      break;
    case Op::kInt:
      write(u16(Bf16(d).to_int()));
      break;
    case Op::kJumpr:
      o.taken = true;
      o.target = d;
      break;
    case Op::kLex:
      write(u16(i.imm));
      break;
    case Op::kLhi:
      write(u16((d & 0x00ff) | ((i.imm & 0xff) << 8)));
      break;
    case Op::kLoad:
      o.is_load = true;
      o.addr = s;
      o.writes_reg = true;  // value supplied by MEM
      break;
    case Op::kMul:
      // Widen explicitly: uint16 operands promote to (signed) int, and a
      // large product is signed-overflow UB.  Low 16 bits are identical.
      write(u16(std::uint32_t{d} * std::uint32_t{s}));
      break;
    case Op::kMulf:
      write((Bf16(d) * Bf16(s)).bits());
      break;
    case Op::kNeg:
      write(u16(-s16(d)));
      break;
    case Op::kNegf:
      write((-Bf16(d)).bits());
      break;
    case Op::kNot:
      write(u16(~d));
      break;
    case Op::kOr:
      write(d | s);
      break;
    case Op::kRecip:
      // Bf16::recip(±0) is defined (inf), but at the ISA level a reciprocal
      // of zero is the divide-by-zero datapath fault: trap, don't commit.
      if (Bf16(d).is_zero()) {
        o.halt = true;
        o.trap = TrapKind::kDivideByZero;
      } else {
        write(Bf16(d).recip().bits());
      }
      break;
    case Op::kShift:
      write(do_shift(d, s));
      break;
    case Op::kSlt:
      write(s16(d) < s16(s) ? 1 : 0);
      break;
    case Op::kStore:
      o.is_store = true;
      o.addr = s;
      o.store_data = d;
      break;
    case Op::kSys:
      // The paper's Table 1 leaves `sys` open ("system call"); this repo
      // defines: plain `sys` ($d = 0) halts, `sys $r` prints $r's value as
      // a signed integer — enough for self-reporting assembly programs.
      if ((i.d & 15u) == 0) {
        o.halt = true;
      } else {
        o.print = true;
        o.print_value = d;
      }
      break;
    case Op::kXor:
      write(d ^ s);
      break;
    case Op::kQMeas:
    case Op::kQNext:
    case Op::kQPop: {
      std::uint16_t value = d;
      try {
        qat.execute(i, value);
        write(value);
      } catch (...) {
        o.halt = true;
        o.trap = classify_qat_failure();
      }
      break;
    }
    case Op::kInvalid:
      // Undefined opcodes used to halt silently; now they raise an
      // architectural trap so every simulator reports the same cause.
      o.halt = true;
      o.trap = TrapKind::kIllegalInstruction;
      break;
    default: {
      // Remaining Qat data operations touch no Tangled register; the
      // coprocessor register file is read and written here, in EX.
      std::uint16_t dummy = 0;
      try {
        qat.execute(i, dummy);
      } catch (...) {
        o.halt = true;
        o.trap = classify_qat_failure();
      }
      break;
    }
  }
  (void)words;
  return o;
}

ExecResult execute_instr(CpuState& cpu, Memory& mem, QatEngine& qat,
                         const Instr& i, unsigned words) {
  const ExOut o =
      exec_stage(i, cpu.pc, words, cpu.reg(i.d), cpu.reg(i.s), qat);
  ExecResult r;
  r.taken_branch = o.taken;
  r.halted = o.halt;
  r.print = o.print;
  r.print_value = o.print_value;
  r.trap = o.trap;
  if (o.trap != TrapKind::kNone) {
    // Precise trap: the faulting instruction does not commit and the PC
    // stays at it, so every simulator reports the identical machine state.
    r.next_pc = cpu.pc;
    cpu.trap = Trap{o.trap, cpu.pc};
    cpu.halted = true;
    return r;
  }
  r.next_pc = o.taken ? o.target : u16(cpu.pc + words);
  if (o.is_load) {
    // Verified load: an uncorrectable upset in the loaded word is a
    // precise data-corruption trap — nothing commits, PC stays put.
    bool corrupt = false;
    const std::uint16_t v = mem.load_checked(o.addr, &corrupt);
    if (corrupt) {
      r.next_pc = cpu.pc;
      r.halted = true;
      r.trap = TrapKind::kDataCorruption;
      cpu.trap = Trap{TrapKind::kDataCorruption, cpu.pc};
      cpu.halted = true;
      return r;
    }
    cpu.set_reg(i.d, v);
  } else {
    if (o.is_store) mem.write(o.addr, o.store_data);
    if (o.writes_reg) cpu.set_reg(i.d, o.value);
  }
  cpu.halted = r.halted;
  return r;
}

// ---------------------------------------------------------------------------
// Memory integrity layer.

void Memory::set_ecc_mode(pbp::EccMode m) {
  ecc_ = m;
  if (ecc_ == pbp::EccMode::kOff) {
    // Lazy sidecar: protection off stores (and pays) nothing.
    check_.clear();
    check_.shrink_to_fit();
    verified_at_.clear();
    verified_at_.shrink_to_fit();
    return;
  }
  refresh_ecc();
}

void Memory::refresh_ecc() {
  if (ecc_ == pbp::EccMode::kOff) return;
  check_.resize(words_.size());
  pbp::secded16_encode_block(words_.data(), check_.data(), words_.size());
  // A trusted bulk re-encode leaves every page canonical.
  verified_at_.assign(words_.size() / kEccPageWords, ecc_now_ + 1);
}

std::uint16_t Memory::load_checked(std::uint16_t addr, bool* corrupt) {
  if (ecc_ == pbp::EccMode::kOff) return words_[addr];
  if (ecc_epoch_ > 1) return load_checked_epoch(addr, corrupt);
  ++words_verified_;
  // Fused fast path: one table-driven probe covers the universal clean
  // case; only a mismatch pays for the scalar reference decode.
  if (pbp::secded16_encode_fast(words_[addr]) == check_[addr]) {
    return words_[addr];
  }
  if (ecc_ == pbp::EccMode::kDetect) {
    ++detected_;
    *corrupt = true;
    return words_[addr];
  }
  std::uint16_t payload = words_[addr];
  std::uint8_t check = check_[addr];
  switch (pbp::secded16_check(payload, check)) {
    case pbp::EccCheck::kClean:  // unreachable: the probe mismatched
      break;
    case pbp::EccCheck::kCorrected:
      words_[addr] = payload;
      check_[addr] = check;
      ++corrected_;
      break;
    case pbp::EccCheck::kUncorrectable:
      ++detected_;
      *corrupt = true;
      break;
  }
  return words_[addr];
}

std::uint16_t Memory::load_checked_epoch(std::uint16_t addr, bool* corrupt) {
  const std::size_t page = addr / kEccPageWords;
  const std::uint64_t stamp = verified_at_[page];
  // Subtraction-form freshness (pbp/ecc.hpp); the caller already
  // established ecc_epoch_ > 1.
  if (pbp::ecc_epoch_fresh(ecc_now_, stamp, ecc_epoch_)) {
    ++verifies_elided_;
    return words_[addr];
  }
  // Stale page: verify the whole page in one block sweep and stamp it.  An
  // upset anywhere in the page surfaces at this access (page-granular trap
  // precision at epoch > 1).
  const std::size_t base = page * kEccPageWords;
  pbp::EccSweep sweep;
  const pbp::EccCheck r = pbp::secded16_check_block(
      ecc_, words_.data() + base, check_.data() + base, kEccPageWords, sweep);
  words_verified_ += sweep.words;
  corrected_ += sweep.corrected;
  detected_ += sweep.uncorrectable;
  if (r == pbp::EccCheck::kUncorrectable) {
    *corrupt = true;
    return words_[addr];
  }
  verified_at_[page] = ecc_now_ + 1;
  return words_[addr];
}

pbp::EccSweep Memory::scrub_ecc() {
  pbp::EccSweep sweep;
  if (ecc_ == pbp::EccMode::kOff) return sweep;
  // Ground truth: scrub ignores the epoch stamps, sweeps every page, and
  // re-stamps what it verified clean (or repaired).
  for (std::size_t page = 0; page * kEccPageWords < words_.size(); ++page) {
    const std::size_t base = page * kEccPageWords;
    pbp::EccSweep pg;
    const pbp::EccCheck r = pbp::secded16_check_block(
        ecc_, words_.data() + base, check_.data() + base, kEccPageWords, pg);
    if (r != pbp::EccCheck::kUncorrectable && !verified_at_.empty()) {
      verified_at_[page] = ecc_now_ + 1;
    }
    sweep += pg;
  }
  corrected_ += sweep.corrected;
  detected_ += sweep.uncorrectable;
  return sweep;
}

TrapKind scrub_protected_state(QatEngine& qat, Memory& mem) {
  const pbp::EccSweep qs = qat.scrub();
  const pbp::EccSweep ms = mem.scrub_ecc();
  return (qs.uncorrectable != 0 || ms.uncorrectable != 0)
             ? TrapKind::kDataCorruption
             : TrapKind::kNone;
}

}  // namespace tangled
