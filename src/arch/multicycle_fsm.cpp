#include "arch/multicycle_fsm.hpp"

namespace tangled {

SimStats MultiCycleFsmSim::run(std::uint64_t max_instructions) {
  SimStats stats;
  console_.clear();
  state_cycles_.fill(0);

  McState state = McState::kFetch;
  // Inter-state registers of the multi-cycle datapath.
  std::uint16_t ir0 = 0;   // first instruction word
  Decoded dec;
  std::uint16_t dval = 0;
  std::uint16_t sval = 0;
  ExOut ex;
  std::uint16_t mem_data = 0;

  const std::uint64_t cycle_limit = max_instructions * 8 + 16;
  std::uint64_t cycle = 0;
  for (; cycle < cycle_limit && !cpu_.halted; ++cycle) {
    ++state_cycles_[static_cast<unsigned>(state)];
    switch (state) {
      case McState::kFetch: {
        // Verified fetch: an uncorrectable upset in the instruction word is
        // a precise trap at the fetch PC — nothing enters the datapath.
        bool corrupt = false;
        ir0 = mem_.load_checked(cpu_.pc, &corrupt);
        if (corrupt) {
          cpu_.trap = Trap{TrapKind::kDataCorruption, cpu_.pc};
          cpu_.halted = true;
          break;
        }
        // Peek the length to decide whether a second fetch state is needed.
        state = decode(ir0, 0).words == 2 ? McState::kFetch2
                                          : McState::kDecode;
        if (state == McState::kDecode) dec = decode(ir0, 0);
        break;
      }
      case McState::kFetch2: {
        bool corrupt = false;
        const std::uint16_t ir1 =
            mem_.load_checked(static_cast<std::uint16_t>(cpu_.pc + 1),
                              &corrupt);
        if (corrupt) {
          cpu_.trap = Trap{TrapKind::kDataCorruption, cpu_.pc};
          cpu_.halted = true;
          break;
        }
        dec = decode(ir0, ir1);
        state = McState::kDecode;
        break;
      }
      case McState::kDecode:
        dval = cpu_.reg(dec.instr.d);
        sval = cpu_.reg(dec.instr.s);
        state = McState::kEx;
        break;
      case McState::kEx:
        ex = exec_stage(dec.instr, cpu_.pc, dec.words, dval, sval, qat_);
        // A trapping instruction has no commit flags set, so it flows
        // straight to WB (keeping the 4-cycles-per-instruction occupancy
        // the accounting model charges) where the trap is recorded.
        state = (ex.is_load || ex.is_store) ? McState::kMem : McState::kWb;
        break;
      case McState::kMem:
        if (ex.is_store) {
          mem_.write(ex.addr, ex.store_data);
        } else {
          bool corrupt = false;
          mem_data = mem_.load_checked(ex.addr, &corrupt);
          if (corrupt) {
            // Convert the load into a trapping bubble: WB sees the trap,
            // commits nothing, and leaves the PC at the faulting load —
            // the same precise state execute_instr produces.
            ex.trap = TrapKind::kDataCorruption;
            ex.writes_reg = false;
            ex.is_load = false;
          }
        }
        state = McState::kWb;
        break;
      case McState::kWb:
        if (ex.trap != TrapKind::kNone) {
          // Precise trap: nothing commits, PC stays at the faulting
          // instruction — identical to execute_instr's behaviour.
          cpu_.trap = Trap{ex.trap, cpu_.pc};
          cpu_.halted = true;
          ++stats.instructions;
          ++retired_total_;
          if (ecc_enabled()) {
            mem_.ecc_tick(retired_total_);
            qat_.ecc_tick(retired_total_);
          }
          state = McState::kFetch;
          break;
        }
        if (ex.writes_reg) {
          cpu_.set_reg(dec.instr.d, ex.is_load ? mem_data : ex.value);
        }
        if (ex.print) {
          console_ += std::to_string(static_cast<std::int16_t>(ex.print_value));
          console_ += '\n';
        }
        cpu_.pc = ex.taken ? ex.target
                           : static_cast<std::uint16_t>(cpu_.pc + dec.words);
        ++stats.instructions;
        ++retired_total_;
        if (ecc_enabled()) {
          // Same verification-clock advance point as SimBase::run.
          mem_.ecc_tick(retired_total_);
          qat_.ecc_tick(retired_total_);
        }
        if (ex.taken) ++stats.taken_branches;
        if (ex.halt) cpu_.halted = true;
        if (!cpu_.halted && injector_.armed()) {
          const TrapKind tk =
              injector_.apply_due(retired_total_, cpu_, mem_, qat_);
          if (tk != TrapKind::kNone) {
            cpu_.trap = Trap{tk, cpu_.pc};
            cpu_.halted = true;
          }
        }
        // Background scrubber on the shared retired-instruction clock (the
        // same architectural point SimBase::run scrubs at).
        if (!cpu_.halted && scrub_every_ != 0 && ecc_enabled() &&
            retired_total_ % scrub_every_ == 0) {
          const TrapKind tk = scrub_protected_state(qat_, mem_);
          if (tk != TrapKind::kNone) {
            cpu_.trap = Trap{tk, cpu_.pc};
            cpu_.halted = true;
          }
        }
        state = McState::kFetch;
        if (!cpu_.halted && stats.instructions >= max_instructions) {
          stats.cycles = cycle + 1;
          stats.halted = false;
          stats.trap = cpu_.trap;
          stats.fetch_extra_cycles =
              state_cycles_[static_cast<unsigned>(McState::kFetch2)];
          return stats;
        }
        break;
    }
    if (!cpu_.halted && max_cycles_ != 0 && cycle + 1 >= max_cycles_) {
      cpu_.trap = Trap{TrapKind::kWatchdogExpired, cpu_.pc};
      cpu_.halted = true;
    }
  }
  // Clean-halt integrity gate (same contract as SimBase::run).
  if (cpu_.halted && cpu_.trap.kind == TrapKind::kNone && ecc_enabled()) {
    const TrapKind tk = scrub_protected_state(qat_, mem_);
    if (tk != TrapKind::kNone) cpu_.trap = Trap{tk, cpu_.pc};
  }
  stats.cycles = cycle;
  stats.halted = cpu_.halted;
  stats.trap = cpu_.trap;
  stats.fetch_extra_cycles =
      state_cycles_[static_cast<unsigned>(McState::kFetch2)];
  return stats;
}

}  // namespace tangled
