#include "arch/multicycle_fsm.hpp"

namespace tangled {

SimStats MultiCycleFsmSim::run(std::uint64_t max_instructions) {
  SimStats stats;
  console_.clear();
  state_cycles_.fill(0);

  McState state = McState::kFetch;
  // Inter-state registers of the multi-cycle datapath.
  std::uint16_t ir0 = 0;   // first instruction word
  Decoded dec;
  std::uint16_t dval = 0;
  std::uint16_t sval = 0;
  ExOut ex;
  std::uint16_t mem_data = 0;

  const std::uint64_t cycle_limit = max_instructions * 8 + 16;
  std::uint64_t cycle = 0;
  for (; cycle < cycle_limit && !cpu_.halted; ++cycle) {
    ++state_cycles_[static_cast<unsigned>(state)];
    switch (state) {
      case McState::kFetch:
        ir0 = mem_.read(cpu_.pc);
        // Peek the length to decide whether a second fetch state is needed.
        state = decode(ir0, 0).words == 2 ? McState::kFetch2
                                          : McState::kDecode;
        if (state == McState::kDecode) dec = decode(ir0, 0);
        break;
      case McState::kFetch2:
        dec = decode(ir0, mem_.read(static_cast<std::uint16_t>(cpu_.pc + 1)));
        state = McState::kDecode;
        break;
      case McState::kDecode:
        dval = cpu_.reg(dec.instr.d);
        sval = cpu_.reg(dec.instr.s);
        state = McState::kEx;
        break;
      case McState::kEx:
        ex = exec_stage(dec.instr, cpu_.pc, dec.words, dval, sval, qat_);
        // A trapping instruction has no commit flags set, so it flows
        // straight to WB (keeping the 4-cycles-per-instruction occupancy
        // the accounting model charges) where the trap is recorded.
        state = (ex.is_load || ex.is_store) ? McState::kMem : McState::kWb;
        break;
      case McState::kMem:
        if (ex.is_store) {
          mem_.write(ex.addr, ex.store_data);
        } else {
          mem_data = mem_.read(ex.addr);
        }
        state = McState::kWb;
        break;
      case McState::kWb:
        if (ex.trap != TrapKind::kNone) {
          // Precise trap: nothing commits, PC stays at the faulting
          // instruction — identical to execute_instr's behaviour.
          cpu_.trap = Trap{ex.trap, cpu_.pc};
          cpu_.halted = true;
          ++stats.instructions;
          ++retired_total_;
          state = McState::kFetch;
          break;
        }
        if (ex.writes_reg) {
          cpu_.set_reg(dec.instr.d, ex.is_load ? mem_data : ex.value);
        }
        if (ex.print) {
          console_ += std::to_string(static_cast<std::int16_t>(ex.print_value));
          console_ += '\n';
        }
        cpu_.pc = ex.taken ? ex.target
                           : static_cast<std::uint16_t>(cpu_.pc + dec.words);
        ++stats.instructions;
        ++retired_total_;
        if (ex.taken) ++stats.taken_branches;
        if (ex.halt) cpu_.halted = true;
        if (!cpu_.halted && injector_.armed()) {
          const TrapKind tk =
              injector_.apply_due(retired_total_, cpu_, mem_, qat_);
          if (tk != TrapKind::kNone) {
            cpu_.trap = Trap{tk, cpu_.pc};
            cpu_.halted = true;
          }
        }
        state = McState::kFetch;
        if (!cpu_.halted && stats.instructions >= max_instructions) {
          stats.cycles = cycle + 1;
          stats.halted = false;
          stats.trap = cpu_.trap;
          stats.fetch_extra_cycles =
              state_cycles_[static_cast<unsigned>(McState::kFetch2)];
          return stats;
        }
        break;
    }
    if (!cpu_.halted && max_cycles_ != 0 && cycle + 1 >= max_cycles_) {
      cpu_.trap = Trap{TrapKind::kWatchdogExpired, cpu_.pc};
      cpu_.halted = true;
    }
  }
  stats.cycles = cycle;
  stats.halted = cpu_.halted;
  stats.trap = cpu_.trap;
  stats.fetch_extra_cycles =
      state_cycles_[static_cast<unsigned>(McState::kFetch2)];
  return stats;
}

}  // namespace tangled
