// bf16_rtl.hpp — gate-level bfloat16 datapath models (paper §2.1, §3.1).
//
// The course provided "approximately 127 lines" of Verilog implementing a
// bfloat16 library whose operations synthesize to single-cycle combinational
// logic.  bfloat16.hpp gives the behavioural reference (compute in binary32,
// round to nearest even); this header models the same operations the way the
// RTL actually computes them — field extraction, significand alignment via a
// barrel shifter, integer add/multiply, count-leading-zeros normalization,
// and guard/round/sticky rounding — using only integer steps a synthesis
// tool would map to adders, shifters and muxes.
//
// tests/test_bf16_rtl.cpp proves the datapath model bit-identical to the
// behavioural ALU over exhaustive and random operand sweeps; this is the
// same verification obligation the student Verilog faced.
#pragma once

#include "arch/bfloat16.hpp"

namespace tangled {

/// Gate-style bfloat16 adder: align, add/subtract significands, CLZ
/// normalize, round to nearest even.
Bf16 bf16_add_rtl(Bf16 a, Bf16 b);

/// Gate-style bfloat16 multiplier: 8x8 significand product, single-step
/// normalize, round to nearest even.
Bf16 bf16_mul_rtl(Bf16 a, Bf16 b);

/// Gate-style int16 -> bf16 conversion (CLZ normalize + round).
Bf16 bf16_from_int_rtl(std::int16_t v);

/// Gate-style bf16 -> int16 conversion (shift by exponent, truncate).
std::int16_t bf16_to_int_rtl(Bf16 a);

}  // namespace tangled
