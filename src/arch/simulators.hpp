// simulators.hpp — the three Tangled/Qat implementations the paper's course
// sequence built (§1.3, §3): single-cycle (Figure 6), multi-cycle, and
// pipelined (4- or 5-stage, with forwarding and interlocks).
//
// All three share architectural semantics (cpu.hpp); they differ only in the
// cycle accounting a Verilog implementation would exhibit:
//
//   * FunctionalSim  — one instruction per cycle, period (the single-cycle
//     datapath: CPI == 1 by construction, clock period pays for everything).
//   * MultiCycleSim  — a FETCH/FETCH2/DECODE/EX/MEM/WB state machine; every
//     instruction takes 4 cycles plus one per extra fetch word and one for a
//     memory access.
//   * PipelineSim    — in-order single-issue pipeline, configurable 4 or 5
//     stages and forwarding on/off, modelling exactly the hazards §3.1 says
//     the student teams wrestled with: data interlocks, taken-branch
//     flushes, and the two-word Qat fetch.
//
// PipelineSim uses exact cycle accounting (a scoreboard of register-ready
// times) rather than latch-level simulation; for an in-order single-issue
// pipeline the two are cycle-identical, and the accounting form cannot
// deadlock or mis-forward.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/cpu.hpp"
#include "arch/fault.hpp"
#include "asm/assembler.hpp"

namespace tangled {

struct SimStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t taken_branches = 0;
  // Pipeline-only detail:
  std::uint64_t data_stall_cycles = 0;   // operand-not-ready interlocks
  std::uint64_t flush_cycles = 0;        // taken-branch squashes
  std::uint64_t fetch_extra_cycles = 0;  // second words of Qat instructions
  bool halted = false;
  Trap trap{};  // why the machine halted, if it trapped

  double cpi() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles) /
                                   static_cast<double>(instructions);
  }
};

/// Common machinery: memory + CPU + Qat coprocessor + fetch/decode loop.
/// `backend` selects the Qat register-file representation (dense AoB or
/// RE-compressed); timing models are representation-agnostic.
class SimBase {
 public:
  explicit SimBase(unsigned ways = 16,
                   pbp::Backend backend = pbp::Backend::kDense)
      : qat_(ways, backend) {}
  virtual ~SimBase() = default;

  void load(const Program& p) { load_words(p.words); }
  /// An image wider than the 64Ki-word address space raises an immediate
  /// kMemImageOverflow trap (the machine starts halted) instead of the old
  /// silent truncation.
  void load_words(const std::vector<std::uint16_t>& w) {
    if (!mem_.load(w)) {
      cpu_.trap = Trap{TrapKind::kMemImageOverflow, 0};
      cpu_.halted = true;
    }
  }

  /// Run until sys/trap or max_instructions; returns the statistics.
  SimStats run(std::uint64_t max_instructions = 1'000'000);

  /// Rewind to power-on state, reusing every allocation (memory array,
  /// Qat slab, coverage map).  The contract — enforced by
  /// tests/test_sim_pool.cpp — is that a reset simulator is bit-identical
  /// to a freshly constructed one with the same (ways, backend): same
  /// architectural state, same stats, same ECC counters, same serialized
  /// Qat bytes.  Cost is O(state actually dirtied), which is what makes a
  /// per-worker simulator pool cheaper than construction.
  void reset();

  // --- Fault tolerance ---
  /// Arm a fault-injection plan (applies its pool symbol cap immediately).
  void set_fault_plan(FaultPlan plan) {
    if (plan.max_pool_symbols != 0) {
      qat_.set_pool_symbol_cap(plan.max_pool_symbols);
    }
    injector_.set_plan(std::move(plan));
  }
  const FaultInjector& injector() const { return injector_; }
  /// Watchdog: trap with kWatchdogExpired once a run's cycle count reaches
  /// n (0 disables).  Unlike max_instructions, expiry halts the machine.
  void set_max_cycles(std::uint64_t n) { max_cycles_ = n; }

  // --- Data integrity ---
  /// Protect Tangled data memory and the Qat register file with the same
  /// policy.  Call before or after load(); memory re-encodes its sidecar on
  /// every image load.
  void set_ecc_mode(pbp::EccMode m) {
    mem_.set_ecc_mode(m);
    qat_.set_ecc_mode(m);
  }
  /// Verification epoch (instructions): re-verification of unwritten state
  /// is skipped until the retired-instruction clock crosses an epoch
  /// boundary.  1 (the default) preserves verify-every-access semantics
  /// exactly; larger values trade detection latency (bounded by one epoch
  /// plus the scrub period) for throughput.  See DESIGN.md §6.
  void set_ecc_epoch(std::uint64_t n) {
    mem_.set_ecc_epoch(n);
    qat_.set_ecc_epoch(n);
  }
  /// Background scrubber period: sweep all protected state every n retired
  /// instructions (0 disables).  Keyed on retired_total(), the same
  /// monotone clock fault events use, so every timing model scrubs — and
  /// traps — at the identical architectural point.
  void set_scrub_every(std::uint64_t n) { scrub_every_ = n; }
  /// Intra-register worker threads for wide dense Qat sweeps.
  void set_qat_threads(unsigned n) { qat_.set_qat_threads(n); }
  bool ecc_enabled() const {
    return mem_.ecc_mode() != pbp::EccMode::kOff ||
           qat_.ecc_mode() != pbp::EccMode::kOff;
  }
  /// Instructions retired across ALL run() calls — the monotone clock fault
  /// events are keyed on (never reset, never rewound by a rollback).
  std::uint64_t retired_total() const { return retired_total_; }

  CpuState& cpu() { return cpu_; }
  const CpuState& cpu() const { return cpu_; }
  Memory& memory() { return mem_; }
  QatEngine& qat() { return qat_; }
  const SimStats& stats() const { return stats_; }

  /// Text emitted by `sys $r` console services during run().
  const std::string& console() const { return console_; }

  /// Per-address execution counts (homage to the Covered tool the course
  /// used: student testing had to reach 100% line coverage, §4).
  std::uint64_t execution_count(std::uint16_t pc) const {
    return pc < coverage_.size() ? coverage_[pc] : 0;
  }
  /// Instruction-start addresses in [0, limit) never executed by any run()
  /// since construction.  `limit` is typically the program's word count.
  std::vector<std::uint16_t> unexecuted(std::uint16_t limit) const;

 protected:
  /// Timing hook: account cycles for one instruction.  `exec` carries the
  /// control-flow outcome; `i` the decoded instruction; `words` its length.
  virtual void account(const Instr& i, unsigned words,
                       const ExecResult& exec) = 0;
  /// Cycles consumed after the last instruction (pipeline drain).
  virtual std::uint64_t drain_cycles() const { return 0; }
  /// Clear model-internal timing state at the start of each run().
  virtual void reset_timing() {}

  Memory mem_;
  CpuState cpu_;
  QatEngine qat_;
  SimStats stats_;
  std::string console_;
  std::vector<std::uint64_t> coverage_ = std::vector<std::uint64_t>(65536, 0);
  /// High-water mark of possibly-nonzero coverage counters, so reset()
  /// clears O(program footprint) instead of the whole 64Ki map.
  std::size_t coverage_limit_ = 0;
  FaultInjector injector_;
  std::uint64_t retired_total_ = 0;
  std::uint64_t max_cycles_ = 0;
  std::uint64_t scrub_every_ = 0;
};

/// Single-cycle implementation (Figure 6): every instruction, including the
/// two-word Qat forms (fetched through a dual-ported instruction path),
/// completes in one long cycle.
class FunctionalSim : public SimBase {
 public:
  using SimBase::SimBase;

 protected:
  void account(const Instr&, unsigned, const ExecResult&) override {
    ++stats_.cycles;
  }
};

/// Multi-cycle state machine: FETCH, FETCH2 (two-word Qat), DECODE, EX,
/// MEM (load/store only), WB.
class MultiCycleSim : public SimBase {
 public:
  using SimBase::SimBase;

 protected:
  void account(const Instr& i, unsigned words, const ExecResult&) override {
    std::uint64_t c = 4;  // FETCH, DECODE, EX, WB
    if (words > 1) {
      c += words - 1;
      stats_.fetch_extra_cycles += words - 1;
    }
    if (i.op == Op::kLoad || i.op == Op::kStore) c += 1;  // MEM
    stats_.cycles += c;
  }
};

struct PipelineConfig {
  unsigned stages = 5;     // 4 or 5 (six of eight teams used 4, two used 5)
  bool forwarding = true;  // full EX->EX / MEM->EX bypass network
};

/// In-order pipelined implementation with exact hazard accounting.
class PipelineSim : public SimBase {
 public:
  explicit PipelineSim(unsigned ways = 16, PipelineConfig config = {},
                       pbp::Backend backend = pbp::Backend::kDense);

  const PipelineConfig& config() const { return config_; }

 protected:
  void account(const Instr& i, unsigned words, const ExecResult& exec) override;
  std::uint64_t drain_cycles() const override;
  void reset_timing() override;

 private:
  PipelineConfig config_;
  // Scoreboard: absolute cycle at which each register's value can feed EX.
  std::array<std::uint64_t, kNumRegs> reg_ready_{};
  std::uint64_t fetch_time_ = 0;  // cycle the next IF may start
  std::uint64_t last_decode_ = 0;
  std::uint64_t last_ex_ = 0;
  bool first_ = true;
};

}  // namespace tangled
