#include "arch/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "pbp/serialize.hpp"

namespace tangled {
namespace {

constexpr std::uint32_t kMagic = 0x434e4754;  // "TGNC" little-endian
constexpr std::uint16_t kVersion = 2;
// u32 magic + u16 version + u32 payload length + u32 crc32.
constexpr std::size_t kHeaderBytes = 4 + 2 + 4 + 4;

std::vector<std::uint8_t> encode_payload(const CpuState& cpu,
                                         const Memory& mem,
                                         const QatEngine& qat) {
  pbp::ByteWriter w;
  // --- CPU ---
  for (const std::uint16_t r : cpu.regs) w.u16(r);
  w.u16(cpu.pc);
  w.u8(cpu.halted ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(cpu.trap.kind));
  w.u16(cpu.trap.pc);
  // --- Memory, run-length encoded (equal-value runs).  Words past the
  // dirty high-water mark are guaranteed zero, so the scan stops there and
  // the tail is emitted (or merged) as one zero run — O(dirty footprint),
  // not O(address space), keeping trivial-job checkpoints cheap.  The
  // encoding is byte-identical to a full scan.
  const auto& words = mem.words();
  const std::size_t scan = mem.dirty_high_water();
  std::vector<std::pair<std::uint32_t, std::uint16_t>> runs;
  std::size_t i = 0;
  while (i < scan) {
    std::size_t j = i + 1;
    while (j < scan && words[j] == words[i]) ++j;
    runs.emplace_back(static_cast<std::uint32_t>(j - i), words[i]);
    i = j;
  }
  if (scan < words.size()) {
    const auto tail = static_cast<std::uint32_t>(words.size() - scan);
    if (!runs.empty() && runs.back().second == 0) {
      runs.back().first += tail;
    } else {
      runs.emplace_back(tail, 0);
    }
  }
  w.u32(static_cast<std::uint32_t>(runs.size()));
  for (const auto& [len, val] : runs) {
    w.u32(len);
    w.u16(val);
  }
  // --- Qat coprocessor ---
  qat.serialize(w);
  return w.take();
}

void decode_payload(pbp::ByteReader& r, CpuState& cpu, Memory& mem,
                    QatEngine& qat) {
  CpuState fresh;
  for (auto& reg : fresh.regs) reg = r.u16();
  fresh.pc = r.u16();
  fresh.halted = r.u8() != 0;
  fresh.trap.kind = static_cast<TrapKind>(r.u8());
  fresh.trap.pc = r.u16();
  auto& words = mem.words_mut();
  const std::uint32_t n_runs = r.u32();
  std::size_t at = 0;
  std::size_t nonzero_end = 0;  // true dirty extent of the restored image
  for (std::uint32_t run = 0; run < n_runs; ++run) {
    const std::uint32_t len = r.u32();
    const std::uint16_t val = r.u16();
    if (at + len > words.size()) {
      throw CheckpointError(CheckpointError::Kind::kMalformed,
                            "memory runs overflow the image");
    }
    for (std::uint32_t k = 0; k < len; ++k) words[at++] = val;
    if (val != 0) nonzero_end = at;
  }
  if (at != words.size()) {
    throw CheckpointError(CheckpointError::Kind::kMalformed,
                          "memory runs do not cover memory");
  }
  mem.shrink_dirty_high_water(nonzero_end);
  // The bulk rewrite above bypassed write(); rebuild the ECC sidecar so the
  // restored image is protected (and clean) under the *current* policy.
  mem.refresh_ecc();
  qat.restore(r);
  cpu = fresh;  // commit only after every piece parsed
}

}  // namespace

std::vector<std::uint8_t> save_checkpoint(const CpuState& cpu,
                                          const Memory& mem,
                                          const QatEngine& qat) {
  const std::vector<std::uint8_t> payload = encode_payload(cpu, mem, qat);
  pbp::ByteWriter w;
  w.u32(kMagic);
  w.u16(kVersion);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(pbp::crc32(payload));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void load_checkpoint(const std::vector<std::uint8_t>& bytes, CpuState& cpu,
                     Memory& mem, QatEngine& qat) {
  if (bytes.size() < kHeaderBytes) {
    throw CheckpointError(CheckpointError::Kind::kTruncated,
                          "shorter than the fixed header");
  }
  pbp::ByteReader r(bytes.data(), bytes.size());
  if (r.u32() != kMagic) {
    throw CheckpointError(CheckpointError::Kind::kBadMagic, "bad magic");
  }
  const std::uint16_t version = r.u16();
  if (version != kVersion) {
    throw CheckpointError(
        CheckpointError::Kind::kBadVersion,
        "unsupported version " + std::to_string(version));
  }
  const std::uint32_t length = r.u32();
  const std::uint32_t crc = r.u32();
  if (length != r.remaining()) {
    throw CheckpointError(
        CheckpointError::Kind::kTruncated,
        "payload length " + std::to_string(length) + " but " +
            std::to_string(r.remaining()) + " bytes follow the header");
  }
  if (pbp::crc32(bytes.data() + kHeaderBytes, length) != crc) {
    throw CheckpointError(CheckpointError::Kind::kCrcMismatch,
                          "payload CRC mismatch");
  }
  try {
    decode_payload(r, cpu, mem, qat);
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    // ByteReader underruns / backend geometry rejections inside a
    // CRC-clean image: structurally invalid, not bit-rotted.
    throw CheckpointError(CheckpointError::Kind::kMalformed, e.what());
  }
}

namespace {

std::function<int(const char*)> g_io_failpoint;

int stage_fails(const char* stage) {
  return g_io_failpoint ? g_io_failpoint(stage) : 0;
}

[[noreturn]] void throw_io(const std::string& what, int err) {
  throw CheckpointError(CheckpointError::Kind::kIoError,
                        what + ": " + std::strerror(err));
}

}  // namespace

void set_checkpoint_io_failpoint(std::function<int(const char*)> hook) {
  g_io_failpoint = std::move(hook);
}

void write_file_durable(const std::string& path, const std::uint8_t* data,
                        std::size_t size) {
  const std::string tmp = path + ".tmp";
  int err = stage_fails("open");
  const int fd =
      err != 0 ? -1 : ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (err == 0) err = errno;
    throw_io("cannot open " + tmp + " for writing", err);
  }
  err = stage_fails("write");
  std::size_t off = 0;
  while (err == 0 && off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      err = errno;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync the temp BEFORE the rename: without it the rename can reach the
  // disk ahead of the data it names, and a power loss then leaves a
  // complete-looking file over garbage — the torn-rename window.
  if (err == 0) err = stage_fails("fsync-tmp");
  if (err == 0 && ::fsync(fd) != 0) err = errno;
  if (::close(fd) != 0 && err == 0) err = errno;
  if (err != 0) {
    ::unlink(tmp.c_str());
    throw_io("cannot write " + tmp, err);
  }
  // Atomic publication: readers see either the old complete image or the
  // new complete image, never a half-written one.
  err = stage_fails("rename");
  if (err == 0 && std::rename(tmp.c_str(), path.c_str()) != 0) err = errno;
  if (err != 0) {
    ::unlink(tmp.c_str());
    throw_io("cannot rename " + tmp + " over " + path, err);
  }
  // fsync the parent directory AFTER the rename so the new entry itself is
  // durable.  Failing here still throws: the caller must not record the
  // image as persisted when a crash could roll the directory back.
  err = stage_fails("fsync-dir");
  if (err == 0) {
    const auto slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : (slash == 0 ? "/" : path.substr(0, slash));
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0) {
      err = errno;
    } else {
      if (::fsync(dfd) != 0) err = errno;
      ::close(dfd);
    }
  }
  if (err != 0) throw_io("cannot fsync parent directory of " + path, err);
}

void save_checkpoint_file(const std::string& path, const CpuState& cpu,
                          const Memory& mem, const QatEngine& qat) {
  const std::vector<std::uint8_t> bytes = save_checkpoint(cpu, mem, qat);
  write_file_durable(path, bytes.data(), bytes.size());
}

void load_checkpoint_file(const std::string& path, CpuState& cpu, Memory& mem,
                          QatEngine& qat) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw CheckpointError(CheckpointError::Kind::kIoError,
                          "cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw CheckpointError(CheckpointError::Kind::kIoError,
                          "read error on " + path);
  }
  load_checkpoint(bytes, cpu, mem, qat);
}

}  // namespace tangled
