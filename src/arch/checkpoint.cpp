#include "arch/checkpoint.hpp"

#include <stdexcept>

#include "pbp/serialize.hpp"

namespace tangled {
namespace {

constexpr std::uint32_t kMagic = 0x434e4754;  // "TGNC" little-endian
constexpr std::uint16_t kVersion = 1;

}  // namespace

std::vector<std::uint8_t> save_checkpoint(const CpuState& cpu,
                                          const Memory& mem,
                                          const QatEngine& qat) {
  pbp::ByteWriter w;
  w.u32(kMagic);
  w.u16(kVersion);
  // --- CPU ---
  for (const std::uint16_t r : cpu.regs) w.u16(r);
  w.u16(cpu.pc);
  w.u8(cpu.halted ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(cpu.trap.kind));
  w.u16(cpu.trap.pc);
  // --- Memory, run-length encoded (equal-value runs) ---
  const auto& words = mem.words();
  std::vector<std::pair<std::uint32_t, std::uint16_t>> runs;
  std::size_t i = 0;
  while (i < words.size()) {
    std::size_t j = i + 1;
    while (j < words.size() && words[j] == words[i]) ++j;
    runs.emplace_back(static_cast<std::uint32_t>(j - i), words[i]);
    i = j;
  }
  w.u32(static_cast<std::uint32_t>(runs.size()));
  for (const auto& [len, val] : runs) {
    w.u32(len);
    w.u16(val);
  }
  // --- Qat coprocessor ---
  qat.serialize(w);
  return w.take();
}

void load_checkpoint(const std::vector<std::uint8_t>& bytes, CpuState& cpu,
                     Memory& mem, QatEngine& qat) {
  pbp::ByteReader r(bytes.data(), bytes.size());
  if (r.u32() != kMagic) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  if (r.u16() != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  CpuState fresh;
  for (auto& reg : fresh.regs) reg = r.u16();
  fresh.pc = r.u16();
  fresh.halted = r.u8() != 0;
  fresh.trap.kind = static_cast<TrapKind>(r.u8());
  fresh.trap.pc = r.u16();
  auto& words = mem.words_mut();
  const std::uint32_t n_runs = r.u32();
  std::size_t at = 0;
  for (std::uint32_t run = 0; run < n_runs; ++run) {
    const std::uint32_t len = r.u32();
    const std::uint16_t val = r.u16();
    if (at + len > words.size()) {
      throw std::runtime_error("checkpoint: memory runs overflow the image");
    }
    for (std::uint32_t k = 0; k < len; ++k) words[at++] = val;
  }
  if (at != words.size()) {
    throw std::runtime_error("checkpoint: memory runs do not cover memory");
  }
  qat.restore(r);
  cpu = fresh;  // commit only after every piece parsed
}

}  // namespace tangled
