#include "arch/checkpoint.hpp"

#include <cstdio>
#include <stdexcept>

#include "pbp/serialize.hpp"

namespace tangled {
namespace {

constexpr std::uint32_t kMagic = 0x434e4754;  // "TGNC" little-endian
constexpr std::uint16_t kVersion = 2;
// u32 magic + u16 version + u32 payload length + u32 crc32.
constexpr std::size_t kHeaderBytes = 4 + 2 + 4 + 4;

std::vector<std::uint8_t> encode_payload(const CpuState& cpu,
                                         const Memory& mem,
                                         const QatEngine& qat) {
  pbp::ByteWriter w;
  // --- CPU ---
  for (const std::uint16_t r : cpu.regs) w.u16(r);
  w.u16(cpu.pc);
  w.u8(cpu.halted ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(cpu.trap.kind));
  w.u16(cpu.trap.pc);
  // --- Memory, run-length encoded (equal-value runs) ---
  const auto& words = mem.words();
  std::vector<std::pair<std::uint32_t, std::uint16_t>> runs;
  std::size_t i = 0;
  while (i < words.size()) {
    std::size_t j = i + 1;
    while (j < words.size() && words[j] == words[i]) ++j;
    runs.emplace_back(static_cast<std::uint32_t>(j - i), words[i]);
    i = j;
  }
  w.u32(static_cast<std::uint32_t>(runs.size()));
  for (const auto& [len, val] : runs) {
    w.u32(len);
    w.u16(val);
  }
  // --- Qat coprocessor ---
  qat.serialize(w);
  return w.take();
}

void decode_payload(pbp::ByteReader& r, CpuState& cpu, Memory& mem,
                    QatEngine& qat) {
  CpuState fresh;
  for (auto& reg : fresh.regs) reg = r.u16();
  fresh.pc = r.u16();
  fresh.halted = r.u8() != 0;
  fresh.trap.kind = static_cast<TrapKind>(r.u8());
  fresh.trap.pc = r.u16();
  auto& words = mem.words_mut();
  const std::uint32_t n_runs = r.u32();
  std::size_t at = 0;
  for (std::uint32_t run = 0; run < n_runs; ++run) {
    const std::uint32_t len = r.u32();
    const std::uint16_t val = r.u16();
    if (at + len > words.size()) {
      throw CheckpointError(CheckpointError::Kind::kMalformed,
                            "memory runs overflow the image");
    }
    for (std::uint32_t k = 0; k < len; ++k) words[at++] = val;
  }
  if (at != words.size()) {
    throw CheckpointError(CheckpointError::Kind::kMalformed,
                          "memory runs do not cover memory");
  }
  // The bulk rewrite above bypassed write(); rebuild the ECC sidecar so the
  // restored image is protected (and clean) under the *current* policy.
  mem.refresh_ecc();
  qat.restore(r);
  cpu = fresh;  // commit only after every piece parsed
}

}  // namespace

std::vector<std::uint8_t> save_checkpoint(const CpuState& cpu,
                                          const Memory& mem,
                                          const QatEngine& qat) {
  const std::vector<std::uint8_t> payload = encode_payload(cpu, mem, qat);
  pbp::ByteWriter w;
  w.u32(kMagic);
  w.u16(kVersion);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(pbp::crc32(payload));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void load_checkpoint(const std::vector<std::uint8_t>& bytes, CpuState& cpu,
                     Memory& mem, QatEngine& qat) {
  if (bytes.size() < kHeaderBytes) {
    throw CheckpointError(CheckpointError::Kind::kTruncated,
                          "shorter than the fixed header");
  }
  pbp::ByteReader r(bytes.data(), bytes.size());
  if (r.u32() != kMagic) {
    throw CheckpointError(CheckpointError::Kind::kBadMagic, "bad magic");
  }
  const std::uint16_t version = r.u16();
  if (version != kVersion) {
    throw CheckpointError(
        CheckpointError::Kind::kBadVersion,
        "unsupported version " + std::to_string(version));
  }
  const std::uint32_t length = r.u32();
  const std::uint32_t crc = r.u32();
  if (length != r.remaining()) {
    throw CheckpointError(
        CheckpointError::Kind::kTruncated,
        "payload length " + std::to_string(length) + " but " +
            std::to_string(r.remaining()) + " bytes follow the header");
  }
  if (pbp::crc32(bytes.data() + kHeaderBytes, length) != crc) {
    throw CheckpointError(CheckpointError::Kind::kCrcMismatch,
                          "payload CRC mismatch");
  }
  try {
    decode_payload(r, cpu, mem, qat);
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    // ByteReader underruns / backend geometry rejections inside a
    // CRC-clean image: structurally invalid, not bit-rotted.
    throw CheckpointError(CheckpointError::Kind::kMalformed, e.what());
  }
}

void save_checkpoint_file(const std::string& path, const CpuState& cpu,
                          const Memory& mem, const QatEngine& qat) {
  const std::vector<std::uint8_t> bytes = save_checkpoint(cpu, mem, qat);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw CheckpointError(CheckpointError::Kind::kIoError,
                          "cannot open " + tmp + " for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw CheckpointError(CheckpointError::Kind::kIoError,
                          "short write to " + tmp);
  }
  // Atomic publication: readers see either the old complete image or the
  // new complete image, never a half-written one.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError(CheckpointError::Kind::kIoError,
                          "cannot rename " + tmp + " over " + path);
  }
}

void load_checkpoint_file(const std::string& path, CpuState& cpu, Memory& mem,
                          QatEngine& qat) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw CheckpointError(CheckpointError::Kind::kIoError,
                          "cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw CheckpointError(CheckpointError::Kind::kIoError,
                          "read error on " + path);
  }
  load_checkpoint(bytes, cpu, mem, qat);
}

}  // namespace tangled
