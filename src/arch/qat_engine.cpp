#include "arch/qat_engine.hpp"

#include <stdexcept>

#include "pbp/hadamard.hpp"

namespace tangled {

using pbp::Aob;

QatEngine::QatEngine(unsigned ways, pbp::Backend backend, unsigned chunk_ways)
    : backend_(pbp::make_qat_backend(backend, ways, kNumQatRegs, chunk_ways)),
      orig_backend_(backend),
      orig_ways_(ways),
      orig_chunk_ways_(chunk_ways) {}

void QatEngine::reset() {
  if (orig_backend_ == pbp::Backend::kDense) {
    // In place: the slab allocation (and its cache residency) survives.
    static_cast<pbp::DenseQatBackend*>(backend_.get())->reset_state();
  } else {
    // RE register files (including ones that migrated RE→dense mid-job, or
    // that adopted a shared chunk pool) are rebuilt over a fresh private
    // pool: their power-on state is a handful of pointer-sized runs, so
    // reconstruction is already cheap, and detaching keeps the contract
    // "reset == fresh-construct" exact — the serve layer re-adopts a
    // shared stripe per job when the job is eligible.
    shared_pool_.reset();
    backend_ = pbp::make_qat_backend(orig_backend_, orig_ways_, kNumQatRegs,
                                     orig_chunk_ways_);
  }
  stats_ = QatStats{};
  migration_guard_ = nullptr;
  ecc_mode_ = pbp::EccMode::kOff;
  ecc_epoch_ = 1;
  ecc_now_ = 0;
  qat_threads_ = 1;
}

void QatEngine::use_chunk_pool(std::shared_ptr<pbp::ChunkPool> pool) {
  if (pool == nullptr) {
    // Detach back to a private pool; no-op if already private.
    if (shared_pool_ != nullptr) {
      shared_pool_.reset();
      backend_ = pbp::make_qat_backend(orig_backend_, orig_ways_, kNumQatRegs,
                                       orig_chunk_ways_);
    }
    return;
  }
  if (orig_backend_ != pbp::Backend::kCompressed) {
    throw std::invalid_argument(
        "QatEngine: shared chunk pools require a compressed backend");
  }
  if (pool->chunk_ways() > orig_ways_) {
    throw std::invalid_argument(
        "QatEngine: shared pool chunk_ways exceeds engine ways");
  }
  shared_pool_ = std::move(pool);
  backend_ =
      std::make_unique<pbp::ReQatBackend>(shared_pool_, orig_ways_,
                                          kNumQatRegs);
}

void QatEngine::set_reg(unsigned r, const Aob& v) {
  backend_->set_reg_aob(r & 0xffu, v);
}

void QatEngine::zero(unsigned a) {
  mutate([&] { backend_->zero(a & 0xffu); });
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_writes.fetch_add(1, std::memory_order_relaxed);
}

void QatEngine::one(unsigned a) {
  mutate([&] { backend_->one(a & 0xffu); });
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_writes.fetch_add(1, std::memory_order_relaxed);
}

void QatEngine::had(unsigned a, unsigned k) {
  mutate([&] { backend_->had(a & 0xffu, k); });
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_writes.fetch_add(1, std::memory_order_relaxed);
}

void QatEngine::not_(unsigned a) {
  mutate([&] { backend_->not_(a & 0xffu); });
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_reads.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_writes.fetch_add(1, std::memory_order_relaxed);
}

void QatEngine::cnot(unsigned a, unsigned b) {
  mutate([&] { backend_->cnot(a & 0xffu, b & 0xffu); });
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_reads.fetch_add(2, std::memory_order_relaxed);
  stats_.reg_writes.fetch_add(1, std::memory_order_relaxed);
}

void QatEngine::ccnot(unsigned a, unsigned b, unsigned c) {
  mutate([&] { backend_->ccnot(a & 0xffu, b & 0xffu, c & 0xffu); });
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_reads.fetch_add(3, std::memory_order_relaxed);
  stats_.reg_writes.fetch_add(1, std::memory_order_relaxed);
}

void QatEngine::swap(unsigned a, unsigned b) {
  mutate([&] { backend_->swap(a & 0xffu, b & 0xffu); });
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_reads.fetch_add(2, std::memory_order_relaxed);
  stats_.reg_writes.fetch_add(2, std::memory_order_relaxed);
}

void QatEngine::cswap(unsigned a, unsigned b, unsigned c) {
  mutate([&] { backend_->cswap(a & 0xffu, b & 0xffu, c & 0xffu); });
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_reads.fetch_add(3, std::memory_order_relaxed);
  stats_.reg_writes.fetch_add(2, std::memory_order_relaxed);
}

void QatEngine::and_(unsigned a, unsigned b, unsigned c) {
  mutate([&] { backend_->and_(a & 0xffu, b & 0xffu, c & 0xffu); });
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_reads.fetch_add(2, std::memory_order_relaxed);
  stats_.reg_writes.fetch_add(1, std::memory_order_relaxed);
}

void QatEngine::or_(unsigned a, unsigned b, unsigned c) {
  mutate([&] { backend_->or_(a & 0xffu, b & 0xffu, c & 0xffu); });
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_reads.fetch_add(2, std::memory_order_relaxed);
  stats_.reg_writes.fetch_add(1, std::memory_order_relaxed);
}

void QatEngine::xor_(unsigned a, unsigned b, unsigned c) {
  mutate([&] { backend_->xor_(a & 0xffu, b & 0xffu, c & 0xffu); });
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_reads.fetch_add(2, std::memory_order_relaxed);
  stats_.reg_writes.fetch_add(1, std::memory_order_relaxed);
}

void QatEngine::set_ecc_mode(pbp::EccMode m) {
  ecc_mode_ = m;
  backend_->set_ecc_mode(m);
}

void QatEngine::set_ecc_epoch(std::uint64_t n) {
  ecc_epoch_ = pbp::clamp_ecc_epoch(n);
  backend_->set_ecc_epoch(ecc_epoch_);
}

void QatEngine::set_qat_threads(unsigned n) {
  qat_threads_ = n == 0 ? 1 : n;
  backend_->set_threads(qat_threads_);
}

void QatEngine::ecc_tick(std::uint64_t now) {
  ecc_now_ = now;
  backend_->ecc_tick(now);
}

void QatEngine::tally_sweep(const pbp::EccSweep& s) {
  if (s.corrected != 0) {
    stats_.ecc_corrected.fetch_add(s.corrected, std::memory_order_relaxed);
  }
  if (s.uncorrectable != 0) {
    stats_.ecc_detected.fetch_add(s.uncorrectable, std::memory_order_relaxed);
  }
  if (s.words != 0) {
    stats_.ecc_words_verified.fetch_add(s.words, std::memory_order_relaxed);
  }
  if (s.elided != 0) {
    stats_.ecc_verifies_elided.fetch_add(s.elided, std::memory_order_relaxed);
  }
}

void QatEngine::drain_ecc() { tally_sweep(backend_->take_ecc_counts()); }

pbp::EccSweep QatEngine::scrub() {
  drain_ecc();  // access-path tallies first, so ordering stays monotone
  const pbp::EccSweep s = backend_->scrub_ecc();
  tally_sweep(s);
  stats_.ecc_scrubs.fetch_add(1, std::memory_order_relaxed);
  return s;
}

void QatEngine::storage_upset(unsigned r, std::size_t ch) {
  backend_->storage_upset(r & 0xffu, ch);
}

bool QatEngine::try_degrade_to_dense() {
  if (backend_->kind() != pbp::Backend::kCompressed ||
      backend_->ways() > pbp::kMaxAobWays) {
    return false;
  }
  // Integrity gate: repair the pool before decompressing, and refuse to
  // migrate state carrying an uncorrectable upset — reg_aob would copy the
  // corruption into the fresh dense file and *launder* it past the codec
  // (the new sidecar would canonically encode the wrong bits).  The throw
  // escapes mutate()'s length_error handler and surfaces as a precise
  // kDataCorruption trap.
  if (ecc_mode_ != pbp::EccMode::kOff) {
    drain_ecc();
    const pbp::EccSweep s = backend_->scrub_ecc();
    tally_sweep(s);
    if (s.uncorrectable != 0) {
      throw pbp::CorruptionError(
          "QatEngine: uncorrectable upset blocks RE->dense migration");
    }
  }
  // Memory-pressure veto (serve-layer admission control): a migration
  // replaces kilobytes of runs with the full dense register file, so ask the
  // installed guard for the extra bytes first.  A veto means the exhaustion
  // escapes as a clean kResourceExhausted trap instead.
  if (migration_guard_) {
    const std::size_t dense =
        pbp::dense_backend_bytes(backend_->ways(), backend_->num_regs());
    const std::size_t current = backend_->storage_bytes();
    if (!migration_guard_(dense > current ? dense - current : 0)) {
      return false;
    }
  }
  // Decompress every live register into a fresh dense file.  reg_aob only
  // reads interned chunks — it never allocates new pool symbols — so this
  // cannot itself hit the exhausted-pool condition that brought us here.
  auto dense = std::make_unique<pbp::DenseQatBackend>(backend_->ways(),
                                                      backend_->num_regs());
  for (unsigned r = 0; r < backend_->num_regs(); ++r) {
    dense->set_reg_aob(r, backend_->reg_aob(r));
  }
  dense->set_ecc_mode(ecc_mode_);  // policy follows the data to the new file
  dense->set_ecc_epoch(ecc_epoch_);
  dense->ecc_tick(ecc_now_);
  dense->set_threads(qat_threads_);
  backend_ = std::move(dense);
  stats_.backend_migrations.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void QatEngine::flip_channel(unsigned r, std::size_t ch) {
  const unsigned a = r & 0xffu;
  ch &= backend_->channels() - 1;  // same wrap the meas mux tree applies
  const bool v = backend_->meas(a, ch);
  mutate([&] { backend_->set_channel(a, ch, !v); });
}

void QatEngine::serialize(pbp::ByteWriter& w) const {
  backend_->serialize(w);
  w.u64(stats_.ops);
  w.u64(stats_.reg_reads);
  w.u64(stats_.reg_writes);
  w.u64(stats_.backend_migrations);
}

void QatEngine::restore(pbp::ByteReader& r) {
  // Drain the dying backend's pending ECC tallies first: the ECC counters
  // are deliberately NOT in the snapshot (serialize() above writes only the
  // four architectural counters), so corrected/detected telemetry stays
  // monotone across rollback instead of rewinding with the machine state.
  drain_ecc();
  backend_ = pbp::deserialize_qat_backend(r);
  stats_.ops = r.u64();
  stats_.reg_reads = r.u64();
  stats_.reg_writes = r.u64();
  stats_.backend_migrations = r.u64();
  // ECC mode and epoch are policy, not machine state: re-protect the
  // restored file.  set_ecc_mode re-encodes from the restored payloads, so
  // every stamp starts over from "just encoded" — a restore never extends
  // trust in state it did not just rebuild.
  backend_->set_ecc_mode(ecc_mode_);
  backend_->set_ecc_epoch(ecc_epoch_);
  backend_->ecc_tick(ecc_now_);
  backend_->set_threads(qat_threads_);
}

std::uint16_t QatEngine::meas(unsigned a, std::uint16_t ch) const {
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_reads.fetch_add(1, std::memory_order_relaxed);
  // The hardware indexes a 2^WAYS-bit vector with a 16-bit register; the
  // backend masks ch to the channel range exactly as the mux tree would.
  return backend_->meas(a & 0xffu, ch) ? 1 : 0;
}

std::uint16_t QatEngine::next(unsigned a, std::uint16_t ch) const {
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_reads.fetch_add(1, std::memory_order_relaxed);
  const auto r = backend_->next_one(a & 0xffu, ch);
  return r ? static_cast<std::uint16_t>(*r) : 0;
}

std::uint16_t QatEngine::pop(unsigned a, std::uint16_t ch) const {
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  stats_.reg_reads.fetch_add(1, std::memory_order_relaxed);
  return static_cast<std::uint16_t>(backend_->pop_after(a & 0xffu, ch));
}

bool QatEngine::meas_wide(unsigned a, std::size_t ch) const {
  return backend_->meas(a & 0xffu, ch);
}

std::optional<std::size_t> QatEngine::next_wide(unsigned a,
                                                std::size_t ch) const {
  return backend_->next_one(a & 0xffu, ch);
}

std::size_t QatEngine::pop_wide(unsigned a, std::size_t ch) const {
  return backend_->pop_after(a & 0xffu, ch);
}

void QatEngine::execute(const Instr& i, std::uint16_t& d_value) {
  // Publish access-path ECC tallies after every instruction — on BOTH the
  // success and the trap (CorruptionError) path, so a detect-mode trap is
  // visible in stats before the simulator ever reaches a scrub point.
  try {
    execute_op(i, d_value);
  } catch (...) {
    drain_ecc();
    throw;
  }
  drain_ecc();
}

void QatEngine::execute_op(const Instr& i, std::uint16_t& d_value) {
  switch (i.op) {
    case Op::kQNot:
      not_(i.qa);
      break;
    case Op::kQZero:
      zero(i.qa);
      break;
    case Op::kQOne:
      one(i.qa);
      break;
    case Op::kQHad:
      had(i.qa, i.k);
      break;
    case Op::kQCnot:
      cnot(i.qa, i.qb);
      break;
    case Op::kQSwap:
      swap(i.qa, i.qb);
      break;
    case Op::kQAnd:
      and_(i.qa, i.qb, i.qc);
      break;
    case Op::kQOr:
      or_(i.qa, i.qb, i.qc);
      break;
    case Op::kQXor:
      xor_(i.qa, i.qb, i.qc);
      break;
    case Op::kQCcnot:
      ccnot(i.qa, i.qb, i.qc);
      break;
    case Op::kQCswap:
      cswap(i.qa, i.qb, i.qc);
      break;
    case Op::kQMeas:
      d_value = meas(i.qa, d_value);
      break;
    case Op::kQNext:
      d_value = next(i.qa, d_value);
      break;
    case Op::kQPop:
      d_value = pop(i.qa, d_value);
      break;
    default:
      throw std::invalid_argument("QatEngine: not a Qat instruction");
  }
}

// ---------------------------------------------------------------------------
// Structural models.

namespace {

/// A power-of-two-sized bit vector for the Figure 8 halving network.
struct BitVec {
  std::vector<std::uint64_t> w;
  std::size_t bits;

  bool nonzero() const {
    for (const auto x : w) {
      if (x != 0) return true;
    }
    return false;
  }
  bool bit0() const { return w[0] & 1u; }

  /// Split into halves (size is a power of two >= 2).
  BitVec low_half() const {
    BitVec r;
    r.bits = bits / 2;
    if (r.bits >= 64) {
      r.w.assign(w.begin(), w.begin() + static_cast<long>(r.bits / 64));
    } else {
      r.w = {w[0] & ((std::uint64_t{1} << r.bits) - 1)};
    }
    return r;
  }
  BitVec high_half() const {
    BitVec r;
    r.bits = bits / 2;
    if (r.bits >= 64) {
      r.w.assign(w.begin() + static_cast<long>(r.bits / 64), w.end());
    } else {
      r.w = {(w[0] >> r.bits) & ((std::uint64_t{1} << r.bits) - 1)};
    }
    return r;
  }
};

}  // namespace

std::uint16_t QatEngine::next_structural(const Aob& aob, std::uint16_t s) {
  const unsigned ways = aob.ways();
  // Step 1 (Figure 8): {((aob[N-1:1] >> s) << s), 1'b0} — a barrel shifter
  // pass clearing channels 0..s.
  BitVec cur;
  cur.bits = aob.bit_count();
  cur.w.assign(aob.words().begin(), aob.words().end());
  const std::size_t clear_through = (s & (aob.bit_count() - 1));
  for (std::size_t i = 0; i <= clear_through; ++i) {
    cur.w[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  // Step 2: recursive halving; each level emits one result bit.
  std::uint16_t tr = 0;
  for (int pow2 = static_cast<int>(ways) - 1; pow2 >= 1; --pow2) {
    const BitVec low = cur.low_half();
    if (low.nonzero()) {
      cur = low;  // tr bit stays 0
    } else {
      tr |= static_cast<std::uint16_t>(1u << pow2);
      cur = cur.high_half();
    }
  }
  // Final 2-bit remnant: tr[0] = ~v[0]; r = v ? tr : 0.
  if (!cur.bit0()) tr |= 1u;
  return cur.nonzero() ? tr : 0;
}

Aob QatEngine::had_structural(unsigned ways, unsigned k) {
  // Figure 7: for (i = 0; i < 2^WAYS; ++i) aob[i] = (i >> h) & 1 — evaluated
  // channel-at-a-time, exactly as the generate loop instantiates wires.
  Aob a(ways);
  for (std::size_t i = 0; i < a.bit_count(); ++i) {
    a.set(i, (i >> k) & 1u);
  }
  return a;
}

unsigned QatEngine::next_gate_delay(unsigned ways, unsigned or_fan_in) {
  // Barrel shifter: one 2:1-mux level per shift-amount bit.
  unsigned levels = ways;
  // Halving network: each step ORs 2^pow2 bits to pick a half (plus the
  // half-select mux).  A tree of fan-in-f OR gates over 2^k inputs is
  // ceil(k / log2(f)) levels; or_fan_in == 0 models an ideal wide OR.
  for (unsigned pow2 = ways - 1; pow2 >= 1; --pow2) {
    unsigned or_levels = 1;
    if (or_fan_in >= 2) {
      unsigned log2f = 0;
      while ((2u << log2f) <= or_fan_in) ++log2f;  // floor(log2(fan_in))
      or_levels = (pow2 + log2f - 1) / log2f;
    }
    levels += or_levels + 1;  // OR tree + select mux
  }
  return levels + 1;  // final tr[0] inverter / zero mux
}

}  // namespace tangled
