// multicycle_fsm.hpp — the multi-cycle Tangled/Qat as an explicit finite
// state machine (the first student Verilog project, paper §1.3/§3.1).
//
// MultiCycleSim (simulators.hpp) *accounts* 4 + extras cycles per
// instruction; this model actually sequences the states a multi-cycle
// controller steps through —
//
//   FETCH → [FETCH2] → DECODE → EX → [MEM] → WB → FETCH → ...
//
// one state per clock, with the work each state's datapath performs done in
// that state: FETCH reads instruction words, DECODE cracks fields and reads
// registers, EX runs the shared exec_stage datapath, MEM touches memory,
// WB writes the register file and updates PC.  Per-state cycle counters are
// exposed (what a controller's state-occupancy histogram would show).
//
// tests/test_multicycle_fsm.cpp verifies it architecturally identical to
// the functional model and cycle-identical to the accounting model.
#pragma once

#include <array>
#include <cstdint>

#include "arch/cpu.hpp"
#include "arch/simulators.hpp"

namespace tangled {

enum class McState : std::uint8_t {
  kFetch,
  kFetch2,
  kDecode,
  kEx,
  kMem,
  kWb,
};
inline constexpr unsigned kMcStateCount = 6;

class MultiCycleFsmSim {
 public:
  explicit MultiCycleFsmSim(unsigned ways = 16,
                            pbp::Backend backend = pbp::Backend::kDense)
      : qat_(ways, backend) {}

  void load(const Program& p) { mem_.load(p.words); }
  void load_words(const std::vector<std::uint16_t>& w) { mem_.load(w); }

  SimStats run(std::uint64_t max_instructions = 1'000'000);

  CpuState& cpu() { return cpu_; }
  const CpuState& cpu() const { return cpu_; }
  Memory& memory() { return mem_; }
  QatEngine& qat() { return qat_; }
  const std::string& console() const { return console_; }

  /// Cycles spent in each controller state during the last run().
  std::uint64_t state_cycles(McState s) const {
    return state_cycles_[static_cast<unsigned>(s)];
  }

 private:
  Memory mem_;
  CpuState cpu_;
  QatEngine qat_;
  std::string console_;
  std::array<std::uint64_t, kMcStateCount> state_cycles_{};
};

}  // namespace tangled
