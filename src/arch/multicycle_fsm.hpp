// multicycle_fsm.hpp — the multi-cycle Tangled/Qat as an explicit finite
// state machine (the first student Verilog project, paper §1.3/§3.1).
//
// MultiCycleSim (simulators.hpp) *accounts* 4 + extras cycles per
// instruction; this model actually sequences the states a multi-cycle
// controller steps through —
//
//   FETCH → [FETCH2] → DECODE → EX → [MEM] → WB → FETCH → ...
//
// one state per clock, with the work each state's datapath performs done in
// that state: FETCH reads instruction words, DECODE cracks fields and reads
// registers, EX runs the shared exec_stage datapath, MEM touches memory,
// WB writes the register file and updates PC.  Per-state cycle counters are
// exposed (what a controller's state-occupancy histogram would show).
//
// tests/test_multicycle_fsm.cpp verifies it architecturally identical to
// the functional model and cycle-identical to the accounting model.
#pragma once

#include <array>
#include <cstdint>

#include "arch/cpu.hpp"
#include "arch/simulators.hpp"

namespace tangled {

enum class McState : std::uint8_t {
  kFetch,
  kFetch2,
  kDecode,
  kEx,
  kMem,
  kWb,
};
inline constexpr unsigned kMcStateCount = 6;

class MultiCycleFsmSim {
 public:
  explicit MultiCycleFsmSim(unsigned ways = 16,
                            pbp::Backend backend = pbp::Backend::kDense)
      : qat_(ways, backend) {}

  void load(const Program& p) { load_words(p.words); }
  void load_words(const std::vector<std::uint16_t>& w) {
    if (!mem_.load(w)) {
      cpu_.trap = Trap{TrapKind::kMemImageOverflow, 0};
      cpu_.halted = true;
    }
  }

  SimStats run(std::uint64_t max_instructions = 1'000'000);

  /// Rewind to power-on state, reusing allocations (same contract as
  /// SimBase::reset(): bit-identical to a freshly constructed sim).
  void reset() {
    cpu_ = CpuState{};
    mem_.reset();
    qat_.reset();
    console_.clear();
    state_cycles_ = {};
    injector_ = FaultInjector{};
    retired_total_ = 0;
    max_cycles_ = 0;
    scrub_every_ = 0;
  }

  // --- Fault tolerance (same contract as SimBase) ---
  void set_fault_plan(FaultPlan plan) {
    if (plan.max_pool_symbols != 0) {
      qat_.set_pool_symbol_cap(plan.max_pool_symbols);
    }
    injector_.set_plan(std::move(plan));
  }
  const FaultInjector& injector() const { return injector_; }
  void set_max_cycles(std::uint64_t n) { max_cycles_ = n; }
  std::uint64_t retired_total() const { return retired_total_; }

  // --- Data integrity (same contract as SimBase) ---
  void set_ecc_mode(pbp::EccMode m) {
    mem_.set_ecc_mode(m);
    qat_.set_ecc_mode(m);
  }
  void set_ecc_epoch(std::uint64_t n) {
    mem_.set_ecc_epoch(n);
    qat_.set_ecc_epoch(n);
  }
  void set_scrub_every(std::uint64_t n) { scrub_every_ = n; }
  /// Intra-register worker threads for wide dense Qat sweeps.
  void set_qat_threads(unsigned n) { qat_.set_qat_threads(n); }
  bool ecc_enabled() const {
    return mem_.ecc_mode() != pbp::EccMode::kOff ||
           qat_.ecc_mode() != pbp::EccMode::kOff;
  }

  CpuState& cpu() { return cpu_; }
  const CpuState& cpu() const { return cpu_; }
  Memory& memory() { return mem_; }
  QatEngine& qat() { return qat_; }
  const std::string& console() const { return console_; }

  /// Cycles spent in each controller state during the last run().
  std::uint64_t state_cycles(McState s) const {
    return state_cycles_[static_cast<unsigned>(s)];
  }

 private:
  Memory mem_;
  CpuState cpu_;
  QatEngine qat_;
  std::string console_;
  std::array<std::uint64_t, kMcStateCount> state_cycles_{};
  FaultInjector injector_;
  std::uint64_t retired_total_ = 0;
  std::uint64_t max_cycles_ = 0;
  std::uint64_t scrub_every_ = 0;
};

}  // namespace tangled
