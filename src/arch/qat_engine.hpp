// qat_engine.hpp — the Qat coprocessor datapath (paper §2.2–§2.7, §3).
//
// Qat holds 256 AoB registers (@0..@255), each 2^WAYS bits (the paper's
// hardware uses WAYS = 16, i.e. 65,536-bit registers; the student projects
// used WAYS = 8).  Qat has no memory interface: every value lives in the
// register file.  All Table 3 operations are implemented, plus the `pop`
// extension (§2.7 specifies it; the class projects omitted it).
//
// Two ALU models are provided for the operations the paper singles out as
// "apparently difficult to implement" (§3.1):
//   * behavioural — word-parallel C++ (what the synthesis tool would infer),
//   * structural  — a bit-for-bit transliteration of the Figure 7/8 Verilog
//     generate blocks, plus a gate-delay cost model reproducing the §3.3
//     O(WAYS) vs O(WAYS^2) analysis.
// tests/test_qat_engine.cpp proves the two models identical.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.hpp"
#include "pbp/aob.hpp"

namespace tangled {

/// Statistics a hardware counter block would expose.
struct QatStats {
  std::uint64_t ops = 0;            // Qat instructions executed
  std::uint64_t reg_reads = 0;      // AoB register-file read ports used
  std::uint64_t reg_writes = 0;     // AoB register-file write ports used
};

class QatEngine {
 public:
  /// ways in [1, kMaxAobWays]; the paper's hardware is 16, class projects 8.
  explicit QatEngine(unsigned ways = 16);

  unsigned ways() const { return ways_; }
  std::size_t channels() const { return std::size_t{1} << ways_; }

  const pbp::Aob& reg(unsigned r) const { return regs_[r & 0xffu]; }
  void set_reg(unsigned r, const pbp::Aob& v);

  // --- Table 3 operations (register-number interface). ---
  void zero(unsigned a);
  void one(unsigned a);
  void had(unsigned a, unsigned k);
  void not_(unsigned a);                       // Pauli-X
  void cnot(unsigned a, unsigned b);           // @a ^= @b
  void ccnot(unsigned a, unsigned b, unsigned c);  // Toffoli
  void swap(unsigned a, unsigned b);
  void cswap(unsigned a, unsigned b, unsigned c);  // Fredkin
  void and_(unsigned a, unsigned b, unsigned c);   // @a = @b & @c
  void or_(unsigned a, unsigned b, unsigned c);
  void xor_(unsigned a, unsigned b, unsigned c);
  /// meas $d,@a — returns @a[ch]; non-destructive.
  std::uint16_t meas(unsigned a, std::uint16_t ch) const;
  /// next $d,@a — lowest set channel strictly after ch, or 0 if none (the
  /// ISA-level aliasing of "none" onto channel 0, §2.7).
  std::uint16_t next(unsigned a, std::uint16_t ch) const;
  /// pop $d,@a — count of set channels strictly after ch (§2.7 extension).
  std::uint16_t pop(unsigned a, std::uint16_t ch) const;

  /// Execute a decoded Qat instruction.  For meas/next/pop, `d_value` is the
  /// Tangled register value in and the result out (mirroring the tight
  /// coprocessor coupling: Tangled supplies and receives $d).
  void execute(const Instr& i, std::uint16_t& d_value);

  const QatStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  // --- Structural ALU models (Figures 7 and 8). ---
  /// Figure 8's barrel-shift + recursive count-trailing-zeros network,
  /// transliterated: step 1 clears channels 0..s, step 2 halves the vector
  /// WAYS times, emitting one result bit per level.
  static std::uint16_t next_structural(const pbp::Aob& aob, std::uint16_t s);
  /// Figure 7's per-channel generator (aob[i] = bit k of i) evaluated
  /// channel-at-a-time, exactly as the generate loop unrolls.
  static pbp::Aob had_structural(unsigned ways, unsigned k);

  /// §3.3 gate-delay model for the `next` network: levels of logic given
  /// OR gates of fan-in `or_fan_in`.  Wide ORs give O(WAYS); 2-input ORs
  /// give O(WAYS^2).
  static unsigned next_gate_delay(unsigned ways, unsigned or_fan_in);

 private:
  unsigned ways_;
  std::vector<pbp::Aob> regs_;
  mutable QatStats stats_;
};

}  // namespace tangled
