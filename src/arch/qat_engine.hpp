// qat_engine.hpp — the Qat coprocessor datapath (paper §2.2–§2.7, §3).
//
// Qat holds 256 registers (@0..@255), each 2^WAYS bits (the paper's hardware
// uses WAYS = 16, i.e. 65,536-bit registers; the student projects used
// WAYS = 8).  Qat has no memory interface: every value lives in the register
// file.  All Table 3 operations are implemented, plus the `pop` extension
// (§2.7 specifies it; the class projects omitted it).
//
// The register file itself is a pluggable backend (pbp/qat_backend.hpp):
//   * pbp::Backend::kDense      — raw AoB per register, the hardware model
//                                 (ways ≤ pbp::kMaxAobWays);
//   * pbp::Backend::kCompressed — RE-compressed registers over a shared
//                                 chunk pool, the §1.2 software scaling path
//                                 (ways up to pbp::kMaxReWays, storage and
//                                 work proportional to run counts).
// Both expose identical Table 3 semantics; tests/test_qat_backend.cpp proves
// it differentially.  The ISA-level interface below still speaks 16-bit
// channel values (what a Tangled register can hold); the _wide variants give
// software access to the full channel space of compressed registers.
//
// Two ALU models are provided for the operations the paper singles out as
// "apparently difficult to implement" (§3.1):
//   * behavioural — word-parallel C++ (what the synthesis tool would infer),
//   * structural  — a bit-for-bit transliteration of the Figure 7/8 Verilog
//     generate blocks, plus a gate-delay cost model reproducing the §3.3
//     O(WAYS) vs O(WAYS^2) analysis.
// tests/test_qat_engine.cpp proves the two models identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "isa/isa.hpp"
#include "pbp/aob.hpp"
#include "pbp/qat_backend.hpp"

namespace tangled {

/// Statistics a hardware counter block would expose.
///
/// The counters are atomics so a monitoring thread (the serve layer's
/// progress reporting, src/serve) can read them while the owning job is
/// mutating the engine on its worker thread.  Increments use relaxed
/// ordering: each counter is an independent monotone tally, and a reader
/// only needs freedom from torn/duplicated values, not cross-counter
/// consistency — snapshot() documents exactly that contract.
struct QatStats {
  std::atomic<std::uint64_t> ops{0};        // Qat instructions executed
  std::atomic<std::uint64_t> reg_reads{0};  // register-file read ports used
  std::atomic<std::uint64_t> reg_writes{0}; // register-file write ports used
  std::atomic<std::uint64_t> backend_migrations{0};  // RE→dense degradations
  std::atomic<std::uint64_t> ecc_corrected{0};  // single-bit upsets repaired
  std::atomic<std::uint64_t> ecc_detected{0};   // uncorrectable upsets seen
  std::atomic<std::uint64_t> ecc_scrubs{0};     // background scrub passes
  std::atomic<std::uint64_t> ecc_words_verified{0};  // payload words checked
  std::atomic<std::uint64_t> ecc_verifies_elided{0};  // epoch-policy skips

  QatStats() = default;
  QatStats(const QatStats& o) { *this = o; }
  QatStats& operator=(const QatStats& o) {
    ops.store(o.ops.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    reg_reads.store(o.reg_reads.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    reg_writes.store(o.reg_writes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    backend_migrations.store(
        o.backend_migrations.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    ecc_corrected.store(o.ecc_corrected.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    ecc_detected.store(o.ecc_detected.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    ecc_scrubs.store(o.ecc_scrubs.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    ecc_words_verified.store(
        o.ecc_words_verified.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    ecc_verifies_elided.store(
        o.ecc_verifies_elided.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }
};

/// A plain (non-atomic) copy of the counters, taken with relaxed loads.
/// Each field is individually exact; fields may be skewed relative to each
/// other by operations in flight at snapshot time.
struct QatStatsSnapshot {
  std::uint64_t ops = 0;
  std::uint64_t reg_reads = 0;
  std::uint64_t reg_writes = 0;
  std::uint64_t backend_migrations = 0;
  std::uint64_t ecc_corrected = 0;
  std::uint64_t ecc_detected = 0;
  std::uint64_t ecc_scrubs = 0;
  std::uint64_t ecc_words_verified = 0;
  std::uint64_t ecc_verifies_elided = 0;
};

class QatEngine {
 public:
  /// Dense: ways in [1, pbp::kMaxAobWays] (the paper's hardware is 16, class
  /// projects 8).  Compressed: ways in [1, pbp::kMaxReWays]; chunk_ways
  /// picks the RE symbol size (12 = the LCPC'20 prototype's 4096-bit chunks,
  /// 16 = driving real 65,536-bit hardware chunks).
  explicit QatEngine(unsigned ways = 16,
                     pbp::Backend backend = pbp::Backend::kDense,
                     unsigned chunk_ways = 12);

  /// Power-on reset: afterwards the engine is bit-identical to a freshly
  /// constructed QatEngine with this engine's construction parameters —
  /// every register all-zero, counters zero, ECC/epoch/threads policy back
  /// to defaults, migration guard cleared, and (if the register file had
  /// migrated RE→dense) the original backend kind restored.  A dense
  /// register file is rewound in place (DenseQatBackend::reset_state), so
  /// the slab stays cache-hot; a compressed one is rebuilt over a fresh
  /// private pool — a shared pool adopted via use_chunk_pool is detached,
  /// keeping reset == fresh-construct exact (the serve layer re-adopts a
  /// stripe per job).  The serve layer's simulator pool leans on this
  /// contract (tests/test_sim_pool.cpp proves it differentially).
  void reset();

  /// Serve-layer seam: rebuild the compressed register file over an
  /// externally owned (possibly cross-job shared) chunk pool.  Only valid
  /// for engines constructed with Backend::kCompressed and ways >=
  /// pool->chunk_ways(); throws std::invalid_argument otherwise.  Discards
  /// current register state (callers adopt pools before loading a
  /// program).  nullptr detaches back to a private pool (no-op when
  /// already private).
  void use_chunk_pool(std::shared_ptr<pbp::ChunkPool> pool);

  unsigned ways() const { return backend_->ways(); }
  std::size_t channels() const { return backend_->channels(); }
  pbp::Backend backend_kind() const { return backend_->kind(); }
  const pbp::QatBackend& backend() const { return *backend_; }

  /// Materialized register value (dense copy).  Throws std::length_error on
  /// a compressed engine wider than pbp::kMaxAobWays — use the measurement
  /// family or reg_string there.
  pbp::Aob reg(unsigned r) const { return backend_->reg_aob(r & 0xffu); }
  void set_reg(unsigned r, const pbp::Aob& v);

  /// "01101..." debug rendering; works at any ways on either backend.
  std::string reg_string(unsigned r, std::size_t max_bits = 64) const {
    return backend_->reg_string(r & 0xffu, max_bits);
  }
  std::size_t reg_popcount(unsigned r) const {
    return backend_->popcount(r & 0xffu);
  }
  /// Register-file bytes in the active representation (§1.2 storage claim).
  std::size_t storage_bytes() const { return backend_->storage_bytes(); }

  // --- Table 3 operations (register-number interface). ---
  void zero(unsigned a);
  void one(unsigned a);
  void had(unsigned a, unsigned k);
  void not_(unsigned a);                       // Pauli-X
  void cnot(unsigned a, unsigned b);           // @a ^= @b
  void ccnot(unsigned a, unsigned b, unsigned c);  // Toffoli
  void swap(unsigned a, unsigned b);
  void cswap(unsigned a, unsigned b, unsigned c);  // Fredkin
  void and_(unsigned a, unsigned b, unsigned c);   // @a = @b & @c
  void or_(unsigned a, unsigned b, unsigned c);
  void xor_(unsigned a, unsigned b, unsigned c);
  /// meas $d,@a — returns @a[ch]; non-destructive.
  std::uint16_t meas(unsigned a, std::uint16_t ch) const;
  /// next $d,@a — lowest set channel strictly after ch, or 0 if none (the
  /// ISA-level aliasing of "none" onto channel 0, §2.7).
  std::uint16_t next(unsigned a, std::uint16_t ch) const;
  /// pop $d,@a — count of set channels strictly after ch (§2.7 extension).
  std::uint16_t pop(unsigned a, std::uint16_t ch) const;

  // --- Full-width measurement (software access beyond 16-bit channels,
  // meaningful for compressed engines wider than 16 ways). ---
  bool meas_wide(unsigned a, std::size_t ch) const;
  std::optional<std::size_t> next_wide(unsigned a, std::size_t ch) const;
  std::size_t pop_wide(unsigned a, std::size_t ch) const;

  /// Execute a decoded Qat instruction.  For meas/next/pop, `d_value` is the
  /// Tangled register value in and the result out (mirroring the tight
  /// coprocessor coupling: Tangled supplies and receives $d).
  void execute(const Instr& i, std::uint16_t& d_value);

  const QatStats& stats() const { return stats_; }
  /// Relaxed-load copy of the counters, safe from any thread (see QatStats).
  QatStatsSnapshot stats_snapshot() const {
    return {stats_.ops.load(std::memory_order_relaxed),
            stats_.reg_reads.load(std::memory_order_relaxed),
            stats_.reg_writes.load(std::memory_order_relaxed),
            stats_.backend_migrations.load(std::memory_order_relaxed),
            stats_.ecc_corrected.load(std::memory_order_relaxed),
            stats_.ecc_detected.load(std::memory_order_relaxed),
            stats_.ecc_scrubs.load(std::memory_order_relaxed),
            stats_.ecc_words_verified.load(std::memory_order_relaxed),
            stats_.ecc_verifies_elided.load(std::memory_order_relaxed)};
  }
  void reset_stats() { stats_ = {}; }

  // --- Fault tolerance ---
  /// Cap the RE backend's chunk-pool symbol space (forced-exhaustion fault
  /// injection).  No-op on a dense backend.
  void set_pool_symbol_cap(std::size_t n) { backend_->set_symbol_cap(n); }
  /// Invert one channel of one register (transient-fault injection).  Like
  /// any mutating operation, may trigger an RE→dense migration if the pool
  /// is exhausted.
  void flip_channel(unsigned r, std::size_t ch);
  /// Memory-pressure hook (serve layer admission control): called with the
  /// extra bytes an RE→dense migration would materialize, before it runs.
  /// Returning false vetoes the migration — the exhaustion then surfaces as
  /// a clean kResourceExhausted trap instead of a multi-gigabyte dense
  /// register file appearing under a loaded server.  The guard survives
  /// checkpoint restore (it is policy, not machine state).
  void set_migration_guard(std::function<bool(std::size_t)> guard) {
    migration_guard_ = std::move(guard);
  }
  // --- Data integrity (end-to-end ECC, this repo's robustness layer) ---
  /// Select the register-file protection policy.  Policy, not machine
  /// state: it survives checkpoint restore and RE→dense migration (both
  /// re-apply it to the replacement backend), and the ECC counters are
  /// never serialized so telemetry stays monotone across rollback.
  void set_ecc_mode(pbp::EccMode m);
  pbp::EccMode ecc_mode() const { return ecc_mode_; }
  /// Verification epoch (policy like the mode: survives restore and
  /// RE→dense migration, never serialized).  Clamped into
  /// [1, pbp::kMaxEccEpoch].
  void set_ecc_epoch(std::uint64_t n);
  std::uint64_t ecc_epoch() const { return ecc_epoch_; }
  /// Intra-register worker threads for wide dense sweeps (policy like the
  /// mode: survives restore and RE→dense migration, never serialized, and
  /// never changes an architectural result).  0 is clamped to 1.
  void set_qat_threads(unsigned n);
  unsigned qat_threads() const { return qat_threads_; }
  /// Advance the backend's verification clock (retired-instruction total).
  void ecc_tick(std::uint64_t now);
  /// Sweep the whole register file: repairs correctable upsets (kCorrect),
  /// tallies the rest.  Never throws; callers trap on uncorrectable != 0.
  /// Also drains the backend's access-path tallies into stats().
  pbp::EccSweep scrub();
  /// Move the backend's pending access-path ECC tallies into stats().
  /// Reporting paths call this before reading a snapshot; scrub() and
  /// execute() drain automatically.
  void drain_ecc();
  /// Storage-upset fault model: flip one raw payload bit of register r
  /// (channel ch, wrapped) *underneath* the ECC sidecar — unlike
  /// flip_channel this does not re-encode, so the codec sees a genuine
  /// upset.  On the RE backend the flip lands in the shared chunk pool.
  void storage_upset(unsigned r, std::size_t ch);

  /// Snapshot / restore the whole coprocessor: register file (either
  /// backend) plus the hardware counters.
  void serialize(pbp::ByteWriter& w) const;
  /// Throws std::runtime_error on a malformed stream.
  void restore(pbp::ByteReader& r);

  // --- Structural ALU models (Figures 7 and 8). ---
  /// Figure 8's barrel-shift + recursive count-trailing-zeros network,
  /// transliterated: step 1 clears channels 0..s, step 2 halves the vector
  /// WAYS times, emitting one result bit per level.
  static std::uint16_t next_structural(const pbp::Aob& aob, std::uint16_t s);
  /// Figure 7's per-channel generator (aob[i] = bit k of i) evaluated
  /// channel-at-a-time, exactly as the generate loop unrolls.
  static pbp::Aob had_structural(unsigned ways, unsigned k);

  /// §3.3 gate-delay model for the `next` network: levels of logic given
  /// OR gates of fan-in `or_fan_in`.  Wide ORs give O(WAYS); 2-input ORs
  /// give O(WAYS^2).
  static unsigned next_gate_delay(unsigned ways, unsigned or_fan_in);

 private:
  /// Graceful degradation (ISSUE: fault-tolerant execution layer).  Every
  /// mutating Table 3 op funnels through here: on RE pool symbol-space
  /// exhaustion (std::length_error) at ways ≤ kMaxAobWays the register file
  /// transparently migrates to a dense backend and the op retries — RE ops
  /// build their result fully before committing, so the failed attempt left
  /// no partial state behind.  Wider register files have no dense form, so
  /// the exception escapes and becomes a kResourceExhausted trap.
  template <typename F>
  void mutate(F&& f) {
    try {
      f();
    } catch (const std::length_error&) {
      if (!try_degrade_to_dense()) throw;
      f();
    }
  }
  bool try_degrade_to_dense();
  void execute_op(const Instr& i, std::uint16_t& d_value);
  /// Tally one sweep's corrected/uncorrectable/words into stats_.
  void tally_sweep(const pbp::EccSweep& s);

  std::unique_ptr<pbp::QatBackend> backend_;
  // Construction parameters, kept so reset() can restore the power-on
  // configuration even after an RE→dense migration replaced the backend.
  pbp::Backend orig_backend_;
  unsigned orig_ways_;
  unsigned orig_chunk_ways_;
  std::shared_ptr<pbp::ChunkPool> shared_pool_;  // set by use_chunk_pool
  mutable QatStats stats_;
  std::function<bool(std::size_t)> migration_guard_;
  pbp::EccMode ecc_mode_ = pbp::EccMode::kOff;
  std::uint64_t ecc_epoch_ = 1;
  std::uint64_t ecc_now_ = 0;
  unsigned qat_threads_ = 1;
};

}  // namespace tangled
