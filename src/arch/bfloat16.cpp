#include "arch/bfloat16.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace tangled {
namespace {

std::uint32_t f2u(float f) { return std::bit_cast<std::uint32_t>(f); }
float u2f(std::uint32_t u) { return std::bit_cast<float>(u); }

/// Round a binary32 pattern to the nearest bf16 (ties to even), the rounding
/// a hardware bf16 unit applies when writing back.
std::uint16_t round_to_bf16(std::uint32_t u) {
  // NaN: keep it NaN (set a fraction bit so it doesn't collapse to inf).
  if ((u & 0x7f800000u) == 0x7f800000u && (u & 0x007fffffu) != 0) {
    return static_cast<std::uint16_t>((u >> 16) | 0x0040);
  }
  const std::uint32_t lsb = (u >> 16) & 1u;
  const std::uint32_t rounding_bias = 0x7fffu + lsb;
  return static_cast<std::uint16_t>((u + rounding_bias) >> 16);
}

/// The 128-entry fraction-reciprocal table the Verilog design loads from a
/// VMEM file.  Entry f approximates 2^14 / (1.f), i.e. the reciprocal of the
/// significand 1.f in 0.14 fixed point (range (0.5, 1.0]).
const std::array<std::uint16_t, 128>& recip_table() {
  static const auto table = [] {
    std::array<std::uint16_t, 128> t{};
    for (unsigned f = 0; f < 128; ++f) {
      // significand = (128 + f) / 128; reciprocal in 0.14 fixed point,
      // rounded to nearest — this is how the course VMEM file was generated.
      const std::uint32_t num = std::uint32_t{1} << 21;  // 2^14 * 128
      t[f] = static_cast<std::uint16_t>((num + (128 + f) / 2) / (128 + f));
    }
    return t;
  }();
  return table;
}

}  // namespace

Bf16 Bf16::from_float(float f) { return Bf16(round_to_bf16(f2u(f))); }

float Bf16::to_float() const {
  return u2f(static_cast<std::uint32_t>(bits_) << 16);
}

Bf16 Bf16::from_int(std::int16_t v) {
  return from_float(static_cast<float>(v));
}

std::int16_t Bf16::to_int() const {
  const float f = to_float();
  if (std::isnan(f)) return 0;
  if (f >= 32767.0f) return 32767;
  if (f <= -32768.0f) return -32768;
  return static_cast<std::int16_t>(f);  // truncates toward zero
}

Bf16 operator+(Bf16 a, Bf16 b) {
  return Bf16::from_float(a.to_float() + b.to_float());
}

Bf16 operator*(Bf16 a, Bf16 b) {
  return Bf16::from_float(a.to_float() * b.to_float());
}

Bf16 Bf16::recip() const {
  // Specials first, matching IEEE conventions the float library follows.
  if (is_nan()) return *this;
  if (is_zero()) return sign() ? kBf16NegInf : kBf16Inf;
  if (is_inf()) return Bf16(static_cast<std::uint16_t>(bits_ & 0x8000));
  const unsigned e = exponent();
  if (e == 0) return sign() ? kBf16NegInf : kBf16Inf;  // denormal ~ zero

  // 1 / (1.f * 2^(e-127)) = (1/1.f) * 2^(127-e).  The table gives 1/1.f in
  // 0.14 fixed point within (0.5, 1.0], i.e. 2^-1 * 1.g — so the result
  // exponent is (127 - (e - 127)) - 1 unless 1/1.f == 1.0 exactly (f == 0).
  if (fraction() == 0) {
    // Reciprocal of an exact power of two is exact.
    const int re = 127 - (static_cast<int>(e) - 127);
    if (re >= 0xff) return sign() ? kBf16NegInf : kBf16Inf;
    if (re <= 0) return Bf16(static_cast<std::uint16_t>(sign() << 15));
    return Bf16(static_cast<std::uint16_t>((sign() << 15) | (re << 7)));
  }
  const std::uint32_t r14 = recip_table()[fraction()];  // in (2^13, 2^14)
  // Normalize 0.14 -> 1.7: r14 in (8192, 16384) represents (0.5, 1.0);
  // shift left 1 to get 1.g in [1.0, 2.0) with a 14-bit fraction, keep 7.
  const std::uint32_t sig15 = r14 << 1;              // 1.14 in [16384, 32768)
  const std::uint32_t frac7 = (sig15 >> 7) & 0x7f;   // truncate, as hardware
  const int re = 127 - (static_cast<int>(e) - 127) - 1;
  if (re >= 0xff) return sign() ? kBf16NegInf : kBf16Inf;
  if (re <= 0) return Bf16(static_cast<std::uint16_t>(sign() << 15));
  return Bf16(static_cast<std::uint16_t>((sign() << 15) | (re << 7) | frac7));
}

Bf16 Bf16::recip_exact() const { return from_float(1.0f / to_float()); }

}  // namespace tangled
