#include "arch/qat_program.hpp"

#include <stdexcept>

#include "asm/assembler.hpp"

namespace tangled {

QatProgram compile_qat(const pbp::Circuit& c,
                       std::span<const pbp::Circuit::Node> roots,
                       const pbp::EmitOptions& opts) {
  // Reuse the text emitter (the single implementation of register
  // allocation), then assemble its output: the binary program is the exact
  // instruction-level twin of the Figure 10-style listing, and this path
  // cross-checks emitter and assembler against each other for free.
  const pbp::EmitResult emitted = pbp::emit_qat(c, roots, opts);
  const Program assembled = assemble(emitted.asm_text);

  QatProgram out;
  out.root_regs = emitted.root_regs;
  out.registers_used = emitted.registers_used;
  out.uses_constant_registers = opts.constant_registers;
  std::size_t pc = 0;
  while (pc < assembled.words.size()) {
    const std::uint16_t w0 = assembled.words[pc];
    const std::uint16_t w1 =
        pc + 1 < assembled.words.size() ? assembled.words[pc + 1] : 0;
    const Decoded dec = decode(w0, w1);
    if (!is_qat(dec.instr.op)) {
      throw std::runtime_error("compile_qat: emitter produced a non-Qat op");
    }
    out.instrs.push_back(dec.instr);
    pc += dec.words;
  }
  return out;
}

void run_on(QatEngine& engine, const QatProgram& p) {
  if (p.uses_constant_registers) {
    engine.zero(0);
    engine.one(1);
    for (unsigned k = 0; k < engine.ways() && 2 + k < kNumQatRegs; ++k) {
      engine.had(2 + k, k);
    }
  }
  for (const Instr& i : p.instrs) {
    std::uint16_t dummy = 0;
    engine.execute(i, dummy);
  }
}

void run_on(pbp::VirtualQat& engine, const QatProgram& p) {
  if (p.uses_constant_registers) {
    engine.zero(0);
    engine.one(1);
    for (unsigned k = 0; k < engine.ways() && 2 + k < 256; ++k) {
      engine.had(2 + k, k);
    }
  }
  for (const Instr& i : p.instrs) {
    switch (i.op) {
      case Op::kQNot:
        engine.not_(i.qa);
        break;
      case Op::kQZero:
        engine.zero(i.qa);
        break;
      case Op::kQOne:
        engine.one(i.qa);
        break;
      case Op::kQHad:
        engine.had(i.qa, i.k);
        break;
      case Op::kQCnot:
        engine.cnot(i.qa, i.qb);
        break;
      case Op::kQSwap:
        engine.swap(i.qa, i.qb);
        break;
      case Op::kQAnd:
        engine.and_(i.qa, i.qb, i.qc);
        break;
      case Op::kQOr:
        engine.or_(i.qa, i.qb, i.qc);
        break;
      case Op::kQXor:
        engine.xor_(i.qa, i.qb, i.qc);
        break;
      case Op::kQCcnot:
        engine.ccnot(i.qa, i.qb, i.qc);
        break;
      case Op::kQCswap:
        engine.cswap(i.qa, i.qb, i.qc);
        break;
      default:
        throw std::runtime_error(
            "run_on(VirtualQat): measurement ops need a host CPU");
    }
  }
}

}  // namespace tangled
