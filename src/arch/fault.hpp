// fault.hpp — seeded transient-fault injection for the Tangled simulators.
//
// A FaultPlan is a deterministic schedule of single-event upsets: bit flips
// in memory words, host registers, or Qat register channels, plus an
// optional forced RE chunk-pool symbol cap (the resource-exhaustion fault).
// Events are keyed on the simulator's *retired-instruction* counter — a
// monotone clock that never rewinds, so after a checkpoint rollback the
// already-consumed one-shot faults do not refire and re-execution converges.
//
// The soak harness (tests/test_fault_soak.cpp) runs the Figure 10 factoring
// program under hundreds of random plans and requires every run to end in a
// correct answer, a recorded trap, or a successful rollback — never an
// uncaught exception.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/cpu.hpp"

namespace tangled {

/// One scheduled single-event upset.
struct FaultEvent {
  enum class Target : std::uint8_t {
    kMemoryWord,  // flip `bit` of mem[addr]
    kHostReg,     // flip `bit` of $addr
    kQatChannel,  // invert channel `channel` of Qat register @addr
    // Storage upsets (ECC-protected payload, NOT architectural state):
    // these flip raw stored bits *underneath* the integrity sidecar, so
    // unlike the targets above the codec can see — and with ecc=correct,
    // repair — them.  With ecc=off they are silent data corruption.
    kQatStorage,  // flip stored channel bit `channel` of Qat register @addr
    kMemStorage,  // flip `bit` of mem[addr] without re-encoding its ECC
  };
  Target target = Target::kMemoryWord;
  std::uint64_t at_instr = 0;  // fires once retired instructions reach this
  std::uint16_t addr = 0;      // memory word / host register / Qat register
  unsigned bit = 0;            // bit index for 16-bit targets
  std::uint64_t channel = 0;   // channel index for Qat targets

  std::string to_string() const;
};

/// A full schedule: upset events plus an optional pool symbol cap applied
/// before the run starts (forces RE exhaustion / graceful degradation).
struct FaultPlan {
  std::vector<FaultEvent> events;
  std::size_t max_pool_symbols = 0;  // 0 = leave the pool uncapped

  bool empty() const { return events.empty() && max_pool_symbols == 0; }

  /// Deterministic plan from a seed: n_events upsets uniformly over
  /// retire-times [1, horizon], targets biased toward state the factoring
  /// programs actually touch (low memory, all host regs, low Qat regs).
  static FaultPlan random(std::uint64_t seed, std::size_t n_events,
                          std::uint64_t horizon, unsigned ways);

  /// Deterministic storage-upset plan: n_events raw payload flips spread
  /// over Qat registers and memory words (the ECC soak workload).
  static FaultPlan random_storage(std::uint64_t seed, std::size_t n_events,
                                  std::uint64_t horizon, unsigned ways);

  /// Parse a --inject spec: comma-separated key=value pairs
  ///   seed=N  events=N  horizon=N  pool=N  storage=1
  /// e.g. "seed=42,events=8,horizon=2000,pool=64".  `storage=1` draws the
  /// events from the storage-upset model (random_storage) instead of the
  /// architectural one.  Unknown keys throw std::invalid_argument.  `ways`
  /// bounds the Qat channel indices.
  static FaultPlan parse(const std::string& spec, unsigned ways);

  std::string to_string() const;
};

/// Applies a plan's due events at instruction boundaries.  The cursor is
/// deliberately NOT part of checkpointed machine state: faults are transient
/// events on the wall clock of retired instructions, so a rollback replays
/// the program but not the upsets.
class FaultInjector {
 public:
  void set_plan(FaultPlan plan);
  const FaultPlan& plan() const { return plan_; }
  bool armed() const { return !plan_.events.empty(); }

  /// Apply every event due at `retired` retired instructions.  Returns
  /// TrapKind::kNone normally; if injecting a fault itself faults (a Qat
  /// channel flip on an exhausted pool too wide to migrate), returns the
  /// classified trap kind instead of letting the exception escape.
  TrapKind apply_due(std::uint64_t retired, CpuState& cpu, Memory& mem,
                     QatEngine& qat);

  /// Events consumed so far (for reporting).
  std::size_t applied() const { return cursor_; }

 private:
  FaultPlan plan_;
  std::size_t cursor_ = 0;
};

}  // namespace tangled
