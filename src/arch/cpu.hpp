// cpu.hpp — Tangled architectural state and instruction semantics shared by
// every simulator (paper §2.1, Figure 6).
//
// The simulators (functional, multi-cycle, pipelined) differ only in
// *timing*; they all apply the same architectural effects via execute_instr,
// so a semantics bug cannot hide as a cross-simulator difference —
// tests/test_simulators.cpp and tests/test_property.cpp run the same
// programs on every model and compare final state.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/qat_engine.hpp"
#include "arch/trap.hpp"
#include "isa/isa.hpp"
#include "pbp/ecc.hpp"

namespace tangled {

/// 64Ki 16-bit words, word-addressed — the "simplified memory interface" of
/// the class projects (§3.1).
///
/// Optionally SECDED-protected: with an EccMode other than kOff each word
/// carries a (22,16) check byte maintained by write() and verified by the
/// load_checked()/scrub_ecc() paths.  read()/words_mut() stay raw — they
/// model the array itself, and the checkpoint/fault machinery that uses
/// them re-syncs via refresh_ecc()/storage_upset().
class Memory {
 public:
  Memory() : words_(65536, 0) {}

  std::uint16_t read(std::uint16_t addr) const { return words_[addr]; }
  /// Encode-on-write: the check byte is maintained inline by one
  /// table-driven encode, so a store costs O(1) extra regardless of mode.
  void write(std::uint16_t addr, std::uint16_t v) {
    words_[addr] = v;
    if (std::size_t{addr} >= dirty_limit_) dirty_limit_ = std::size_t{addr} + 1;
    if (ecc_ != pbp::EccMode::kOff) {
      check_[addr] = pbp::secded16_encode_fast(v);
    }
  }

  /// Load a program image at address 0.  An image wider than the address
  /// space is refused outright (nothing is written) and reported false, so
  /// the caller can raise a kMemImageOverflow trap instead of silently
  /// executing a truncated program.
  [[nodiscard]] bool load(const std::vector<std::uint16_t>& image) {
    if (image.size() > words_.size()) return false;
    for (std::size_t i = 0; i < image.size(); ++i) {
      words_[i] = image[i];
    }
    if (image.size() > dirty_limit_) dirty_limit_ = image.size();
    refresh_ecc();
    return true;
  }

  /// Whole-array access for checkpointing and fault injection.  After
  /// mutating through words_mut() with protection on, call refresh_ecc().
  const std::vector<std::uint16_t>& words() const { return words_; }
  /// High-water mark of written words: every word at index >= this is
  /// guaranteed still zero.  Checkpoint encoding and reset() exploit it to
  /// stay O(dirty footprint) instead of O(address space).
  std::size_t dirty_high_water() const { return dirty_limit_; }
  std::vector<std::uint16_t>& words_mut() {
    // The caller may scribble anywhere; pessimize the dirty high-water mark.
    dirty_limit_ = words_.size();
    return words_;
  }
  /// Caller contract: every word at index >= n is zero.  Checkpoint restore
  /// bulk-writes through words_mut() (which pins the mark to the full
  /// array) but knows the true extent from the decoded runs and lowers the
  /// mark back so later checkpoints stay O(dirty footprint).
  void shrink_dirty_high_water(std::size_t n) {
    if (n < dirty_limit_) dirty_limit_ = n;
  }

  /// Rewind to power-on state: zero payload words, drop the check sidecar,
  /// reset policy and counters.  Only the dirty prefix of the array is
  /// touched, so resetting a pooled Memory costs O(words actually written)
  /// rather than O(64Ki) — the point of reusing the allocation at all.
  /// Bit-identical to a freshly constructed Memory (tests/test_sim_pool.cpp
  /// holds this contract).
  void reset() {
    std::fill(words_.begin(),
              words_.begin() + static_cast<std::ptrdiff_t>(dirty_limit_), 0);
    dirty_limit_ = 0;
    check_.clear();
    ecc_ = pbp::EccMode::kOff;
    corrected_ = 0;
    detected_ = 0;
    ecc_epoch_ = 1;
    ecc_now_ = 0;
    words_verified_ = 0;
    verifies_elided_ = 0;
    verified_at_.clear();
  }

  // --- Integrity layer -----------------------------------------------

  /// Select the protection policy; (re)builds the check sidecar from the
  /// current contents, so the mode can change at any point in a run.
  void set_ecc_mode(pbp::EccMode m);
  pbp::EccMode ecc_mode() const { return ecc_; }

  /// Verified read used by the fetch and load datapaths.  kCorrect
  /// repairs a single-bit upset in place (counted); an uncorrectable
  /// upset — or, under kDetect, any mismatch — sets *corrupt and returns
  /// the raw word, which the caller must not commit.
  std::uint16_t load_checked(std::uint16_t addr, bool* corrupt);

  /// Verify (and under kCorrect repair) every protected word.
  pbp::EccSweep scrub_ecc();

  /// Re-encode the whole sidecar from the payload array — the
  /// trusted-bulk-update hook for checkpoint restore and load().
  void refresh_ecc();

  /// Storage-upset model: flip a raw payload bit *without* touching the
  /// check byte, exactly what a particle strike does to the array.
  void storage_upset(std::uint16_t addr, unsigned bit) {
    words_[addr] = static_cast<std::uint16_t>(words_[addr] ^ (1u << (bit & 15u)));
    if (std::size_t{addr} >= dirty_limit_) dirty_limit_ = std::size_t{addr} + 1;
  }

  std::uint64_t ecc_corrected() const { return corrected_; }
  std::uint64_t ecc_detected() const { return detected_; }
  /// Sidecar footprint in bytes (0 when protection is off).
  std::size_t ecc_bytes() const {
    return ecc_ == pbp::EccMode::kOff ? 0 : check_.size();
  }

  // --- Verification scheduling (epoch policy; see DESIGN.md §6) -------
  // Memory stamps are page-granular: kEccPageWords-word pages each carry a
  // verified_at stamp on the retired-instruction clock.  At epoch > 1 a
  // stale access verifies its whole page in one block sweep and stamps it;
  // accesses within the epoch are elided.  Epoch 1 (default) keeps the
  // historical word-at-a-time verify-every-access path.  A detect-mode
  // mismatch anywhere in the accessed page traps at the accessing
  // instruction — page-granular precision, the documented tradeoff.

  static constexpr std::size_t kEccPageWords = 256;

  void set_ecc_epoch(std::uint64_t n) { ecc_epoch_ = pbp::clamp_ecc_epoch(n); }
  std::uint64_t ecc_epoch() const { return ecc_epoch_; }
  /// Advance the verification clock (retired-instruction total).
  void ecc_tick(std::uint64_t now) { ecc_now_ = now; }

  std::uint64_t ecc_words_verified() const { return words_verified_; }
  std::uint64_t ecc_verifies_elided() const { return verifies_elided_; }

 private:
  std::uint16_t load_checked_epoch(std::uint16_t addr, bool* corrupt);

  std::vector<std::uint16_t> words_;
  /// High-water mark of possibly-nonzero payload words; reset() clears only
  /// [0, dirty_limit_).  words_mut() pins it to the full array because the
  /// caller can write anywhere through the raw reference.
  std::size_t dirty_limit_ = 0;
  std::vector<std::uint8_t> check_;  // one SECDED byte per word when on
  pbp::EccMode ecc_ = pbp::EccMode::kOff;
  std::uint64_t corrected_ = 0;  // monotone: never rewound by rollback
  std::uint64_t detected_ = 0;
  std::uint64_t ecc_epoch_ = 1;
  std::uint64_t ecc_now_ = 0;
  std::uint64_t words_verified_ = 0;
  std::uint64_t verifies_elided_ = 0;
  std::vector<std::uint64_t> verified_at_;  // per-page stamps; 0 = never
};

struct CpuState {
  std::array<std::uint16_t, kNumRegs> regs{};
  std::uint16_t pc = 0;
  bool halted = false;
  /// First trap taken, if any.  A trap always halts the machine; the
  /// faulting instruction does not commit and pc stays at it.
  Trap trap{};

  std::uint16_t reg(unsigned r) const { return regs[r & 15u]; }
  void set_reg(unsigned r, std::uint16_t v) { regs[r & 15u] = v; }
};

struct ExecResult {
  std::uint16_t next_pc = 0;
  bool taken_branch = false;  // PC diverged from fall-through
  bool halted = false;        // sys, or any trap
  bool print = false;         // sys $r console service fired
  std::uint16_t print_value = 0;
  TrapKind trap = TrapKind::kNone;  // cause if this instruction trapped
};

/// What the EX stage produces from an instruction and its (possibly
/// forwarded) operand VALUES.  This is the datapath output a latch-level
/// pipeline carries into MEM/WB; execute_instr composes the same function
/// with direct register-file access for the single-cycle model.
struct ExOut {
  std::uint16_t value = 0;      // ALU / Qat result (register write data)
  bool writes_reg = false;      // commit `value` to $d at WB
  bool is_load = false;         // MEM reads memory[addr] into $d
  bool is_store = false;        // MEM writes store_data to memory[addr]
  std::uint16_t addr = 0;
  std::uint16_t store_data = 0;
  bool taken = false;           // control transfer resolved taken in EX
  std::uint16_t target = 0;
  bool halt = false;
  bool print = false;           // sys $r console service
  std::uint16_t print_value = 0;
  /// kNone for a normal instruction.  A trapping instruction sets halt too,
  /// and must not commit (writes_reg / is_store are left false).
  TrapKind trap = TrapKind::kNone;
};

/// The EX-stage datapath: pure in the Tangled operand values (d_val/s_val),
/// side-effecting only on the Qat coprocessor (whose register file is read
/// and written in EX, in program order).
ExOut exec_stage(const Instr& i, std::uint16_t pc, unsigned words,
                 std::uint16_t d_val, std::uint16_t s_val, QatEngine& qat);

/// Apply one instruction's architectural effects.  `words` is the encoded
/// length (for fall-through PC).  The caller owns timing entirely.
ExecResult execute_instr(CpuState& cpu, Memory& mem, QatEngine& qat,
                         const Instr& i, unsigned words);

/// Sweep both protected stores (Qat register file / chunk pool and
/// Tangled memory), repairing what the configured modes allow.  Returns
/// kDataCorruption if either sweep found an uncorrectable upset (under
/// kDetect, any upset), kNone otherwise.  Shared by the simulators'
/// periodic scrubber and the checkpoint runner's pre-snapshot sweep.
TrapKind scrub_protected_state(QatEngine& qat, Memory& mem);

}  // namespace tangled
