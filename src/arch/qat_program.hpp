// qat_program.hpp — compiled Qat instruction streams, bridging the circuit
// compiler (pbp/circuit.hpp) to execution engines.
//
// emit_qat() produces assembly *text* (Figure 10 style).  This layer
// produces the same program as decoded instructions, ready to execute
// directly on a coprocessor back end without the host CPU in the loop —
// what a Tangled runtime library would hand to Qat, and the form in which
// the §1.2 software layer would drive 65,536-bit hardware chunks for
// high-entanglement values.
//
// Back ends: the hardware-model QatEngine (dense AoB registers) and the
// compressed VirtualQat (RE registers, arbitrary ways).  Both execute the
// identical instruction stream; tests/test_qat_program.cpp checks they
// agree with direct circuit evaluation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/qat_engine.hpp"
#include "pbp/circuit.hpp"
#include "pbp/virtual_qat.hpp"

namespace tangled {

/// A straight-line Qat program plus where each requested root value lives.
struct QatProgram {
  std::vector<Instr> instrs;
  std::vector<std::uint8_t> root_regs;
  unsigned registers_used = 0;
  bool uses_constant_registers = false;
};

/// Compile the cone of `roots` to a Qat instruction stream (same register
/// allocation options as pbp::emit_qat; kLinearScan recommended for big
/// cones).  The returned program is the binary twin of the emitted text.
QatProgram compile_qat(const pbp::Circuit& c,
                       std::span<const pbp::Circuit::Node> roots,
                       const pbp::EmitOptions& opts = {});

/// Execute on the hardware-model engine (dense registers).  Programs
/// compiled with constant_registers have @0=0, @1=1, @2+k=H(k) initialized
/// first, mirroring the §5 reserved-register file.
void run_on(QatEngine& engine, const QatProgram& p);

/// Execute on the compressed software engine (any ways).
void run_on(pbp::VirtualQat& engine, const QatProgram& p);

}  // namespace tangled
