#include "arch/fault.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace tangled {
namespace {

/// SplitMix64 — tiny, deterministic, and good enough for fault schedules.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

const char* target_name(FaultEvent::Target t) {
  switch (t) {
    case FaultEvent::Target::kMemoryWord:
      return "mem";
    case FaultEvent::Target::kHostReg:
      return "reg";
    case FaultEvent::Target::kQatChannel:
      return "qat";
    case FaultEvent::Target::kQatStorage:
      return "qstorage";
    case FaultEvent::Target::kMemStorage:
      return "mstorage";
  }
  return "?";
}

}  // namespace

std::string FaultEvent::to_string() const {
  std::ostringstream os;
  os << target_name(target) << "@" << at_instr << ":" << addr;
  if (target == Target::kQatChannel || target == Target::kQatStorage) {
    os << ".ch" << channel;
  } else {
    os << ".b" << bit;
  }
  return os.str();
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::size_t n_events,
                            std::uint64_t horizon, unsigned ways) {
  FaultPlan plan;
  SplitMix64 rng{seed ^ 0x7461676c6564ull};  // decorrelate seed 0 from state 0
  if (horizon == 0) horizon = 1;
  const std::uint64_t channel_mask = (std::uint64_t{1} << ways) - 1;
  for (std::size_t i = 0; i < n_events; ++i) {
    FaultEvent e;
    switch (rng.next() % 3) {
      case 0:
        e.target = FaultEvent::Target::kMemoryWord;
        // Bias toward the image/data the factoring programs actually touch.
        e.addr = static_cast<std::uint16_t>(rng.next() % 256);
        e.bit = static_cast<unsigned>(rng.next() % 16);
        break;
      case 1:
        e.target = FaultEvent::Target::kHostReg;
        e.addr = static_cast<std::uint16_t>(rng.next() % 16);
        e.bit = static_cast<unsigned>(rng.next() % 16);
        break;
      default:
        e.target = FaultEvent::Target::kQatChannel;
        e.addr = static_cast<std::uint16_t>(rng.next() % 16);
        e.channel = rng.next() & channel_mask;
        break;
    }
    e.at_instr = 1 + rng.next() % horizon;
    plan.events.push_back(e);
  }
  return plan;
}

FaultPlan FaultPlan::random_storage(std::uint64_t seed, std::size_t n_events,
                                    std::uint64_t horizon, unsigned ways) {
  FaultPlan plan;
  SplitMix64 rng{seed ^ 0x73746f72616765ull};  // distinct stream from random()
  if (horizon == 0) horizon = 1;
  const std::uint64_t channel_mask = (std::uint64_t{1} << ways) - 1;
  for (std::size_t i = 0; i < n_events; ++i) {
    FaultEvent e;
    if (rng.next() % 2 == 0) {
      e.target = FaultEvent::Target::kQatStorage;
      e.addr = static_cast<std::uint16_t>(rng.next() % 16);
      e.channel = rng.next() & channel_mask;
    } else {
      e.target = FaultEvent::Target::kMemStorage;
      e.addr = static_cast<std::uint16_t>(rng.next() % 256);
      e.bit = static_cast<unsigned>(rng.next() % 16);
    }
    e.at_instr = 1 + rng.next() % horizon;
    plan.events.push_back(e);
  }
  return plan;
}

FaultPlan FaultPlan::parse(const std::string& spec, unsigned ways) {
  std::uint64_t seed = 1;
  std::size_t events = 4;
  std::uint64_t horizon = 5000;
  std::size_t pool = 0;
  bool storage = false;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("FaultPlan: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::uint64_t value = std::stoull(item.substr(eq + 1));
    if (key == "seed") {
      seed = value;
    } else if (key == "events") {
      events = static_cast<std::size_t>(value);
    } else if (key == "horizon") {
      horizon = value;
    } else if (key == "pool") {
      pool = static_cast<std::size_t>(value);
    } else if (key == "storage") {
      storage = value != 0;
    } else {
      throw std::invalid_argument("FaultPlan: unknown key '" + key + "'");
    }
  }
  FaultPlan plan = storage ? random_storage(seed, events, horizon, ways)
                           : random(seed, events, horizon, ways);
  plan.max_pool_symbols = pool;
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "faults[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) os << " ";
    os << events[i].to_string();
  }
  os << "]";
  if (max_pool_symbols != 0) os << " pool<=" << max_pool_symbols;
  return os.str();
}

void FaultInjector::set_plan(FaultPlan plan) {
  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) {
        return a.at_instr < b.at_instr;
      });
  plan_ = std::move(plan);
  cursor_ = 0;
}

TrapKind FaultInjector::apply_due(std::uint64_t retired, CpuState& cpu,
                                  Memory& mem, QatEngine& qat) {
  TrapKind first_fault = TrapKind::kNone;
  while (cursor_ < plan_.events.size() &&
         plan_.events[cursor_].at_instr <= retired) {
    const FaultEvent& e = plan_.events[cursor_++];
    try {
      switch (e.target) {
        case FaultEvent::Target::kMemoryWord:
          mem.write(e.addr, static_cast<std::uint16_t>(
                                mem.read(e.addr) ^ (1u << (e.bit & 15u))));
          break;
        case FaultEvent::Target::kHostReg:
          cpu.set_reg(e.addr, static_cast<std::uint16_t>(
                                  cpu.reg(e.addr) ^ (1u << (e.bit & 15u))));
          break;
        case FaultEvent::Target::kQatChannel:
          qat.flip_channel(static_cast<unsigned>(e.addr), e.channel);
          break;
        case FaultEvent::Target::kQatStorage:
          qat.storage_upset(static_cast<unsigned>(e.addr), e.channel);
          break;
        case FaultEvent::Target::kMemStorage:
          mem.storage_upset(e.addr, e.bit);
          break;
      }
    } catch (const pbp::CorruptionError&) {
      // Ordered first: CorruptionError derives from std::runtime_error.
      // (flip_channel reads the register before writing it, so an earlier
      // storage upset can surface right here at injection time.)
      if (first_fault == TrapKind::kNone) {
        first_fault = TrapKind::kDataCorruption;
      }
    } catch (const std::length_error&) {
      if (first_fault == TrapKind::kNone) {
        first_fault = TrapKind::kResourceExhausted;
      }
    } catch (const std::exception&) {
      if (first_fault == TrapKind::kNone) first_fault = TrapKind::kQatFault;
    }
  }
  return first_fault;
}

}  // namespace tangled
