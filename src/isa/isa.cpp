#include "isa/isa.hpp"

#include <array>
#include <stdexcept>

namespace tangled {
namespace {

// Primary opcode values (word bits [15:12]).
constexpr std::uint16_t kOpr2 = 0x0;  // two-register group, sub in [3:0]
constexpr std::uint16_t kOpr1 = 0x1;  // one-register group, sub in [3:0]
constexpr std::uint16_t kBrfOp = 0x2;
constexpr std::uint16_t kBrtOp = 0x3;
constexpr std::uint16_t kLexOp = 0x4;
constexpr std::uint16_t kLhiOp = 0x5;
constexpr std::uint16_t kQatOp = 0xE;

// OPR2 sub-opcodes.
constexpr std::array<Op, 12> kOpr2Sub = {
    Op::kAdd, Op::kAddf, Op::kAnd, Op::kCopy, Op::kLoad,  Op::kMul,
    Op::kMulf, Op::kOr,  Op::kShift, Op::kSlt, Op::kStore, Op::kXor};

// OPR1 sub-opcodes.
constexpr std::array<Op, 8> kOpr1Sub = {Op::kFloat, Op::kInt,  Op::kNeg,
                                        Op::kNegf,  Op::kNot,  Op::kRecip,
                                        Op::kJumpr, Op::kSys};

// Qat sub-opcodes (word bits [11:8]).
constexpr std::array<Op, 14> kQatSub = {
    Op::kQNot,  Op::kQZero, Op::kQOne,   Op::kQHad,   Op::kQCnot,
    Op::kQSwap, Op::kQAnd,  Op::kQOr,    Op::kQXor,   Op::kQCcnot,
    Op::kQCswap, Op::kQMeas, Op::kQNext, Op::kQPop};

template <typename Table>
int find_sub(const Table& table, Op op) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i] == op) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::string reg_name(unsigned r) {
  switch (r & 15u) {
    case kRegAt:
      return "$at";
    case kRegRv:
      return "$rv";
    case kRegRa:
      return "$ra";
    case kRegFp:
      return "$fp";
    case kRegSp:
      return "$sp";
    default:
      return "$" + std::to_string(r & 15u);
  }
}

std::optional<unsigned> parse_reg(const std::string& name) {
  if (name.size() < 2 || name[0] != '$') return std::nullopt;
  const std::string body = name.substr(1);
  if (body == "at") return kRegAt;
  if (body == "rv") return kRegRv;
  if (body == "ra") return kRegRa;
  if (body == "fp") return kRegFp;
  if (body == "sp") return kRegSp;
  unsigned v = 0;
  for (const char ch : body) {
    if (ch < '0' || ch > '9') return std::nullopt;
    v = v * 10 + static_cast<unsigned>(ch - '0');
  }
  if (v >= kNumRegs) return std::nullopt;
  return v;
}

bool is_qat(Op op) { return op >= Op::kQNot && op <= Op::kQPop; }

unsigned instr_words(Op op) {
  switch (op) {
    case Op::kQNot:
    case Op::kQZero:
    case Op::kQOne:
      return 1;
    default:
      return is_qat(op) ? 2 : 1;
  }
}

bool is_branch(Op op) {
  return op == Op::kBrf || op == Op::kBrt || op == Op::kJumpr;
}

bool writes_tangled_reg(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kAddf:
    case Op::kAnd:
    case Op::kCopy:
    case Op::kFloat:
    case Op::kInt:
    case Op::kLex:
    case Op::kLhi:
    case Op::kLoad:
    case Op::kMul:
    case Op::kMulf:
    case Op::kNeg:
    case Op::kNegf:
    case Op::kNot:
    case Op::kOr:
    case Op::kRecip:
    case Op::kShift:
    case Op::kSlt:
    case Op::kXor:
    case Op::kQMeas:
    case Op::kQNext:
    case Op::kQPop:
      return true;
    default:
      return false;
  }
}

bool reads_d(Op op) {
  switch (op) {
    // $d is an accumulator input for most ALU forms, the condition for
    // branches, the store data, and the channel argument for meas/next/pop.
    case Op::kAdd:
    case Op::kAddf:
    case Op::kAnd:
    case Op::kBrf:
    case Op::kBrt:
    case Op::kFloat:
    case Op::kInt:
    case Op::kMul:
    case Op::kMulf:
    case Op::kNeg:
    case Op::kNegf:
    case Op::kNot:
    case Op::kOr:
    case Op::kRecip:
    case Op::kShift:
    case Op::kSlt:
    case Op::kStore:
    case Op::kXor:
    case Op::kJumpr:
    case Op::kQMeas:
    case Op::kQNext:
    case Op::kQPop:
    case Op::kLhi:  // read-modify-write of the low byte's complement half
    case Op::kSys:  // sys $r prints $r's value
      return true;
    default:
      return false;
  }
}

bool reads_s(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kAddf:
    case Op::kAnd:
    case Op::kCopy:
    case Op::kLoad:
    case Op::kMul:
    case Op::kMulf:
    case Op::kOr:
    case Op::kShift:
    case Op::kSlt:
    case Op::kStore:
    case Op::kXor:
      return true;
    default:
      return false;
  }
}

unsigned encode(const Instr& i, std::uint16_t out[2]) {
  const auto word = [](std::uint16_t op, std::uint16_t d,
                       std::uint16_t low8) -> std::uint16_t {
    return static_cast<std::uint16_t>((op << 12) | ((d & 15u) << 8) |
                                      (low8 & 0xffu));
  };
  if (int sub = find_sub(kOpr2Sub, i.op); sub >= 0) {
    out[0] = word(kOpr2, i.d,
                  static_cast<std::uint16_t>(((i.s & 15u) << 4) | sub));
    return 1;
  }
  if (int sub = find_sub(kOpr1Sub, i.op); sub >= 0) {
    out[0] = word(kOpr1, i.d, static_cast<std::uint16_t>(sub));
    return 1;
  }
  switch (i.op) {
    case Op::kBrf:
      out[0] = word(kBrfOp, i.d, static_cast<std::uint16_t>(i.imm & 0xff));
      return 1;
    case Op::kBrt:
      out[0] = word(kBrtOp, i.d, static_cast<std::uint16_t>(i.imm & 0xff));
      return 1;
    case Op::kLex:
      out[0] = word(kLexOp, i.d, static_cast<std::uint16_t>(i.imm & 0xff));
      return 1;
    case Op::kLhi:
      out[0] = word(kLhiOp, i.d, static_cast<std::uint16_t>(i.imm & 0xff));
      return 1;
    default:
      break;
  }
  if (is_qat(i.op)) {
    const int qop = find_sub(kQatSub, i.op);
    std::uint16_t a8 = i.qa;
    if (i.op == Op::kQMeas || i.op == Op::kQNext || i.op == Op::kQPop) {
      a8 = i.d & 15u;
    }
    out[0] = static_cast<std::uint16_t>((kQatOp << 12) | (qop << 8) | a8);
    switch (i.op) {
      case Op::kQNot:
      case Op::kQZero:
      case Op::kQOne:
        return 1;
      case Op::kQHad:
        // 6-bit k: the paper's hardware only needs 4 (ways 16), but the
        // second word has room and the RE software backend runs to ways 40.
        out[1] = static_cast<std::uint16_t>(i.k & 63u);
        return 2;
      case Op::kQCnot:
      case Op::kQSwap:
        out[1] = static_cast<std::uint16_t>(i.qb << 8);
        return 2;
      case Op::kQAnd:
      case Op::kQOr:
      case Op::kQXor:
      case Op::kQCcnot:
      case Op::kQCswap:
        out[1] = static_cast<std::uint16_t>((i.qb << 8) | i.qc);
        return 2;
      case Op::kQMeas:
      case Op::kQNext:
      case Op::kQPop:
        out[1] = static_cast<std::uint16_t>(i.qa);
        return 2;
      default:
        break;
    }
  }
  throw std::invalid_argument("encode: invalid instruction");
}

Decoded decode(std::uint16_t w0, std::uint16_t w1) {
  Decoded r;
  Instr& i = r.instr;
  const std::uint16_t op = w0 >> 12;
  const std::uint8_t d = (w0 >> 8) & 15u;
  const std::uint8_t s = (w0 >> 4) & 15u;
  const std::uint8_t sub = w0 & 15u;
  const std::uint8_t low8 = w0 & 0xffu;
  switch (op) {
    case kOpr2:
      if (sub < kOpr2Sub.size()) {
        i.op = kOpr2Sub[sub];
        i.d = d;
        i.s = s;
      }
      return r;
    case kOpr1:
      if (sub < kOpr1Sub.size()) {
        i.op = kOpr1Sub[sub];
        i.d = d;
      }
      return r;
    case kBrfOp:
    case kBrtOp:
      i.op = op == kBrfOp ? Op::kBrf : Op::kBrt;
      i.d = d;
      i.imm = static_cast<std::int16_t>(static_cast<std::int8_t>(low8));
      return r;
    case kLexOp:
      i.op = Op::kLex;
      i.d = d;
      i.imm = static_cast<std::int16_t>(static_cast<std::int8_t>(low8));
      return r;
    case kLhiOp:
      i.op = Op::kLhi;
      i.d = d;
      i.imm = static_cast<std::int16_t>(low8);
      return r;
    case kQatOp: {
      const std::uint8_t qop = (w0 >> 8) & 15u;
      if (qop >= kQatSub.size()) return r;
      i.op = kQatSub[qop];
      r.words = instr_words(i.op);
      switch (i.op) {
        case Op::kQNot:
        case Op::kQZero:
        case Op::kQOne:
          i.qa = low8;
          break;
        case Op::kQHad:
          i.qa = low8;
          i.k = w1 & 63u;
          break;
        case Op::kQCnot:
        case Op::kQSwap:
          i.qa = low8;
          i.qb = (w1 >> 8) & 0xffu;
          break;
        case Op::kQAnd:
        case Op::kQOr:
        case Op::kQXor:
        case Op::kQCcnot:
        case Op::kQCswap:
          i.qa = low8;
          i.qb = (w1 >> 8) & 0xffu;
          i.qc = w1 & 0xffu;
          break;
        case Op::kQMeas:
        case Op::kQNext:
        case Op::kQPop:
          i.d = low8 & 15u;
          i.qa = w1 & 0xffu;
          break;
        default:
          break;
      }
      return r;
    }
    default:
      return r;  // kInvalid
  }
}

std::string disassemble(const Instr& i) {
  const auto q = [](unsigned r) { return "@" + std::to_string(r); };
  switch (i.op) {
    case Op::kAdd:
      return "add " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kAddf:
      return "addf " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kAnd:
      return "and " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kBrf:
      return "brf " + reg_name(i.d) + "," + std::to_string(i.imm);
    case Op::kBrt:
      return "brt " + reg_name(i.d) + "," + std::to_string(i.imm);
    case Op::kCopy:
      return "copy " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kFloat:
      return "float " + reg_name(i.d);
    case Op::kInt:
      return "int " + reg_name(i.d);
    case Op::kJumpr:
      return "jumpr " + reg_name(i.d);
    case Op::kLex:
      return "lex " + reg_name(i.d) + "," + std::to_string(i.imm);
    case Op::kLhi:
      return "lhi " + reg_name(i.d) + "," + std::to_string(i.imm);
    case Op::kLoad:
      return "load " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kMul:
      return "mul " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kMulf:
      return "mulf " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kNeg:
      return "neg " + reg_name(i.d);
    case Op::kNegf:
      return "negf " + reg_name(i.d);
    case Op::kNot:
      return "not " + reg_name(i.d);
    case Op::kOr:
      return "or " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kRecip:
      return "recip " + reg_name(i.d);
    case Op::kShift:
      return "shift " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kSlt:
      return "slt " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kStore:
      return "store " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kSys:
      return i.d != 0 ? "sys " + reg_name(i.d) : "sys";
    case Op::kXor:
      return "xor " + reg_name(i.d) + "," + reg_name(i.s);
    case Op::kQNot:
      return "not " + q(i.qa);
    case Op::kQZero:
      return "zero " + q(i.qa);
    case Op::kQOne:
      return "one " + q(i.qa);
    case Op::kQHad:
      return "had " + q(i.qa) + "," + std::to_string(i.k);
    case Op::kQCnot:
      return "cnot " + q(i.qa) + "," + q(i.qb);
    case Op::kQSwap:
      return "swap " + q(i.qa) + "," + q(i.qb);
    case Op::kQAnd:
      return "and " + q(i.qa) + "," + q(i.qb) + "," + q(i.qc);
    case Op::kQOr:
      return "or " + q(i.qa) + "," + q(i.qb) + "," + q(i.qc);
    case Op::kQXor:
      return "xor " + q(i.qa) + "," + q(i.qb) + "," + q(i.qc);
    case Op::kQCcnot:
      return "ccnot " + q(i.qa) + "," + q(i.qb) + "," + q(i.qc);
    case Op::kQCswap:
      return "cswap " + q(i.qa) + "," + q(i.qb) + "," + q(i.qc);
    case Op::kQMeas:
      return "meas " + reg_name(i.d) + "," + q(i.qa);
    case Op::kQNext:
      return "next " + reg_name(i.d) + "," + q(i.qa);
    case Op::kQPop:
      return "pop " + reg_name(i.d) + "," + q(i.qa);
    case Op::kInvalid:
      return "<invalid>";
  }
  return "<invalid>";
}

}  // namespace tangled
