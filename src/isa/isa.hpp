// isa.hpp — the Tangled + Qat instruction set (paper Tables 1 and 3).
//
// The paper deliberately leaves instruction encoding open (each student
// picked their own and built an assembler for it with AIK).  This repo fixes
// one encoding, documented in DESIGN.md §1:
//
//   word:  op[15:12] | d[11:8] | s[7:4] | sub[3:0]       (register forms)
//          op[15:12] | d[11:8] | imm8[7:0]               (immediate forms)
//          0xE       | qop[11:8] | A[7:0]                (Qat word 0)
//          B[15:8] | C[7:0]                              (Qat word 1)
//
// Qat instructions name 8-bit coprocessor registers, so most encode as two
// 16-bit words (the variable-length fetch the paper's §3.1 calls out as the
// students' main pipeline challenge); not/zero/one fit in one word.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace tangled {

enum class Op : std::uint8_t {
  // --- Tangled base instructions (Table 1) ---
  kAdd,    // $d += $s
  kAddf,   // bfloat16 $d += $s
  kAnd,    // $d &= $s
  kBrf,    // if (!$c) PC += offset
  kBrt,    // if ($c) PC += offset
  kCopy,   // $d = $s
  kFloat,  // $d = (bfloat16)$d
  kInt,    // $d = (int)$d
  kJumpr,  // PC = $a
  kLex,    // $d = sext(imm8)
  kLhi,    // $d[15:8] = imm8
  kLoad,   // $d = memory[$s]
  kMul,    // $d *= $s
  kMulf,   // bfloat16 $d *= $s
  kNeg,    // $d = -$d
  kNegf,   // bfloat16 $d = -$d
  kNot,    // $d = ~$d
  kOr,     // $d |= $s
  kRecip,  // bfloat16 $d = 1.0/$d
  kShift,  // $d <<= $s ($s < 0 shifts right arithmetic)
  kSlt,    // $d = ($d < $s), signed
  kStore,  // memory[$s] = $d
  kSys,    // system call (halts the simulators)
  kXor,    // $d ^= $s
  // --- Qat coprocessor instructions (Table 3, + pop extension §2.7) ---
  kQNot,    // @a = ~@a (Pauli-X)
  kQZero,   // @a = 0
  kQOne,    // @a = 1
  kQHad,    // @a = H(imm6)
  kQCnot,   // @a ^= @b
  kQSwap,   // swap(@a, @b)
  kQAnd,    // @a = @b & @c
  kQOr,     // @a = @b | @c
  kQXor,    // @a = @b ^ @c
  kQCcnot,  // @a ^= @b & @c (Toffoli)
  kQCswap,  // where (@c) swap(@a, @b) (Fredkin)
  kQMeas,   // $d = @a[$d]
  kQNext,   // $d = next set channel of @a after $d (0 if none)
  kQPop,    // $d = popcount of @a strictly after channel $d
  kInvalid,
};

/// Conventional register numbers/names: $0..$10 general, $at=11, $rv=12,
/// $ra=13, $fp=14, $sp=15 (paper §2.1).
inline constexpr unsigned kRegAt = 11;
inline constexpr unsigned kRegRv = 12;
inline constexpr unsigned kRegRa = 13;
inline constexpr unsigned kRegFp = 14;
inline constexpr unsigned kRegSp = 15;
inline constexpr unsigned kNumRegs = 16;
inline constexpr unsigned kNumQatRegs = 256;

/// Name for Tangled register r ("$0".."$10", "$at", ...).
std::string reg_name(unsigned r);
/// Parse "$3" / "$at" / "$sp"; nullopt when malformed.
std::optional<unsigned> parse_reg(const std::string& name);

/// A decoded instruction, operands already field-extracted.
struct Instr {
  Op op = Op::kInvalid;
  std::uint8_t d = 0;   // Tangled dest/cond register (also meas/next/pop $d)
  std::uint8_t s = 0;   // Tangled source register
  std::int16_t imm = 0; // sign-extended imm8 (lex/brf/brt) or raw (lhi)
  std::uint8_t qa = 0;  // Qat @a (or had target)
  std::uint8_t qb = 0;  // Qat @b
  std::uint8_t qc = 0;  // Qat @c
  std::uint8_t k = 0;   // had imm6

  bool operator==(const Instr&) const = default;
};

bool is_qat(Op op);
/// Number of 16-bit words this instruction encodes to (1 or 2).
unsigned instr_words(Op op);
/// True for branch/jump instructions (pipeline control hazards).
bool is_branch(Op op);
/// True when the instruction writes Tangled register `d`.
bool writes_tangled_reg(Op op);
/// True when the instruction reads Tangled register `d` as an input.
bool reads_d(Op op);
/// True when the instruction reads Tangled register `s`.
bool reads_s(Op op);

/// Encode into out[0..1]; returns the word count (1 or 2).
/// Throws std::invalid_argument for kInvalid.
unsigned encode(const Instr& i, std::uint16_t out[2]);

struct Decoded {
  Instr instr;
  unsigned words = 1;
};

/// Decode the instruction starting at w0 (w1 is only examined for two-word
/// forms).  Undefined opcodes decode as kInvalid, one word long.
Decoded decode(std::uint16_t w0, std::uint16_t w1);

/// Assembly text for an instruction, in the paper's syntax.
std::string disassemble(const Instr& i);

}  // namespace tangled
