#include "pbp/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace pbp {

PintMoments moments(const Pint& p) {
  auto circ = p.circuit();
  const double channels =
      static_cast<double>(std::size_t{1} << circ->context()->ways());
  const unsigned w = p.width();

  // First moment from per-bit populations.
  double mean = 0.0;
  for (unsigned i = 0; i < w; ++i) {
    mean += std::ldexp(static_cast<double>(circ->popcount(p.bit(i))), i);
  }
  mean /= channels;

  // Second moment from pairwise-AND populations:
  // E[v²] = Σ_i Σ_j 2^{i+j} P(b_i ∧ b_j); the diagonal term uses b_i∧b_i=b_i.
  double second = 0.0;
  for (unsigned i = 0; i < w; ++i) {
    for (unsigned j = 0; j <= i; ++j) {
      const auto both =
          i == j ? p.bit(i) : circ->g_and(p.bit(i), p.bit(j));
      const double pop = static_cast<double>(circ->popcount(both));
      second += std::ldexp(pop, i + j) * (i == j ? 1.0 : 2.0);
    }
  }
  second /= channels;

  PintMoments m;
  m.mean = mean;
  m.variance = second - mean * mean;
  if (m.variance < 0) m.variance = 0;  // guard rounding on constants

  // Extremes via the channel-enumeration-free reductions: lowest present
  // value = value with the first ANY bit pattern...  Simplest exact route
  // that stays cheap: scan values by bit-slicing from the MSB.
  // max: greedily force bits high where a channel survives.
  {
    auto survivors = circ->one();
    std::uint64_t v = 0;
    for (unsigned i = w; i-- > 0;) {
      const auto with_bit = circ->g_and(survivors, p.bit(i));
      if (circ->any(with_bit)) {
        survivors = with_bit;
        v |= std::uint64_t{1} << i;
      } else {
        survivors = circ->g_and(survivors, circ->g_not(p.bit(i)));
      }
    }
    m.max_value = v;
  }
  {
    auto survivors = circ->one();
    std::uint64_t v = 0;
    for (unsigned i = w; i-- > 0;) {
      const auto without = circ->g_and(survivors, circ->g_not(p.bit(i)));
      if (circ->any(without)) {
        survivors = without;
      } else {
        survivors = circ->g_and(survivors, p.bit(i));
        v |= std::uint64_t{1} << i;
      }
    }
    m.min_value = v;
  }
  return m;
}

double pbit_correlation(const Pint& a, unsigned bit_a, const Pint& b,
                        unsigned bit_b) {
  if (a.circuit() != b.circuit()) {
    throw std::invalid_argument("pbit_correlation: different circuits");
  }
  auto circ = a.circuit();
  const double n =
      static_cast<double>(std::size_t{1} << circ->context()->ways());
  const double pa = static_cast<double>(circ->popcount(a.bit(bit_a))) / n;
  const double pb = static_cast<double>(circ->popcount(b.bit(bit_b))) / n;
  const double pab =
      static_cast<double>(
          circ->popcount(circ->g_and(a.bit(bit_a), b.bit(bit_b)))) /
      n;
  const double va = pa * (1 - pa);
  const double vb = pb * (1 - pb);
  if (va == 0.0 || vb == 0.0) return 0.0;  // constant pbit: undefined -> 0
  return (pab - pa * pb) / std::sqrt(va * vb);
}

std::uint64_t sample(const Pint& p, std::mt19937_64& rng) {
  const std::size_t channels = std::size_t{1}
                               << p.circuit()->context()->ways();
  return p.value_at_channel(rng() % channels);
}

double entropy_bits(const Pint& p) {
  const auto dist = p.measure_distribution();
  std::size_t total = 0;
  for (const auto& e : dist) total += e.second;
  double h = 0.0;
  for (const auto& e : dist) {
    if (e.second == 0) continue;
    const double prob =
        static_cast<double>(e.second) / static_cast<double>(total);
    h -= prob * std::log2(prob);
  }
  return h;
}

}  // namespace pbp
