// optimizer.hpp — gate-level optimization of recorded PBP circuits.
//
// The paper's motivation cites "extensive application of compiler
// optimization of programs at the gate level" ([2], Dietz LCPC 2017) as a
// route to order-of-magnitude reductions in gate actions.  The LCPC'20
// prototype the Figure 10 program came from deliberately did NOT optimize
// (it even inserted extra copies to preserve every intermediate, §4.2).
// This pass closes that loop: rebuild a circuit from its roots with
//
//  * dead-gate elimination   (only the cone of the roots is kept),
//  * constant folding        (x&0=0, x|1=1, x^x=0, had(k>=WAYS)=0, ...),
//  * double-negation removal (~~x = x),
//  * common-subexpression elimination (structural hash-consing).
//
// bench_fig9_factoring and bench_ablation_ports measure what this buys on
// the paper's own factoring circuit.
#pragma once

#include <span>
#include <vector>

#include "pbp/circuit.hpp"

namespace pbp {

struct OptimizeOptions {
  bool fold_constants = true;
  bool simplify_not = true;  // ~~x = x, x^1 = ~x
  bool cse = true;
};

struct OptimizeStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t folds = 0;       // algebraic-identity hits
  std::size_t cse_hits = 0;    // structurally duplicate gates merged
};

struct OptimizeResult {
  Circuit circuit;
  std::vector<Circuit::Node> roots;  // same order as the input roots
  OptimizeStats stats;
};

/// Rebuild `in` keeping only the cone of `roots`, applying the enabled
/// simplifications.  The result evaluates to bit-identical Pbit values for
/// every root (tests/test_optimizer.cpp verifies this property).
OptimizeResult optimize(const Circuit& in,
                        std::span<const Circuit::Node> roots,
                        const OptimizeOptions& opts = {});

}  // namespace pbp
