// stats.hpp — exact distribution statistics and sampling for pattern
// integers.
//
// In the PBP model a pint IS its probability distribution: value v has
// probability (channels encoding v) / 2^E, "measured in integral parts per
// 2^E" (paper §1.1).  Because measurement is non-destructive (§2.7), these
// are exact quantities computed by popcount-style reductions, not estimates:
//
//   * expectation:   E[v]  = Σ_i 2^i · POP(bit_i) / 2^E        (w popcounts)
//   * second moment: E[v²] = Σ_{i,j} 2^{i+j} · POP(bit_i ∧ bit_j) / 2^E
//   * bit correlations between two pints
//
// sample() emulates what a QUANTUM measurement of the same register would
// return: one value drawn with the superposition's probabilities — except
// nothing collapses, so you can sample forever (the paper's point about
// "no number of runs sufficient to guarantee all values have been seen" in
// quantum computers does not apply here: measure_values() is exhaustive).
#pragma once

#include <cstdint>
#include <random>

#include "pbp/pint.hpp"

namespace pbp {

struct PintMoments {
  double mean = 0.0;
  double variance = 0.0;
  /// Exact probability of the most/least-probable present values.
  std::uint64_t min_value = 0;
  std::uint64_t max_value = 0;
};

/// Exact moments of a pint's value distribution.  Cost: O(w²) popcounts over
/// 2^E-bit vectors — no per-channel enumeration.
PintMoments moments(const Pint& p);

/// Exact Pearson correlation of two single pbits viewed as Bernoulli
/// variables over the channel space; both must share the pint's circuit.
double pbit_correlation(const Pint& a, unsigned bit_a, const Pint& b,
                        unsigned bit_b);

/// Quantum-measurement emulation: draw one value with the distribution's
/// probabilities (uniform channel choice).  Non-destructive.
std::uint64_t sample(const Pint& p, std::mt19937_64& rng);

/// Shannon entropy (bits) of the value distribution.  Cost: O(2^E · w) —
/// this one does enumerate channels; fine to E ≈ 20.
double entropy_bits(const Pint& p);

}  // namespace pbp
