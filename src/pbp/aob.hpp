// aob.hpp — Array-of-Bits (AoB) values: the dense representation of an
// E-way entangled superposed pbit (paper §1.1).
//
// An E-way AoB holds 2^E bits.  Bit position e is "entanglement channel" e:
// the value this pbit takes in the e-th jointly-possible world.  All Qat
// coprocessor operations act channel-wise on whole AoB vectors, which is what
// makes the model a bit-level SIMD machine rather than a quantum simulator.
//
// Storage is packed little-endian into 64-bit words (channel 0 is bit 0 of
// word 0).  All kernels are straight word loops so the compiler can vectorize
// them; for E = 16 (the hardware described in the paper) an AoB is 1024 words.
#pragma once

#include <cstdint>
#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace pbp {

/// Maximum entanglement ways the dense representation accepts.  2^30 bits is
/// 128 MiB — past the paper's stated "practical scaling limit" for AoB (§5);
/// higher entanglement belongs to the RE representation (re.hpp).
inline constexpr unsigned kMaxAobWays = 30;

/// Dense 2^E-bit entangled-superposition value.
class Aob {
 public:
  /// All-zero AoB with 2^ways channels.  Throws std::invalid_argument for
  /// ways > kMaxAobWays.
  explicit Aob(unsigned ways);

  /// The pbit constant 0 / 1 in every channel.
  static Aob zeros(unsigned ways);
  static Aob ones(unsigned ways);
  /// Fill from a channel predicate (mostly for tests).
  template <typename Fn>
  static Aob from_fn(unsigned ways, Fn&& fn) {
    Aob a(ways);
    for (std::size_t e = 0; e < a.bit_count(); ++e) a.set(e, fn(e));
    return a;
  }

  unsigned ways() const { return ways_; }
  /// Number of entanglement channels: 2^ways.
  std::size_t bit_count() const { return std::size_t{1} << ways_; }
  std::size_t word_count() const { return w_.size(); }

  /// Channel accessors.  `ch` is masked to the channel range, matching the
  /// hardware behaviour of indexing with a 16-bit register into a 2^16-bit
  /// vector (no out-of-range trap exists in Qat).
  bool get(std::size_t ch) const;
  void set(std::size_t ch, bool v);

  // --- Channel-wise logic (the Qat ALU data operations, Table 3). ---
  Aob& operator&=(const Aob& o);
  Aob& operator|=(const Aob& o);
  Aob& operator^=(const Aob& o);
  /// Pauli-X across every channel (Qat `not`).
  void invert();

  friend Aob operator&(Aob a, const Aob& b) { return a &= b; }
  friend Aob operator|(Aob a, const Aob& b) { return a |= b; }
  friend Aob operator^(Aob a, const Aob& b) { return a ^= b; }
  Aob operator~() const;

  /// Fredkin gate: exchange a and b in every channel where c holds a 1.
  static void cswap(Aob& a, Aob& b, const Aob& c);
  /// Unconditional exchange (Qat `swap`).
  static void swap_values(Aob& a, Aob& b) noexcept;

  // --- Measurement-family reductions (paper §2.7). ---
  /// Count of 1 channels (true POP, 0..2^E inclusive).
  std::size_t popcount() const;
  /// Qat `pop` extension: 1 channels strictly after `ch`.
  std::size_t popcount_after(std::size_t ch) const;
  /// Qat `next`: lowest channel > ch holding a 1, or nullopt if none.
  /// (The ISA maps nullopt to the value 0; that aliasing is the ISA's, not
  /// the data structure's.)
  std::optional<std::size_t> next_one(std::size_t ch) const;
  /// ANY / ALL reductions from the LCPC'20 PBP model.
  bool any() const;
  bool all() const;

  bool operator==(const Aob& o) const;

  std::span<const std::uint64_t> words() const { return w_; }
  std::span<std::uint64_t> words_mut() { return w_; }

  /// FNV-1a over the packed words; used by the RE chunk pool.
  std::uint64_t hash() const noexcept;

  /// "01101..." starting at channel 0; truncated with "..." past max_bits.
  std::string to_string(std::size_t max_bits = 64) const;

 private:
  std::size_t mask_channel(std::size_t ch) const { return ch & (bit_count() - 1); }
  void check_compatible(const Aob& o) const;

  unsigned ways_;
  std::vector<std::uint64_t> w_;
};

/// Raw-word kernels over a packed 2^ways-bit view (`w` points at
/// words_for(ways) little-endian 64-bit words).  These are the single source
/// of truth for the bit-level semantics: Aob's methods delegate here, and the
/// slab-backed dense register file (qat_backend.cpp) runs the same kernels on
/// its flat arena — so "reset == fresh-construct bit-identically" is not two
/// implementations agreeing, it is one implementation.
namespace bitview {

/// Storage words for 2^ways bits (at least one, for ways < 6).
std::size_t words_for(unsigned ways);

bool get(const std::uint64_t* w, unsigned ways, std::size_t ch);
void set(std::uint64_t* w, unsigned ways, std::size_t ch, bool v);
/// All-ones with the dead tail of word 0 masked off (ways < 6).
void fill_ones(std::uint64_t* w, std::size_t n, unsigned ways);
void invert(std::uint64_t* w, std::size_t n, unsigned ways);
std::size_t popcount(const std::uint64_t* w, std::size_t n);
std::size_t popcount_after(const std::uint64_t* w, std::size_t n,
                           unsigned ways, std::size_t ch);
std::optional<std::size_t> next_one(const std::uint64_t* w, std::size_t n,
                                    unsigned ways, std::size_t ch);
bool any(const std::uint64_t* w, std::size_t n);
bool all(const std::uint64_t* w, std::size_t n, unsigned ways);
std::uint64_t hash(const std::uint64_t* w, std::size_t n) noexcept;
std::string to_string(const std::uint64_t* w, unsigned ways,
                      std::size_t max_bits);

}  // namespace bitview

}  // namespace pbp
