// simd.hpp — portable vector-width dispatch for the dense Qat substrate.
//
// The dense datapath is word loops over packed 2^E-bit AoB vectors: the
// Table 3 bitwise kernels, the measurement reductions, and the fused SECDED
// verify–compute–encode sweeps of DenseQatBackend.  This header is the one
// seam those loops go through.  At startup the best instruction-set tier the
// CPU supports is selected (AVX-512 with VPOPCNTDQ, then AVX2, then plain
// scalar); the TANGLED_SIMD environment variable (scalar|avx2|avx512) forces
// a lower tier, and set_tier() gives tests the same control programmatically.
//
// Contract: every kernel is bit-identical across tiers.  The payload ops are
// pure bitwise/popcount arithmetic (lane order cannot matter), and the SECDED
// kernels compute the same canonical check byte the table-driven scalar
// codec produces — the AVX-512 path evaluates the eight GF(2) parity masks
// with VPOPCNTQ instead of eight table lookups, and on GFNI-capable CPUs
// with a single VGF2P8AFFINEQB bit-matrix product (see below), which is
// where the dense backend's speedup comes from.  tests/test_simd.cpp pins
// every kernel against the scalar reference at every supported tier and
// both avx512 SECDED variants.
//
// All kernels tolerate operand aliasing the same way the scalar loops do:
// each word's result depends only on that word's pre-update operand values
// (loads happen before stores within a vector block, and blocks are
// disjoint), so a == b, a == c, b == c and all-equal calls match the scalar
// semantics exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pbp::simd {

/// Dispatch tiers, ordered: a CPU that supports tier T supports every tier
/// below it (kAvx512 requires AVX512F/BW/VL + VPOPCNTDQ).
enum class Tier : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* tier_name(Tier t);
/// Parses "scalar" | "avx2" | "avx512"; throws std::invalid_argument.
Tier parse_tier(const std::string& s);

/// Best tier this CPU supports (CPUID probe, cached).
Tier best_supported();

/// The tier kernels currently dispatch to.  First call applies the
/// TANGLED_SIMD environment override (clamped to best_supported()).
Tier active();

/// Force a tier (tests, the check.sh simd lane).  Returns false — and leaves
/// the active tier unchanged — if the CPU does not support the request.
bool set_tier(Tier t);

// --- GFNI refinement of the AVX-512 tier ----------------------------------
//
// On CPUs with GFNI + AVX512VBMI (Ice Lake and later) the encode-bearing
// SECDED kernels compute the check byte with one VPERMB byte-transpose plus
// one VGF2P8AFFINEQB instead of nine VPOPCNTQ parity sweeps — the check map
// is GF(2)-linear, so it factors into per-byte 8x8 bit-matrix products.
// This is an internal refinement inside Tier::kAvx512: the tier enum, the
// TANGLED_SIMD override, and the bit-identical contract are unchanged.

/// CPU can run the GFNI SECDED variant (implies Tier::kAvx512 support).
bool gfni_supported();
/// Whether the avx512 tier currently uses the GFNI variant.
bool gfni_active();
/// Pin the refinement on or off (tests cover both variants this way).
/// Returns false — leaving the state unchanged — if `on` is unsupported.
bool set_gfni(bool on);

// --- Bitwise kernels over packed 64-bit word ranges -----------------------

void and_inplace(std::uint64_t* a, const std::uint64_t* b, std::size_t n);
void or_inplace(std::uint64_t* a, const std::uint64_t* b, std::size_t n);
void xor_inplace(std::uint64_t* a, const std::uint64_t* b, std::size_t n);
/// a[i] = b[i] OP c[i]
void and3(std::uint64_t* a, const std::uint64_t* b, const std::uint64_t* c,
          std::size_t n);
void or3(std::uint64_t* a, const std::uint64_t* b, const std::uint64_t* c,
         std::size_t n);
void xor3(std::uint64_t* a, const std::uint64_t* b, const std::uint64_t* c,
          std::size_t n);
/// Toffoli payload: a[i] ^= b[i] & c[i]
void ccnot(std::uint64_t* a, const std::uint64_t* b, const std::uint64_t* c,
           std::size_t n);
/// Fredkin payload via the XOR-mask trick: t = (a^b)&c; a ^= t; b ^= t.
void cswap(std::uint64_t* a, std::uint64_t* b, const std::uint64_t* c,
           std::size_t n);

// --- Measurement-family reductions ----------------------------------------

std::size_t popcount(const std::uint64_t* a, std::size_t n);
/// Index of the first word with any bit set, or n if none (any / next_one).
std::size_t first_nonzero(const std::uint64_t* a, std::size_t n);
/// True iff every word is all-ones (the ALL reduction; callers handle the
/// sub-word tail mask).
bool all_ones(const std::uint64_t* a, std::size_t n);

// --- Fused SECDED(72,64) kernels ------------------------------------------
//
// One sweep maintains payload and check sidecar together, exploiting the
// code's GF(2) linearity: encode(x ^ y) == encode(x) ^ encode(y) and
// encode(0) == 0 (see pbp/ecc.hpp).

/// checks[i] = canonical check byte of words[i].
void secded64_encode(const std::uint64_t* words, std::uint8_t* checks,
                     std::size_t n);
/// Probe up to 64 words: bit i of the result is set iff
/// encode(words[i]) != checks[i].  n must be <= 64.
std::uint64_t secded64_mismatch_mask(const std::uint64_t* words,
                                     const std::uint8_t* checks,
                                     std::size_t n);

/// cnot: wa ^= wb, ca ^= cb (linear derivation, no re-encode needed).
void cnot_ecc(std::uint64_t* wa, const std::uint64_t* wb, std::uint8_t* ca,
              const std::uint8_t* cb, std::size_t n);
/// ccnot: m = wb & wc; wa ^= m; ca ^= encode(m).
void ccnot_ecc(std::uint64_t* wa, const std::uint64_t* wb,
               const std::uint64_t* wc, std::uint8_t* ca, std::size_t n);
/// cswap: t = (wa^wb) & wc; wa ^= t; wb ^= t; encode(t) into both sidecars.
void cswap_ecc(std::uint64_t* wa, std::uint64_t* wb, const std::uint64_t* wc,
               std::uint8_t* ca, std::uint8_t* cb, std::size_t n);
/// and: wa = wb & wc; ca = encode(wa) (AND is not XOR-linear: re-encode).
void and3_ecc(std::uint64_t* wa, const std::uint64_t* wb,
              const std::uint64_t* wc, std::uint8_t* ca, std::size_t n);
void or3_ecc(std::uint64_t* wa, const std::uint64_t* wb,
             const std::uint64_t* wc, std::uint8_t* ca, std::size_t n);
/// xor: wa = wb ^ wc; ca = cb ^ cc (fully linear).
void xor3_ecc(std::uint64_t* wa, const std::uint64_t* wb,
              const std::uint64_t* wc, std::uint8_t* ca,
              const std::uint8_t* cb, const std::uint8_t* cc, std::size_t n);

}  // namespace pbp::simd
