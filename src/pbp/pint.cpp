#include "pbp/pint.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <stdexcept>

namespace pbp {

Pint::Pint(std::shared_ptr<Circuit> c, std::vector<Node> bits)
    : c_(std::move(c)), bits_(std::move(bits)) {
  if (!c_) throw std::invalid_argument("Pint: null circuit");
  if (bits_.empty()) throw std::invalid_argument("Pint: zero width");
}

Pint Pint::constant(std::shared_ptr<Circuit> c, unsigned width,
                    std::uint64_t value) {
  if (width == 0 || width > 64) throw std::invalid_argument("Pint: bad width");
  std::vector<Node> bits;
  bits.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    bits.push_back(((value >> i) & 1u) ? c->one() : c->zero());
  }
  return Pint(std::move(c), std::move(bits));
}

Pint Pint::hadamard(std::shared_ptr<Circuit> c, unsigned width,
                    std::uint32_t channel_mask) {
  if (static_cast<unsigned>(std::popcount(channel_mask)) != width) {
    throw std::invalid_argument(
        "Pint::hadamard: channel_mask popcount must equal width");
  }
  std::vector<Node> bits;
  bits.reserve(width);
  for (unsigned k = 0; k < 32; ++k) {
    if ((channel_mask >> k) & 1u) bits.push_back(c->had(k));
  }
  return Pint(std::move(c), std::move(bits));
}

std::shared_ptr<Circuit> Pint::same_circuit(const Pint& a, const Pint& b) {
  if (a.c_ != b.c_) {
    throw std::invalid_argument("Pint: operands from different circuits");
  }
  return a.c_;
}

void Pint::align(const Pint& a, const Pint& b, std::vector<Node>& xa,
                 std::vector<Node>& xb) {
  auto c = same_circuit(a, b);
  const unsigned w = std::max(a.width(), b.width());
  xa = a.bits_;
  xb = b.bits_;
  while (xa.size() < w) xa.push_back(c->zero());
  while (xb.size() < w) xb.push_back(c->zero());
}

namespace {

using Node = Circuit::Node;

/// One full-adder layer: returns sum bit, updates carry in place.
Node full_adder(Circuit& c, Node a, Node b, Node& carry) {
  const Node axb = c.g_xor(a, b);
  const Node sum = c.g_xor(axb, carry);
  // carry' = (a & b) | (carry & (a ^ b))
  carry = c.g_or(c.g_and(a, b), c.g_and(carry, axb));
  return sum;
}

std::vector<Node> ripple_add(Circuit& c, const std::vector<Node>& a,
                             const std::vector<Node>& b, bool keep_carry) {
  std::vector<Node> out;
  out.reserve(a.size() + 1);
  Node carry = c.zero();
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(full_adder(c, a[i], b[i], carry));
  }
  if (keep_carry) out.push_back(carry);
  return out;
}

}  // namespace

Pint Pint::add(const Pint& a, const Pint& b) {
  std::vector<Node> xa;
  std::vector<Node> xb;
  align(a, b, xa, xb);
  auto c = same_circuit(a, b);
  return Pint(c, ripple_add(*c, xa, xb, /*keep_carry=*/true));
}

Pint Pint::add_mod(const Pint& a, const Pint& b) {
  std::vector<Node> xa;
  std::vector<Node> xb;
  align(a, b, xa, xb);
  auto c = same_circuit(a, b);
  return Pint(c, ripple_add(*c, xa, xb, /*keep_carry=*/false));
}

Pint Pint::sub_mod(const Pint& a, const Pint& b) {
  std::vector<Node> xa;
  std::vector<Node> xb;
  align(a, b, xa, xb);
  auto c = same_circuit(a, b);
  // a - b = a + ~b + 1 (two's complement), carry-in forced to 1.
  std::vector<Node> out;
  out.reserve(xa.size());
  Node carry = c->one();
  for (std::size_t i = 0; i < xa.size(); ++i) {
    out.push_back(full_adder(*c, xa[i], c->g_not(xb[i]), carry));
  }
  return Pint(c, std::move(out));
}

Pint Pint::mul(const Pint& a, const Pint& b) {
  auto c = same_circuit(a, b);
  const unsigned wr = a.width() + b.width();
  // Shift-and-add: accumulate partial products (a AND b_j) << j.
  std::vector<Node> acc(wr, c->zero());
  for (unsigned j = 0; j < b.width(); ++j) {
    std::vector<Node> pp(wr, c->zero());
    for (unsigned i = 0; i < a.width(); ++i) {
      pp[i + j] = c->g_and(a.bits_[i], b.bits_[j]);
    }
    acc = ripple_add(*c, acc, pp, /*keep_carry=*/false);
  }
  return Pint(c, std::move(acc));
}

std::pair<Pint, Pint> Pint::divmod_const(const Pint& a,
                                         std::uint64_t divisor) {
  if (divisor == 0) throw std::invalid_argument("Pint: division by zero");
  auto c = a.c_;
  const unsigned dw = static_cast<unsigned>(std::bit_width(divisor));
  // Remainder register: one spare bit so (rem << 1) | a_i never overflows
  // before the compare-and-restore step.
  const unsigned rw = dw + 1;
  Pint rem = Pint::constant(c, rw, 0);
  const Pint d = Pint::constant(c, rw, divisor);
  std::vector<Node> quot(a.width());
  for (unsigned i = a.width(); i-- > 0;) {
    // rem = (rem << 1) | a_i, dropping the spare bit (always 0 here).
    std::vector<Node> shifted;
    shifted.reserve(rw);
    shifted.push_back(a.bits_[i]);
    for (unsigned j = 0; j + 1 < rw; ++j) shifted.push_back(rem.bits_[j]);
    rem = Pint(c, std::move(shifted));
    // ge = rem >= divisor; restore or keep.
    const Pint ge = Pint::le(d, rem);
    quot[i] = ge.bits_[0];
    rem = Pint::select(ge, Pint::sub_mod(rem, d), rem);
  }
  return {Pint(c, std::move(quot)), rem.resize(dw)};
}

Pint Pint::mod_const(const Pint& a, std::uint64_t m) {
  return divmod_const(a, m).second;
}

Pint Pint::modexp_const(std::uint64_t base, const Pint& a, std::uint64_t m) {
  if (m == 0) throw std::invalid_argument("Pint: modulus zero");
  auto c = a.c_;
  const unsigned w = static_cast<unsigned>(std::bit_width(m));
  Pint acc = Pint::constant(c, w, 1 % m);
  std::uint64_t factor = base % m;
  for (unsigned i = 0; i < a.width(); ++i) {
    // Where bit i of the exponent is 1, multiply by base^(2^i) mod m.
    const Pint scaled =
        mod_const(mul(acc, Pint::constant(c, w, factor)), m);
    const Pint bit(c, {a.bits_[i]});
    acc = Pint::select(bit, scaled, acc);
    factor = (factor * factor) % m;  // classical square of the constant
  }
  return acc;
}

Pint Pint::eq(const Pint& a, const Pint& b) {
  std::vector<Node> xa;
  std::vector<Node> xb;
  align(a, b, xa, xb);
  auto c = same_circuit(a, b);
  // AND-reduce per-bit XNORs.
  Node r = c->g_not(c->g_xor(xa[0], xb[0]));
  for (std::size_t i = 1; i < xa.size(); ++i) {
    r = c->g_and(r, c->g_not(c->g_xor(xa[i], xb[i])));
  }
  return Pint(c, {r});
}

Pint Pint::ne(const Pint& a, const Pint& b) {
  const Pint e = eq(a, b);
  return Pint(e.c_, {e.c_->g_not(e.bits_[0])});
}

Pint Pint::lt(const Pint& a, const Pint& b) {
  std::vector<Node> xa;
  std::vector<Node> xb;
  align(a, b, xa, xb);
  auto c = same_circuit(a, b);
  // LSB-to-MSB ripple: after bit i, lt = (~a_i & b_i) | (a_i == b_i & lt-so-far),
  // so the final accumulator compares the full words with MSB priority.
  Node lt2 = c->zero();
  for (std::size_t i = 0; i < xa.size(); ++i) {
    const Node ai = xa[i];
    const Node bi = xb[i];
    const Node this_lt = c->g_and(c->g_not(ai), bi);
    const Node eq_i = c->g_not(c->g_xor(ai, bi));
    lt2 = c->g_or(this_lt, c->g_and(eq_i, lt2));
  }
  return Pint(c, {lt2});
}

Pint Pint::le(const Pint& a, const Pint& b) {
  const Pint g = lt(b, a);
  return Pint(g.c_, {g.c_->g_not(g.bits_[0])});
}

Pint operator&(const Pint& a, const Pint& b) {
  std::vector<Pint::Node> xa;
  std::vector<Pint::Node> xb;
  Pint::align(a, b, xa, xb);
  auto c = Pint::same_circuit(a, b);
  std::vector<Pint::Node> out;
  out.reserve(xa.size());
  for (std::size_t i = 0; i < xa.size(); ++i) out.push_back(c->g_and(xa[i], xb[i]));
  return Pint(c, std::move(out));
}

Pint operator|(const Pint& a, const Pint& b) {
  std::vector<Pint::Node> xa;
  std::vector<Pint::Node> xb;
  Pint::align(a, b, xa, xb);
  auto c = Pint::same_circuit(a, b);
  std::vector<Pint::Node> out;
  out.reserve(xa.size());
  for (std::size_t i = 0; i < xa.size(); ++i) out.push_back(c->g_or(xa[i], xb[i]));
  return Pint(c, std::move(out));
}

Pint operator^(const Pint& a, const Pint& b) {
  std::vector<Pint::Node> xa;
  std::vector<Pint::Node> xb;
  Pint::align(a, b, xa, xb);
  auto c = Pint::same_circuit(a, b);
  std::vector<Pint::Node> out;
  out.reserve(xa.size());
  for (std::size_t i = 0; i < xa.size(); ++i) out.push_back(c->g_xor(xa[i], xb[i]));
  return Pint(c, std::move(out));
}

Pint Pint::operator~() const {
  std::vector<Node> out;
  out.reserve(bits_.size());
  for (const Node b : bits_) out.push_back(c_->g_not(b));
  return Pint(c_, std::move(out));
}

Pint Pint::shl(unsigned k) const {
  std::vector<Node> out;
  out.reserve(bits_.size() + k);
  for (unsigned i = 0; i < k; ++i) out.push_back(c_->zero());
  out.insert(out.end(), bits_.begin(), bits_.end());
  return Pint(c_, std::move(out));
}

Pint Pint::shl_var(const Pint& a, const Pint& amount) {
  auto c = same_circuit(a, amount);
  if (amount.width() > 6) {
    throw std::invalid_argument("Pint::shl_var: amount wider than 6 bits");
  }
  const unsigned max_shift = (1u << amount.width()) - 1;
  Pint cur = a.resize(a.width() + max_shift);
  // One conditional-shift layer per amount bit, exactly a barrel shifter:
  // layer k selects between cur and cur << 2^k under amount's bit k.
  for (unsigned k = 0; k < amount.width(); ++k) {
    const Pint bit(c, {amount.bits_[k]});
    const Pint shifted = cur.shl(1u << k).resize(cur.width());
    cur = Pint::select(bit, shifted, cur);
  }
  return cur;
}

Pint Pint::resize(unsigned w) const {
  if (w == 0) throw std::invalid_argument("Pint::resize: zero width");
  std::vector<Node> out(bits_.begin(),
                        bits_.begin() + std::min<std::size_t>(w, bits_.size()));
  while (out.size() < w) out.push_back(c_->zero());
  return Pint(c_, std::move(out));
}

Pint Pint::select(const Pint& cond, const Pint& then_v, const Pint& else_v) {
  if (cond.width() != 1) {
    throw std::invalid_argument("Pint::select: cond must be 1 pbit");
  }
  std::vector<Node> xt;
  std::vector<Node> xf;
  align(then_v, else_v, xt, xf);
  auto c = same_circuit(then_v, else_v);
  same_circuit(cond, then_v);
  std::vector<Node> out;
  out.reserve(xt.size());
  for (std::size_t i = 0; i < xt.size(); ++i) {
    out.push_back(c->g_mux(cond.bits_[0], xt[i], xf[i]));
  }
  return Pint(c, std::move(out));
}

Pint Pint::gate_by(const Pint& a, const Pint& enable) {
  if (enable.width() != 1) {
    throw std::invalid_argument("Pint::gate_by: enable must be 1 pbit");
  }
  auto c = same_circuit(a, enable);
  std::vector<Node> out;
  out.reserve(a.bits_.size());
  for (const Node b : a.bits_) out.push_back(c->g_and(b, enable.bits_[0]));
  return Pint(c, std::move(out));
}

std::uint64_t Pint::value_at_channel(std::size_t ch) const {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < width(); ++i) {
    if (c_->meas(bits_[i], ch)) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::vector<std::pair<std::uint64_t, std::size_t>> Pint::measure_distribution()
    const {
  // Force evaluation of every pbit once, then sweep channels.
  std::vector<const Pbit*> vals;
  vals.reserve(width());
  for (const Node b : bits_) vals.push_back(&c_->eval(b));
  const std::size_t channels = std::size_t{1} << c_->ways();
  std::map<std::uint64_t, std::size_t> hist;
  for (std::size_t e = 0; e < channels; ++e) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < width(); ++i) {
      if (vals[i]->meas(e)) v |= std::uint64_t{1} << i;
    }
    ++hist[v];
  }
  return {hist.begin(), hist.end()};
}

std::vector<std::uint64_t> Pint::measure_values() const {
  std::vector<std::uint64_t> out;
  for (const auto& entry : measure_distribution()) out.push_back(entry.first);
  return out;
}

std::size_t Pint::channels_equal_to(std::uint64_t value) const {
  // POP of the equality pbit: probability of `value` in parts per 2^E.
  const Pint v = Pint::constant(c_, width(), value);
  return c_->popcount(eq(*this, v).bits_[0]);
}

}  // namespace pbp
