// serialize.hpp — minimal byte-stream (de)serialization shared by the
// checkpoint/restore machinery (arch/checkpoint.hpp) and the Qat backend
// snapshot format (qat_backend.hpp).
//
// Little-endian, fixed-width fields, no alignment: the same bytes restore on
// any host this repo builds for.  The reader throws std::runtime_error on a
// short or malformed stream rather than reading past the end — a corrupt
// checkpoint must fail loudly, never restore garbage state.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pbp {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() {
    if (pos_ >= size_) {
      throw std::runtime_error("ByteReader: truncated stream");
    }
    return data_[pos_++];
  }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
/// Used by the checkpoint file framing to reject bit-flipped or truncated
/// images before any field is deserialized.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                           std::uint32_t seed = 0) {
  static const auto table = [] {
    std::vector<std::uint32_t> t(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(const std::vector<std::uint8_t>& bytes,
                           std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace pbp
