// serialize.hpp — minimal byte-stream (de)serialization shared by the
// checkpoint/restore machinery (arch/checkpoint.hpp) and the Qat backend
// snapshot format (qat_backend.hpp).
//
// Little-endian, fixed-width fields, no alignment: the same bytes restore on
// any host this repo builds for.  The reader throws std::runtime_error on a
// short or malformed stream rather than reading past the end — a corrupt
// checkpoint must fail loudly, never restore garbage state.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace pbp {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  /// Append `n` little-endian u64s in one call: the bulk path for
  /// slab-backed register files, one memcpy on little-endian hosts instead
  /// of 8 push_backs per word.  Byte-identical to calling u64 in a loop.
  void u64_array(const std::uint64_t* v, std::size_t n) {
    if constexpr (std::endian::native == std::endian::little) {
      const std::size_t at = bytes_.size();
      bytes_.resize(at + n * 8);
      std::memcpy(bytes_.data() + at, v, n * 8);
    } else {
      for (std::size_t i = 0; i < n; ++i) u64(v[i]);
    }
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() {
    if (pos_ >= size_) {
      throw std::runtime_error("ByteReader: truncated stream");
    }
    return data_[pos_++];
  }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  /// Bulk little-endian u64 read mirroring ByteWriter::u64_array.
  void u64_array(std::uint64_t* out, std::size_t n) {
    if (n > remaining() / 8) {
      throw std::runtime_error("ByteReader: truncated stream");
    }
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out, data_ + pos_, n * 8);
      pos_ += n * 8;
    } else {
      for (std::size_t i = 0; i < n; ++i) out[i] = u64();
    }
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
/// Used by the checkpoint file framing to reject bit-flipped or truncated
/// images before any field is deserialized.  Slicing-by-8: eight table
/// lookups fold eight input bytes per step, ~6x the classic byte-at-a-time
/// loop on checkpoint-sized payloads; identical output for every input.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                           std::uint32_t seed = 0) {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int j = 1; j < 8; ++j) {
        t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFFu];
      }
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const std::uint32_t lo =
        c ^ (static_cast<std::uint32_t>(data[i]) |
             static_cast<std::uint32_t>(data[i + 1]) << 8 |
             static_cast<std::uint32_t>(data[i + 2]) << 16 |
             static_cast<std::uint32_t>(data[i + 3]) << 24);
    const std::uint32_t hi =
        static_cast<std::uint32_t>(data[i + 4]) |
        static_cast<std::uint32_t>(data[i + 5]) << 8 |
        static_cast<std::uint32_t>(data[i + 6]) << 16 |
        static_cast<std::uint32_t>(data[i + 7]) << 24;
    c = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
        tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
        tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
        tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
  }
  for (; i < size; ++i) {
    c = tables[0][(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(const std::vector<std::uint8_t>& bytes,
                           std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace pbp
