#include "pbp/hadamard.hpp"

namespace pbp {
namespace {

constexpr unsigned kWordBits = 64;

// The 64-bit word whose bit b equals hadamard_bit(k, b), for k < 6.
std::uint64_t word_pattern(unsigned k) {
  // Standard "magic" alternating masks: k=0 -> 0xAAAA..., k=1 -> 0xCCCC..., etc.
  std::uint64_t w = 0;
  for (unsigned b = 0; b < kWordBits; ++b) {
    if ((b >> k) & 1u) w |= std::uint64_t{1} << b;
  }
  return w;
}

}  // namespace

Aob hadamard_generate(unsigned ways, unsigned k) {
  Aob a(ways);
  // Figure 7's Verilog takes the low bit of (i >> h): for k >= ways every
  // channel index has bit k clear, so the result is all zeros.
  if (k >= ways) return a;
  auto words = a.words_mut();
  if (a.bit_count() < kWordBits) {
    // Sub-word AoB (ways < 6): mask the repeating pattern to the live bits.
    words[0] = word_pattern(k) & ((std::uint64_t{1} << a.bit_count()) - 1);
    return a;
  }
  if (k < 6) {
    const std::uint64_t pat = word_pattern(k);
    for (auto& w : words) w = pat;
    return a;
  }
  // Blocks of 2^(k-6) words of all-zero alternating with all-one.
  const std::size_t block = std::size_t{1} << (k - 6);
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = ((i / block) & 1u) ? ~std::uint64_t{0} : 0;
  }
  return a;
}

HadamardLut::HadamardLut(unsigned ways) : ways_(ways), zero_(Aob::zeros(ways)) {
  table_.reserve(ways);
  for (unsigned k = 0; k < ways; ++k) table_.push_back(hadamard_generate(ways, k));
}

HadamardRegisterFile::HadamardRegisterFile(unsigned ways) : ways_(ways) {
  regs_.reserve(2 + ways);
  regs_.push_back(Aob::zeros(ways));
  regs_.push_back(Aob::ones(ways));
  for (unsigned k = 0; k < ways; ++k) regs_.push_back(hadamard_generate(ways, k));
}

}  // namespace pbp
