// re.hpp — the regular-expression (RE) compressed pbit representation
// (paper §1.2; LCPC'20 PBP software prototype).
//
// An AoB for high entanglement is huge (2^E bits) but typically has very low
// entropy: it is built from Hadamard patterns and channel-wise logic, so long
// stretches repeat.  The PBP model therefore chops the AoB into fixed-size
// chunks (the prototype used 4096-bit chunks; the paper's hardware makes
// 65,536-bit chunks natural) and stores a run-length-encoded sequence of
// chunk *symbols*.  Operating directly on the compressed form gives "as much
// as an exponential factor" savings in both storage and work (§1.2).
//
// Two pieces:
//  * ChunkPool — hash-consed chunk storage shared by many Re values, with
//    memoized chunk-level logic ops and cached popcounts.  Interning means a
//    chunk bit-pattern is stored once no matter how many runs reference it.
//  * Re — one 2^E-bit value as a vector of (symbol, repeat-count) runs.
//
// Every Re operation has an AoB counterpart with identical semantics;
// tests/test_re.cpp checks them against each other exhaustively at small E.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pbp/aob.hpp"
#include "pbp/ecc.hpp"

namespace pbp {

/// Channel-wise binary logic ops shared by the AoB and RE layers.
enum class BitOp : std::uint8_t { And, Or, Xor, AndNot };

/// Hash-consed pool of 2^chunk_ways-bit chunks with memoized chunk ops.
class ChunkPool {
 public:
  using SymbolId = std::uint32_t;

  /// Hard ceiling on distinct symbols: the memo table packs (op, a, b) as
  /// 4 + 28 + 28 bits into one 64-bit key (re.cpp pack_memo_key), so a
  /// SymbolId must fit in 28 bits or keys alias and apply() returns chunks
  /// for the *wrong* operands.  intern() throws std::length_error rather
  /// than ever crossing this line.
  static constexpr std::size_t kMaxSymbols = std::size_t{1} << 28;

  /// `max_symbols` lowers the guard threshold (tests exercise the guard
  /// path with a tiny pool); it is clamped to kMaxSymbols and must leave
  /// room for the built-in zero and one symbols.
  explicit ChunkPool(unsigned chunk_ways,
                     std::size_t max_symbols = kMaxSymbols);

  unsigned chunk_ways() const { return chunk_ways_; }
  std::size_t chunk_bits() const { return std::size_t{1} << chunk_ways_; }

  /// Opt into internal locking so the pool can be shared by concurrent
  /// jobs (the serve layer's ShardedChunkPool stripes).  Must be called
  /// before the pool is visible to a second thread.  Chunk *contents* stay
  /// safe to read without the lock either way: chunks_ is a deque (stable
  /// references under intern) and interned chunks are immutable — which is
  /// why shared pools are reserved for ECC-off, fault-free jobs (repair
  /// and upset are the only chunk mutators).
  void enable_concurrent_use() { shared_ = true; }
  bool concurrent() const { return shared_; }

  /// Intern a chunk (must be chunk_ways-way); returns its canonical symbol.
  SymbolId intern(const Aob& chunk);
  const Aob& chunk(SymbolId id) const;

  SymbolId zero_symbol() const { return zero_; }
  SymbolId one_symbol() const { return one_; }
  /// Hadamard pattern H(k) restricted to one chunk (k < chunk_ways).
  SymbolId hadamard_symbol(unsigned k);

  /// Memoized symbolic ops: work is done once per distinct operand pair.
  SymbolId apply(BitOp op, SymbolId a, SymbolId b);
  SymbolId apply_not(SymbolId a);

  /// Cached popcount of a symbol's chunk.
  std::size_t popcount(SymbolId id);

  /// Distinct symbols interned so far (a compression metric).
  std::size_t size() const;
  /// Memo-table hits (a symbolic-execution effectiveness metric).
  std::uint64_t memo_hits() const;
  std::uint64_t memo_misses() const;

  /// The active symbol-space ceiling (kMaxSymbols unless lowered).
  std::size_t max_symbols() const { return max_symbols_; }
  /// Lower (or raise, up to kMaxSymbols) the symbol ceiling mid-flight.
  /// Symbols already interned stay valid; only *new* interns are refused
  /// once the pool is at the cap.  The fault-injection harness uses this to
  /// force exhaustion without rebuilding the register file.
  void set_max_symbols(std::size_t n);

  // --- Integrity layer -----------------------------------------------
  // One (72,64) SECDED byte per stored 64-bit chunk word.  The pool is
  // the RE backend's only payload store, so protecting it protects every
  // register that references a symbol — shared corruption included.

  /// Select the protection policy; (re)encodes the whole sidecar.
  void set_ecc_mode(EccMode m);
  EccMode ecc_mode() const { return ecc_; }

  /// Verify one symbol's chunk on the access path.  Under kCorrect a
  /// single-bit upset is repaired in place (and the symbol's cached
  /// popcount invalidated); an uncorrectable upset — under kDetect, any
  /// mismatch — throws CorruptionError.  Tallies accumulate until
  /// take_ecc_counts() drains them.
  void verify_symbol(SymbolId id);

  /// Sweep every stored chunk; never throws (the caller traps on
  /// sweep.uncorrectable != 0).
  EccSweep scrub_ecc();

  /// Storage-upset model: flip a raw payload bit of a stored chunk
  /// without touching its check byte or cached popcount validity.
  void upset(SymbolId id, std::size_t bit);

  /// Drain the pending access-path tallies accumulated by verify_symbol.
  EccSweep take_ecc_counts();

  /// Sidecar footprint in bytes (0 when protection is off).
  std::size_t ecc_bytes() const;

  // --- Verification scheduling (see QatBackend) -----------------------
  // Per-symbol verified_at stamps on the retired-instruction clock;
  // verify_symbol elides re-verification of symbols verified within the
  // current epoch.  Epoch 1 (default) elides nothing; scrubs ignore the
  // stamps and re-stamp what they sweep; stamps are never serialized.
  void set_ecc_epoch(std::uint64_t n) { ecc_epoch_ = clamp_ecc_epoch(n); }
  std::uint64_t ecc_epoch() const { return ecc_epoch_; }
  void ecc_tick(std::uint64_t now) { ecc_now_ = now; }

 private:
  /// Locked when (and only when) concurrent use was enabled — private
  /// single-job pools keep their zero-overhead fast path.  All public
  /// mutators take this once and call the unlocked _impl bodies; the impls
  /// call each other (apply -> intern) without re-locking, which a plain
  /// std::mutex would deadlock on.
  std::unique_lock<std::mutex> maybe_lock() const {
    return shared_ ? std::unique_lock<std::mutex>(mu_)
                   : std::unique_lock<std::mutex>();
  }
  SymbolId intern_impl(const Aob& chunk);
  SymbolId apply_impl(BitOp op, SymbolId a, SymbolId b);
  SymbolId apply_not_impl(SymbolId a);
  std::size_t popcount_impl(SymbolId id);
  void encode_symbol(SymbolId id);

  unsigned chunk_ways_;
  std::size_t max_symbols_;
  bool shared_ = false;
  mutable std::mutex mu_;
  // Deque, not vector: intern() must never relocate stored chunks, because
  // chunk() hands out references that concurrent readers (Re::apply run
  // walks on other threads) hold across further interns.
  std::deque<Aob> chunks_;
  std::vector<std::size_t> pops_;  // SIZE_MAX = not yet computed
  std::unordered_multimap<std::uint64_t, SymbolId> by_hash_;
  std::unordered_map<std::uint64_t, SymbolId> memo_;      // packed (op,a,b)
  std::unordered_map<SymbolId, SymbolId> not_memo_;
  SymbolId zero_ = 0;
  SymbolId one_ = 0;
  std::uint64_t memo_hits_ = 0;
  std::uint64_t memo_misses_ = 0;
  // Atomics: the ECC policy knobs are read on every op (guard()) and
  // advanced every retired instruction (ecc_tick) even when jobs share a
  // stripe; plain fields would race under TSAN despite never changing
  // value on the shared (ECC-off) path.
  std::atomic<EccMode> ecc_ = EccMode::kOff;
  std::vector<std::uint8_t> check_;  // words_per_chunk_ bytes per symbol
  std::size_t words_per_chunk_ = 0;
  EccSweep pending_;  // access-path tallies awaiting take_ecc_counts()
  std::atomic<std::uint64_t> ecc_epoch_ = 1;
  std::atomic<std::uint64_t> ecc_now_ = 0;
  std::vector<std::uint64_t> verified_at_;  // per-symbol stamps; 0 = never
};

/// N independent lock-striped chunk pools for concurrent RE jobs.  Each
/// stripe is a ChunkPool with internal locking enabled; a job is pinned to
/// one stripe (selected by a hash of its id) for its whole life, so two
/// concurrent RE jobs usually intern into different pools instead of
/// serializing on one mutex — and jobs landing on the same stripe still
/// share its hash-consed chunks (the first step toward cross-job
/// memoization).  Stripes are ECC-off and stay that way: shared chunks must
/// be immutable after intern.
class ShardedChunkPool {
 public:
  ShardedChunkPool(unsigned stripes, unsigned chunk_ways);

  unsigned stripes() const { return static_cast<unsigned>(pools_.size()); }
  unsigned chunk_ways() const { return chunk_ways_; }

  /// The stripe a job with this key is pinned to (splitmix64 of the key).
  const std::shared_ptr<ChunkPool>& stripe(std::uint64_t key) const;

 private:
  unsigned chunk_ways_;
  std::vector<std::shared_ptr<ChunkPool>> pools_;
};

/// One 2^E-bit entangled-superposition value in compressed RE form.
class Re {
 public:
  /// All-zero value; requires ways >= pool->chunk_ways().
  Re(std::shared_ptr<ChunkPool> pool, unsigned ways);

  static Re zeros(std::shared_ptr<ChunkPool> pool, unsigned ways);
  static Re ones(std::shared_ptr<ChunkPool> pool, unsigned ways);
  static Re hadamard(std::shared_ptr<ChunkPool> pool, unsigned ways, unsigned k);
  static Re from_aob(std::shared_ptr<ChunkPool> pool, const Aob& a);
  /// Rebuild from a serialized run list (checkpoint restore).  The symbols
  /// must already be interned in `pool` and the counts must cover exactly
  /// 2^(ways - chunk_ways) chunks; throws std::invalid_argument otherwise.
  static Re from_runs(
      std::shared_ptr<ChunkPool> pool, unsigned ways,
      const std::vector<std::pair<ChunkPool::SymbolId, std::uint64_t>>& runs);

  /// Decompress (only valid for ways small enough for a dense Aob).
  Aob to_aob() const;

  unsigned ways() const { return ways_; }
  std::size_t bit_count() const { return std::size_t{1} << ways_; }
  const std::shared_ptr<ChunkPool>& pool() const { return pool_; }

  bool get(std::size_t ch) const;
  void set(std::size_t ch, bool v);

  /// Channel-wise logic, computed run-lockstep on the compressed form.
  void apply(BitOp op, const Re& o);
  void invert();
  static void cswap(Re& a, Re& b, const Re& c);
  static void swap_values(Re& a, Re& b) noexcept;

  std::size_t popcount() const;
  std::size_t popcount_after(std::size_t ch) const;
  std::optional<std::size_t> next_one(std::size_t ch) const;
  bool any() const;
  bool all() const;

  bool operator==(const Re& o) const;

  /// "01101..." starting at channel 0, truncated with "..." past max_bits —
  /// same format as Aob::to_string, but computed without decompressing.
  std::string to_string(std::size_t max_bits = 64) const;

  // --- Compression metrics (bench_re_compression) ---
  /// Number of RLE runs in this value.
  std::size_t run_count() const { return runs_.size(); }
  /// The (symbol, repeat-count) run list — the value's checkpoint form.
  std::vector<std::pair<ChunkPool::SymbolId, std::uint64_t>> runs() const;
  /// Bytes to store this value in compressed form (runs only; pool amortized).
  std::size_t compressed_bytes() const;
  /// Bytes a dense AoB of the same ways would need.
  std::size_t dense_bytes() const { return bit_count() / 8; }

 private:
  struct Run {
    ChunkPool::SymbolId sym;
    std::uint64_t count;  // repeats, >= 1
  };

  void push_run(std::vector<Run>& out, ChunkPool::SymbolId sym,
                std::uint64_t count) const;
  void check_compatible(const Re& o) const;
  std::size_t chunks_total() const {
    return std::size_t{1} << (ways_ - pool_->chunk_ways());
  }

  std::shared_ptr<ChunkPool> pool_;
  unsigned ways_;
  std::vector<Run> runs_;
};

}  // namespace pbp
