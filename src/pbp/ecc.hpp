#pragma once
// SECDED (single-error-correct, double-error-detect) codecs for the
// integrity layer.
//
// Two extended-Hamming codecs protect the machine's payload state:
//
//   secded64_*  (72,64)  — one check byte per 64-bit AoB chunk word
//                          (dense register files and the shared RE pool)
//   secded16_*  (22,16)  — one check byte per 16-bit Tangled memory word
//                          (6 of the 8 sidecar bits used)
//
// Layout: the classical Hamming construction over codeword positions
// 1..N with parity bits at the power-of-two positions, plus an overall
// parity bit for the SECDED extension.  The check byte stores the m
// Hamming parity bits in bits [0, m) and the overall parity in bit m;
// the payload word itself is stored unmodified (systematic code), so
// ecc=off costs nothing and turning protection on never changes the
// stored payload representation.
//
// Decode decision table (S = Hamming syndrome, O = overall parity over
// payload + stored check bits):
//   S == 0, O == 0   clean
//   S != 0, O == 1   single-bit flip: data bit (S = its codeword
//                    position), or a check bit (S a power of two) —
//                    corrected in place
//   S == 0, O == 1   the overall parity bit itself flipped — corrected
//   S != 0, O == 0   double-bit upset — uncorrectable by construction
//   S an invalid position — multi-bit upset, uncorrectable
#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pbp {

/// Per-run integrity policy for a protected store.
///  kOff      no checking (and no storage/time overhead on access paths)
///  kDetect   parity-check-only hardware model: any mismatch is an
///            uncorrectable corruption (trap), nothing is repaired
///  kCorrect  full SECDED: single-bit upsets repaired and counted,
///            double-bit upsets trap
enum class EccMode : std::uint8_t { kOff = 0, kDetect = 1, kCorrect = 2 };

const char* ecc_mode_name(EccMode m);

/// Parses "off" | "detect" | "correct"; throws std::invalid_argument.
EccMode parse_ecc_mode(const std::string& s);

/// Uncorrectable corruption in a protected store.  Derives from
/// std::runtime_error; catch sites that classify Qat failures must order
/// this BEFORE their broader catch clauses.
class CorruptionError : public std::runtime_error {
 public:
  explicit CorruptionError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Result tallies for a scrub pass (or the pending-counter drain of an
/// access-path verifier).
struct EccSweep {
  std::uint64_t words = 0;          ///< payload words examined
  std::uint64_t corrected = 0;      ///< single-bit upsets repaired
  std::uint64_t uncorrectable = 0;  ///< mismatches that could not be fixed
  std::uint64_t elided = 0;         ///< verifications skipped by epoch policy
  EccSweep& operator+=(const EccSweep& o) {
    words += o.words;
    corrected += o.corrected;
    uncorrectable += o.uncorrectable;
    elided += o.elided;
    return *this;
  }
};

enum class EccCheck : std::uint8_t { kClean, kCorrected, kUncorrectable };

/// Canonical check byte for a payload word.
std::uint8_t secded64_encode(std::uint64_t payload);
std::uint8_t secded16_encode(std::uint16_t payload);

/// Full SECDED decode: repairs a single-bit upset in place (payload or
/// check byte) and re-encodes the check byte canonically.
EccCheck secded64_check(std::uint64_t& payload, std::uint8_t& check);
EccCheck secded16_check(std::uint16_t& payload, std::uint8_t& check);

/// Detect-only probe: true iff the stored check byte matches the payload
/// exactly (no repair attempted).
bool secded64_clean(std::uint64_t payload, std::uint8_t check);
bool secded16_clean(std::uint16_t payload, std::uint8_t check);

// --- Table-driven fast kernels -------------------------------------------
//
// The scalar codecs above walk the codeword bit by bit; that is the
// exhaustively tested reference, kept as the slow path.  The hot paths use
// precomputed per-byte parity-contribution tables: the check byte is linear
// over XOR (each data bit contributes its codeword position to the Hamming
// syndrome and one overall-parity bit), so the canonical check byte of a
// word is the XOR of one table entry per payload byte.  The tables are
// built at compile time from the same position arithmetic the scalar codec
// uses, and the differential tests in tests/test_ecc.cpp pin the two
// implementations against each other bit for bit.

namespace detail {

/// Codeword position (1-based, classical Hamming numbering) of data bit d:
/// the d-th position that is not a power of two, counting from 3.
constexpr unsigned secded_data_pos(unsigned d) {
  unsigned pos = 3;
  unsigned remaining = d;
  while (true) {
    if ((pos & (pos - 1)) != 0) {
      if (remaining == 0) return pos;
      --remaining;
    }
    ++pos;
  }
}

/// One 256-entry table per payload byte.  Entry [b][v]: XOR-contribution of
/// payload byte b holding value v — Hamming bits in [0, M), overall parity
/// (data parity XOR Hamming-bit parity, so the full codeword has even
/// parity) in bit M.
template <int Bytes, int M>
struct SecdedTables {
  std::uint8_t t[Bytes][256];
};

template <int Bytes, int M>
constexpr SecdedTables<Bytes, M> make_secded_tables() {
  SecdedTables<Bytes, M> out{};
  for (int b = 0; b < Bytes; ++b) {
    for (unsigned v = 0; v < 256; ++v) {
      unsigned h = 0;
      unsigned ones = 0;
      for (unsigned i = 0; i < 8; ++i) {
        if ((v >> i) & 1u) {
          h ^= secded_data_pos(static_cast<unsigned>(b) * 8 + i) &
               ((1u << M) - 1);
          ++ones;
        }
      }
      const unsigned overall =
          (ones + static_cast<unsigned>(std::popcount(h))) & 1u;
      out.t[b][v] = static_cast<std::uint8_t>(h | (overall << M));
    }
  }
  return out;
}

inline constexpr SecdedTables<8, 7> kSecded64Tab = make_secded_tables<8, 7>();
inline constexpr SecdedTables<2, 5> kSecded16Tab = make_secded_tables<2, 5>();

/// The seven GF(2) parity masks of the (72,64) code: Hamming check bit i of
/// a payload word is parity(word & kSecded64Masks[i]).  This is the same
/// construction the per-byte tables above collapse, exposed for the SIMD
/// codec (pbp/simd.cpp), which evaluates the masks with vector popcounts
/// instead of table lookups — bit-identical by construction, pinned by
/// tests/test_simd.cpp.
struct Secded64Masks {
  std::uint64_t m[7];
};

constexpr Secded64Masks make_secded64_masks() {
  Secded64Masks out{};
  for (unsigned d = 0; d < 64; ++d) {
    const unsigned pos = secded_data_pos(d);
    for (unsigned i = 0; i < 7; ++i) {
      if ((pos >> i) & 1u) out.m[i] |= std::uint64_t{1} << d;
    }
  }
  return out;
}

inline constexpr Secded64Masks kSecded64Masks = make_secded64_masks();

}  // namespace detail

/// Canonical check byte via table lookups — bit-identical to
/// secded64_encode / secded16_encode (pinned by tests).
inline std::uint8_t secded64_encode_fast(std::uint64_t p) {
  const auto& t = detail::kSecded64Tab.t;
  return static_cast<std::uint8_t>(
      t[0][p & 0xff] ^ t[1][(p >> 8) & 0xff] ^ t[2][(p >> 16) & 0xff] ^
      t[3][(p >> 24) & 0xff] ^ t[4][(p >> 32) & 0xff] ^
      t[5][(p >> 40) & 0xff] ^ t[6][(p >> 48) & 0xff] ^ t[7][p >> 56]);
}

inline std::uint8_t secded16_encode_fast(std::uint16_t p) {
  const auto& t = detail::kSecded16Tab.t;
  return static_cast<std::uint8_t>(t[0][p & 0xff] ^ t[1][p >> 8]);
}

/// Batched canonical encode: checks[i] = encode(words[i]) for i in [0, n).
void secded64_encode_block(const std::uint64_t* words, std::uint8_t* checks,
                           std::size_t n);
void secded16_encode_block(const std::uint16_t* words, std::uint8_t* checks,
                           std::size_t n);

/// Batched verify for one fused sweep over n words.  Clean words cost one
/// table-driven probe each; a mismatch falls back to the scalar reference
/// codec (repairing in place under kCorrect, counting an uncorrectable
/// under kDetect — detect-mode hardware has no corrector).  The whole block
/// is always swept (no early-out), tallies accumulate into `sweep`, and
/// the worst classification seen is returned; callers decide whether
/// kUncorrectable traps.  kOff returns kClean without touching anything.
EccCheck secded64_check_block(EccMode mode, std::uint64_t* words,
                              std::uint8_t* checks, std::size_t n,
                              EccSweep& sweep);
EccCheck secded16_check_block(EccMode mode, std::uint16_t* words,
                              std::uint8_t* checks, std::size_t n,
                              EccSweep& sweep);

// --- Verification-epoch policy helpers ------------------------------------
//
// Every protected store (DenseQatBackend sidecars, the RE ChunkPool, the
// Tangled data memory) schedules re-verification on the simulators' monotone
// retired-instruction clock: state verified within the last `epoch` ticks
// carries a fresh stamp and is not re-checked on access.  A stamp is the
// clock value at verification time plus one, so 0 means "never verified".
// These helpers are the single shared definition of that predicate — the
// historical per-store copies computed `now < stamp - 1 + epoch`, which
// wraps for epochs near UINT64_MAX and silently flips freshness.

/// Ceiling for the verification epoch.  2^62 retired instructions is
/// "verify once, trust for the whole run" on any machine this simulates,
/// while keeping stamp/epoch arithmetic far from the 64-bit wrap.
inline constexpr std::uint64_t kMaxEccEpoch = std::uint64_t{1} << 62;

/// Clamp a user-supplied epoch into [1, kMaxEccEpoch] (0 means "verify
/// every access", i.e. epoch 1).
constexpr std::uint64_t clamp_ecc_epoch(std::uint64_t n) {
  return n == 0 ? 1 : (n > kMaxEccEpoch ? kMaxEccEpoch : n);
}

/// Subtraction-form freshness: `now - (stamp - 1)` is the ticks elapsed
/// since verification, and never wraps because the clock is monotone
/// (now >= stamp - 1 always).  Epoch 1 is never fresh — the historical
/// verify-on-every-access semantics.
constexpr bool ecc_epoch_fresh(std::uint64_t now, std::uint64_t stamp,
                               std::uint64_t epoch) {
  return epoch > 1 && stamp != 0 && now - (stamp - 1) < epoch;
}

}  // namespace pbp
