#pragma once
// SECDED (single-error-correct, double-error-detect) codecs for the
// integrity layer.
//
// Two extended-Hamming codecs protect the machine's payload state:
//
//   secded64_*  (72,64)  — one check byte per 64-bit AoB chunk word
//                          (dense register files and the shared RE pool)
//   secded16_*  (22,16)  — one check byte per 16-bit Tangled memory word
//                          (6 of the 8 sidecar bits used)
//
// Layout: the classical Hamming construction over codeword positions
// 1..N with parity bits at the power-of-two positions, plus an overall
// parity bit for the SECDED extension.  The check byte stores the m
// Hamming parity bits in bits [0, m) and the overall parity in bit m;
// the payload word itself is stored unmodified (systematic code), so
// ecc=off costs nothing and turning protection on never changes the
// stored payload representation.
//
// Decode decision table (S = Hamming syndrome, O = overall parity over
// payload + stored check bits):
//   S == 0, O == 0   clean
//   S != 0, O == 1   single-bit flip: data bit (S = its codeword
//                    position), or a check bit (S a power of two) —
//                    corrected in place
//   S == 0, O == 1   the overall parity bit itself flipped — corrected
//   S != 0, O == 0   double-bit upset — uncorrectable by construction
//   S an invalid position — multi-bit upset, uncorrectable
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pbp {

/// Per-run integrity policy for a protected store.
///  kOff      no checking (and no storage/time overhead on access paths)
///  kDetect   parity-check-only hardware model: any mismatch is an
///            uncorrectable corruption (trap), nothing is repaired
///  kCorrect  full SECDED: single-bit upsets repaired and counted,
///            double-bit upsets trap
enum class EccMode : std::uint8_t { kOff = 0, kDetect = 1, kCorrect = 2 };

const char* ecc_mode_name(EccMode m);

/// Parses "off" | "detect" | "correct"; throws std::invalid_argument.
EccMode parse_ecc_mode(const std::string& s);

/// Uncorrectable corruption in a protected store.  Derives from
/// std::runtime_error; catch sites that classify Qat failures must order
/// this BEFORE their broader catch clauses.
class CorruptionError : public std::runtime_error {
 public:
  explicit CorruptionError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Result tallies for a scrub pass (or the pending-counter drain of an
/// access-path verifier).
struct EccSweep {
  std::uint64_t words = 0;          ///< payload words examined
  std::uint64_t corrected = 0;      ///< single-bit upsets repaired
  std::uint64_t uncorrectable = 0;  ///< mismatches that could not be fixed
  EccSweep& operator+=(const EccSweep& o) {
    words += o.words;
    corrected += o.corrected;
    uncorrectable += o.uncorrectable;
    return *this;
  }
};

enum class EccCheck : std::uint8_t { kClean, kCorrected, kUncorrectable };

/// Canonical check byte for a payload word.
std::uint8_t secded64_encode(std::uint64_t payload);
std::uint8_t secded16_encode(std::uint16_t payload);

/// Full SECDED decode: repairs a single-bit upset in place (payload or
/// check byte) and re-encodes the check byte canonically.
EccCheck secded64_check(std::uint64_t& payload, std::uint8_t& check);
EccCheck secded16_check(std::uint16_t& payload, std::uint8_t& check);

/// Detect-only probe: true iff the stored check byte matches the payload
/// exactly (no repair attempted).
bool secded64_clean(std::uint64_t payload, std::uint8_t check);
bool secded16_clean(std::uint16_t payload, std::uint8_t check);

}  // namespace pbp
